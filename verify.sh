#!/bin/sh
# Tier-1.5 verification gate: everything CI runs, runnable locally.
#
#   ./verify.sh         full gate (build, vet, fmt, lint, tests, race, fuzz)
#   ./verify.sh quick   skip the race-detector and fuzz passes
#
# Exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")"

step() {
	echo "==> $*"
	"$@"
}

fmtcheck() {
	bad=$(gofmt -l .)
	if [ -n "$bad" ]; then
		echo "gofmt needed on:" >&2
		echo "$bad" >&2
		return 1
	fi
}

step go build ./...
step go build -tags invariants ./...
step go vet ./...
echo "==> gofmt -l ."
fmtcheck
step go run ./cmd/lrmlint ./...
step go test ./...
# Invariant-instrumented packages: the assertions themselves must hold on
# every test input.
step go test -tags invariants ./internal/compress/... ./internal/reduce/... ./internal/core/...
# Fault-injection sweep: every archive mutation must yield a classified
# error (never a panic, never an unbounded allocation).
step go test -run 'TestSweepCorpus|TestPartialDecodeMetricsUnderSweep' -count=1 ./internal/faultinject
# Checked-in artifact gate: BENCH_5 and BENCH_7 were measured on the same
# host, so a tight tolerance applies — no cell may have lost more than 25%
# throughput between the checked-in baselines.
step go run ./cmd/lrmbench -compare -tolerance 0.25 BENCH_5.json BENCH_7.json

if [ "${1:-}" != "quick" ]; then
	# Concurrent packages under the race detector.
	step go test -race ./internal/obs/... ./internal/parallel/... ./internal/mpi/... ./internal/core/... ./internal/sim/laplace/... ./internal/sim/heat3d/... ./internal/compress/... ./internal/huffman/... ./internal/faultinject/... ./internal/linalg/... ./internal/serve/... ./cmd/lrmserve/...
	# Trace race-stress: concurrent Start/End/Snapshot/export/Reset on the
	# trace recorder specifically, repeated so interleavings vary.
	step go test -race -run TestConcurrentTraceStress -count=2 ./internal/obs/trace
	# Profiler race-stress: real profiling windows rotating concurrently
	# with /debug/profile + /debug/flame scrapes and registry Reset.
	step go test -race -run TestConcurrentWindowsAndScrapes -count=2 ./internal/obs/profile
	# Benchmark smoke: one iteration of the JSON benchmark harness proves
	# the artifact pipeline end to end without paying full measurement cost,
	# and the traced pass exercises span propagation through the pool.
	step go run ./cmd/lrmbench -iters 1 -stats -profile-top -out /tmp/lrmbench-smoke.json -trace /tmp/lrmbench-trace.json
	# The trace artifact must contain the pipeline root span (lrmbench
	# already refuses to write a file that is not valid JSON).
	echo "==> trace smoke: core.compress root present"
	grep -q '"core.compress"' /tmp/lrmbench-trace.json || {
		echo "trace smoke: core.compress span missing from /tmp/lrmbench-trace.json" >&2
		exit 1
	}
	# Serving smoke: the in-process lrmserve under a short mixed load must
	# produce zero 5xx, zero transport errors, and a loopback p99 under a
	# generous ceiling (real lifecycle bugs — deadlock under admission
	# pressure, drain racing the handlers — blow straight past it).
	step go run ./cmd/lrmbench -serve-load -serve-clients 4 -serve-duration 3s -serve-p99 2s
	# Perf gate: compare the smoke run against the checked-in artifact. The
	# wide 0.75 tolerance absorbs machine-to-machine variance; real
	# regressions (parallel kernels silently serialized, tracing left
	# enabled on the hot path) overshoot it.
	step go run ./cmd/lrmbench -compare -tolerance 0.75 BENCH_5.json /tmp/lrmbench-smoke.json
	# Short fuzz pass over the decoder targets (seed corpus + a few seconds
	# of mutation each). -fuzz accepts a single package per invocation.
	for pkg in ./internal/compress/sz ./internal/compress/zfp ./internal/compress/fpc; do
		step go test -fuzz=FuzzDecompress -fuzztime=10s -run='^$' "$pkg"
	done
	step go test -fuzz=FuzzDecompressChunked -fuzztime=10s -run='^$' ./internal/core
	step go test -fuzz=FuzzWriteChromeTrace -fuzztime=10s -run='^$' ./internal/obs/trace
	step go test -fuzz=FuzzHistoryQuery -fuzztime=10s -run='^$' ./internal/obs/tsdb
	step go test -fuzz=FuzzParsePprof -fuzztime=10s -run='^$' ./internal/obs/pprofparse
fi

echo "==> verify OK"

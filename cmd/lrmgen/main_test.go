package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lrm/internal/dataset"
	"lrm/internal/grid"
)

func TestParseSize(t *testing.T) {
	for name, want := range map[string]dataset.Size{
		"small": dataset.Small, "medium": dataset.Medium, "large": dataset.Large,
	} {
		got, err := parseSize(name)
		if err != nil || got != want {
			t.Fatalf("parseSize(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := parseSize("gigantic"); err == nil {
		t.Fatal("expected unknown-size error")
	}
}

func TestGenerateWritesFileAndSidecar(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "lap.f64")
	msg, err := generate("Laplace", "small", false, out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(msg, "lap.f64") || !strings.Contains(msg, "64x64") {
		t.Fatalf("status = %q", msg)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 8*64*64 {
		t.Fatalf("raw size = %d", len(raw))
	}
	side, err := os.ReadFile(out + ".dims")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(side)) != "64x64" {
		t.Fatalf("sidecar = %q", side)
	}
	// The bytes must parse back into a valid field.
	if _, err := grid.FromBytes(raw, 64, 64); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateReducedSmaller(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.f64")
	red := filepath.Join(dir, "red.f64")
	if _, err := generate("Yf17_temp", "small", false, full); err != nil {
		t.Fatal(err)
	}
	if _, err := generate("Yf17_temp", "small", true, red); err != nil {
		t.Fatal(err)
	}
	fi, _ := os.Stat(full)
	ri, _ := os.Stat(red)
	if ri.Size() >= fi.Size() {
		t.Fatalf("reduced (%d) not smaller than full (%d)", ri.Size(), fi.Size())
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := generate("Martian", "small", false, ""); err == nil {
		t.Fatal("expected unknown-dataset error")
	}
	if _, err := generate("Laplace", "huge", false, ""); err == nil {
		t.Fatal("expected unknown-size error")
	}
	if _, err := generate("Laplace", "small", false, "/nonexistent-dir/x.f64"); err == nil {
		t.Fatal("expected write error")
	}
}

// Command lrmgen generates one of the paper's nine datasets as a raw
// little-endian float64 file plus a small .dims sidecar describing the
// extents, suitable as input for lrmpack.
//
// Usage:
//
//	lrmgen [-size small|medium|large] [-reduced] [-o file] <dataset>|list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lrm/internal/dataset"
)

func main() {
	size := flag.String("size", "small", "dataset scale: small, medium, or large")
	reduced := flag.Bool("reduced", false, "emit the reduced-model output instead of the full model")
	out := flag.String("o", "", "output path (default <dataset>.f64)")
	flag.Usage = usage
	flag.Parse()

	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	name := flag.Arg(0)
	if name == "list" {
		for _, n := range dataset.Names() {
			fmt.Println(n)
		}
		return
	}
	msg, err := generate(name, *size, *reduced, *out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lrmgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(msg)
}

// parseSize maps the CLI size name to a dataset.Size.
func parseSize(size string) (dataset.Size, error) {
	switch size {
	case "small":
		return dataset.Small, nil
	case "medium":
		return dataset.Medium, nil
	case "large":
		return dataset.Large, nil
	}
	return 0, fmt.Errorf("unknown size %q (small, medium, large)", size)
}

// generate produces the dataset files and returns the status line.
func generate(name, size string, reduced bool, out string) (string, error) {
	sz, err := parseSize(size)
	if err != nil {
		return "", err
	}
	pair, err := dataset.Generate(name, sz)
	if err != nil {
		return "", err
	}
	f := pair.Full
	if reduced {
		f = pair.Reduced
	}

	path := out
	if path == "" {
		suffix := ""
		if reduced {
			suffix = "_reduced"
		}
		path = strings.ToLower(name) + suffix + ".f64"
	}
	if err := os.WriteFile(path, f.Bytes(), 0o644); err != nil {
		return "", err
	}
	dims := make([]string, len(f.Dims))
	for i, d := range f.Dims {
		dims[i] = fmt.Sprint(d)
	}
	if err := os.WriteFile(path+".dims", []byte(strings.Join(dims, "x")+"\n"), 0o644); err != nil {
		return "", err
	}
	return fmt.Sprintf("wrote %s (%d float64 values, dims %s)", path, f.Len(), strings.Join(dims, "x")), nil
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: lrmgen [flags] <dataset>|list

Generates one of the nine Table I datasets as raw float64 (little endian)
with a .dims sidecar.

Flags:
  -size string   dataset scale: small, medium, large (default "small")
  -reduced       emit the reduced model instead of the full model
  -o string      output path (default <dataset>.f64)
`)
}

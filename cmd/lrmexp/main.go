// Command lrmexp runs the paper-reproduction experiments and prints the
// corresponding table or figure data.
//
// Usage:
//
//	lrmexp [-size small|medium|large] [-snapshots N] [-history hist.json]
//	       [-dash dash.html] <experiment-id>|all|list
//
// Experiment ids match the paper's artifacts: table2, fig1, fig3, fig4,
// fig6, fig7, fig8, fig9, fig10, fig11, fig12, table4.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"lrm/internal/dataset"
	"lrm/internal/experiments"
	"lrm/internal/obs"
	"lrm/internal/obs/profile"
	"lrm/internal/obs/trace"
	"lrm/internal/obs/tsdb"
)

// logger replaces the old ad-hoc stderr prints. It routes through
// trace.LogHandler so any future context-carrying call sites gain
// trace_id/span_id correlation for free.
var logger = slog.New(trace.NewLogHandler(slog.NewTextHandler(os.Stderr, nil)))

func main() {
	size := flag.String("size", "small", "dataset scale: small, medium, or large")
	snapshots := flag.Int("snapshots", 0, "snapshot count per application (0 = default; the paper uses 20)")
	csvOut := flag.Bool("csv", false, "emit machine-readable CSV instead of the formatted table")
	statsOut := flag.String("stats", "", "enable the obs registry and write its Prometheus snapshot here at exit")
	traceOut := flag.String("trace", "", "enable tracing and write retained traces as Chrome trace JSON here at exit")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run here")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit here")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
	historyPath := flag.String("history", "", "sample the obs registry during the run and write the telemetry history JSON here")
	dashPath := flag.String("dash", "", "write the rendered telemetry dashboard HTML here at exit")
	profCont := flag.Bool("profile-continuous", false, "run the continuous in-process profiler (short CPU windows + heap deltas) during the run")
	profileJSON := flag.String("profile-json", "", "write the continuous profiler's aggregated JSON here at exit (implies -profile-continuous)")
	flamePath := flag.String("flame", "", "write the continuous profiler's flame graph SVG here at exit (implies -profile-continuous)")
	flag.Usage = usage
	flag.Parse()

	// The continuous profiler and -cpuprofile both need the runtime's
	// single CPU profiler; refuse the combination up front instead of
	// letting whichever starts first win and the other write a silent
	// empty profile.
	continuous := *profCont || *profileJSON != "" || *flamePath != ""
	if continuous && *cpuProfile != "" {
		logger.Error("lrmexp: -profile-continuous (or -profile-json/-flame) and -cpuprofile are mutually exclusive: the runtime allows one CPU profile at a time")
		os.Exit(2)
	}

	if *statsOut != "" || *debugAddr != "" || *traceOut != "" || *historyPath != "" || *dashPath != "" || continuous {
		obs.SetEnabled(true)
	}
	if continuous {
		prof := profile.New(profile.Config{Interval: 2 * time.Second, Window: 500 * time.Millisecond})
		prof.Mount() // /debug/profile and /debug/flame join -debug-addr's mux
		prof.Start()
		jp, fp := *profileJSON, *flamePath
		defer func() {
			prof.Stop() // flushes the in-flight window before the dump
			if err := prof.DumpFiles(jp, fp); err != nil {
				logger.Error("lrmexp: profile", "err", err)
			}
		}()
	}
	if *historyPath != "" || *dashPath != "" {
		hist := tsdb.New(tsdb.Config{Interval: 100 * time.Millisecond})
		hist.Mount() // /debug/history and /debug/dash join -debug-addr's mux
		hist.Start()
		hp, dp := *historyPath, *dashPath
		defer func() {
			hist.Stop()
			if err := hist.DumpFiles(hp, dp); err != nil {
				logger.Error("lrmexp: history", "err", err)
			}
		}()
	}
	if *traceOut != "" {
		trace.SetEnabled(true)
		path := *traceOut
		defer func() {
			if err := writeTraces(path); err != nil {
				logger.Error("lrmexp: trace", "err", err)
			}
		}()
	}
	if *debugAddr != "" {
		_, stopDebug, err := obs.StartDebug(*debugAddr)
		if err != nil {
			logger.Error("lrmexp: debug server", "err", err)
			os.Exit(1)
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := stopDebug(ctx); err != nil {
				logger.Error("lrmexp: debug server shutdown", "err", err)
			}
		}()
	}
	if *cpuProfile != "" {
		stop, err := obs.StartCPUProfile(*cpuProfile)
		if err != nil {
			logger.Error("lrmexp: cpuprofile", "err", err)
			os.Exit(1)
		}
		defer stop()
	}
	if *memProfile != "" {
		path := *memProfile
		defer func() {
			if err := obs.WriteHeapProfile(path); err != nil {
				logger.Error("lrmexp: memprofile", "err", err)
			}
		}()
	}
	if *statsOut != "" {
		path := *statsOut
		defer func() {
			if err := writeStats(path); err != nil {
				logger.Error("lrmexp: stats", "err", err)
			}
		}()
	}

	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	id := flag.Arg(0)

	cfg := experiments.Config{Snapshots: *snapshots}
	switch *size {
	case "small":
		cfg.Size = dataset.Small
	case "medium":
		cfg.Size = dataset.Medium
	case "large":
		cfg.Size = dataset.Large
	default:
		logger.Error("lrmexp: unknown size", "size", *size)
		os.Exit(2)
	}

	switch id {
	case "list":
		for _, eid := range experiments.IDs() {
			fmt.Printf("%-8s %s\n", eid, experiments.Describe(eid))
		}
		return
	case "all":
		for _, eid := range experiments.IDs() {
			if err := runOne(eid, cfg, *csvOut); err != nil {
				logger.Error("lrmexp: experiment failed", "id", eid, "err", err)
				os.Exit(1)
			}
		}
		return
	default:
		if err := runOne(id, cfg, *csvOut); err != nil {
			logger.Error("lrmexp: experiment failed", "id", id, "err", err)
			os.Exit(1)
		}
	}
}

// writeTraces dumps the trace ring as Chrome trace_event JSON.
func writeTraces(path string) error {
	traces := trace.Snapshot()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChromeTrace(f, traces); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	logger.Info("lrmexp: wrote Chrome trace", "path", path, "traces", len(traces))
	return nil
}

// writeStats dumps the obs registry as Prometheus text exposition.
func writeStats(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteProm(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func runOne(id string, cfg experiments.Config, csvOut bool) error {
	start := time.Now()
	res, err := experiments.Run(id, cfg)
	if err != nil {
		return err
	}
	if csvOut {
		c, ok := res.(experiments.CSVer)
		if !ok {
			return fmt.Errorf("experiment %s has no CSV form", id)
		}
		fmt.Print(c.CSV())
		return nil
	}
	fmt.Printf("=== %s (%s) ===\n", id, experiments.Describe(id))
	fmt.Println(res.Render())
	fmt.Printf("[%s completed in %.2fs]\n\n", id, time.Since(start).Seconds())
	return nil
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: lrmexp [flags] <experiment-id>|all|list

Reproduces the tables and figures of "Identifying Latent Reduced Models to
Precondition Lossy Compression" (IPDPS 2019).

Flags:
  -size string       dataset scale: small, medium, large (default "small")
  -snapshots int     outputs per application (default 5; the paper uses 20)
  -stats file        enable pipeline metrics; write a Prometheus snapshot at exit
  -trace file        enable tracing; write retained traces as Chrome trace JSON at exit
  -cpuprofile file   write a CPU profile of the whole run
  -memprofile file   write a heap profile at exit
  -debug-addr addr   serve /metrics, /debug/vars and /debug/pprof while running
  -profile-continuous  run the continuous profiler (excludes -cpuprofile)
  -profile-json file   write the continuous profiler's aggregate JSON at exit
  -flame file          write the continuous profiler's flame graph SVG at exit

Examples:
  lrmexp list
  lrmexp fig3
  lrmexp -size medium -snapshots 20 fig6
  lrmexp all
`)
}

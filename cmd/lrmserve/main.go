// Command lrmserve runs the LRM compression service: compress and
// decompress over HTTP, with admission control, per-tenant quotas, a
// CRC-keyed response cache, and graceful drain on SIGTERM/SIGINT.
//
// Usage:
//
//	lrmserve [-addr :8080] [-workers N] [-max-inflight N] [-timeout 60s]
//	         [-max-body BYTES] [-quota-rps R] [-quota-burst N]
//	         [-cache-bytes BYTES] [-chunks N] [-drain-timeout 30s]
//	         [-history-interval 1s] [-history-samples 512]
//	         [-slo-availability 0.999] [-slo-p99 500ms]
//	         [-profile-interval 60s] [-profile-window 10s]
//	         [-flame-baseline baseline.json]
//
// Endpoints:
//
//	POST /v1/compress?dims=64,64,64[&codec=zfp&precision=16&chunks=8]
//	POST /v1/decompress[?partial=1]
//	GET  /v1/codecs
//	GET  /healthz[?verbose=1]
//	GET  /metrics, /debug/vars, /debug/pprof/..., /debug/traces
//	GET  /debug/history[?name=...&match=...&since=5m&rate=1&n=100]
//	GET  /debug/dash, /debug/quality
//	GET  /debug/profile[?n=25&since=15m&format=baseline], /debug/flame[?diff=1]
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lrm/internal/obs"
	"lrm/internal/obs/profile"
	"lrm/internal/obs/slo"
	"lrm/internal/obs/trace"
	"lrm/internal/obs/tsdb"
	"lrm/internal/serve"
)

var logger = slog.New(trace.NewLogHandler(slog.NewTextHandler(os.Stderr, nil)))

func main() {
	os.Exit(run(os.Args[1:]))
}

// run is main's testable body: it returns the exit code instead of calling
// os.Exit, and stops on the process signal context.
func run(args []string) int {
	fs := flag.NewFlagSet("lrmserve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "parallel workers per request (0 = GOMAXPROCS)")
	maxInFlight := fs.Int("max-inflight", 0, "admitted requests executing at once (0 = 4 x GOMAXPROCS)")
	maxBody := fs.Int64("max-body", 0, "request body cap in bytes (0 = 256 MiB)")
	timeout := fs.Duration("timeout", 0, "per-request processing deadline (0 = 60s, negative = none)")
	quotaRPS := fs.Float64("quota-rps", 0, "per-tenant sustained requests/sec (0 = quotas off)")
	quotaBurst := fs.Int("quota-burst", 0, "per-tenant burst capacity (0 = 2 x quota-rps)")
	cacheBytes := fs.Int64("cache-bytes", 0, "decompressed-response cache budget (0 = 64 MiB, negative = off)")
	chunks := fs.Int("chunks", 0, "default container chunk count (0 = 8)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "grace period for in-flight requests at shutdown")
	histInterval := fs.Duration("history-interval", 0, "telemetry-history sampling period (0 = 1s)")
	histSamples := fs.Int("history-samples", 0, "samples retained per history series (0 = 512)")
	sloAvail := fs.Float64("slo-availability", 0, "availability objective in (0,1) (0 = 0.999)")
	sloP99 := fs.Duration("slo-p99", 0, "p99 latency objective (0 = 500ms)")
	profInterval := fs.Duration("profile-interval", 0, "continuous-profiler window cadence (0 = 60s)")
	profWindow := fs.Duration("profile-window", 0, "continuous-profiler CPU window length (0 = 10s)")
	flameBaseline := fs.String("flame-baseline", "", "baseline profile JSON for /debug/flame?diff=1")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// The service is observable by construction: the obs registry and
	// tracer feed /metrics and /debug/traces on the same listener.
	obs.SetEnabled(true)
	trace.SetEnabled(true)

	// The history store must mount its /debug handlers before serve.New
	// snapshots the debug mux; sampling starts alongside the listener and
	// stops after the drain so the final samples cover shutdown.
	hist := tsdb.New(tsdb.Config{Interval: *histInterval, Capacity: *histSamples})
	hist.Mount()

	// The continuous profiler follows the same lifecycle: handlers mounted
	// before the mux snapshot, windows start with the listener, the
	// in-flight window is flushed during drain. Its per-stage CPU-fraction
	// gauges land in the obs registry, so the history sampler above turns
	// them into /debug/history series with no further wiring.
	prof := profile.New(profile.Config{Interval: *profInterval, Window: *profWindow})
	if *flameBaseline != "" {
		if err := prof.LoadBaseline(*flameBaseline); err != nil {
			logger.Error("lrmserve: flame baseline", "path", *flameBaseline, "err", err)
			return 2
		}
	}
	prof.Mount()

	srv := serve.New(serve.Config{
		Workers:        *workers,
		MaxBodyBytes:   *maxBody,
		MaxInFlight:    *maxInFlight,
		RequestTimeout: *timeout,
		QuotaRPS:       *quotaRPS,
		QuotaBurst:     *quotaBurst,
		CacheBytes:     *cacheBytes,
		DefaultChunks:  *chunks,
		SLO:            slo.Objectives{Availability: *sloAvail, LatencyP99: *sloP99},
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("lrmserve: listen", "addr", *addr, "err", err)
		return 1
	}
	logger.Info("lrmserve: serving", "addr", ln.Addr().String())
	hist.Start()
	prof.Start()

	// Drain on SIGTERM (orchestrator stop) and SIGINT (operator ^C): stop
	// the signal context, flip into draining, and give in-flight requests
	// the grace period before closing connections hard.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		// Serve failed before any signal: the listener broke.
		logger.Error("lrmserve: serve", "err", err)
		return 1
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills hard

	logger.Info("lrmserve: draining", "grace", *drainTimeout)
	sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	code := 0
	if err := srv.Shutdown(sctx); err != nil {
		logger.Error("lrmserve: drain", "err", err)
		code = 1
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("lrmserve: serve", "err", err)
		code = 1
	}
	// Stop the profiler before the history sampler: its cut-short final
	// window flushes the drain's stage gauges into the registry, and the
	// sampler's last pass below then records them.
	prof.Stop()
	// Stop the sampler after the drain completes: its final pass records
	// the post-drain registry state, so the history ends with the truth
	// about how shutdown went.
	hist.Stop()
	logger.Info("lrmserve: stopped")
	return code
}

package main

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"syscall"
	"testing"
	"time"
)

// TestRunServesAndDrainsOnSigterm drives the real entrypoint: run() binds,
// serves traffic, and a SIGTERM — the orchestrator stop signal — drains it
// to a clean zero exit instead of dropping connections on the floor.
func TestRunServesAndDrainsOnSigterm(t *testing.T) {
	// Reserve a port, free it, and hand it to run. The tiny reuse window
	// is fine for a loopback test.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("probe listen: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()

	codec := make(chan int, 1)
	go func() { codec <- run([]string{"-addr", addr, "-drain-timeout", "5s"}) }()

	// Wait until the server answers; that also guarantees the signal
	// handler is installed (it is registered before Serve starts).
	url := fmt.Sprintf("http://%s/healthz", addr)
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up on %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// One real request through the full stack.
	resp, err := http.Get(fmt.Sprintf("http://%s/v1/codecs", addr))
	if err != nil {
		t.Fatalf("GET /v1/codecs: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/codecs: status %d", resp.StatusCode)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("sending SIGTERM: %v", err)
	}
	select {
	case code := <-codec:
		if code != 0 {
			t.Fatalf("run exited %d after SIGTERM, want 0", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit within 10s of SIGTERM")
	}

	if _, err := http.Get(url); err == nil {
		t.Fatal("server still answering after drain")
	}
}

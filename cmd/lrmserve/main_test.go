package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sync"
	"syscall"
	"testing"
	"time"

	"lrm/internal/sim/heat3d"
)

// TestRunServesAndDrainsOnSigterm drives the real entrypoint: run() binds,
// serves traffic, and a SIGTERM — the orchestrator stop signal — drains it
// to a clean zero exit instead of dropping connections on the floor.
func TestRunServesAndDrainsOnSigterm(t *testing.T) {
	// Reserve a port, free it, and hand it to run. The tiny reuse window
	// is fine for a loopback test.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("probe listen: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()

	codec := make(chan int, 1)
	go func() { codec <- run([]string{"-addr", addr, "-drain-timeout", "5s"}) }()

	// Wait until the server answers; that also guarantees the signal
	// handler is installed (it is registered before Serve starts).
	url := fmt.Sprintf("http://%s/healthz", addr)
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up on %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// One real request through the full stack.
	resp, err := http.Get(fmt.Sprintf("http://%s/v1/codecs", addr))
	if err != nil {
		t.Fatalf("GET /v1/codecs: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/codecs: status %d", resp.StatusCode)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("sending SIGTERM: %v", err)
	}
	select {
	case code := <-codec:
		if code != 0 {
			t.Fatalf("run exited %d after SIGTERM, want 0", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit within 10s of SIGTERM")
	}

	if _, err := http.Get(url); err == nil {
		t.Fatal("server still answering after drain")
	}
}

// TestRunContinuousProfilerEndToEnd boots the full service with a fast
// profiler cadence, drives real compress traffic, and checks the three
// acceptance surfaces over TCP: /debug/profile carries stage-attributed
// samples, /debug/flame is an SVG whose frames include a stage.* label,
// and /debug/history serves profile.stage.* CPU-fraction series.
func TestRunContinuousProfilerEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("boots the full service and profiles real CPU windows")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("probe listen: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()

	codec := make(chan int, 1)
	go func() {
		codec <- run([]string{
			"-addr", addr, "-drain-timeout", "5s",
			"-history-interval", "100ms",
			"-profile-interval", "800ms", "-profile-window", "400ms",
		})
	}()
	defer func() {
		_ = syscall.Kill(os.Getpid(), syscall.SIGTERM)
		select {
		case code := <-codec:
			if code != 0 {
				t.Errorf("run exited %d after SIGTERM, want 0", code)
			}
		case <-time.After(10 * time.Second):
			t.Error("run did not exit within 10s of SIGTERM")
		}
	}()

	base := "http://" + addr
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up on %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Drive compress load so the profiler's windows catch labeled codec
	// work. The generator runs until the poll below succeeds.
	body := heat3d.Solve(heat3d.Default(32)).Bytes()
	loadStop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(stop chan struct{}) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(base+"/v1/compress?dims=32,32,32&codec=sz&mode=abs&bound=1e-6", "application/octet-stream", bytes.NewReader(body))
				if err != nil {
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(loadStop)
	}
	defer func() {
		close(loadStop)
		wg.Wait()
	}()

	get := func(path string) (int, []byte) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return resp.StatusCode, raw
	}

	// Poll until a window attributes CPU to a chunk_compress stage.
	deadline = time.Now().Add(30 * time.Second)
	for {
		code, raw := get("/debug/profile")
		if code != http.StatusOK {
			t.Fatalf("/debug/profile: status %d: %s", code, raw)
		}
		var doc struct {
			Schema string `json:"schema"`
			Stages []struct {
				Value string `json:"value"`
				Ns    int64  `json:"ns"`
			} `json:"stages"`
		}
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatalf("/debug/profile: bad JSON: %v\n%s", err, raw)
		}
		if doc.Schema != "lrm-profile/1" {
			t.Fatalf("/debug/profile schema %q", doc.Schema)
		}
		attributed := false
		for _, s := range doc.Stages {
			if s.Value == "chunk_compress" && s.Ns > 0 {
				attributed = true
			}
		}
		if attributed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no chunk_compress attribution after 30s: %s", raw)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Flame graph: well-formed SVG with a stage-labeled frame on top.
	code, svg := get("/debug/flame")
	if code != http.StatusOK {
		t.Fatalf("/debug/flame: status %d", code)
	}
	if !bytes.HasPrefix(svg, []byte("<svg")) || !bytes.Contains(svg, []byte("stage.chunk_compress")) {
		t.Fatalf("/debug/flame missing stage frame: %.200s", svg)
	}

	// History: the stage CPU-fraction gauges became TSDB series.
	deadline = time.Now().Add(10 * time.Second)
	for {
		code, raw := get("/debug/history?match=profile.stage.")
		if code != http.StatusOK {
			t.Fatalf("/debug/history: status %d", code)
		}
		if bytes.Contains(raw, []byte("profile.stage.chunk_compress.cpu_fraction")) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no profile.stage.* history series after 10s: %.400s", raw)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

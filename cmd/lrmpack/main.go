// Command lrmpack preconditions and compresses a raw float64 file using a
// reduced model, or reconstructs the original from an archive.
//
// Usage:
//
//	lrmpack -c [-model M] [-codec C] [-dims ZxYxX] in.f64 out.lrm
//	lrmpack -d in.lrm out.f64
//	lrmpack -select [-codec C] [-dims ZxYxX] in.f64
//
// Models: direct, one-base, multi-base, duomodel, pca, svd, wavelet.
// Codecs: zfp, sz, fpc, flate (the paper's configurations).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"lrm/internal/core"
	"lrm/internal/grid"
	"lrm/internal/reduce"
)

func main() {
	compressMode := flag.Bool("c", false, "compress in.f64 to out.lrm")
	decompressMode := flag.Bool("d", false, "decompress in.lrm to out.f64")
	selectMode := flag.Bool("select", false, "try every model and report ratios (model-selection strategy)")
	model := flag.String("model", "direct", "reduced model: direct, one-base, multi-base, duomodel, pca, svd, wavelet")
	codec := flag.String("codec", "zfp", "codec family: zfp, sz, fpc, flate")
	dims := flag.String("dims", "", "extents as ZxYxX (default: read <in>.dims)")
	flag.Usage = usage
	flag.Parse()

	if err := run(*compressMode, *decompressMode, *selectMode, *model, *codec, *dims, flag.Args()); err != nil {
		fmt.Fprintf(os.Stderr, "lrmpack: %v\n", err)
		os.Exit(1)
	}
}

func run(compressMode, decompressMode, selectMode bool, model, codec, dims string, args []string) error {
	modeCount := 0
	for _, m := range []bool{compressMode, decompressMode, selectMode} {
		if m {
			modeCount++
		}
	}
	if modeCount != 1 {
		usage()
		return fmt.Errorf("exactly one of -c, -d, -select is required")
	}

	switch {
	case decompressMode:
		if len(args) != 2 {
			return fmt.Errorf("-d needs <in.lrm> <out.f64>")
		}
		archive, err := os.ReadFile(args[0])
		if err != nil {
			return err
		}
		f, err := core.Decompress(archive)
		if err != nil {
			return err
		}
		if err := os.WriteFile(args[1], f.Bytes(), 0o644); err != nil {
			return err
		}
		fmt.Printf("reconstructed %d values to %s\n", f.Len(), args[1])
		return nil

	case compressMode:
		if len(args) != 2 {
			return fmt.Errorf("-c needs <in.f64> <out.lrm>")
		}
		f, err := loadRaw(args[0], dims)
		if err != nil {
			return err
		}
		opts, err := buildOptions(model, codec)
		if err != nil {
			return err
		}
		res, err := core.Compress(f, opts)
		if err != nil {
			return err
		}
		if err := os.WriteFile(args[1], res.Archive, 0o644); err != nil {
			return err
		}
		fmt.Printf("%s: %d -> %d bytes (ratio %.2f; rep %d B, delta %d B)\n",
			args[1], res.OriginalBytes, len(res.Archive), res.Ratio(), res.RepBytes(), res.DeltaBytes)
		return nil

	default: // selectMode
		if len(args) != 1 {
			return fmt.Errorf("-select needs <in.f64>")
		}
		f, err := loadRaw(args[0], dims)
		if err != nil {
			return err
		}
		opts, err := buildOptions("direct", codec)
		if err != nil {
			return err
		}
		best, results, err := core.SelectModel(f, core.DefaultCandidates(), opts)
		if err != nil {
			return err
		}
		for _, r := range results {
			if r.Err != nil {
				fmt.Printf("%-12s failed: %v\n", r.Label, r.Err)
				continue
			}
			marker := " "
			if r.Label == best.Label {
				marker = "*"
			}
			fmt.Printf("%s %-12s ratio %.2f\n", marker, r.Label, r.Ratio)
		}
		return nil
	}
}

// buildOptions maps CLI names to the paper's configurations.
func buildOptions(model, codecFamily string) (core.Options, error) {
	data, delta, err := core.PaperCodecs(codecFamily)
	if err != nil {
		return core.Options{}, err
	}
	opts := core.Options{DataCodec: data, DeltaCodec: delta}
	switch model {
	case "direct":
	case "one-base":
		opts.Model = reduce.OneBase{}
	case "multi-base":
		opts.Model = reduce.MultiBase{Blocks: 4}
	case "duomodel":
		opts.Model = reduce.DuoModel{Factor: 4}
	case "pca":
		opts.Model = reduce.PCA{}
	case "svd":
		opts.Model = reduce.SVD{}
	case "wavelet":
		opts.Model = reduce.Wavelet{}
	default:
		return core.Options{}, fmt.Errorf("unknown model %q", model)
	}
	return opts, nil
}

// loadRaw reads a raw float64 file with dims from the flag or sidecar.
func loadRaw(path, dimsFlag string) (*grid.Field, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	spec := dimsFlag
	if spec == "" {
		side, err := os.ReadFile(path + ".dims")
		if err != nil {
			return nil, fmt.Errorf("no -dims given and no %s.dims sidecar: %w", path, err)
		}
		spec = strings.TrimSpace(string(side))
	}
	parts := strings.Split(spec, "x")
	dims := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad dims %q: %w", spec, err)
		}
		dims[i] = v
	}
	return grid.FromBytes(raw, dims...)
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  lrmpack -c [-model M] [-codec C] [-dims ZxYxX] in.f64 out.lrm
  lrmpack -d in.lrm out.f64
  lrmpack -select [-codec C] [-dims ZxYxX] in.f64

Models: direct, one-base, multi-base, duomodel, pca, svd, wavelet
Codecs: zfp, sz, fpc, flate (paper configurations: ZFP 16/8-bit precision,
SZ rel 1e-5/1e-3, FPC level 20)
`)
}

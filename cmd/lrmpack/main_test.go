package main

import (
	"os"
	"path/filepath"
	"testing"

	"lrm/internal/grid"
	"lrm/internal/sim/laplace"
)

func writeSample(t *testing.T) (f64 string, field *grid.Field) {
	t.Helper()
	dir := t.TempDir()
	field = laplace.Solve(laplace.Default(32))
	f64 = filepath.Join(dir, "in.f64")
	if err := os.WriteFile(f64, field.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(f64+".dims", []byte("32x32\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return f64, field
}

func TestCompressDecompressRoundTrip(t *testing.T) {
	f64, field := writeSample(t)
	lrm := f64 + ".lrm"
	out := f64 + ".out"

	if err := run(true, false, false, "one-base", "zfp", "", []string{f64, lrm}); err != nil {
		t.Fatal(err)
	}
	if err := run(false, true, false, "", "", "", []string{lrm, out}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	back, err := grid.FromBytes(raw, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	var maxErr float64
	for i := range field.Data {
		if d := field.Data[i] - back.Data[i]; d > maxErr {
			maxErr = d
		}
	}
	// The paper's delta codec is deliberately loose (8-bit ZFP precision),
	// so on 0..100-range data errors of a few percent of range are the
	// expected Fig. 10 behaviour.
	lo, hi := field.MinMax()
	if maxErr > 0.15*(hi-lo) {
		t.Fatalf("round trip error %v vs range %v", maxErr, hi-lo)
	}
	// The archive should actually be smaller.
	enc, _ := os.Stat(lrm)
	if enc.Size() >= int64(8*field.Len()) {
		t.Fatalf("no compression achieved: %d bytes", enc.Size())
	}
}

func TestDimsFlagOverridesSidecar(t *testing.T) {
	f64, _ := writeSample(t)
	os.Remove(f64 + ".dims")
	lrm := f64 + ".lrm"
	if err := run(true, false, false, "direct", "fpc", "32x32", []string{f64, lrm}); err != nil {
		t.Fatal(err)
	}
	// Without sidecar or flag: must fail with a clear error.
	if err := run(true, false, false, "direct", "fpc", "", []string{f64, lrm}); err == nil {
		t.Fatal("expected missing-dims error")
	}
	// Bad dims spec.
	if err := run(true, false, false, "direct", "fpc", "axb", []string{f64, lrm}); err == nil {
		t.Fatal("expected bad-dims error")
	}
	// Dims not matching the file size.
	if err := run(true, false, false, "direct", "fpc", "7x7", []string{f64, lrm}); err == nil {
		t.Fatal("expected size-mismatch error")
	}
}

func TestSelectMode(t *testing.T) {
	f64, _ := writeSample(t)
	if err := run(false, false, true, "", "zfp", "", []string{f64}); err != nil {
		t.Fatal(err)
	}
}

func TestModeValidation(t *testing.T) {
	if err := run(false, false, false, "", "", "", nil); err == nil {
		t.Fatal("expected no-mode error")
	}
	if err := run(true, true, false, "", "", "", nil); err == nil {
		t.Fatal("expected two-modes error")
	}
	if err := run(true, false, false, "direct", "zfp", "", []string{"only-one"}); err == nil {
		t.Fatal("expected arg-count error")
	}
	if err := run(false, true, false, "", "", "", []string{"a"}); err == nil {
		t.Fatal("expected arg-count error for -d")
	}
}

func TestUnknownModelAndCodec(t *testing.T) {
	f64, _ := writeSample(t)
	if err := run(true, false, false, "martian", "zfp", "", []string{f64, f64 + ".x"}); err == nil {
		t.Fatal("expected unknown-model error")
	}
	if err := run(true, false, false, "direct", "martian", "", []string{f64, f64 + ".x"}); err == nil {
		t.Fatal("expected unknown-codec error")
	}
}

func TestBuildOptionsAllModels(t *testing.T) {
	for _, m := range []string{"direct", "one-base", "multi-base", "duomodel", "pca", "svd", "wavelet"} {
		if _, err := buildOptions(m, "sz"); err != nil {
			t.Fatalf("%s: %v", m, err)
		}
	}
}

func TestDecompressMissingFile(t *testing.T) {
	if err := run(false, true, false, "", "", "", []string{"/nonexistent.lrm", "/dev/null"}); err == nil {
		t.Fatal("expected read error")
	}
}

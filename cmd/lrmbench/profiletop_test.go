package main

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"testing"
)

// pbEnc builds protobuf wire bytes for the synthetic-profile tests.
type pbEnc struct{ buf []byte }

func (e *pbEnc) uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

func (e *pbEnc) varintField(num int, v uint64) {
	e.uvarint(uint64(num)<<3 | 0)
	e.uvarint(v)
}

func (e *pbEnc) bytesField(num int, b []byte) {
	e.uvarint(uint64(num)<<3 | 2)
	e.uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

func (e *pbEnc) msgField(num int, fn func(*pbEnc)) {
	var inner pbEnc
	fn(&inner)
	e.bytesField(num, inner.buf)
}

func (e *pbEnc) packedField(num int, vs ...uint64) {
	var inner pbEnc
	for _, v := range vs {
		inner.uvarint(v)
	}
	e.bytesField(num, inner.buf)
}

// syntheticProfile builds a two-column CPU profile:
//
//	strings: ["", "samples", "count", "cpu", "nanoseconds", "fnA", "fnB", "fnC"]
//	functions: 1=fnA 2=fnB 3=fnC; locations: 1->fnA, 2->fnB, 3->{fnC,fnA} (inlined)
//	sample [1,2]   values [3, 300]  → stack fnA<-fnB
//	sample [1,1]   values [1, 100]  → recursive fnA (credited once)
//	sample [3]     values [1, 100]  → fnC with inlined caller fnA
//
// Cumulative ns: fnA=500 (all samples), fnB=300, fnC=100; total=500.
func syntheticProfile() []byte {
	var e pbEnc
	strs := []string{"", "samples", "count", "cpu", "nanoseconds", "fnA", "fnB", "fnC"}
	e.msgField(1, func(m *pbEnc) { m.varintField(1, 1); m.varintField(2, 2) }) // samples/count
	e.msgField(1, func(m *pbEnc) { m.varintField(1, 3); m.varintField(2, 4) }) // cpu/nanoseconds
	e.msgField(2, func(m *pbEnc) { m.packedField(1, 1, 2); m.packedField(2, 3, 300) })
	e.msgField(2, func(m *pbEnc) { m.packedField(1, 1, 1); m.packedField(2, 1, 100) })
	e.msgField(2, func(m *pbEnc) { m.packedField(1, 3); m.packedField(2, 1, 100) })
	e.msgField(4, func(m *pbEnc) {
		m.varintField(1, 1)
		m.msgField(4, func(l *pbEnc) { l.varintField(1, 1) })
	})
	e.msgField(4, func(m *pbEnc) {
		m.varintField(1, 2)
		m.msgField(4, func(l *pbEnc) { l.varintField(1, 2) })
	})
	e.msgField(4, func(m *pbEnc) {
		m.varintField(1, 3)
		m.msgField(4, func(l *pbEnc) { l.varintField(1, 3) })
		m.msgField(4, func(l *pbEnc) { l.varintField(1, 1) })
	})
	e.msgField(5, func(m *pbEnc) { m.varintField(1, 1); m.varintField(2, 5) })
	e.msgField(5, func(m *pbEnc) { m.varintField(1, 2); m.varintField(2, 6) })
	e.msgField(5, func(m *pbEnc) { m.varintField(1, 3); m.varintField(2, 7) })
	for _, s := range strs {
		e.bytesField(6, []byte(s))
	}
	return e.buf
}

// TestTopCumFramesSynthetic pins the rollup semantics: nanosecond column
// selection, once-per-sample crediting through recursion and inlining, and
// descending cum order.
func TestTopCumFramesSynthetic(t *testing.T) {
	frames, err := topCumFrames(syntheticProfile(), 10)
	if err != nil {
		t.Fatal(err)
	}
	want := []Frame{
		{Func: "fnA", CumNs: 500, CumPct: 100},
		{Func: "fnB", CumNs: 300, CumPct: 60},
		{Func: "fnC", CumNs: 100, CumPct: 20},
	}
	if len(frames) != len(want) {
		t.Fatalf("got %d frames %+v, want %d", len(frames), frames, len(want))
	}
	for i, w := range want {
		if frames[i] != w {
			t.Errorf("frame %d: got %+v want %+v", i, frames[i], w)
		}
	}

	// top-n truncation
	top1, err := topCumFrames(syntheticProfile(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(top1) != 1 || top1[0].Func != "fnA" {
		t.Fatalf("top-1: %+v", top1)
	}
}

// TestTopCumFramesGzip checks the gzip header path (the format the runtime
// actually emits) decodes to the same rollup.
func TestTopCumFramesGzip(t *testing.T) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(syntheticProfile()); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	frames, err := topCumFrames(buf.Bytes(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 3 || frames[0].Func != "fnA" {
		t.Fatalf("gzip path: %+v", frames)
	}
}

// TestTopCumFramesCorrupt feeds garbage and truncations; the parser must
// error (or return empty) rather than panic.
func TestTopCumFramesCorrupt(t *testing.T) {
	full := syntheticProfile()
	inputs := [][]byte{
		nil,
		{0xff},
		[]byte("not a profile"),
		full[:len(full)/2],
		full[:3],
	}
	for i, in := range inputs {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("input %d: panic %v", i, r)
				}
			}()
			topCumFrames(in, 10)
		}()
	}
}

// TestMeasureProfileTop runs a real cell under -profile-top and checks the
// profile attributes CPU to the busy function.
func TestMeasureProfileTop(t *testing.T) {
	if testing.Short() {
		t.Skip("profiled spin is not short")
	}
	sink := 0.0
	b := measure("spin", 2, 8, 1, false, true, func() error {
		for i := 0; i < 8_000_000; i++ {
			sink += float64(i % 7)
		}
		return nil
	})
	_ = sink
	if b.NsOp <= 0 {
		t.Fatalf("ns_op %d", b.NsOp)
	}
	if len(b.ProfileTop) == 0 {
		t.Fatal("profiled cell carried no frames")
	}
	if len(b.ProfileTop) > 10 {
		t.Fatalf("more than 10 frames: %d", len(b.ProfileTop))
	}
	for i := 1; i < len(b.ProfileTop); i++ {
		if b.ProfileTop[i].CumNs > b.ProfileTop[i-1].CumNs {
			t.Fatalf("frames not sorted by cum_ns: %+v", b.ProfileTop)
		}
	}
}

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"lrm/internal/obs"
	"lrm/internal/serve"
	"lrm/internal/sim/heat3d"
)

// serveLoadReport is the -serve-load JSON artifact: enough for a CI gate
// to assert "no 5xx, p99 under threshold" and for a human to see the
// latency shape at a glance.
type serveLoadReport struct {
	Schema          string  `json:"schema"`
	URL             string  `json:"url"`
	Clients         int     `json:"clients"`
	DurationSeconds float64 `json:"duration_s"`
	Requests        int     `json:"requests"`
	Status2xx       int     `json:"status_2xx"`
	Status4xx       int     `json:"status_4xx"`
	Status5xx       int     `json:"status_5xx"`
	TransportErrors int     `json:"transport_errors"`
	RPS             float64 `json:"rps"`
	P50Ns           int64   `json:"p50_ns"`
	P90Ns           int64   `json:"p90_ns"`
	P99Ns           int64   `json:"p99_ns"`
	MaxNs           int64   `json:"max_ns"`
	// ServeMetrics is present in in-process mode only, where the server
	// shares this process's obs registry: cache effectiveness and
	// rejection-reason counts, as deltas over the run.
	ServeMetrics *serveLoadMetrics `json:"serve_metrics,omitempty"`
}

// serveLoadMetrics mirrors the server-side counters a load run cares
// about: did the response cache earn its memory, and which admission gates
// fired.
type serveLoadMetrics struct {
	CacheHits         int64   `json:"cache_hits"`
	CacheMisses       int64   `json:"cache_misses"`
	CacheHitRate      float64 `json:"cache_hit_rate"`
	RejectedAdmission int64   `json:"rejected_admission"`
	RejectedQuota     int64   `json:"rejected_quota"`
	RejectedDraining  int64   `json:"rejected_draining"`
}

// serveCounterNames are the registry counters serveLoadMetrics reads,
// in struct field order.
var serveCounterNames = []string{
	"serve.cache.hits", "serve.cache.misses",
	"serve.rejected.admission", "serve.rejected.quota", "serve.rejected.draining",
}

func readServeCounters() [5]int64 {
	var out [5]int64
	for i, n := range serveCounterNames {
		out[i] = obs.GetCounter(n).Value()
	}
	return out
}

const serveLoadSchema = "lrm-serve-load/1"

// loadTally is one client's outcome counts and latency samples, merged
// after the run; per-client tallies keep the hot loop lock-free.
type loadTally struct {
	status2xx, status4xx, status5xx, transport int
	latencies                                  []time.Duration
}

// serveLoadMain drives a compress/decompress request mix against an
// lrmserve instance and gates on the outcome: any 5xx, any transport
// error, or a p99 above limit is a failing run (exit 1). With url == ""
// it stands up an in-process server on a loopback listener — the CI smoke
// mode, no separate process needed — and additionally asserts that the
// serve metrics actually recorded the traffic.
func serveLoadMain(url string, clients int, duration, p99Limit time.Duration) int {
	if clients < 1 {
		clients = 1
	}
	inProcess := url == ""
	var stop func() error
	if inProcess {
		var err error
		url, stop, err = startLoopbackServer()
		if err != nil {
			fmt.Fprintf(os.Stderr, "lrmbench: serve-load: %v\n", err)
			return 1
		}
	}

	// In-process the server shares our registry, so cache and rejection
	// counters can be reported as deltas over the run (the priming request
	// below is part of the run: it seeds the cache).
	var base [5]int64
	if inProcess {
		base = readServeCounters()
	}

	// Workload bodies: one raw field for /v1/compress, its archive for
	// /v1/decompress, prepared once and shared read-only by every client.
	f := heat3d.Solve(heat3d.Default(16))
	raw := f.Bytes()
	resp, err := http.Post(url+"/v1/compress?dims=16,16,16&codec=zfp&precision=16&chunks=4",
		"application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		fmt.Fprintf(os.Stderr, "lrmbench: serve-load: priming compress: %v\n", err)
		return 1
	}
	archive, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "lrmbench: serve-load: priming compress: status %d err %v\n",
			resp.StatusCode, err)
		return 1
	}

	deadline := time.Now().Add(duration)
	start := time.Now()
	tallies := make([]loadTally, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(tally *loadTally, alt bool) {
			defer wg.Done()
			client := &http.Client{Timeout: 30 * time.Second}
			for i := 0; time.Now().Before(deadline); i++ {
				path, body := "/v1/compress?dims=16,16,16&codec=zfp&precision=16&chunks=4", raw
				if alt == (i%2 == 0) {
					path, body = "/v1/decompress", archive
				}
				t0 := time.Now()
				resp, err := client.Post(url+path, "application/octet-stream", bytes.NewReader(body))
				if err != nil {
					tally.transport++
					continue
				}
				_, cerr := io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if cerr != nil {
					tally.transport++
					continue
				}
				tally.latencies = append(tally.latencies, time.Since(t0))
				switch {
				case resp.StatusCode >= 500:
					tally.status5xx++
				case resp.StatusCode >= 400:
					tally.status4xx++
				default:
					tally.status2xx++
				}
			}
		}(&tallies[c], c%2 == 0)
	}
	wg.Wait()
	elapsed := time.Since(start)

	if inProcess {
		if err := stop(); err != nil {
			fmt.Fprintf(os.Stderr, "lrmbench: serve-load: server shutdown: %v\n", err)
			return 1
		}
	}

	rep := serveLoadReport{
		Schema:          serveLoadSchema,
		URL:             url,
		Clients:         clients,
		DurationSeconds: elapsed.Seconds(),
	}
	var all []time.Duration
	for i := range tallies {
		t := &tallies[i]
		rep.Status2xx += t.status2xx
		rep.Status4xx += t.status4xx
		rep.Status5xx += t.status5xx
		rep.TransportErrors += t.transport
		all = append(all, t.latencies...)
	}
	rep.Requests = rep.Status2xx + rep.Status4xx + rep.Status5xx + rep.TransportErrors
	if elapsed > 0 {
		rep.RPS = float64(rep.Requests) / elapsed.Seconds()
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if n := len(all); n > 0 {
		rep.P50Ns = all[n/2].Nanoseconds()
		rep.P90Ns = all[n*9/10].Nanoseconds()
		rep.P99Ns = all[n*99/100].Nanoseconds()
		rep.MaxNs = all[n-1].Nanoseconds()
	}
	if inProcess {
		cur := readServeCounters()
		m := &serveLoadMetrics{
			CacheHits:         cur[0] - base[0],
			CacheMisses:       cur[1] - base[1],
			RejectedAdmission: cur[2] - base[2],
			RejectedQuota:     cur[3] - base[3],
			RejectedDraining:  cur[4] - base[4],
		}
		if lookups := m.CacheHits + m.CacheMisses; lookups > 0 {
			m.CacheHitRate = float64(m.CacheHits) / float64(lookups)
		}
		rep.ServeMetrics = m
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "lrmbench: serve-load: %v\n", err)
		return 1
	}
	if _, err := os.Stdout.Write(append(data, '\n')); err != nil {
		fmt.Fprintf(os.Stderr, "lrmbench: serve-load: %v\n", err)
		return 1
	}

	code := 0
	if rep.Status5xx > 0 {
		fmt.Fprintf(os.Stderr, "lrmbench: serve-load: FAIL: %d responses were 5xx\n", rep.Status5xx)
		code = 1
	}
	if rep.TransportErrors > 0 {
		fmt.Fprintf(os.Stderr, "lrmbench: serve-load: FAIL: %d transport errors\n", rep.TransportErrors)
		code = 1
	}
	if rep.Status2xx == 0 {
		fmt.Fprintf(os.Stderr, "lrmbench: serve-load: FAIL: no successful requests\n")
		code = 1
	}
	if p99Limit > 0 && rep.P99Ns > p99Limit.Nanoseconds() {
		fmt.Fprintf(os.Stderr, "lrmbench: serve-load: FAIL: p99 %s exceeds limit %s\n",
			time.Duration(rep.P99Ns), p99Limit)
		code = 1
	}
	if inProcess {
		// The in-process server shares our obs registry: the endpoint
		// counters must have seen the traffic, or the observability wiring
		// regressed even though every response looked fine.
		if obs.GetCounter("serve.compress.requests").Value() == 0 ||
			obs.GetCounter("serve.decompress.requests").Value() == 0 {
			fmt.Fprintln(os.Stderr, "lrmbench: serve-load: FAIL: serve endpoint metrics recorded no traffic")
			code = 1
		}
	}
	return code
}

// startLoopbackServer runs an in-process lrmserve on 127.0.0.1:0 and
// returns its base URL plus a drain func. Quotas are left off: the load
// generator is a single tenant hammering on purpose.
func startLoopbackServer() (url string, stop func() error, err error) {
	obs.SetEnabled(true)
	srv := serve.New(serve.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	stop = func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		if serr := <-errc; serr != http.ErrServerClosed {
			return serr
		}
		return nil
	}
	return "http://" + ln.Addr().String(), stop, nil
}

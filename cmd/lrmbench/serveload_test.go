package main

import (
	"encoding/json"
	"os"
	"testing"
	"time"
)

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// what it wrote; serveLoadMain prints its JSON report there.
func captureStdout(t *testing.T, fn func()) []byte {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatalf("pipe: %v", err)
	}
	orig := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = orig }()
	done := make(chan []byte)
	go func() {
		buf := make([]byte, 0, 4096)
		tmp := make([]byte, 4096)
		for {
			n, rerr := r.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if rerr != nil {
				done <- buf
				return
			}
		}
	}()
	fn()
	w.Close()
	out := <-done
	r.Close()
	return out
}

// TestServeLoadInProcess runs the whole smoke gate end to end against the
// in-process loopback server: a short mixed load must finish with zero
// 5xx, zero transport errors, a well-formed JSON report, and exit code 0.
func TestServeLoadInProcess(t *testing.T) {
	var code int
	out := captureStdout(t, func() {
		code = serveLoadMain("", 2, 300*time.Millisecond, 20*time.Second)
	})
	if code != 0 {
		t.Fatalf("serveLoadMain = %d, want 0", code)
	}
	var rep serveLoadReport
	if err := json.Unmarshal(out, &rep); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, out)
	}
	if rep.Schema != serveLoadSchema {
		t.Errorf("schema = %q", rep.Schema)
	}
	if rep.Status2xx == 0 {
		t.Error("no successful requests")
	}
	if rep.Status5xx != 0 || rep.TransportErrors != 0 {
		t.Errorf("5xx = %d, transport errors = %d", rep.Status5xx, rep.TransportErrors)
	}
	if rep.P99Ns <= 0 || rep.P99Ns < rep.P50Ns {
		t.Errorf("implausible percentiles: p50 %d p99 %d", rep.P50Ns, rep.P99Ns)
	}
}

// TestServeLoadP99Gate pins the latency gate: an absurdly low limit must
// turn an otherwise clean run into a failure.
func TestServeLoadP99Gate(t *testing.T) {
	var code int
	captureStdout(t, func() {
		code = serveLoadMain("", 1, 200*time.Millisecond, time.Nanosecond)
	})
	if code != 1 {
		t.Fatalf("serveLoadMain with 1ns p99 limit = %d, want 1", code)
	}
}

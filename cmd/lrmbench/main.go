// Command lrmbench measures the throughput and allocation profile of the
// repository's codecs and emits the result as JSON — the artifact behind
// the BENCH_<n>.json perf gate.
//
// Usage:
//
//	lrmbench [-out BENCH.json] [-iters N] [-baseline old.json] [-stats]
//	         [-trace trace.json] [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//	         [-debug-addr :8080] [-profile-top]
//	         [-history hist.json] [-dash dash.html]
//	lrmbench -compare [-tolerance 0.25] old.json new.json
//	lrmbench -serve-load [-serve-url URL] [-serve-clients N]
//	         [-serve-duration 5s] [-serve-p99 LIMIT]
//
// Each benchmark compresses (and decompresses) a Heat3d field at two
// problem sizes, per codec, at worker counts 1 and 4, plus the chunked
// container path. ns_op is the best of -iters runs (the conventional
// noise-resistant statistic); b_op and allocs_op are per-run heap deltas.
// When -baseline points at a previous lrmbench JSON, matching benchmarks
// gain baseline_ns_op and speedup_vs_baseline so regressions and wins are
// visible in the artifact itself. With -stats the internal/obs registry is
// enabled and every cell carries a per-stage breakdown (wall time, calls,
// bytes in/out) of the pipeline stages it exercised. -cpuprofile and
// -memprofile write pprof profiles of the whole run; -debug-addr serves
// /metrics, /debug/vars and /debug/pprof live while the run is in flight.
// -profile-top instead CPU-profiles each cell separately and embeds the
// top-10 cumulative frames (function, cum ns, cum %) in that cell's JSON,
// so a regression flagged by -compare comes with its own hot-path
// attribution; it is mutually exclusive with -cpuprofile.
//
// -serve-load turns lrmbench into a load generator for lrmserve: a mixed
// compress/decompress request stream from -serve-clients concurrent
// clients for -serve-duration, reported as JSON with status counts and
// latency percentiles. The run fails (exit 1) on any 5xx response, any
// transport error, or a p99 above -serve-p99 — the CI serving smoke gate.
// With no -serve-url it stands up an in-process loopback server, so the
// smoke test needs no separate process.
//
// -trace runs one deterministic traced pass over the full core pipeline
// (single-field and chunked, medium size) after the benchmarks and writes
// the retained traces as Chrome trace_event JSON — load it at
// https://ui.perfetto.dev or chrome://tracing. -compare mode runs no
// benchmarks at all: it joins two lrmbench JSON reports cell by cell and
// exits non-zero when any cell's throughput regressed by more than
// -tolerance (default 0.25, i.e. 25%).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"lrm/internal/compress"
	"lrm/internal/compress/fpc"
	"lrm/internal/compress/sz"
	"lrm/internal/compress/zfp"
	"lrm/internal/core"
	"lrm/internal/grid"
	"lrm/internal/obs"
	"lrm/internal/obs/pprofparse"
	"lrm/internal/obs/profile"
	"lrm/internal/obs/trace"
	"lrm/internal/obs/tsdb"
	"lrm/internal/parallel"
	"lrm/internal/sim/heat3d"
)

// logger stamps trace_id/span_id onto every record whose context carries a
// live span, so diagnostics emitted inside the traced pass can be joined
// against the exported trace file by grepping the ID.
var logger = slog.New(trace.NewLogHandler(slog.NewTextHandler(os.Stderr, nil)))

// fatal reports err through the correlated logger and exits.
func fatal(ctx context.Context, msg string, args ...any) {
	logger.ErrorContext(ctx, msg, args...)
	os.Exit(1)
}

// parallelizable is declared structurally (rather than using
// compress.Parallelizable) so this command also compiles against trees
// whose codecs predate the worker knob: such codecs simply skip the
// workers>1 variants.
type parallelizable interface {
	compress.Codec
	WithWorkers(workers int) compress.Codec
}

// StageStat is one pipeline stage's accumulated contribution to a cell,
// distilled from the internal/obs stage metric bundle (-stats only).
type StageStat struct {
	NsTotal  int64 `json:"ns_total"`
	Calls    int64 `json:"calls"`
	BytesIn  int64 `json:"bytes_in,omitempty"`
	BytesOut int64 `json:"bytes_out,omitempty"`
	Items    int64 `json:"items,omitempty"`
}

// Benchmark is one measured (codec, size, direction, workers) cell.
type Benchmark struct {
	Name              string               `json:"name"` // e.g. "zfp/medium/compress/workers=4"
	Workers           int                  `json:"workers"`
	GoMaxProcs        int                  `json:"gomaxprocs"`
	NsOp              int64                `json:"ns_op"`
	BOp               int64                `json:"b_op"`
	AllocsOp          int64                `json:"allocs_op"`
	MBs               float64              `json:"mb_s"` // uncompressed MB processed per second
	BaselineNsOp      int64                `json:"baseline_ns_op,omitempty"`
	SpeedupVsBaseline float64              `json:"speedup_vs_baseline,omitempty"`
	Stages            map[string]StageStat `json:"stages,omitempty"`
	ProfileTop        []pprofparse.Frame   `json:"profile_top,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	Schema     string      `json:"schema"`
	GoMaxProcs int         `json:"gomaxprocs"`
	Iters      int         `json:"iters"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

const schemaID = "lrm-bench/2"

func main() {
	out := flag.String("out", "", "write JSON here (default stdout)")
	iters := flag.Int("iters", 5, "measurement repetitions; best-of is reported")
	baselinePath := flag.String("baseline", "", "previous lrmbench JSON to compute speedups against")
	stats := flag.Bool("stats", false, "enable the obs registry and emit per-stage breakdowns")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run here")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit here")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
	tracePath := flag.String("trace", "", "write a Chrome trace of one traced pipeline pass here")
	profileTop := flag.Bool("profile-top", false, "CPU-profile each cell and attach its top-10 cumulative frames to the JSON")
	compare := flag.Bool("compare", false, "compare two lrmbench JSON reports (old.json new.json) and fail on regression")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional throughput regression in -compare mode")
	serveLoad := flag.Bool("serve-load", false, "run the lrmserve load generator instead of the codec benchmarks")
	serveURL := flag.String("serve-url", "", "lrmserve base URL for -serve-load (empty = in-process loopback server)")
	serveClients := flag.Int("serve-clients", 4, "concurrent clients for -serve-load")
	serveDuration := flag.Duration("serve-duration", 5*time.Second, "wall time for -serve-load")
	serveP99 := flag.Duration("serve-p99", 0, "fail -serve-load when request p99 exceeds this (0 = no latency gate)")
	historyPath := flag.String("history", "", "sample the obs registry during the run and write the telemetry history JSON here")
	dashPath := flag.String("dash", "", "write the rendered telemetry dashboard HTML here at exit")
	profCont := flag.Bool("profile-continuous", false, "run the continuous in-process profiler (short CPU windows + heap deltas) during the benchmarks")
	profileJSON := flag.String("profile-json", "", "write the continuous profiler's aggregated JSON here at exit (implies -profile-continuous)")
	flamePath := flag.String("flame", "", "write the continuous profiler's flame graph SVG here at exit (implies -profile-continuous)")
	flag.Parse()

	if *serveLoad {
		os.Exit(serveLoadMain(*serveURL, *serveClients, *serveDuration, *serveP99))
	}

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: lrmbench -compare [-tolerance F] old.json new.json")
			os.Exit(2)
		}
		os.Exit(compareMain(flag.Arg(0), flag.Arg(1), *tolerance))
	}

	var baseline *Report
	if *baselinePath != "" {
		b, err := readReport(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lrmbench: baseline: %v\n", err)
			os.Exit(1)
		}
		baseline = b
	}

	if *stats || *debugAddr != "" {
		obs.SetEnabled(true)
	}
	// The continuous profiler and the one-shot profiling modes all want the
	// runtime's single CPU profiler; refuse contradictory flag sets up
	// front with a clear message instead of letting whichever started first
	// win and the loser write a silent empty profile.
	continuous := *profCont || *profileJSON != "" || *flamePath != ""
	if err := profileModeConflict(*cpuProfile, *profileTop, continuous); err != nil {
		fmt.Fprintf(os.Stderr, "lrmbench: %v\n", err)
		os.Exit(2)
	}
	var prof *profile.Profiler
	if continuous {
		obs.SetEnabled(true)
		prof = profile.New(profile.Config{Interval: 2 * time.Second, Window: 500 * time.Millisecond})
		prof.Mount() // /debug/profile and /debug/flame join -debug-addr's mux
		prof.Start()
	}
	if *debugAddr != "" {
		_, stopDebug, err := obs.StartDebug(*debugAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lrmbench: debug server: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := stopDebug(ctx); err != nil {
				fmt.Fprintf(os.Stderr, "lrmbench: debug server shutdown: %v\n", err)
			}
		}()
	}
	if *cpuProfile != "" {
		stop, err := obs.StartCPUProfile(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lrmbench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer stop()
	}
	if *memProfile != "" {
		path := *memProfile
		defer func() {
			if err := obs.WriteHeapProfile(path); err != nil {
				fmt.Fprintf(os.Stderr, "lrmbench: memprofile: %v\n", err)
			}
		}()
	}

	// -history/-dash sample the obs registry on a fast cadence for the
	// whole run and dump the retained series (JSON) and rendered dashboard
	// (HTML) at exit. Both imply metrics: an unsampled registry would dump
	// empty series.
	var hist *tsdb.Store
	if *historyPath != "" || *dashPath != "" {
		obs.SetEnabled(true)
		hist = tsdb.New(tsdb.Config{Interval: 100 * time.Millisecond})
		hist.Start()
	}

	rep := run(*iters, baseline, *stats, *profileTop)

	if *tracePath != "" {
		if err := runTraced(*tracePath); err != nil {
			fatal(context.Background(), "lrmbench: trace", "err", err)
		}
	}

	if hist != nil {
		hist.Stop()
		if err := hist.DumpFiles(*historyPath, *dashPath); err != nil {
			fmt.Fprintf(os.Stderr, "lrmbench: history: %v\n", err)
			os.Exit(1)
		}
	}
	if prof != nil {
		prof.Stop() // flushes the in-flight window before the dump
		if err := prof.DumpFiles(*profileJSON, *flamePath); err != nil {
			fmt.Fprintf(os.Stderr, "lrmbench: profile: %v\n", err)
			os.Exit(1)
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "lrmbench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		if _, err := os.Stdout.Write(data); err != nil {
			fmt.Fprintf(os.Stderr, "lrmbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "lrmbench: %v\n", err)
		os.Exit(1)
	}
}

// profileModeConflict reports why the requested profiling modes cannot
// coexist. The runtime owns a single CPU profiler, so the whole-run
// -cpuprofile, the per-cell -profile-top, and the continuous profiler's
// sampled windows are pairwise exclusive — whichever started first would
// win and the loser would write a silent empty profile.
func profileModeConflict(cpuProfile string, profileTop, continuous bool) error {
	switch {
	case profileTop && cpuProfile != "":
		return errors.New("-profile-top and -cpuprofile are mutually exclusive: both need the runtime's single CPU profiler")
	case continuous && cpuProfile != "":
		return errors.New("-profile-continuous (or -profile-json/-flame) and -cpuprofile are mutually exclusive: the runtime allows one CPU profile at a time")
	case continuous && profileTop:
		return errors.New("-profile-continuous (or -profile-json/-flame) and -profile-top are mutually exclusive: the runtime allows one CPU profile at a time")
	}
	return nil
}

func readReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// benchField builds the input for one problem size. Small matches the
// repository's bench_test.go field; medium is the BENCH gate's target.
func benchField(size string) *grid.Field {
	switch size {
	case "small":
		cfg := heat3d.Default(32)
		cfg.Steps = 100
		return heat3d.Solve(cfg)
	case "medium":
		cfg := heat3d.Default(64)
		cfg.Steps = 40
		return heat3d.Solve(cfg)
	}
	panic("unknown size " + size)
}

func run(iters int, baseline *Report, stats, profTop bool) *Report {
	if iters < 1 {
		iters = 1
	}
	codecs := []struct {
		family string
		codec  compress.Codec
	}{
		{"zfp", zfp.MustNew(16)},
		{"sz", sz.MustNew(sz.Abs, 1e-5)},
		{"fpc", fpc.MustNew(12)},
	}
	rep := &Report{Schema: schemaID, GoMaxProcs: runtime.GOMAXPROCS(0), Iters: iters}
	for _, size := range []string{"small", "medium"} {
		f := benchField(size)
		for _, c := range codecs {
			workerCounts := []int{1}
			if _, ok := c.codec.(parallelizable); ok {
				workerCounts = append(workerCounts, 4)
			}
			for _, w := range workerCounts {
				codec := c.codec
				if w != 1 {
					codec = codec.(parallelizable).WithWorkers(w)
				}
				enc, err := codec.Compress(f)
				if err != nil {
					fmt.Fprintf(os.Stderr, "lrmbench: %s/%s: %v\n", c.family, size, err)
					os.Exit(1)
				}
				prefix := fmt.Sprintf("%s/%s", c.family, size)
				suffix := fmt.Sprintf("workers=%d", w)
				rep.Benchmarks = append(rep.Benchmarks,
					measure(fmt.Sprintf("%s/compress/%s", prefix, suffix), iters, 8*f.Len(), w, stats, profTop, func() error {
						_, err := codec.Compress(f)
						return err
					}),
					measure(fmt.Sprintf("%s/decompress/%s", prefix, suffix), iters, 8*f.Len(), w, stats, profTop, func() error {
						_, err := codec.Decompress(enc)
						return err
					}),
				)
			}
		}

		// Chunked container path: N independent slabs through the full
		// core pipeline, the Table IV per-rank pattern.
		const chunks = 4
		for _, w := range []int{1, 4} {
			opts := core.Options{
				DataCodec: zfp.MustNew(16),
				Parallel:  parallel.Config{Workers: w},
			}
			res, err := core.CompressChunked(f, opts, chunks)
			if err != nil {
				fmt.Fprintf(os.Stderr, "lrmbench: chunked/%s: %v\n", size, err)
				os.Exit(1)
			}
			dopts := core.DecompressOpts{Parallel: parallel.Config{Workers: w}}
			prefix := fmt.Sprintf("chunked/%s", size)
			suffix := fmt.Sprintf("workers=%d", w)
			rep.Benchmarks = append(rep.Benchmarks,
				measure(fmt.Sprintf("%s/compress/%s", prefix, suffix), iters, 8*f.Len(), w, stats, profTop, func() error {
					_, err := core.CompressChunked(f, opts, chunks)
					return err
				}),
				measure(fmt.Sprintf("%s/decompress/%s", prefix, suffix), iters, 8*f.Len(), w, stats, profTop, func() error {
					_, err := core.DecompressWithOpts(res.Archive, dopts)
					return err
				}),
			)
		}
	}
	if baseline != nil {
		attach(rep, baseline)
	}
	return rep
}

// measure runs fn iters times and reports best-of wall time plus mean heap
// growth, the same statistics `go test -bench -benchmem` prints. With stats
// the obs registry is reset before the first iteration and the cell carries
// the stage totals accumulated across all iters. With profTop the whole
// cell (all iters) runs under the CPU profiler and the cell carries its
// top-10 cumulative frames; short cells may sample nothing and carry none.
func measure(name string, iters, rawBytes, workers int, stats, profTop bool, fn func() error) Benchmark {
	if stats {
		obs.Reset()
	}
	var profBuf bytes.Buffer
	if profTop {
		if err := pprof.StartCPUProfile(&profBuf); err != nil {
			fmt.Fprintf(os.Stderr, "lrmbench: %s: profile-top: %v\n", name, err)
			os.Exit(1)
		}
	}
	var best time.Duration = 1<<63 - 1
	var mallocs, bytes uint64
	for i := 0; i < iters; i++ {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		err := fn()
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lrmbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		if elapsed < best {
			best = elapsed
		}
		mallocs += after.Mallocs - before.Mallocs
		bytes += after.TotalAlloc - before.TotalAlloc
	}
	mbs := 0.0
	if best > 0 {
		mbs = float64(rawBytes) / 1e6 / best.Seconds()
	}
	b := Benchmark{
		Name:       name,
		Workers:    workers,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NsOp:       best.Nanoseconds(),
		BOp:        int64(bytes / uint64(iters)),
		AllocsOp:   int64(mallocs / uint64(iters)),
		MBs:        mbs,
	}
	if stats {
		b.Stages = stageBreakdown(obs.Snapshot())
	}
	if profTop {
		pprof.StopCPUProfile()
		frames, err := pprofparse.TopCumFrames(profBuf.Bytes(), 10)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lrmbench: %s: profile-top: %v\n", name, err)
			os.Exit(1)
		}
		b.ProfileTop = frames
	}
	return b
}

// stageBreakdown folds the registry's stage.<name>.* counters into one
// StageStat per stage, dropping stages the cell never touched.
func stageBreakdown(snap *obs.Snap) map[string]StageStat {
	out := make(map[string]StageStat)
	for name, v := range snap.Counters {
		rest, ok := strings.CutPrefix(name, "stage.")
		if !ok {
			continue
		}
		i := strings.LastIndex(rest, ".")
		if i < 0 {
			continue
		}
		stage, field := rest[:i], rest[i+1:]
		s := out[stage]
		switch field {
		case "ns_total":
			s.NsTotal = v
		case "calls":
			s.Calls = v
		case "bytes_in":
			s.BytesIn = v
		case "bytes_out":
			s.BytesOut = v
		case "items":
			s.Items = v
		}
		out[stage] = s
	}
	for stage, s := range out {
		if s.Calls == 0 && s.NsTotal == 0 {
			delete(out, stage)
		}
	}
	return out
}

// attach joins baseline numbers onto matching benchmark names. A
// workers=N cell with no exact match falls back to the baseline's
// workers=1 cell for the same codec/size/direction: a baseline tree that
// predates the worker knob only has serial numbers, and its serial run IS
// the baseline for every worker count.
func attach(rep, baseline *Report) {
	base := make(map[string]int64, len(baseline.Benchmarks))
	for _, b := range baseline.Benchmarks {
		base[b.Name] = b.NsOp
	}
	for i := range rep.Benchmarks {
		b := &rep.Benchmarks[i]
		ns, ok := base[b.Name]
		if !ok {
			if j := strings.LastIndex(b.Name, "/workers="); j >= 0 {
				ns, ok = base[b.Name[:j]+"/workers=1"]
			}
		}
		if ok && ns > 0 && b.NsOp > 0 {
			b.BaselineNsOp = ns
			b.SpeedupVsBaseline = float64(ns) / float64(b.NsOp)
		}
	}
}

// runTraced executes one deterministic traced pass over the core pipeline —
// the single-field path and the chunked container, both on the medium field
// with a worker pool — and writes every retained trace as Chrome
// trace_event JSON. Before writing it self-checks that a core.compress root
// span and a chunked container trace were actually captured, so a silently
// disabled trace layer fails loudly instead of emitting an empty file.
func runTraced(path string) error {
	wasMetrics, wasTracing := obs.Enabled(), trace.Enabled()
	obs.SetEnabled(true) // exemplars need the metrics bit
	trace.SetEnabled(true)
	defer func() {
		obs.SetEnabled(wasMetrics)
		trace.SetEnabled(wasTracing)
	}()
	trace.Reset()

	ctx := context.Background()
	f := benchField("medium")
	opts := core.Options{
		DataCodec: zfp.MustNew(16),
		Parallel:  parallel.Config{Workers: 4},
	}

	res, err := core.CompressCtx(ctx, f, opts)
	if err != nil {
		return fmt.Errorf("traced compress: %w", err)
	}
	if _, err := core.DecompressCtx(ctx, res.Archive); err != nil {
		return fmt.Errorf("traced decompress: %w", err)
	}
	cres, err := core.CompressChunkedCtx(ctx, f, opts, 4)
	if err != nil {
		return fmt.Errorf("traced chunked compress: %w", err)
	}
	dopts := core.DecompressOpts{Parallel: parallel.Config{Workers: 4}}
	if _, err := core.DecompressWithOptsCtx(ctx, cres.Archive, dopts); err != nil {
		return fmt.Errorf("traced chunked decompress: %w", err)
	}

	traces := trace.Snapshot()
	var haveCompress, haveChunked bool
	for _, t := range traces {
		switch t.Root {
		case "core.compress":
			haveCompress = true
		case "core.compress_chunked":
			haveChunked = true
		}
	}
	if !haveCompress || !haveChunked {
		return fmt.Errorf("traced pass retained %d traces but is missing a core.compress or core.compress_chunked root (tracing disabled?)", len(traces))
	}

	var buf bytes.Buffer
	if err := trace.WriteChromeTrace(&buf, traces); err != nil {
		return err
	}
	if !json.Valid(buf.Bytes()) {
		return errors.New("trace export produced invalid JSON")
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return err
	}
	logger.InfoContext(ctx, "lrmbench: wrote Chrome trace",
		"path", path, "traces", len(traces), "bytes", buf.Len())
	return nil
}

// compareMain joins two lrmbench reports cell by cell and returns the
// process exit code: 0 when every matched cell's throughput is within
// tolerance, 1 when any cell regressed. A cell regresses when its new
// wall time exceeds old_ns/(1-tolerance) — i.e. throughput dropped by more
// than the tolerated fraction. Cells present in only one report are
// listed but never fail the comparison (codec or size sets may differ
// across trees).
func compareMain(oldPath, newPath string, tolerance float64) int {
	if tolerance < 0 || tolerance >= 1 {
		fmt.Fprintf(os.Stderr, "lrmbench: -tolerance %v out of range [0,1)\n", tolerance)
		return 2
	}
	oldRep, err := readReport(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lrmbench: compare: %v\n", err)
		return 2
	}
	newRep, err := readReport(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lrmbench: compare: %v\n", err)
		return 2
	}
	base := make(map[string]int64, len(oldRep.Benchmarks))
	for _, b := range oldRep.Benchmarks {
		base[b.Name] = b.NsOp
	}
	matched, skipped, failed := 0, 0, 0
	for _, b := range newRep.Benchmarks {
		oldNs, ok := base[b.Name]
		if !ok || oldNs <= 0 || b.NsOp <= 0 {
			skipped++
			continue
		}
		delete(base, b.Name)
		matched++
		limit := float64(oldNs) / (1 - tolerance)
		ratio := float64(b.NsOp) / float64(oldNs)
		status := "ok"
		if float64(b.NsOp) > limit {
			status = "FAIL"
			failed++
		}
		fmt.Printf("%-44s old %12d ns  new %12d ns  x%.2f  %s\n",
			b.Name, oldNs, b.NsOp, ratio, status)
	}
	leftover := make([]string, 0, len(base))
	for name := range base {
		leftover = append(leftover, name)
	}
	sort.Strings(leftover)
	for _, name := range leftover {
		skipped++
		fmt.Printf("%-44s only in %s\n", name, oldPath)
	}
	fmt.Printf("lrmbench compare: %d matched, %d skipped, %d regressed (tolerance %.0f%%)\n",
		matched, skipped, failed, 100*tolerance)
	if matched == 0 {
		fmt.Fprintln(os.Stderr, "lrmbench: compare: no cells matched between the two reports")
		return 2
	}
	if failed > 0 {
		return 1
	}
	return 0
}

package main

import (
	"encoding/json"
	"strings"
	"testing"

	"lrm/internal/obs"
)

// TestRunProducesFullMatrix runs the benchmark harness at one iteration
// (the CI smoke configuration) and checks the report shape: every expected
// benchmark cell present, sane numbers, valid JSON round trip.
func TestRunProducesFullMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("bench smoke is not short")
	}
	prev := obs.SetEnabled(true)
	defer func() {
		obs.SetEnabled(prev)
		obs.Reset()
	}()
	rep := run(1, nil, true, false)
	if rep.Schema != schemaID {
		t.Fatalf("schema %q", rep.Schema)
	}
	names := make(map[string]bool)
	stages := make(map[string]map[string]StageStat)
	for _, b := range rep.Benchmarks {
		names[b.Name] = true
		stages[b.Name] = b.Stages
		if b.NsOp <= 0 {
			t.Errorf("%s: ns_op %d", b.Name, b.NsOp)
		}
		if b.MBs <= 0 {
			t.Errorf("%s: mb_s %v", b.Name, b.MBs)
		}
		if b.AllocsOp < 0 || b.BOp < 0 {
			t.Errorf("%s: negative mem stats", b.Name)
		}
		if b.Workers < 1 {
			t.Errorf("%s: workers %d not recorded", b.Name, b.Workers)
		}
		if b.GoMaxProcs < 1 {
			t.Errorf("%s: gomaxprocs %d not recorded", b.Name, b.GoMaxProcs)
		}
	}
	for _, size := range []string{"small", "medium"} {
		for _, dir := range []string{"compress", "decompress"} {
			for _, want := range []string{
				"zfp/" + size + "/" + dir + "/workers=1",
				"zfp/" + size + "/" + dir + "/workers=4",
				"sz/" + size + "/" + dir + "/workers=1",
				"sz/" + size + "/" + dir + "/workers=4",
				"fpc/" + size + "/" + dir + "/workers=1",
				"chunked/" + size + "/" + dir + "/workers=1",
				"chunked/" + size + "/" + dir + "/workers=4",
			} {
				if !names[want] {
					t.Errorf("missing benchmark %q", want)
				}
			}
		}
	}
	// -stats must surface the per-codec stage breakdown with nonzero time
	// and byte attribution for the stages each cell exercises.
	for cell, want := range map[string]string{
		"sz/medium/compress/workers=1":      "sz.quantize",
		"zfp/medium/compress/workers=1":     "zfp.plane_code",
		"fpc/medium/compress/workers=1":     "fpc.compress",
		"chunked/medium/compress/workers=1": "core.chunk_compress",
	} {
		st, ok := stages[cell][want]
		if !ok {
			t.Errorf("%s: stage %q missing from breakdown %v", cell, want, stages[cell])
			continue
		}
		if st.Calls < 1 {
			t.Errorf("%s: stage %q has no calls: %+v", cell, want, st)
		}
	}
	if st := stages["sz/medium/compress/workers=1"]["sz.compress"]; st.BytesIn <= 0 || st.BytesOut <= 0 {
		t.Errorf("sz.compress stage lacks byte attribution: %+v", st)
	}

	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var round Report
	if err := json.Unmarshal(data, &round); err != nil {
		t.Fatal(err)
	}
	if len(round.Benchmarks) != len(rep.Benchmarks) {
		t.Fatalf("JSON round trip lost benchmarks")
	}
}

// TestAttachBaseline checks the speedup join logic.
func TestAttachBaseline(t *testing.T) {
	rep := &Report{Benchmarks: []Benchmark{
		{Name: "zfp/medium/compress/workers=1", NsOp: 500},
		{Name: "zfp/medium/compress/workers=4", NsOp: 250},
		{Name: "new/bench", NsOp: 100},
	}}
	base := &Report{Benchmarks: []Benchmark{
		{Name: "zfp/medium/compress/workers=1", NsOp: 1000},
		{Name: "gone/bench", NsOp: 9},
	}}
	attach(rep, base)
	b := rep.Benchmarks[0]
	if b.BaselineNsOp != 1000 || b.SpeedupVsBaseline != 2.0 {
		t.Fatalf("bad join: %+v", b)
	}
	// workers=4 has no exact baseline; it falls back to the serial cell.
	w4 := rep.Benchmarks[1]
	if w4.BaselineNsOp != 1000 || w4.SpeedupVsBaseline != 4.0 {
		t.Fatalf("workers=4 fallback join failed: %+v", w4)
	}
	if rep.Benchmarks[2].BaselineNsOp != 0 {
		t.Fatalf("unmatched benchmark gained a baseline: %+v", rep.Benchmarks[2])
	}
	if !strings.HasPrefix(rep.Benchmarks[0].Name, "zfp/") {
		t.Fatal("name mangled")
	}
}

// TestMeasureProfileTop runs a real cell under -profile-top and checks the
// profile attributes CPU to the busy function.
func TestMeasureProfileTop(t *testing.T) {
	if testing.Short() {
		t.Skip("profiled spin is not short")
	}
	sink := 0.0
	b := measure("spin", 2, 8, 1, false, true, func() error {
		for i := 0; i < 8_000_000; i++ {
			sink += float64(i % 7)
		}
		return nil
	})
	_ = sink
	if b.NsOp <= 0 {
		t.Fatalf("ns_op %d", b.NsOp)
	}
	if len(b.ProfileTop) == 0 {
		t.Fatal("profiled cell carried no frames")
	}
	if len(b.ProfileTop) > 10 {
		t.Fatalf("more than 10 frames: %d", len(b.ProfileTop))
	}
	for i := 1; i < len(b.ProfileTop); i++ {
		if b.ProfileTop[i].CumNs > b.ProfileTop[i-1].CumNs {
			t.Fatalf("frames not sorted by cum_ns: %+v", b.ProfileTop)
		}
	}
}

// TestProfileModeConflict pins the pairwise exclusivity of the three
// profiling modes: every conflicting pair is refused with a message naming
// both flags, and each mode alone is allowed.
func TestProfileModeConflict(t *testing.T) {
	cases := []struct {
		cpuProfile string
		profileTop bool
		continuous bool
		wantErr    bool
	}{
		{"", false, false, false},
		{"cpu.pprof", false, false, false},
		{"", true, false, false},
		{"", false, true, false},
		{"cpu.pprof", true, false, true},
		{"cpu.pprof", false, true, true},
		{"", true, true, true},
	}
	for _, c := range cases {
		err := profileModeConflict(c.cpuProfile, c.profileTop, c.continuous)
		if (err != nil) != c.wantErr {
			t.Errorf("profileModeConflict(%q, %v, %v) = %v, want error %v",
				c.cpuProfile, c.profileTop, c.continuous, err, c.wantErr)
		}
		if err != nil && !strings.Contains(err.Error(), "mutually exclusive") {
			t.Errorf("conflict error does not name the exclusivity: %v", err)
		}
	}
}

package main

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// This file implements -profile-top: a per-cell CPU profile distilled to
// the top cumulative frames, attached to the benchmark JSON. The pprof
// wire format is gzipped profile.proto; only the handful of fields needed
// for a cumulative-by-function rollup are decoded here, with a minimal
// protobuf walker, so the command stays stdlib-only.

// Frame is one row of a cell's profile_top list: a function's cumulative
// CPU time across every sample whose stack contains it.
type Frame struct {
	Func   string  `json:"func"`
	CumNs  int64   `json:"cum_ns"`
	CumPct float64 `json:"cum_pct"` // share of the cell's sampled CPU time
}

// pprofSample is one stack sample: location IDs leaf-first plus the
// per-sample-type values.
type pprofSample struct {
	locs   []uint64
	values []int64
}

// pprofProfile is the subset of profile.proto needed for the rollup.
type pprofProfile struct {
	strings     []string
	sampleUnits []int64 // unit string index per sample type
	samples     []pprofSample
	locFuncs    map[uint64][]uint64 // location id -> function ids, leaf first
	funcNames   map[uint64]int64    // function id -> name string index
}

// --- minimal protobuf reader -------------------------------------------

// pbField is one decoded key/value pair. For wire type 2 the payload is
// the raw bytes; for wire type 0 the varint value.
type pbField struct {
	num  int
	wire int
	vi   uint64
	data []byte
}

// pbWalk iterates the fields of one message, calling fn per field. It
// tolerates (skips) 64-bit and 32-bit scalar fields.
func pbWalk(data []byte, fn func(pbField) error) error {
	for len(data) > 0 {
		key, n := binary.Uvarint(data)
		if n <= 0 {
			return fmt.Errorf("pprof: bad field key")
		}
		data = data[n:]
		f := pbField{num: int(key >> 3), wire: int(key & 7)}
		switch f.wire {
		case 0: // varint
			v, n := binary.Uvarint(data)
			if n <= 0 {
				return fmt.Errorf("pprof: bad varint in field %d", f.num)
			}
			f.vi = v
			data = data[n:]
		case 1: // fixed64
			if len(data) < 8 {
				return fmt.Errorf("pprof: short fixed64 in field %d", f.num)
			}
			f.vi = binary.LittleEndian.Uint64(data)
			data = data[8:]
		case 2: // length-delimited
			l, n := binary.Uvarint(data)
			if n <= 0 || uint64(len(data)-n) < l {
				return fmt.Errorf("pprof: bad length in field %d", f.num)
			}
			f.data = data[n : n+int(l)]
			data = data[n+int(l):]
		case 5: // fixed32
			if len(data) < 4 {
				return fmt.Errorf("pprof: short fixed32 in field %d", f.num)
			}
			f.vi = uint64(binary.LittleEndian.Uint32(data))
			data = data[4:]
		default:
			return fmt.Errorf("pprof: unsupported wire type %d", f.wire)
		}
		if err := fn(f); err != nil {
			return err
		}
	}
	return nil
}

// pbPackedUvarints decodes a packed repeated varint payload. A wire-type-0
// single element (protobuf allows unpacked repeats) is handled by the
// callers passing vi directly.
func pbPackedUvarints(data []byte, out []uint64) ([]uint64, error) {
	for len(data) > 0 {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, fmt.Errorf("pprof: bad packed varint")
		}
		out = append(out, v)
		data = data[n:]
	}
	return out, nil
}

// --- profile.proto decoding --------------------------------------------

// parsePprof decodes a gzipped (or raw) profile.proto blob.
func parsePprof(raw []byte) (*pprofProfile, error) {
	if len(raw) >= 2 && raw[0] == 0x1f && raw[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(raw))
		if err != nil {
			return nil, err
		}
		raw, err = io.ReadAll(zr)
		if err != nil {
			return nil, err
		}
	}
	p := &pprofProfile{
		locFuncs:  make(map[uint64][]uint64),
		funcNames: make(map[uint64]int64),
	}
	err := pbWalk(raw, func(f pbField) error {
		switch f.num {
		case 1: // sample_type: ValueType{type=1, unit=2}
			var unit uint64
			if err := pbWalk(f.data, func(g pbField) error {
				if g.num == 2 {
					unit = g.vi
				}
				return nil
			}); err != nil {
				return err
			}
			p.sampleUnits = append(p.sampleUnits, int64(unit))
		case 2: // sample: Sample{location_id=1, value=2}
			var s pprofSample
			if err := pbWalk(f.data, func(g pbField) error {
				switch g.num {
				case 1:
					if g.wire == 2 {
						var err error
						s.locs, err = pbPackedUvarints(g.data, s.locs)
						return err
					}
					s.locs = append(s.locs, g.vi)
				case 2:
					if g.wire == 2 {
						vs, err := pbPackedUvarints(g.data, nil)
						if err != nil {
							return err
						}
						for _, v := range vs {
							s.values = append(s.values, int64(v))
						}
						return nil
					}
					s.values = append(s.values, int64(g.vi))
				}
				return nil
			}); err != nil {
				return err
			}
			p.samples = append(p.samples, s)
		case 4: // location: Location{id=1, line=4:Line{function_id=1}}
			var id uint64
			var fns []uint64
			if err := pbWalk(f.data, func(g pbField) error {
				switch g.num {
				case 1:
					id = g.vi
				case 4:
					return pbWalk(g.data, func(h pbField) error {
						if h.num == 1 {
							fns = append(fns, h.vi)
						}
						return nil
					})
				}
				return nil
			}); err != nil {
				return err
			}
			p.locFuncs[id] = fns
		case 5: // function: Function{id=1, name=2}
			var id uint64
			var name int64
			if err := pbWalk(f.data, func(g pbField) error {
				switch g.num {
				case 1:
					id = g.vi
				case 2:
					name = int64(g.vi)
				}
				return nil
			}); err != nil {
				return err
			}
			p.funcNames[id] = name
		case 6: // string_table
			p.strings = append(p.strings, string(f.data))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return p, nil
}

// str resolves a string-table index, tolerating corrupt indices.
func (p *pprofProfile) str(i int64) string {
	if i < 0 || int(i) >= len(p.strings) {
		return "?"
	}
	return p.strings[i]
}

// topCumFrames rolls the profile up to its top-n functions by cumulative
// value. A function is credited once per sample no matter how many times
// it appears in the stack (recursion must not double-count). The value
// index prefers the sample type whose unit is "nanoseconds" (the CPU time
// track of a Go CPU profile) and falls back to the last column.
func topCumFrames(raw []byte, n int) ([]Frame, error) {
	p, err := parsePprof(raw)
	if err != nil {
		return nil, err
	}
	vi := len(p.sampleUnits) - 1
	for i, u := range p.sampleUnits {
		if p.str(u) == "nanoseconds" {
			vi = i
			break
		}
	}
	if vi < 0 {
		return nil, nil // no sample types: empty profile
	}
	cum := make(map[string]int64)
	var total int64
	seen := make(map[string]bool)
	for _, s := range p.samples {
		if vi >= len(s.values) {
			continue
		}
		v := s.values[vi]
		total += v
		for k := range seen {
			delete(seen, k)
		}
		for _, loc := range s.locs {
			for _, fid := range p.locFuncs[loc] {
				name := p.str(p.funcNames[fid])
				if !seen[name] {
					seen[name] = true
					cum[name] += v
				}
			}
		}
	}
	frames := make([]Frame, 0, len(cum))
	for name, v := range cum {
		frames = append(frames, Frame{Func: name, CumNs: v})
	}
	sort.Slice(frames, func(i, j int) bool {
		if frames[i].CumNs != frames[j].CumNs {
			return frames[i].CumNs > frames[j].CumNs
		}
		return frames[i].Func < frames[j].Func
	})
	if len(frames) > n {
		frames = frames[:n]
	}
	if total > 0 {
		for i := range frames {
			frames[i].CumPct = 100 * float64(frames[i].CumNs) / float64(total)
		}
	}
	return frames, nil
}

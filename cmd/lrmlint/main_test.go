package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestExitNonZeroOnFindings drives the real CLI path against the golden
// fixtures: every analyzer must produce findings (exit 1) on its fixture
// package, proving the tool gates CI rather than reporting and passing.
func TestExitNonZeroOnFindings(t *testing.T) {
	for _, rule := range []string{"floatcmp", "ignorederr", "mutexcopy", "goroutine", "deadassign"} {
		var out, errb bytes.Buffer
		code := run([]string{"-rules", rule, "./internal/lint/testdata/src/" + rule}, &out, &errb)
		if code != 1 {
			t.Errorf("%s: exit code %d on fixture, want 1 (stderr: %s)", rule, code, errb.String())
		}
		if !strings.Contains(out.String(), "["+rule+"]") {
			t.Errorf("%s: diagnostics missing rule tag:\n%s", rule, out.String())
		}
	}
}

// TestExitZeroOnCleanPackage runs the full suite on a package known clean.
func TestExitZeroOnCleanPackage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"./internal/invariant"}, &out, &errb); code != 0 {
		t.Fatalf("exit code %d on clean package, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
}

// TestUnknownRuleIsUsageError pins the 2 = usage-error exit code.
func TestUnknownRuleIsUsageError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-rules", "nosuchrule", "./..."}, &out, &errb); code != 2 {
		t.Fatalf("exit code %d for unknown rule, want 2", code)
	}
}

// TestListAnalyzers keeps the -list inventory in sync with the suite.
func TestListAnalyzers(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, rule := range []string{"floatcmp", "ignorederr", "mutexcopy", "goroutine", "deadassign"} {
		if !strings.Contains(out.String(), rule) {
			t.Errorf("-list output missing %s", rule)
		}
	}
}

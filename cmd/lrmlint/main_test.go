package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestExitNonZeroOnFindings drives the real CLI path against the golden
// fixtures: every analyzer must produce findings (exit 1) on its fixture
// package, proving the tool gates CI rather than reporting and passing.
func TestExitNonZeroOnFindings(t *testing.T) {
	for _, rule := range []string{"floatcmp", "ignorederr", "mutexcopy", "goroutine", "deadassign", "decodetaint", "errtaxonomy", "ctxflow"} {
		var out, errb bytes.Buffer
		code := run([]string{"-rules", rule, "./internal/lint/testdata/src/" + rule}, &out, &errb)
		if code != 1 {
			t.Errorf("%s: exit code %d on fixture, want 1 (stderr: %s)", rule, code, errb.String())
		}
		if !strings.Contains(out.String(), "["+rule+"]") {
			t.Errorf("%s: diagnostics missing rule tag:\n%s", rule, out.String())
		}
	}
}

// TestExitZeroOnCleanPackage runs the full suite on a package known clean.
func TestExitZeroOnCleanPackage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"./internal/invariant"}, &out, &errb); code != 0 {
		t.Fatalf("exit code %d on clean package, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
}

// TestUnknownRuleIsUsageError pins the 2 = usage-error exit code.
func TestUnknownRuleIsUsageError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-rules", "nosuchrule", "./..."}, &out, &errb); code != 2 {
		t.Fatalf("exit code %d for unknown rule, want 2", code)
	}
}

// TestListAnalyzers keeps the -list inventory in sync with the suite.
func TestListAnalyzers(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, rule := range []string{"floatcmp", "ignorederr", "mutexcopy", "goroutine", "deadassign", "decodetaint", "errtaxonomy", "ctxflow"} {
		if !strings.Contains(out.String(), rule) {
			t.Errorf("-list output missing %s", rule)
		}
	}
}

// TestJSONOutput pins the machine-readable shape consumed by CI: an array
// of {file,line,column,rule,message} objects, exit 1 when findings exist.
func TestJSONOutput(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", "-rules", "decodetaint", "./internal/lint/testdata/src/decodetaint"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code %d on fixture, want 1 (stderr: %s)", code, errb.String())
	}
	var diags []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Column  int    `json:"column"`
		Rule    string `json:"rule"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(diags) == 0 {
		t.Fatal("-json output empty on a fixture with seeded violations")
	}
	for _, d := range diags {
		if d.Rule != "decodetaint" || d.File == "" || d.Line == 0 || d.Message == "" {
			t.Errorf("malformed diagnostic: %+v", d)
		}
	}
}

// TestJSONCleanIsEmptyArray keeps clean output parseable: [] rather than
// nothing, so downstream jq pipelines never special-case the happy path.
func TestJSONCleanIsEmptyArray(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-json", "./internal/invariant"}, &out, &errb); code != 0 {
		t.Fatalf("exit code %d on clean package, want 0 (stderr: %s)", code, errb.String())
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Fatalf("clean -json output = %q, want []", out.String())
	}
}

// Command lrmlint runs the repo-specific static-analysis suite over the
// module's packages and exits non-zero when any analyzer reports a finding.
//
// Usage:
//
//	go run ./cmd/lrmlint ./...
//	go run ./cmd/lrmlint -rules floatcmp,goroutine ./internal/compress/...
//	go run ./cmd/lrmlint -tests ./internal/mpi
//
// Diagnostics print as file:line:col: [rule] message. Suppress a single
// finding with a `//lrmlint:ignore <rule> <reason>` comment on the same
// line or the line above. Exit status: 0 clean, 1 findings, 2 usage or
// load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"lrm/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lrmlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rules := fs.String("rules", "", "comma-separated analyzer subset (default: all)")
	tests := fs.Bool("tests", false, "also analyze in-package _test.go files")
	list := fs.Bool("list", false, "list analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array (machine-readable)")
	github := fs.Bool("github", false, "emit GitHub Actions ::error annotations alongside diagnostics")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := lint.ByName(*rules)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	loader.IncludeTests = *tests

	pkgs, err := loader.Load(patterns)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	// One module-wide Program shared by every pass: the interprocedural
	// analyzers (decodetaint, errtaxonomy, ctxflow) see call edges and
	// function summaries across package boundaries.
	passes := make([]*lint.Pass, len(pkgs))
	for i, pkg := range pkgs {
		passes[i] = pkg.Pass
	}
	prog := lint.NewProgram(passes)
	for _, pass := range passes {
		pass.SetProgram(prog)
	}

	var diags []lint.Diagnostic
	for _, pkg := range pkgs {
		for _, d := range lint.RunAnalyzers(pkg.Pass, analyzers) {
			if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil {
				d.Pos.Filename = rel
			}
			diags = append(diags, d)
		}
	}

	if *jsonOut {
		if err := writeJSON(stdout, diags); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if *github {
		// GitHub Actions annotation format; the runner attaches these to
		// the diff view. Emitted on stderr so -json output stays parseable.
		for _, d := range diags {
			fmt.Fprintf(stderr, "::error file=%s,line=%d,col=%d,title=lrmlint(%s)::%s\n",
				d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "lrmlint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}

// jsonDiag is the stable machine-readable diagnostic shape.
type jsonDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// writeJSON emits diagnostics as an indented JSON array ([] when clean), so
// downstream tooling can consume the output without parsing text lines.
func writeJSON(w io.Writer, diags []lint.Diagnostic) error {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File:    d.Pos.Filename,
			Line:    d.Pos.Line,
			Column:  d.Pos.Column,
			Rule:    d.Rule,
			Message: d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lrmlint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Command lrmlint runs the repo-specific static-analysis suite over the
// module's packages and exits non-zero when any analyzer reports a finding.
//
// Usage:
//
//	go run ./cmd/lrmlint ./...
//	go run ./cmd/lrmlint -rules floatcmp,goroutine ./internal/compress/...
//	go run ./cmd/lrmlint -tests ./internal/mpi
//
// Diagnostics print as file:line:col: [rule] message. Suppress a single
// finding with a `//lrmlint:ignore <rule> <reason>` comment on the same
// line or the line above. Exit status: 0 clean, 1 findings, 2 usage or
// load error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"lrm/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lrmlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rules := fs.String("rules", "", "comma-separated analyzer subset (default: all)")
	tests := fs.Bool("tests", false, "also analyze in-package _test.go files")
	list := fs.Bool("list", false, "list analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := lint.ByName(*rules)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	loader.IncludeTests = *tests

	pkgs, err := loader.Load(patterns)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	findings := 0
	for _, pkg := range pkgs {
		for _, d := range lint.RunAnalyzers(pkg.Pass, analyzers) {
			if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil {
				d.Pos.Filename = rel
			}
			fmt.Fprintln(stdout, d)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(stderr, "lrmlint: %d finding(s) in %d package(s)\n", findings, len(pkgs))
		return 1
	}
	return 0
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lrmlint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

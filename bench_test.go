// Package lrm's root benchmark harness: one Benchmark per paper table and
// figure (regenerating the artifact end to end), plus codec and model
// micro-benchmarks and the ablation sweeps DESIGN.md calls out.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Regenerate a single artifact's data:
//
//	go test -bench=BenchmarkFig6 -benchtime=1x -v
package lrm

import (
	"fmt"
	"testing"

	"lrm/internal/compress"
	"lrm/internal/compress/fpc"
	"lrm/internal/compress/sz"
	"lrm/internal/compress/zfp"
	"lrm/internal/core"
	"lrm/internal/dataset"
	"lrm/internal/experiments"
	"lrm/internal/grid"
	"lrm/internal/huffman"
	"lrm/internal/reduce"
	"lrm/internal/sim/heat3d"
)

// benchCfg keeps per-iteration cost bounded; use -benchtime=1x for a single
// full regeneration.
func benchCfg() experiments.Config {
	return experiments.Config{Size: dataset.Small, Snapshots: 3}
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && testing.Verbose() {
			b.Log("\n" + res.Render())
		}
	}
}

// --- one benchmark per paper artifact ---

func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkFig1(b *testing.B)   { benchExperiment(b, "fig1") }
func BenchmarkFig3(b *testing.B)   { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)   { benchExperiment(b, "fig4") }
func BenchmarkFig6(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }

// --- codec micro-benchmarks ---

// benchField is a representative smooth 3-D field.
func benchField() *grid.Field {
	cfg := heat3d.Default(32)
	cfg.Steps = 100
	return heat3d.Solve(cfg)
}

func benchCodec(b *testing.B, c compress.Codec) {
	f := benchField()
	b.Run("compress", func(b *testing.B) {
		b.SetBytes(int64(8 * f.Len()))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Compress(f); err != nil {
				b.Fatal(err)
			}
		}
	})
	enc, err := c.Compress(f)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("decompress", func(b *testing.B) {
		b.SetBytes(int64(8 * f.Len()))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Decompress(enc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.ReportMetric(compress.Ratio(f, enc), "ratio")
}

func BenchmarkCodecZFP(b *testing.B) { benchCodec(b, zfp.MustNew(16)) }
func BenchmarkCodecSZ(b *testing.B)  { benchCodec(b, sz.MustNew(sz.Abs, 1e-5)) }
func BenchmarkCodecFPC(b *testing.B) { benchCodec(b, fpc.MustNew(16)) }

// --- reduced-model micro-benchmarks ---

func benchModel(b *testing.B, m reduce.Model) {
	f := benchField()
	b.SetBytes(int64(8 * f.Len()))
	var rep *reduce.Rep
	b.Run("reduce", func(b *testing.B) {
		b.SetBytes(int64(8 * f.Len()))
		for i := 0; i < b.N; i++ {
			var err error
			rep, err = m.Reduce(f)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reconstruct", func(b *testing.B) {
		b.SetBytes(int64(8 * f.Len()))
		for i := 0; i < b.N; i++ {
			if _, err := reduce.Reconstruct(rep); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkModelOneBase(b *testing.B)   { benchModel(b, reduce.OneBase{}) }
func BenchmarkModelMultiBase(b *testing.B) { benchModel(b, reduce.MultiBase{Blocks: 4}) }
func BenchmarkModelDuoModel(b *testing.B)  { benchModel(b, reduce.DuoModel{Factor: 4}) }
func BenchmarkModelPCA(b *testing.B)       { benchModel(b, reduce.PCA{}) }
func BenchmarkModelSVD(b *testing.B)       { benchModel(b, reduce.SVD{}) }
func BenchmarkModelWavelet(b *testing.B)   { benchModel(b, reduce.Wavelet{}) }

// --- ablations (design-choice sweeps from DESIGN.md) ---

// AblationMultiBaseBlocks: the one-base <-> multi-base trade-off — more
// local bases shrink the deltas but grow the stored representation.
func BenchmarkAblationMultiBaseBlocks(b *testing.B) {
	f := benchField()
	data, delta, err := core.PaperCodecs("zfp")
	if err != nil {
		b.Fatal(err)
	}
	for _, blocks := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("blocks=%d", blocks), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				res, err := core.Compress(f, core.Options{
					Model:      reduce.MultiBase{Blocks: blocks},
					DataCodec:  data,
					DeltaCodec: delta,
				})
				if err != nil {
					b.Fatal(err)
				}
				ratio = res.Ratio()
			}
			b.ReportMetric(ratio, "ratio")
		})
	}
}

// AblationPCAEnergy: the 95% rule — retained variance vs compression ratio.
func BenchmarkAblationPCAEnergy(b *testing.B) {
	f := benchField()
	data, delta, err := core.PaperCodecs("zfp")
	if err != nil {
		b.Fatal(err)
	}
	for _, energy := range []float64{0.8, 0.9, 0.95, 0.99, 0.999} {
		b.Run(fmt.Sprintf("energy=%.3f", energy), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				res, err := core.Compress(f, core.Options{
					Model:      reduce.PCA{Energy: energy},
					DataCodec:  data,
					DeltaCodec: delta,
				})
				if err != nil {
					b.Fatal(err)
				}
				ratio = res.Ratio()
			}
			b.ReportMetric(ratio, "ratio")
		})
	}
}

// AblationPCABlocked: the partitioned-matrix PCA (future work 1) — block
// width vs factorisation speed.
func BenchmarkAblationPCABlocked(b *testing.B) {
	f := benchField()
	for _, bc := range []int{0, 8, 16} {
		name := "full"
		if bc > 0 {
			name = fmt.Sprintf("blockcols=%d", bc)
		}
		b.Run(name, func(b *testing.B) {
			m := reduce.PCA{BlockCols: bc}
			b.SetBytes(int64(8 * f.Len()))
			for i := 0; i < b.N; i++ {
				if _, err := m.Reduce(f); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// AblationWaveletTheta: the 5% threshold — representation size vs theta.
func BenchmarkAblationWaveletTheta(b *testing.B) {
	f := benchField()
	for _, theta := range []float64{0.01, 0.05, 0.1, 0.2} {
		b.Run(fmt.Sprintf("theta=%.2f", theta), func(b *testing.B) {
			var bytes int
			m := reduce.Wavelet{Theta: theta}
			for i := 0; i < b.N; i++ {
				rep, err := m.Reduce(f)
				if err != nil {
					b.Fatal(err)
				}
				bytes = rep.SizeBytes()
			}
			b.ReportMetric(float64(bytes), "rep-bytes")
		})
	}
}

// AblationZFPPrecision: ratio vs precision for the transform coder.
func BenchmarkAblationZFPPrecision(b *testing.B) {
	f := benchField()
	for _, p := range []int{8, 16, 24, 32} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			c := zfp.MustNew(p)
			b.SetBytes(int64(8 * f.Len()))
			var ratio float64
			for i := 0; i < b.N; i++ {
				enc, err := c.Compress(f)
				if err != nil {
					b.Fatal(err)
				}
				ratio = compress.Ratio(f, enc)
			}
			b.ReportMetric(ratio, "ratio")
		})
	}
}

// --- MPI scaling micro-benchmark ---

func BenchmarkHeat3dParallel(b *testing.B) {
	cfg := heat3d.Default(24)
	cfg.Steps = 50
	for _, ranks := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("ranks=%d", ranks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := heat3d.SolveParallel(cfg, ranks); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// AblationZFPAccuracy: ratio vs absolute tolerance in fixed-accuracy mode.
func BenchmarkAblationZFPAccuracy(b *testing.B) {
	f := benchField()
	for _, tol := range []float64{1e-2, 1e-4, 1e-6, 1e-8} {
		b.Run(fmt.Sprintf("tol=%.0e", tol), func(b *testing.B) {
			c := zfp.MustNewAccuracy(tol)
			b.SetBytes(int64(8 * f.Len()))
			var ratio float64
			for i := 0; i < b.N; i++ {
				enc, err := c.Compress(f)
				if err != nil {
					b.Fatal(err)
				}
				ratio = compress.Ratio(f, enc)
			}
			b.ReportMetric(ratio, "ratio")
		})
	}
}

// AblationSZCurveFit: adaptive curve fitting vs plain Lorenzo on 1-D data.
func BenchmarkAblationSZCurveFit(b *testing.B) {
	f := grid.New(16384)
	for i := range f.Data {
		x := float64(i) / 100
		f.Data[i] = x*x - 3*x + 0.2*x*x*x/100
	}
	for _, cf := range []bool{false, true} {
		name := "lorenzo"
		c := sz.MustNew(sz.Abs, 1e-7)
		if cf {
			name = "curvefit"
			c = sz.MustNewCurveFit(sz.Abs, 1e-7)
		}
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(8 * f.Len()))
			var ratio float64
			for i := 0; i < b.N; i++ {
				enc, err := c.Compress(f)
				if err != nil {
					b.Fatal(err)
				}
				ratio = compress.Ratio(f, enc)
			}
			b.ReportMetric(ratio, "ratio")
		})
	}
}

// ChunkedCompress: concurrency sweep of the N-to-N per-rank pattern.
func BenchmarkChunkedCompress(b *testing.B) {
	f := benchField()
	data, delta, err := core.PaperCodecs("zfp")
	if err != nil {
		b.Fatal(err)
	}
	opts := core.Options{Model: reduce.OneBase{}, DataCodec: data, DeltaCodec: delta}
	for _, chunks := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("chunks=%d", chunks), func(b *testing.B) {
			b.SetBytes(int64(8 * f.Len()))
			for i := 0; i < b.N; i++ {
				if _, err := core.CompressChunked(f, opts, chunks); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// RandSVDvsExact: the randomized factorisation speedup.
func BenchmarkRandSVDvsExact(b *testing.B) {
	f := benchField()
	b.Run("exact", func(b *testing.B) {
		m := reduce.SVD{}
		b.SetBytes(int64(8 * f.Len()))
		for i := 0; i < b.N; i++ {
			if _, err := m.Reduce(f); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("randomized", func(b *testing.B) {
		m := reduce.SVD{MaxK: 8, Randomized: true, Seed: 1}
		b.SetBytes(int64(8 * f.Len()))
		for i := 0; i < b.N; i++ {
			if _, err := m.Reduce(f); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }

// AblationWaveletDecomposition: standard (full rows then full columns) vs
// nonstandard (pyramid) Haar — representation size at the paper's 5%
// threshold.
func BenchmarkAblationWaveletDecomposition(b *testing.B) {
	f := benchField()
	for _, ns := range []bool{false, true} {
		name := "standard"
		if ns {
			name = "nonstandard"
		}
		b.Run(name, func(b *testing.B) {
			m := reduce.Wavelet{Nonstandard: ns}
			var bytes int
			for i := 0; i < b.N; i++ {
				rep, err := m.Reduce(f)
				if err != nil {
					b.Fatal(err)
				}
				bytes = rep.SizeBytes()
			}
			b.ReportMetric(float64(bytes), "rep-bytes")
		})
	}
}

// AblationZFPRate: fixed-rate mode — exact 64/rate ratios with per-block
// quality variation.
func BenchmarkAblationZFPRate(b *testing.B) {
	f := benchField()
	for _, rate := range []int{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("rate=%d", rate), func(b *testing.B) {
			c := zfp.MustNewRate(rate)
			b.SetBytes(int64(8 * f.Len()))
			for i := 0; i < b.N; i++ {
				if _, err := c.Compress(f); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- allocation budgets (zero-alloc steady state) ---
//
// The codec hot paths draw scratch from the internal/parallel arenas, so
// steady-state compression performs a small constant number of heap
// allocations regardless of field size. These tests pin that property: a
// regression back to per-symbol or per-point allocation fails fast here,
// without waiting for the BENCH gate.

func TestSZCompressAllocBudget(t *testing.T) {
	f := benchField()
	c := sz.MustNew(sz.Abs, 1e-5).WithWorkers(1)
	// Warm the arenas and the pooled flate writer.
	if _, err := c.Compress(f); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := c.Compress(f); err != nil {
			t.Fatal(err)
		}
	})
	if allocs >= 100 {
		t.Errorf("sz small compress: %.0f allocs/op, budget < 100", allocs)
	}
}

func TestHuffmanEncodeAllocBudget(t *testing.T) {
	// Skewed symbols like sz quantization codes.
	syms := make([]int, 32768)
	for i := range syms {
		v := 32768
		switch {
		case i%97 == 0:
			v = 65536
		case i%13 == 0:
			v = 32768 + (i%7 - 3)
		case i%5 == 0:
			v = 32768 + i%3
		}
		syms[i] = v
	}
	if out := huffman.Encode(syms); len(out) == 0 {
		t.Fatal("empty encode")
	}
	allocs := testing.AllocsPerRun(20, func() {
		if out := huffman.Encode(syms); len(out) == 0 {
			t.Fatal("empty encode")
		}
	})
	if allocs >= 40 {
		t.Errorf("huffman encode: %.0f allocs/op, budget < 40", allocs)
	}
}

func TestHuffmanDecodeAllocBudget(t *testing.T) {
	syms := make([]int, 32768)
	for i := range syms {
		syms[i] = 32768 + i%5
	}
	enc := huffman.Encode(syms)
	if _, err := huffman.Decode(enc); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := huffman.Decode(enc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs >= 40 {
		t.Errorf("huffman decode: %.0f allocs/op, budget < 40", allocs)
	}
}

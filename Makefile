GO ?= go

.PHONY: build vet fmt lint lint-json test invariants faultsweep race race-trace race-profile fuzz bench bench-smoke bench-compare trace-smoke serve-smoke verify

build:
	$(GO) build ./...
	$(GO) build -tags invariants ./...

vet:
	$(GO) vet ./...

fmt:
	@bad=$$(gofmt -l .); if [ -n "$$bad" ]; then echo "gofmt needed on:"; echo "$$bad"; exit 1; fi

# The repo's own analyzers (cmd/lrmlint); non-zero exit on any finding.
lint:
	$(GO) run ./cmd/lrmlint ./...

# Machine-readable lint report: JSON diagnostics on stdout ([] when clean).
lint-json:
	$(GO) run ./cmd/lrmlint -json ./...

test:
	$(GO) test ./...

# Run the instrumented packages with the runtime assertions compiled in.
invariants:
	$(GO) test -tags invariants ./internal/compress/... ./internal/reduce/... ./internal/core/...

# Fault-injection sweep: every archive mutation must yield a classified
# error (never a panic, never an unbounded allocation).
faultsweep:
	$(GO) test -run TestSweepCorpus -count=1 ./internal/faultinject

# Concurrent packages under the race detector.
race:
	$(GO) test -race ./internal/obs/... ./internal/parallel/... ./internal/mpi/... ./internal/core/... ./internal/sim/laplace/... ./internal/sim/heat3d/... ./internal/compress/... ./internal/huffman/... ./internal/faultinject/... ./internal/linalg/... ./internal/serve/... ./cmd/lrmserve/...

# Trace recorder race-stress in isolation: concurrent Start/End against
# Snapshot/export/Reset, repeated so interleavings vary.
race-trace:
	$(GO) test -race -run TestConcurrentTraceStress -count=2 ./internal/obs/trace

# Continuous-profiler race-stress: real windows rotating concurrently with
# /debug/profile + /debug/flame scrapes and registry Reset.
race-profile:
	$(GO) test -race -run TestConcurrentWindowsAndScrapes -count=2 ./internal/obs/profile

# JSON benchmark harness (BENCH_<n>.json artifact); bench-smoke is the CI
# single-iteration configuration.
bench:
	$(GO) run ./cmd/lrmbench -iters 5 -out BENCH.json

bench-smoke:
	$(GO) run ./cmd/lrmbench -iters 1 -out /tmp/lrmbench-smoke.json

# Compare a fresh smoke run against the checked-in baseline artifact; the
# wide tolerance absorbs machine variance, not real regressions.
bench-compare: bench-smoke
	$(GO) run ./cmd/lrmbench -compare -tolerance 0.75 BENCH_5.json /tmp/lrmbench-smoke.json

# One traced pipeline pass exported as Chrome trace JSON
# (load at https://ui.perfetto.dev).
trace-smoke:
	$(GO) run ./cmd/lrmbench -iters 1 -out /tmp/lrmbench-smoke.json -trace /tmp/lrmbench-trace.json

# Serving smoke: in-process lrmserve under a short mixed load; fails on
# any 5xx, any transport error, or a loopback p99 above 2s.
serve-smoke:
	$(GO) run ./cmd/lrmbench -serve-load -serve-clients 4 -serve-duration 3s -serve-p99 2s

# Short mutation pass over the decoder fuzz targets (seeds always run in
# plain `make test`; this adds -fuzztime of coverage-guided input search).
fuzz:
	$(GO) test -fuzz=FuzzDecompress -fuzztime=10s -run='^$$' ./internal/compress/sz
	$(GO) test -fuzz=FuzzDecompress -fuzztime=10s -run='^$$' ./internal/compress/zfp
	$(GO) test -fuzz=FuzzDecompress -fuzztime=10s -run='^$$' ./internal/compress/fpc
	$(GO) test -fuzz=FuzzDecompressChunked -fuzztime=10s -run='^$$' ./internal/core
	$(GO) test -fuzz=FuzzWriteChromeTrace -fuzztime=10s -run='^$$' ./internal/obs/trace
	$(GO) test -fuzz=FuzzHistoryQuery -fuzztime=10s -run='^$$' ./internal/obs/tsdb
	$(GO) test -fuzz=FuzzParsePprof -fuzztime=10s -run='^$$' ./internal/obs/pprofparse

verify:
	./verify.sh

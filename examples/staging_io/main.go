// Table IV scenario: end-to-end time of writing simulation output with no
// compression, with direct ZFP/SZ, with PCA preconditioning, and with PCA
// offloaded to a staging node. Compression throughputs and ratios are
// measured on a real Heat3d subdomain; the platform (contended Lustre-like
// store + staging link) is an analytic model.
package main

import (
	"fmt"
	"log"

	"lrm/internal/core"
	"lrm/internal/iosim"
	"lrm/internal/reduce"
	"lrm/internal/sim/heat3d"
)

func main() {
	// One rank's subdomain, used to measure codec throughput and ratio.
	cfg := heat3d.Default(32)
	cfg.Steps = 150
	sample := heat3d.Solve(cfg)

	zfpData, zfpDelta, err := core.PaperCodecs("zfp")
	if err != nil {
		log.Fatal(err)
	}
	szData, szDelta, err := core.PaperCodecs("sz")
	if err != nil {
		log.Fatal(err)
	}

	methods := []iosim.Method{iosim.Baseline()}
	for _, spec := range []struct {
		name string
		opts core.Options
	}{
		{"ZFP+I/O", core.Options{DataCodec: zfpData}},
		{"SZ+I/O", core.Options{DataCodec: szData}},
		{"PCA(ZFP)+I/O", core.Options{Model: reduce.PCA{}, DataCodec: zfpData, DeltaCodec: zfpDelta}},
		{"PCA(SZ)+I/O", core.Options{Model: reduce.PCA{}, DataCodec: szData, DeltaCodec: szDelta}},
	} {
		m, err := iosim.MeasureMethod(spec.name, sample, spec.opts, false)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("measured %-14s throughput %7.1f MB/s, ratio %6.2fx\n",
			m.Name, m.Throughput/1e6, m.Ratio)
		methods = append(methods, m)
	}
	methods = append(methods, iosim.StagedMethod("Staging+PCA+I/O"))

	platform := iosim.TitanLike()
	entries, err := iosim.EndToEnd(platform, methods)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nplatform: %d ranks, %.2f GB/rank, %.0f GB/s aggregate PFS, %.1f GB/s staging link\n\n",
		platform.Ranks, platform.BytesPerRank/1e9,
		platform.AggregateBandwidth/1e9, platform.StagingBandwidth/1e9)
	fmt.Printf("%-36s %14s %10s %10s\n", "Method", "Compression(s)", "I/O(s)", "Total(s)")
	for _, e := range entries {
		comp := "N/A"
		if e.CompressTime > 0 {
			comp = fmt.Sprintf("%.2f", e.CompressTime)
		}
		fmt.Printf("%-36s %14s %10.2f %10.2f\n", e.Method, comp, e.IOTime, e.TotalTime)
	}

	fmt.Println("\nThe Table IV story: direct lossy compression beats raw I/O; the")
	fmt.Println("preconditioner's extra compute can erase that win on the critical")
	fmt.Println("path; staging moves it off the critical path and wins outright.")
}

// Time-series compression: successive simulation outputs are themselves
// highly similar, so the previous frame acts as a temporal reduced model
// (the delta-snapshot idea the paper's introduction cites alongside its
// spatial reduced models). This example compresses a Heat3d snapshot series
// as one archive and compares against compressing every frame
// independently.
package main

import (
	"fmt"
	"log"

	"lrm/internal/compress/zfp"
	"lrm/internal/core"
	"lrm/internal/reduce"
	"lrm/internal/sim/heat3d"
	"lrm/internal/stats"
)

func main() {
	cfg := heat3d.Default(32)
	cfg.Steps = 300
	const frames = 12
	snaps := heat3d.Snapshots(cfg, frames)
	raw := 0
	for _, s := range snaps {
		raw += 8 * s.Len()
	}
	fmt.Printf("series: %d frames of %v (%d bytes raw)\n\n", frames, snaps[0].Dims, raw)

	// An absolute-error codec: small temporal deltas need few bit planes.
	codec := zfp.MustNewAccuracy(1e-5)
	opts := core.Options{Model: reduce.OneBase{}, DataCodec: codec, DeltaCodec: codec}

	series, err := core.CompressSeries(snaps, opts)
	if err != nil {
		log.Fatal(err)
	}

	independent := 0
	for _, s := range snaps {
		res, err := core.Compress(s, opts)
		if err != nil {
			log.Fatal(err)
		}
		independent += len(res.Archive)
	}

	fmt.Printf("independent frames: %9d bytes (ratio %.2fx)\n",
		independent, float64(raw)/float64(independent))
	fmt.Printf("temporal series:    %9d bytes (ratio %.2fx)\n",
		len(series.Archive), series.Ratio())
	fmt.Printf("series advantage:   %.2fx\n\n", float64(independent)/float64(len(series.Archive)))

	fmt.Println("per-frame stored bytes (frame 0 is the spatial-pipeline keyframe):")
	for i, b := range series.FrameBytes {
		fmt.Printf("  frame %2d: %7d bytes\n", i, b)
	}

	// Verify the round trip stays within the codec tolerance on every frame.
	decoded, err := core.DecompressSeries(series.Archive)
	if err != nil {
		log.Fatal(err)
	}
	worst := 0.0
	for i := range snaps {
		if e := stats.MaxAbsError(snaps[i].Data, decoded[i].Data); e > worst {
			worst = e
		}
	}
	fmt.Printf("\nworst per-point error across all frames: %.2e (codec tolerance 1e-05;\n", worst)
	fmt.Println("the rolling-reconstruction design keeps error from accumulating)")
}

// Random access into compressed data: ZFP's fixed-rate mode stores every
// 4^d block at an identical bit cost, so any sample can be decoded by
// touching exactly one block — no full decompression. This example
// compresses a 3-D field at several rates and compares probing a handful
// of points via DecodeAt against decompressing everything.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"lrm/internal/compress/zfp"
	"lrm/internal/sim/heat3d"
	"lrm/internal/stats"
)

func main() {
	cfg := heat3d.Default(48)
	cfg.Steps = 200
	field := heat3d.Solve(cfg)
	raw := 8 * field.Len()
	fmt.Printf("field: %v (%d bytes raw)\n\n", field.Dims, raw)

	fmt.Printf("%6s %12s %10s %14s %16s\n", "rate", "stream", "ratio", "RMSE", "probe 64 pts")
	for _, rate := range []int{4, 8, 16, 32} {
		codec := zfp.MustNewRate(rate)
		enc, err := codec.Compress(field)
		if err != nil {
			log.Fatal(err)
		}
		full, err := codec.Decompress(enc)
		if err != nil {
			log.Fatal(err)
		}

		// Probe 64 random samples without decompressing the field.
		rng := rand.New(rand.NewSource(1))
		start := time.Now()
		for p := 0; p < 64; p++ {
			k, j, i := rng.Intn(48), rng.Intn(48), rng.Intn(48)
			got, err := codec.DecodeAt(enc, k, j, i)
			if err != nil {
				log.Fatal(err)
			}
			//lrmlint:ignore floatcmp random access must agree with the full decode bit-exactly
			if got != full.At3(k, j, i) {
				log.Fatalf("DecodeAt disagrees with full decode at (%d,%d,%d)", k, j, i)
			}
		}
		probe := time.Since(start)

		fmt.Printf("%6d %11dB %9.2fx %14.2e %16s\n",
			rate, len(enc), float64(raw)/float64(len(enc)),
			stats.RMSE(field.Data, full.Data), probe.Round(time.Microsecond))
	}

	fmt.Println("\nThe stream size is exactly dims x rate / 8 regardless of content;")
	fmt.Println("each probe decodes one 4x4x4 block — compressed-array semantics.")
}

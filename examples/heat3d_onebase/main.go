// Algorithm 1 end to end: run the MPI-parallel Heat3d solver, then perform
// the paper's one-base delta computation exactly as written — the rank that
// owns the middle plane broadcasts it, every rank subtracts it from its
// local slabs, and rank 0 gathers the deltas, compresses them, and reports
// the compression win over compressing the raw field.
package main

import (
	"fmt"
	"log"

	"lrm/internal/compress/zfp"
	"lrm/internal/grid"
	"lrm/internal/mpi"
	"lrm/internal/sim/heat3d"
)

func main() {
	const ranks = 4
	cfg := heat3d.Default(32)
	cfg.Steps = 200

	// Run the full model in parallel (slab decomposition over Z with halo
	// exchanges), like the paper's 512-processor Titan runs.
	field, err := heat3d.SolveParallel(cfg, ranks)
	if err != nil {
		log.Fatal(err)
	}
	n := cfg.N
	plane := n * n
	fmt.Printf("Heat3d solved on %d ranks: %v\n\n", ranks, field.Dims)

	// Algorithm 1: compute the one-base delta with explicit MPI traffic.
	midOwnerPlane := n / 2
	deltas := grid.New(n, n, n)
	world := mpi.NewWorld(ranks)
	world.Run(func(c *mpi.Comm) {
		lo, hi := mpi.Slab1D(n, c.Size(), c.Rank())

		// Lines 1-5: the rank holding u(m_z/2) broadcasts the plane.
		var base []float64
		if lo <= midOwnerPlane && midOwnerPlane < hi {
			base = field.Data[midOwnerPlane*plane : (midOwnerPlane+1)*plane]
			for r := 0; r < c.Size(); r++ {
				if r != c.Rank() {
					c.Send(r, 0, base)
				}
			}
		} else {
			owner := 0
			for r := 0; r < c.Size(); r++ {
				rlo, rhi := mpi.Slab1D(n, c.Size(), r)
				if rlo <= midOwnerPlane && midOwnerPlane < rhi {
					owner = r
				}
			}
			base = c.Recv(owner, 0)
		}

		// Lines 6-8: Delta(i) = u(i) - u(m_z/2) for the local slabs.
		local := make([]float64, (hi-lo)*plane)
		for k := lo; k < hi; k++ {
			for idx := 0; idx < plane; idx++ {
				local[(k-lo)*plane+idx] = field.Data[k*plane+idx] - base[idx]
			}
		}

		// Line 9: gather the delta at rank 0.
		parts := c.Gather(0, local)
		if c.Rank() == 0 {
			pos := 0
			for _, p := range parts {
				copy(deltas.Data[pos:], p)
				pos += len(p)
			}
		}
	})

	// Compare compressing the raw field vs base + delta.
	codec := zfp.MustNew(16)
	deltaCodec := zfp.MustNew(8)

	rawStream, err := codec.Compress(field)
	if err != nil {
		log.Fatal(err)
	}
	basePlane := field.Plane(midOwnerPlane)
	baseStream, err := codec.Compress(basePlane)
	if err != nil {
		log.Fatal(err)
	}
	deltaStream, err := deltaCodec.Compress(deltas)
	if err != nil {
		log.Fatal(err)
	}

	raw := 8 * field.Len()
	direct := len(rawStream)
	precond := len(baseStream) + len(deltaStream)
	fmt.Printf("raw data:                %9d bytes\n", raw)
	fmt.Printf("direct ZFP:              %9d bytes (ratio %.2fx)\n", direct, float64(raw)/float64(direct))
	fmt.Printf("one-base (plane+delta):  %9d bytes (ratio %.2fx)\n", precond, float64(raw)/float64(precond))
	fmt.Printf("\nimprovement from Algorithm 1: %.2fx\n", float64(direct)/float64(precond))
}

// Model selection (the paper's second future-work direction): no single
// reduced model is best for every dataset, so try each candidate per
// dataset and pick the winner before reduction. This example sweeps the
// nine Table I datasets and prints the selection matrix.
package main

import (
	"fmt"
	"log"

	"lrm/internal/core"
	"lrm/internal/dataset"
)

func main() {
	data, delta, err := core.PaperCodecs("zfp")
	if err != nil {
		log.Fatal(err)
	}
	opts := core.Options{DataCodec: data, DeltaCodec: delta}

	fmt.Printf("%-14s", "dataset")
	for _, c := range core.DefaultCandidates() {
		fmt.Printf(" %10s", c.Label)
	}
	fmt.Printf("  -> %s\n", "winner")

	for _, name := range dataset.Names() {
		pair, err := dataset.Generate(name, dataset.Small)
		if err != nil {
			log.Fatal(err)
		}
		best, results, err := core.SelectModel(pair.Full, core.DefaultCandidates(), opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s", name)
		for _, r := range results {
			if r.Err != nil {
				fmt.Printf(" %10s", "fail")
			} else {
				fmt.Printf(" %9.2fx", r.Ratio)
			}
		}
		fmt.Printf("  -> %s\n", best.Label)
	}

	fmt.Println("\nThe winner varies by dataset — exactly the observation that")
	fmt.Println("motivates selecting the model before reduction (Section VII).")
}

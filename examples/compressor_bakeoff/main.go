// Compressor bake-off: run every codec (ZFP fixed-precision, ZFP
// fixed-accuracy, SZ in all three bound modes, SZ with curve fitting, FPC,
// flate) directly over the nine Table I datasets and print ratio plus
// error. A compact tour of the compressor substrate on its own, without
// preconditioning.
package main

import (
	"fmt"
	"log"

	"lrm/internal/compress"
	"lrm/internal/compress/fpc"
	"lrm/internal/compress/sz"
	"lrm/internal/compress/zfp"
	"lrm/internal/dataset"
	"lrm/internal/stats"
)

func main() {
	codecs := []compress.Codec{
		zfp.MustNew(16),
		zfp.MustNewAccuracy(1e-4),
		sz.MustNew(sz.Abs, 1e-4),
		sz.MustNew(sz.ValueRangeRel, 1e-5),
		sz.MustNew(sz.PointwiseRel, 1e-4),
		sz.MustNewCurveFit(sz.Abs, 1e-4),
		fpc.MustNew(16),
		compress.NewFlate(6),
	}

	fmt.Printf("%-14s %-18s %8s %12s %9s\n", "dataset", "codec", "ratio", "max err", "lossless")
	for _, name := range dataset.Names() {
		pair, err := dataset.Generate(name, dataset.Small)
		if err != nil {
			log.Fatal(err)
		}
		f := pair.Full
		for _, c := range codecs {
			enc, err := c.Compress(f)
			if err != nil {
				log.Fatalf("%s/%s: %v", name, c.Name(), err)
			}
			dec, err := c.Decompress(enc)
			if err != nil {
				log.Fatalf("%s/%s: %v", name, c.Name(), err)
			}
			fmt.Printf("%-14s %-18s %7.2fx %12.2e %9v\n",
				name, c.Name(), compress.Ratio(f, enc),
				stats.MaxAbsError(f.Data, dec.Data), c.Lossless())
		}
		fmt.Println()
	}
}

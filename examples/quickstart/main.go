// Quickstart: generate a Heat3d field, precondition it with each reduced
// model, compress with the paper's ZFP configuration, and verify the round
// trip — the minimal end-to-end tour of the public pipeline.
package main

import (
	"fmt"
	"log"

	"lrm/internal/core"
	"lrm/internal/reduce"
	"lrm/internal/sim/heat3d"
	"lrm/internal/stats"
)

func main() {
	// 1. Produce some science data: a 3-D heat field after 150 steps.
	cfg := heat3d.Default(32)
	cfg.Steps = 150
	field := heat3d.Solve(cfg)
	fmt.Printf("generated Heat3d %v (%d values, %d bytes raw)\n\n",
		field.Dims, field.Len(), 8*field.Len())

	// 2. The paper's codec configuration: ZFP 16-bit precision for data
	//    and reduced representations, 8-bit for the (smoother) delta.
	data, delta, err := core.PaperCodecs("zfp")
	if err != nil {
		log.Fatal(err)
	}

	// 3. Compress directly and with every reduced model.
	models := []struct {
		name  string
		model reduce.Model
	}{
		{"direct (no preconditioning)", nil},
		{"one-base", reduce.OneBase{}},
		{"multi-base", reduce.MultiBase{Blocks: 4}},
		{"duomodel", reduce.DuoModel{Factor: 4}},
		{"pca", reduce.PCA{}},
		{"svd", reduce.SVD{}},
		{"wavelet", reduce.Wavelet{}},
	}
	fmt.Printf("%-28s %10s %12s %12s\n", "method", "ratio", "max error", "RMSE")
	for _, m := range models {
		res, err := core.Compress(field, core.Options{
			Model: m.model, DataCodec: data, DeltaCodec: delta,
		})
		if err != nil {
			log.Fatalf("%s: %v", m.name, err)
		}
		// 4. Round trip and measure the information loss.
		back, err := core.Decompress(res.Archive)
		if err != nil {
			log.Fatalf("%s: decompress: %v", m.name, err)
		}
		fmt.Printf("%-28s %9.2fx %12.2e %12.2e\n",
			m.name, res.Ratio(),
			stats.MaxAbsError(field.Data, back.Data),
			stats.RMSE(field.Data, back.Data))
	}

	fmt.Println("\nPreconditioning pays on this Z-symmetric data: the mid-plane")
	fmt.Println("(one-base) captures the latent structure, so only a smooth delta")
	fmt.Println("reaches the compressor.")
}

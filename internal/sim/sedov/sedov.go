// Package sedov generates the Sedov_pres dataset of Table I: "pressure of
// strong shocks in a hydrodynamical simulation".
//
// The generator combines the Sedov–Taylor self-similar blast-wave solution
// (the classic strong-shock benchmark every hydro code ships) with a short
// finite-volume-style diffusion relaxation that rounds the discontinuity
// the way a real shock-capturing scheme does. The full/reduced pairing
// follows the paper: the reduced model uses a smaller computational volume
// and half the evolution time (the CFL-limited step count).
package sedov

import (
	"math"

	"lrm/internal/grid"
)

// Config describes a Sedov blast snapshot.
type Config struct {
	// N is the grid size per dimension.
	N int
	// BoxSize is the edge length of the cubic computational volume (the
	// paper uses (1,1,1) full, (0.5,0.5,0.5) reduced).
	BoxSize float64
	// Energy is the point-blast energy driving the shock.
	Energy float64
	// Rho0 is the ambient density.
	Rho0 float64
	// Time is the evolution time at which the snapshot is taken. The
	// paper's step counts (20,000 vs 10,000 under CFL) map to times here.
	Time float64
	// AmbientPressure is the pre-shock pressure floor.
	AmbientPressure float64
	// SmoothPasses rounds the shock front like a finite-volume scheme's
	// numerical viscosity; 0 keeps the raw self-similar profile.
	SmoothPasses int
}

// Default returns a paper-shaped full-model configuration at grid size n.
func Default(n int) Config {
	return Config{
		N: n, BoxSize: 1, Energy: 1, Rho0: 1, Time: 0.05,
		AmbientPressure: 1e-3, SmoothPasses: 2,
	}
}

// Reduced derives the paper's reduced configuration from a full one: half
// the computational volume and half the time-step count. Halving the box
// halves the CFL-limited dt as well, so 10,000 steps at dt/2 reach a
// quarter of the full model's physical time.
func Reduced(full Config) Config {
	r := full
	r.BoxSize = full.BoxSize / 2
	r.Time = full.Time / 4
	return r
}

// ShockRadius returns the Sedov–Taylor similarity radius
// R(t) = xi0 * (E t^2 / rho0)^(1/5) with xi0 ~ 1.15 for gamma = 1.4.
func (c Config) ShockRadius() float64 {
	const xi0 = 1.15
	return xi0 * math.Pow(c.Energy*c.Time*c.Time/c.Rho0, 0.2)
}

// Generate returns the pressure field on an N^3 grid centred on the blast.
func Generate(cfg Config) *grid.Field {
	n := cfg.N
	f := grid.New(n, n, n)
	rs := cfg.ShockRadius()
	// Post-shock pressure from the strong-shock jump condition:
	// p2 = 2/(gamma+1) * rho0 * U^2 with U = dR/dt = 2R/(5t).
	const gamma = 1.4
	u := 2 * rs / (5 * cfg.Time)
	p2 := 2 / (gamma + 1) * cfg.Rho0 * u * u

	inv := cfg.BoxSize / float64(n-1)
	half := cfg.BoxSize / 2
	for k := 0; k < n; k++ {
		z := float64(k)*inv - half
		for j := 0; j < n; j++ {
			y := float64(j)*inv - half
			for i := 0; i < n; i++ {
				x := float64(i)*inv - half
				r := math.Sqrt(x*x + y*y + z*z)
				f.Set3(pressureProfile(r, rs, p2, cfg.AmbientPressure), k, j, i)
			}
		}
	}
	for p := 0; p < cfg.SmoothPasses; p++ {
		diffuse(f)
	}
	return f
}

// pressureProfile approximates the interior Sedov pressure: a steep rise to
// the shock at r = rs, with the central plateau at ~0.3 of the peak (the
// known gamma = 1.4 interior solution shape), and ambient pressure outside.
func pressureProfile(r, rs, p2, ambient float64) float64 {
	if r >= rs {
		return ambient
	}
	x := r / rs
	// Interior: p/p2 ~ 0.306 at the origin rising sharply near the front.
	// A smooth rational blend captures the published profile shape.
	interior := 0.306 + 0.694*math.Pow(x, 6)
	return ambient + p2*interior
}

// diffuse applies one pass of a 7-point smoothing stencil (numerical
// viscosity), rounding the discontinuity at the shock front.
func diffuse(f *grid.Field) {
	n := f.Dims[0]
	src := append([]float64(nil), f.Data...)
	at := func(k, j, i int) float64 { return src[(k*n+j)*n+i] }
	for k := 1; k < n-1; k++ {
		for j := 1; j < n-1; j++ {
			for i := 1; i < n-1; i++ {
				v := 0.5*at(k, j, i) + (at(k+1, j, i)+at(k-1, j, i)+
					at(k, j+1, i)+at(k, j-1, i)+at(k, j, i+1)+at(k, j, i-1))/12
				f.Set3(v, k, j, i)
			}
		}
	}
}

// Snapshots returns `count` pressure fields at evenly spaced times ending
// at cfg.Time (the time-series protocol of the experiments).
func Snapshots(cfg Config, count int) []*grid.Field {
	if count < 1 {
		return nil
	}
	out := make([]*grid.Field, count)
	for s := 0; s < count; s++ {
		c := cfg
		c.Time = cfg.Time * float64(s+1) / float64(count)
		out[s] = Generate(c)
	}
	return out
}

package sedov

import (
	"math"
	"testing"
)

func TestShockRadiusGrowsWithTime(t *testing.T) {
	a := Default(16)
	b := a
	b.Time = 2 * a.Time
	if b.ShockRadius() <= a.ShockRadius() {
		t.Fatalf("shock radius did not grow: %v vs %v", b.ShockRadius(), a.ShockRadius())
	}
	// Self-similar scaling: R ~ t^(2/5).
	ratio := b.ShockRadius() / a.ShockRadius()
	want := math.Pow(2, 0.4)
	if math.Abs(ratio-want) > 1e-12 {
		t.Fatalf("similarity scaling ratio = %v, want %v", ratio, want)
	}
}

func TestPressureStructure(t *testing.T) {
	cfg := Default(32)
	f := Generate(cfg)
	n := cfg.N
	c := n / 2
	centre := f.At3(c, c, c)
	corner := f.At3(0, 0, 0)
	// The corner is outside the shock: ambient pressure (smoothing may
	// nudge it slightly).
	if corner > cfg.AmbientPressure*10 {
		t.Fatalf("corner pressure %v far above ambient %v", corner, cfg.AmbientPressure)
	}
	// Centre is shocked: far above ambient.
	if centre < cfg.AmbientPressure*100 {
		t.Fatalf("centre pressure %v not shocked", centre)
	}
	// Peak pressure lies near the shock front, not at the centre.
	_, hi := f.MinMax()
	if hi <= centre {
		t.Fatalf("peak %v should exceed central plateau %v", hi, centre)
	}
	// All pressures positive.
	lo, _ := f.MinMax()
	if lo <= 0 {
		t.Fatalf("non-positive pressure %v", lo)
	}
}

func TestSphericalSymmetry(t *testing.T) {
	cfg := Default(24)
	cfg.SmoothPasses = 0
	f := Generate(cfg)
	n := cfg.N
	c := n / 2
	// Points equidistant from the centre along axes must match.
	for off := 1; off < n/2; off++ {
		px := f.At3(c, c, c+off)
		py := f.At3(c, c+off, c)
		pz := f.At3(c+off, c, c)
		if math.Abs(px-py) > 1e-12 || math.Abs(px-pz) > 1e-12 {
			t.Fatalf("asymmetry at offset %d: %v %v %v", off, px, py, pz)
		}
	}
}

func TestReducedConfig(t *testing.T) {
	full := Default(16)
	red := Reduced(full)
	if red.BoxSize != full.BoxSize/2 || red.Time != full.Time/4 {
		t.Fatalf("reduced = %+v", red)
	}
	// Both must generate cleanly.
	for _, cfg := range []Config{full, red} {
		f := Generate(cfg)
		for _, v := range f.Data {
			if math.IsNaN(v) {
				t.Fatal("NaN in sedov output")
			}
		}
	}
}

func TestSmoothingRoundsShock(t *testing.T) {
	sharp := Default(32)
	sharp.SmoothPasses = 0
	smooth := Default(32)
	smooth.SmoothPasses = 4
	fs := Generate(sharp)
	fm := Generate(smooth)
	// Max gradient along a ray through the shock must be lower after
	// smoothing.
	maxGrad := func(f []float64) float64 {
		g := 0.0
		for i := 1; i < len(f); i++ {
			if d := math.Abs(f[i] - f[i-1]); d > g {
				g = d
			}
		}
		return g
	}
	n := 32
	c := n / 2
	raySharp := make([]float64, n)
	raySmooth := make([]float64, n)
	for i := 0; i < n; i++ {
		raySharp[i] = fs.At3(c, c, i)
		raySmooth[i] = fm.At3(c, c, i)
	}
	if maxGrad(raySmooth) >= maxGrad(raySharp) {
		t.Fatalf("smoothing did not reduce shock gradient: %v vs %v",
			maxGrad(raySmooth), maxGrad(raySharp))
	}
}

func TestSnapshotsExpand(t *testing.T) {
	cfg := Default(16)
	snaps := Snapshots(cfg, 4)
	if len(snaps) != 4 {
		t.Fatalf("snapshots = %d", len(snaps))
	}
	// Later snapshots have larger shocked regions: count above-ambient
	// cells.
	count := func(f []float64) int {
		n := 0
		for _, v := range f {
			if v > cfg.AmbientPressure*50 {
				n++
			}
		}
		return n
	}
	if count(snaps[3].Data) <= count(snaps[0].Data) {
		t.Fatal("shocked region did not expand over snapshots")
	}
	if Snapshots(cfg, 0) != nil {
		t.Fatal("zero snapshots should be nil")
	}
}

// Package wave implements the 1-D wave equation ("hyperbolic PDE for the
// description of waves", Table I) with leapfrog time stepping:
//
//	d2u/dt2 = c^2 * d2u/dx2
//
// on the unit interval with fixed (reflecting) ends and a Gaussian pulse
// initial displacement. Scaling down N yields the reduced model.
package wave

import (
	"math"

	"lrm/internal/grid"
)

// Config describes a wave run.
type Config struct {
	// N is the number of spatial points.
	N int
	// Steps is the number of leapfrog steps.
	Steps int
	// C is the wave speed.
	C float64
	// Courant is the CFL number dt*c/h; must be <= 1 for stability.
	Courant float64
	// PulseCenter and PulseWidth shape the initial Gaussian displacement.
	PulseCenter, PulseWidth float64
}

// Default returns the baseline configuration with n points.
func Default(n int) Config {
	return Config{N: n, Steps: 2 * n, C: 1, Courant: 0.5, PulseCenter: 0.3, PulseWidth: 0.05}
}

func (c Config) withDefaults() Config {
	if c.C == 0 {
		c.C = 1
	}
	if c.Courant == 0 {
		c.Courant = 0.5
	}
	if c.PulseWidth == 0 {
		c.PulseWidth = 0.05
	}
	if c.PulseCenter == 0 {
		c.PulseCenter = 0.3
	}
	if c.Steps == 0 {
		c.Steps = 2 * c.N
	}
	return c
}

// Init returns the initial displacement.
func Init(cfg Config) *grid.Field {
	cfg = cfg.withDefaults()
	f := grid.New(cfg.N)
	inv := 1.0 / float64(cfg.N-1)
	w2 := 2 * cfg.PulseWidth * cfg.PulseWidth
	for i := 0; i < cfg.N; i++ {
		x := float64(i) * inv
		d := x - cfg.PulseCenter
		f.Data[i] = math.Exp(-d * d / w2)
	}
	f.Data[0] = 0
	f.Data[cfg.N-1] = 0
	return f
}

// Solve runs the leapfrog scheme and returns the final displacement.
func Solve(cfg Config) *grid.Field {
	snaps := Snapshots(cfg, 1)
	return snaps[0]
}

// Snapshots captures `count` evenly spaced displacement states.
func Snapshots(cfg Config, count int) []*grid.Field {
	cfg = cfg.withDefaults()
	if count < 1 {
		return nil
	}
	n := cfg.N
	cur := Init(cfg)
	prev := cur.Clone() // zero initial velocity: u(t-dt) = u(t)
	next := grid.New(n)
	s2 := cfg.Courant * cfg.Courant

	every := cfg.Steps / count
	if every < 1 {
		every = 1
	}
	out := make([]*grid.Field, 0, count)
	for s := 1; s <= cfg.Steps; s++ {
		for i := 1; i < n-1; i++ {
			next.Data[i] = 2*cur.Data[i] - prev.Data[i] +
				s2*(cur.Data[i+1]-2*cur.Data[i]+cur.Data[i-1])
		}
		next.Data[0] = 0
		next.Data[n-1] = 0
		prev, cur, next = cur, next, prev
		if s%every == 0 && len(out) < count {
			out = append(out, cur.Clone())
		}
	}
	for len(out) < count {
		out = append(out, cur.Clone())
	}
	return out
}

// Energy returns the discrete wave energy (kinetic via backward difference
// not available here, so this reports the potential part plus displacement
// norm), useful as a stability smoke signal: it must stay bounded.
func Energy(u *grid.Field) float64 {
	e := 0.0
	for i := 1; i < u.Dims[0]; i++ {
		d := u.Data[i] - u.Data[i-1]
		e += d * d
	}
	return e
}

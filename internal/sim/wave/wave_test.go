package wave

import (
	"math"
	"testing"
)

func TestEndsFixed(t *testing.T) {
	cfg := Default(101)
	for _, s := range Snapshots(cfg, 5) {
		if s.Data[0] != 0 || s.Data[cfg.N-1] != 0 {
			t.Fatal("boundary moved")
		}
	}
}

func TestStableUnderCFL(t *testing.T) {
	cfg := Default(201)
	cfg.Steps = 2000
	u := Solve(cfg)
	lo, hi := u.MinMax()
	if math.IsNaN(lo) || math.IsNaN(hi) || math.Abs(lo) > 3 || math.Abs(hi) > 3 {
		t.Fatalf("solution blew up: [%v, %v]", lo, hi)
	}
}

func TestEnergyBounded(t *testing.T) {
	cfg := Default(151)
	snaps := Snapshots(cfg, 10)
	e0 := Energy(snaps[0])
	for i, s := range snaps {
		if e := Energy(s); e > 4*e0+1 {
			t.Fatalf("energy grew unboundedly at snapshot %d: %v vs %v", i, e, e0)
		}
	}
}

func TestPulsePropagates(t *testing.T) {
	// After some steps the pulse peak must have moved away from its origin.
	cfg := Default(201)
	cfg.Steps = 150
	u := Solve(cfg)
	init := Init(cfg)
	peakAt := func(f []float64) int {
		best, arg := math.Inf(-1), 0
		for i, v := range f {
			if v > best {
				best, arg = v, i
			}
		}
		return arg
	}
	if d := peakAt(u.Data) - peakAt(init.Data); d == 0 {
		t.Fatal("pulse did not move")
	}
}

func TestSplitsIntoTwoPulses(t *testing.T) {
	// Zero initial velocity splits the pulse into two half-amplitude waves.
	cfg := Default(401)
	cfg.Steps = 300
	u := Solve(cfg)
	_, hi := u.MinMax()
	if hi > 0.75 || hi < 0.25 {
		t.Fatalf("expected ~half-amplitude pulses, max = %v", hi)
	}
}

func TestSnapshotCount(t *testing.T) {
	cfg := Default(51)
	if got := len(Snapshots(cfg, 20)); got != 20 {
		t.Fatalf("snapshots = %d", got)
	}
	if Snapshots(cfg, -1) != nil {
		t.Fatal("negative count should be nil")
	}
}

func TestDefaultsApplied(t *testing.T) {
	u := Solve(Config{N: 20})
	for _, v := range u.Data {
		if math.IsNaN(v) {
			t.Fatal("NaN with defaulted config")
		}
	}
}

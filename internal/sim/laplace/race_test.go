package laplace

import (
	"sync"
	"testing"
)

// TestSolveParallelConcurrentWorlds runs several rank decompositions of the
// same problem simultaneously — one MPI world per goroutine — and checks
// each against the serial solver bit-for-bit. Exists chiefly so that
// `go test -race` sees the halo exchange, gather, and barrier paths under
// maximal scheduler pressure.
func TestSolveParallelConcurrentWorlds(t *testing.T) {
	cfg := Default(20)
	cfg.Iters = 60
	serial := Solve(cfg)

	var wg sync.WaitGroup
	for ranks := 1; ranks <= 6; ranks++ {
		wg.Add(1)
		go func(ranks int) {
			defer wg.Done()
			par, err := SolveParallel(cfg, ranks)
			if err != nil {
				t.Errorf("ranks=%d: %v", ranks, err)
				return
			}
			for i := range serial.Data {
				if par.Data[i] != serial.Data[i] {
					t.Errorf("ranks=%d: diverges from serial at %d: %v != %v", ranks, i, par.Data[i], serial.Data[i])
					return
				}
			}
		}(ranks)
	}
	wg.Wait()
}

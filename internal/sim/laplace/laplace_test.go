package laplace

import (
	"math"
	"testing"
)

func TestBoundariesFixed(t *testing.T) {
	cfg := Default(24)
	u := Solve(cfg)
	n := cfg.N
	for i := 0; i < n; i++ {
		want := cfg.TopTemp * math.Sin(math.Pi*float64(i)/float64(n-1))
		if math.Abs(u.At2(0, i)-want) > 1e-12 {
			t.Fatalf("top boundary moved at %d", i)
		}
		// sin(pi) is ~1e-16 in floating point, so the top corners are not
		// exactly zero; everything else on the cold edges must be.
		if math.Abs(u.At2(n-1, i)) > 1e-10 || math.Abs(u.At2(i, 0)) > 1e-10 || math.Abs(u.At2(i, n-1)) > 1e-10 {
			t.Fatalf("zero boundary moved at %d", i)
		}
	}
}

func TestResidualDecreases(t *testing.T) {
	cfg := Default(32)
	snaps := Snapshots(cfg, 4)
	prev := math.Inf(1)
	for i, s := range snaps {
		r := Residual(s)
		if r > prev*1.001 {
			t.Fatalf("residual grew at snapshot %d: %v > %v", i, r, prev)
		}
		prev = r
	}
}

func TestConvergesToAnalytic(t *testing.T) {
	cfg := Default(24)
	cfg.Iters = 8000 // far beyond the default; near-exact convergence
	u := Solve(cfg)
	exact := Analytic(cfg)
	var maxErr float64
	for i := range u.Data {
		if e := math.Abs(u.Data[i] - exact.Data[i]); e > maxErr {
			maxErr = e
		}
	}
	// Discretisation error dominates at this N; the two must agree well.
	if maxErr > 0.5 {
		t.Fatalf("max error vs analytic = %v", maxErr)
	}
}

func TestMaximumPrinciple(t *testing.T) {
	cfg := Default(20)
	u := Solve(cfg)
	lo, hi := u.MinMax()
	if lo < -1e-12 || hi > cfg.TopTemp+1e-12 {
		t.Fatalf("values escaped boundary range: [%v, %v]", lo, hi)
	}
}

func TestSnapshotsCount(t *testing.T) {
	cfg := Default(16)
	if got := len(Snapshots(cfg, 7)); got != 7 {
		t.Fatalf("snapshots = %d, want 7", got)
	}
	if Snapshots(cfg, 0) != nil {
		t.Fatal("zero snapshots should be nil")
	}
}

func TestDefaultsApplied(t *testing.T) {
	u := Solve(Config{N: 10})
	for _, v := range u.Data {
		if math.IsNaN(v) {
			t.Fatal("NaN with defaulted config")
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	cfg := Default(20)
	cfg.Iters = 50
	serial := Solve(cfg)
	for _, ranks := range []int{1, 2, 3, 5} {
		par, err := SolveParallel(cfg, ranks)
		if err != nil {
			t.Fatal(err)
		}
		for i := range serial.Data {
			if serial.Data[i] != par.Data[i] {
				t.Fatalf("ranks=%d: mismatch at %d: %v vs %v", ranks, i, serial.Data[i], par.Data[i])
			}
		}
	}
}

func TestParallelValidation(t *testing.T) {
	cfg := Default(10)
	if _, err := SolveParallel(cfg, 0); err == nil {
		t.Fatal("expected 0-rank rejection")
	}
	if _, err := SolveParallel(cfg, 99); err == nil {
		t.Fatal("expected too-many-ranks rejection")
	}
}

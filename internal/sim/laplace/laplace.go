// Package laplace implements a 2-D Laplace equation solver (Jacobi
// iteration), the second classical PDE dataset of Table I: "description of
// steady state situations of values distributions".
//
// The domain is the unit square with fixed Dirichlet boundary values; the
// interior relaxes toward the harmonic steady state. Snapshots along the
// iteration provide the "20 outputs" protocol, and scaling down the problem
// size yields the reduced model exactly as the paper prescribes for the PDE
// datasets.
package laplace

import (
	"math"

	"lrm/internal/grid"
)

// Config describes a Laplace run.
type Config struct {
	// N is the grid size per dimension.
	N int
	// Iters is the number of Jacobi iterations.
	Iters int
	// TopTemp is the peak boundary value applied along the top edge with a
	// sinusoidal profile; the other three edges are held at 0.
	TopTemp float64
}

// Default returns the baseline configuration at grid size n.
func Default(n int) Config {
	return Config{N: n, Iters: 4 * n, TopTemp: 100}
}

func (c Config) withDefaults() Config {
	if c.TopTemp == 0 {
		c.TopTemp = 100
	}
	if c.Iters == 0 {
		c.Iters = 4 * c.N
	}
	return c
}

// Init returns the initial grid: zero interior, boundary conditions set.
func Init(cfg Config) *grid.Field {
	cfg = cfg.withDefaults()
	n := cfg.N
	f := grid.New(n, n)
	for i := 0; i < n; i++ {
		// Smooth top-edge profile: a half-sine keeps corners at 0.
		f.Set2(cfg.TopTemp*math.Sin(math.Pi*float64(i)/float64(n-1)), 0, i)
	}
	return f
}

// step performs one Jacobi sweep of the interior.
func step(u, next *grid.Field) {
	n := u.Dims[0]
	for j := 1; j < n-1; j++ {
		for i := 1; i < n-1; i++ {
			next.Set2(0.25*(u.At2(j+1, i)+u.At2(j-1, i)+u.At2(j, i+1)+u.At2(j, i-1)), j, i)
		}
	}
}

// Solve runs cfg.Iters Jacobi iterations and returns the final grid.
func Solve(cfg Config) *grid.Field {
	cfg = cfg.withDefaults()
	u := Init(cfg)
	next := u.Clone()
	for s := 0; s < cfg.Iters; s++ {
		step(u, next)
		u, next = next, u
	}
	return u
}

// Snapshots captures `count` evenly spaced iterates (including the final
// one).
func Snapshots(cfg Config, count int) []*grid.Field {
	cfg = cfg.withDefaults()
	if count < 1 {
		return nil
	}
	u := Init(cfg)
	next := u.Clone()
	every := cfg.Iters / count
	if every < 1 {
		every = 1
	}
	out := make([]*grid.Field, 0, count)
	for s := 1; s <= cfg.Iters; s++ {
		step(u, next)
		u, next = next, u
		if s%every == 0 && len(out) < count {
			out = append(out, u.Clone())
		}
	}
	for len(out) < count {
		out = append(out, u.Clone())
	}
	return out
}

// Residual returns the max |Laplacian| over the interior, a convergence
// measure (0 at the exact steady state).
func Residual(u *grid.Field) float64 {
	n := u.Dims[0]
	r := 0.0
	for j := 1; j < n-1; j++ {
		for i := 1; i < n-1; i++ {
			lap := u.At2(j+1, i) + u.At2(j-1, i) + u.At2(j, i+1) + u.At2(j, i-1) - 4*u.At2(j, i)
			if a := math.Abs(lap); a > r {
				r = a
			}
		}
	}
	return r
}

// Analytic returns the exact steady-state solution for the Default boundary
// conditions: u(x,y) = TopTemp * sin(pi x) * sinh(pi (1-y)) / sinh(pi).
func Analytic(cfg Config) *grid.Field {
	cfg = cfg.withDefaults()
	n := cfg.N
	f := grid.New(n, n)
	inv := 1.0 / float64(n-1)
	for j := 0; j < n; j++ {
		y := float64(j) * inv
		for i := 0; i < n; i++ {
			x := float64(i) * inv
			f.Set2(cfg.TopTemp*math.Sin(math.Pi*x)*math.Sinh(math.Pi*(1-y))/math.Sinh(math.Pi), j, i)
		}
	}
	return f
}

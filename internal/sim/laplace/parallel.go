package laplace

import (
	"fmt"

	"lrm/internal/grid"
	"lrm/internal/mpi"
)

// SolveParallel runs the Jacobi iteration over `ranks` MPI ranks with a
// 1-D row decomposition and per-sweep halo exchange — the configuration
// the paper used on Titan (512 MPI processors for the Fig. 3 Laplace
// runs). The result matches Solve exactly.
func SolveParallel(cfg Config, ranks int) (*grid.Field, error) {
	cfg = cfg.withDefaults()
	if ranks < 1 || ranks > cfg.N-2 {
		return nil, fmt.Errorf("laplace: %d ranks cannot decompose N=%d", ranks, cfg.N)
	}
	n := cfg.N
	init := Init(cfg)
	result := grid.New(n, n)

	w := mpi.NewWorld(ranks)
	w.Run(func(c *mpi.Comm) {
		lo, hi := mpi.Slab1D(n, c.Size(), c.Rank())
		rows := hi - lo

		// Local rows plus one ghost row per side.
		u := make([]float64, (rows+2)*n)
		next := make([]float64, (rows+2)*n)
		for r := 0; r < rows; r++ {
			copy(u[(r+1)*n:(r+2)*n], init.Data[(lo+r)*n:(lo+r+1)*n])
		}
		copy(next, u)

		for s := 0; s < cfg.Iters; s++ {
			// Halo exchange with row neighbours, overlap-ready via the
			// nonblocking primitives.
			var reqs []*mpi.Request
			if c.Rank() > 0 {
				c.ISend(c.Rank()-1, s, u[n:2*n]).Wait()
				reqs = append(reqs, c.IRecv(c.Rank()-1, s))
			}
			if c.Rank() < c.Size()-1 {
				c.ISend(c.Rank()+1, s, u[rows*n:(rows+1)*n]).Wait()
				reqs = append(reqs, c.IRecv(c.Rank()+1, s))
			}
			halos := mpi.WaitAll(reqs)
			hi := 0
			if c.Rank() > 0 {
				copy(u[:n], halos[hi])
				hi++
			}
			if c.Rank() < c.Size()-1 {
				copy(u[(rows+1)*n:], halos[hi])
			}

			for r := 1; r <= rows; r++ {
				gr := lo + r - 1
				if gr == 0 || gr == n-1 {
					copy(next[r*n:(r+1)*n], u[r*n:(r+1)*n])
					continue
				}
				for i := 1; i < n-1; i++ {
					idx := r*n + i
					next[idx] = 0.25 * (u[idx+n] + u[idx-n] + u[idx+1] + u[idx-1])
				}
				next[r*n] = u[r*n]
				next[r*n+n-1] = u[r*n+n-1]
			}
			u, next = next, u
		}

		parts := c.Gather(0, u[n:(rows+1)*n])
		if c.Rank() == 0 {
			pos := 0
			for _, p := range parts {
				copy(result.Data[pos:], p)
				pos += len(p)
			}
		}
		c.Barrier()
	})
	return result, nil
}

// Package md implements a Lennard-Jones molecular dynamics engine standing
// in for the two Gromacs simulations of Table I: Umbrella (umbrella-sampling
// bias potential) and Virtual_sites (massless interaction sites constructed
// from real atoms). The paper's full model simulates 1,960 atoms and the
// reduced model 490; both are presets here.
//
// The engine is deliberately a real MD code, not a data faker: periodic
// boundaries with minimum image, cell-list neighbour search, velocity
// Verlet integration, a Berendsen thermostat, a harmonic umbrella bias on a
// tagged atom pair, and midpoint virtual sites with force redistribution to
// their parents. The outputs (flattened atom coordinates) therefore carry
// the high-entropy, weakly-smooth character that makes MD data hard for
// ZFP/SZ — the property the paper's Fig. 6 depends on.
package md

import (
	"fmt"
	"math"
	"math/rand"

	"lrm/internal/grid"
)

// Config describes an MD run in reduced Lennard-Jones units
// (sigma = epsilon = mass = 1).
type Config struct {
	// NAtoms is the number of real atoms.
	NAtoms int
	// Density sets the box volume: V = NAtoms / Density.
	Density float64
	// Steps is the number of velocity Verlet steps.
	Steps int
	// Dt is the integration time step.
	Dt float64
	// Temperature is the Berendsen thermostat target.
	Temperature float64
	// Tau is the thermostat coupling time; 0 disables the thermostat.
	Tau float64
	// Cutoff is the LJ interaction cutoff radius.
	Cutoff float64
	// Seed drives initial velocities and lattice jitter.
	Seed int64

	// Umbrella enables a harmonic bias k/2 (r - R0)^2 between atoms 0 and
	// NAtoms/2, the umbrella-sampling restraint.
	Umbrella   bool
	UmbrellaK  float64
	UmbrellaR0 float64

	// VirtualSites adds NAtoms/4 massless midpoint sites; each interacts
	// via LJ and redistributes its force to its two parent atoms.
	VirtualSites bool
}

// DefaultUmbrella returns the paper-shaped Umbrella configuration with n
// real atoms (1960 full, 490 reduced).
func DefaultUmbrella(n int) Config {
	return Config{
		NAtoms: n, Density: 0.4, Steps: 60, Dt: 0.004, Temperature: 1.0,
		Tau: 0.1, Cutoff: 2.5, Seed: 42,
		Umbrella: true, UmbrellaK: 50, UmbrellaR0: 1.5,
	}
}

// DefaultVirtualSites returns the Virtual_sites configuration.
func DefaultVirtualSites(n int) Config {
	return Config{
		NAtoms: n, Density: 0.4, Steps: 60, Dt: 0.004, Temperature: 1.0,
		Tau: 0.1, Cutoff: 2.5, Seed: 43,
		VirtualSites: true,
	}
}

// System is a running MD simulation.
type System struct {
	cfg Config
	box float64

	// pos/vel/force are 3N sites (real atoms first, then virtual sites).
	pos, vel, force []float64
	nReal, nSites   int
	parents         [][2]int // parents[i] for virtual site index nReal+i

	rng *rand.Rand
}

// New builds a system: atoms on a cubic lattice with thermal velocities.
func New(cfg Config) (*System, error) {
	if cfg.NAtoms < 2 {
		return nil, fmt.Errorf("md: need at least 2 atoms, got %d", cfg.NAtoms)
	}
	if cfg.Density <= 0 || cfg.Dt <= 0 || cfg.Cutoff <= 0 {
		return nil, fmt.Errorf("md: non-positive density/dt/cutoff")
	}
	nv := 0
	if cfg.VirtualSites {
		nv = cfg.NAtoms / 4
	}
	s := &System{
		cfg:    cfg,
		box:    math.Cbrt(float64(cfg.NAtoms) / cfg.Density),
		nReal:  cfg.NAtoms,
		nSites: cfg.NAtoms + nv,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
	s.pos = make([]float64, 3*s.nSites)
	s.vel = make([]float64, 3*s.nSites)
	s.force = make([]float64, 3*s.nSites)

	// Lattice placement with a little jitter.
	perSide := int(math.Ceil(math.Cbrt(float64(cfg.NAtoms))))
	spacing := s.box / float64(perSide)
	idx := 0
	for z := 0; z < perSide && idx < cfg.NAtoms; z++ {
		for y := 0; y < perSide && idx < cfg.NAtoms; y++ {
			for x := 0; x < perSide && idx < cfg.NAtoms; x++ {
				s.pos[3*idx] = (float64(x) + 0.5 + 0.05*s.rng.NormFloat64()) * spacing
				s.pos[3*idx+1] = (float64(y) + 0.5 + 0.05*s.rng.NormFloat64()) * spacing
				s.pos[3*idx+2] = (float64(z) + 0.5 + 0.05*s.rng.NormFloat64()) * spacing
				idx++
			}
		}
	}
	// Maxwell-Boltzmann velocities with zero net momentum.
	var px, py, pz float64
	sd := math.Sqrt(cfg.Temperature)
	for i := 0; i < s.nReal; i++ {
		s.vel[3*i] = sd * s.rng.NormFloat64()
		s.vel[3*i+1] = sd * s.rng.NormFloat64()
		s.vel[3*i+2] = sd * s.rng.NormFloat64()
		px += s.vel[3*i]
		py += s.vel[3*i+1]
		pz += s.vel[3*i+2]
	}
	for i := 0; i < s.nReal; i++ {
		s.vel[3*i] -= px / float64(s.nReal)
		s.vel[3*i+1] -= py / float64(s.nReal)
		s.vel[3*i+2] -= pz / float64(s.nReal)
	}
	// Virtual sites: parents are consecutive atom pairs (2i, 2i+1).
	for v := 0; v < nv; v++ {
		s.parents = append(s.parents, [2]int{2 * v, 2*v + 1})
	}
	s.placeVirtualSites()
	s.computeForces()
	return s, nil
}

// Box returns the periodic box edge length.
func (s *System) Box() float64 { return s.box }

// NSites returns the number of interaction sites (atoms + virtual).
func (s *System) NSites() int { return s.nSites }

// minimumImage folds a displacement component into [-box/2, box/2).
func (s *System) minimumImage(d float64) float64 {
	d -= s.box * math.Round(d/s.box)
	return d
}

// wrap folds a coordinate into [0, box).
func (s *System) wrap(x float64) float64 {
	x = math.Mod(x, s.box)
	if x < 0 {
		x += s.box
	}
	return x
}

// placeVirtualSites sets each virtual site at the minimum-image midpoint of
// its parents.
func (s *System) placeVirtualSites() {
	for v, p := range s.parents {
		i := 3 * (s.nReal + v)
		a, b := 3*p[0], 3*p[1]
		for d := 0; d < 3; d++ {
			diff := s.minimumImage(s.pos[b+d] - s.pos[a+d])
			s.pos[i+d] = s.wrap(s.pos[a+d] + diff/2)
		}
	}
}

// computeForces evaluates LJ forces over all site pairs within the cutoff
// using a cell list, plus the umbrella bias, then redistributes virtual-site
// forces onto parents.
func (s *System) computeForces() {
	for i := range s.force {
		s.force[i] = 0
	}
	s.ljForcesCellList()

	if s.cfg.Umbrella {
		a, b := 0, s.nReal/2
		var dx, dy, dz float64
		dx = s.minimumImage(s.pos[3*b] - s.pos[3*a])
		dy = s.minimumImage(s.pos[3*b+1] - s.pos[3*a+1])
		dz = s.minimumImage(s.pos[3*b+2] - s.pos[3*a+2])
		r := math.Sqrt(dx*dx + dy*dy + dz*dz)
		if r > 1e-12 {
			fmag := -s.cfg.UmbrellaK * (r - s.cfg.UmbrellaR0) / r
			s.force[3*b] += fmag * dx
			s.force[3*b+1] += fmag * dy
			s.force[3*b+2] += fmag * dz
			s.force[3*a] -= fmag * dx
			s.force[3*a+1] -= fmag * dy
			s.force[3*a+2] -= fmag * dz
		}
	}

	// Virtual-site force redistribution: each parent takes half.
	for v, p := range s.parents {
		i := 3 * (s.nReal + v)
		a, b := 3*p[0], 3*p[1]
		for d := 0; d < 3; d++ {
			half := s.force[i+d] / 2
			s.force[a+d] += half
			s.force[b+d] += half
			s.force[i+d] = 0
		}
	}
}

// ljForcesCellList accumulates truncated LJ forces between all site pairs.
func (s *System) ljForcesCellList() {
	rc2 := s.cfg.Cutoff * s.cfg.Cutoff
	nc := int(s.box / s.cfg.Cutoff)
	if nc < 1 {
		nc = 1
	}
	cell := s.box / float64(nc)

	heads := make([]int, nc*nc*nc)
	for i := range heads {
		heads[i] = -1
	}
	next := make([]int, s.nSites)
	cellOf := func(i int) int {
		cx := int(s.wrap(s.pos[3*i]) / cell)
		cy := int(s.wrap(s.pos[3*i+1]) / cell)
		cz := int(s.wrap(s.pos[3*i+2]) / cell)
		if cx >= nc {
			cx = nc - 1
		}
		if cy >= nc {
			cy = nc - 1
		}
		if cz >= nc {
			cz = nc - 1
		}
		return (cz*nc+cy)*nc + cx
	}
	for i := 0; i < s.nSites; i++ {
		c := cellOf(i)
		next[i] = heads[c]
		heads[c] = i
	}

	pair := func(i, j int) {
		// Skip virtual sites against their own parents.
		if i >= s.nReal {
			p := s.parents[i-s.nReal]
			if j == p[0] || j == p[1] {
				return
			}
		}
		if j >= s.nReal {
			p := s.parents[j-s.nReal]
			if i == p[0] || i == p[1] {
				return
			}
		}
		dx := s.minimumImage(s.pos[3*i] - s.pos[3*j])
		dy := s.minimumImage(s.pos[3*i+1] - s.pos[3*j+1])
		dz := s.minimumImage(s.pos[3*i+2] - s.pos[3*j+2])
		r2 := dx*dx + dy*dy + dz*dz
		if r2 >= rc2 || r2 < 1e-12 {
			return
		}
		// Capped LJ to keep close-contact lattice starts integrable.
		if r2 < 0.64 {
			r2 = 0.64
		}
		inv2 := 1 / r2
		inv6 := inv2 * inv2 * inv2
		f := 24 * inv6 * (2*inv6 - 1) * inv2
		s.force[3*i] += f * dx
		s.force[3*i+1] += f * dy
		s.force[3*i+2] += f * dz
		s.force[3*j] -= f * dx
		s.force[3*j+1] -= f * dy
		s.force[3*j+2] -= f * dz
	}

	// Enumerate each unordered cell pair once. For small nc (< 3), shells
	// alias, so fall back to a direct O(n^2) sweep.
	if nc < 3 {
		for i := 0; i < s.nSites; i++ {
			for j := i + 1; j < s.nSites; j++ {
				pair(i, j)
			}
		}
		return
	}
	for cz := 0; cz < nc; cz++ {
		for cy := 0; cy < nc; cy++ {
			for cx := 0; cx < nc; cx++ {
				c := (cz*nc+cy)*nc + cx
				// Within-cell pairs.
				for i := heads[c]; i != -1; i = next[i] {
					for j := next[i]; j != -1; j = next[j] {
						pair(i, j)
					}
				}
				// Half of the 26 neighbour shells (forward offsets only).
				for _, off := range forwardOffsets {
					nx := (cx + off[0] + nc) % nc
					ny := (cy + off[1] + nc) % nc
					nz := (cz + off[2] + nc) % nc
					nb := (nz*nc+ny)*nc + nx
					for i := heads[c]; i != -1; i = next[i] {
						for j := heads[nb]; j != -1; j = next[j] {
							pair(i, j)
						}
					}
				}
			}
		}
	}
}

// forwardOffsets is the half-shell of 13 neighbour cells such that every
// unordered cell pair is visited exactly once.
var forwardOffsets = [][3]int{
	{1, 0, 0}, {0, 1, 0}, {0, 0, 1},
	{1, 1, 0}, {1, -1, 0}, {1, 0, 1}, {1, 0, -1},
	{0, 1, 1}, {0, 1, -1},
	{1, 1, 1}, {1, 1, -1}, {1, -1, 1}, {1, -1, -1},
}

// Step advances the system one velocity Verlet step.
func (s *System) Step() {
	dt := s.cfg.Dt
	// Half kick + drift for real atoms only (virtual sites are massless).
	for i := 0; i < s.nReal; i++ {
		for d := 0; d < 3; d++ {
			s.vel[3*i+d] += 0.5 * dt * s.force[3*i+d]
			s.pos[3*i+d] = s.wrap(s.pos[3*i+d] + dt*s.vel[3*i+d])
		}
	}
	s.placeVirtualSites()
	s.computeForces()
	for i := 0; i < s.nReal; i++ {
		for d := 0; d < 3; d++ {
			s.vel[3*i+d] += 0.5 * dt * s.force[3*i+d]
		}
	}
	if s.cfg.Tau > 0 {
		s.berendsen()
	}
}

// berendsen rescales velocities toward the target temperature.
func (s *System) berendsen() {
	t := s.Temperature()
	if t <= 0 {
		return
	}
	lambda := math.Sqrt(1 + s.cfg.Dt/s.cfg.Tau*(s.cfg.Temperature/t-1))
	// Clamp to avoid violent rescaling on cold/hot starts.
	if lambda > 1.2 {
		lambda = 1.2
	}
	if lambda < 0.8 {
		lambda = 0.8
	}
	for i := 0; i < 3*s.nReal; i++ {
		s.vel[i] *= lambda
	}
}

// Temperature returns the instantaneous kinetic temperature.
func (s *System) Temperature() float64 {
	ke := 0.0
	for i := 0; i < 3*s.nReal; i++ {
		ke += s.vel[i] * s.vel[i]
	}
	return ke / (3 * float64(s.nReal))
}

// PairDistance returns the minimum-image distance between the umbrella
// atoms (0 and NAtoms/2).
func (s *System) PairDistance() float64 {
	a, b := 0, s.nReal/2
	dx := s.minimumImage(s.pos[3*b] - s.pos[3*a])
	dy := s.minimumImage(s.pos[3*b+1] - s.pos[3*a+1])
	dz := s.minimumImage(s.pos[3*b+2] - s.pos[3*a+2])
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

// Positions returns the current coordinates of all sites as a rank-1 field
// of length 3*NSites — the "analysis output" format of the Gromacs
// datasets.
func (s *System) Positions() *grid.Field {
	f := grid.New(3 * s.nSites)
	copy(f.Data, s.pos)
	return f
}

// Run advances cfg.Steps steps and returns the final positions.
func Run(cfg Config) (*grid.Field, error) {
	sys, err := New(cfg)
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Steps; i++ {
		sys.Step()
	}
	return sys.Positions(), nil
}

// Snapshots runs the simulation capturing `count` evenly spaced coordinate
// frames.
func Snapshots(cfg Config, count int) ([]*grid.Field, error) {
	if count < 1 {
		return nil, nil
	}
	sys, err := New(cfg)
	if err != nil {
		return nil, err
	}
	every := cfg.Steps / count
	if every < 1 {
		every = 1
	}
	var out []*grid.Field
	for i := 1; i <= cfg.Steps; i++ {
		sys.Step()
		if i%every == 0 && len(out) < count {
			out = append(out, sys.Positions())
		}
	}
	for len(out) < count {
		out = append(out, sys.Positions())
	}
	return out, nil
}

package md

import (
	"math"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{NAtoms: 1, Density: 0.4, Dt: 0.004, Cutoff: 2.5}); err == nil {
		t.Fatal("expected error for 1 atom")
	}
	if _, err := New(Config{NAtoms: 10, Density: 0, Dt: 0.004, Cutoff: 2.5}); err == nil {
		t.Fatal("expected error for zero density")
	}
	if _, err := New(Config{NAtoms: 10, Density: 0.4, Dt: 0, Cutoff: 2.5}); err == nil {
		t.Fatal("expected error for zero dt")
	}
}

func TestStableIntegration(t *testing.T) {
	cfg := DefaultUmbrella(200)
	cfg.Steps = 40
	pos, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range pos.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("NaN/Inf coordinate at %d", i)
		}
	}
}

func TestPositionsInBox(t *testing.T) {
	cfg := DefaultVirtualSites(120)
	cfg.Steps = 30
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.Steps; i++ {
		sys.Step()
	}
	box := sys.Box()
	pos := sys.Positions()
	for i, v := range pos.Data {
		if v < 0 || v >= box {
			t.Fatalf("coordinate %d = %v outside [0, %v)", i, v, box)
		}
	}
}

func TestThermostatRegulatesTemperature(t *testing.T) {
	cfg := DefaultUmbrella(300)
	cfg.Steps = 0
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 150; i++ {
		sys.Step()
	}
	temp := sys.Temperature()
	if temp < 0.3 || temp > 3.0 {
		t.Fatalf("temperature %v drifted far from target %v", temp, cfg.Temperature)
	}
}

func TestMomentumNearZeroWithoutThermostat(t *testing.T) {
	cfg := DefaultUmbrella(100)
	cfg.Umbrella = false // umbrella is internal, conserves momentum anyway
	cfg.Tau = 0          // disable thermostat (it preserves p=0 only exactly at init)
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		sys.Step()
	}
	var px, py, pz float64
	for i := 0; i < cfg.NAtoms; i++ {
		px += sys.vel[3*i]
		py += sys.vel[3*i+1]
		pz += sys.vel[3*i+2]
	}
	// Newton's third law holds pairwise, so total momentum stays ~0.
	for _, p := range []float64{px, py, pz} {
		if math.Abs(p) > 1e-6*float64(cfg.NAtoms) {
			t.Fatalf("net momentum drifted: (%v, %v, %v)", px, py, pz)
		}
	}
}

func TestUmbrellaRestrainsPair(t *testing.T) {
	cfg := DefaultUmbrella(150)
	cfg.UmbrellaK = 400 // stiff spring so the effect dominates thermal noise
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		sys.Step()
	}
	d := sys.PairDistance()
	if math.Abs(d-cfg.UmbrellaR0) > 1.0 {
		t.Fatalf("umbrella pair distance %v far from target %v", d, cfg.UmbrellaR0)
	}
}

func TestWithoutUmbrellaPairWanders(t *testing.T) {
	// Control: the same system without the bias should not systematically
	// hold the tagged pair near R0 (it starts far away on the lattice).
	cfg := DefaultUmbrella(150)
	sysBias, _ := New(cfg)
	cfg2 := cfg
	cfg2.Umbrella = false
	sysFree, _ := New(cfg2)
	for i := 0; i < 200; i++ {
		sysBias.Step()
		sysFree.Step()
	}
	if math.Abs(sysBias.PairDistance()-cfg.UmbrellaR0) > math.Abs(sysFree.PairDistance()-cfg.UmbrellaR0) {
		t.Fatalf("bias (%v) did not pull pair closer to R0 than free run (%v)",
			sysBias.PairDistance(), sysFree.PairDistance())
	}
}

func TestVirtualSitesAtMidpoints(t *testing.T) {
	cfg := DefaultVirtualSites(96)
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		sys.Step()
	}
	for v, p := range sys.parents {
		i := 3 * (sys.nReal + v)
		a, b := 3*p[0], 3*p[1]
		for d := 0; d < 3; d++ {
			diff := sys.minimumImage(sys.pos[b+d] - sys.pos[a+d])
			want := sys.wrap(sys.pos[a+d] + diff/2)
			if math.Abs(sys.pos[i+d]-want) > 1e-9 {
				t.Fatalf("virtual site %d axis %d: %v != midpoint %v", v, d, sys.pos[i+d], want)
			}
		}
	}
	// Site count must include the virtual ones.
	if sys.NSites() != cfg.NAtoms+cfg.NAtoms/4 {
		t.Fatalf("NSites = %d", sys.NSites())
	}
}

func TestVirtualSiteForcesRedistributed(t *testing.T) {
	cfg := DefaultVirtualSites(64)
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.computeForces()
	for v := range sys.parents {
		i := 3 * (sys.nReal + v)
		for d := 0; d < 3; d++ {
			if sys.force[i+d] != 0 {
				t.Fatalf("virtual site %d retains force %v", v, sys.force[i+d])
			}
		}
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	cfg := DefaultUmbrella(80)
	cfg.Steps = 15
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
	cfg.Seed++
	c, _ := Run(cfg)
	same := true
	for i := range a.Data {
		if a.Data[i] != c.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical trajectories")
	}
}

func TestSnapshots(t *testing.T) {
	cfg := DefaultUmbrella(64)
	cfg.Steps = 20
	snaps, err := Snapshots(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 4 {
		t.Fatalf("snapshots = %d", len(snaps))
	}
	// Frames must differ (the system is moving).
	diff := 0.0
	for i := range snaps[0].Data {
		diff += math.Abs(snaps[0].Data[i] - snaps[3].Data[i])
	}
	if diff == 0 {
		t.Fatal("system did not move between snapshots")
	}
	if s, err := Snapshots(cfg, 0); err != nil || s != nil {
		t.Fatal("zero snapshots should be nil, nil")
	}
}

func TestCellListMatchesDirect(t *testing.T) {
	// Forces via cell list must match an O(n^2) reference sweep.
	cfg := DefaultUmbrella(150)
	cfg.Umbrella = false
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := append([]float64(nil), sys.force...)

	// Direct reference computation.
	ref := make([]float64, len(sys.force))
	rc2 := cfg.Cutoff * cfg.Cutoff
	for i := 0; i < sys.nSites; i++ {
		for j := i + 1; j < sys.nSites; j++ {
			dx := sys.minimumImage(sys.pos[3*i] - sys.pos[3*j])
			dy := sys.minimumImage(sys.pos[3*i+1] - sys.pos[3*j+1])
			dz := sys.minimumImage(sys.pos[3*i+2] - sys.pos[3*j+2])
			r2 := dx*dx + dy*dy + dz*dz
			if r2 >= rc2 || r2 < 1e-12 {
				continue
			}
			if r2 < 0.64 {
				r2 = 0.64
			}
			inv2 := 1 / r2
			inv6 := inv2 * inv2 * inv2
			f := 24 * inv6 * (2*inv6 - 1) * inv2
			ref[3*i] += f * dx
			ref[3*i+1] += f * dy
			ref[3*i+2] += f * dz
			ref[3*j] -= f * dx
			ref[3*j+1] -= f * dy
			ref[3*j+2] -= f * dz
		}
	}
	for i := 0; i < 3*sys.nReal; i++ {
		if math.Abs(got[i]-ref[i]) > 1e-9*(1+math.Abs(ref[i])) {
			t.Fatalf("cell-list force mismatch at %d: %v vs %v", i, got[i], ref[i])
		}
	}
}

func TestRadialDistributionPhysical(t *testing.T) {
	// Physics validation: after equilibration, no pair sits inside the
	// repulsive core, and the first coordination shell near r ~ 1.1 sigma
	// is enhanced over the long-range bulk density (g(r) structure of a
	// Lennard-Jones fluid).
	cfg := DefaultUmbrella(300)
	cfg.Umbrella = false
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 150; i++ {
		sys.Step()
	}
	// Histogram pair distances.
	const bins = 24
	rMax := 3.0
	hist := make([]float64, bins)
	n := sys.nReal
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := sys.minimumImage(sys.pos[3*i] - sys.pos[3*j])
			dy := sys.minimumImage(sys.pos[3*i+1] - sys.pos[3*j+1])
			dz := sys.minimumImage(sys.pos[3*i+2] - sys.pos[3*j+2])
			r := math.Sqrt(dx*dx + dy*dy + dz*dz)
			if r < rMax {
				hist[int(r/rMax*bins)]++
			}
		}
	}
	// Normalise to g(r): divide by the ideal-gas shell count.
	rho := float64(n) / (sys.box * sys.box * sys.box)
	g := make([]float64, bins)
	for b := 0; b < bins; b++ {
		r0 := float64(b) * rMax / bins
		r1 := float64(b+1) * rMax / bins
		shellVol := 4.0 / 3.0 * math.Pi * (r1*r1*r1 - r0*r0*r0)
		ideal := 0.5 * float64(n) * rho * shellVol
		g[b] = hist[b] / ideal
	}
	// Core exclusion: g ~ 0 below 0.75 sigma (the capped potential still
	// repels hard).
	for b := 0; b < bins*3/(4*4); b++ { // r < 0.5625
		if g[b] > 0.2 {
			t.Fatalf("pairs inside the repulsive core: g(%.2f) = %v", (float64(b)+0.5)*rMax/bins, g[b])
		}
	}
	// First shell beats the tail.
	shellBin := int(1.1 / rMax * bins)
	tailBin := int(2.5 / rMax * bins)
	if g[shellBin] < g[tailBin] {
		t.Fatalf("no first coordination shell: g(1.1)=%v vs g(2.5)=%v", g[shellBin], g[tailBin])
	}
}

// Package heat3d implements the paper's Section IV case study: a 3-D heat
// equation solver (the full model) and its projection-based 2-D reduction
// obtained by collapsing the Z dimension.
//
//	du/dt = kappa * (d2u/dx2 + d2u/dy2 + d2u/dz2)
//
// discretised with central differences and explicit Euler stepping, exactly
// equation (1) of the paper; the reduced model is equation (2). The solver
// exists in a serial form and an MPI-parallel form (slab decomposition with
// halo exchange) that produces bit-identical results.
package heat3d

import (
	"fmt"
	"math"

	"lrm/internal/grid"
	"lrm/internal/mpi"
)

// Config describes a Heat3d run. The domain is the unit cube (or unit
// square for the reduced model) with Dirichlet zero boundaries and a
// Gaussian hot spot initial condition centred in the domain — symmetric in
// Z, which is what makes the mid-plane a natural latent reduced model.
type Config struct {
	// N is the number of grid points per dimension.
	N int
	// Kappa is the thermal conductivity coefficient.
	Kappa float64
	// Steps is the number of explicit Euler steps to run.
	Steps int
	// Dt is the time step; 0 selects 90% of the stability limit.
	Dt float64
	// HotTemp is the peak of the initial Gaussian hot spot.
	HotTemp float64
	// HotWidth is the hot spot's standard deviation in domain units.
	HotWidth float64
}

// Default returns the baseline configuration used across the repository's
// experiments: a paper-shaped problem scaled to size n.
func Default(n int) Config {
	return Config{N: n, Kappa: 1.0, Steps: 0, HotTemp: 100, HotWidth: 0.12}
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Kappa == 0 {
		out.Kappa = 1
	}
	if out.HotTemp == 0 {
		out.HotTemp = 100
	}
	if out.HotWidth == 0 {
		out.HotWidth = 0.12
	}
	return out
}

// StabilityDt3D returns the largest stable explicit time step for the 3-D
// stencil, h^2/(6*kappa).
func (c Config) StabilityDt3D() float64 {
	h := 1.0 / float64(c.N-1)
	return h * h / (6 * c.Kappa)
}

// StabilityDt2D returns the 2-D stability limit, h^2/(4*kappa). Collapsing
// Z relaxes the limit, which is why the paper's reduced model can take a
// much larger time step.
func (c Config) StabilityDt2D() float64 {
	h := 1.0 / float64(c.N-1)
	return h * h / (4 * c.Kappa)
}

func (c Config) dt3D() float64 {
	if c.Dt > 0 {
		return c.Dt
	}
	return 0.9 * c.StabilityDt3D()
}

func (c Config) dt2D() float64 {
	if c.Dt > 0 {
		return c.Dt
	}
	return 0.9 * c.StabilityDt2D()
}

// Init3D returns the initial condition on an N^3 grid.
func Init3D(cfg Config) *grid.Field {
	cfg = cfg.withDefaults()
	n := cfg.N
	f := grid.New(n, n, n)
	inv := 1.0 / float64(n-1)
	w2 := 2 * cfg.HotWidth * cfg.HotWidth
	for k := 0; k < n; k++ {
		z := float64(k)*inv - 0.5
		for j := 0; j < n; j++ {
			y := float64(j)*inv - 0.5
			for i := 0; i < n; i++ {
				x := float64(i)*inv - 0.5
				f.Set3(cfg.HotTemp*math.Exp(-(x*x+y*y+z*z)/w2), k, j, i)
			}
		}
	}
	applyDirichlet3D(f)
	return f
}

// Init2D returns the reduced model's initial condition on an N^2 grid: the
// same Gaussian with the Z dependence dropped (the projection of Section
// IV-A).
func Init2D(cfg Config) *grid.Field {
	cfg = cfg.withDefaults()
	n := cfg.N
	f := grid.New(n, n)
	inv := 1.0 / float64(n-1)
	w2 := 2 * cfg.HotWidth * cfg.HotWidth
	for j := 0; j < n; j++ {
		y := float64(j)*inv - 0.5
		for i := 0; i < n; i++ {
			x := float64(i)*inv - 0.5
			f.Set2(cfg.HotTemp*math.Exp(-(x*x+y*y)/w2), j, i)
		}
	}
	applyDirichlet2D(f)
	return f
}

func applyDirichlet3D(f *grid.Field) {
	n := f.Dims[0]
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			f.Set3(0, 0, a, b)
			f.Set3(0, n-1, a, b)
			f.Set3(0, a, 0, b)
			f.Set3(0, a, n-1, b)
			f.Set3(0, a, b, 0)
			f.Set3(0, a, b, n-1)
		}
	}
}

func applyDirichlet2D(f *grid.Field) {
	n := f.Dims[0]
	for a := 0; a < n; a++ {
		f.Set2(0, 0, a)
		f.Set2(0, n-1, a)
		f.Set2(0, a, 0)
		f.Set2(0, a, n-1)
	}
}

// step3D advances u by one explicit Euler step into next (interior only).
func step3D(u, next *grid.Field, kappa, dt, h float64) {
	n := u.Dims[0]
	r := kappa * dt / (h * h)
	for k := 1; k < n-1; k++ {
		for j := 1; j < n-1; j++ {
			for i := 1; i < n-1; i++ {
				c := u.At3(k, j, i)
				lap := u.At3(k+1, j, i) + u.At3(k-1, j, i) +
					u.At3(k, j+1, i) + u.At3(k, j-1, i) +
					u.At3(k, j, i+1) + u.At3(k, j, i-1) - 6*c
				next.Set3(c+r*lap, k, j, i)
			}
		}
	}
}

// Solve runs the full 3-D model serially and returns the final state.
func Solve(cfg Config) *grid.Field {
	cfg = cfg.withDefaults()
	u := Init3D(cfg)
	next := u.Clone()
	h := 1.0 / float64(cfg.N-1)
	dt := cfg.dt3D()
	for s := 0; s < cfg.Steps; s++ {
		step3D(u, next, cfg.Kappa, dt, h)
		u, next = next, u
	}
	return u
}

// Snapshots runs the full model and captures `count` states at evenly
// spaced step intervals (including the final step), the "20 outputs of each
// application" protocol of Fig. 3.
func Snapshots(cfg Config, count int) []*grid.Field {
	cfg = cfg.withDefaults()
	if count < 1 {
		return nil
	}
	u := Init3D(cfg)
	next := u.Clone()
	h := 1.0 / float64(cfg.N-1)
	dt := cfg.dt3D()
	out := make([]*grid.Field, 0, count)
	every := cfg.Steps / count
	if every < 1 {
		every = 1
	}
	for s := 1; s <= cfg.Steps; s++ {
		step3D(u, next, cfg.Kappa, dt, h)
		u, next = next, u
		if s%every == 0 && len(out) < count {
			out = append(out, u.Clone())
		}
	}
	for len(out) < count {
		out = append(out, u.Clone())
	}
	return out
}

// SolveReduced2D runs the projected 2-D reduced model (equation (2)) and
// returns its final state. The number of steps is chosen so that the
// reduced model reaches the same physical time as a full-model run of
// cfg.Steps steps, mirroring Table II (many fewer, larger steps).
func SolveReduced2D(cfg Config) *grid.Field {
	cfg = cfg.withDefaults()
	u := Init2D(cfg)
	next := u.Clone()
	h := 1.0 / float64(cfg.N-1)
	dt2 := cfg.dt2D()
	target := float64(cfg.Steps) * cfg.dt3D()
	steps := int(math.Ceil(target / dt2))
	if steps < 1 {
		steps = 1
	}
	dt2 = target / float64(steps)
	n := cfg.N
	r := cfg.Kappa * dt2 / (h * h)
	for s := 0; s < steps; s++ {
		for j := 1; j < n-1; j++ {
			for i := 1; i < n-1; i++ {
				c := u.At2(j, i)
				lap := u.At2(j+1, i) + u.At2(j-1, i) +
					u.At2(j, i+1) + u.At2(j, i-1) - 4*c
				next.Set2(c+r*lap, j, i)
			}
		}
		u, next = next, u
	}
	return u
}

// ReducedSteps reports how many steps the 2-D reduced model takes to cover
// the same physical time as the full model (for Table II).
func ReducedSteps(cfg Config) int {
	cfg = cfg.withDefaults()
	target := float64(cfg.Steps) * cfg.dt3D()
	steps := int(math.Ceil(target / cfg.dt2D()))
	if steps < 1 {
		steps = 1
	}
	return steps
}

// SolveParallel runs the full model over `ranks` MPI ranks with a 1-D slab
// decomposition along Z and per-step halo exchange, then gathers the global
// field on every rank's behalf and returns it. The result matches Solve
// exactly: the decomposition only changes who computes what.
func SolveParallel(cfg Config, ranks int) (*grid.Field, error) {
	cfg = cfg.withDefaults()
	if ranks < 1 || ranks > cfg.N-2 {
		return nil, fmt.Errorf("heat3d: %d ranks cannot decompose N=%d", ranks, cfg.N)
	}
	n := cfg.N
	h := 1.0 / float64(n-1)
	dt := cfg.dt3D()
	init := Init3D(cfg)

	result := grid.New(n, n, n)
	w := mpi.NewWorld(ranks)
	w.Run(func(c *Comm) {
		runRank(c, cfg, init, result, h, dt)
	})
	return result, nil
}

// Comm aliases mpi.Comm so the solver reads like an MPI code.
type Comm = mpi.Comm

// runRank is one rank's worth of the parallel solver.
func runRank(c *Comm, cfg Config, init, result *grid.Field, h, dt float64) {
	n := cfg.N
	lo, hi := mpi.Slab1D(n, c.Size(), c.Rank())
	local := hi - lo
	plane := n * n

	// Local slab with one ghost plane on each side.
	u := make([]float64, (local+2)*plane)
	next := make([]float64, (local+2)*plane)
	for k := 0; k < local; k++ {
		copy(u[(k+1)*plane:(k+2)*plane], init.Data[(lo+k)*plane:(lo+k+1)*plane])
	}

	r := cfg.Kappa * dt / (h * h)
	for s := 0; s < cfg.Steps; s++ {
		// Halo exchange with Z neighbours; ordered pairwise exchanges
		// (even ranks send first) prevent deadlock, as in the MPI code.
		if c.Rank() > 0 {
			got := c.SendRecv(c.Rank()-1, s, u[plane:2*plane])
			copy(u[:plane], got)
		}
		if c.Rank() < c.Size()-1 {
			got := c.SendRecv(c.Rank()+1, s, u[local*plane:(local+1)*plane])
			copy(u[(local+1)*plane:], got)
		}

		for k := 1; k <= local; k++ {
			gz := lo + k - 1 // global z index
			if gz == 0 || gz == n-1 {
				copy(next[k*plane:(k+1)*plane], u[k*plane:(k+1)*plane])
				continue
			}
			for j := 1; j < n-1; j++ {
				for i := 1; i < n-1; i++ {
					idx := k*plane + j*n + i
					cv := u[idx]
					lap := u[idx+plane] + u[idx-plane] +
						u[idx+n] + u[idx-n] +
						u[idx+1] + u[idx-1] - 6*cv
					next[idx] = cv + r*lap
				}
			}
			// Dirichlet walls in X and Y.
			for j := 0; j < n; j++ {
				next[k*plane+j*n] = 0
				next[k*plane+j*n+n-1] = 0
			}
			for i := 0; i < n; i++ {
				next[k*plane+i] = 0
				next[k*plane+(n-1)*n+i] = 0
			}
		}
		u, next = next, u
	}

	// Gather slabs at rank 0 and write into the shared result (only rank 0
	// writes, after all contributions arrive).
	parts := c.Gather(0, u[plane:(local+1)*plane])
	if c.Rank() == 0 {
		pos := 0
		for _, p := range parts {
			copy(result.Data[pos:], p)
			pos += len(p)
		}
	}
	c.Barrier()
}

// MidPlane returns the horizontal mid-plane of a 3-D field, the latent
// reduced model of Section IV-A.
func MidPlane(f *grid.Field) *grid.Field {
	return f.Plane(f.Dims[0] / 2)
}

package heat3d

import (
	"fmt"

	"lrm/internal/grid"
	"lrm/internal/mpi"
)

// SolveParallelOverlap is SolveParallel with communication/computation
// overlap: each step posts nonblocking halo sends and receives, updates the
// interior planes (which do not touch ghost data) while the faces are in
// flight, then completes the receives and updates the two boundary planes.
// This is the standard latency-hiding structure of production stencil
// codes; the numerical result is identical to the serial solver.
func SolveParallelOverlap(cfg Config, ranks int) (*grid.Field, error) {
	cfg = cfg.withDefaults()
	if ranks < 1 || ranks > cfg.N-2 {
		return nil, fmt.Errorf("heat3d: %d ranks cannot decompose N=%d", ranks, cfg.N)
	}
	n := cfg.N
	h := 1.0 / float64(n-1)
	dt := cfg.dt3D()
	init := Init3D(cfg)

	result := grid.New(n, n, n)
	w := mpi.NewWorld(ranks)
	w.Run(func(c *mpi.Comm) {
		lo, hi := mpi.Slab1D(n, c.Size(), c.Rank())
		local := hi - lo
		plane := n * n

		u := make([]float64, (local+2)*plane)
		next := make([]float64, (local+2)*plane)
		for k := 0; k < local; k++ {
			copy(u[(k+1)*plane:(k+2)*plane], init.Data[(lo+k)*plane:(lo+k+1)*plane])
		}

		r := cfg.Kappa * dt / (h * h)
		updatePlane := func(k int) {
			gz := lo + k - 1
			if gz == 0 || gz == n-1 {
				copy(next[k*plane:(k+1)*plane], u[k*plane:(k+1)*plane])
				return
			}
			for j := 1; j < n-1; j++ {
				for i := 1; i < n-1; i++ {
					idx := k*plane + j*n + i
					cv := u[idx]
					lap := u[idx+plane] + u[idx-plane] +
						u[idx+n] + u[idx-n] +
						u[idx+1] + u[idx-1] - 6*cv
					next[idx] = cv + r*lap
				}
			}
			for j := 0; j < n; j++ {
				next[k*plane+j*n] = 0
				next[k*plane+j*n+n-1] = 0
			}
			for i := 0; i < n; i++ {
				next[k*plane+i] = 0
				next[k*plane+(n-1)*n+i] = 0
			}
		}

		for s := 0; s < cfg.Steps; s++ {
			// Post halo traffic.
			var loReq, hiReq *mpi.Request
			if c.Rank() > 0 {
				c.ISend(c.Rank()-1, s, u[plane:2*plane]).Wait()
				loReq = c.IRecv(c.Rank()-1, s)
			}
			if c.Rank() < c.Size()-1 {
				c.ISend(c.Rank()+1, s, u[local*plane:(local+1)*plane]).Wait()
				hiReq = c.IRecv(c.Rank()+1, s)
			}

			// Overlap: interior planes need no ghost data.
			for k := 2; k <= local-1; k++ {
				updatePlane(k)
			}

			// Complete the halos, then the two boundary planes.
			if loReq != nil {
				copy(u[:plane], loReq.Wait())
			}
			if hiReq != nil {
				copy(u[(local+1)*plane:], hiReq.Wait())
			}
			updatePlane(1)
			if local > 1 {
				updatePlane(local)
			}
			u, next = next, u
		}

		parts := c.Gather(0, u[plane:(local+1)*plane])
		if c.Rank() == 0 {
			pos := 0
			for _, p := range parts {
				copy(result.Data[pos:], p)
				pos += len(p)
			}
		}
		c.Barrier()
	})
	return result, nil
}

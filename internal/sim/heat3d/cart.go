package heat3d

import (
	"fmt"

	"lrm/internal/grid"
	"lrm/internal/mpi"
)

// SolveParallelCart runs the full model over a px x py x pz Cartesian
// processor grid — the paper's topology (8x8x8 ranks for the 192^3 full
// model). Each rank owns a 3-D block with one ghost layer per face and
// exchanges the six faces with its neighbours every step. The result is
// identical to Solve: the decomposition only changes who computes what.
func SolveParallelCart(cfg Config, px, py, pz int) (*grid.Field, error) {
	cfg = cfg.withDefaults()
	topo, err := mpi.NewCart3D(px*py*pz, px, py, pz)
	if err != nil {
		return nil, err
	}
	n := cfg.N
	for p, name := range map[int]string{px: "x", py: "y", pz: "z"} {
		if p > n-2 {
			return nil, fmt.Errorf("heat3d: %d ranks along %s cannot decompose N=%d", p, name, n)
		}
	}

	init := Init3D(cfg)
	result := grid.New(n, n, n)
	h := 1.0 / float64(n-1)
	dt := cfg.dt3D()

	w := mpi.NewWorld(px * py * pz)
	w.Run(func(c *mpi.Comm) {
		runCartRank(c, topo, cfg, init, result, h, dt)
	})
	return result, nil
}

// face direction indices; the tag identifies the flow so the paired
// exchanges between the same two ranks cannot cross-match.
const (
	faceXLo = iota
	faceXHi
	faceYLo
	faceYHi
	faceZLo
	faceZHi
)

// block is one rank's owned region plus ghost-layer storage.
type block struct {
	x0, x1, y0, y1, z0, z1 int // owned global ranges (half open)
	lx, ly, lz             int // owned extents
	sx, sy, sz             int // storage extents (owned + 2 ghosts)
	u, next                []float64
}

func (b *block) idx(z, y, x int) int { return (z*b.sy+y)*b.sx + x }

func newBlock(topo *mpi.Cart3D, rank, n int) *block {
	cx, cy, cz := topo.Coords(rank)
	b := &block{}
	b.x0, b.x1 = mpi.Slab1D(n, topo.Px, cx)
	b.y0, b.y1 = mpi.Slab1D(n, topo.Py, cy)
	b.z0, b.z1 = mpi.Slab1D(n, topo.Pz, cz)
	b.lx, b.ly, b.lz = b.x1-b.x0, b.y1-b.y0, b.z1-b.z0
	b.sx, b.sy, b.sz = b.lx+2, b.ly+2, b.lz+2
	b.u = make([]float64, b.sx*b.sy*b.sz)
	b.next = make([]float64, b.sx*b.sy*b.sz)
	return b
}

// load copies the rank's owned region from the global field into the
// interior of the ghosted local array.
func (b *block) load(global *grid.Field) {
	n := global.Dims[2]
	for z := 0; z < b.lz; z++ {
		for y := 0; y < b.ly; y++ {
			srcBase := ((b.z0+z)*global.Dims[1] + b.y0 + y) * n
			dstBase := b.idx(z+1, y+1, 1)
			copy(b.u[dstBase:dstBase+b.lx], global.Data[srcBase+b.x0:srcBase+b.x1])
		}
	}
}

// extractFace copies one owned boundary face into a flat buffer.
func (b *block) extractFace(dir int) []float64 {
	switch dir {
	case faceXLo, faceXHi:
		x := 1
		if dir == faceXHi {
			x = b.lx
		}
		out := make([]float64, b.lz*b.ly)
		for z := 0; z < b.lz; z++ {
			for y := 0; y < b.ly; y++ {
				out[z*b.ly+y] = b.u[b.idx(z+1, y+1, x)]
			}
		}
		return out
	case faceYLo, faceYHi:
		y := 1
		if dir == faceYHi {
			y = b.ly
		}
		out := make([]float64, b.lz*b.lx)
		for z := 0; z < b.lz; z++ {
			base := b.idx(z+1, y, 1)
			copy(out[z*b.lx:(z+1)*b.lx], b.u[base:base+b.lx])
		}
		return out
	default:
		z := 1
		if dir == faceZHi {
			z = b.lz
		}
		out := make([]float64, b.ly*b.lx)
		for y := 0; y < b.ly; y++ {
			base := b.idx(z, y+1, 1)
			copy(out[y*b.lx:(y+1)*b.lx], b.u[base:base+b.lx])
		}
		return out
	}
}

// insertGhost writes a received neighbour face into the ghost layer
// opposite to dir (dir describes which of OUR ghosts it fills).
func (b *block) insertGhost(dir int, face []float64) {
	switch dir {
	case faceXLo, faceXHi:
		x := 0
		if dir == faceXHi {
			x = b.lx + 1
		}
		for z := 0; z < b.lz; z++ {
			for y := 0; y < b.ly; y++ {
				b.u[b.idx(z+1, y+1, x)] = face[z*b.ly+y]
			}
		}
	case faceYLo, faceYHi:
		y := 0
		if dir == faceYHi {
			y = b.ly + 1
		}
		for z := 0; z < b.lz; z++ {
			base := b.idx(z+1, y, 1)
			copy(b.u[base:base+b.lx], face[z*b.lx:(z+1)*b.lx])
		}
	default:
		z := 0
		if dir == faceZHi {
			z = b.lz + 1
		}
		for y := 0; y < b.ly; y++ {
			base := b.idx(z, y+1, 1)
			copy(b.u[base:base+b.lx], face[y*b.lx:(y+1)*b.lx])
		}
	}
}

// exchange performs the six-face halo swap for one step.
func exchange(c *mpi.Comm, topo *mpi.Cart3D, b *block) {
	type swap struct {
		dx, dy, dz int
		sendDir    int // our face to send
		ghostDir   int // our ghost it fills on the RECEIVING side
	}
	swaps := []swap{
		{-1, 0, 0, faceXLo, faceXLo},
		{1, 0, 0, faceXHi, faceXHi},
		{0, -1, 0, faceYLo, faceYLo},
		{0, 1, 0, faceYHi, faceYHi},
		{0, 0, -1, faceZLo, faceZLo},
		{0, 0, 1, faceZHi, faceZHi},
	}
	for _, s := range swaps {
		nb := topo.Neighbor(c.Rank(), s.dx, s.dy, s.dz)
		if nb < 0 {
			continue
		}
		// Tag by the send direction so paired flows between the same two
		// ranks cannot cross-match.
		c.Send(nb, s.sendDir, b.extractFace(s.sendDir))
	}
	for _, s := range swaps {
		nb := topo.Neighbor(c.Rank(), s.dx, s.dy, s.dz)
		if nb < 0 {
			continue
		}
		// The neighbour sent its OPPOSITE face, tagged with that direction.
		b.insertGhost(s.ghostDir, c.Recv(nb, opposite(s.sendDir)))
	}
}

func opposite(dir int) int {
	switch dir {
	case faceXLo:
		return faceXHi
	case faceXHi:
		return faceXLo
	case faceYLo:
		return faceYHi
	case faceYHi:
		return faceYLo
	case faceZLo:
		return faceZHi
	default:
		return faceZLo
	}
}

// runCartRank is one rank's worth of the Cartesian-parallel solver.
func runCartRank(c *mpi.Comm, topo *mpi.Cart3D, cfg Config, init, result *grid.Field, h, dt float64) {
	n := cfg.N
	b := newBlock(topo, c.Rank(), n)
	b.load(init)
	r := cfg.Kappa * dt / (h * h)

	for s := 0; s < cfg.Steps; s++ {
		exchange(c, topo, b)
		for z := 1; z <= b.lz; z++ {
			gz := b.z0 + z - 1
			for y := 1; y <= b.ly; y++ {
				gy := b.y0 + y - 1
				for x := 1; x <= b.lx; x++ {
					gx := b.x0 + x - 1
					i := b.idx(z, y, x)
					if gz == 0 || gz == n-1 || gy == 0 || gy == n-1 || gx == 0 || gx == n-1 {
						b.next[i] = 0 // Dirichlet walls
						continue
					}
					cv := b.u[i]
					lap := b.u[i+b.sx*b.sy] + b.u[i-b.sx*b.sy] +
						b.u[i+b.sx] + b.u[i-b.sx] +
						b.u[i+1] + b.u[i-1] - 6*cv
					b.next[i] = cv + r*lap
				}
			}
		}
		b.u, b.next = b.next, b.u
	}

	// Gather: every rank ships its owned block (without ghosts) to rank 0.
	flat := make([]float64, b.lz*b.ly*b.lx)
	for z := 0; z < b.lz; z++ {
		for y := 0; y < b.ly; y++ {
			base := b.idx(z+1, y+1, 1)
			copy(flat[(z*b.ly+y)*b.lx:], b.u[base:base+b.lx])
		}
	}
	parts := c.Gather(0, flat)
	if c.Rank() == 0 {
		for rank, p := range parts {
			rb := newBlock(topo, rank, n)
			for z := 0; z < rb.lz; z++ {
				for y := 0; y < rb.ly; y++ {
					dstBase := ((rb.z0+z)*n+rb.y0+y)*n + rb.x0
					copy(result.Data[dstBase:dstBase+rb.lx], p[(z*rb.ly+y)*rb.lx:(z*rb.ly+y+1)*rb.lx])
				}
			}
		}
	}
	c.Barrier()
}

package heat3d

import (
	"math"
	"testing"
)

func TestInitSymmetricInZ(t *testing.T) {
	cfg := Default(17)
	f := Init3D(cfg)
	n := cfg.N
	for k := 0; k < n/2; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				if math.Abs(f.At3(k, j, i)-f.At3(n-1-k, j, i)) > 1e-12 {
					t.Fatalf("init not Z-symmetric at (%d,%d,%d)", k, j, i)
				}
			}
		}
	}
}

func TestDirichletBoundariesHold(t *testing.T) {
	cfg := Default(12)
	cfg.Steps = 25
	u := Solve(cfg)
	n := cfg.N
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			for _, v := range []float64{
				u.At3(0, a, b), u.At3(n-1, a, b),
				u.At3(a, 0, b), u.At3(a, n-1, b),
				u.At3(a, b, 0), u.At3(a, b, n-1),
			} {
				if v != 0 {
					t.Fatalf("boundary value %v != 0", v)
				}
			}
		}
	}
}

func TestHeatDiffusesAndStaysBounded(t *testing.T) {
	cfg := Default(16)
	cfg.Steps = 60
	init := Init3D(cfg)
	u := Solve(cfg)
	// Peak must decay (diffusion) but remain positive; no value may exceed
	// the initial maximum (maximum principle).
	_, hi0 := init.MinMax()
	lo, hi := u.MinMax()
	if hi >= hi0 {
		t.Fatalf("peak did not decay: %v -> %v", hi0, hi)
	}
	if hi <= 0 {
		t.Fatalf("field went non-positive: max %v", hi)
	}
	if lo < -1e-12 {
		t.Fatalf("maximum principle violated: min %v", lo)
	}
}

func TestStabilityDtOrdering(t *testing.T) {
	cfg := Default(32)
	cfg.Steps = 120
	// The 2-D limit must exceed the 3-D limit (the reduced model's larger
	// time step, Table II).
	if cfg.StabilityDt2D() <= cfg.StabilityDt3D() {
		t.Fatalf("2-D dt %v should exceed 3-D dt %v", cfg.StabilityDt2D(), cfg.StabilityDt3D())
	}
	if ReducedSteps(cfg) >= cfg.Steps {
		t.Fatalf("reduced model should need fewer steps: %d vs %d", ReducedSteps(cfg), cfg.Steps)
	}
}

func TestReducedStepsScale(t *testing.T) {
	cfg := Default(24)
	cfg.Steps = 300
	red := ReducedSteps(cfg)
	if red >= cfg.Steps || red < 1 {
		t.Fatalf("reduced steps = %d for full %d", red, cfg.Steps)
	}
	// Ratio should be roughly dt2/dt3 = 6/4.
	want := float64(cfg.Steps) * cfg.StabilityDt3D() / cfg.StabilityDt2D()
	if math.Abs(float64(red)-want) > want*0.2 {
		t.Fatalf("reduced steps = %d, want ~%.0f", red, want)
	}
}

func TestMidPlaneResemblesReducedModel(t *testing.T) {
	// The Section IV-A observation: the mid-plane of the full model evolves
	// like the 2-D projected model (same shape, modest amplitude offset).
	cfg := Default(24)
	cfg.Steps = 150
	full := Solve(cfg)
	mid := MidPlane(full)
	red := SolveReduced2D(cfg)

	// Correlate the two fields: cosine similarity must be very high.
	var dot, nm, nr float64
	for i := range mid.Data {
		dot += mid.Data[i] * red.Data[i]
		nm += mid.Data[i] * mid.Data[i]
		nr += red.Data[i] * red.Data[i]
	}
	cos := dot / math.Sqrt(nm*nr)
	if cos < 0.99 {
		t.Fatalf("mid-plane vs reduced model cosine similarity %v < 0.99", cos)
	}
}

func TestSnapshotsCountAndEvolution(t *testing.T) {
	cfg := Default(12)
	cfg.Steps = 40
	snaps := Snapshots(cfg, 5)
	if len(snaps) != 5 {
		t.Fatalf("got %d snapshots", len(snaps))
	}
	// Peaks must be non-increasing over time.
	prev := math.Inf(1)
	for i, s := range snaps {
		_, hi := s.MinMax()
		if hi > prev+1e-12 {
			t.Fatalf("snapshot %d peak grew: %v > %v", i, hi, prev)
		}
		prev = hi
	}
	if Snapshots(cfg, 0) != nil {
		t.Fatal("zero snapshots should be nil")
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	cfg := Default(14)
	cfg.Steps = 30
	serial := Solve(cfg)
	for _, ranks := range []int{1, 2, 3, 4} {
		par, err := SolveParallel(cfg, ranks)
		if err != nil {
			t.Fatal(err)
		}
		for i := range serial.Data {
			if serial.Data[i] != par.Data[i] {
				t.Fatalf("ranks=%d: mismatch at %d: %v vs %v", ranks, i, serial.Data[i], par.Data[i])
			}
		}
	}
}

func TestParallelRankValidation(t *testing.T) {
	cfg := Default(8)
	if _, err := SolveParallel(cfg, 0); err == nil {
		t.Fatal("expected error for 0 ranks")
	}
	if _, err := SolveParallel(cfg, 100); err == nil {
		t.Fatal("expected error for too many ranks")
	}
}

func TestEnergyConservationWithoutBoundaries(t *testing.T) {
	// Total heat decreases only through the boundaries; over a few early
	// steps (heat far from walls) it should be nearly conserved.
	cfg := Default(32)
	cfg.Steps = 5
	cfg.HotWidth = 0.05
	init := Init3D(cfg)
	u := Solve(cfg)
	sum := func(f []float64) float64 {
		s := 0.0
		for _, v := range f {
			s += v
		}
		return s
	}
	s0, s1 := sum(init.Data), sum(u.Data)
	if math.Abs(s0-s1) > 1e-6*s0 {
		t.Fatalf("heat not conserved away from walls: %v -> %v", s0, s1)
	}
}

func TestDefaultsApplied(t *testing.T) {
	cfg := Config{N: 8, Steps: 2}
	u := Solve(cfg) // zero Kappa/HotTemp/HotWidth must be defaulted, not NaN
	for i, v := range u.Data {
		if math.IsNaN(v) {
			t.Fatalf("NaN at %d with defaulted config", i)
		}
	}
}

func TestCartParallelMatchesSerial(t *testing.T) {
	cfg := Default(13)
	cfg.Steps = 25
	serial := Solve(cfg)
	for _, topo := range [][3]int{{1, 1, 1}, {2, 1, 1}, {1, 2, 1}, {1, 1, 2}, {2, 2, 2}, {3, 2, 1}} {
		par, err := SolveParallelCart(cfg, topo[0], topo[1], topo[2])
		if err != nil {
			t.Fatalf("%v: %v", topo, err)
		}
		for i := range serial.Data {
			if serial.Data[i] != par.Data[i] {
				t.Fatalf("topology %v: mismatch at %d: %v vs %v",
					topo, i, serial.Data[i], par.Data[i])
			}
		}
	}
}

func TestCartParallelValidation(t *testing.T) {
	cfg := Default(8)
	if _, err := SolveParallelCart(cfg, 7, 1, 1); err == nil {
		t.Fatal("expected too-many-ranks rejection")
	}
	if _, err := SolveParallelCart(cfg, 0, 1, 1); err == nil {
		t.Fatal("expected zero-rank rejection")
	}
}

func TestCartMatchesSlabDecomposition(t *testing.T) {
	// The 1-D slab solver and the 3-D Cartesian solver are independent
	// implementations; they must agree exactly.
	cfg := Default(12)
	cfg.Steps = 20
	slab, err := SolveParallel(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	cart, err := SolveParallelCart(cfg, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range slab.Data {
		if slab.Data[i] != cart.Data[i] {
			t.Fatalf("slab vs cart mismatch at %d", i)
		}
	}
}

func TestOverlapParallelMatchesSerial(t *testing.T) {
	cfg := Default(14)
	cfg.Steps = 30
	serial := Solve(cfg)
	for _, ranks := range []int{1, 2, 3, 5} {
		par, err := SolveParallelOverlap(cfg, ranks)
		if err != nil {
			t.Fatal(err)
		}
		for i := range serial.Data {
			if serial.Data[i] != par.Data[i] {
				t.Fatalf("ranks=%d: overlap mismatch at %d: %v vs %v",
					ranks, i, serial.Data[i], par.Data[i])
			}
		}
	}
	if _, err := SolveParallelOverlap(cfg, 0); err == nil {
		t.Fatal("expected 0-rank rejection")
	}
}

func TestDecayRateMatchesFundamentalMode(t *testing.T) {
	// Physics validation: after the transient dies out, the solution is
	// dominated by the fundamental eigenmode sin(pi x)sin(pi y)sin(pi z),
	// whose amplitude decays as exp(-3 pi^2 kappa t). Check the measured
	// decay rate against theory within discretisation error.
	cfg := Default(28)
	cfg.Steps = 300 // long enough to reach the asymptotic regime
	u1 := Solve(cfg)
	cfg2 := cfg
	cfg2.Steps = 400
	u2 := Solve(cfg2)
	_, p1 := u1.MinMax()
	_, p2 := u2.MinMax()
	dt := 0.9 * cfg.StabilityDt3D()
	elapsed := float64(cfg2.Steps-cfg.Steps) * dt
	measured := math.Log(p1/p2) / elapsed
	theory := 3 * math.Pi * math.Pi * cfg.Kappa
	if rel := math.Abs(measured-theory) / theory; rel > 0.05 {
		t.Fatalf("decay rate %.2f vs theory %.2f (rel err %.3f)", measured, theory, rel)
	}
}

// Package astro generates the Astro dataset of Table I: "velocity magnitude
// in a supernova simulation".
//
// The field is a spherically expanding ejecta shell — a radial velocity
// profile peaking at the shell radius — overlaid with divergence-rich
// turbulent perturbations built from a fixed set of random-phase Fourier
// modes (the standard synthetic-turbulence construction). The result has
// the strong single dominant mode plus broadband detail that gives real
// supernova outputs their characteristic PCA spectrum (Fig. 7: a very
// dominant first component).
package astro

import (
	"math"
	"math/rand"

	"lrm/internal/grid"
)

// Config describes an Astro snapshot.
type Config struct {
	// N is the grid size per dimension.
	N int
	// ShellRadius is the ejecta shell position in domain units (0..~0.7).
	ShellRadius float64
	// ShellWidth is the Gaussian width of the shell.
	ShellWidth float64
	// PeakVelocity scales the shell velocity.
	PeakVelocity float64
	// TurbulenceAmp scales the perturbation field relative to the peak.
	TurbulenceAmp float64
	// Modes is the number of Fourier modes in the turbulence.
	Modes int
	// Seed drives the random mode directions and phases.
	Seed int64
}

// Default returns the baseline configuration at grid size n.
func Default(n int) Config {
	return Config{
		N: n, ShellRadius: 0.35, ShellWidth: 0.08, PeakVelocity: 3000,
		TurbulenceAmp: 0.08, Modes: 40, Seed: 7,
	}
}

// Reduced derives the paper's reduced configuration: a smaller
// computational domain observed at an earlier time, i.e. a less expanded,
// slightly slower shell.
func Reduced(full Config) Config {
	r := full
	r.ShellRadius = full.ShellRadius * 0.8
	r.PeakVelocity = full.PeakVelocity * 0.9
	return r
}

type mode struct {
	kx, ky, kz float64
	phase      float64
	amp        float64
}

// Generate returns the velocity-magnitude field on an N^3 grid.
func Generate(cfg Config) *grid.Field {
	rng := rand.New(rand.NewSource(cfg.Seed))
	modes := make([]mode, cfg.Modes)
	for m := range modes {
		// Wavenumbers 2..10 with a k^-5/3-ish falloff.
		k := 2 + rng.Float64()*8
		theta := math.Acos(2*rng.Float64() - 1)
		phi := 2 * math.Pi * rng.Float64()
		modes[m] = mode{
			kx:    k * math.Sin(theta) * math.Cos(phi),
			ky:    k * math.Sin(theta) * math.Sin(phi),
			kz:    k * math.Cos(theta),
			phase: 2 * math.Pi * rng.Float64(),
			amp:   math.Pow(k, -5.0/6.0),
		}
	}

	n := cfg.N
	f := grid.New(n, n, n)
	inv := 1.0 / float64(n-1)
	w2 := 2 * cfg.ShellWidth * cfg.ShellWidth
	for k := 0; k < n; k++ {
		z := float64(k)*inv - 0.5
		for j := 0; j < n; j++ {
			y := float64(j)*inv - 0.5
			for i := 0; i < n; i++ {
				x := float64(i)*inv - 0.5
				r := math.Sqrt(x*x + y*y + z*z)
				d := r - cfg.ShellRadius
				shell := cfg.PeakVelocity * math.Exp(-d*d/w2)
				// Homologous interior: v proportional to r inside the shell.
				interior := 0.0
				if r < cfg.ShellRadius {
					interior = cfg.PeakVelocity * 0.3 * r / cfg.ShellRadius
				}
				turb := 0.0
				for _, m := range modes {
					turb += m.amp * math.Sin(2*math.Pi*(m.kx*x+m.ky*y+m.kz*z)+m.phase)
				}
				v := shell + interior + cfg.TurbulenceAmp*cfg.PeakVelocity*turb/float64(len(modes))*6
				if v < 0 {
					v = 0 // magnitudes are non-negative
				}
				f.Set3(v, k, j, i)
			}
		}
	}
	return f
}

// Snapshots returns `count` fields with the shell expanding between frames.
func Snapshots(cfg Config, count int) []*grid.Field {
	if count < 1 {
		return nil
	}
	out := make([]*grid.Field, count)
	for s := 0; s < count; s++ {
		c := cfg
		frac := 0.6 + 0.4*float64(s+1)/float64(count)
		c.ShellRadius = cfg.ShellRadius * frac
		out[s] = Generate(c)
	}
	return out
}

package astro

import (
	"math"
	"testing"
)

func TestNonNegativeMagnitudes(t *testing.T) {
	f := Generate(Default(24))
	lo, _ := f.MinMax()
	if lo < 0 {
		t.Fatalf("negative velocity magnitude %v", lo)
	}
}

func TestShellStructure(t *testing.T) {
	cfg := Default(32)
	f := Generate(cfg)
	n := cfg.N
	c := n / 2
	// Velocity near the shell radius must dominate centre and far corner.
	shellIdx := c + int(cfg.ShellRadius*float64(n-1))
	vShell := f.At3(c, c, shellIdx)
	vCentre := f.At3(c, c, c)
	vCorner := f.At3(0, 0, 0)
	if vShell < 2*vCentre {
		t.Fatalf("shell velocity %v should dominate centre %v", vShell, vCentre)
	}
	if vShell < 2*vCorner {
		t.Fatalf("shell velocity %v should dominate corner %v", vShell, vCorner)
	}
}

func TestDeterministicAndSeedSensitive(t *testing.T) {
	cfg := Default(16)
	a := Generate(cfg)
	b := Generate(cfg)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("nondeterministic output")
		}
	}
	cfg.Seed++
	c := Generate(cfg)
	same := true
	for i := range a.Data {
		if a.Data[i] != c.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed change had no effect")
	}
}

func TestTurbulenceAddsDetail(t *testing.T) {
	quiet := Default(24)
	quiet.TurbulenceAmp = 0
	noisy := Default(24)
	noisy.TurbulenceAmp = 0.2
	fq := Generate(quiet)
	fn := Generate(noisy)
	// High-frequency content: sum of |first differences| must grow.
	tv := func(f []float64) float64 {
		s := 0.0
		for i := 1; i < len(f); i++ {
			s += math.Abs(f[i] - f[i-1])
		}
		return s
	}
	if tv(fn.Data) <= tv(fq.Data) {
		t.Fatal("turbulence did not add variation")
	}
}

func TestReducedSmaller(t *testing.T) {
	full := Default(16)
	red := Reduced(full)
	if red.ShellRadius >= full.ShellRadius || red.PeakVelocity >= full.PeakVelocity {
		t.Fatalf("reduced config not scaled down: %+v", red)
	}
}

func TestSnapshotsShellExpands(t *testing.T) {
	cfg := Default(24)
	snaps := Snapshots(cfg, 3)
	if len(snaps) != 3 {
		t.Fatalf("snapshots = %d", len(snaps))
	}
	// The radius of the max-velocity sphere should grow: measure mean
	// radius of top-decile cells.
	meanRadius := func(fdata []float64) float64 {
		n := cfg.N
		maxV := 0.0
		for _, v := range fdata {
			if v > maxV {
				maxV = v
			}
		}
		var sum, cnt float64
		inv := 1.0 / float64(n-1)
		for k := 0; k < n; k++ {
			for j := 0; j < n; j++ {
				for i := 0; i < n; i++ {
					if fdata[(k*n+j)*n+i] > 0.8*maxV {
						z := float64(k)*inv - 0.5
						y := float64(j)*inv - 0.5
						x := float64(i)*inv - 0.5
						sum += math.Sqrt(x*x + y*y + z*z)
						cnt++
					}
				}
			}
		}
		return sum / cnt
	}
	if meanRadius(snaps[2].Data) <= meanRadius(snaps[0].Data) {
		t.Fatal("shell did not expand across snapshots")
	}
}

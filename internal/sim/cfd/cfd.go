// Package cfd generates the two computational-fluid-dynamics datasets of
// Table I:
//
//   - Fish: "velocity magnitude in a CFD calculation of cooling air being
//     injected into a mixing tank" — a localised jet in a quiescent tank,
//     so the field contains many exact zeros (the property that makes the
//     preconditioners lose to direct compression in Fig. 6).
//   - Yf17: "temperature in a computational fluid dynamics calculation" —
//     an aircraft-body thermal field: smooth free stream with boundary-layer
//     heating concentrated around an embedded body.
package cfd

import (
	"math"
	"math/rand"

	"lrm/internal/grid"
)

// FishConfig describes the mixing-tank jet.
type FishConfig struct {
	// N is the grid size per dimension.
	N int
	// JetVelocity is the inlet velocity.
	JetVelocity float64
	// JetRadius is the nozzle radius in domain units.
	JetRadius float64
	// SpreadRate controls how fast the jet cone widens along its axis.
	SpreadRate float64
	// Penetration is how far into the tank the jet reaches (0..1).
	Penetration float64
	// NoiseAmp adds shear-layer fluctuations along the jet edge.
	NoiseAmp float64
	// AxisSlope tilts the jet axis upward in y per unit x (real mixing-tank
	// inlets are angled, so the zero region is not grid-aligned).
	AxisSlope float64
	// Floor zeroes velocities below this fraction of JetVelocity — the
	// quiescent tank, producing the dataset's many exact zeros.
	Floor float64
	// Seed drives the shear-layer noise.
	Seed int64
}

// DefaultFish returns the baseline Fish configuration at grid size n.
func DefaultFish(n int) FishConfig {
	return FishConfig{
		N: n, JetVelocity: 12, JetRadius: 0.06, SpreadRate: 0.18,
		Penetration: 0.85, NoiseAmp: 0.06, Floor: 0.02, Seed: 11,
		AxisSlope: 0.45,
	}
}

// ReducedFish derives the reduced configuration: smaller domain coverage
// and shorter time (a less developed jet).
func ReducedFish(full FishConfig) FishConfig {
	r := full
	r.Penetration = full.Penetration * 0.8
	r.JetVelocity = full.JetVelocity * 0.95
	return r
}

// GenerateFish returns the velocity-magnitude field on an N^3 grid. The jet
// enters at the centre of the x = 0 wall and points along +x.
func GenerateFish(cfg FishConfig) *grid.Field {
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Fixed set of azimuthal shear modes.
	type m struct{ k, phase, amp float64 }
	modes := make([]m, 6)
	for i := range modes {
		modes[i] = m{k: float64(2 + i), phase: 2 * math.Pi * rng.Float64(), amp: rng.Float64()}
	}

	n := cfg.N
	f := grid.New(n, n, n)
	inv := 1.0 / float64(n-1)
	for k := 0; k < n; k++ {
		z := float64(k)*inv - 0.5
		for j := 0; j < n; j++ {
			y := float64(j)*inv - 0.5
			for i := 0; i < n; i++ {
				x := float64(i) * inv // 0 at the inlet wall
				if x > cfg.Penetration {
					continue // beyond the jet tip: quiescent (exact zero)
				}
				yc := cfg.AxisSlope * x * (1 - x) * 2 // curved, angled jet path
				dy := y - yc
				rr := math.Sqrt(dy*dy + z*z)
				width := cfg.JetRadius + cfg.SpreadRate*x
				// Centreline decay ~ 1/(1 + x/width0) as in round jets.
				centre := cfg.JetVelocity / (1 + 4*x)
				// Tip rounding.
				tip := 1.0
				if x > cfg.Penetration-0.1 {
					tip = (cfg.Penetration - x) / 0.1
				}
				v := centre * tip * math.Exp(-rr*rr/(2*width*width))
				// Shear-layer fluctuation on the jet edge.
				if v > 0 {
					theta := math.Atan2(z, y)
					s := 0.0
					for _, mm := range modes {
						s += mm.amp * math.Sin(mm.k*theta+mm.phase+20*x)
					}
					v *= 1 + cfg.NoiseAmp*s/float64(len(modes))*2
				}
				if v < cfg.Floor*cfg.JetVelocity {
					v = 0 // quiescent tank: exact zero
				}
				f.Set3(v, k, j, i)
			}
		}
	}
	return f
}

// ZeroFraction reports the fraction of exact zeros in a field (the Fish
// dataset's signature property).
func ZeroFraction(f *grid.Field) float64 {
	z := 0
	for _, v := range f.Data {
		if v == 0 {
			z++
		}
	}
	return float64(z) / float64(f.Len())
}

// Yf17Config describes the aircraft-skin temperature field.
type Yf17Config struct {
	// N is the grid size per dimension.
	N int
	// FreeStreamTemp is the ambient temperature.
	FreeStreamTemp float64
	// SkinTemp is the peak body-surface temperature.
	SkinTemp float64
	// BoundaryLayer is the thermal boundary-layer thickness.
	BoundaryLayer float64
	// BodyLength / BodyRadius shape the embedded fuselage ellipsoid.
	BodyLength, BodyRadius float64
	// WakeAmp adds a decaying thermal wake behind the body.
	WakeAmp float64
}

// DefaultYf17 returns the baseline configuration at grid size n.
func DefaultYf17(n int) Yf17Config {
	return Yf17Config{
		N: n, FreeStreamTemp: 300, SkinTemp: 420, BoundaryLayer: 0.06,
		BodyLength: 0.35, BodyRadius: 0.08, WakeAmp: 0.35,
	}
}

// ReducedYf17 derives the reduced configuration: smaller body, shorter
// developed wake (earlier time).
func ReducedYf17(full Yf17Config) Yf17Config {
	r := full
	r.BodyLength = full.BodyLength * 0.7
	r.WakeAmp = full.WakeAmp * 0.5
	return r
}

// GenerateYf17 returns the temperature field on an N^3 grid with the body
// centred at (0.4, 0.5, 0.5) pointing along +x.
func GenerateYf17(cfg Yf17Config) *grid.Field {
	n := cfg.N
	f := grid.New(n, n, n)
	inv := 1.0 / float64(n-1)
	for k := 0; k < n; k++ {
		z := float64(k)*inv - 0.5
		for j := 0; j < n; j++ {
			y := float64(j)*inv - 0.5
			for i := 0; i < n; i++ {
				x := float64(i)*inv - 0.4
				// Signed distance to the fuselage ellipsoid (approximate).
				q := math.Sqrt((x/cfg.BodyLength)*(x/cfg.BodyLength) +
					(y/cfg.BodyRadius)*(y/cfg.BodyRadius) +
					(z/cfg.BodyRadius)*(z/cfg.BodyRadius))
				d := (q - 1) * cfg.BodyRadius // ~distance outside the body
				var t float64
				if d <= 0 {
					t = cfg.SkinTemp
				} else {
					t = cfg.FreeStreamTemp + (cfg.SkinTemp-cfg.FreeStreamTemp)*math.Exp(-d/cfg.BoundaryLayer)
				}
				// Thermal wake: heated air convected downstream.
				if x > 0 {
					rr := math.Sqrt(y*y + z*z)
					wake := cfg.WakeAmp * (cfg.SkinTemp - cfg.FreeStreamTemp) *
						math.Exp(-rr*rr/(2*(cfg.BodyRadius+0.1*x)*(cfg.BodyRadius+0.1*x))) /
						(1 + 3*x)
					t += wake
				}
				f.Set3(t, k, j, i)
			}
		}
	}
	return f
}

// FishSnapshots returns `count` jet states with growing penetration.
func FishSnapshots(cfg FishConfig, count int) []*grid.Field {
	if count < 1 {
		return nil
	}
	out := make([]*grid.Field, count)
	for s := 0; s < count; s++ {
		c := cfg
		c.Penetration = cfg.Penetration * (0.4 + 0.6*float64(s+1)/float64(count))
		out[s] = GenerateFish(c)
	}
	return out
}

// Yf17Snapshots returns `count` states with the wake developing.
func Yf17Snapshots(cfg Yf17Config, count int) []*grid.Field {
	if count < 1 {
		return nil
	}
	out := make([]*grid.Field, count)
	for s := 0; s < count; s++ {
		c := cfg
		c.WakeAmp = cfg.WakeAmp * float64(s+1) / float64(count)
		out[s] = GenerateYf17(c)
	}
	return out
}

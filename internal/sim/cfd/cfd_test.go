package cfd

import (
	"math"
	"testing"
)

func TestFishHasManyZeros(t *testing.T) {
	f := GenerateFish(DefaultFish(32))
	if z := ZeroFraction(f); z < 0.5 {
		t.Fatalf("zero fraction = %v, want > 0.5 (the Fish signature)", z)
	}
	// But not all zeros: the jet exists.
	if z := ZeroFraction(f); z > 0.99 {
		t.Fatalf("zero fraction = %v: no jet generated", z)
	}
}

func TestFishJetGeometry(t *testing.T) {
	cfg := DefaultFish(32)
	f := GenerateFish(cfg)
	n := cfg.N
	c := n / 2
	// Velocity on the jet axis near the inlet beats off-axis and far-field.
	vInlet := f.At3(c, c, 2)
	vOffAxis := f.At3(2, 2, 2)
	vTip := f.At3(c, c, n-1)
	if vInlet <= 0 {
		t.Fatalf("no jet at the inlet: %v", vInlet)
	}
	if vOffAxis != 0 {
		t.Fatalf("quiescent corner moving: %v", vOffAxis)
	}
	if vTip != 0 {
		t.Fatalf("beyond penetration should be zero: %v", vTip)
	}
	// Centreline decays along the axis.
	vMid := f.At3(c, c, n/2)
	if vMid >= vInlet {
		t.Fatalf("centreline did not decay: %v -> %v", vInlet, vMid)
	}
}

func TestReducedFishLessDeveloped(t *testing.T) {
	full := DefaultFish(24)
	red := ReducedFish(full)
	ff := GenerateFish(full)
	fr := GenerateFish(red)
	// The reduced jet reaches less far: more zeros.
	if ZeroFraction(fr) <= ZeroFraction(ff) {
		t.Fatalf("reduced jet not smaller: %v vs %v", ZeroFraction(fr), ZeroFraction(ff))
	}
}

func TestYf17TemperatureRange(t *testing.T) {
	cfg := DefaultYf17(32)
	f := GenerateYf17(cfg)
	lo, hi := f.MinMax()
	if lo < cfg.FreeStreamTemp-1 {
		t.Fatalf("temperature %v below free stream", lo)
	}
	if hi < cfg.SkinTemp || hi > cfg.SkinTemp*1.5 {
		t.Fatalf("peak temperature %v implausible (skin %v)", hi, cfg.SkinTemp)
	}
}

func TestYf17BodyHotFarFieldCold(t *testing.T) {
	cfg := DefaultYf17(32)
	f := GenerateYf17(cfg)
	n := cfg.N
	c := n / 2
	// Body centre (x=0.4 of domain) is at skin temperature.
	bodyI := int(0.4 * float64(n-1))
	if got := f.At3(c, c, bodyI); math.Abs(got-cfg.SkinTemp) > 40 {
		t.Fatalf("body temperature = %v, want ~%v", got, cfg.SkinTemp)
	}
	// Far corner is near free stream.
	if got := f.At3(0, 0, 0); math.Abs(got-cfg.FreeStreamTemp) > 10 {
		t.Fatalf("corner temperature = %v, want ~%v", got, cfg.FreeStreamTemp)
	}
}

func TestYf17WakeDownstreamOnly(t *testing.T) {
	cfg := DefaultYf17(32)
	f := GenerateYf17(cfg)
	n := cfg.N
	c := n / 2
	// Same distance from the body fore and aft: the aft (downstream) side
	// must be warmer thanks to the wake.
	bodyI := int(0.4 * float64(n-1))
	halfLen := int(cfg.BodyLength * float64(n-1))
	fore := f.At3(c, c, bodyI-halfLen-4)
	aft := f.At3(c, c, bodyI+halfLen+4)
	if aft <= fore {
		t.Fatalf("wake missing: fore %v, aft %v", fore, aft)
	}
}

func TestFishDeterministic(t *testing.T) {
	cfg := DefaultFish(16)
	a := GenerateFish(cfg)
	b := GenerateFish(cfg)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("nondeterministic fish output")
		}
	}
}

func TestSnapshotsCounts(t *testing.T) {
	if got := len(FishSnapshots(DefaultFish(12), 5)); got != 5 {
		t.Fatalf("fish snapshots = %d", got)
	}
	if got := len(Yf17Snapshots(DefaultYf17(12), 5)); got != 5 {
		t.Fatalf("yf17 snapshots = %d", got)
	}
	if FishSnapshots(DefaultFish(12), 0) != nil || Yf17Snapshots(DefaultYf17(12), 0) != nil {
		t.Fatal("zero snapshots should be nil")
	}
}

func TestFishSnapshotsDevelop(t *testing.T) {
	snaps := FishSnapshots(DefaultFish(24), 4)
	if ZeroFraction(snaps[3]) >= ZeroFraction(snaps[0]) {
		t.Fatal("jet did not develop across snapshots")
	}
}

package huffman

import (
	"errors"
	"testing"

	"lrm/internal/compress"
)

// TestDecodeEveryPrefix asserts the decode contract on truncation: every
// strict prefix of a valid stream must fail with an error wrapping
// compress.ErrTruncated or compress.ErrCorrupt — never panic, never decode.
func TestDecodeEveryPrefix(t *testing.T) {
	symbols := make([]int, 257)
	for i := range symbols {
		symbols[i] = (i*7)%31 - 15
	}
	enc := Encode(symbols)
	for n := 0; n < len(enc); n++ {
		_, err := Decode(enc[:n])
		if err == nil {
			t.Fatalf("prefix %d/%d decoded without error", n, len(enc))
		}
		if !errors.Is(err, compress.ErrTruncated) && !errors.Is(err, compress.ErrCorrupt) {
			t.Fatalf("prefix %d/%d: unclassified error: %v", n, len(enc), err)
		}
	}
}

package huffman

import (
	"math/rand"
	"testing"
)

// benchSymbols resembles the quantizer-code streams the SZ codec feeds this
// package: a tight, heavily skewed alphabet around the zero-prediction code.
func benchSymbols(n int) []int {
	rng := rand.New(rand.NewSource(1))
	out := make([]int, n)
	for i := range out {
		out[i] = 1<<16 + int(rng.NormFloat64()*3)
	}
	return out
}

func BenchmarkEncode(b *testing.B) {
	symbols := benchSymbols(1 << 17)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Encode(symbols)
	}
}

func BenchmarkDecode(b *testing.B) {
	data := Encode(benchSymbols(1 << 17))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

package huffman

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"

	"lrm/internal/bitstream"
	"lrm/internal/compress"
)

// decodeReference is the pre-table decoder kept verbatim: header parse, then
// a per-bit group walk for every symbol. The table-driven Decode must agree
// with it on every input — values, error presence, and error text.
func decodeReference(data []byte) ([]int, error) {
	pos := 0
	readUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("huffman: truncated header: %w", compress.ErrTruncated)
		}
		pos += n
		return v, nil
	}
	readVarint := func() (int64, error) {
		v, n := binary.Varint(data[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("huffman: truncated header: %w", compress.ErrTruncated)
		}
		pos += n
		return v, nil
	}

	count, err := readUvarint()
	if err != nil {
		return nil, err
	}
	nsyms, err := readUvarint()
	if err != nil {
		return nil, err
	}
	if count == 0 {
		return []int{}, nil
	}
	if nsyms == 0 {
		return nil, fmt.Errorf("huffman: empty alphabet with nonzero count: %w", compress.ErrCorrupt)
	}
	if err := compress.CheckedAlloc("huffman: alphabet", nsyms, uint64(len(data)-pos)/2, 16); err != nil {
		return nil, err
	}
	if err := compress.CheckedAlloc("huffman: symbols", count, 8*uint64(len(data)), 8); err != nil {
		return nil, err
	}
	sl := make([]symLen, nsyms)
	for i := range sl {
		s, err := readVarint()
		if err != nil {
			return nil, err
		}
		l, err := readUvarint()
		if err != nil {
			return nil, err
		}
		if l == 0 || l > maxCodeLen {
			return nil, fmt.Errorf("huffman: invalid code length %d: %w", l, compress.ErrCorrupt)
		}
		sl[i] = symLen{int(s), int(l)}
	}
	for i := 1; i < len(sl); i++ {
		if sl[i].length < sl[i-1].length ||
			(sl[i].length == sl[i-1].length && sl[i].symbol <= sl[i-1].symbol) {
			return nil, fmt.Errorf("huffman: header not in canonical order: %w", compress.ErrCorrupt)
		}
	}

	var groups [maxCodeLen + 1]lenGroup
	ordered := make([]int, len(sl))
	var code uint64
	prevLen := 0
	for i, e := range sl {
		code <<= uint(e.length - prevLen)
		if groups[e.length].count == 0 {
			groups[e.length] = lenGroup{first: code, offset: i, count: 1}
		} else {
			groups[e.length].count++
		}
		ordered[i] = e.symbol
		code++
		prevLen = e.length
	}

	r := bitstream.NewReader(data[pos:])
	out := make([]int, 0, count)
	for uint64(len(out)) < count {
		var v uint64
		l := 0
		decoded := false
		for l < maxCodeLen {
			b, err := r.ReadBit()
			if err != nil {
				return nil, fmt.Errorf("huffman: truncated payload after %d symbols: %w", len(out), compress.ErrTruncated)
			}
			v = v<<1 | uint64(b)
			l++
			g := &groups[l]
			if g.count == 0 {
				continue
			}
			idx := v - g.first
			if v >= g.first && idx < uint64(g.count) {
				out = append(out, ordered[g.offset+int(idx)])
				decoded = true
				break
			}
		}
		if !decoded {
			return nil, fmt.Errorf("huffman: invalid code in payload: %w", compress.ErrCorrupt)
		}
	}
	return out, nil
}

// compareDecoders runs both decoders over data and fails unless their
// outputs and error outcomes are identical.
func compareDecoders(t *testing.T, data []byte) {
	t.Helper()
	got, errGot := Decode(data)
	want, errWant := decodeReference(data)
	if (errGot == nil) != (errWant == nil) {
		t.Fatalf("error mismatch: table=%v reference=%v", errGot, errWant)
	}
	if errGot != nil {
		if errGot.Error() != errWant.Error() {
			t.Fatalf("error text mismatch:\ntable:     %v\nreference: %v", errGot, errWant)
		}
		return
	}
	if len(got) != len(want) {
		t.Fatalf("length mismatch: %d != %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("symbol %d: table %d != reference %d", i, got[i], want[i])
		}
	}
}

// fibSymbols builds a stream whose histogram follows Fibonacci counts — the
// worst case for code depth — forcing codes past tableBits so the overflow
// walk is exercised alongside the table fast path.
func fibSymbols(nsyms int) []int {
	a, b := 1, 1
	var syms []int
	for s := 0; s < nsyms; s++ {
		for i := 0; i < a; i++ {
			syms = append(syms, s)
		}
		a, b = b, a+b
	}
	return syms
}

// TestDecodeMatchesReference drives random, skewed, deep-tree, truncated,
// and bit-flipped streams through both decoders.
func TestDecodeMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var inputs [][]byte

	// Valid streams across the table gate (count ≥ 64 builds the table).
	for _, n := range []int{1, 8, 63, 64, 65, 1000, 20000} {
		syms := make([]int, n)
		for i := range syms {
			switch rng.Intn(3) {
			case 0:
				syms[i] = rng.Intn(4)
			case 1:
				syms[i] = rng.Intn(64) - 32
			default:
				syms[i] = rng.Intn(1 << 16)
			}
		}
		inputs = append(inputs, Encode(syms))
	}
	// Deep trees: codes longer than tableBits (24 Fibonacci symbols reach
	// depth ~23), so valid payloads hit the overflow walk.
	deep := fibSymbols(24)
	if got := Encode(deep); true {
		inputs = append(inputs, got)
	}
	inputs = append(inputs, Encode(fibSymbols(16)))

	// Fault injection: truncations and bit flips of every valid stream.
	var faults [][]byte
	for _, enc := range inputs {
		for i := 0; i < 8; i++ {
			if len(enc) < 2 {
				break
			}
			cut := rng.Intn(len(enc)-1) + 1
			faults = append(faults, enc[:cut])
			mut := append([]byte(nil), enc...)
			mut[rng.Intn(len(mut))] ^= 1 << uint(rng.Intn(8))
			faults = append(faults, mut)
		}
	}
	inputs = append(inputs, faults...)
	inputs = append(inputs, []byte{}, []byte{0x80}, []byte("garbage input"))

	// Kraft-oversubscribed header: three symbols all claiming length 1 is
	// canonically ordered yet pushes the third code to 2 ≥ 2^1, which can
	// never match a 1-bit window. The table fill must treat it as
	// unreachable (not index out of bounds) and decode must match the
	// group-walk outcome. count=64 forces the table path.
	over := []byte{64, 3, 0, 1, 2, 1, 4, 1}
	over = append(over, make([]byte, 16)...)
	inputs = append(inputs, over)

	for i, data := range inputs {
		i, data := i, data
		t.Run(fmt.Sprintf("input-%d", i), func(t *testing.T) {
			compareDecoders(t, data)
		})
	}
}

// TestDecodeDeepCodesRoundTrip pins the overflow path explicitly: the
// Fibonacci alphabet must round-trip and must contain codes > tableBits.
func TestDecodeDeepCodesRoundTrip(t *testing.T) {
	syms := fibSymbols(24)
	hist := histogram(syms, 1)
	sl := codeLengths(hist)
	maxLen := 0
	for _, e := range sl {
		if e.length > maxLen {
			maxLen = e.length
		}
	}
	if maxLen <= tableBits {
		t.Fatalf("fixture too shallow: max code length %d ≤ tableBits %d", maxLen, tableBits)
	}
	dec, err := Decode(Encode(syms))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(syms) {
		t.Fatalf("length %d != %d", len(dec), len(syms))
	}
	for i := range dec {
		if dec[i] != syms[i] {
			t.Fatalf("symbol %d: %d != %d", i, dec[i], syms[i])
		}
	}
}

package huffman

import (
	"crypto/sha256"
	"fmt"
	"testing"
)

// Golden hashes captured from the pre-rewrite encoder/decoder (container/heap
// tree build, per-bit group-walk decode). The slab heap and table-driven
// decoder MUST reproduce and accept these exact streams.

func goldenSkew(n int) []int {
	syms := make([]int, n)
	for i := range syms {
		v := 32768
		switch {
		case i%97 == 0:
			v = 65536
		case i%13 == 0:
			v = 32768 + (i%7 - 3)
		case i%5 == 0:
			v = 32768 + i%3
		}
		syms[i] = v
	}
	return syms
}

var huffmanGoldenStreams = map[int]string{
	1:     "1fb57a0fc7c143f6",
	100:   "e7b49ef6e66e5ff9",
	65536: "4213a77554beabf9",
}

func TestGoldenStreams(t *testing.T) {
	for n, want := range huffmanGoldenStreams {
		syms := goldenSkew(n)
		for _, workers := range []int{1, 8} {
			enc := EncodeParallel(syms, workers)
			s := sha256.Sum256(enc)
			if got := fmt.Sprintf("%x", s[:8]); got != want {
				t.Errorf("skew-%d workers=%d: stream hash %s, want golden %s", n, workers, got, want)
			}
			back, err := Decode(enc)
			if err != nil {
				t.Fatalf("skew-%d workers=%d: decode: %v", n, workers, err)
			}
			if len(back) != n {
				t.Fatalf("skew-%d: round trip length %d != %d", n, len(back), n)
			}
			for i := range back {
				if back[i] != syms[i] {
					t.Fatalf("skew-%d: symbol %d = %d, want %d", n, i, back[i], syms[i])
				}
			}
		}
	}
}

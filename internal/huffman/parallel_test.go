package huffman

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestEncodeParallelByteIdentity: the sharded count/pack must reproduce the
// serial stream exactly for any worker count, across alphabet shapes that
// hit both the dense and the map histogram/code-table paths.
func TestEncodeParallelByteIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cases := map[string][]int{
		"empty":         {},
		"single":        {42},
		"uniform":       make([]int, 10000),
		"negative":      {-5, -5, -5, 3, 3, -700000, 12, -5},
		"quantizerLike": nil, // filled below: tight alphabet, dense path
		"wideSparse":    nil, // filled below: huge span, map path
	}
	ql := make([]int, 50000)
	for i := range ql {
		ql[i] = 1<<20 + int(rng.NormFloat64()*4)
	}
	cases["quantizerLike"] = ql
	ws := make([]int, 20000)
	for i := range ws {
		ws[i] = rng.Intn(1 << 30)
		if rng.Intn(2) == 0 {
			ws[i] = -ws[i]
		}
	}
	cases["wideSparse"] = ws

	for name, symbols := range cases {
		want := EncodeParallel(symbols, 1)
		for _, w := range []int{2, 3, 8, 16} {
			got := EncodeParallel(symbols, w)
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: workers=%d stream differs from serial (%d vs %d bytes)",
					name, w, len(got), len(want))
			}
		}
		// And Encode (the serial entry point) is literally workers=1.
		if !bytes.Equal(Encode(symbols), want) {
			t.Fatalf("%s: Encode differs from EncodeParallel(.., 1)", name)
		}
		dec, err := Decode(want)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if len(dec) != len(symbols) {
			t.Fatalf("%s: round trip length %d != %d", name, len(dec), len(symbols))
		}
		for i := range symbols {
			if dec[i] != symbols[i] {
				t.Fatalf("%s: round trip mismatch at %d", name, i)
			}
		}
	}
}

// Package huffman implements a canonical Huffman coder over integer symbol
// alphabets. It is the entropy-coding stage of the SZ-style compressor: SZ
// quantization codes are highly skewed (most predictions hit bin 0), which
// is exactly the regime where Huffman coding shines.
//
// The encoded stream is self-describing: a compact header stores the code
// lengths (canonical codes are reconstructed from lengths alone), followed
// by the bit-packed payload.
//
// Both the frequency count and the payload encode parallelize over shards
// of the symbol slice without changing a single output bit: per-shard
// counts merge by addition (commutative, so the totals equal a serial
// count), the tree build is a deterministic function of the totals, and
// per-shard payload writers concatenate in shard order, reproducing the
// serial bit sequence exactly.
package huffman

import (
	"cmp"
	"encoding/binary"
	"fmt"
	"slices"
	"sort"

	"lrm/internal/bitstream"
	"lrm/internal/compress"
	"lrm/internal/parallel"
)

// maxCodeLen caps code lengths so the decoder tables stay small. 57 bits is
// far beyond anything reachable with realistic symbol counts but keeps the
// canonical-code arithmetic safely inside uint64.
const maxCodeLen = 57

// tableBits sizes the first-level decode table: every code of length ≤
// tableBits resolves with a single Peek64 and one load. SZ quantization
// alphabets are dominated by a handful of near-zero bins, so in practice
// almost every payload symbol takes this path.
const tableBits = 11

// tableMinSymbols gates the decode-table build: below this, filling 2^11
// entries costs more than the per-bit walk it replaces.
const tableMinSymbols = 64

// minParallelSymbols gates the sharded paths: below this, pool fork/join
// overhead swamps the counting and packing work.
const minParallelSymbols = 4096

// treeNode is one slab entry of the Huffman tree. All nodes live in a single
// slice and refer to children by index, so building a tree costs O(1)
// allocations instead of one per node.
type treeNode struct {
	count  int
	symbol int // valid for leaves; min leaf symbol for internal nodes
	seq    int // creation sequence; final ordering tie-break
	left   int32
	right  int32 // slab indices; -1 marks a leaf
}

// symCount is one alphabet entry: a distinct symbol and its frequency.
type symCount struct {
	symbol, count int
}

// denseRangeCap bounds the dense counting table: the symbol span must be
// at most this AND not wildly larger than the input, otherwise the
// map-based path is used. SZ quantization codes span [0, 2*bins], so the
// hot caller is always dense.
const denseRangeCap = 1 << 22

// histogram returns the distinct symbols with their frequencies, sorted by
// symbol. When the symbol span is small it counts into dense per-shard
// arrays merged by addition; otherwise it falls back to a serial map. Both
// paths return the identical sorted slice.
func histogram(symbols []int, workers int) []symCount {
	if len(symbols) == 0 {
		return nil
	}
	lo, hi := minMax(symbols, workers)
	span := hi - lo + 1
	if span <= denseRangeCap && span <= 4*len(symbols)+1024 {
		return denseHistogram(symbols, lo, span, workers)
	}
	counts := make(map[int]int)
	for _, s := range symbols {
		counts[s]++
	}
	out := make([]symCount, 0, len(counts))
	for s, c := range counts {
		out = append(out, symCount{s, c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].symbol < out[j].symbol })
	return out
}

// minMax scans for the smallest and largest symbol, sharding the scan when
// the input is large enough to pay for the fork.
func minMax(symbols []int, workers int) (int, int) {
	if workers <= 1 || len(symbols) < minParallelSymbols {
		lo, hi := symbols[0], symbols[0]
		for _, s := range symbols[1:] {
			if s < lo {
				lo = s
			}
			if s > hi {
				hi = s
			}
		}
		return lo, hi
	}
	shards := parallel.Shards(workers, len(symbols))
	los := make([]int, shards)
	his := make([]int, shards)
	parallel.ForShard(workers, len(symbols), func(sh, a, b int) {
		lo, hi := symbols[a], symbols[a]
		for _, s := range symbols[a+1 : b] {
			if s < lo {
				lo = s
			}
			if s > hi {
				hi = s
			}
		}
		los[sh], his[sh] = lo, hi
	})
	lo, hi := los[0], his[0]
	for i := 1; i < shards; i++ {
		if los[i] < lo {
			lo = los[i]
		}
		if his[i] > hi {
			hi = his[i]
		}
	}
	return lo, hi
}

// denseHistogram counts into span-sized arrays indexed by symbol-lo.
// Per-shard tables merge by addition, so the totals are exactly the serial
// counts no matter how shards interleave.
func denseHistogram(symbols []int, lo, span, workers int) []symCount {
	total := parallel.Ints(span)
	defer parallel.PutInts(total)
	for i := range total {
		total[i] = 0
	}
	if workers <= 1 || len(symbols) < minParallelSymbols {
		for _, s := range symbols {
			total[s-lo]++
		}
	} else {
		shards := parallel.Shards(workers, len(symbols))
		tables := make([][]int, shards)
		parallel.ForShard(workers, len(symbols), func(sh, a, b int) {
			t := parallel.Ints(span)
			for i := range t {
				t[i] = 0
			}
			for _, s := range symbols[a:b] {
				t[s-lo]++
			}
			tables[sh] = t
		})
		for _, t := range tables {
			for i, c := range t {
				total[i] += c
			}
			parallel.PutInts(t)
		}
	}
	nsyms := 0
	for _, c := range total {
		if c > 0 {
			nsyms++
		}
	}
	out := make([]symCount, 0, nsyms)
	for i, c := range total {
		if c > 0 {
			out = append(out, symCount{lo + i, c})
		}
	}
	return out
}

// codeLengths computes Huffman code lengths from a symbol-sorted histogram.
// The result is a deterministic function of the histogram alone.
//
// Nodes live in one slab and the work queue is a manual binary heap of slab
// indices. The ordering below is a strict total order — (count, symbol, seq)
// never ties, because a leaf and an internal node colliding on (count,
// symbol) still differ in creation sequence — so every correct heap pops the
// unique minimum at each step. The merge sequence, and therefore the tree,
// is identical to the previous container/heap implementation.
func codeLengths(hist []symCount) []symLen {
	if len(hist) == 0 {
		return nil
	}
	if len(hist) == 1 {
		return []symLen{{hist[0].symbol, 1}}
	}
	n := len(hist)
	nodes := make([]treeNode, n, 2*n-1)
	for i, e := range hist {
		nodes[i] = treeNode{count: e.count, symbol: e.symbol, seq: i, left: -1, right: -1}
	}
	less := func(a, b int32) bool {
		na, nb := &nodes[a], &nodes[b]
		if na.count != nb.count {
			return na.count < nb.count
		}
		if na.symbol != nb.symbol {
			return na.symbol < nb.symbol
		}
		return na.seq < nb.seq
	}
	h := make([]int32, n)
	for i := range h {
		h[i] = int32(i)
	}
	siftDown := func(i int) {
		for {
			l := 2*i + 1
			if l >= len(h) {
				return
			}
			m := l
			if r := l + 1; r < len(h) && less(h[r], h[l]) {
				m = r
			}
			if !less(h[m], h[i]) {
				return
			}
			h[i], h[m] = h[m], h[i]
			i = m
		}
	}
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(i)
	}
	pop := func() int32 {
		x := h[0]
		h[0] = h[len(h)-1]
		h = h[:len(h)-1]
		siftDown(0)
		return x
	}
	seq := n
	for len(h) > 1 {
		a := pop()
		b := pop()
		nodes = append(nodes, treeNode{
			count:  nodes[a].count + nodes[b].count,
			symbol: min(nodes[a].symbol, nodes[b].symbol),
			seq:    seq,
			left:   a,
			right:  b,
		})
		seq++
		// Push the merged node: append then sift up.
		h = append(h, int32(len(nodes)-1))
		for i := len(h) - 1; i > 0; {
			p := (i - 1) / 2
			if !less(h[i], h[p]) {
				break
			}
			h[i], h[p] = h[p], h[i]
			i = p
		}
	}
	root := h[0]

	lengths := make([]symLen, 0, n)
	type frame struct {
		idx   int32
		depth int
	}
	stack := make([]frame, 0, 64)
	stack = append(stack, frame{root, 0})
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := &nodes[f.idx]
		if nd.left < 0 {
			d := f.depth
			if d == 0 {
				d = 1
			}
			lengths = append(lengths, symLen{nd.symbol, d})
			continue
		}
		// Right pushed first so the left subtree pops first, preserving the
		// recursive DFS emission order.
		stack = append(stack, frame{nd.right, f.depth + 1})
		stack = append(stack, frame{nd.left, f.depth + 1})
	}
	return lengths
}

// canonicalize sorts entries into canonical order (length, then symbol) and
// assigns the canonical code values, returned parallel to the sorted slice.
func canonicalize(sl []symLen) []uint64 {
	// slices.SortFunc specialises the comparator at compile time; the
	// ordering (length, then symbol) is identical to the previous
	// sort.Slice and the key is strict-total, so the canonical assignment
	// is unchanged.
	slices.SortFunc(sl, func(a, b symLen) int {
		if a.length != b.length {
			return a.length - b.length // lengths are tiny: no overflow
		}
		return cmp.Compare(a.symbol, b.symbol)
	})
	codes := make([]uint64, len(sl))
	var code uint64
	prevLen := 0
	for i, e := range sl {
		code <<= uint(e.length - prevLen)
		codes[i] = code
		code++
		prevLen = e.length
	}
	return codes
}

type symLen struct {
	symbol, length int
}

// codeTable resolves symbol -> (code, length) for the payload loop. For
// compact alphabets it is two flat arrays indexed by symbol-base — one
// load per symbol instead of two map probes.
type codeTable struct {
	dense   bool
	base    int
	codeArr []uint64
	lenArr  []uint8
	codeMap map[int]uint64
	lenMap  map[int]int
}

func buildCodeTable(sl []symLen, codes []uint64) codeTable {
	if len(sl) == 0 {
		return codeTable{}
	}
	lo, hi := sl[0].symbol, sl[0].symbol
	for _, e := range sl[1:] {
		if e.symbol < lo {
			lo = e.symbol
		}
		if e.symbol > hi {
			hi = e.symbol
		}
	}
	span := hi - lo + 1
	if span <= denseRangeCap && span <= 4*len(sl)+1024 {
		t := codeTable{dense: true, base: lo, codeArr: make([]uint64, span), lenArr: make([]uint8, span)}
		for i, e := range sl {
			t.codeArr[e.symbol-lo] = codes[i]
			t.lenArr[e.symbol-lo] = uint8(e.length)
		}
		return t
	}
	t := codeTable{codeMap: make(map[int]uint64, len(sl)), lenMap: make(map[int]int, len(sl))}
	for i, e := range sl {
		t.codeMap[e.symbol] = codes[i]
		t.lenMap[e.symbol] = e.length
	}
	return t
}

// pack writes the codes for a run of symbols into w. Codes batch through a
// local 64-bit accumulator that spills to WriteBits only when full — the
// emitted bit sequence is exactly the per-symbol WriteBits sequence (codes
// are at most maxCodeLen < 64 bits and canonical, so each value fits its
// length), but the Writer's field traffic drops to once per ~64 bits.
func (t *codeTable) pack(w *bitstream.Writer, symbols []int) {
	var acc uint64
	var cnt uint
	if t.dense {
		base, codeArr, lenArr := t.base, t.codeArr, t.lenArr
		for _, s := range symbols {
			i := s - base
			c, l := codeArr[i], uint(lenArr[i])
			if cnt+l > 64 {
				w.WriteBits(acc, cnt)
				acc, cnt = 0, 0
			}
			acc = acc<<l | c
			cnt += l
		}
	} else {
		for _, s := range symbols {
			c, l := t.codeMap[s], uint(t.lenMap[s])
			if cnt+l > 64 {
				w.WriteBits(acc, cnt)
				acc, cnt = 0, 0
			}
			acc = acc<<l | c
			cnt += l
		}
	}
	if cnt > 0 {
		w.WriteBits(acc, cnt)
	}
}

// Encode compresses symbols into a self-describing byte stream, serially.
func Encode(symbols []int) []byte { return EncodeParallel(symbols, 1) }

// EncodeParallel is Encode over a worker pool. Output is byte-identical to
// Encode for every worker count: the histogram merge is additive, the tree
// build depends only on the totals, and shard payloads concatenate in
// shard order.
func EncodeParallel(symbols []int, workers int) []byte {
	hist := histogram(symbols, workers)
	sl := codeLengths(hist)
	codes := canonicalize(sl)

	hdr := make([]byte, 0, 20+11*len(sl))
	hdr = binary.AppendUvarint(hdr, uint64(len(symbols)))
	hdr = binary.AppendUvarint(hdr, uint64(len(sl)))
	for _, e := range sl {
		hdr = binary.AppendVarint(hdr, int64(e.symbol))
		hdr = binary.AppendUvarint(hdr, uint64(e.length))
	}

	table := buildCodeTable(sl, codes)
	var w bitstream.Writer
	if workers <= 1 || len(symbols) < minParallelSymbols {
		// Presize the payload buffer: the exact bit total is a histogram
		// dot product, which turns pack's repeated append-growth into a
		// single allocation.
		var totalBits int
		if table.dense {
			for _, e := range hist {
				totalBits += e.count * int(table.lenArr[e.symbol-table.base])
			}
		} else {
			for _, e := range hist {
				totalBits += e.count * table.lenMap[e.symbol]
			}
		}
		w.Grow(totalBits)
		table.pack(&w, symbols)
	} else {
		shards := parallel.Shards(workers, len(symbols))
		ws := make([]bitstream.Writer, shards)
		parallel.ForShard(workers, len(symbols), func(sh, a, b int) {
			table.pack(&ws[sh], symbols[a:b])
		})
		for i := range ws {
			w.AppendWriter(&ws[i])
		}
	}
	payload := w.Bytes()

	out := make([]byte, 0, len(hdr)+len(payload))
	out = append(out, hdr...)
	out = append(out, payload...)
	return out
}

// Decode reverses Encode. Every failure wraps compress.ErrTruncated or
// compress.ErrCorrupt, and header-claimed allocations are bounded against
// the input that must back them (compress.CheckedAlloc).
func Decode(data []byte) ([]int, error) {
	pos := 0
	readUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("huffman: truncated header: %w", compress.ErrTruncated)
		}
		pos += n
		return v, nil
	}
	readVarint := func() (int64, error) {
		v, n := binary.Varint(data[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("huffman: truncated header: %w", compress.ErrTruncated)
		}
		pos += n
		return v, nil
	}

	count, err := readUvarint()
	if err != nil {
		return nil, err
	}
	nsyms, err := readUvarint()
	if err != nil {
		return nil, err
	}
	if count == 0 {
		return []int{}, nil
	}
	if nsyms == 0 {
		return nil, fmt.Errorf("huffman: empty alphabet with nonzero count: %w", compress.ErrCorrupt)
	}
	// Bound both counts against the data that must back them, so corrupt
	// headers cannot drive huge allocations: every alphabet entry costs at
	// least 2 header bytes and every encoded symbol at least 1 payload bit.
	if err := compress.CheckedAlloc("huffman: alphabet", nsyms, uint64(len(data)-pos)/2, 16); err != nil {
		return nil, err
	}
	if err := compress.CheckedAlloc("huffman: symbols", count, 8*uint64(len(data)), 8); err != nil {
		return nil, err
	}
	sl := make([]symLen, nsyms)
	for i := range sl {
		s, err := readVarint()
		if err != nil {
			return nil, err
		}
		l, err := readUvarint()
		if err != nil {
			return nil, err
		}
		if l == 0 || l > maxCodeLen {
			return nil, fmt.Errorf("huffman: invalid code length %d: %w", l, compress.ErrCorrupt)
		}
		sl[i] = symLen{int(s), int(l)}
	}
	// Header order must already be canonical; enforce it.
	for i := 1; i < len(sl); i++ {
		if sl[i].length < sl[i-1].length ||
			(sl[i].length == sl[i-1].length && sl[i].symbol <= sl[i-1].symbol) {
			return nil, fmt.Errorf("huffman: header not in canonical order: %w", compress.ErrCorrupt)
		}
	}

	// Rebuild canonical codes and index them by length: code lengths are
	// at most maxCodeLen, so a flat array replaces the map probe that used
	// to sit inside the per-bit decode loop. For payloads worth the setup
	// cost, additionally fill a first-level lookup table resolving every
	// code of length ≤ tableBits in one probe.
	var groups [maxCodeLen + 1]lenGroup
	ordered := make([]int, len(sl))
	var table []uint64
	if count >= tableMinSymbols {
		table = parallel.Uint64s(1 << tableBits)
		defer parallel.PutUint64s(table)
		for i := range table {
			table[i] = 0
		}
	}
	var code uint64
	prevLen := 0
	for i, e := range sl {
		code <<= uint(e.length - prevLen)
		if groups[e.length].count == 0 {
			groups[e.length] = lenGroup{first: code, offset: i, count: 1}
		} else {
			groups[e.length].count++
		}
		ordered[i] = e.symbol
		if table != nil && e.length <= tableBits && code < 1<<uint(e.length) {
			// Every tableBits-bit window starting with this code maps to it;
			// prefix-freeness keeps the fill ranges disjoint. Entries pack
			// idx<<8|length; length ≥ 1 makes 0 an unambiguous "no short
			// code" marker. A corrupt (Kraft-oversubscribed) header can push
			// a canonical code to ≥ 2^length; such a code can never equal
			// any length-bit window, so the group walk treats it as
			// unreachable — skipping it here preserves that exactly and
			// keeps the fill in bounds.
			ent := uint64(i)<<8 | uint64(e.length)
			lo := code << uint(tableBits-e.length)
			for j := lo + 1<<uint(tableBits-e.length); j > lo; j-- {
				table[j-1] = ent
			}
		}
		code++
		prevLen = e.length
	}

	r := bitstream.NewReader(data[pos:])
	out := make([]int, 0, count)
	if table != nil {
		for uint64(len(out)) < count {
			e := table[r.Peek64()>>(64-tableBits)]
			if e != 0 {
				// A matched entry longer than the remaining genuine bits can
				// only arise from zero padding past the end of the stream —
				// the per-bit walk would have run out of bits mid-code.
				l := int(e & 0xff)
				if l > r.Remaining() {
					return nil, fmt.Errorf("huffman: truncated payload after %d symbols: %w", len(out), compress.ErrTruncated)
				}
				r.Advance(l)
				out = append(out, ordered[e>>8])
				continue
			}
			// No code of length ≤ tableBits prefixes the window: a long
			// code, corruption, or truncation. The per-bit walk reproduces
			// the exact pre-table outcome for all three.
			sym, err := decodeOneSlow(r, &groups, ordered, len(out))
			if err != nil {
				return nil, err
			}
			out = append(out, sym)
		}
		return out, nil
	}
	for uint64(len(out)) < count {
		sym, err := decodeOneSlow(r, &groups, ordered, len(out))
		if err != nil {
			return nil, err
		}
		out = append(out, sym)
	}
	return out, nil
}

// lenGroup indexes one canonical code length: its first code value and the
// contiguous run it occupies in canonical symbol order.
type lenGroup struct {
	first  uint64 // first code of this length
	offset int    // index into ordered symbols of first code
	count  int
}

// decodeOneSlow decodes a single symbol with the per-bit group walk — the
// path for codes longer than tableBits, for corrupt or truncated tails, and
// for payloads too short to amortize the table build.
func decodeOneSlow(r *bitstream.Reader, groups *[maxCodeLen + 1]lenGroup, ordered []int, decoded int) (int, error) {
	var v uint64
	l := 0
	for l < maxCodeLen {
		b, err := r.ReadBit()
		if err != nil {
			return 0, fmt.Errorf("huffman: truncated payload after %d symbols: %w", decoded, compress.ErrTruncated)
		}
		v = v<<1 | uint64(b)
		l++
		g := &groups[l]
		if g.count == 0 {
			continue
		}
		if idx := v - g.first; v >= g.first && idx < uint64(g.count) {
			return ordered[g.offset+int(idx)], nil
		}
	}
	return 0, fmt.Errorf("huffman: invalid code in payload: %w", compress.ErrCorrupt)
}

// Package huffman implements a canonical Huffman coder over integer symbol
// alphabets. It is the entropy-coding stage of the SZ-style compressor: SZ
// quantization codes are highly skewed (most predictions hit bin 0), which
// is exactly the regime where Huffman coding shines.
//
// The encoded stream is self-describing: a compact header stores the code
// lengths (canonical codes are reconstructed from lengths alone), followed
// by the bit-packed payload.
//
// Both the frequency count and the payload encode parallelize over shards
// of the symbol slice without changing a single output bit: per-shard
// counts merge by addition (commutative, so the totals equal a serial
// count), the tree build is a deterministic function of the totals, and
// per-shard payload writers concatenate in shard order, reproducing the
// serial bit sequence exactly.
package huffman

import (
	"container/heap"
	"encoding/binary"
	"fmt"
	"sort"

	"lrm/internal/bitstream"
	"lrm/internal/compress"
	"lrm/internal/parallel"
)

// maxCodeLen caps code lengths so the decoder tables stay small. 57 bits is
// far beyond anything reachable with realistic symbol counts but keeps the
// canonical-code arithmetic safely inside uint64.
const maxCodeLen = 57

// minParallelSymbols gates the sharded paths: below this, pool fork/join
// overhead swamps the counting and packing work.
const minParallelSymbols = 4096

type node struct {
	count       int
	symbol      int // valid for leaves; min leaf symbol for internal nodes
	seq         int // creation sequence; final Less tie-break
	left, right *node
}

type nodeHeap []*node

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].count != h[j].count {
		return h[i].count < h[j].count
	}
	if h[i].symbol != h[j].symbol {
		return h[i].symbol < h[j].symbol
	}
	// A leaf and an internal node can collide on (count, symbol); the
	// creation sequence makes Less a strict total order so the pop
	// sequence — and therefore the tree shape — is a pure function of the
	// symbol counts, independent of heap layout or counting strategy.
	return h[i].seq < h[j].seq
}
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// symCount is one alphabet entry: a distinct symbol and its frequency.
type symCount struct {
	symbol, count int
}

// denseRangeCap bounds the dense counting table: the symbol span must be
// at most this AND not wildly larger than the input, otherwise the
// map-based path is used. SZ quantization codes span [0, 2*bins], so the
// hot caller is always dense.
const denseRangeCap = 1 << 22

// histogram returns the distinct symbols with their frequencies, sorted by
// symbol. When the symbol span is small it counts into dense per-shard
// arrays merged by addition; otherwise it falls back to a serial map. Both
// paths return the identical sorted slice.
func histogram(symbols []int, workers int) []symCount {
	if len(symbols) == 0 {
		return nil
	}
	lo, hi := minMax(symbols, workers)
	span := hi - lo + 1
	if span <= denseRangeCap && span <= 4*len(symbols)+1024 {
		return denseHistogram(symbols, lo, span, workers)
	}
	counts := make(map[int]int)
	for _, s := range symbols {
		counts[s]++
	}
	out := make([]symCount, 0, len(counts))
	for s, c := range counts {
		out = append(out, symCount{s, c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].symbol < out[j].symbol })
	return out
}

// minMax scans for the smallest and largest symbol, sharding the scan when
// the input is large enough to pay for the fork.
func minMax(symbols []int, workers int) (int, int) {
	if workers <= 1 || len(symbols) < minParallelSymbols {
		lo, hi := symbols[0], symbols[0]
		for _, s := range symbols[1:] {
			if s < lo {
				lo = s
			}
			if s > hi {
				hi = s
			}
		}
		return lo, hi
	}
	shards := parallel.Shards(workers, len(symbols))
	los := make([]int, shards)
	his := make([]int, shards)
	parallel.ForShard(workers, len(symbols), func(sh, a, b int) {
		lo, hi := symbols[a], symbols[a]
		for _, s := range symbols[a+1 : b] {
			if s < lo {
				lo = s
			}
			if s > hi {
				hi = s
			}
		}
		los[sh], his[sh] = lo, hi
	})
	lo, hi := los[0], his[0]
	for i := 1; i < shards; i++ {
		if los[i] < lo {
			lo = los[i]
		}
		if his[i] > hi {
			hi = his[i]
		}
	}
	return lo, hi
}

// denseHistogram counts into span-sized arrays indexed by symbol-lo.
// Per-shard tables merge by addition, so the totals are exactly the serial
// counts no matter how shards interleave.
func denseHistogram(symbols []int, lo, span, workers int) []symCount {
	total := parallel.Ints(span)
	defer parallel.PutInts(total)
	for i := range total {
		total[i] = 0
	}
	if workers <= 1 || len(symbols) < minParallelSymbols {
		for _, s := range symbols {
			total[s-lo]++
		}
	} else {
		shards := parallel.Shards(workers, len(symbols))
		tables := make([][]int, shards)
		parallel.ForShard(workers, len(symbols), func(sh, a, b int) {
			t := parallel.Ints(span)
			for i := range t {
				t[i] = 0
			}
			for _, s := range symbols[a:b] {
				t[s-lo]++
			}
			tables[sh] = t
		})
		for _, t := range tables {
			for i, c := range t {
				total[i] += c
			}
			parallel.PutInts(t)
		}
	}
	nsyms := 0
	for _, c := range total {
		if c > 0 {
			nsyms++
		}
	}
	out := make([]symCount, 0, nsyms)
	for i, c := range total {
		if c > 0 {
			out = append(out, symCount{lo + i, c})
		}
	}
	return out
}

// codeLengths computes Huffman code lengths from a symbol-sorted histogram.
// The result is a deterministic function of the histogram alone.
func codeLengths(hist []symCount) []symLen {
	if len(hist) == 0 {
		return nil
	}
	if len(hist) == 1 {
		return []symLen{{hist[0].symbol, 1}}
	}
	h := make(nodeHeap, 0, len(hist))
	seq := 0
	for _, e := range hist {
		h = append(h, &node{count: e.count, symbol: e.symbol, seq: seq})
		seq++
	}
	heap.Init(&h)
	for h.Len() > 1 {
		a := heap.Pop(&h).(*node)
		b := heap.Pop(&h).(*node)
		heap.Push(&h, &node{count: a.count + b.count, symbol: min(a.symbol, b.symbol), seq: seq, left: a, right: b})
		seq++
	}
	root := h[0]
	lengths := make([]symLen, 0, len(hist))
	var walk func(n *node, depth int)
	walk = func(n *node, depth int) {
		if n.left == nil {
			if depth == 0 {
				depth = 1
			}
			lengths = append(lengths, symLen{n.symbol, depth})
			return
		}
		walk(n.left, depth+1)
		walk(n.right, depth+1)
	}
	walk(root, 0)
	return lengths
}

// canonicalize sorts entries into canonical order (length, then symbol) and
// assigns the canonical code values, returned parallel to the sorted slice.
func canonicalize(sl []symLen) []uint64 {
	sort.Slice(sl, func(i, j int) bool {
		if sl[i].length != sl[j].length {
			return sl[i].length < sl[j].length
		}
		return sl[i].symbol < sl[j].symbol
	})
	codes := make([]uint64, len(sl))
	var code uint64
	prevLen := 0
	for i, e := range sl {
		code <<= uint(e.length - prevLen)
		codes[i] = code
		code++
		prevLen = e.length
	}
	return codes
}

type symLen struct {
	symbol, length int
}

// codeTable resolves symbol -> (code, length) for the payload loop. For
// compact alphabets it is two flat arrays indexed by symbol-base — one
// load per symbol instead of two map probes.
type codeTable struct {
	dense   bool
	base    int
	codeArr []uint64
	lenArr  []uint8
	codeMap map[int]uint64
	lenMap  map[int]int
}

func buildCodeTable(sl []symLen, codes []uint64) codeTable {
	if len(sl) == 0 {
		return codeTable{}
	}
	lo, hi := sl[0].symbol, sl[0].symbol
	for _, e := range sl[1:] {
		if e.symbol < lo {
			lo = e.symbol
		}
		if e.symbol > hi {
			hi = e.symbol
		}
	}
	span := hi - lo + 1
	if span <= denseRangeCap && span <= 4*len(sl)+1024 {
		t := codeTable{dense: true, base: lo, codeArr: make([]uint64, span), lenArr: make([]uint8, span)}
		for i, e := range sl {
			t.codeArr[e.symbol-lo] = codes[i]
			t.lenArr[e.symbol-lo] = uint8(e.length)
		}
		return t
	}
	t := codeTable{codeMap: make(map[int]uint64, len(sl)), lenMap: make(map[int]int, len(sl))}
	for i, e := range sl {
		t.codeMap[e.symbol] = codes[i]
		t.lenMap[e.symbol] = e.length
	}
	return t
}

// pack writes the codes for a run of symbols into w.
func (t *codeTable) pack(w *bitstream.Writer, symbols []int) {
	if t.dense {
		base, codeArr, lenArr := t.base, t.codeArr, t.lenArr
		for _, s := range symbols {
			i := s - base
			w.WriteBits(codeArr[i], uint(lenArr[i]))
		}
		return
	}
	for _, s := range symbols {
		w.WriteBits(t.codeMap[s], uint(t.lenMap[s]))
	}
}

// Encode compresses symbols into a self-describing byte stream, serially.
func Encode(symbols []int) []byte { return EncodeParallel(symbols, 1) }

// EncodeParallel is Encode over a worker pool. Output is byte-identical to
// Encode for every worker count: the histogram merge is additive, the tree
// build depends only on the totals, and shard payloads concatenate in
// shard order.
func EncodeParallel(symbols []int, workers int) []byte {
	hist := histogram(symbols, workers)
	sl := codeLengths(hist)
	codes := canonicalize(sl)

	var hdr []byte
	hdr = binary.AppendUvarint(hdr, uint64(len(symbols)))
	hdr = binary.AppendUvarint(hdr, uint64(len(sl)))
	for _, e := range sl {
		hdr = binary.AppendVarint(hdr, int64(e.symbol))
		hdr = binary.AppendUvarint(hdr, uint64(e.length))
	}

	table := buildCodeTable(sl, codes)
	var w bitstream.Writer
	if workers <= 1 || len(symbols) < minParallelSymbols {
		table.pack(&w, symbols)
	} else {
		shards := parallel.Shards(workers, len(symbols))
		ws := make([]bitstream.Writer, shards)
		parallel.ForShard(workers, len(symbols), func(sh, a, b int) {
			table.pack(&ws[sh], symbols[a:b])
		})
		for i := range ws {
			w.AppendWriter(&ws[i])
		}
	}
	payload := w.Bytes()

	out := make([]byte, 0, len(hdr)+len(payload))
	out = append(out, hdr...)
	out = append(out, payload...)
	return out
}

// Decode reverses Encode. Every failure wraps compress.ErrTruncated or
// compress.ErrCorrupt, and header-claimed allocations are bounded against
// the input that must back them (compress.CheckedAlloc).
func Decode(data []byte) ([]int, error) {
	pos := 0
	readUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("huffman: truncated header: %w", compress.ErrTruncated)
		}
		pos += n
		return v, nil
	}
	readVarint := func() (int64, error) {
		v, n := binary.Varint(data[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("huffman: truncated header: %w", compress.ErrTruncated)
		}
		pos += n
		return v, nil
	}

	count, err := readUvarint()
	if err != nil {
		return nil, err
	}
	nsyms, err := readUvarint()
	if err != nil {
		return nil, err
	}
	if count == 0 {
		return []int{}, nil
	}
	if nsyms == 0 {
		return nil, fmt.Errorf("huffman: empty alphabet with nonzero count: %w", compress.ErrCorrupt)
	}
	// Bound both counts against the data that must back them, so corrupt
	// headers cannot drive huge allocations: every alphabet entry costs at
	// least 2 header bytes and every encoded symbol at least 1 payload bit.
	if err := compress.CheckedAlloc("huffman: alphabet", nsyms, uint64(len(data)-pos)/2, 16); err != nil {
		return nil, err
	}
	if err := compress.CheckedAlloc("huffman: symbols", count, 8*uint64(len(data)), 8); err != nil {
		return nil, err
	}
	sl := make([]symLen, nsyms)
	for i := range sl {
		s, err := readVarint()
		if err != nil {
			return nil, err
		}
		l, err := readUvarint()
		if err != nil {
			return nil, err
		}
		if l == 0 || l > maxCodeLen {
			return nil, fmt.Errorf("huffman: invalid code length %d: %w", l, compress.ErrCorrupt)
		}
		sl[i] = symLen{int(s), int(l)}
	}
	// Header order must already be canonical; enforce it.
	for i := 1; i < len(sl); i++ {
		if sl[i].length < sl[i-1].length ||
			(sl[i].length == sl[i-1].length && sl[i].symbol <= sl[i-1].symbol) {
			return nil, fmt.Errorf("huffman: header not in canonical order: %w", compress.ErrCorrupt)
		}
	}

	// Rebuild canonical codes and index them by length: code lengths are
	// at most maxCodeLen, so a flat array replaces the map probe that used
	// to sit inside the per-bit decode loop.
	type lenGroup struct {
		first  uint64 // first code of this length
		offset int    // index into ordered symbols of first code
		count  int
	}
	var groups [maxCodeLen + 1]lenGroup
	ordered := make([]int, len(sl))
	var code uint64
	prevLen := 0
	for i, e := range sl {
		code <<= uint(e.length - prevLen)
		if groups[e.length].count == 0 {
			groups[e.length] = lenGroup{first: code, offset: i, count: 1}
		} else {
			groups[e.length].count++
		}
		ordered[i] = e.symbol
		code++
		prevLen = e.length
	}

	r := bitstream.NewReader(data[pos:])
	out := make([]int, 0, count)
	for uint64(len(out)) < count {
		var v uint64
		l := 0
		decoded := false
		for l < maxCodeLen {
			b, err := r.ReadBit()
			if err != nil {
				return nil, fmt.Errorf("huffman: truncated payload after %d symbols: %w", len(out), compress.ErrTruncated)
			}
			v = v<<1 | uint64(b)
			l++
			g := &groups[l]
			if g.count == 0 {
				continue
			}
			idx := v - g.first
			if v >= g.first && idx < uint64(g.count) {
				out = append(out, ordered[g.offset+int(idx)])
				decoded = true
				break
			}
		}
		if !decoded {
			return nil, fmt.Errorf("huffman: invalid code in payload: %w", compress.ErrCorrupt)
		}
	}
	return out, nil
}

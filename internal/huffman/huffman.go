// Package huffman implements a canonical Huffman coder over integer symbol
// alphabets. It is the entropy-coding stage of the SZ-style compressor: SZ
// quantization codes are highly skewed (most predictions hit bin 0), which
// is exactly the regime where Huffman coding shines.
//
// The encoded stream is self-describing: a compact header stores the code
// lengths (canonical codes are reconstructed from lengths alone), followed
// by the bit-packed payload.
package huffman

import (
	"container/heap"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"lrm/internal/bitstream"
)

// maxCodeLen caps code lengths so the decoder tables stay small. 57 bits is
// far beyond anything reachable with realistic symbol counts but keeps the
// canonical-code arithmetic safely inside uint64.
const maxCodeLen = 57

type node struct {
	count       int
	symbol      int // valid for leaves
	left, right *node
}

type nodeHeap []*node

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].count != h[j].count {
		return h[i].count < h[j].count
	}
	// Tie-break on symbol for determinism.
	return h[i].symbol < h[j].symbol
}
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// codeLengths computes Huffman code lengths for each distinct symbol.
func codeLengths(symbols []int) map[int]int {
	counts := make(map[int]int)
	for _, s := range symbols {
		counts[s]++
	}
	if len(counts) == 0 {
		return nil
	}
	if len(counts) == 1 {
		for s := range counts {
			return map[int]int{s: 1}
		}
	}
	h := make(nodeHeap, 0, len(counts))
	for s, c := range counts {
		h = append(h, &node{count: c, symbol: s})
	}
	heap.Init(&h)
	for h.Len() > 1 {
		a := heap.Pop(&h).(*node)
		b := heap.Pop(&h).(*node)
		heap.Push(&h, &node{count: a.count + b.count, symbol: min(a.symbol, b.symbol), left: a, right: b})
	}
	root := h[0]
	lengths := make(map[int]int)
	var walk func(n *node, depth int)
	walk = func(n *node, depth int) {
		if n.left == nil {
			if depth == 0 {
				depth = 1
			}
			lengths[n.symbol] = depth
			return
		}
		walk(n.left, depth+1)
		walk(n.right, depth+1)
	}
	walk(root, 0)
	return lengths
}

// canonical assigns canonical codes (numeric order by (length, symbol)).
func canonical(lengths map[int]int) (map[int]uint64, []symLen) {
	sl := make([]symLen, 0, len(lengths))
	for s, l := range lengths {
		sl = append(sl, symLen{s, l})
	}
	sort.Slice(sl, func(i, j int) bool {
		if sl[i].length != sl[j].length {
			return sl[i].length < sl[j].length
		}
		return sl[i].symbol < sl[j].symbol
	})
	codes := make(map[int]uint64, len(sl))
	var code uint64
	prevLen := 0
	for _, e := range sl {
		code <<= uint(e.length - prevLen)
		codes[e.symbol] = code
		code++
		prevLen = e.length
	}
	return codes, sl
}

type symLen struct {
	symbol, length int
}

// Encode compresses symbols into a self-describing byte stream.
func Encode(symbols []int) []byte {
	lengths := codeLengths(symbols)
	codes, sl := canonical(lengths)

	var hdr []byte
	hdr = binary.AppendUvarint(hdr, uint64(len(symbols)))
	hdr = binary.AppendUvarint(hdr, uint64(len(sl)))
	for _, e := range sl {
		hdr = binary.AppendVarint(hdr, int64(e.symbol))
		hdr = binary.AppendUvarint(hdr, uint64(e.length))
	}

	var w bitstream.Writer
	for _, s := range symbols {
		l := lengths[s]
		w.WriteBits(codes[s], uint(l))
	}
	payload := w.Bytes()

	out := make([]byte, 0, len(hdr)+len(payload)+4)
	out = append(out, hdr...)
	out = append(out, payload...)
	return out
}

// Decode reverses Encode.
func Decode(data []byte) ([]int, error) {
	pos := 0
	readUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, errors.New("huffman: truncated header")
		}
		pos += n
		return v, nil
	}
	readVarint := func() (int64, error) {
		v, n := binary.Varint(data[pos:])
		if n <= 0 {
			return 0, errors.New("huffman: truncated header")
		}
		pos += n
		return v, nil
	}

	count, err := readUvarint()
	if err != nil {
		return nil, err
	}
	nsyms, err := readUvarint()
	if err != nil {
		return nil, err
	}
	if count == 0 {
		return []int{}, nil
	}
	if nsyms == 0 {
		return nil, errors.New("huffman: empty alphabet with nonzero count")
	}
	// Bound both counts against the data that must back them, so corrupt
	// headers cannot drive huge allocations: every alphabet entry costs at
	// least 2 header bytes and every encoded symbol at least 1 payload bit.
	if nsyms > uint64(len(data)-pos)/2 {
		return nil, fmt.Errorf("huffman: alphabet size %d exceeds header data", nsyms)
	}
	if count > 8*uint64(len(data)) {
		return nil, fmt.Errorf("huffman: symbol count %d exceeds payload capacity", count)
	}
	sl := make([]symLen, nsyms)
	for i := range sl {
		s, err := readVarint()
		if err != nil {
			return nil, err
		}
		l, err := readUvarint()
		if err != nil {
			return nil, err
		}
		if l == 0 || l > maxCodeLen {
			return nil, fmt.Errorf("huffman: invalid code length %d", l)
		}
		sl[i] = symLen{int(s), int(l)}
	}
	// Header order must already be canonical; enforce it.
	for i := 1; i < len(sl); i++ {
		if sl[i].length < sl[i-1].length ||
			(sl[i].length == sl[i-1].length && sl[i].symbol <= sl[i-1].symbol) {
			return nil, errors.New("huffman: header not in canonical order")
		}
	}

	// Rebuild canonical codes and index them by (length, code value).
	type lenGroup struct {
		first  uint64 // first code of this length
		offset int    // index into ordered symbols of first code
		count  int
	}
	groups := make(map[int]*lenGroup)
	ordered := make([]int, len(sl))
	var code uint64
	prevLen := 0
	for i, e := range sl {
		code <<= uint(e.length - prevLen)
		if g, ok := groups[e.length]; ok {
			g.count++
		} else {
			groups[e.length] = &lenGroup{first: code, offset: i, count: 1}
		}
		ordered[i] = e.symbol
		code++
		prevLen = e.length
	}

	r := bitstream.NewReader(data[pos:])
	out := make([]int, 0, count)
	for uint64(len(out)) < count {
		var v uint64
		l := 0
		decoded := false
		for l < maxCodeLen {
			b, err := r.ReadBit()
			if err != nil {
				return nil, fmt.Errorf("huffman: truncated payload after %d symbols", len(out))
			}
			v = v<<1 | uint64(b)
			l++
			g, ok := groups[l]
			if !ok {
				continue
			}
			idx := v - g.first
			if v >= g.first && idx < uint64(g.count) {
				out = append(out, ordered[g.offset+int(idx)])
				decoded = true
				break
			}
		}
		if !decoded {
			return nil, errors.New("huffman: invalid code in payload")
		}
	}
	return out, nil
}

package huffman

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestGenerateCorpus regenerates the checked-in FuzzDecode seed corpus:
// a table-sized skewed stream, fault-injected (truncated / bit-flipped)
// variants, a deep-code stream that overflows the decode table, and raw
// garbage. Gated behind LRM_GEN_CORPUS like the codec corpus generators.
func TestGenerateCorpus(t *testing.T) {
	if os.Getenv("LRM_GEN_CORPUS") == "" {
		t.Skip("set LRM_GEN_CORPUS=1 to regenerate testdata/fuzz seeds")
	}
	seeds := map[string][]byte{}

	// Skewed stream like sz codes, large enough to build the decode table.
	syms := make([]int, 400)
	for i := range syms {
		v := 32768
		switch {
		case i%97 == 0:
			v = 65536
		case i%13 == 0:
			v = 32768 + (i%7 - 3)
		case i%5 == 0:
			v = 32768 + i%3
		}
		syms[i] = v
	}
	enc := Encode(syms)
	seeds["seed-skewed"] = enc
	seeds["seed-truncated-header"] = enc[:3]
	seeds["seed-truncated-payload"] = enc[:len(enc)-4]
	mut := append([]byte(nil), enc...)
	mut[len(mut)/2] ^= 0x40
	seeds["seed-bitflip"] = mut

	// Fibonacci counts force codes deeper than the table, exercising the
	// overflow walk.
	deep := fibSymbols(24)
	dEnc := Encode(deep)
	seeds["seed-deepcodes"] = dEnc
	seeds["seed-deepcodes-truncated"] = dEnc[:len(dEnc)*2/3]
	seeds["seed-garbage"] = []byte("\x00\x01\x02\xff\xfe\xfd not a huffman stream")
	// Kraft-oversubscribed header (three symbols of length 1): canonically
	// ordered but the third code overflows its bit length.
	seeds["seed-oversubscribed"] = append([]byte{64, 3, 0, 1, 2, 1, 4, 1}, make([]byte, 16)...)

	dir := filepath.Join("testdata", "fuzz", "FuzzDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

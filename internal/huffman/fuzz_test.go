package huffman

import "testing"

// FuzzDecode asserts the canonical-Huffman decoder never panics on
// arbitrary input, and differentially checks the table-driven decoder
// against the per-bit reference: identical symbols, identical errors. The
// checked-in seeds under testdata/fuzz/FuzzDecode include truncated and
// bit-flipped streams, so plain `go test` already exercises both decoders
// over the fault-injection corpus.
func FuzzDecode(f *testing.F) {
	f.Add(Encode([]int{1, 2, 3, 1, 1, 2}))
	f.Add(Encode([]int{-5}))
	f.Add(Encode(nil))
	big := make([]int, 500)
	for i := range big {
		big[i] = i % 7
	}
	f.Add(Encode(big))
	f.Fuzz(func(t *testing.T, data []byte) {
		if out, err := Decode(data); err == nil {
			if len(out) > 1<<26 {
				t.Fatalf("implausible decode length %d", len(out))
			}
		}
		compareDecoders(t, data)
	})
}

// FuzzRoundTrip asserts encode/decode agree for arbitrary symbol streams.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 1})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		symbols := make([]int, len(raw))
		for i, b := range raw {
			symbols[i] = int(int8(b)) // signed symbols exercise varint paths
		}
		dec, err := Decode(Encode(symbols))
		if err != nil {
			t.Fatalf("round trip decode failed: %v", err)
		}
		if len(dec) != len(symbols) {
			t.Fatalf("length %d != %d", len(dec), len(symbols))
		}
		for i := range dec {
			if dec[i] != symbols[i] {
				t.Fatalf("symbol %d: %d != %d", i, dec[i], symbols[i])
			}
		}
	})
}

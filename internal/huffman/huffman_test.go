package huffman

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, symbols []int) []byte {
	t.Helper()
	enc := Encode(symbols)
	dec, err := Decode(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(symbols) == 0 && len(dec) == 0 {
		return enc
	}
	if !reflect.DeepEqual(dec, symbols) {
		t.Fatalf("round trip mismatch: got %v, want %v", dec[:min(10, len(dec))], symbols[:min(10, len(symbols))])
	}
	return enc
}

func TestEmpty(t *testing.T) { roundTrip(t, nil) }

func TestSingleSymbol(t *testing.T) {
	roundTrip(t, []int{42})
	roundTrip(t, []int{7, 7, 7, 7, 7, 7, 7})
}

func TestTwoSymbols(t *testing.T) {
	roundTrip(t, []int{0, 1, 0, 0, 1, 0})
}

func TestNegativeSymbols(t *testing.T) {
	roundTrip(t, []int{-5, 3, -5, -5, 0, 3, -1000000, -5})
}

func TestSkewedDistributionCompresses(t *testing.T) {
	// SZ-like: 95% of codes are the same value. Huffman should get close
	// to the entropy, far below the naive 8 bytes/int.
	rng := rand.New(rand.NewSource(1))
	symbols := make([]int, 20000)
	for i := range symbols {
		if rng.Float64() < 0.95 {
			symbols[i] = 512
		} else {
			symbols[i] = 512 + rng.Intn(64) - 32
		}
	}
	enc := roundTrip(t, symbols)
	// Entropy is ~0.5 bits/symbol; allow generous slack (header + 1 bit min).
	if len(enc) > len(symbols)/4 {
		t.Fatalf("skewed data encoded to %d bytes for %d symbols; expected < %d", len(enc), len(symbols), len(symbols)/4)
	}
}

func TestUniformDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	symbols := make([]int, 4096)
	for i := range symbols {
		symbols[i] = rng.Intn(256)
	}
	enc := roundTrip(t, symbols)
	// ~8 bits/symbol + header: must stay near 1 byte each.
	if len(enc) > 2*len(symbols) {
		t.Fatalf("uniform data blew up: %d bytes for %d symbols", len(enc), len(symbols))
	}
}

func TestQuickRoundTrip(t *testing.T) {
	check := func(raw []int16) bool {
		symbols := make([]int, len(raw))
		for i, v := range raw {
			symbols[i] = int(v)
		}
		enc := Encode(symbols)
		dec, err := Decode(enc)
		if err != nil {
			return false
		}
		if len(dec) != len(symbols) {
			return false
		}
		for i := range dec {
			if dec[i] != symbols[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeGarbage(t *testing.T) {
	// Must error, never panic, on malformed input.
	cases := [][]byte{
		{},
		{0xff},
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
		{5, 0}, // count=5 but empty alphabet
	}
	for i, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Fatalf("case %d: expected error for garbage input", i)
		}
	}
}

func TestDecodeTruncatedPayload(t *testing.T) {
	enc := Encode([]int{1, 2, 3, 4, 5, 6, 7, 8, 1, 2, 3, 4})
	for cut := 1; cut < 4; cut++ {
		if _, err := Decode(enc[:len(enc)-cut]); err == nil {
			// Truncating may still decode if the lost bits were padding;
			// only fail when more than a byte of payload is gone.
			if cut > 1 {
				t.Fatalf("expected error for payload truncated by %d bytes", cut)
			}
		}
	}
}

func TestDeterministic(t *testing.T) {
	symbols := []int{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	a := Encode(symbols)
	b := Encode(symbols)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("encoding is not deterministic")
	}
}

func TestLargeAlphabet(t *testing.T) {
	symbols := make([]int, 3000)
	for i := range symbols {
		symbols[i] = i % 1500 // 1500 distinct symbols
	}
	roundTrip(t, symbols)
}

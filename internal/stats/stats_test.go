package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestByteEntropyBounds(t *testing.T) {
	if got := ByteEntropy(nil); got != 0 {
		t.Fatalf("entropy(nil)=%v, want 0", got)
	}
	// Constant data has zero entropy.
	if got := ByteEntropy(make([]byte, 1000)); got != 0 {
		t.Fatalf("entropy(const)=%v, want 0", got)
	}
	// One copy of every byte value has exactly 8 bits of entropy.
	b := make([]byte, 256)
	for i := range b {
		b[i] = byte(i)
	}
	if got := ByteEntropy(b); math.Abs(got-8) > 1e-12 {
		t.Fatalf("entropy(uniform)=%v, want 8", got)
	}
	// Two symbols, equal frequency: 1 bit.
	b2 := []byte{0, 1, 0, 1}
	if got := ByteEntropy(b2); math.Abs(got-1) > 1e-12 {
		t.Fatalf("entropy(2 symbols)=%v, want 1", got)
	}
}

func TestByteEntropyWithinRangeQuick(t *testing.T) {
	check := func(b []byte) bool {
		h := ByteEntropy(b)
		return h >= 0 && h <= 8
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestByteMean(t *testing.T) {
	if got := ByteMean([]byte{0, 255}); got != 127.5 {
		t.Fatalf("mean = %v, want 127.5", got)
	}
	if got := ByteMean(nil); got != 0 {
		t.Fatalf("mean(nil)=%v", got)
	}
	rng := rand.New(rand.NewSource(7))
	b := make([]byte, 1<<16)
	rng.Read(b)
	if got := ByteMean(b); math.Abs(got-127.5) > 1 {
		t.Fatalf("mean(random)=%v, want ~127.5", got)
	}
}

func TestSerialCorrelation(t *testing.T) {
	// Perfectly correlated ramp.
	ramp := make([]byte, 200)
	for i := range ramp {
		ramp[i] = byte(i)
	}
	if got := SerialCorrelation(ramp); got < 0.99 {
		t.Fatalf("corr(ramp)=%v, want ~1", got)
	}
	// Alternating values are perfectly anti-correlated.
	alt := make([]byte, 200)
	for i := range alt {
		if i%2 == 0 {
			alt[i] = 0
		} else {
			alt[i] = 255
		}
	}
	if got := SerialCorrelation(alt); got > -0.99 {
		t.Fatalf("corr(alternating)=%v, want ~-1", got)
	}
	// Random data should be near zero.
	rng := rand.New(rand.NewSource(3))
	b := make([]byte, 1<<16)
	rng.Read(b)
	if got := SerialCorrelation(b); math.Abs(got) > 0.05 {
		t.Fatalf("corr(random)=%v, want ~0", got)
	}
	// Degenerate inputs.
	if got := SerialCorrelation([]byte{5}); got != 0 {
		t.Fatalf("corr(single)=%v", got)
	}
	if got := SerialCorrelation(make([]byte, 100)); got != 0 {
		t.Fatalf("corr(const)=%v, want 0 (zero denominator)", got)
	}
}

func TestCDFMonotoneAndEndpoints(t *testing.T) {
	vals := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	xs, ps := CDF(vals, 20)
	if len(xs) != 20 || len(ps) != 20 {
		t.Fatalf("CDF returned %d,%d points", len(xs), len(ps))
	}
	for i := 1; i < len(ps); i++ {
		if ps[i] < ps[i-1] {
			t.Fatalf("CDF not monotone at %d: %v < %v", i, ps[i], ps[i-1])
		}
		if xs[i] < xs[i-1] {
			t.Fatalf("CDF xs not monotone at %d", i)
		}
	}
	if ps[len(ps)-1] != 1 {
		t.Fatalf("CDF final = %v, want 1", ps[len(ps)-1])
	}
	if xs[0] != 1 || xs[len(xs)-1] != 9 {
		t.Fatalf("CDF range = [%v,%v], want [1,9]", xs[0], xs[len(xs)-1])
	}
}

func TestCDFDegenerate(t *testing.T) {
	xs, ps := CDF(nil, 10)
	if xs != nil || ps != nil {
		t.Fatal("CDF of empty input should be nil")
	}
	xs, ps = CDF([]float64{2, 2, 2}, 5)
	for i := range ps {
		if ps[i] != 1 {
			t.Fatalf("constant CDF[%d]=%v, want 1 (x=%v)", i, ps[i], xs[i])
		}
	}
}

func TestCDFDistance(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if d := CDFDistance(a, a); d != 0 {
		t.Fatalf("distance(a,a)=%v, want 0", d)
	}
	b := []float64{101, 102, 103}
	if d := CDFDistance(a, b); d != 1 {
		t.Fatalf("distance(disjoint)=%v, want 1", d)
	}
	if d := CDFDistance(nil, a); d != 1 {
		t.Fatalf("distance(empty)=%v, want 1", d)
	}
	// Same distribution sampled twice should be small.
	rng := rand.New(rand.NewSource(11))
	x := make([]float64, 5000)
	y := make([]float64, 5000)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	if d := CDFDistance(x, y); d > 0.06 {
		t.Fatalf("distance(same dist)=%v, want small", d)
	}
}

func TestRMSEAndFriends(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{1, 2, 3}
	if RMSE(a, b) != 0 {
		t.Fatal("RMSE of identical != 0")
	}
	if !math.IsInf(PSNR(a, b), 1) {
		t.Fatal("PSNR of identical should be +Inf")
	}
	c := []float64{2, 3, 4}
	if got := RMSE(a, c); math.Abs(got-1) > 1e-15 {
		t.Fatalf("RMSE = %v, want 1", got)
	}
	if got := MaxAbsError(a, c); got != 1 {
		t.Fatalf("MaxAbsError = %v, want 1", got)
	}
	if got := NRMSE(a, c); math.Abs(got-0.5) > 1e-15 {
		t.Fatalf("NRMSE = %v, want 0.5 (range 2)", got)
	}
}

func TestRMSELengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	RMSE([]float64{1}, []float64{1, 2})
}

func TestMeanVariance(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty mean/variance should be 0")
	}
	vals := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(vals); got != 5 {
		t.Fatalf("mean = %v, want 5", got)
	}
	if got := Variance(vals); got != 4 {
		t.Fatalf("variance = %v, want 4", got)
	}
}

func TestCharacterize(t *testing.T) {
	b := []byte{0, 255, 0, 255}
	c := Characterize(b)
	if math.Abs(c.ByteEntropy-1) > 1e-12 || c.ByteMean != 127.5 {
		t.Fatalf("characterize = %+v", c)
	}
	if c.SerialCorrelation > -0.9 {
		t.Fatalf("alternating serial corr = %v, want ~-1", c.SerialCorrelation)
	}
}

func TestPSNRMoreNoiseLowerPSNR(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := make([]float64, 1000)
	small := make([]float64, 1000)
	big := make([]float64, 1000)
	for i := range a {
		a[i] = rng.Float64() * 100
		small[i] = a[i] + rng.NormFloat64()*0.01
		big[i] = a[i] + rng.NormFloat64()*1.0
	}
	if PSNR(a, small) <= PSNR(a, big) {
		t.Fatal("PSNR should decrease with more noise")
	}
}

func TestPSNRConstantReference(t *testing.T) {
	// A flat reference has zero value range; PSNR falls back to peak 1
	// instead of reporting log10(0) = -Inf.
	a := []float64{3, 3, 3, 3}
	b := []float64{3.1, 2.9, 3.1, 2.9}
	got := PSNR(a, b)
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("PSNR(constant ref) = %v, want finite", got)
	}
	want := 20 * math.Log10(1/RMSE(a, b))
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("PSNR(constant ref) = %v, want %v", got, want)
	}
}

func TestPSNRIdenticalInputs(t *testing.T) {
	a := []float64{1, 2, 3}
	if got := PSNR(a, a); !math.IsInf(got, 1) {
		t.Fatalf("PSNR(identical) = %v, want +Inf", got)
	}
	c := []float64{5, 5, 5}
	if got := PSNR(c, c); !math.IsInf(got, 1) {
		t.Fatalf("PSNR(identical constant) = %v, want +Inf", got)
	}
}

func TestNRMSEConstantReference(t *testing.T) {
	a := []float64{2, 2, 2}
	b := []float64{2.5, 1.5, 2.5}
	if got, want := NRMSE(a, b), RMSE(a, b); got != want {
		t.Fatalf("NRMSE(constant ref) = %v, want RMSE %v", got, want)
	}
}

// Package stats implements the data-characteristic metrics used throughout
// the paper: byte entropy, byte mean, serial correlation (Fig. 1, Table II),
// value CDFs, and the error metrics (RMSE and friends) of Section V.
package stats

import (
	"math"
	"sort"
)

// ByteEntropy returns the Shannon entropy of the byte histogram of b, in
// bits per byte. The value lies in [0, 8]; 8 means perfectly random bytes.
func ByteEntropy(b []byte) float64 {
	if len(b) == 0 {
		return 0
	}
	var counts [256]int
	for _, c := range b {
		counts[c]++
	}
	n := float64(len(b))
	h := 0.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}

// ByteMean returns the arithmetic mean of the bytes of b. Random data is
// close to 127.5; consistent deviation indicates biased content.
func ByteMean(b []byte) float64 {
	if len(b) == 0 {
		return 0
	}
	s := 0.0
	for _, c := range b {
		s += float64(c)
	}
	return s / float64(len(b))
}

// SerialCorrelation returns the lag-1 Pearson correlation of consecutive
// bytes of b, in [-1, 1]. Near 0 means each byte is independent of the
// previous one. This is the "serial correlation coefficient" of the paper's
// Fig. 1 (the classic `ent` metric).
func SerialCorrelation(b []byte) float64 {
	n := len(b) - 1
	if n < 1 {
		return 0
	}
	var sx, sy, sxx, syy, sxy float64
	for i := 0; i < n; i++ {
		x, y := float64(b[i]), float64(b[i+1])
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
	}
	fn := float64(n)
	num := sxy - sx*sy/fn
	den := math.Sqrt((sxx - sx*sx/fn) * (syy - sy*sy/fn))
	if den == 0 {
		return 0
	}
	return num / den
}

// CDF returns the empirical cumulative distribution of vals sampled at
// `points` evenly spaced values between min and max (inclusive). It returns
// the sample positions and the cumulative fractions. vals is not modified.
func CDF(vals []float64, points int) (xs, ps []float64) {
	if len(vals) == 0 || points <= 0 {
		return nil, nil
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	lo, hi := sorted[0], sorted[len(sorted)-1]
	xs = make([]float64, points)
	ps = make([]float64, points)
	for i := 0; i < points; i++ {
		var x float64
		if points == 1 {
			x = hi
		} else {
			x = lo + (hi-lo)*float64(i)/float64(points-1)
		}
		xs[i] = x
		// Number of values <= x.
		k := sort.SearchFloat64s(sorted, math.Nextafter(x, math.Inf(1)))
		ps[i] = float64(k) / float64(len(sorted))
	}
	return xs, ps
}

// CDFDistance returns the maximum absolute difference between the empirical
// CDFs of a and b (a two-sample Kolmogorov–Smirnov statistic), a scalar
// summary of how similar two distributions are. 0 means identical.
func CDFDistance(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 1
	}
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	sort.Float64s(sa)
	sort.Float64s(sb)
	var d float64
	i, j := 0, 0
	for i < len(sa) && j < len(sb) {
		var v float64
		if sa[i] <= sb[j] {
			v = sa[i]
			i++
		} else {
			v = sb[j]
			j++
		}
		// Advance past duplicates of v in both.
		for i < len(sa) && sa[i] <= v {
			i++
		}
		for j < len(sb) && sb[j] <= v {
			j++
		}
		fa := float64(i) / float64(len(sa))
		fb := float64(j) / float64(len(sb))
		if diff := math.Abs(fa - fb); diff > d {
			d = diff
		}
	}
	return d
}

// RMSE returns the root-mean-square error between a and b.
// The slices must have equal length.
func RMSE(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: RMSE length mismatch")
	}
	if len(a) == 0 {
		return 0
	}
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(a)))
}

// valueRange returns the min and max of vals (±Inf sentinels for empty
// input), the shared normalisation scan of NRMSE and PSNR.
func valueRange(vals []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return lo, hi
}

// NRMSE returns RMSE normalised by the value range of a.
// It returns RMSE unchanged when a has zero range.
func NRMSE(a, b []float64) float64 {
	r := RMSE(a, b)
	lo, hi := valueRange(a)
	if hi <= lo {
		return r
	}
	return r / (hi - lo)
}

// PSNR returns the peak signal-to-noise ratio in dB of b against reference
// a, using a's value range as the peak. It returns +Inf for identical data.
// A constant (zero-range) reference uses peak 1, mirroring NRMSE's
// fall-back to the unnormalised value — the old behaviour took
// log10(0/r) = -Inf, reporting maximally-bad quality for a reference that
// merely happened to be flat.
func PSNR(a, b []float64) float64 {
	r := RMSE(a, b)
	if r == 0 {
		return math.Inf(1)
	}
	lo, hi := valueRange(a)
	peak := hi - lo
	if peak <= 0 {
		peak = 1
	}
	return 20 * math.Log10(peak/r)
}

// MaxAbsError returns the largest |a[i]-b[i]|.
func MaxAbsError(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: MaxAbsError length mismatch")
	}
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// Mean returns the arithmetic mean of vals (0 for empty input).
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

// Variance returns the population variance of vals.
func Variance(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	m := Mean(vals)
	s := 0.0
	for _, v := range vals {
		d := v - m
		s += d * d
	}
	return s / float64(len(vals))
}

// Characteristics bundles the three scalar byte metrics of Fig. 1.
type Characteristics struct {
	ByteEntropy       float64
	ByteMean          float64
	SerialCorrelation float64
}

// Characterize computes the Fig. 1 scalar metrics over a byte buffer.
func Characterize(b []byte) Characteristics {
	return Characteristics{
		ByteEntropy:       ByteEntropy(b),
		ByteMean:          ByteMean(b),
		SerialCorrelation: SerialCorrelation(b),
	}
}

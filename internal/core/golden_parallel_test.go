package core

import (
	"bytes"
	"math"
	"testing"

	"lrm/internal/compress"
	"lrm/internal/compress/fpc"
	"lrm/internal/compress/sz"
	"lrm/internal/compress/zfp"
	"lrm/internal/parallel"
	"lrm/internal/reduce"
)

// TestGoldenParallelArchivesByteIdentical is the golden gate for the worker
// knob: the archive produced with Workers=8 must be byte-for-byte the one
// produced with Workers=1 (exact serial execution), for every codec family,
// direct and preconditioned, single-shot and chunked. Parallelism may only
// change latency — never a single bit of the format.
func TestGoldenParallelArchivesByteIdentical(t *testing.T) {
	f := heatField(t)
	codecs := []compress.Codec{
		zfp.MustNew(24),
		sz.MustNew(sz.Abs, 1e-5),
		fpc.MustNew(12),
	}
	models := []reduce.Model{nil, reduce.PCA{}}
	for _, codec := range codecs {
		for _, m := range models {
			name := codec.Name() + "/" + modelName(m)
			serialOpts := Options{Model: m, DataCodec: codec, DeltaCodec: codec,
				Parallel: parallel.Config{Workers: 1}}
			parOpts := serialOpts
			parOpts.Parallel = parallel.Config{Workers: 8}

			serial, err := Compress(f, serialOpts)
			if err != nil {
				t.Fatalf("%s: serial compress: %v", name, err)
			}
			par, err := Compress(f, parOpts)
			if err != nil {
				t.Fatalf("%s: parallel compress: %v", name, err)
			}
			if !bytes.Equal(serial.Archive, par.Archive) {
				t.Fatalf("%s: Workers=8 archive differs from Workers=1 (%d vs %d bytes)",
					name, len(par.Archive), len(serial.Archive))
			}

			// Both decompress paths must agree bit-for-bit too.
			dec1, err := Decompress(serial.Archive)
			if err != nil {
				t.Fatalf("%s: decompress: %v", name, err)
			}
			dec8, err := Decompress(par.Archive)
			if err != nil {
				t.Fatalf("%s: decompress parallel archive: %v", name, err)
			}
			if !bytes.Equal(floatBytes(dec1.Data), floatBytes(dec8.Data)) {
				t.Fatalf("%s: decompressed fields differ", name)
			}

			serialChunked, err := CompressChunked(f, serialOpts, 4)
			if err != nil {
				t.Fatalf("%s: serial chunked: %v", name, err)
			}
			parChunked, err := CompressChunked(f, parOpts, 4)
			if err != nil {
				t.Fatalf("%s: parallel chunked: %v", name, err)
			}
			if !bytes.Equal(serialChunked.Archive, parChunked.Archive) {
				t.Fatalf("%s: chunked Workers=8 archive differs from Workers=1", name)
			}
		}
	}
}

// TestGoldenParallelWorkerSweep compresses at several worker counts and
// checks all streams match the serial one, so no particular shard count is
// special-cased.
func TestGoldenParallelWorkerSweep(t *testing.T) {
	f := heatField(t)
	codec := zfp.MustNew(16)
	var want []byte
	for _, w := range []int{1, 2, 3, 5, 16} {
		res, err := Compress(f, Options{DataCodec: codec, Parallel: parallel.Config{Workers: w}})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if want == nil {
			want = res.Archive
			continue
		}
		if !bytes.Equal(res.Archive, want) {
			t.Fatalf("workers=%d archive differs from workers=1", w)
		}
	}
}

func floatBytes(data []float64) []byte {
	out := make([]byte, 0, 8*len(data))
	for _, v := range data {
		u := math.Float64bits(v)
		out = append(out,
			byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
			byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
	}
	return out
}

package core

import (
	"testing"

	"lrm/internal/compress/fpc"
	"lrm/internal/compress/sz"
	"lrm/internal/compress/zfp"
	"lrm/internal/grid"
	"lrm/internal/reduce"
	"lrm/internal/sim/heat3d"
	"lrm/internal/stats"
)

func heatSeries(t *testing.T, n, steps, count int) []*grid.Field {
	t.Helper()
	cfg := heat3d.Default(n)
	cfg.Steps = steps
	return heat3d.Snapshots(cfg, count)
}

func TestSeriesRoundTripWithinBound(t *testing.T) {
	snaps := heatSeries(t, 16, 60, 6)
	opts := Options{
		Model:      reduce.OneBase{},
		DataCodec:  sz.MustNew(sz.Abs, 1e-5),
		DeltaCodec: sz.MustNew(sz.Abs, 1e-4),
	}
	res, err := CompressSeries(snaps, opts)
	if err != nil {
		t.Fatal(err)
	}
	frames, err := DecompressSeries(res.Archive)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != len(snaps) {
		t.Fatalf("frames = %d, want %d", len(frames), len(snaps))
	}
	// Every frame's error is bounded by ONE delta pass (the rolling
	// reconstruction stops error accumulation); the first frame went
	// through the preconditioned pipeline with both bounds in play.
	for i := range snaps {
		maxErr := stats.MaxAbsError(snaps[i].Data, frames[i].Data)
		if maxErr > 2.1e-4 {
			t.Fatalf("frame %d error %v accumulates beyond bound", i, maxErr)
		}
	}
}

func TestSeriesBeatsIndependentCompression(t *testing.T) {
	// Slowly evolving data: temporal deltas are much smaller than frames.
	// The win requires an absolute-error codec — fixed-precision ZFP spends
	// the same planes per block regardless of magnitude, but in accuracy
	// mode the small deltas need far fewer planes.
	snaps := heatSeries(t, 16, 40, 8)
	codec := zfp.MustNewAccuracy(1e-6)
	series, err := CompressSeries(snaps, Options{DataCodec: codec})
	if err != nil {
		t.Fatal(err)
	}
	independent := 0
	for _, s := range snaps {
		res, err := Compress(s, Options{DataCodec: codec})
		if err != nil {
			t.Fatal(err)
		}
		independent += len(res.Archive)
	}
	if len(series.Archive) >= independent {
		t.Fatalf("series (%dB) did not beat independent frames (%dB)", len(series.Archive), independent)
	}
	if series.Ratio() <= 1 {
		t.Fatalf("series ratio = %v", series.Ratio())
	}
	if len(series.FrameBytes) != len(snaps) {
		t.Fatalf("frame accounting = %d entries", len(series.FrameBytes))
	}
	// Later frames must be cheaper than frame 0 (they are deltas).
	for i := 1; i < len(series.FrameBytes); i++ {
		if series.FrameBytes[i] >= series.FrameBytes[0] {
			t.Fatalf("delta frame %d (%dB) not cheaper than keyframe (%dB)",
				i, series.FrameBytes[i], series.FrameBytes[0])
		}
	}
}

func TestSeriesLosslessNearExact(t *testing.T) {
	// With a lossless delta codec the only error is the floating-point
	// re-rounding of (f - prev) + prev: a few ulps, never amplified across
	// frames (the rolling reconstruction is what gets delta'd against).
	snaps := heatSeries(t, 12, 30, 4)
	codec := fpc.MustNew(10)
	res, err := CompressSeries(snaps, Options{DataCodec: codec})
	if err != nil {
		t.Fatal(err)
	}
	frames, err := DecompressSeries(res.Archive)
	if err != nil {
		t.Fatal(err)
	}
	for i := range snaps {
		for j := range snaps[i].Data {
			ref := snaps[i].Data[j]
			if d := frames[i].Data[j] - ref; d > 1e-12*(1+ref) || d < -1e-12*(1+ref) {
				t.Fatalf("lossless series off by %v at frame %d idx %d", d, i, j)
			}
		}
	}
}

func TestSeriesSingleFrame(t *testing.T) {
	snaps := heatSeries(t, 12, 20, 1)
	res, err := CompressSeries(snaps, Options{DataCodec: zfp.MustNew(16)})
	if err != nil {
		t.Fatal(err)
	}
	frames, err := DecompressSeries(res.Archive)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 1 {
		t.Fatalf("frames = %d", len(frames))
	}
}

func TestSeriesValidation(t *testing.T) {
	if _, err := CompressSeries(nil, Options{DataCodec: zfp.MustNew(8)}); err == nil {
		t.Fatal("expected empty-series rejection")
	}
	if _, err := CompressSeries([]*grid.Field{grid.New(4)}, Options{}); err == nil {
		t.Fatal("expected missing-codec rejection")
	}
	// Dim changes mid-series must fail cleanly.
	snaps := []*grid.Field{grid.New(4, 4), grid.New(5, 5)}
	if _, err := CompressSeries(snaps, Options{DataCodec: zfp.MustNew(8)}); err == nil {
		t.Fatal("expected dims-mismatch rejection")
	}
}

func TestSeriesGarbage(t *testing.T) {
	snaps := heatSeries(t, 12, 20, 3)
	res, err := CompressSeries(snaps, Options{DataCodec: zfp.MustNew(12)})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(res.Archive); cut += 13 {
		if _, err := DecompressSeries(res.Archive[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := DecompressSeries(append(res.Archive, 1)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	if _, err := DecompressSeries([]byte("LRMX123")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

package core

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"lrm/internal/compress"
	"lrm/internal/compress/fpc"
	"lrm/internal/grid"
	"lrm/internal/mpi"
	"lrm/internal/parallel"
)

// hostileChunkedArchive builds an LRMC container whose header claims the
// given dims, with one plausible-looking record so only the dims are
// hostile.
func hostileChunkedArchive(dims []uint64) []byte {
	var buf bytes.Buffer
	buf.WriteString(chunkedMagic)
	writeUvarint(&buf, 1) // chunks
	buf.WriteByte(byte(len(dims)))
	for _, d := range dims {
		writeUvarint(&buf, d)
	}
	writeUvarint(&buf, 0) // CRC (never reached)
	writeBytes(&buf, []byte(magic))
	return buf.Bytes()
}

func TestChunkedDimsBomb(t *testing.T) {
	// Regression: the old header check only bounded each extent by 2^32, so
	// {2^32, 1, 1} drove a 32 GiB allocation and {2^32, 2^32, 2^32}
	// overflowed the int product and panicked in the grid constructor.
	cases := [][]uint64{
		{1 << 32, 1, 1},
		{1 << 32, 1 << 32, 1 << 32},
		{1 << 20, 1 << 20, 1 << 20}, // each extent plausible, product absurd
	}
	for _, dims := range cases {
		archive := hostileChunkedArchive(dims)
		f, err := Decompress(archive)
		if err == nil {
			t.Fatalf("dims %v: hostile archive accepted (field dims %v)", dims, f.Dims)
		}
		if !errors.Is(err, compress.ErrCorrupt) {
			t.Fatalf("dims %v: error %v does not wrap ErrCorrupt", dims, err)
		}
		if _, err := DecompressChunkedPartial(archive); err == nil {
			t.Fatalf("dims %v: hostile archive accepted in degraded mode", dims)
		}
	}
}

func TestGridCheckDimsOverflow(t *testing.T) {
	if _, err := grid.NewChecked(1<<31, 1<<31, 4); err == nil {
		t.Fatal("overflowing dims accepted")
	}
	if _, err := grid.NewChecked(1<<32, 1<<32, 1<<32); err == nil {
		t.Fatal("wrapping dims accepted")
	}
}

// ctrCodec is a registry test double: a trivial store-raw codec whose
// worker-aware decoder records every budget it is handed, so tests can
// observe how the chunked container divides its pool.
type ctrCodec struct{}

func (ctrCodec) Name() string   { return "ctr" }
func (ctrCodec) Lossless() bool { return true }

func (ctrCodec) Compress(f *grid.Field) ([]byte, error) {
	return append(compress.EncodeDimsHeader(f.Dims), f.Bytes()...), nil
}

func (ctrCodec) Decompress(b []byte) (*grid.Field, error) { return ctrDecode(b) }

func ctrDecode(b []byte) (*grid.Field, error) {
	dims, rest, err := compress.DecodeDimsHeader(b)
	if err != nil {
		return nil, err
	}
	f, err := grid.FromBytes(rest, dims...)
	if err != nil {
		return nil, compress.Classify(err)
	}
	return f, nil
}

var ctrSeen struct {
	mu      sync.Mutex
	budgets []int
}

func init() {
	compress.RegisterWorkersDecoder("ctr", func(b []byte, workers int) (*grid.Field, error) {
		ctrSeen.mu.Lock()
		ctrSeen.budgets = append(ctrSeen.budgets, workers)
		ctrSeen.mu.Unlock()
		return ctrDecode(b)
	})
}

func takeCtrBudgets() []int {
	ctrSeen.mu.Lock()
	defer ctrSeen.mu.Unlock()
	out := ctrSeen.budgets
	ctrSeen.budgets = nil
	return out
}

func TestDecompressOptsWorkerBudget(t *testing.T) {
	f := grid.New(8, 6)
	for i := range f.Data {
		f.Data[i] = float64(i)
	}
	res, err := CompressChunked(f, Options{DataCodec: ctrCodec{}}, 4)
	if err != nil {
		t.Fatal(err)
	}

	// 8 workers over 4 chunks leaves 2 per chunk's codec, symmetric with
	// CompressChunked's split.
	takeCtrBudgets()
	dec, err := DecompressWithOpts(res.Archive, DecompressOpts{Parallel: parallel.Config{Workers: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Equal(f, 0) {
		t.Fatal("worker-budget decode round trip mismatch")
	}
	for _, w := range takeCtrBudgets() {
		if w != 2 {
			t.Fatalf("chunk codec got budget %d, want 2", w)
		}
	}

	// A serial budget stays serial all the way down.
	if _, err := DecompressWithOpts(res.Archive, DecompressOpts{Parallel: parallel.Config{Workers: 1}}); err != nil {
		t.Fatal(err)
	}
	for _, w := range takeCtrBudgets() {
		if w != 1 {
			t.Fatalf("chunk codec got budget %d, want 1", w)
		}
	}
}

// buildChunkedArchive hand-assembles an LRMC container from per-chunk LRM1
// archives, mirroring CompressChunked's writer, so tests can splice in
// corrupted records with valid framing.
func buildChunkedArchive(t *testing.T, dims []int, chunkArchives [][]byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString(chunkedMagic)
	writeUvarint(&buf, uint64(len(chunkArchives)))
	buf.WriteByte(byte(len(dims)))
	for _, d := range dims {
		writeUvarint(&buf, uint64(d))
	}
	for c, a := range chunkArchives {
		writeUvarint(&buf, uint64(chunkCRC(c, a)))
		writeBytes(&buf, a)
	}
	return buf.Bytes()
}

// chunkSlabArchives compresses each leading-dimension slab of f separately,
// returning the per-chunk LRM1 archives.
func chunkSlabArchives(t *testing.T, f *grid.Field, chunks int) [][]byte {
	t.Helper()
	slab := 1
	for _, d := range f.Dims[1:] {
		slab *= d
	}
	out := make([][]byte, chunks)
	for c := 0; c < chunks; c++ {
		lo, hi := mpi.Slab1D(f.Dims[0], chunks, c)
		dims := append([]int{hi - lo}, f.Dims[1:]...)
		sub, err := grid.FromData(f.Data[lo*slab:hi*slab], dims...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Compress(sub, Options{DataCodec: fpc.MustNew(10)})
		if err != nil {
			t.Fatal(err)
		}
		out[c] = res.Archive
	}
	return out
}

func TestDecompressChunkedPartial(t *testing.T) {
	f := grid.New(12, 5)
	for i := range f.Data {
		f.Data[i] = 1 + float64(i%7)
	}
	const chunks = 4
	archives := chunkSlabArchives(t, f, chunks)

	// A record whose CRC is valid over garbage bytes: the container framing
	// survives, the chunk decode fails.
	bad := append([][]byte(nil), archives...)
	bad[1] = []byte("not an archive")
	archive := buildChunkedArchive(t, f.Dims, bad)

	if _, err := Decompress(archive); err == nil {
		t.Fatal("strict decode accepted a bad chunk")
	}

	p, err := DecompressChunkedPartial(archive)
	if err != nil {
		t.Fatal(err)
	}
	if p.Complete() || p.Chunks != chunks || len(p.Errors) != 1 {
		t.Fatalf("partial = %+v", p)
	}
	ce := p.Errors[0]
	if ce.Chunk != 1 {
		t.Fatalf("failed chunk %d, want 1", ce.Chunk)
	}
	if !errors.Is(ce, compress.ErrCorrupt) && !errors.Is(ce, compress.ErrTruncated) {
		t.Fatalf("chunk error %v carries no sentinel", ce)
	}
	slab := f.Dims[1]
	for i, v := range p.Field.Data {
		row := i / slab
		switch {
		case row >= ce.Lo && row < ce.Hi:
			if v != 0 {
				t.Fatalf("failed region row %d not zeroed: %v", row, v)
			}
		default:
			if v != f.Data[i] {
				t.Fatalf("surviving region mismatch at %d: %v != %v", i, v, f.Data[i])
			}
		}
	}

	// A fully intact archive reports Complete.
	good, err := DecompressChunkedPartial(buildChunkedArchive(t, f.Dims, archives))
	if err != nil {
		t.Fatal(err)
	}
	if !good.Complete() || !good.Field.Equal(f, 0) {
		t.Fatalf("intact archive not complete: %+v", good)
	}
}

func TestDecompressChunkedPartialTruncated(t *testing.T) {
	f := grid.New(9, 4)
	for i := range f.Data {
		f.Data[i] = float64(i)
	}
	const chunks = 3
	archive := buildChunkedArchive(t, f.Dims, chunkSlabArchives(t, f, chunks))

	// Cut inside the last record: framing for chunks 0-1 survives.
	cut := archive[:len(archive)-3]
	p, err := DecompressChunkedPartial(cut)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Errors) != 1 || p.Errors[0].Chunk != 2 {
		t.Fatalf("partial after truncation = %+v", p.Errors)
	}
	if !errors.Is(p.Errors[0], compress.ErrTruncated) {
		t.Fatalf("truncation error %v does not wrap ErrTruncated", p.Errors[0])
	}

	// Trailing garbage is tolerated in degraded mode, an error in strict.
	trailing := append(append([]byte(nil), archive...), 0xAA, 0xBB)
	if _, err := Decompress(trailing); err == nil {
		t.Fatal("strict decode accepted trailing bytes")
	}
	p, err = DecompressChunkedPartial(trailing)
	if err != nil {
		t.Fatal(err)
	}
	if p.Complete() || p.Trailing != 2 || len(p.Errors) != 0 {
		t.Fatalf("trailing partial = %+v", p)
	}
	if !p.Field.Equal(f, 0) {
		t.Fatal("trailing bytes corrupted recovered field")
	}
}

func TestChunkedRecordReorderDetected(t *testing.T) {
	// The record CRC is seeded with the chunk index, so swapping two intact
	// records (or duplicating one) must fail validation rather than
	// silently scrambling the field.
	f := grid.New(8, 3)
	for i := range f.Data {
		f.Data[i] = float64(i * i)
	}
	const chunks = 4
	archives := chunkSlabArchives(t, f, chunks)

	swapped := append([][]byte(nil), archives...)
	swapped[0], swapped[2] = swapped[2], swapped[0]
	var buf bytes.Buffer
	buf.WriteString(chunkedMagic)
	writeUvarint(&buf, uint64(chunks))
	buf.WriteByte(byte(len(f.Dims)))
	for _, d := range f.Dims {
		writeUvarint(&buf, uint64(d))
	}
	for c, a := range swapped {
		// CRCs as the original writer computed them, moved with the records:
		// exactly what a splice produces.
		orig := c
		switch c {
		case 0:
			orig = 2
		case 2:
			orig = 0
		}
		writeUvarint(&buf, uint64(chunkCRC(orig, a)))
		writeBytes(&buf, a)
	}
	_, err := Decompress(buf.Bytes())
	if err == nil {
		t.Fatal("reordered records accepted")
	}
	if !errors.Is(err, compress.ErrCorrupt) {
		t.Fatalf("reorder error %v does not wrap ErrCorrupt", err)
	}

	p, err := DecompressChunkedPartial(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Errors) != 2 {
		t.Fatalf("want exactly the two swapped chunks failed, got %+v", p.Errors)
	}
}

func TestChunkedEveryPrefixTruncation(t *testing.T) {
	f := grid.New(6, 4)
	for i := range f.Data {
		f.Data[i] = float64(i)
	}
	res, err := CompressChunked(f, Options{DataCodec: fpc.MustNew(10)}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(res.Archive); cut++ {
		_, err := Decompress(res.Archive[:cut])
		if err == nil {
			t.Fatalf("prefix of %d bytes accepted", cut)
		}
		if !errors.Is(err, compress.ErrTruncated) && !errors.Is(err, compress.ErrCorrupt) {
			t.Fatalf("prefix %d: error %v carries no sentinel", cut, err)
		}
	}
}

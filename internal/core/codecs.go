package core

import (
	"context"
	"fmt"

	"lrm/internal/compress"
	"lrm/internal/compress/fpc"
	"lrm/internal/compress/sz"
	"lrm/internal/compress/zfp"
	"lrm/internal/grid"
)

// codecBase strips the parameterisation from a codec name:
// "zfp(p=16)" -> "zfp". Streams are self-describing, so decoding only
// needs to know the codec family.
func codecBase(name string) string { return compress.CodecFamily(name) }

// decoderFor returns a context-aware decompression function for a codec
// family from the shared registry, bound to the given worker budget
// (families without a ctx or worker-aware decoder fall back with ctx
// ignored / serial decode). Codec packages register themselves at init; the
// imports below (for PaperCodecs) pull every built-in family in.
func decoderFor(family string, workers int) (func(ctx context.Context, b []byte) (*grid.Field, error), error) {
	return compress.DecoderCtxForWorkers(family, workers)
}

// PaperCodecs returns the paper's standard codec configurations
// (Section IV-B / V-B): primary codec for original data and rep, and the
// looser delta codec.
//
//	zfp:  16-bit precision primary, 8-bit delta
//	sz:   1e-5 pointwise-relative primary, 1e-3 delta
//	fpc:  level 20 (lossless; same for both roles)
func PaperCodecs(family string) (data, delta compress.Codec, err error) {
	switch family {
	case "zfp":
		return zfp.MustNew(16), zfp.MustNew(8), nil
	case "sz":
		// SZ 1.4's default relative mode bounds error by ratio x value
		// range; the delta codec gets the paper's looser 1e-3 ratio.
		return sz.MustNew(sz.ValueRangeRel, 1e-5), sz.MustNew(sz.ValueRangeRel, 1e-3), nil
	case "fpc":
		c := fpc.MustNew(20)
		return c, c, nil
	case "flate":
		c := compress.NewFlate(6)
		return c, c, nil
	}
	return nil, nil, fmt.Errorf("core: unknown codec family %q", family)
}

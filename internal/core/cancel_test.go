package core

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"

	"lrm/internal/compress"
	"lrm/internal/grid"
	"lrm/internal/parallel"
	"lrm/internal/sim/heat3d"
)

// cancelProbe is a codec wrapper that counts Compress calls and fires a
// caller-supplied hook after each one — the seam the cancellation tests use
// to cancel a context from inside the chunk loop deterministically.
type cancelProbe struct {
	inner compress.Codec
	mu    sync.Mutex
	calls int
	after func(call int)
}

func (p *cancelProbe) Name() string   { return "cancelprobe" }
func (p *cancelProbe) Lossless() bool { return p.inner.Lossless() }

func (p *cancelProbe) Compress(f *grid.Field) ([]byte, error) {
	b, err := p.inner.Compress(f)
	p.mu.Lock()
	p.calls++
	n := p.calls
	hook := p.after
	p.mu.Unlock()
	if hook != nil {
		hook(n)
	}
	return b, err
}

func (p *cancelProbe) Decompress(b []byte) (*grid.Field, error) { return p.inner.Decompress(b) }

func (p *cancelProbe) callCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.calls
}

// probeDecode is the registered decode counterpart: the "cancelprobe"
// family decodes the wrapped flate stream, counting calls and firing the
// hook, so chunk decodes can cancel mid-container too.
var probeDecode = struct {
	mu    sync.Mutex
	calls int
	after func(call int)
}{}

var registerProbe = sync.OnceFunc(func() {
	compress.RegisterCtxDecoder("cancelprobe", func(_ context.Context, b []byte, _ int) (*grid.Field, error) {
		f, err := compress.NewFlate(6).Decompress(b)
		probeDecode.mu.Lock()
		probeDecode.calls++
		n := probeDecode.calls
		hook := probeDecode.after
		probeDecode.mu.Unlock()
		if hook != nil {
			hook(n)
		}
		return f, err
	})
})

func setProbeDecodeHook(after func(call int)) {
	probeDecode.mu.Lock()
	probeDecode.calls = 0
	probeDecode.after = after
	probeDecode.mu.Unlock()
}

func probeDecodeCalls() int {
	probeDecode.mu.Lock()
	defer probeDecode.mu.Unlock()
	return probeDecode.calls
}

func cancelField(t *testing.T) *grid.Field {
	t.Helper()
	cfg := heat3d.Default(16)
	cfg.Steps = 4
	return heat3d.Solve(cfg)
}

func assertCanceled(t *testing.T, err error) {
	t.Helper()
	if err == nil {
		t.Fatal("expected a cancellation error, got nil")
	}
	if !errors.Is(err, compress.ErrCanceled) {
		t.Errorf("error %v does not wrap compress.ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
	if errors.Is(err, compress.ErrCorrupt) || errors.Is(err, compress.ErrTruncated) {
		t.Errorf("cancellation error %v must not classify as corrupt/truncated", err)
	}
}

// TestCompressChunkedCtxCancelSkipsRemainingChunks cancels the context from
// inside the first chunk's codec call and asserts the remaining chunks are
// never compressed: with Workers=1 the chunk loop is serial and in index
// order, so exactly one codec call proves the boundary check aborts the
// rest.
func TestCompressChunkedCtxCancelSkipsRemainingChunks(t *testing.T) {
	f := cancelField(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	probe := &cancelProbe{inner: compress.NewFlate(6), after: func(call int) {
		if call == 1 {
			cancel()
		}
	}}
	opts := Options{DataCodec: probe, Parallel: parallel.Config{Workers: 1}}
	const chunks = 4
	_, err := CompressChunkedCtx(ctx, f, opts, chunks)
	assertCanceled(t, err)
	if got := probe.callCount(); got != 1 {
		t.Errorf("codec ran %d times after cancellation; want 1 (remaining %d chunks must be skipped)",
			got, chunks-1)
	}
}

// TestCompressChunkedCtxUncanceledIdentical pins the bugfix contract: a
// context that is never canceled must not change a single byte of the
// archive.
func TestCompressChunkedCtxUncanceledIdentical(t *testing.T) {
	f := cancelField(t)
	opts := Options{DataCodec: compress.NewFlate(6), Parallel: parallel.Config{Workers: 1}}
	plain, err := CompressChunked(f, opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	traced, err := CompressChunkedCtx(ctx, f, opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Archive, traced.Archive) {
		t.Error("archive differs between Background and cancelable (uncanceled) contexts")
	}
}

// TestDecompressChunkedCtxCancelSkipsRemainingChunks builds a four-chunk
// container with the probe codec, cancels from inside the first chunk's
// decode, and asserts the other three records are never decoded — on both
// the strict and the degraded (partial) paths.
func TestDecompressChunkedCtxCancelSkipsRemainingChunks(t *testing.T) {
	registerProbe()
	f := cancelField(t)
	probe := &cancelProbe{inner: compress.NewFlate(6)}
	opts := Options{DataCodec: probe, Parallel: parallel.Config{Workers: 1}}
	const chunks = 4
	res, err := CompressChunked(f, opts, chunks)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("strict", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		setProbeDecodeHook(func(call int) {
			if call == 1 {
				cancel()
			}
		})
		_, err := DecompressWithOptsCtx(ctx, res.Archive, DecompressOpts{Parallel: parallel.Config{Workers: 1}})
		assertCanceled(t, err)
		if got := probeDecodeCalls(); got != 1 {
			t.Errorf("decoder ran %d times after cancellation; want 1", got)
		}
	})

	t.Run("partial", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		setProbeDecodeHook(func(call int) {
			if call == 1 {
				cancel()
			}
		})
		_, err := DecompressChunkedPartialWithOptsCtx(ctx, res.Archive, DecompressOpts{Parallel: parallel.Config{Workers: 1}})
		assertCanceled(t, err)
		if got := probeDecodeCalls(); got != 1 {
			t.Errorf("decoder ran %d times after cancellation; want 1", got)
		}
	})

	t.Run("pre-canceled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		setProbeDecodeHook(nil)
		_, err := DecompressWithOptsCtx(ctx, res.Archive, DecompressOpts{Parallel: parallel.Config{Workers: 1}})
		assertCanceled(t, err)
		if got := probeDecodeCalls(); got != 0 {
			t.Errorf("decoder ran %d times under a pre-canceled context; want 0", got)
		}
	})

	// The archive is intact: with a live context the same bytes round-trip.
	setProbeDecodeHook(nil)
	back, err := DecompressWithOptsCtx(context.Background(), res.Archive, DecompressOpts{Parallel: parallel.Config{Workers: 1}})
	if err != nil {
		t.Fatalf("uncanceled decode of the same archive failed: %v", err)
	}
	if !back.Equal(f, 0) {
		t.Error("uncanceled decode did not round-trip the field")
	}
}

package core

import (
	"math"
	"testing"

	"lrm/internal/compress"
	"lrm/internal/compress/fpc"
	"lrm/internal/compress/sz"
	"lrm/internal/compress/zfp"
	"lrm/internal/grid"
	"lrm/internal/reduce"
	"lrm/internal/sim/heat3d"
	"lrm/internal/stats"
)

func heatField(t *testing.T) *grid.Field {
	t.Helper()
	cfg := heat3d.Default(20)
	cfg.Steps = 60
	return heat3d.Solve(cfg)
}

func allModels() []reduce.Model {
	return []reduce.Model{
		nil, // direct
		reduce.OneBase{},
		reduce.MultiBase{Blocks: 4},
		reduce.DuoModel{Factor: 4},
		reduce.PCA{},
		reduce.SVD{},
		reduce.Wavelet{},
	}
}

func modelName(m reduce.Model) string {
	if m == nil {
		return "direct"
	}
	return m.Name()
}

func TestPipelineRoundTripAllModelsAllCodecs(t *testing.T) {
	f := heatField(t)
	codecs := []struct {
		data, delta compress.Codec
		tol         float64
	}{
		{zfp.MustNew(24), zfp.MustNew(16), 2e-2},
		{sz.MustNew(sz.Abs, 1e-5), sz.MustNew(sz.Abs, 1e-4), 5e-3},
		{fpc.MustNew(12), fpc.MustNew(12), 1e-9},
		{compress.NewFlate(6), compress.NewFlate(6), 1e-12},
	}
	for _, cc := range codecs {
		for _, m := range allModels() {
			res, err := Compress(f, Options{Model: m, DataCodec: cc.data, DeltaCodec: cc.delta})
			if err != nil {
				t.Fatalf("%s/%s: %v", cc.data.Name(), modelName(m), err)
			}
			dec, err := Decompress(res.Archive)
			if err != nil {
				t.Fatalf("%s/%s: decompress: %v", cc.data.Name(), modelName(m), err)
			}
			if dec.Len() != f.Len() {
				t.Fatalf("%s/%s: length mismatch", cc.data.Name(), modelName(m))
			}
			maxErr := stats.MaxAbsError(f.Data, dec.Data)
			if maxErr > cc.tol {
				t.Fatalf("%s/%s: max error %v exceeds %v", cc.data.Name(), modelName(m), maxErr, cc.tol)
			}
		}
	}
}

func TestLosslessCodecsExactThroughPipeline(t *testing.T) {
	// With a lossless codec for both rep and delta, the pipeline must be
	// bit-exact end to end regardless of model.
	f := heatField(t)
	codec := fpc.MustNew(10)
	for _, m := range allModels() {
		res, err := Compress(f, Options{Model: m, DataCodec: codec})
		if err != nil {
			t.Fatalf("%s: %v", modelName(m), err)
		}
		dec, err := Decompress(res.Archive)
		if err != nil {
			t.Fatalf("%s: %v", modelName(m), err)
		}
		for i := range f.Data {
			if math.Abs(dec.Data[i]-f.Data[i]) > 1e-9*(1+math.Abs(f.Data[i])) {
				t.Fatalf("%s: not near-exact at %d: %v vs %v", modelName(m), i, dec.Data[i], f.Data[i])
			}
		}
	}
}

func TestPreconditioningImprovesRatioOnHeat3d(t *testing.T) {
	// The headline claim: one-base preconditioning beats direct compression
	// on Heat3d-like data.
	f := heatField(t)
	data, delta, err := PaperCodecs("zfp")
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Compress(f, Options{DataCodec: data})
	if err != nil {
		t.Fatal(err)
	}
	oneBase, err := Compress(f, Options{Model: reduce.OneBase{}, DataCodec: data, DeltaCodec: delta})
	if err != nil {
		t.Fatal(err)
	}
	if oneBase.Ratio() <= direct.Ratio() {
		t.Fatalf("one-base ratio %.2f did not beat direct %.2f", oneBase.Ratio(), direct.Ratio())
	}
}

func TestResultAccounting(t *testing.T) {
	f := heatField(t)
	res, err := Compress(f, Options{Model: reduce.PCA{}, DataCodec: zfp.MustNew(16), DeltaCodec: zfp.MustNew(8)})
	if err != nil {
		t.Fatal(err)
	}
	if res.OriginalBytes != 8*f.Len() {
		t.Fatalf("OriginalBytes = %d", res.OriginalBytes)
	}
	if res.RepBytes() <= 0 || res.DeltaBytes <= 0 {
		t.Fatalf("missing accounting: rep=%d delta=%d", res.RepBytes(), res.DeltaBytes)
	}
	if res.RepBytes()+res.DeltaBytes > len(res.Archive) {
		t.Fatalf("parts (%d) exceed archive (%d)", res.RepBytes()+res.DeltaBytes, len(res.Archive))
	}
	if res.Ratio() <= 0 {
		t.Fatalf("ratio = %v", res.Ratio())
	}

	direct, err := Compress(f, Options{DataCodec: zfp.MustNew(16)})
	if err != nil {
		t.Fatal(err)
	}
	if direct.RepBytes() != 0 || direct.DeltaBytes != 0 {
		t.Fatal("direct compression should have no rep/delta accounting")
	}
}

func TestMissingCodec(t *testing.T) {
	f := grid.New(4)
	if _, err := Compress(f, Options{}); err == nil {
		t.Fatal("expected DataCodec-required error")
	}
}

func TestDecompressGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("LRM1"),
		[]byte("LRM1\x07"),
		[]byte("LRM1\x00\x03zfp"),
		[]byte("LRM1\x01\x03zfp\x03pca\x09"),
	}
	for i, b := range cases {
		if _, err := Decompress(b); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
	// Valid archive, truncated at every byte boundary: error, never panic.
	f := heatField(t)
	res, err := Compress(f, Options{Model: reduce.OneBase{}, DataCodec: zfp.MustNew(12)})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(res.Archive); cut += 7 {
		if _, err := Decompress(res.Archive[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestUnknownCodecFamilyInArchive(t *testing.T) {
	f := grid.New(8)
	res, err := Compress(f, Options{DataCodec: zfp.MustNew(8)})
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), res.Archive...)
	// The codec name "zfp" starts after magic+mode+len: flip it.
	bad[6], bad[7], bad[8] = 'q', 'q', 'q'
	if _, err := Decompress(bad); err == nil {
		t.Fatal("expected unknown-codec error")
	}
}

func TestPaperCodecs(t *testing.T) {
	for _, family := range []string{"zfp", "sz", "fpc", "flate"} {
		data, delta, err := PaperCodecs(family)
		if err != nil || data == nil || delta == nil {
			t.Fatalf("%s: %v", family, err)
		}
	}
	if _, _, err := PaperCodecs("nope"); err == nil {
		t.Fatal("expected unknown-family error")
	}
}

func TestSelectModelPicksAWinner(t *testing.T) {
	f := heatField(t)
	data, delta, _ := PaperCodecs("zfp")
	best, results, err := SelectModel(f, DefaultCandidates(), Options{DataCodec: data, DeltaCodec: delta})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(DefaultCandidates()) {
		t.Fatalf("results = %d", len(results))
	}
	// On Z-symmetric heat data a preconditioner must beat direct.
	if best.Label == "direct" {
		t.Fatalf("expected a preconditioner to win on Heat3d, got %q", best.Label)
	}
	// The winner's ratio must be the max of all reported ratios.
	var bestSeen float64
	for _, r := range results {
		if r.Err == nil && r.Ratio > bestSeen {
			bestSeen = r.Ratio
		}
	}
	for _, r := range results {
		if r.Label == best.Label && r.Ratio != bestSeen {
			t.Fatalf("winner %q ratio %v != best seen %v", best.Label, r.Ratio, bestSeen)
		}
	}
}

func TestSelectModelRequiresCodec(t *testing.T) {
	if _, _, err := SelectModel(grid.New(4), DefaultCandidates(), Options{}); err == nil {
		t.Fatal("expected codec-required error")
	}
}

func TestSzPipelineRespectsLooseDeltaBound(t *testing.T) {
	// End-to-end error with sz abs bounds: rep bound 1e-5, delta bound
	// 1e-3. Total error is bounded by rep-induced reconstruction shift
	// (captured in the delta) + delta quantisation error <= ~1e-3.
	f := heatField(t)
	res, err := Compress(f, Options{
		Model:      reduce.OneBase{},
		DataCodec:  sz.MustNew(sz.Abs, 1e-5),
		DeltaCodec: sz.MustNew(sz.Abs, 1e-3),
	})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decompress(res.Archive)
	if err != nil {
		t.Fatal(err)
	}
	if maxErr := stats.MaxAbsError(f.Data, dec.Data); maxErr > 1.1e-3 {
		t.Fatalf("end-to-end error %v exceeds delta bound", maxErr)
	}
}

func TestEmptyRepValuesPath(t *testing.T) {
	// A zero field wavelet-transforms to all zeros -> empty sparse rep.
	f := grid.New(16, 16)
	res, err := Compress(f, Options{Model: reduce.Wavelet{}, DataCodec: zfp.MustNew(16)})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decompress(res.Archive)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range dec.Data {
		if v != 0 {
			t.Fatalf("zero field corrupted at %d: %v", i, v)
		}
	}
}

// Package core implements the paper's end-to-end preconditioning pipeline
// (Fig. 5):
//
//	reduction phase:      data -> reduced representation -> inverse
//	                      transform -> delta = data - reconstruction;
//	                      store compressed(rep) + compressed(delta)
//	reconstruction phase: decompress rep -> inverse transform ->
//	                      apply decompressed delta -> data
//
// The reduced representation's numeric payload and the delta are both
// compressed — the rep with the primary codec configuration and the delta
// with a looser bound, following Section V-B's observation that the delta's
// smaller magnitude warrants a looser relative bound (16 vs 8 bits for ZFP,
// 1e-5 vs 1e-3 for SZ).
package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"lrm/internal/compress"
	"lrm/internal/grid"
	"lrm/internal/invariant"
	"lrm/internal/obs"
	"lrm/internal/obs/trace"
	"lrm/internal/parallel"
	"lrm/internal/reduce"
)

// obsDeltaEnergy reports ‖delta‖² / ‖data‖² for the most recent
// preconditioned compression — the fraction of signal energy the reduced
// model failed to capture (small is good; the paper's Section V-B knob).
var obsDeltaEnergy = obs.GetFloatGauge("core.delta_energy")

// Options configures one compression run.
type Options struct {
	// Model preconditions the data; nil compresses directly.
	Model reduce.Model
	// DataCodec compresses the data directly (Model == nil) or the reduced
	// representation's numeric payload (Model != nil).
	DataCodec compress.Codec
	// DeltaCodec compresses the delta. nil falls back to DataCodec. The
	// paper uses a looser bound here (Section V-B).
	DeltaCodec compress.Codec
	// Parallel selects the worker-pool size applied to codecs that
	// implement compress.Parallelizable. The zero value leaves each codec
	// on its own default (GOMAXPROCS); Workers == 1 reproduces the exact
	// serial execution. Archives are byte-identical at every setting.
	Parallel parallel.Config
}

// withParallel returns a copy of opts whose codecs are bound to the
// configured parallel.Config — pool size plus the size-aware shard cutover
// (Config.MinShardBytes). Codecs that accept neither knob pass through.
func (o Options) withParallel() Options {
	if o.Parallel == (parallel.Config{}) {
		return o
	}
	o.DataCodec = applyParallel(o.DataCodec, o.Parallel)
	o.DeltaCodec = applyParallel(o.DeltaCodec, o.Parallel)
	return o
}

func applyParallel(c compress.Codec, cfg parallel.Config) compress.Codec {
	if p, ok := c.(compress.ParallelTunable); ok {
		return p.WithParallel(cfg)
	}
	if p, ok := c.(compress.Parallelizable); ok && cfg.Workers != 0 {
		return p.WithWorkers(cfg.Workers)
	}
	return c
}

// Result is a compression outcome with the per-part byte accounting the
// experiments report (Fig. 9 plots RepBytes; Fig. 6 uses Ratio).
type Result struct {
	// Archive is the self-describing compressed container.
	Archive []byte
	// OriginalBytes is 8 * number of points.
	OriginalBytes int
	// RepMetaBytes, RepValueBytes are the stored reduced-representation
	// sizes (0 for direct compression).
	RepMetaBytes, RepValueBytes int
	// DeltaBytes is the stored delta stream size (0 for direct).
	DeltaBytes int
}

// Ratio returns the end-to-end compression ratio.
func (r *Result) Ratio() float64 {
	return compress.RatioBytes(r.OriginalBytes, len(r.Archive))
}

// RepBytes returns the total reduced-representation footprint.
func (r *Result) RepBytes() int { return r.RepMetaBytes + r.RepValueBytes }

const magic = "LRM1"

const (
	modeDirect        = 0
	modePreconditoned = 1
)

// Compress runs the pipeline on f.
func Compress(f *grid.Field, opts Options) (*Result, error) {
	return CompressCtx(context.Background(), f, opts)
}

// CompressCtx is Compress with trace propagation: the pipeline's spans
// (core.compress and its reduce/rep_store/delta children, plus whatever the
// codecs open) parent onto the span carried by ctx. Archives are
// byte-identical to Compress — ctx carries observability only.
func CompressCtx(ctx context.Context, f *grid.Field, opts Options) (*Result, error) {
	ctx, sp := trace.Start(ctx, "core.compress")
	defer sp.End()
	res, err := compressCtx(ctx, f, opts)
	if err != nil {
		sp.SetError(err)
		return nil, err
	}
	sp.SetBytes(int64(res.OriginalBytes), int64(len(res.Archive)))
	return res, nil
}

func compressCtx(ctx context.Context, f *grid.Field, opts Options) (*Result, error) {
	if opts.DataCodec == nil {
		return nil, errors.New("core: DataCodec is required")
	}
	opts = opts.withParallel()
	res := &Result{OriginalBytes: 8 * f.Len()}

	var buf bytes.Buffer
	buf.WriteString(magic)

	if opts.Model == nil {
		buf.WriteByte(modeDirect)
		writeString(&buf, codecBase(opts.DataCodec.Name()))
		stream, err := compress.CompressCtx(ctx, opts.DataCodec, f)
		if err != nil {
			return nil, fmt.Errorf("core: direct compression: %w", err)
		}
		writeBytes(&buf, stream)
		res.Archive = buf.Bytes()
		if invariant.Enabled {
			assertEndToEndBound(f, opts.DataCodec, res.Archive)
		}
		return res, nil
	}

	deltaCodec := opts.DeltaCodec
	if deltaCodec == nil {
		deltaCodec = opts.DataCodec
	}

	// Reduction phase.
	_, rs := trace.Start(ctx, "core.reduce")
	rep, err := opts.Model.Reduce(f)
	rs.SetError(err)
	rs.End()
	if err != nil {
		return nil, fmt.Errorf("core: reduce: %w", err)
	}

	// The delta must be computed against the representation AS STORED:
	// if the rep's values are lossily compressed, reconstruction at
	// decompression time sees the perturbed values, so the delta has to be
	// taken against the same perturbed reconstruction or the error would
	// double-count. Compress the rep first, then reconstruct from the
	// decompressed rep to compute the delta.
	ssCtx, ss := trace.Start(ctx, "core.rep_store")
	repValStream, storedRep, err := storeRepValues(ssCtx, rep, opts.DataCodec)
	ss.SetError(err)
	ss.End()
	if err != nil {
		return nil, err
	}
	recon, err := reduce.Reconstruct(storedRep)
	if err != nil {
		return nil, fmt.Errorf("core: reconstruct stored rep: %w", err)
	}
	dspCtx, dsp := trace.Start(ctx, "core.delta")
	delta, err := f.Sub(recon)
	if err != nil {
		dsp.SetError(err)
		dsp.End()
		return nil, err
	}
	deltaStream, err := compress.CompressCtx(dspCtx, deltaCodec, delta)
	dsp.SetBytes(int64(8*f.Len()), int64(len(deltaStream)))
	dsp.SetError(err)
	dsp.End()
	if err != nil {
		return nil, fmt.Errorf("core: delta compression: %w", err)
	}
	if obs.Enabled() {
		var dd, ff float64
		for _, v := range delta.Data {
			dd += v * v
		}
		for _, v := range f.Data {
			ff += v * v
		}
		if ff > 0 {
			obsDeltaEnergy.Set(dd / ff)
		}
	}
	metaStream, err := compress.FlateBytes(rep.Meta, 6)
	if err != nil {
		return nil, err
	}

	buf.WriteByte(modePreconditoned)
	writeString(&buf, codecBase(opts.DataCodec.Name()))
	writeString(&buf, rep.Model)
	buf.WriteByte(byte(len(rep.Dims)))
	for _, d := range rep.Dims {
		writeUvarint(&buf, uint64(d))
	}
	writeUvarint(&buf, uint64(len(rep.Meta))) // pre-flate size for exactness
	writeBytes(&buf, metaStream)
	writeBytes(&buf, repValStream)
	writeString(&buf, codecBase(deltaCodec.Name()))
	writeBytes(&buf, deltaStream)

	res.Archive = buf.Bytes()
	res.RepMetaBytes = len(metaStream)
	res.RepValueBytes = len(repValStream)
	res.DeltaBytes = len(deltaStream)
	if invariant.Enabled {
		// The preconditioned pipeline's end-to-end error is exactly the
		// delta codec's error: decompression rebuilds the same stored
		// reconstruction and adds the decompressed delta, so the bound to
		// assert against f is the delta codec's bound on the delta field.
		assertEndToEndBoundEps(f, deltaCodec, delta, res.Archive)
	}
	return res, nil
}

// assertEndToEndBound round-trips a direct archive and asserts the paper's
// |x − x′| ≤ ε guarantee when the codec declares an absolute bound.
// Compiled in only with -tags invariants.
func assertEndToEndBound(f *grid.Field, codec compress.Codec, archive []byte) {
	eb, ok := codec.(compress.ErrorBounded)
	if !ok {
		return
	}
	eps, ok := eb.AbsErrorBound(f)
	if !ok {
		return
	}
	back, err := Decompress(archive)
	invariant.Assert(err == nil, "core: invariant round trip failed: %v", err)
	invariant.ErrorBound(f.Data, back.Data, boundWithSlack(eps, f), "core: end-to-end "+codec.Name())
}

// assertEndToEndBoundEps is the preconditioned variant: the bound comes
// from the delta codec evaluated on the delta field.
func assertEndToEndBoundEps(f *grid.Field, deltaCodec compress.Codec, delta *grid.Field, archive []byte) {
	eb, ok := deltaCodec.(compress.ErrorBounded)
	if !ok {
		return
	}
	eps, ok := eb.AbsErrorBound(delta)
	if !ok {
		return
	}
	back, err := Decompress(archive)
	invariant.Assert(err == nil, "core: invariant round trip failed: %v", err)
	invariant.ErrorBound(f.Data, back.Data, boundWithSlack(eps, f), "core: end-to-end precond "+deltaCodec.Name())
}

// boundWithSlack widens eps by a few ulps of the field's magnitude: the
// delta subtraction and final addition are each exactly rounded, so the
// recomposed value can sit a handful of ulps past the codec's bound
// without any stage being wrong.
func boundWithSlack(eps float64, f *grid.Field) float64 {
	maxAbs := 0.0
	for _, v := range f.Data {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	return eps + 4*(maxAbs+eps)*0x1p-52
}

// storeRepValues compresses the representation's numeric payload with the
// codec and returns both the stream and the representation as it will look
// after decompression (meta intact, values re-read from the codec).
func storeRepValues(ctx context.Context, rep *reduce.Rep, codec compress.Codec) (stream []byte, stored *reduce.Rep, err error) {
	cp := *rep
	if len(rep.Values) == 0 {
		return nil, &cp, nil
	}
	vf, err := grid.FromData(rep.Values, len(rep.Values))
	if err != nil {
		return nil, nil, err
	}
	stream, err = compress.CompressCtx(ctx, codec, vf)
	if err != nil {
		return nil, nil, fmt.Errorf("core: rep compression: %w", err)
	}
	back, err := compress.DecompressCtx(ctx, codec, stream)
	if err != nil {
		return nil, nil, fmt.Errorf("core: rep verify: %w", err)
	}
	cp.Values = back.Data
	return stream, &cp, nil
}

// DecompressOpts configures decompression. The zero value matches
// Decompress: default worker pool, fail-fast on any chunk error.
type DecompressOpts struct {
	// Parallel is the worker budget shared by chunk-level concurrency and
	// codec-internal kernels, mirroring Options.Parallel on the compression
	// side. The zero value resolves to GOMAXPROCS; Workers == 1 reproduces
	// the serial execution.
	Parallel parallel.Config
}

// Decompress reverses Compress and CompressChunked with default options.
// Archives are fully self-describing; the container magic selects the
// format. Failures wrap compress.ErrTruncated / compress.ErrCorrupt.
func Decompress(archive []byte) (*grid.Field, error) {
	return DecompressWithOpts(archive, DecompressOpts{})
}

// DecompressCtx is Decompress with trace propagation.
func DecompressCtx(ctx context.Context, archive []byte) (*grid.Field, error) {
	return DecompressWithOptsCtx(ctx, archive, DecompressOpts{})
}

// DecompressWithOpts is Decompress with an explicit worker budget.
func DecompressWithOpts(archive []byte, opts DecompressOpts) (*grid.Field, error) {
	return DecompressWithOptsCtx(context.Background(), archive, opts)
}

// DecompressWithOptsCtx is DecompressWithOpts with trace propagation.
func DecompressWithOptsCtx(ctx context.Context, archive []byte, opts DecompressOpts) (*grid.Field, error) {
	ctx, sp := trace.Start(ctx, "core.decompress")
	defer sp.End()
	f, err := decompress(ctx, archive, opts.Parallel.Resolve())
	if err != nil {
		err = compress.Classify(err)
		sp.SetError(err)
		return nil, err
	}
	sp.SetBytes(int64(len(archive)), int64(8*f.Len()))
	return f, nil
}

// decompress dispatches on the container magic with a resolved worker
// budget.
func decompress(ctx context.Context, archive []byte, workers int) (*grid.Field, error) {
	if len(archive) >= 4 && string(archive[:4]) == chunkedMagic {
		p, err := chunkedDecode(ctx, archive, workers, false)
		if err != nil {
			return nil, err
		}
		return p.Field, nil
	}
	return decompressSingle(ctx, archive, workers)
}

// decompressSingle decodes one LRM1 archive.
func decompressSingle(ctx context.Context, archive []byte, workers int) (*grid.Field, error) {
	r := &reader{buf: archive}
	if string(r.take(4)) != magic {
		if len(archive) < 4 {
			return nil, fmt.Errorf("core: truncated magic: %w", compress.ErrTruncated)
		}
		return nil, fmt.Errorf("core: bad magic: %w", compress.ErrHeader)
	}
	mode := r.byte()
	dataCodecName := r.string()
	if r.err != nil {
		return nil, fmt.Errorf("core: corrupt archive: %w", r.err)
	}
	dataDecode, err := decoderFor(dataCodecName, workers)
	if err != nil {
		return nil, err
	}

	switch mode {
	case modeDirect:
		stream := r.bytes()
		if r.err != nil {
			return nil, fmt.Errorf("core: corrupt archive: %w", r.err)
		}
		return dataDecode(ctx, stream)

	case modePreconditoned:
		modelName := r.string()
		rank := int(r.byte())
		if r.err != nil {
			return nil, fmt.Errorf("core: corrupt archive: %w", r.err)
		}
		if rank < 1 || rank > 3 {
			return nil, fmt.Errorf("core: bad rank %d: %w", rank, compress.ErrHeader)
		}
		dims := make([]int, rank)
		total := uint64(1)
		for i := range dims {
			v := r.uvarint()
			if r.err != nil {
				return nil, fmt.Errorf("core: corrupt archive: %w", r.err)
			}
			if v == 0 || v > compress.MaxElements {
				return nil, fmt.Errorf("core: bad dims: %w", compress.ErrHeader)
			}
			dims[i] = int(v)
			total *= v
		}
		if total > compress.MaxElements {
			return nil, fmt.Errorf("core: dims %v claim %d elements (max %d): %w",
				dims, total, compress.MaxElements, compress.ErrHeader)
		}
		metaLen := r.uvarint()
		metaStream := r.bytes()
		repValStream := r.bytes()
		deltaCodecName := r.string()
		deltaStream := r.bytes()
		if r.err != nil {
			return nil, fmt.Errorf("core: corrupt archive: %w", r.err)
		}

		// The claimed pre-flate size drives the inflate output cap; a
		// hostile claim is bounded by what the deflated stream could
		// legitimately expand to (flate tops out near 1032:1).
		if err := compress.CheckedAlloc("core: rep meta", metaLen, 2048*uint64(len(metaStream))+1024, 1); err != nil {
			return nil, err
		}
		meta, err := compress.InflateBytesCap(metaStream, int64(metaLen))
		if err != nil {
			return nil, fmt.Errorf("core: rep meta: %w", err)
		}
		if uint64(len(meta)) != metaLen {
			return nil, fmt.Errorf("core: rep meta length %d != %d: %w", len(meta), metaLen, compress.ErrCorrupt)
		}
		rep := &reduce.Rep{Model: modelName, Dims: dims, Meta: meta}
		if len(repValStream) > 0 {
			vf, err := dataDecode(ctx, repValStream)
			if err != nil {
				return nil, fmt.Errorf("core: rep values: %w", err)
			}
			rep.Values = vf.Data
		}
		recon, err := reduce.Reconstruct(rep)
		if err != nil {
			return nil, fmt.Errorf("core: reconstruct: %w", compress.Classify(err))
		}
		deltaDecode, err := decoderFor(deltaCodecName, workers)
		if err != nil {
			return nil, err
		}
		delta, err := deltaDecode(ctx, deltaStream)
		if err != nil {
			return nil, fmt.Errorf("core: delta: %w", err)
		}
		if err := recon.AddInPlace(delta); err != nil {
			return nil, fmt.Errorf("core: apply delta: %w", compress.Classify(err))
		}
		return recon, nil
	}
	return nil, fmt.Errorf("core: unknown mode %d: %w", mode, compress.ErrCorrupt)
}

// --- binary helpers ---

func writeString(buf *bytes.Buffer, s string) {
	writeUvarint(buf, uint64(len(s)))
	buf.WriteString(s)
}

func writeBytes(buf *bytes.Buffer, b []byte) {
	writeUvarint(buf, uint64(len(b)))
	buf.Write(b)
}

func writeUvarint(buf *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	buf.Write(tmp[:n])
}

type reader struct {
	buf []byte
	pos int
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil || r.pos+n > len(r.buf) {
		r.setErr()
		return nil
	}
	out := r.buf[r.pos : r.pos+n]
	r.pos += n
	return out
}

func (r *reader) setErr() {
	if r.err == nil {
		// The sentinel itself: every reader-detected failure is the stream
		// ending before the structure it promises.
		r.err = compress.ErrTruncated
	}
}

func (r *reader) byte() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		r.setErr()
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) bytes() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)-r.pos) {
		r.setErr()
		return nil
	}
	return r.take(int(n))
}

func (r *reader) string() string { return string(r.bytes()) }

package core

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"lrm/internal/compress/zfp"
	"lrm/internal/obs"
	"lrm/internal/obs/trace"
	"lrm/internal/parallel"
)

// withFullObs enables both observability switches for one test and restores
// registry, ring, and switch state afterwards.
func withFullObs(t *testing.T) {
	t.Helper()
	pm := obs.SetEnabled(true)
	pt := trace.SetEnabled(true)
	obs.Reset()
	trace.Reset()
	t.Cleanup(func() {
		obs.Reset()
		trace.Reset()
		obs.SetEnabled(pm)
		trace.SetEnabled(pt)
	})
}

// TestChunkedTraceNesting pins the acceptance-level span topology: chunk
// spans nest under the chunked-container root, the per-chunk pipeline nests
// under its chunk, and codec worker-shard spans nest under the chunk's
// codec span — even though the work crosses the bounded pool twice.
func TestChunkedTraceNesting(t *testing.T) {
	withFullObs(t)
	f := heatField(t)
	opts := Options{DataCodec: zfp.MustNew(16), Parallel: parallel.Config{Workers: 4}}
	res, err := CompressChunkedCtx(context.Background(), f, opts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecompressWithOptsCtx(context.Background(), res.Archive,
		DecompressOpts{Parallel: parallel.Config{Workers: 4}}); err != nil {
		t.Fatal(err)
	}

	var tr *trace.Trace
	for _, cand := range trace.Snapshot() {
		if cand.Root == "core.compress_chunked" {
			tr = cand
		}
	}
	if tr == nil {
		t.Fatal("no core.compress_chunked trace retained")
	}

	byID := map[uint64]trace.SpanRecord{}
	var rootID uint64
	for _, s := range tr.Spans {
		byID[s.SpanID] = s
		if s.ParentID == 0 {
			rootID = s.SpanID
		}
	}
	// ancestor walks up the parent chain looking for a span name.
	ancestor := func(s trace.SpanRecord, name string) bool {
		for s.ParentID != 0 {
			p, ok := byID[s.ParentID]
			if !ok {
				return false
			}
			if p.Name == name {
				return true
			}
			s = p
		}
		return false
	}

	chunks, shards := 0, 0
	for _, s := range tr.Spans {
		switch s.Name {
		case "core.chunk_compress":
			chunks++
			if s.ParentID != rootID {
				t.Errorf("chunk span %d parents onto %d, want the container root %d",
					s.SpanID, s.ParentID, rootID)
			}
		case "zfp.shard_encode":
			shards++
			if !ancestor(s, "core.chunk_compress") {
				t.Errorf("shard span %d has no core.chunk_compress ancestor", s.SpanID)
			}
		case "core.compress":
			if !ancestor(s, "core.chunk_compress") {
				t.Errorf("per-chunk pipeline span %d not nested under its chunk", s.SpanID)
			}
		}
	}
	if chunks != 2 {
		t.Errorf("got %d chunk spans, want 2", chunks)
	}
	if shards == 0 {
		t.Error("no worker-shard spans recorded under the chunks")
	}

	// The decode side must mirror the topology: the public wrapper's
	// core.decompress root contains the container span, which contains the
	// per-chunk decode spans.
	var dtr *trace.Trace
	for _, cand := range trace.Snapshot() {
		if cand.Root == "core.decompress" {
			dtr = cand
		}
	}
	if dtr == nil {
		t.Fatal("no core.decompress trace retained")
	}
	container, decodes := 0, 0
	for _, s := range dtr.Spans {
		switch s.Name {
		case "core.decompress_chunked":
			container++
		case "core.chunk_decode":
			decodes++
		}
	}
	if container != 1 {
		t.Errorf("got %d container decode spans, want 1", container)
	}
	if decodes != 2 {
		t.Errorf("got %d chunk decode spans, want 2", decodes)
	}
}

// TestExemplarResolvesToRetainedTrace pins the metrics↔trace join: the
// latency histogram's exemplar comment in the Prometheus exposition names a
// trace ID that a Snapshot still holds and the Chrome export contains.
func TestExemplarResolvesToRetainedTrace(t *testing.T) {
	withFullObs(t)
	f := heatField(t)
	opts := Options{DataCodec: zfp.MustNew(16), Parallel: parallel.Config{Workers: 2}}
	if _, err := CompressCtx(context.Background(), f, opts); err != nil {
		t.Fatal(err)
	}

	var prom bytes.Buffer
	if err := obs.WriteProm(&prom); err != nil {
		t.Fatal(err)
	}
	var exemplarID string
	for _, line := range strings.Split(prom.String(), "\n") {
		if !strings.HasPrefix(line, "# exemplar") || !strings.Contains(line, "core_compress") {
			continue
		}
		_, rest, ok := strings.Cut(line, `trace_id="`)
		if !ok {
			continue
		}
		exemplarID, _, _ = strings.Cut(rest, `"`)
		break
	}
	if exemplarID == "" {
		t.Fatalf("no core.compress exemplar in the exposition:\n%s", prom.String())
	}

	traces := trace.Snapshot()
	found := false
	for _, tr := range traces {
		if tr.IDString() == exemplarID {
			found = true
		}
	}
	if !found {
		t.Fatalf("exemplar trace %s not retained by the ring", exemplarID)
	}
	var chrome bytes.Buffer
	if err := trace.WriteChromeTrace(&chrome, traces); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chrome.String(), exemplarID) {
		t.Errorf("exemplar trace %s missing from the Chrome export", exemplarID)
	}
}

// TestTracingPreservesStreams pins the byte-identical guarantee: enabling
// metrics and tracing must not change a single output byte, for both the
// single-field pipeline and the chunked container.
func TestTracingPreservesStreams(t *testing.T) {
	f := heatField(t)
	opts := Options{DataCodec: zfp.MustNew(16), Parallel: parallel.Config{Workers: 4}}

	pm := obs.SetEnabled(false)
	pt := trace.SetEnabled(false)
	plain, err := Compress(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	plainChunked, err := CompressChunked(f, opts, 2)
	if err != nil {
		t.Fatal(err)
	}
	obs.SetEnabled(true)
	trace.SetEnabled(true)
	t.Cleanup(func() {
		obs.Reset()
		trace.Reset()
		obs.SetEnabled(pm)
		trace.SetEnabled(pt)
	})

	traced, err := CompressCtx(context.Background(), f, opts)
	if err != nil {
		t.Fatal(err)
	}
	tracedChunked, err := CompressChunkedCtx(context.Background(), f, opts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Archive, traced.Archive) {
		t.Error("tracing changed the single-field archive bytes")
	}
	if !bytes.Equal(plainChunked.Archive, tracedChunked.Archive) {
		t.Error("tracing changed the chunked archive bytes")
	}
}

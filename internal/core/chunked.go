package core

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"

	"lrm/internal/grid"
	"lrm/internal/mpi"
	"lrm/internal/parallel"
)

// chunkedMagic marks the multi-chunk container format.
const chunkedMagic = "LRMC"

// CompressChunked splits the field into `chunks` slabs along the leading
// dimension and compresses them concurrently on the shared bounded worker
// pool — the N-to-N per-rank compression pattern of the paper's Table IV
// runs, where every MPI rank compresses its own subdomain independently.
// At most Options.Parallel workers (default GOMAXPROCS) run at once, so
// chunks >> NumCPU no longer oversubscribes the scheduler the way the old
// goroutine-per-chunk fan-out did; the pool is divided between chunk-level
// concurrency and each chunk's codec-internal workers, which is free to do
// because codec output is byte-identical at any worker count.
//
// Each chunk is a complete self-describing archive protected by a CRC32,
// so a corrupted chunk is detected and reported without touching its
// siblings. Preconditioning applies per chunk: one-base on a chunk is the
// paper's multi-base picture, one local base per sub-domain.
func CompressChunked(f *grid.Field, opts Options, chunks int) (*Result, error) {
	if opts.DataCodec == nil {
		return nil, errors.New("core: DataCodec is required")
	}
	if chunks < 1 || chunks > f.Dims[0] {
		return nil, fmt.Errorf("core: %d chunks cannot split leading extent %d", chunks, f.Dims[0])
	}

	slab := 1
	for _, d := range f.Dims[1:] {
		slab *= d
	}

	// Divide the pool: when chunk-level concurrency already saturates it,
	// each chunk's codec runs serially; leftover capacity goes to the
	// codecs' internal kernels.
	workers := opts.Parallel.Resolve()
	running := min(workers, chunks)
	inner := opts
	inner.Parallel = parallel.Config{Workers: max(1, workers/running)}

	type chunkOut struct {
		res *Result
		err error
	}
	outs := make([]chunkOut, chunks)
	parallel.For(workers, chunks, func(c int) {
		lo, hi := mpi.Slab1D(f.Dims[0], chunks, c)
		dims := append([]int{hi - lo}, f.Dims[1:]...)
		sub, err := grid.FromData(f.Data[lo*slab:hi*slab], dims...)
		if err != nil {
			outs[c] = chunkOut{err: err}
			return
		}
		res, err := Compress(sub, inner)
		outs[c] = chunkOut{res: res, err: err}
	})

	var buf bytes.Buffer
	buf.WriteString(chunkedMagic)
	writeUvarint(&buf, uint64(chunks))
	buf.WriteByte(byte(len(f.Dims)))
	for _, d := range f.Dims {
		writeUvarint(&buf, uint64(d))
	}
	total := &Result{OriginalBytes: 8 * f.Len()}
	for c, o := range outs {
		if o.err != nil {
			return nil, fmt.Errorf("core: chunk %d: %w", c, o.err)
		}
		writeUvarint(&buf, uint64(crc32.ChecksumIEEE(o.res.Archive)))
		writeBytes(&buf, o.res.Archive)
		total.RepMetaBytes += o.res.RepMetaBytes
		total.RepValueBytes += o.res.RepValueBytes
		total.DeltaBytes += o.res.DeltaBytes
	}
	total.Archive = buf.Bytes()
	return total, nil
}

// decompressChunked reverses CompressChunked. Chunks are decompressed
// concurrently on the bounded pool and stitched back along the leading
// dimension.
func decompressChunked(archive []byte) (*grid.Field, error) {
	r := &reader{buf: archive}
	if string(r.take(4)) != chunkedMagic {
		return nil, errors.New("core: bad chunked magic")
	}
	chunks := int(r.uvarint())
	rank := int(r.byte())
	if r.err != nil {
		return nil, fmt.Errorf("core: corrupt chunked header: %w", r.err)
	}
	if rank < 1 || rank > 3 || chunks < 1 {
		return nil, fmt.Errorf("core: implausible chunked header (rank %d, chunks %d)", rank, chunks)
	}
	dims := make([]int, rank)
	for i := range dims {
		v := r.uvarint()
		if v == 0 || v > 1<<32 {
			return nil, errors.New("core: bad chunked dims")
		}
		dims[i] = int(v)
	}
	if chunks > dims[0] {
		return nil, fmt.Errorf("core: %d chunks exceed leading extent %d", chunks, dims[0])
	}

	type job struct {
		idx     int
		archive []byte
	}
	jobs := make([]job, chunks)
	for c := 0; c < chunks; c++ {
		wantCRC := uint32(r.uvarint())
		chunkArchive := r.bytes()
		if r.err != nil {
			return nil, fmt.Errorf("core: truncated chunk %d: %w", c, r.err)
		}
		if crc32.ChecksumIEEE(chunkArchive) != wantCRC {
			return nil, fmt.Errorf("core: chunk %d failed CRC validation", c)
		}
		jobs[c] = job{idx: c, archive: chunkArchive}
	}
	if r.pos != len(r.buf) {
		return nil, fmt.Errorf("core: %d trailing bytes after chunks", len(r.buf)-r.pos)
	}

	out := grid.New(dims...)
	slab := 1
	for _, d := range dims[1:] {
		slab *= d
	}
	errs := make([]error, chunks)
	parallel.For(parallel.DefaultWorkers(), chunks, func(c int) {
		j := jobs[c]
		f, err := Decompress(j.archive)
		if err != nil {
			errs[j.idx] = err
			return
		}
		lo, hi := mpi.Slab1D(dims[0], chunks, j.idx)
		if f.Dims[0] != hi-lo || f.Len() != (hi-lo)*slab {
			errs[j.idx] = fmt.Errorf("chunk shape %v does not fit slab [%d,%d)", f.Dims, lo, hi)
			return
		}
		copy(out.Data[lo*slab:hi*slab], f.Data)
	})
	for c, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: chunk %d: %w", c, err)
		}
	}
	return out, nil
}

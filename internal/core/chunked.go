package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"strconv"
	"strings"

	"lrm/internal/compress"
	"lrm/internal/grid"
	"lrm/internal/mpi"
	"lrm/internal/obs"
	"lrm/internal/obs/quality"
	"lrm/internal/obs/trace"
	"lrm/internal/parallel"
)

// Hoisted chunk-level counters (see internal/obs): decode failures are
// counted per chunk so degraded-mode recovery is visible in the snapshot.
var (
	obsChunksDecoded = obs.GetCounter("core.chunks_decoded")
	obsChunkErrors   = obs.GetCounter("core.chunk_errors")
)

// chunkedMagic marks the multi-chunk container format.
const chunkedMagic = "LRMC"

// codecFamily reduces a codec's self-description to its family name for
// pprof labels: "sz(abs=1e-3)" → "sz". Parameters would explode label
// cardinality in the continuous profiler's per-codec attribution.
func codecFamily(name string) string {
	if i := strings.IndexByte(name, '('); i >= 0 {
		name = name[:i]
	}
	return name
}

// CompressChunked splits the field into `chunks` slabs along the leading
// dimension and compresses them concurrently on the shared bounded worker
// pool — the N-to-N per-rank compression pattern of the paper's Table IV
// runs, where every MPI rank compresses its own subdomain independently.
// At most Options.Parallel workers (default GOMAXPROCS) run at once, so
// chunks >> NumCPU no longer oversubscribes the scheduler the way the old
// goroutine-per-chunk fan-out did; the pool is divided between chunk-level
// concurrency and each chunk's codec-internal workers, which is free to do
// because codec output is byte-identical at any worker count.
//
// Each chunk is a complete self-describing archive protected by a CRC32,
// so a corrupted chunk is detected and reported without touching its
// siblings. Preconditioning applies per chunk: one-base on a chunk is the
// paper's multi-base picture, one local base per sub-domain.
func CompressChunked(f *grid.Field, opts Options, chunks int) (*Result, error) {
	return CompressChunkedCtx(context.Background(), f, opts, chunks)
}

// CompressChunkedCtx is CompressChunked with trace propagation: each chunk's
// core.chunk_compress span parents onto the container span carried into the
// pool workers, and the chunk's codec shards nest under the chunk in turn.
//
// ctx is also consulted at every chunk boundary: once canceled, no further
// chunks are scheduled and the call returns an error wrapping
// compress.ErrCanceled plus the context's own sentinel. Chunks already in
// flight finish, so cancellation never changes the bytes of a completed
// archive — an uncanceled run is byte-identical at any worker count.
func CompressChunkedCtx(ctx context.Context, f *grid.Field, opts Options, chunks int) (*Result, error) {
	ctx, sp := trace.Start(ctx, "core.compress_chunked")
	defer sp.End()
	if opts.DataCodec == nil {
		err := errors.New("core: DataCodec is required")
		sp.SetError(err)
		return nil, err
	}
	if chunks < 1 || chunks > f.Dims[0] {
		err := fmt.Errorf("core: %d chunks cannot split leading extent %d", chunks, f.Dims[0])
		sp.SetError(err)
		return nil, err
	}

	slab := 1
	for _, d := range f.Dims[1:] {
		slab *= d
	}

	// Divide the pool: when chunk-level concurrency already saturates it,
	// each chunk's codec runs serially; leftover capacity goes to the
	// codecs' internal kernels.
	workers := opts.Parallel.Resolve()
	running := min(workers, chunks)
	inner := opts
	inner.Parallel = parallel.Config{Workers: max(1, workers/running)}

	type chunkOut struct {
		res *Result
		err error
	}
	outs := make([]chunkOut, chunks)
	// The codec family label ("sz", not "sz(abs=1e-3)") joins stage/chunk
	// on the workers' pprof labels, so the continuous profiler can split
	// CPU by codec as request-level codec choice becomes dynamic.
	codecFam := codecFamily(opts.DataCodec.Name())
	parallel.ForCtx(ctx, workers, chunks, func(ctx context.Context, c int) {
		// Cancellation is checked once per chunk, here at the boundary: a
		// canceled request (client disconnect, deadline) stops scheduling new
		// chunk work instead of compressing every remaining slab at full CPU.
		// Chunks already in flight run to completion, so an uncanceled run is
		// byte-identical to the serial execution.
		if err := ctx.Err(); err != nil {
			outs[c] = chunkOut{err: err}
			return
		}
		ctx, restore := trace.WithLabels(ctx, "stage", "chunk_compress", "codec", codecFam, "chunk", strconv.Itoa(c))
		defer restore()
		cctx, csp := trace.Start(ctx, "core.chunk_compress")
		defer csp.End()
		lo, hi := mpi.Slab1D(f.Dims[0], chunks, c)
		dims := append([]int{hi - lo}, f.Dims[1:]...)
		sub, err := grid.FromData(f.Data[lo*slab:hi*slab], dims...)
		if err != nil {
			csp.SetError(err)
			outs[c] = chunkOut{err: err}
			return
		}
		res, err := CompressCtx(cctx, sub, inner)
		csp.SetError(err)
		outs[c] = chunkOut{res: res, err: err}
		if res != nil {
			csp.SetBytes(int64(8*sub.Len()), int64(len(res.Archive)))
		}
		if err == nil && obs.Enabled() {
			bound := math.NaN()
			if eb, ok := opts.DataCodec.(compress.ErrorBounded); ok {
				if b, ok := eb.AbsErrorBound(sub); ok {
					bound = b
				}
			}
			quality.Observe(quality.Event{
				Source:          "core.chunk_compress",
				Codec:           opts.DataCodec.Name(),
				Chunk:           c,
				Dims:            sub.Dims,
				OriginalBytes:   8 * sub.Len(),
				CompressedBytes: len(res.Archive),
				Bound:           bound,
				Raw:             sub.Bytes,
				Original:        sub.Data,
				Reconstruct: func() ([]float64, error) {
					g, derr := decompressSingle(cctx, res.Archive, 1)
					if derr != nil {
						return nil, derr
					}
					return g.Data, nil
				},
			})
		}
	})

	if err := ctx.Err(); err != nil {
		werr := fmt.Errorf("core: chunked compress: %w: %w", compress.ErrCanceled, err)
		sp.SetError(werr)
		return nil, werr
	}

	var buf bytes.Buffer
	buf.WriteString(chunkedMagic)
	writeUvarint(&buf, uint64(chunks))
	buf.WriteByte(byte(len(f.Dims)))
	for _, d := range f.Dims {
		writeUvarint(&buf, uint64(d))
	}
	total := &Result{OriginalBytes: 8 * f.Len()}
	for c, o := range outs {
		if o.err != nil {
			err := fmt.Errorf("core: chunk %d: %w", c, o.err)
			sp.SetError(err)
			return nil, err
		}
		writeUvarint(&buf, uint64(chunkCRC(c, o.res.Archive)))
		writeBytes(&buf, o.res.Archive)
		total.RepMetaBytes += o.res.RepMetaBytes
		total.RepValueBytes += o.res.RepValueBytes
		total.DeltaBytes += o.res.DeltaBytes
	}
	total.Archive = buf.Bytes()
	sp.SetBytes(int64(total.OriginalBytes), int64(len(total.Archive)))
	sp.AddItems(int64(chunks))
	return total, nil
}

// ChunkCRCs frames an LRMC container — header dims plus every chunk
// record — and returns the index-seeded CRC32 of each record's actual
// payload bytes (see chunkCRC), recomputed rather than read from the
// record, without decoding anything. ok reports whether the bytes are a
// well-framed LRMC container with no trailing garbage. Because the CRCs
// cover the payloads themselves, the returned (dims, crcs) pair is a
// trustworthy content address for the container: any payload flip, chunk
// reorder, or splice changes it, even when the mutation also rewrites the
// stored CRC fields. internal/serve keys its decompressed-response cache
// on it.
func ChunkCRCs(archive []byte) (dims []int, crcs []uint32, ok bool) {
	r := &reader{buf: archive}
	if string(r.take(4)) != chunkedMagic {
		return nil, nil, false
	}
	chunks := int(r.uvarint())
	rank := int(r.byte())
	// Every record costs at least two bytes (CRC uvarint + length uvarint),
	// so a chunk count beyond the archive length is a varint bomb: refuse it
	// before it sizes the crcs allocation.
	if r.err != nil || rank < 1 || rank > 3 || chunks < 1 || chunks > len(archive) {
		return nil, nil, false
	}
	dims = make([]int, rank)
	for i := range dims {
		v := r.uvarint()
		if r.err != nil || v == 0 || v > compress.MaxElements {
			return nil, nil, false
		}
		dims[i] = int(v)
	}
	crcs = make([]uint32, chunks)
	for c := 0; c < chunks; c++ {
		r.uvarint() // stored CRC: framing only, deliberately not trusted
		payload := r.bytes()
		if r.err != nil {
			return nil, nil, false
		}
		crcs[c] = chunkCRC(c, payload)
	}
	if r.pos != len(r.buf) {
		return nil, nil, false
	}
	return dims, crcs, true
}

// chunkCRC is the per-record checksum: CRC32 (IEEE) over the chunk's index
// as a little-endian uint32, then its archive bytes. Seeding with the index
// makes duplicated, reordered, or spliced records fail validation — a plain
// content CRC would accept chunk 3's intact record sitting at slot 1 and
// silently scramble the field.
func chunkCRC(idx int, archive []byte) uint32 {
	var le [4]byte
	binary.LittleEndian.PutUint32(le[:], uint32(idx))
	return crc32.Update(crc32.ChecksumIEEE(le[:]), crc32.IEEETable, archive)
}

// chunkedDecode parses and decodes an LRMC archive on a resolved worker
// budget. In strict mode (degraded == false) the first failure aborts; in
// degraded mode every chunk is attempted, failures are reported per chunk,
// and the surviving chunks' regions are returned (failed regions stay
// zero). A container header too damaged to frame any chunk fails outright
// in both modes, as does a canceled ctx — cancellation is checked at every
// chunk boundary and reported as compress.ErrCanceled, never as a chunk
// failure.
func chunkedDecode(ctx context.Context, archive []byte, workers int, degraded bool) (*Partial, error) {
	ctx, sp := trace.Start(ctx, "core.decompress_chunked")
	defer sp.End()
	r := &reader{buf: archive}
	if string(r.take(4)) != chunkedMagic {
		if len(archive) < 4 {
			return nil, fmt.Errorf("core: truncated chunked magic: %w", compress.ErrTruncated)
		}
		return nil, fmt.Errorf("core: bad chunked magic: %w", compress.ErrHeader)
	}
	chunks := int(r.uvarint())
	rank := int(r.byte())
	if r.err != nil {
		return nil, fmt.Errorf("core: corrupt chunked header: %w", r.err)
	}
	if rank < 1 || rank > 3 || chunks < 1 {
		return nil, fmt.Errorf("core: implausible chunked header (rank %d, chunks %d): %w",
			rank, chunks, compress.ErrHeader)
	}
	dims := make([]int, rank)
	total := uint64(1)
	for i := range dims {
		v := r.uvarint()
		if r.err != nil {
			return nil, fmt.Errorf("core: corrupt chunked header: %w", r.err)
		}
		if v == 0 || v > compress.MaxElements {
			return nil, fmt.Errorf("core: bad chunked dims: %w", compress.ErrHeader)
		}
		dims[i] = int(v)
		total *= v
	}
	// Bound the product, not just each extent: dims like {2^28, 2^28, 2^28}
	// pass the per-extent check but would demand an absurd allocation (or,
	// without grid's overflow guard, wrap int and panic downstream).
	if total > compress.MaxElements {
		return nil, fmt.Errorf("core: chunked dims %v claim %d elements (max %d): %w",
			dims, total, compress.MaxElements, compress.ErrHeader)
	}
	if chunks > dims[0] {
		return nil, fmt.Errorf("core: %d chunks exceed leading extent %d: %w",
			chunks, dims[0], compress.ErrHeader)
	}

	// Parse the chunk records. A CRC mismatch poisons only its chunk, but a
	// framing failure (truncated or unparseable record) poisons every chunk
	// from that point on: record boundaries are no longer trustable.
	type record struct {
		archive []byte
		err     error
	}
	recs := make([]record, chunks)
	trailing := 0
	framingOK := true
	for c := 0; c < chunks && framingOK; c++ {
		wantCRC := uint32(r.uvarint())
		chunkArchive := r.bytes()
		if r.err != nil {
			err := fmt.Errorf("core: truncated chunk %d: %w", c, r.err)
			if !degraded {
				return nil, err
			}
			for i := c; i < chunks; i++ {
				recs[i] = record{err: err}
			}
			framingOK = false
			break
		}
		if chunkCRC(c, chunkArchive) != wantCRC {
			err := fmt.Errorf("core: chunk %d failed CRC validation: %w", c, compress.ErrCorrupt)
			if !degraded {
				return nil, err
			}
			recs[c] = record{err: err}
			continue
		}
		recs[c] = record{archive: chunkArchive}
	}
	if framingOK && r.pos != len(r.buf) {
		trailing = len(r.buf) - r.pos
		if !degraded {
			return nil, fmt.Errorf("core: %d trailing bytes after chunks: %w", trailing, compress.ErrCorrupt)
		}
	}

	// The output allocation is bounded by what the archive could
	// legitimately back: SZ's worst double-compressed expansion stays under
	// 2^16 elements per archive byte by a wide margin.
	if err := compress.CheckedAlloc("core: chunked field", total, uint64(len(archive))<<16, 8); err != nil {
		return nil, err
	}
	out, err := grid.NewChecked(dims...)
	if err != nil {
		return nil, fmt.Errorf("core: %v: %w", err, compress.ErrHeader)
	}
	slab := 1
	for _, d := range dims[1:] {
		slab *= d
	}

	// Divide the budget like CompressChunked: chunk-level concurrency
	// first, leftover capacity to each chunk's codec-internal kernels.
	running := min(workers, chunks)
	inner := max(1, workers/running)
	errs := make([]error, chunks)
	parallel.ForCtx(ctx, workers, chunks, func(ctx context.Context, c int) {
		// Same chunk-boundary cancellation contract as CompressChunkedCtx: a
		// canceled request stops scheduling chunk decodes instead of running
		// every remaining record at full CPU.
		if err := ctx.Err(); err != nil {
			errs[c] = err
			return
		}
		ctx, restore := trace.WithLabels(ctx, "stage", "chunk_decode", "chunk", strconv.Itoa(c))
		defer restore()
		cctx, csp := trace.Start(ctx, "core.chunk_decode")
		defer csp.End()
		if recs[c].err != nil {
			csp.SetError(recs[c].err)
			errs[c] = recs[c].err
			return
		}
		// Chunk records are always single archives (CompressChunked stores
		// Compress output); refusing nested containers here keeps a hostile
		// archive from driving recursive header-sized allocations.
		f, err := decompressSingle(cctx, recs[c].archive, inner)
		if err != nil {
			csp.SetError(err)
			errs[c] = err
			return
		}
		lo, hi := mpi.Slab1D(dims[0], chunks, c)
		if f.Dims[0] != hi-lo || f.Len() != (hi-lo)*slab {
			errs[c] = fmt.Errorf("chunk shape %v does not fit slab [%d,%d): %w",
				f.Dims, lo, hi, compress.ErrCorrupt)
			csp.SetError(errs[c])
			return
		}
		copy(out.Data[lo*slab:hi*slab], f.Data)
		csp.SetBytes(int64(len(recs[c].archive)), int64(8*f.Len()))
	})

	// Cancellation outranks both modes: a canceled decode says nothing about
	// the archive, so returning a half-zeroed Partial (degraded) or blaming a
	// chunk (strict) would misreport client disconnects as data loss.
	if err := ctx.Err(); err != nil {
		werr := fmt.Errorf("core: chunked decode: %w: %w", compress.ErrCanceled, err)
		sp.SetError(werr)
		return nil, werr
	}

	if sp != nil {
		sp.AddItems(int64(chunks))
		sp.SetBytes(int64(len(archive)), int64(8*out.Len()))
		failed := int64(0)
		for _, err := range errs {
			if err != nil {
				failed++
			}
		}
		obsChunksDecoded.Add(int64(chunks) - failed)
		obsChunkErrors.Add(failed)
	}

	p := &Partial{Field: out, Chunks: chunks, Trailing: trailing}
	for c, err := range errs {
		if err == nil {
			continue
		}
		if !degraded {
			werr := fmt.Errorf("core: chunk %d: %w", c, err)
			sp.SetError(werr)
			return nil, werr
		}
		lo, hi := mpi.Slab1D(dims[0], chunks, c)
		p.Errors = append(p.Errors, ChunkError{Chunk: c, Lo: lo, Hi: hi, Err: compress.Classify(err)})
	}
	return p, nil
}

package core

import (
	"fmt"

	"lrm/internal/grid"
	"lrm/internal/reduce"
)

// Candidate pairs a model (nil = direct compression) with a label.
type Candidate struct {
	Label string
	Model reduce.Model
}

// DefaultCandidates returns the selection pool: direct compression, the
// projection models, and the dimension-reduction models.
func DefaultCandidates() []Candidate {
	return []Candidate{
		{Label: "direct", Model: nil},
		{Label: "one-base", Model: reduce.OneBase{}},
		{Label: "multi-base", Model: reduce.MultiBase{Blocks: 4}},
		{Label: "duomodel", Model: reduce.DuoModel{Factor: 4}},
		{Label: "pca", Model: reduce.PCA{}},
		{Label: "svd", Model: reduce.SVD{}},
		{Label: "wavelet", Model: reduce.Wavelet{}},
	}
}

// SelectionResult records one candidate's outcome during model selection.
type SelectionResult struct {
	Label string
	Ratio float64
	Err   error
}

// SelectModel implements the paper's second future-work direction: no
// single reduced model wins on every dataset, so try each candidate and
// pick the one with the best compression ratio. Candidates that fail
// (e.g. a model that cannot handle the field's shape) are skipped and
// reported in the results.
func SelectModel(f *grid.Field, candidates []Candidate, opts Options) (best Candidate, results []SelectionResult, err error) {
	if opts.DataCodec == nil {
		return Candidate{}, nil, fmt.Errorf("core: DataCodec is required")
	}
	bestRatio := -1.0
	found := false
	for _, cand := range candidates {
		o := opts
		o.Model = cand.Model
		res, cerr := Compress(f, o)
		if cerr != nil {
			results = append(results, SelectionResult{Label: cand.Label, Err: cerr})
			continue
		}
		ratio := res.Ratio()
		results = append(results, SelectionResult{Label: cand.Label, Ratio: ratio})
		if ratio > bestRatio {
			bestRatio = ratio
			best = cand
			found = true
		}
	}
	if !found {
		return Candidate{}, results, fmt.Errorf("core: every candidate failed")
	}
	return best, results, nil
}

package core

import (
	"testing"

	"lrm/internal/compress/fpc"
	"lrm/internal/compress/sz"
	"lrm/internal/compress/zfp"
	"lrm/internal/grid"
	"lrm/internal/reduce"
)

// FuzzDecompress asserts the archive parser never panics on arbitrary
// bytes: it must either decode cleanly or return an error. The seed corpus
// contains one valid archive per container format and codec family.
func FuzzDecompress(f *testing.F) {
	field := grid.New(8, 8)
	for i := range field.Data {
		field.Data[i] = float64(i%13) * 0.5
	}
	seeds := [][]byte{}
	for _, opts := range []Options{
		{DataCodec: zfp.MustNew(12)},
		{DataCodec: sz.MustNew(sz.Abs, 1e-3)},
		{DataCodec: fpc.MustNew(8)},
		{Model: reduce.OneBase{}, DataCodec: zfp.MustNew(12)},
		{Model: reduce.PCA{}, DataCodec: sz.MustNew(sz.Abs, 1e-3)},
	} {
		res, err := Compress(field, opts)
		if err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, res.Archive)
	}
	if chunked, err := CompressChunked(field, Options{DataCodec: zfp.MustNew(8)}, 2); err == nil {
		seeds = append(seeds, chunked.Archive)
	}
	if series, err := CompressSeries([]*grid.Field{field, field}, Options{DataCodec: zfp.MustNew(8)}); err == nil {
		seeds = append(seeds, series.Archive)
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must not panic; errors are fine.
		if out, err := Decompress(data); err == nil && out != nil {
			if out.Len() == 0 || out.Len() > 1<<24 {
				t.Fatalf("implausible decode length %d", out.Len())
			}
		}
		_, _ = DecompressSeries(data)
	})
}

package core

import (
	"math"
	"strings"
	"testing"

	"lrm/internal/compress/fpc"
	"lrm/internal/compress/zfp"
	"lrm/internal/grid"
	"lrm/internal/reduce"
	"lrm/internal/stats"
)

func TestChunkedRoundTrip(t *testing.T) {
	f := heatField(t)
	for _, chunks := range []int{1, 2, 3, 4, 7} {
		for _, m := range []reduce.Model{nil, reduce.OneBase{}, reduce.PCA{}} {
			res, err := CompressChunked(f, Options{
				Model: m, DataCodec: zfp.MustNew(24), DeltaCodec: zfp.MustNew(16),
			}, chunks)
			if err != nil {
				t.Fatalf("chunks=%d model=%s: %v", chunks, modelName(m), err)
			}
			dec, err := Decompress(res.Archive)
			if err != nil {
				t.Fatalf("chunks=%d model=%s: %v", chunks, modelName(m), err)
			}
			if len(dec.Dims) != len(f.Dims) || dec.Dims[0] != f.Dims[0] {
				t.Fatalf("chunks=%d: dims %v != %v", chunks, dec.Dims, f.Dims)
			}
			if e := stats.MaxAbsError(f.Data, dec.Data); e > 2e-2 {
				t.Fatalf("chunks=%d model=%s: error %v", chunks, modelName(m), e)
			}
		}
	}
}

func TestChunkedLosslessExact(t *testing.T) {
	f := heatField(t)
	res, err := CompressChunked(f, Options{DataCodec: fpc.MustNew(10)}, 4)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decompress(res.Archive)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Data {
		if math.Float64bits(dec.Data[i]) != math.Float64bits(f.Data[i]) {
			t.Fatalf("lossless chunked round trip broke at %d", i)
		}
	}
}

func TestChunkedAccounting(t *testing.T) {
	f := heatField(t)
	res, err := CompressChunked(f, Options{
		Model: reduce.OneBase{}, DataCodec: zfp.MustNew(16), DeltaCodec: zfp.MustNew(8),
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.OriginalBytes != 8*f.Len() {
		t.Fatalf("OriginalBytes = %d", res.OriginalBytes)
	}
	// Four chunks, each with a rep and delta.
	if res.RepBytes() == 0 || res.DeltaBytes == 0 {
		t.Fatalf("missing accounting: %+v", res)
	}
	if res.Ratio() <= 1 {
		t.Fatalf("ratio = %v", res.Ratio())
	}
}

func TestChunkedValidation(t *testing.T) {
	f := grid.New(4, 4)
	opts := Options{DataCodec: zfp.MustNew(8)}
	if _, err := CompressChunked(f, opts, 0); err == nil {
		t.Fatal("expected chunks=0 rejection")
	}
	if _, err := CompressChunked(f, opts, 5); err == nil {
		t.Fatal("expected chunks>extent rejection")
	}
	if _, err := CompressChunked(f, Options{}, 2); err == nil {
		t.Fatal("expected missing-codec rejection")
	}
}

func TestChunkedCRCDetectsCorruption(t *testing.T) {
	f := heatField(t)
	res, err := CompressChunked(f, Options{DataCodec: zfp.MustNew(16)}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the chunk payloads (past the header).
	for _, pos := range []int{len(res.Archive) / 2, len(res.Archive) - 1} {
		bad := append([]byte(nil), res.Archive...)
		bad[pos] ^= 0x40
		_, err := Decompress(bad)
		if err == nil {
			t.Fatalf("corruption at %d not detected", pos)
		}
		if !strings.Contains(err.Error(), "CRC") && !strings.Contains(err.Error(), "corrupt") &&
			!strings.Contains(err.Error(), "truncated") && !strings.Contains(err.Error(), "trailing") {
			t.Logf("corruption at %d detected via: %v", pos, err)
		}
	}
}

func TestChunkedTruncation(t *testing.T) {
	f := heatField(t)
	res, err := CompressChunked(f, Options{DataCodec: zfp.MustNew(12)}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(res.Archive); cut += 11 {
		if _, err := Decompress(res.Archive[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := Decompress(append(res.Archive, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestChunkedOneBaseActsLikeMultiBase(t *testing.T) {
	// One-base applied per chunk is the multi-base structure: per-sub-domain
	// bases. Its total rep must exceed the single-chunk one-base rep.
	f := heatField(t)
	opts := Options{Model: reduce.OneBase{}, DataCodec: zfp.MustNew(16), DeltaCodec: zfp.MustNew(8)}
	one, err := CompressChunked(f, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	four, err := CompressChunked(f, opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if four.RepBytes() <= one.RepBytes() {
		t.Fatalf("4-chunk rep (%d) should exceed 1-chunk rep (%d)", four.RepBytes(), one.RepBytes())
	}
}

func TestChunkedRank1(t *testing.T) {
	f := grid.New(1000)
	for i := range f.Data {
		f.Data[i] = math.Sin(float64(i) / 20)
	}
	res, err := CompressChunked(f, Options{DataCodec: zfp.MustNew(20)}, 8)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decompress(res.Archive)
	if err != nil {
		t.Fatal(err)
	}
	if e := stats.MaxAbsError(f.Data, dec.Data); e > 1e-3 {
		t.Fatalf("rank-1 chunked error %v", e)
	}
}

// TestCodecFamily pins the pprof codec-label reduction: parameters are
// stripped so label cardinality stays at the codec-family count.
func TestCodecFamily(t *testing.T) {
	cases := map[string]string{
		"sz(abs=1e-3)":      "sz",
		"zfp(precision=16)": "zfp",
		"fpc":               "fpc",
		"":                  "",
	}
	for in, want := range cases {
		if got := codecFamily(in); got != want {
			t.Errorf("codecFamily(%q) = %q, want %q", in, got, want)
		}
	}
}

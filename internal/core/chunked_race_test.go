package core

import (
	"sync"
	"testing"

	"lrm/internal/compress/fpc"
	"lrm/internal/compress/zfp"
	"lrm/internal/reduce"
	"lrm/internal/stats"
)

// Race-detector stress tests for the chunked pipeline: chunk workers run
// one goroutine per chunk, and nothing in the pipeline may share mutable
// state, so whole compress/decompress cycles must also be safe to run
// concurrently against a shared read-only field.

func TestChunkedConcurrentPipelines(t *testing.T) {
	f := heatField(t)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			opts := Options{Model: reduce.OneBase{}, DataCodec: zfp.MustNew(24), DeltaCodec: zfp.MustNew(16)}
			if id%2 == 1 {
				opts = Options{DataCodec: fpc.MustNew(12)}
			}
			chunks := 2 + id%5
			res, err := CompressChunked(f, opts, chunks)
			if err != nil {
				t.Errorf("worker %d: compress: %v", id, err)
				return
			}
			dec, err := Decompress(res.Archive)
			if err != nil {
				t.Errorf("worker %d: decompress: %v", id, err)
				return
			}
			if e := stats.MaxAbsError(f.Data, dec.Data); e > 2e-2 {
				t.Errorf("worker %d: error %v", id, e)
			}
		}(w)
	}
	wg.Wait()
}

func TestChunkedConcurrentDecompressSharedArchive(t *testing.T) {
	f := heatField(t)
	res, err := CompressChunked(f, Options{Model: reduce.PCA{}, DataCodec: zfp.MustNew(24), DeltaCodec: zfp.MustNew(16)}, 6)
	if err != nil {
		t.Fatal(err)
	}
	const readers = 10
	var wg sync.WaitGroup
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			dec, err := Decompress(res.Archive)
			if err != nil {
				t.Errorf("reader %d: %v", id, err)
				return
			}
			if e := stats.MaxAbsError(f.Data, dec.Data); e > 2e-2 {
				t.Errorf("reader %d: error %v", id, e)
			}
		}(w)
	}
	wg.Wait()
}

package core

import (
	"testing"

	"lrm/internal/compress"
	"lrm/internal/sim/heat3d"
)

// TestChunkCRCsContentAddress pins the contract internal/serve's response
// cache depends on: ChunkCRCs frames a valid container, recomputes CRCs
// over actual payload bytes (so a payload flip changes the address even
// though the stored CRC field did not), and refuses anything that is not a
// cleanly framed LRMC container.
func TestChunkCRCsContentAddress(t *testing.T) {
	f := heat3d.Solve(heat3d.Default(12))
	res, err := CompressChunked(f, Options{DataCodec: compress.NewFlate(6)}, 4)
	if err != nil {
		t.Fatalf("CompressChunked: %v", err)
	}

	dims, crcs, ok := ChunkCRCs(res.Archive)
	if !ok {
		t.Fatal("ChunkCRCs rejected a valid container")
	}
	if len(dims) != 3 || dims[0] != 12 {
		t.Fatalf("dims = %v", dims)
	}
	if len(crcs) != 4 {
		t.Fatalf("len(crcs) = %d, want 4", len(crcs))
	}

	// Flip one payload byte near the end (inside the last chunk's record,
	// past its CRC and length fields): the recomputed address must change.
	mut := append([]byte(nil), res.Archive...)
	mut[len(mut)-3] ^= 0xFF
	_, mcrcs, ok := ChunkCRCs(mut)
	if !ok {
		t.Fatal("ChunkCRCs rejected a framed container with a payload flip")
	}
	same := true
	for i := range crcs {
		if crcs[i] != mcrcs[i] {
			same = false
		}
	}
	if same {
		t.Fatal("payload flip did not change any chunk CRC: the address trusts stored fields")
	}

	// Non-containers and damaged framing must report ok=false.
	if _, _, ok := ChunkCRCs(nil); ok {
		t.Error("nil accepted")
	}
	if _, _, ok := ChunkCRCs([]byte("LRM1whatever")); ok {
		t.Error("single-shot magic accepted")
	}
	if _, _, ok := ChunkCRCs(res.Archive[:len(res.Archive)/2]); ok {
		t.Error("truncated container accepted")
	}
	if _, _, ok := ChunkCRCs(append(append([]byte(nil), res.Archive...), 0xAA)); ok {
		t.Error("trailing garbage accepted")
	}
}

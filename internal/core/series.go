package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"

	"lrm/internal/compress"
	"lrm/internal/grid"
	"lrm/internal/obs/trace"
	"lrm/internal/parallel"
)

// seriesMagic marks the time-series container format.
const seriesMagic = "LRMS"

// SeriesResult is the outcome of CompressSeries.
type SeriesResult struct {
	// Archive is the self-describing multi-frame container.
	Archive []byte
	// OriginalBytes is the total raw size across frames.
	OriginalBytes int
	// FrameBytes records each stored frame's compressed size.
	FrameBytes []int
}

// Ratio returns the whole-series compression ratio.
func (r *SeriesResult) Ratio() float64 {
	if len(r.Archive) == 0 {
		return 0
	}
	return float64(r.OriginalBytes) / float64(len(r.Archive))
}

// CompressSeries compresses a simulation output time series using the
// previous frame as the reduced model: frame 0 goes through the normal
// pipeline (with opts.Model, if any), and every later frame stores only its
// delta against the previous frame's *reconstruction*, compressed with the
// delta codec. This is the temporal cousin of the paper's spatial reduced
// models — successive outputs of a simulation are themselves highly similar
// (the delta-snapshot idea the paper's introduction cites), so the temporal
// delta is small and smooth.
//
// Computing each delta against the previous reconstruction (not the
// previous original) stops quantisation error from accumulating across
// frames: every frame's error is bounded by a single delta-codec pass.
//
// Note that even with a lossless delta codec the series is only
// near-exact, not bit-exact: (f - prev) + prev re-rounds in floating
// point. Use per-frame Compress when bit-exactness matters.
func CompressSeries(snaps []*grid.Field, opts Options) (*SeriesResult, error) {
	return CompressSeriesCtx(context.Background(), snaps, opts)
}

// CompressSeriesCtx is CompressSeries with trace propagation: every frame's
// pipeline spans nest under one core.compress_series root.
func CompressSeriesCtx(ctx context.Context, snaps []*grid.Field, opts Options) (res *SeriesResult, err error) {
	ctx, sp := trace.Start(ctx, "core.compress_series")
	defer sp.End()
	defer func() { sp.SetError(err) }()
	if len(snaps) == 0 {
		return nil, errors.New("core: empty series")
	}
	if opts.DataCodec == nil {
		return nil, errors.New("core: DataCodec is required")
	}
	deltaCodec := opts.DeltaCodec
	if deltaCodec == nil {
		deltaCodec = opts.DataCodec
	}

	var buf bytes.Buffer
	buf.WriteString(seriesMagic)
	writeUvarint(&buf, uint64(len(snaps)))
	writeString(&buf, codecBase(deltaCodec.Name()))

	res = &SeriesResult{}

	// Frame 0: the full pipeline.
	first, err := CompressCtx(ctx, snaps[0], opts)
	if err != nil {
		return nil, fmt.Errorf("core: series frame 0: %w", err)
	}
	writeBytes(&buf, first.Archive)
	res.FrameBytes = append(res.FrameBytes, len(first.Archive))
	res.OriginalBytes += 8 * snaps[0].Len()

	// The rolling reconstruction the decoder will hold.
	prev, err := DecompressCtx(ctx, first.Archive)
	if err != nil {
		return nil, fmt.Errorf("core: series frame 0 verify: %w", err)
	}

	for i := 1; i < len(snaps); i++ {
		f := snaps[i]
		res.OriginalBytes += 8 * f.Len()
		delta, err := f.Sub(prev)
		if err != nil {
			return nil, fmt.Errorf("core: series frame %d: %w", i, err)
		}
		stream, err := compress.CompressCtx(ctx, deltaCodec, delta)
		if err != nil {
			return nil, fmt.Errorf("core: series frame %d: %w", i, err)
		}
		writeBytes(&buf, stream)
		res.FrameBytes = append(res.FrameBytes, len(stream))

		// Advance the rolling reconstruction exactly as the decoder will.
		dhat, err := compress.DecompressCtx(ctx, deltaCodec, stream)
		if err != nil {
			return nil, fmt.Errorf("core: series frame %d verify: %w", i, err)
		}
		if err := prev.AddInPlace(dhat); err != nil {
			return nil, err
		}
	}
	res.Archive = buf.Bytes()
	sp.SetBytes(int64(res.OriginalBytes), int64(len(res.Archive)))
	sp.AddItems(int64(len(snaps)))
	return res, nil
}

// DecompressSeries reverses CompressSeries, returning every frame.
// Failures wrap compress.ErrTruncated / compress.ErrCorrupt.
func DecompressSeries(archive []byte) ([]*grid.Field, error) {
	return DecompressSeriesCtx(context.Background(), archive)
}

// DecompressSeriesCtx is DecompressSeries with trace propagation.
func DecompressSeriesCtx(ctx context.Context, archive []byte) ([]*grid.Field, error) {
	ctx, sp := trace.Start(ctx, "core.decompress_series")
	defer sp.End()
	frames, err := decompressSeries(ctx, archive)
	if err != nil {
		err = compress.Classify(err)
		sp.SetError(err)
		return nil, err
	}
	sp.AddItems(int64(len(frames)))
	return frames, nil
}

func decompressSeries(ctx context.Context, archive []byte) ([]*grid.Field, error) {
	r := &reader{buf: archive}
	if string(r.take(4)) != seriesMagic {
		if len(archive) < 4 {
			return nil, fmt.Errorf("core: truncated series magic: %w", compress.ErrTruncated)
		}
		return nil, fmt.Errorf("core: bad series magic: %w", compress.ErrHeader)
	}
	count := int(r.uvarint())
	deltaCodecName := r.string()
	if r.err != nil {
		return nil, fmt.Errorf("core: corrupt series header: %w", r.err)
	}
	if count < 1 || count > 1<<24 {
		return nil, fmt.Errorf("core: implausible frame count %d: %w", count, compress.ErrHeader)
	}
	// Every stored frame costs at least one byte, so a tiny archive cannot
	// claim a frame-slice allocation it could never fill.
	if err := compress.CheckedAlloc("core: series frames", uint64(count), uint64(len(archive)), 8); err != nil {
		return nil, err
	}
	workers := parallel.Config{}.Resolve()
	deltaDecode, err := decoderFor(deltaCodecName, workers)
	if err != nil {
		return nil, err
	}

	frames := make([]*grid.Field, 0, count)
	firstArchive := r.bytes()
	if r.err != nil {
		return nil, fmt.Errorf("core: truncated series frame 0: %w", r.err)
	}
	cur, err := decompress(ctx, firstArchive, workers)
	if err != nil {
		return nil, fmt.Errorf("core: series frame 0: %w", err)
	}
	frames = append(frames, cur.Clone())

	for i := 1; i < count; i++ {
		stream := r.bytes()
		if r.err != nil {
			return nil, fmt.Errorf("core: truncated series frame %d: %w", i, r.err)
		}
		delta, err := deltaDecode(ctx, stream)
		if err != nil {
			return nil, fmt.Errorf("core: series frame %d: %w", i, err)
		}
		if err := cur.AddInPlace(delta); err != nil {
			return nil, fmt.Errorf("core: series frame %d: %w", i, compress.Classify(err))
		}
		frames = append(frames, cur.Clone())
	}
	if r.pos != len(r.buf) {
		return nil, fmt.Errorf("core: %d trailing bytes after series: %w", len(r.buf)-r.pos, compress.ErrCorrupt)
	}
	return frames, nil
}

package core

import (
	"context"
	"fmt"

	"lrm/internal/compress"
	"lrm/internal/grid"
)

// ChunkError reports one failed chunk of a degraded-mode chunked
// decompression, with the leading-dimension slab it covers so callers know
// exactly which region of the field is unrecovered.
type ChunkError struct {
	Chunk  int   // chunk index in the container
	Lo, Hi int   // leading-dimension slab [Lo, Hi) the chunk covers
	Err    error // wraps compress.ErrTruncated or compress.ErrCorrupt
}

// Error implements the error interface.
func (e ChunkError) Error() string {
	return fmt.Sprintf("chunk %d (rows [%d,%d)): %v", e.Chunk, e.Lo, e.Hi, e.Err)
}

// Unwrap exposes the underlying decode error for errors.Is.
func (e ChunkError) Unwrap() error { return e.Err }

// Partial is the outcome of a degraded-mode chunked decompression: the
// field with every surviving chunk's region filled in (failed regions stay
// zero) plus a per-chunk error report.
type Partial struct {
	// Field has the container's full dims; regions listed in Errors are
	// zero-filled.
	Field *grid.Field
	// Errors lists the chunks that failed to decode, in chunk order.
	Errors []ChunkError
	// Chunks is the container's total chunk count.
	Chunks int
	// Trailing counts garbage bytes found after the last chunk record
	// (tolerated in degraded mode, an error in strict mode).
	Trailing int
}

// Complete reports whether every chunk decoded and no trailing bytes were
// found — i.e. whether strict Decompress would have succeeded.
func (p *Partial) Complete() bool { return len(p.Errors) == 0 && p.Trailing == 0 }

// DecompressChunkedPartial is the degraded-mode counterpart of Decompress
// for LRMC archives: instead of failing fast on the first bad chunk, it
// decodes every chunk that survives CRC validation and reports the failures
// per chunk, so a partially corrupted archive still yields the intact
// subdomains (the per-rank recovery story of the paper's Table IV runs —
// one rank's bad chunk should not discard every other rank's data).
//
// An error is returned only when the container header itself is too damaged
// to frame any chunk; per-chunk failures land in Partial.Errors.
func DecompressChunkedPartial(archive []byte) (*Partial, error) {
	return DecompressChunkedPartialWithOpts(archive, DecompressOpts{})
}

// DecompressChunkedPartialCtx is DecompressChunkedPartial with trace
// propagation.
func DecompressChunkedPartialCtx(ctx context.Context, archive []byte) (*Partial, error) {
	return DecompressChunkedPartialWithOptsCtx(ctx, archive, DecompressOpts{})
}

// DecompressChunkedPartialWithOpts is DecompressChunkedPartial with an
// explicit worker budget.
func DecompressChunkedPartialWithOpts(archive []byte, opts DecompressOpts) (*Partial, error) {
	return DecompressChunkedPartialWithOptsCtx(context.Background(), archive, opts)
}

// DecompressChunkedPartialWithOptsCtx is the fully-explicit variant: worker
// budget plus trace propagation. Failed chunks' spans carry their decode
// error, so a degraded recovery always lands in the trace ring's errored
// pool. ctx is consulted at every chunk boundary: once canceled, remaining
// chunks are skipped and the call fails with an error wrapping
// compress.ErrCanceled (degraded mode does not apply to cancellation — a
// client disconnect is not data loss).
func DecompressChunkedPartialWithOptsCtx(ctx context.Context, archive []byte, opts DecompressOpts) (*Partial, error) {
	p, err := chunkedDecode(ctx, archive, opts.Parallel.Resolve(), true)
	if err != nil {
		return nil, compress.Classify(err)
	}
	return p, nil
}

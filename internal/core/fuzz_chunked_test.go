package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"lrm/internal/compress"
	"lrm/internal/compress/fpc"
	"lrm/internal/compress/sz"
	"lrm/internal/compress/zfp"
	"lrm/internal/grid"
	"lrm/internal/reduce"
)

// chunkedFuzzSeeds builds the seed archives for FuzzDecompressChunked: valid
// chunked containers across codecs and models, plus hostile headers that
// previously reached allocation sites (the dims-bomb reproducers).
func chunkedFuzzSeeds(tb testing.TB) [][]byte {
	field := grid.New(16, 6)
	for i := range field.Data {
		field.Data[i] = float64(i%11) * 0.25
	}
	var seeds [][]byte
	for _, tc := range []struct {
		opts   Options
		chunks int
	}{
		{Options{DataCodec: zfp.MustNew(12)}, 3},
		{Options{DataCodec: sz.MustNew(sz.Abs, 1e-3)}, 2},
		{Options{DataCodec: fpc.MustNew(8)}, 4},
		{Options{Model: reduce.OneBase{}, DataCodec: zfp.MustNew(12)}, 2},
	} {
		res, err := CompressChunked(field, tc.opts, tc.chunks)
		if err != nil {
			tb.Fatal(err)
		}
		seeds = append(seeds, res.Archive)
	}
	// Hostile headers: dims whose product wraps uint64 or vastly exceeds
	// MaxElements while each extent stays individually plausible-looking.
	for _, dims := range [][]uint64{
		{1 << 32, 1, 1},
		{1 << 32, 1 << 32, 1 << 32},
	} {
		seeds = append(seeds, hostileChunkedArchive(dims))
	}
	return seeds
}

// FuzzDecompressChunked drives the LRMC container parser — both the
// fail-fast and the degraded-mode path — with arbitrary bytes. The decode
// contract: never panic, and every failure wraps compress.ErrCorrupt or
// compress.ErrTruncated.
func FuzzDecompressChunked(f *testing.F) {
	for _, s := range chunkedFuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if _, err := Decompress(data); err != nil {
			if !errors.Is(err, compress.ErrCorrupt) && !errors.Is(err, compress.ErrTruncated) {
				t.Fatalf("unclassified strict-decode error: %v", err)
			}
		}
		p, err := DecompressChunkedPartial(data)
		if err != nil {
			if !errors.Is(err, compress.ErrCorrupt) && !errors.Is(err, compress.ErrTruncated) {
				t.Fatalf("unclassified partial-decode error: %v", err)
			}
			return
		}
		if p.Field == nil {
			t.Fatal("partial decode returned nil field without error")
		}
		for _, ce := range p.Errors {
			if !errors.Is(ce.Err, compress.ErrCorrupt) && !errors.Is(ce.Err, compress.ErrTruncated) {
				t.Fatalf("unclassified chunk error: %v", ce)
			}
			if ce.Lo < 0 || ce.Hi > p.Field.Dims[0] || ce.Lo >= ce.Hi {
				t.Fatalf("chunk %d reports bogus row range [%d,%d)", ce.Chunk, ce.Lo, ce.Hi)
			}
		}
	})
}

// TestGenerateChunkedFuzzCorpus regenerates the checked-in seed corpus for
// FuzzDecompressChunked; set LRM_GEN_CORPUS=1 after an intentional format
// change.
func TestGenerateChunkedFuzzCorpus(t *testing.T) {
	if os.Getenv("LRM_GEN_CORPUS") == "" {
		t.Skip("set LRM_GEN_CORPUS=1 to regenerate the fuzz seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzDecompressChunked")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, s := range chunkedFuzzSeeds(t) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", s)
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

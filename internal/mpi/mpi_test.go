package mpi

import (
	"math"
	"sync/atomic"
	"testing"
)

func TestWorldSizeAndRanks(t *testing.T) {
	w := NewWorld(4)
	if w.Size() != 4 {
		t.Fatalf("Size = %d", w.Size())
	}
	var seen [4]int32
	w.Run(func(c *Comm) {
		if c.Size() != 4 {
			t.Errorf("comm size = %d", c.Size())
		}
		atomic.AddInt32(&seen[c.Rank()], 1)
	})
	for r, n := range seen {
		if n != 1 {
			t.Fatalf("rank %d ran %d times", r, n)
		}
	}
}

func TestSendRecvBasic(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []float64{1, 2, 3})
		} else {
			got := c.Recv(0, 7)
			if len(got) != 3 || got[2] != 3 {
				t.Errorf("recv = %v", got)
			}
		}
	})
}

func TestSendCopiesBuffer(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			buf := []float64{42}
			c.Send(1, 0, buf)
			buf[0] = -1 // must not affect the message
			c.Barrier()
		} else {
			c.Barrier()
			if got := c.Recv(0, 0); got[0] != 42 {
				t.Errorf("send did not copy: got %v", got[0])
			}
		}
	})
}

func TestTagMatchingOutOfOrder(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []float64{1})
			c.Send(1, 2, []float64{2})
			c.Send(1, 3, []float64{3})
		} else {
			// Receive in reverse tag order; matching must hold.
			if v := c.Recv(0, 3); v[0] != 3 {
				t.Errorf("tag 3 = %v", v)
			}
			if v := c.Recv(0, 1); v[0] != 1 {
				t.Errorf("tag 1 = %v", v)
			}
			if v := c.Recv(0, 2); v[0] != 2 {
				t.Errorf("tag 2 = %v", v)
			}
		}
	})
}

func TestSameTagOrderingPreserved(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < 10; i++ {
				c.Send(1, 5, []float64{float64(i)})
			}
		} else {
			for i := 0; i < 10; i++ {
				if v := c.Recv(0, 5); v[0] != float64(i) {
					t.Errorf("message %d out of order: %v", i, v[0])
				}
			}
		}
	})
}

func TestSendRecvExchange(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		partner := 1 - c.Rank()
		got := c.SendRecv(partner, 9, []float64{float64(c.Rank())})
		if got[0] != float64(partner) {
			t.Errorf("rank %d got %v", c.Rank(), got[0])
		}
	})
}

func TestBcast(t *testing.T) {
	w := NewWorld(8)
	w.Run(func(c *Comm) {
		var data []float64
		if c.Rank() == 3 {
			data = []float64{3.14, 2.71}
		}
		got := c.Bcast(3, data)
		if len(got) != 2 || got[0] != 3.14 || got[1] != 2.71 {
			t.Errorf("rank %d bcast = %v", c.Rank(), got)
		}
	})
}

func TestGather(t *testing.T) {
	w := NewWorld(5)
	w.Run(func(c *Comm) {
		parts := c.Gather(2, []float64{float64(c.Rank() * 10)})
		if c.Rank() == 2 {
			if len(parts) != 5 {
				t.Errorf("gather returned %d parts", len(parts))
				return
			}
			for r, p := range parts {
				if len(p) != 1 || p[0] != float64(r*10) {
					t.Errorf("part %d = %v", r, p)
				}
			}
		} else if parts != nil {
			t.Errorf("non-root rank %d got parts", c.Rank())
		}
	})
}

func TestAllreduce(t *testing.T) {
	w := NewWorld(6)
	w.Run(func(c *Comm) {
		sum := c.Allreduce(OpSum, []float64{1, float64(c.Rank())})
		if sum[0] != 6 {
			t.Errorf("sum[0] = %v, want 6", sum[0])
		}
		if sum[1] != 15 { // 0+1+...+5
			t.Errorf("sum[1] = %v, want 15", sum[1])
		}
		mx := c.Allreduce(OpMax, []float64{float64(c.Rank())})
		if mx[0] != 5 {
			t.Errorf("max = %v, want 5", mx[0])
		}
		mn := c.Allreduce(OpMin, []float64{float64(c.Rank())})
		if mn[0] != 0 {
			t.Errorf("min = %v, want 0", mn[0])
		}
	})
}

func TestBarrierSynchronises(t *testing.T) {
	w := NewWorld(4)
	var before, after int32
	w.Run(func(c *Comm) {
		atomic.AddInt32(&before, 1)
		c.Barrier()
		// After the barrier, every rank must have incremented.
		if atomic.LoadInt32(&before) != 4 {
			t.Errorf("barrier released early: before=%d", atomic.LoadInt32(&before))
		}
		atomic.AddInt32(&after, 1)
		c.Barrier()
		c.Barrier() // reusability
	})
	if after != 4 {
		t.Fatalf("after = %d", after)
	}
}

func TestRunPropagatesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic propagation")
		}
	}()
	// Single-rank world so no peer is left blocked.
	NewWorld(1).Run(func(c *Comm) { panic("boom") })
}

func TestHaloExchangePattern(t *testing.T) {
	// 1-D ring halo swap, the heat-solver pattern: each rank exchanges its
	// boundary value with both neighbours via paired SendRecv.
	const n = 5
	w := NewWorld(n)
	w.Run(func(c *Comm) {
		r := c.Rank()
		mine := []float64{float64(r)}
		if r > 0 {
			got := c.SendRecv(r-1, 0, mine)
			if got[0] != float64(r-1) {
				t.Errorf("rank %d left halo = %v", r, got[0])
			}
		}
		if r < n-1 {
			got := c.SendRecv(r+1, 0, mine)
			if got[0] != float64(r+1) {
				t.Errorf("rank %d right halo = %v", r, got[0])
			}
		}
	})
}

func TestCart3D(t *testing.T) {
	topo, err := NewCart3D(24, 2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 24; r++ {
		cx, cy, cz := topo.Coords(r)
		if topo.Rank(cx, cy, cz) != r {
			t.Fatalf("coords/rank not inverse at %d", r)
		}
	}
	if _, err := NewCart3D(24, 2, 3, 5); err == nil {
		t.Fatal("expected topology mismatch error")
	}
	// Neighbours.
	if n := topo.Neighbor(0, -1, 0, 0); n != -1 {
		t.Fatalf("boundary neighbour = %d, want -1", n)
	}
	if n := topo.Neighbor(0, 1, 0, 0); n != 1 {
		t.Fatalf("x+ neighbour = %d, want 1", n)
	}
	if n := topo.Neighbor(0, 0, 1, 0); n != 2 {
		t.Fatalf("y+ neighbour = %d, want 2", n)
	}
	if n := topo.Neighbor(0, 0, 0, 1); n != 6 {
		t.Fatalf("z+ neighbour = %d, want 6", n)
	}
}

func TestSlab1D(t *testing.T) {
	// Slabs must tile [0, n) exactly, in order, with sizes differing by <= 1.
	for _, tc := range [][2]int{{100, 7}, {64, 8}, {5, 5}, {3, 8}} {
		n, p := tc[0], tc[1]
		pos := 0
		minSz, maxSz := math.MaxInt32, 0
		for r := 0; r < p; r++ {
			lo, hi := Slab1D(n, p, r)
			if lo != pos {
				t.Fatalf("n=%d p=%d rank %d: lo=%d, want %d", n, p, r, lo, pos)
			}
			sz := hi - lo
			if sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
			pos = hi
		}
		if pos != n {
			t.Fatalf("n=%d p=%d: slabs cover %d", n, p, pos)
		}
		if maxSz-minSz > 1 {
			t.Fatalf("n=%d p=%d: imbalance %d vs %d", n, p, minSz, maxSz)
		}
	}
}

func TestAllreduceManyRanks(t *testing.T) {
	// Stress the collective fabric at the paper's reduced-model scale.
	const n = 64
	w := NewWorld(n)
	w.Run(func(c *Comm) {
		got := c.Allreduce(OpSum, []float64{1})
		if got[0] != n {
			t.Errorf("sum = %v, want %d", got[0], n)
		}
	})
}

package mpi

import (
	"testing"
)

func TestISendIRecvBasic(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			req := c.ISend(1, 5, []float64{1, 2, 3})
			if got := req.Wait(); got != nil {
				t.Errorf("ISend Wait returned data %v", got)
			}
		} else {
			req := c.IRecv(0, 5)
			got := req.Wait()
			if len(got) != 3 || got[2] != 3 {
				t.Errorf("IRecv = %v", got)
			}
		}
	})
}

func TestISendCopiesBuffer(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			buf := []float64{7}
			req := c.ISend(1, 0, buf)
			buf[0] = -1
			req.Wait()
		} else {
			if got := c.IRecv(0, 0).Wait(); got[0] != 7 {
				t.Errorf("ISend did not copy: %v", got[0])
			}
		}
	})
}

func TestIRecvDrainsPendingStash(t *testing.T) {
	// A blocking Recv for tag 2 stashes the tag-1 message; a later IRecv
	// must find it in the stash.
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []float64{11})
			c.Send(1, 2, []float64{22})
		} else {
			if got := c.Recv(0, 2); got[0] != 22 {
				t.Errorf("tag 2 = %v", got[0])
			}
			if got := c.IRecv(0, 1).Wait(); got[0] != 11 {
				t.Errorf("stashed tag 1 = %v", got[0])
			}
		}
	})
}

func TestOverlappedHaloExchange(t *testing.T) {
	// The overlap pattern nonblocking ops exist for: start all face sends
	// and receives, compute something, then wait.
	const n = 4
	w := NewWorld(n)
	w.Run(func(c *Comm) {
		r := c.Rank()
		var reqs []*Request
		if r > 0 {
			c.ISend(r-1, 0, []float64{float64(r)}).Wait()
			reqs = append(reqs, c.IRecv(r-1, 0))
		}
		if r < n-1 {
			c.ISend(r+1, 0, []float64{float64(r)}).Wait()
			reqs = append(reqs, c.IRecv(r+1, 0))
		}
		// "Interior work" happens here while messages are in flight.
		results := WaitAll(reqs)
		want := []float64{}
		if r > 0 {
			want = append(want, float64(r-1))
		}
		if r < n-1 {
			want = append(want, float64(r+1))
		}
		for i, res := range results {
			if res[0] != want[i] {
				t.Errorf("rank %d halo %d = %v, want %v", r, i, res[0], want[i])
			}
		}
	})
}

func TestScatter(t *testing.T) {
	w := NewWorld(4)
	w.Run(func(c *Comm) {
		var parts [][]float64
		if c.Rank() == 1 {
			parts = [][]float64{{0}, {10}, {20}, {30}}
		}
		got := c.Scatter(1, parts)
		if len(got) != 1 || got[0] != float64(10*c.Rank()) {
			t.Errorf("rank %d scatter = %v", c.Rank(), got)
		}
	})
}

func TestScatterGatherRoundTrip(t *testing.T) {
	w := NewWorld(3)
	w.Run(func(c *Comm) {
		var parts [][]float64
		if c.Rank() == 0 {
			parts = [][]float64{{1, 2}, {3, 4}, {5, 6}}
		}
		mine := c.Scatter(0, parts)
		back := c.Gather(0, mine)
		if c.Rank() == 0 {
			for r, p := range back {
				if p[0] != float64(2*r+1) || p[1] != float64(2*r+2) {
					t.Errorf("round trip part %d = %v", r, p)
				}
			}
		}
	})
}

func TestReduce(t *testing.T) {
	w := NewWorld(5)
	w.Run(func(c *Comm) {
		got := c.Reduce(2, OpSum, []float64{1, float64(c.Rank())})
		if c.Rank() == 2 {
			if got[0] != 5 || got[1] != 10 { // 0+1+2+3+4
				t.Errorf("reduce = %v", got)
			}
		} else if got != nil {
			t.Errorf("non-root got %v", got)
		}
	})
}

func TestISendValidation(t *testing.T) {
	w := NewWorld(1)
	w.Run(func(c *Comm) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for invalid rank")
			}
		}()
		c.ISend(5, 0, nil)
	})
}

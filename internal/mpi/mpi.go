// Package mpi provides an in-process message-passing runtime with the MPI
// collective semantics the paper's codes rely on: point-to-point send/recv,
// broadcast, gather, all-reduce, and barriers over a fixed set of ranks,
// each running in its own goroutine.
//
// The paper runs Heat3d on 512 MPI processors and Algorithm 1 broadcasts the
// mid-plane from the owning rank to all others before each rank computes its
// local deltas. This package reproduces those communication patterns
// faithfully at laptop scale: the code paths (who sends what to whom, and
// when ranks synchronise) are identical, only the transport is channels
// instead of a network.
package mpi

import (
	"fmt"
	"sync"
)

// message is a tagged payload between two ranks.
type message struct {
	tag  int
	data []float64
}

// World owns the communication fabric for a fixed number of ranks.
type World struct {
	size  int
	chans [][]chan message // chans[src][dst]
	bar   *barrier
}

// NewWorld creates a world with n ranks. Each pair of ranks gets a buffered
// channel so sends of modest size do not block (mirroring MPI's eager
// protocol for small messages).
func NewWorld(n int) *World {
	if n <= 0 {
		panic(fmt.Sprintf("mpi: world size %d", n))
	}
	w := &World{size: n, bar: newBarrier(n)}
	w.chans = make([][]chan message, n)
	for s := 0; s < n; s++ {
		w.chans[s] = make([]chan message, n)
		for d := 0; d < n; d++ {
			w.chans[s][d] = make(chan message, 16)
		}
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Run starts one goroutine per rank, invokes f with that rank's
// communicator, and blocks until every rank returns. Panics inside a rank
// are re-raised on the caller after all other ranks finish or deadlock is
// avoided by the panic propagation.
func (w *World) Run(f func(c *Comm)) {
	var wg sync.WaitGroup
	panics := make([]interface{}, w.size)
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics[rank] = p
				}
			}()
			f(&Comm{world: w, rank: rank, pending: make(map[int][]message)})
		}(r)
	}
	wg.Wait()
	for rank, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("mpi: rank %d panicked: %v", rank, p))
		}
	}
}

// Comm is one rank's endpoint into the world.
type Comm struct {
	world *World
	rank  int
	// pending holds received-but-unmatched messages per source rank, so
	// tag matching never re-queues into the transport (which could block).
	pending map[int][]message
}

// Rank returns this rank's id in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

// Send delivers data to dst with the given tag. The slice is copied, so the
// caller may reuse it immediately (MPI buffered-send semantics).
func (c *Comm) Send(dst, tag int, data []float64) {
	if dst < 0 || dst >= c.world.size {
		panic(fmt.Sprintf("mpi: send to invalid rank %d", dst))
	}
	cp := make([]float64, len(data))
	copy(cp, data)
	c.world.chans[c.rank][dst] <- message{tag: tag, data: cp}
}

// Recv blocks until a message with the given tag arrives from src.
// Messages with other tags from the same source are queued and delivered to
// later matching Recv calls, mirroring MPI tag matching.
func (c *Comm) Recv(src, tag int) []float64 {
	if src < 0 || src >= c.world.size {
		panic(fmt.Sprintf("mpi: recv from invalid rank %d", src))
	}
	// Check messages already pulled off the wire for other tags.
	for i, m := range c.pending[src] {
		if m.tag == tag {
			c.pending[src] = append(c.pending[src][:i], c.pending[src][i+1:]...)
			return m.data
		}
	}
	ch := c.world.chans[src][c.rank]
	for {
		m := <-ch
		if m.tag == tag {
			return m.data
		}
		c.pending[src] = append(c.pending[src], m)
	}
}

// SendRecv exchanges data with a partner rank (deadlock-free pairwise
// exchange, the halo-swap primitive).
func (c *Comm) SendRecv(partner, tag int, data []float64) []float64 {
	c.Send(partner, tag, data)
	return c.Recv(partner, tag)
}

// Barrier blocks until every rank has entered it.
func (c *Comm) Barrier() { c.world.bar.await() }

// Bcast distributes root's data to every rank. All ranks must call it; the
// returned slice is each rank's private copy. This is the primitive of
// Algorithm 1 (the mid-plane broadcast).
func (c *Comm) Bcast(root int, data []float64) []float64 {
	if c.rank == root {
		for r := 0; r < c.world.size; r++ {
			if r != root {
				c.Send(r, tagBcast, data)
			}
		}
		cp := make([]float64, len(data))
		copy(cp, data)
		return cp
	}
	return c.Recv(root, tagBcast)
}

// Gather collects each rank's contribution at root (rank order). Non-root
// ranks receive nil. This is Algorithm 1's final "gather the delta" step.
func (c *Comm) Gather(root int, data []float64) [][]float64 {
	if c.rank == root {
		out := make([][]float64, c.world.size)
		cp := make([]float64, len(data))
		copy(cp, data)
		out[root] = cp
		for r := 0; r < c.world.size; r++ {
			if r != root {
				out[r] = c.Recv(r, tagGather)
			}
		}
		return out
	}
	c.Send(root, tagGather, data)
	return nil
}

// ReduceOp is a binary associative reduction operator.
type ReduceOp func(a, b float64) float64

// Standard reduction operators.
var (
	OpSum ReduceOp = func(a, b float64) float64 { return a + b }
	OpMax ReduceOp = func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	}
	OpMin ReduceOp = func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	}
)

// Allreduce reduces each element of data across all ranks and returns the
// result on every rank (gather-to-0 then broadcast; the collective contract
// matches MPI_Allreduce).
func (c *Comm) Allreduce(op ReduceOp, data []float64) []float64 {
	parts := c.Gather(0, data)
	var acc []float64
	if c.rank == 0 {
		acc = make([]float64, len(data))
		copy(acc, parts[0])
		for r := 1; r < c.world.size; r++ {
			if len(parts[r]) != len(acc) {
				panic("mpi: Allreduce length mismatch across ranks")
			}
			for i, v := range parts[r] {
				acc[i] = op(acc[i], v)
			}
		}
	}
	return c.Bcast(0, acc)
}

// Reserved collective tags, outside the user tag space.
const (
	tagBcast  = -1
	tagGather = -2
)

// barrier is a reusable n-party barrier.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	phase int
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() {
	b.mu.Lock()
	defer b.mu.Unlock()
	phase := b.phase
	b.count++
	if b.count == b.n {
		b.count = 0
		b.phase++
		b.cond.Broadcast()
		return
	}
	for phase == b.phase {
		b.cond.Wait()
	}
}

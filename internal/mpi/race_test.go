package mpi

import (
	"sync"
	"testing"
)

// These tests exist primarily for the race detector: they drive the
// transport hard from many goroutines at once so `go test -race` can see
// every hand-off. They also double as correctness checks on heavy traffic.

// TestStressNonblockingHaloRing runs many halo-exchange sweeps over a ring
// of ranks using only the nonblocking primitives, the exact communication
// shape of the Laplace and Heat3d solvers.
func TestStressNonblockingHaloRing(t *testing.T) {
	const (
		ranks = 8
		iters = 200
		width = 16
	)
	payload := func(rank, iter int) []float64 {
		p := make([]float64, width)
		for i := range p {
			p[i] = float64(rank*1000 + iter)
		}
		return p
	}
	NewWorld(ranks).Run(func(c *Comm) {
		left := (c.Rank() + ranks - 1) % ranks
		right := (c.Rank() + 1) % ranks
		for s := 0; s < iters; s++ {
			// Distinct tags per direction so the ring wrap (left==right
			// when ranks==2 would alias, here rank count is fixed at 8)
			// cannot cross-match.
			sendL := c.ISend(left, 2*s, payload(c.Rank(), s))
			sendR := c.ISend(right, 2*s+1, payload(c.Rank(), s))
			reqs := []*Request{c.IRecv(right, 2*s), c.IRecv(left, 2*s+1)}
			halos := WaitAll(reqs)
			sendL.Wait()
			sendR.Wait()
			for d, h := range halos {
				src := right
				if d == 1 {
					src = left
				}
				if len(h) != width || h[0] != float64(src*1000+s) {
					t.Errorf("rank %d iter %d dir %d: got %v from %d", c.Rank(), s, d, h[0], src)
					return
				}
			}
		}
	})
}

// TestStressManyToOneTagMatching floods rank 0 with tagged messages from
// every other rank and receives them in reverse tag order, forcing the
// pending stash to absorb the entire stream.
func TestStressManyToOneTagMatching(t *testing.T) {
	const (
		ranks = 6
		msgs  = 12
	)
	NewWorld(ranks).Run(func(c *Comm) {
		if c.Rank() != 0 {
			var reqs []*Request
			for tag := 0; tag < msgs; tag++ {
				reqs = append(reqs, c.ISend(0, tag, []float64{float64(c.Rank()*100 + tag)}))
			}
			WaitAll(reqs)
			return
		}
		for src := 1; src < ranks; src++ {
			for tag := msgs - 1; tag >= 0; tag-- {
				got := c.Recv(src, tag)
				if want := float64(src*100 + tag); len(got) != 1 || got[0] != want {
					t.Errorf("recv(src=%d, tag=%d) = %v, want %v", src, tag, got, want)
					return
				}
			}
		}
	})
}

// TestStressCollectivesInterleaved cycles broadcast, all-reduce, gather,
// and barriers with a rotating root, the mix Algorithm 1 performs each
// snapshot (mid-plane broadcast, delta gather, residual all-reduce).
func TestStressCollectivesInterleaved(t *testing.T) {
	const (
		ranks  = 6
		rounds = 50
	)
	NewWorld(ranks).Run(func(c *Comm) {
		for s := 0; s < rounds; s++ {
			root := s % ranks
			data := []float64{float64(c.Rank()), float64(s)}
			b := c.Bcast(root, []float64{float64(root * 10)})
			if b[0] != float64(root*10) {
				t.Errorf("rank %d round %d: bcast got %v", c.Rank(), s, b[0])
				return
			}
			sum := c.Allreduce(OpSum, data)
			if want := float64(ranks * (ranks - 1) / 2); sum[0] != want {
				t.Errorf("rank %d round %d: allreduce %v, want %v", c.Rank(), s, sum[0], want)
				return
			}
			parts := c.Gather(root, data)
			if c.Rank() == root {
				for r, p := range parts {
					if p[0] != float64(r) {
						t.Errorf("round %d: gather part %d = %v", s, r, p[0])
						return
					}
				}
			}
			c.Barrier()
		}
	})
}

// TestStressConcurrentWorlds runs several independent worlds at once —
// no state may leak between them.
func TestStressConcurrentWorlds(t *testing.T) {
	const worlds = 4
	var wg sync.WaitGroup
	for wld := 0; wld < worlds; wld++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			NewWorld(5).Run(func(c *Comm) {
				for s := 0; s < 30; s++ {
					sum := c.Allreduce(OpSum, []float64{float64(seed)})
					if sum[0] != float64(5*seed) {
						t.Errorf("world %d: allreduce %v, want %v", seed, sum[0], float64(5*seed))
						return
					}
				}
			})
		}(wld + 1)
	}
	wg.Wait()
}

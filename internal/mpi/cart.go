package mpi

import "fmt"

// Cart3D is a 3-D Cartesian decomposition of a world, the processor
// topology Heat3d uses (the paper runs 8x8x8 ranks for the full model).
type Cart3D struct {
	Px, Py, Pz int // ranks along each axis; Px*Py*Pz == world size
}

// NewCart3D validates a topology against a world size.
func NewCart3D(size, px, py, pz int) (*Cart3D, error) {
	if px < 1 || py < 1 || pz < 1 || px*py*pz != size {
		return nil, fmt.Errorf("mpi: topology %dx%dx%d does not match world size %d", px, py, pz, size)
	}
	return &Cart3D{Px: px, Py: py, Pz: pz}, nil
}

// Coords returns the (cx, cy, cz) coordinates of a rank (x fastest).
func (t *Cart3D) Coords(rank int) (cx, cy, cz int) {
	cx = rank % t.Px
	cy = (rank / t.Px) % t.Py
	cz = rank / (t.Px * t.Py)
	return cx, cy, cz
}

// Rank is the inverse of Coords.
func (t *Cart3D) Rank(cx, cy, cz int) int {
	return (cz*t.Py+cy)*t.Px + cx
}

// Neighbor returns the rank offset by (dx, dy, dz), or -1 at the domain
// boundary (non-periodic, like the heat equation's insulated walls).
func (t *Cart3D) Neighbor(rank, dx, dy, dz int) int {
	cx, cy, cz := t.Coords(rank)
	cx += dx
	cy += dy
	cz += dz
	if cx < 0 || cx >= t.Px || cy < 0 || cy >= t.Py || cz < 0 || cz >= t.Pz {
		return -1
	}
	return t.Rank(cx, cy, cz)
}

// Slab1D computes the half-open index range [lo, hi) that rank owns when n
// points are block-distributed over p ranks (remainder spread over the
// leading ranks).
func Slab1D(n, p, rank int) (lo, hi int) {
	base := n / p
	rem := n % p
	lo = rank*base + min(rank, rem)
	size := base
	if rank < rem {
		size++
	}
	return lo, lo + size
}

package mpi

import "fmt"

// Request is a handle for a nonblocking operation; Wait blocks until the
// operation completes and, for receives, returns the data.
type Request struct {
	done <-chan []float64
}

// Wait blocks until the operation completes. For an ISend the returned
// slice is nil; for an IRecv it is the received payload.
func (r *Request) Wait() []float64 {
	return <-r.done
}

// ISend starts a nonblocking send. The data is copied immediately, so the
// caller may reuse the buffer right away; Wait confirms hand-off to the
// transport (MPI_Ibsend semantics).
func (c *Comm) ISend(dst, tag int, data []float64) *Request {
	if dst < 0 || dst >= c.world.size {
		panic(fmt.Sprintf("mpi: isend to invalid rank %d", dst))
	}
	cp := make([]float64, len(data))
	copy(cp, data)
	done := make(chan []float64, 1)
	go func() {
		c.world.chans[c.rank][dst] <- message{tag: tag, data: cp}
		done <- nil
	}()
	return &Request{done: done}
}

// IRecv starts a nonblocking receive for a message from src with the given
// tag. The matching rules are the same as Recv's.
//
// Note: IRecv consumes from the same per-pair stream as Recv, so a rank
// must not have a blocking Recv and an outstanding IRecv for the same
// source simultaneously — exactly MPI's "no two pending receives race for
// one envelope" discipline.
func (c *Comm) IRecv(src, tag int) *Request {
	if src < 0 || src >= c.world.size {
		panic(fmt.Sprintf("mpi: irecv from invalid rank %d", src))
	}
	done := make(chan []float64, 1)
	// Drain the pending stash synchronously: the stash belongs to this
	// goroutine's Comm and must not be touched concurrently.
	for i, m := range c.pending[src] {
		if m.tag == tag {
			c.pending[src] = append(c.pending[src][:i], c.pending[src][i+1:]...)
			done <- m.data
			return &Request{done: done}
		}
	}
	ch := c.world.chans[src][c.rank]
	go func() {
		m := <-ch
		if m.tag != tag {
			// The background goroutine cannot stash into the Comm (it is
			// single-goroutine state), so IRecv's contract is stricter than
			// Recv's: the next in-flight message from src must carry the
			// awaited tag. Regular halo-exchange patterns satisfy this;
			// anything else is a protocol bug worth failing loudly on.
			panic(fmt.Sprintf("mpi: IRecv(src=%d, tag=%d) matched message with tag %d", src, tag, m.tag))
		}
		done <- m.data
	}()
	return &Request{done: done}
}

// WaitAll waits on every request in order.
func WaitAll(reqs []*Request) [][]float64 {
	out := make([][]float64, len(reqs))
	for i, r := range reqs {
		out[i] = r.Wait()
	}
	return out
}

// Scatter distributes root's per-rank slices: rank i receives parts[i].
// Non-root ranks pass nil parts. Returns each rank's slice.
func (c *Comm) Scatter(root int, parts [][]float64) []float64 {
	if c.rank == root {
		if len(parts) != c.world.size {
			panic(fmt.Sprintf("mpi: scatter needs %d parts, got %d", c.world.size, len(parts)))
		}
		for r := 0; r < c.world.size; r++ {
			if r != root {
				c.Send(r, tagScatter, parts[r])
			}
		}
		cp := make([]float64, len(parts[root]))
		copy(cp, parts[root])
		return cp
	}
	return c.Recv(root, tagScatter)
}

// Reduce combines each element of data across ranks at root with op;
// non-root ranks receive nil.
func (c *Comm) Reduce(root int, op ReduceOp, data []float64) []float64 {
	parts := c.Gather(root, data)
	if c.rank != root {
		return nil
	}
	acc := make([]float64, len(data))
	copy(acc, parts[root])
	for r := 0; r < c.world.size; r++ {
		if r == root {
			continue
		}
		if len(parts[r]) != len(acc) {
			panic("mpi: Reduce length mismatch across ranks")
		}
		for i, v := range parts[r] {
			acc[i] = op(acc[i], v)
		}
	}
	return acc
}

// tagScatter is the reserved collective tag for Scatter.
const tagScatter = -3

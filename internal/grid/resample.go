package grid

import "fmt"

// Downsample returns a coarse field whose every extent is divided by factor,
// computed by averaging each factor^rank block. Extents must be divisible by
// factor. This models running "a light version of the full model with
// enlarged grid spacing" (DuoModel's reduced model).
func (f *Field) Downsample(factor int) (*Field, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("grid: non-positive downsample factor %d", factor)
	}
	for _, d := range f.Dims {
		if d%factor != 0 {
			return nil, fmt.Errorf("grid: extent %d not divisible by factor %d", d, factor)
		}
	}
	switch f.Rank() {
	case 1:
		n := f.Dims[0] / factor
		out := New(n)
		for i := 0; i < n; i++ {
			s := 0.0
			for a := 0; a < factor; a++ {
				s += f.Data[i*factor+a]
			}
			out.Data[i] = s / float64(factor)
		}
		return out, nil
	case 2:
		ny, nx := f.Dims[0]/factor, f.Dims[1]/factor
		out := New(ny, nx)
		inv := 1.0 / float64(factor*factor)
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				s := 0.0
				for b := 0; b < factor; b++ {
					for a := 0; a < factor; a++ {
						s += f.At2(j*factor+b, i*factor+a)
					}
				}
				out.Set2(s*inv, j, i)
			}
		}
		return out, nil
	case 3:
		nz, ny, nx := f.Dims[0]/factor, f.Dims[1]/factor, f.Dims[2]/factor
		out := New(nz, ny, nx)
		inv := 1.0 / float64(factor*factor*factor)
		for k := 0; k < nz; k++ {
			for j := 0; j < ny; j++ {
				for i := 0; i < nx; i++ {
					s := 0.0
					for c := 0; c < factor; c++ {
						for b := 0; b < factor; b++ {
							for a := 0; a < factor; a++ {
								s += f.At3(k*factor+c, j*factor+b, i*factor+a)
							}
						}
					}
					out.Set3(s*inv, k, j, i)
				}
			}
		}
		return out, nil
	}
	return nil, ErrRank
}

// Upsample interpolates f onto a grid with the given extents using separable
// linear (bi-/tri-linear) interpolation with cell-centered sample alignment.
// It is the reconstruction step of DuoModel: a coarse reduced-model output is
// linearly re-inflated to the full-model resolution before the delta is
// applied.
func (f *Field) Upsample(dims ...int) (*Field, error) {
	if len(dims) != f.Rank() {
		return nil, fmt.Errorf("grid: upsample rank %d != field rank %d", len(dims), f.Rank())
	}
	if _, err := checkDims(dims); err != nil {
		return nil, err
	}
	switch f.Rank() {
	case 1:
		out := New(dims[0])
		for i := 0; i < dims[0]; i++ {
			_, x0, x1, tx := lerpCoord(i, dims[0], f.Dims[0])
			out.Data[i] = (1-tx)*f.Data[x0] + tx*f.Data[x1]
		}
		return out, nil
	case 2:
		out := New(dims[0], dims[1])
		for j := 0; j < dims[0]; j++ {
			_, y0, y1, ty := lerpCoord(j, dims[0], f.Dims[0])
			for i := 0; i < dims[1]; i++ {
				_, x0, x1, tx := lerpCoord(i, dims[1], f.Dims[1])
				v := (1-ty)*((1-tx)*f.At2(y0, x0)+tx*f.At2(y0, x1)) +
					ty*((1-tx)*f.At2(y1, x0)+tx*f.At2(y1, x1))
				out.Set2(v, j, i)
			}
		}
		return out, nil
	case 3:
		out := New(dims[0], dims[1], dims[2])
		for k := 0; k < dims[0]; k++ {
			_, z0, z1, tz := lerpCoord(k, dims[0], f.Dims[0])
			for j := 0; j < dims[1]; j++ {
				_, y0, y1, ty := lerpCoord(j, dims[1], f.Dims[1])
				for i := 0; i < dims[2]; i++ {
					_, x0, x1, tx := lerpCoord(i, dims[2], f.Dims[2])
					c00 := (1-tx)*f.At3(z0, y0, x0) + tx*f.At3(z0, y0, x1)
					c01 := (1-tx)*f.At3(z0, y1, x0) + tx*f.At3(z0, y1, x1)
					c10 := (1-tx)*f.At3(z1, y0, x0) + tx*f.At3(z1, y0, x1)
					c11 := (1-tx)*f.At3(z1, y1, x0) + tx*f.At3(z1, y1, x1)
					v := (1-tz)*((1-ty)*c00+ty*c01) + tz*((1-ty)*c10+ty*c11)
					out.Set3(v, k, j, i)
				}
			}
		}
		return out, nil
	}
	return nil, ErrRank
}

// lerpCoord maps destination index i on a grid of n cell-centered samples to
// a source coordinate on a grid of m samples, returning the two bracketing
// source indices and the interpolation weight of the upper one.
func lerpCoord(i, n, m int) (x float64, lo, hi int, t float64) {
	// Cell-centered alignment: sample s covers [(s)/m, (s+1)/m) of the unit
	// interval, centred at (s+0.5)/m.
	x = (float64(i)+0.5)/float64(n)*float64(m) - 0.5
	if x <= 0 {
		return x, 0, 0, 0
	}
	if x >= float64(m-1) {
		return x, m - 1, m - 1, 0
	}
	lo = int(x)
	hi = lo + 1
	t = x - float64(lo)
	return x, lo, hi, t
}

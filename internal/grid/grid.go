// Package grid provides dense 1-, 2-, and 3-dimensional float64 fields,
// the common data container for simulation outputs, reduced models, and
// compressors in this repository.
//
// Data is stored row-major: the last dimension varies fastest. A Field of
// dims (nz, ny, nx) stores element (k, j, i) at index (k*ny+j)*nx+i, which
// matches the C-order layout used by the scientific codes the paper studies.
package grid

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Field is a dense float64 array of rank 1 to 3.
type Field struct {
	// Dims holds the extents, outermost first. len(Dims) is the rank.
	Dims []int
	// Data holds len == product(Dims) values in row-major order.
	Data []float64
}

// New returns a zero-filled field with the given extents. It panics on
// invalid extents; decode paths handling untrusted dims use NewChecked.
func New(dims ...int) *Field {
	f, err := NewChecked(dims...)
	if err != nil {
		panic(err)
	}
	return f
}

// NewChecked is New for untrusted extents: it returns an error instead of
// panicking when the dims are out of range or their product overflows int.
func NewChecked(dims ...int) (*Field, error) {
	n, err := checkDims(dims)
	if err != nil {
		return nil, err
	}
	return &Field{Dims: append([]int(nil), dims...), Data: make([]float64, n)}, nil
}

// FromData wraps data (not copied) as a field with the given extents.
func FromData(data []float64, dims ...int) (*Field, error) {
	n, err := checkDims(dims)
	if err != nil {
		return nil, err
	}
	if len(data) != n {
		return nil, fmt.Errorf("grid: data length %d does not match dims %v (want %d)", len(data), dims, n)
	}
	return &Field{Dims: append([]int(nil), dims...), Data: data}, nil
}

func checkDims(dims []int) (int, error) {
	if len(dims) == 0 || len(dims) > 3 {
		return 0, fmt.Errorf("grid: rank must be 1..3, got %d", len(dims))
	}
	n := 1
	for _, d := range dims {
		if d <= 0 {
			return 0, fmt.Errorf("grid: non-positive extent in %v", dims)
		}
		if n > math.MaxInt/d {
			// Without this guard the product wraps (e.g. three 2^32 extents
			// multiply to 0), yielding a Field whose Data is far smaller
			// than Dims claims — and index panics downstream.
			return 0, fmt.Errorf("grid: element count of dims %v overflows int", dims)
		}
		n *= d
	}
	return n, nil
}

// Rank returns the number of dimensions.
func (f *Field) Rank() int { return len(f.Dims) }

// Len returns the total number of elements.
func (f *Field) Len() int { return len(f.Data) }

// Clone returns a deep copy.
func (f *Field) Clone() *Field {
	g := &Field{Dims: append([]int(nil), f.Dims...), Data: make([]float64, len(f.Data))}
	copy(g.Data, f.Data)
	return g
}

// Index converts multi-indices (outermost first) to a flat offset.
func (f *Field) Index(idx ...int) int {
	if len(idx) != len(f.Dims) {
		panic(fmt.Sprintf("grid: index rank %d != field rank %d", len(idx), len(f.Dims)))
	}
	off := 0
	for d, i := range idx {
		if i < 0 || i >= f.Dims[d] {
			panic(fmt.Sprintf("grid: index %d out of range [0,%d) in dim %d", i, f.Dims[d], d))
		}
		off = off*f.Dims[d] + i
	}
	return off
}

// At returns the element at the multi-index.
func (f *Field) At(idx ...int) float64 { return f.Data[f.Index(idx...)] }

// Set stores v at the multi-index.
func (f *Field) Set(v float64, idx ...int) { f.Data[f.Index(idx...)] = v }

// At2 is a fast path for rank-2 fields.
func (f *Field) At2(j, i int) float64 { return f.Data[j*f.Dims[1]+i] }

// Set2 is a fast path for rank-2 fields.
func (f *Field) Set2(v float64, j, i int) { f.Data[j*f.Dims[1]+i] = v }

// At3 is a fast path for rank-3 fields.
func (f *Field) At3(k, j, i int) float64 {
	return f.Data[(k*f.Dims[1]+j)*f.Dims[2]+i]
}

// Set3 is a fast path for rank-3 fields.
func (f *Field) Set3(v float64, k, j, i int) {
	f.Data[(k*f.Dims[1]+j)*f.Dims[2]+i] = v
}

// Plane extracts horizontal plane k of a rank-3 field as a rank-2 field.
// The returned field shares no storage with f.
func (f *Field) Plane(k int) *Field {
	if f.Rank() != 3 {
		panic("grid: Plane requires a rank-3 field")
	}
	nz, ny, nx := f.Dims[0], f.Dims[1], f.Dims[2]
	if k < 0 || k >= nz {
		panic(fmt.Sprintf("grid: plane %d out of range [0,%d)", k, nz))
	}
	p := New(ny, nx)
	copy(p.Data, f.Data[k*ny*nx:(k+1)*ny*nx])
	return p
}

// Row extracts row j of a rank-2 field as a rank-1 field (copied).
func (f *Field) Row(j int) *Field {
	if f.Rank() != 2 {
		panic("grid: Row requires a rank-2 field")
	}
	ny, nx := f.Dims[0], f.Dims[1]
	if j < 0 || j >= ny {
		panic(fmt.Sprintf("grid: row %d out of range [0,%d)", j, ny))
	}
	r := New(nx)
	copy(r.Data, f.Data[j*nx:(j+1)*nx])
	return r
}

// Matricize reports the shape of the canonical 2-D matrix view of the field:
// the last dimension becomes the column count and all leading dimensions are
// flattened into rows. Data is already laid out in this order, so the matrix
// shares f.Data.
func (f *Field) Matricize() (rows, cols int) {
	cols = f.Dims[len(f.Dims)-1]
	rows = len(f.Data) / cols
	return rows, cols
}

// Sub returns f - g element-wise. The fields must have identical dims.
func (f *Field) Sub(g *Field) (*Field, error) {
	if !sameDims(f.Dims, g.Dims) {
		return nil, fmt.Errorf("grid: dims mismatch %v vs %v", f.Dims, g.Dims)
	}
	out := f.Clone()
	for i, v := range g.Data {
		out.Data[i] -= v
	}
	return out, nil
}

// AddInPlace adds g into f element-wise.
func (f *Field) AddInPlace(g *Field) error {
	if !sameDims(f.Dims, g.Dims) {
		return fmt.Errorf("grid: dims mismatch %v vs %v", f.Dims, g.Dims)
	}
	for i, v := range g.Data {
		f.Data[i] += v
	}
	return nil
}

func sameDims(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// MinMax returns the smallest and largest values. It panics on empty data.
func (f *Field) MinMax() (lo, hi float64) {
	lo, hi = f.Data[0], f.Data[0]
	for _, v := range f.Data[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// MaxAbs returns the largest absolute value.
func (f *Field) MaxAbs() float64 {
	m := 0.0
	for _, v := range f.Data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Equal reports whether g has the same dims and every element within eps.
func (f *Field) Equal(g *Field, eps float64) bool {
	if !sameDims(f.Dims, g.Dims) {
		return false
	}
	for i, v := range f.Data {
		if math.Abs(v-g.Data[i]) > eps {
			return false
		}
	}
	return true
}

// Bytes serialises the raw values as little-endian float64s (no header).
func (f *Field) Bytes() []byte {
	b := make([]byte, 8*len(f.Data))
	for i, v := range f.Data {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
	return b
}

// FromBytes parses little-endian float64s into a field with the given dims.
func FromBytes(b []byte, dims ...int) (*Field, error) {
	n, err := checkDims(dims)
	if err != nil {
		return nil, err
	}
	if len(b) != 8*n {
		return nil, fmt.Errorf("grid: byte length %d does not match dims %v (want %d)", len(b), dims, 8*n)
	}
	data := make([]float64, n)
	for i := range data {
		data[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return FromData(data, dims...)
}

// ErrRank is returned when an operation receives a field of unsupported rank.
var ErrRank = errors.New("grid: unsupported rank")

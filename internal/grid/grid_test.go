package grid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndIndexing(t *testing.T) {
	f := New(2, 3, 4)
	if f.Rank() != 3 || f.Len() != 24 {
		t.Fatalf("rank=%d len=%d, want 3, 24", f.Rank(), f.Len())
	}
	f.Set3(7.5, 1, 2, 3)
	if got := f.At3(1, 2, 3); got != 7.5 {
		t.Fatalf("At3 = %v, want 7.5", got)
	}
	if got := f.At(1, 2, 3); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	if got := f.Data[f.Index(1, 2, 3)]; got != 7.5 {
		t.Fatalf("Index path = %v, want 7.5", got)
	}
}

func TestRowMajorLayout(t *testing.T) {
	f := New(2, 3)
	f.Set2(1, 0, 0)
	f.Set2(2, 0, 1)
	f.Set2(3, 1, 0)
	want := []float64{1, 2, 0, 3, 0, 0}
	for i, v := range want {
		if f.Data[i] != v {
			t.Fatalf("Data[%d]=%v, want %v (layout not row-major)", i, f.Data[i], v)
		}
	}
}

func TestFromDataValidation(t *testing.T) {
	if _, err := FromData(make([]float64, 5), 2, 3); err == nil {
		t.Fatal("expected length-mismatch error")
	}
	if _, err := FromData(nil, 0); err == nil {
		t.Fatal("expected non-positive extent error")
	}
	if _, err := FromData(make([]float64, 16), 2, 2, 2, 2); err == nil {
		t.Fatal("expected rank error")
	}
	f, err := FromData([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if f.At2(1, 2) != 6 {
		t.Fatalf("At2(1,2)=%v, want 6", f.At2(1, 2))
	}
}

func TestCloneIndependence(t *testing.T) {
	f := New(4)
	f.Data[0] = 1
	g := f.Clone()
	g.Data[0] = 2
	if f.Data[0] != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestPlaneAndRow(t *testing.T) {
	f := New(3, 2, 2)
	for k := 0; k < 3; k++ {
		for j := 0; j < 2; j++ {
			for i := 0; i < 2; i++ {
				f.Set3(float64(100*k+10*j+i), k, j, i)
			}
		}
	}
	p := f.Plane(1)
	if p.Rank() != 2 || p.Dims[0] != 2 || p.Dims[1] != 2 {
		t.Fatalf("plane dims = %v", p.Dims)
	}
	if p.At2(1, 1) != 111 {
		t.Fatalf("plane(1)[1][1]=%v, want 111", p.At2(1, 1))
	}
	// Plane must be a copy.
	p.Set2(-1, 0, 0)
	if f.At3(1, 0, 0) == -1 {
		t.Fatal("Plane shares storage with parent field")
	}

	m := New(2, 3)
	m.Set2(42, 1, 2)
	r := m.Row(1)
	if r.Rank() != 1 || r.Dims[0] != 3 || r.Data[2] != 42 {
		t.Fatalf("row = %v %v", r.Dims, r.Data)
	}
}

func TestMatricize(t *testing.T) {
	f := New(3, 4, 5)
	m, n := f.Matricize()
	if m != 12 || n != 5 {
		t.Fatalf("matricize 3x4x5 = %dx%d, want 12x5", m, n)
	}
	g := New(7)
	m, n = g.Matricize()
	if m != 1 || n != 7 {
		t.Fatalf("matricize rank-1 = %dx%d, want 1x7", m, n)
	}
}

func TestSubAddRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := New(4, 4)
	g := New(4, 4)
	for i := range f.Data {
		f.Data[i] = rng.NormFloat64()
		g.Data[i] = rng.NormFloat64()
	}
	d, err := f.Sub(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AddInPlace(g); err != nil {
		t.Fatal(err)
	}
	if !d.Equal(f, 1e-15) {
		t.Fatal("f - g + g != f")
	}
}

func TestSubDimsMismatch(t *testing.T) {
	if _, err := New(2, 2).Sub(New(4)); err == nil {
		t.Fatal("expected dims mismatch error")
	}
	if err := New(2, 2).AddInPlace(New(2, 3)); err == nil {
		t.Fatal("expected dims mismatch error")
	}
}

func TestMinMaxAndMaxAbs(t *testing.T) {
	f, _ := FromData([]float64{3, -7, 2, 5}, 4)
	lo, hi := f.MinMax()
	if lo != -7 || hi != 5 {
		t.Fatalf("MinMax = %v,%v want -7,5", lo, hi)
	}
	if f.MaxAbs() != 7 {
		t.Fatalf("MaxAbs = %v, want 7", f.MaxAbs())
	}
}

func TestBytesRoundTrip(t *testing.T) {
	check := func(vals []float64) bool {
		n := len(vals)
		if n == 0 {
			return true
		}
		f, err := FromData(vals, n)
		if err != nil {
			return false
		}
		g, err := FromBytes(f.Bytes(), n)
		if err != nil {
			return false
		}
		for i := range vals {
			// Compare bit patterns so NaN round-trips too.
			if math.Float64bits(g.Data[i]) != math.Float64bits(vals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFromBytesValidation(t *testing.T) {
	if _, err := FromBytes(make([]byte, 7), 1); err == nil {
		t.Fatal("expected byte-length error")
	}
}

func TestDownsampleAverages(t *testing.T) {
	f, _ := FromData([]float64{1, 3, 5, 7}, 4)
	g, err := f.Downsample(2)
	if err != nil {
		t.Fatal(err)
	}
	if g.Dims[0] != 2 || g.Data[0] != 2 || g.Data[1] != 6 {
		t.Fatalf("1-D downsample = %v %v", g.Dims, g.Data)
	}

	m := New(2, 2)
	m.Data = []float64{1, 2, 3, 4}
	gm, err := m.Downsample(2)
	if err != nil {
		t.Fatal(err)
	}
	if gm.Len() != 1 || gm.Data[0] != 2.5 {
		t.Fatalf("2-D downsample = %v", gm.Data)
	}

	c := New(2, 2, 2)
	for i := range c.Data {
		c.Data[i] = float64(i)
	}
	gc, err := c.Downsample(2)
	if err != nil {
		t.Fatal(err)
	}
	if gc.Len() != 1 || gc.Data[0] != 3.5 {
		t.Fatalf("3-D downsample = %v", gc.Data)
	}
}

func TestDownsampleErrors(t *testing.T) {
	if _, err := New(5).Downsample(2); err == nil {
		t.Fatal("expected divisibility error")
	}
	if _, err := New(4).Downsample(0); err == nil {
		t.Fatal("expected non-positive factor error")
	}
}

func TestUpsampleConstantFieldIsExact(t *testing.T) {
	for _, dims := range [][]int{{4}, {4, 6}, {3, 4, 5}} {
		f := New(dims...)
		for i := range f.Data {
			f.Data[i] = 2.75
		}
		big := make([]int, len(dims))
		for i, d := range dims {
			big[i] = 2 * d
		}
		g, err := f.Upsample(big...)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range g.Data {
			if math.Abs(v-2.75) > 1e-12 {
				t.Fatalf("rank %d: upsampled[%d]=%v, want 2.75", len(dims), i, v)
			}
		}
	}
}

func TestUpsampleLinearRamp(t *testing.T) {
	// A linear ramp must be reproduced exactly in the interior by linear
	// interpolation with cell-centered alignment.
	f := New(8)
	for i := range f.Data {
		f.Data[i] = float64(i)
	}
	g, err := f.Upsample(16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 2; i < 14; i++ {
		want := (float64(i)+0.5)/16*8 - 0.5
		if math.Abs(g.Data[i]-want) > 1e-12 {
			t.Fatalf("ramp upsample [%d]=%v, want %v", i, g.Data[i], want)
		}
	}
}

func TestDownUpRoundTripSmoothField(t *testing.T) {
	// A smooth field downsampled then upsampled should stay close.
	n := 32
	f := New(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			f.Set2(math.Sin(float64(j)/16)+math.Cos(float64(i)/16), j, i)
		}
	}
	c, err := f.Downsample(4)
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Upsample(n, n)
	if err != nil {
		t.Fatal(err)
	}
	var maxErr float64
	for i := range f.Data {
		if e := math.Abs(f.Data[i] - r.Data[i]); e > maxErr {
			maxErr = e
		}
	}
	// Edge samples are clamp-extrapolated, so allow a modest boundary error.
	if maxErr > 0.25 {
		t.Fatalf("down/up max error %v too large for smooth field", maxErr)
	}
}

func TestUpsampleRankMismatch(t *testing.T) {
	if _, err := New(4).Upsample(4, 4); err == nil {
		t.Fatal("expected rank mismatch error")
	}
}

func TestEqualDimsDiffer(t *testing.T) {
	if New(2, 2).Equal(New(4), 1) {
		t.Fatal("fields with different dims reported equal")
	}
}

//go:build !invariants

package invariant

// Enabled reports whether assertions are compiled in.
const Enabled = false

// Assert is a no-op without the invariants build tag.
func Assert(cond bool, format string, args ...any) {}

// ErrorBound is a no-op without the invariants build tag.
func ErrorBound(orig, recon []float64, eps float64, stage string) {}

// SameLen is a no-op without the invariants build tag.
func SameLen[T, U any](a []T, b []U, stage string) {}

// InRange is a no-op without the invariants build tag.
func InRange(v, lo, hi int, what string) {}

// Finite is a no-op without the invariants build tag.
func Finite(v float64, what string) {}

// Package invariant provides build-tag-gated runtime assertions for the
// compression pipeline's correctness invariants.
//
// The paper's central guarantee is a pointwise error bound: after
// reduced-model reconstruction plus delta decompression, every value x′
// satisfies |x − x′| ≤ ε. Nothing in ordinary builds enforces this — the
// hot paths cannot afford per-point checks — so the checks live behind the
// `invariants` build tag:
//
//	go test -tags invariants ./internal/compress/... ./internal/reduce/...
//
// Without the tag every function in this package is a no-op and the
// `Enabled` constant is false, letting callers guard expensive check
// prologues (building a reference reconstruction, say) with
//
//	if invariant.Enabled {
//	    invariant.ErrorBound(orig, recon, eps, "sz: quantize")
//	}
//
// so release builds pay nothing — the compiler removes the dead branch.
//
// A violated assertion panics with a message naming the pipeline stage;
// assertions signal bugs in this codebase, never bad user input (input
// validation stays in ordinary error returns).
package invariant

package invariant

import "testing"

// Without the invariants tag every assertion must be a free no-op; with it,
// true conditions must pass silently. Violations are only testable under the
// tag (see enabled_test.go).
func TestAssertionsPassOnTrueConditions(t *testing.T) {
	Assert(true, "never fires")
	ErrorBound([]float64{1, 2}, []float64{1.0005, 1.9995}, 1e-3, "test")
	SameLen([]int{1, 2}, []float64{3, 4}, "test")
	InRange(3, 0, 5, "idx")
	Finite(4.25, "v")
}

func TestEnabledMatchesBuildTag(t *testing.T) {
	// Compile-time constant; the test documents that both build flavours
	// expose the same API surface.
	_ = Enabled
}

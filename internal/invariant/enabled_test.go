//go:build invariants

package invariant

import (
	"math"
	"strings"
	"testing"
)

func mustPanic(t *testing.T, wantSub string, fn func()) {
	t.Helper()
	defer func() {
		p := recover()
		if p == nil {
			t.Fatalf("expected panic containing %q", wantSub)
		}
		if msg := p.(string); !strings.Contains(msg, wantSub) {
			t.Fatalf("panic %q does not contain %q", msg, wantSub)
		}
	}()
	fn()
}

func TestAssertPanicsWithMessage(t *testing.T) {
	mustPanic(t, "codes out of range", func() { Assert(false, "codes out of range: %d", 7) })
}

func TestErrorBoundViolationNamesStageAndIndex(t *testing.T) {
	mustPanic(t, "sz: quantize", func() {
		ErrorBound([]float64{0, 1}, []float64{0, 1.5}, 1e-3, "sz: quantize")
	})
	mustPanic(t, "length mismatch", func() {
		ErrorBound([]float64{0}, []float64{0, 0}, 1, "stage")
	})
	// NaN on either side must trip the bound, not slide through a < compare.
	mustPanic(t, "stage", func() {
		ErrorBound([]float64{math.NaN()}, []float64{0}, 1, "stage")
	})
}

func TestShapeAssertions(t *testing.T) {
	mustPanic(t, "length mismatch", func() { SameLen([]int{1}, []int{1, 2}, "stage") })
	mustPanic(t, "outside", func() { InRange(5, 0, 5, "idx") })
	mustPanic(t, "non-finite", func() { Finite(math.Inf(1), "v") })
}

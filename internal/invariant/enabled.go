//go:build invariants

package invariant

import (
	"fmt"
	"math"
)

// Enabled reports whether assertions are compiled in.
const Enabled = true

// Assert panics with the formatted message when cond is false.
func Assert(cond bool, format string, args ...any) {
	if !cond {
		panic("invariant: " + fmt.Sprintf(format, args...))
	}
}

// ErrorBound asserts the paper's pointwise guarantee |orig[i] − recon[i]| ≤ eps
// for every i. stage names the pipeline boundary being checked.
func ErrorBound(orig, recon []float64, eps float64, stage string) {
	if len(orig) != len(recon) {
		panic(fmt.Sprintf("invariant: %s: length mismatch %d vs %d", stage, len(orig), len(recon)))
	}
	for i := range orig {
		if orig[i] == recon[i] {
			continue // exact match, including ±Inf
		}
		if math.IsNaN(orig[i]) && math.IsNaN(recon[i]) {
			continue // lossless codecs round-trip NaN payloads bit-exactly
		}
		if e := math.Abs(orig[i] - recon[i]); !(e <= eps) { // catches one-sided NaN too
			panic(fmt.Sprintf("invariant: %s: |x-x'| = %v > eps = %v at index %d (x=%v x'=%v)",
				stage, e, eps, i, orig[i], recon[i]))
		}
	}
}

// SameLen asserts two slices describing the same points agree in length.
func SameLen[T, U any](a []T, b []U, stage string) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("invariant: %s: length mismatch %d vs %d", stage, len(a), len(b)))
	}
}

// InRange asserts lo ≤ v < hi.
func InRange(v, lo, hi int, what string) {
	if v < lo || v >= hi {
		panic(fmt.Sprintf("invariant: %s = %d outside [%d,%d)", what, v, lo, hi))
	}
}

// Finite asserts v is neither NaN nor ±Inf.
func Finite(v float64, what string) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		panic(fmt.Sprintf("invariant: %s is non-finite (%v)", what, v))
	}
}

package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerCtxFlow flags context drops in the *Ctx call chain, the PR-5
// tracing contract: once a function accepts a context.Context, spans and
// pprof labels flow through it, and detaching re-roots the trace tree.
//
// Two shapes are reported inside any function (or closure) that has a
// context.Context parameter:
//
//   - a call to context.Background() or context.TODO() — below the entry
//     layer the surrounding ctx must be passed, not replaced. Entry-layer
//     wrappers (`func Decompress(b) { return DecompressCtx(context.
//     Background(), b) }`) have no ctx parameter and are untouched;
//
//   - a call to a function or method whose Ctx variant exists — resolved
//     type-aware: a package-level `F` with a package-level `FCtx` taking a
//     leading context, or a method `m.F` whose receiver type also has
//     `FCtx`. Interface values without a Ctx method in their method set are
//     not flagged; the `if cc, ok := c.(CtxCodec)` assertion-with-fallback
//     idiom is the sanctioned way to call through such values.
//
// Closures without their own ctx parameter inherit the enclosing scope's
// obligation (they capture the ctx); closures with one are their own scope.
var AnalyzerCtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "*Ctx function dropping its context: Background()/TODO() below the entry layer, or a non-Ctx call where a Ctx variant exists",
	Run:  runCtxFlow,
}

func runCtxFlow(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil && hasCtxParamTyped(p, fn.Type) {
					checkCtxScope(p, fn.Body)
					return false // nested lits handled inside
				}
			case *ast.FuncLit:
				if hasCtxParamTyped(p, fn.Type) {
					checkCtxScope(p, fn.Body)
					return false
				}
			}
			return true
		})
	}
}

// hasCtxParamTyped reports whether the signature takes a context.Context,
// resolved through type info with a syntactic fallback for packages the
// loader could not fully type-check.
func hasCtxParamTyped(p *Pass, ft *ast.FuncType) bool {
	if ft == nil || ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if tv, ok := p.Info.Types[field.Type]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return hasCtxParam(ft)
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// checkCtxScope walks one ctx-bearing scope. Nested literals with their own
// ctx parameter are separate scopes; literals without one are part of this
// scope (they capture ctx) and are traversed inline.
func checkCtxScope(p *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			if hasCtxParamTyped(p, lit.Type) {
				checkCtxScope(p, lit.Body)
				return false
			}
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, fromContextPkg := contextConstructor(p, call); fromContextPkg {
			p.Reportf(call.Pos(),
				"context.%s() below the entry layer detaches this call chain from its context; pass the surrounding ctx", name)
			return true
		}
		if variant := droppedCtxVariant(p, call); variant != "" {
			p.Reportf(call.Pos(),
				"call drops the surrounding ctx; use %s", variant)
		}
		return true
	})
}

// contextConstructor reports whether the call is context.Background() or
// context.TODO(), resolved through the package object when available so a
// local variable named `context` cannot confuse it.
func contextConstructor(p *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
		return "", false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return "", false
	}
	if obj := p.Info.Uses[id]; obj != nil {
		pkg, ok := obj.(*types.PkgName)
		return sel.Sel.Name, ok && pkg.Imported().Path() == "context"
	}
	return sel.Sel.Name, id.Name == "context"
}

// droppedCtxVariant returns the name of the Ctx variant a call should have
// used, or "" when the call is fine: the callee already takes a context, or
// no variant exists for it.
func droppedCtxVariant(p *Pass, call *ast.CallExpr) string {
	callee := p.calleeFunc(call)
	if callee == nil || calleeTakesContext(callee) {
		return ""
	}
	name := callee.Name() + "Ctx"
	if recv := callee.Type().(*types.Signature).Recv(); recv != nil {
		// Method: look the variant up in the receiver's method set. For
		// interface receivers this only fires when the interface itself
		// declares the variant — assertion fallbacks stay legal.
		obj, _, _ := types.LookupFieldOrMethod(recv.Type(), true, callee.Pkg(), name)
		if v, ok := obj.(*types.Func); ok && calleeTakesContext(v) {
			return recvString(recv.Type()) + "." + name
		}
		return ""
	}
	if callee.Pkg() == nil {
		return ""
	}
	if v, ok := callee.Pkg().Scope().Lookup(name).(*types.Func); ok && calleeTakesContext(v) {
		if callee.Pkg().Name() != "" && p.Pkg != callee.Pkg() {
			return callee.Pkg().Name() + "." + name
		}
		return name
	}
	return ""
}

// calleeTakesContext reports whether any parameter of fn is a
// context.Context.
func calleeTakesContext(fn *types.Func) bool {
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

func recvString(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

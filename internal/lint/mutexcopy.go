package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerMutexCopy flags by-value copies of types that contain a
// sync.Mutex, sync.RWMutex, sync.WaitGroup, or sync.Once (directly or via
// nested struct/array fields): value parameters and receivers, plain
// assignments that duplicate an existing value, and range clauses that copy
// lock-bearing elements. A copied lock guards nothing — both copies start
// unlocked and the original's state is silently forked.
var AnalyzerMutexCopy = &Analyzer{
	Name: "mutexcopy",
	Doc:  "by-value copy of a type containing sync.Mutex/WaitGroup",
	Run:  runMutexCopy,
}

func runMutexCopy(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Recv != nil {
					checkLockFields(p, n.Recv, "receiver")
				}
				checkLockFields(p, n.Type.Params, "parameter")
			case *ast.FuncLit:
				checkLockFields(p, n.Type.Params, "parameter")
			case *ast.AssignStmt:
				checkLockAssign(p, n)
			case *ast.RangeStmt:
				if n.Value != nil {
					if t := p.exprType(n.Value); t != nil && containsLock(t) {
						p.Reportf(n.Value.Pos(), "range clause copies %s which contains a sync lock; iterate by index or use pointers", types.TypeString(t, nil))
					}
				}
			}
			return true
		})
	}
}

func checkLockFields(p *Pass, fields *ast.FieldList, kind string) {
	if fields == nil {
		return
	}
	for _, field := range fields.List {
		t := p.typeOf(field.Type)
		if t == nil {
			continue
		}
		if _, isPtr := t.(*types.Pointer); isPtr {
			continue
		}
		if containsLock(t) {
			p.Reportf(field.Type.Pos(), "%s passes %s by value, copying its sync lock; use a pointer", kind, types.TypeString(t, nil))
		}
	}
}

// checkLockAssign flags `a := b` / `a = b` where the right-hand side reads
// an existing lock-bearing value (composite literals construct a fresh
// value and are fine).
func checkLockAssign(p *Pass, n *ast.AssignStmt) {
	if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
		return
	}
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, rhs := range n.Rhs {
		if lhs, ok := n.Lhs[i].(*ast.Ident); ok && lhs.Name == "_" {
			continue // blank assignment discards; no observable copy
		}
		switch ast.Unparen(rhs).(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		default:
			continue // literals, calls, conversions construct fresh values
		}
		t := p.typeOf(rhs)
		if t == nil || !containsLock(t) {
			continue
		}
		p.Reportf(n.Lhs[i].Pos(), "assignment copies %s which contains a sync lock; use a pointer", types.TypeString(t, nil))
	}
}

// typeOf is a nil-safe Info.Types lookup.
func (p *Pass) typeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// exprType resolves an expression's type, falling back to the defined or
// used object for bare identifiers (range-clause variables are definitions
// and never appear in Info.Types).
func (p *Pass) exprType(e ast.Expr) types.Type {
	if t := p.typeOf(e); t != nil {
		return t
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// lockTypes are the sync types whose zero-value identity must not fork.
var lockTypes = map[string]bool{
	"sync.Mutex":     true,
	"sync.RWMutex":   true,
	"sync.WaitGroup": true,
	"sync.Once":      true,
	"sync.Cond":      true,
}

// containsLock reports whether t (by value) embeds a sync lock, looking
// through named types, struct fields, and array elements.
func containsLock(t types.Type) bool {
	return containsLockRec(t, map[types.Type]bool{})
}

func containsLockRec(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && lockTypes[obj.Pkg().Name()+"."+obj.Name()] {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLockRec(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLockRec(u.Elem(), seen)
	}
	return false
}

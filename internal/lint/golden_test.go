package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe matches golden expectations: `// want "substring"`.
var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

// parseWants maps line number -> expected diagnostic substring.
func parseWants(t *testing.T, path string) map[int]string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	wants := map[int]string{}
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		if m := wantRe.FindStringSubmatch(sc.Text()); m != nil {
			wants[line] = m[1]
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return wants
}

// TestGolden runs every analyzer against its testdata fixture and requires
// an exact match between reported diagnostics and `// want` expectations —
// every want hit, no diagnostic unexplained. This pins both the positive
// and negative behaviour of each rule so analyzers cannot silently rot.
func TestGolden(t *testing.T) {
	for _, a := range All() {
		t.Run(a.Name, func(t *testing.T) {
			path := filepath.Join("testdata", "src", a.Name, a.Name+".go")
			pass, err := CheckFile(path)
			if err != nil {
				t.Fatalf("fixture does not type-check: %v", err)
			}
			diags := RunAnalyzers(pass, []*Analyzer{a})
			if len(diags) == 0 {
				t.Fatalf("fixture produced no findings; the analyzer would exit zero on bad code")
			}
			wants := parseWants(t, path)
			if len(wants) == 0 {
				t.Fatalf("fixture has no // want expectations")
			}
			seen := map[int]bool{}
			for _, d := range diags {
				want, ok := wants[d.Pos.Line]
				if !ok {
					t.Errorf("unexpected diagnostic at %s line %d: %s", path, d.Pos.Line, d.Message)
					continue
				}
				if !strings.Contains(d.Message, want) {
					t.Errorf("line %d: diagnostic %q does not contain %q", d.Pos.Line, d.Message, want)
				}
				if seen[d.Pos.Line] {
					t.Errorf("line %d: duplicate diagnostic", d.Pos.Line)
				}
				seen[d.Pos.Line] = true
			}
			for line, want := range wants {
				if !seen[line] {
					t.Errorf("line %d: expected diagnostic containing %q, got none", line, want)
				}
			}
		})
	}
}

// TestGoldenFixturesAreSelfContained keeps fixtures honest: each must live
// exactly where the harness looks and belong to a package named after the
// rule.
func TestGoldenFixturesAreSelfContained(t *testing.T) {
	for _, a := range All() {
		path := filepath.Join("testdata", "src", a.Name, a.Name+".go")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		if !strings.Contains(string(data), fmt.Sprintf("package %s", a.Name)) {
			t.Errorf("%s: fixture package name must match the rule", a.Name)
		}
	}
}

// TestSuppressionDirective verifies the ignore comment works on the same
// line and the line above, and that unrelated rules are not suppressed.
func TestSuppressionDirective(t *testing.T) {
	src := `package suppress

func f(a, b float64) int {
	n := 0
	//lrmlint:ignore floatcmp above-line suppression
	if a == b {
		n++
	}
	if a != b { //lrmlint:ignore floatcmp same-line suppression
		n++
	}
	//lrmlint:ignore deadassign wrong rule: floatcmp must still fire
	if a == b {
		n++
	}
	//lrmlint:ignore all blanket suppression
	if a == b {
		n++
	}
	return n
}
`
	dir := t.TempDir()
	path := filepath.Join(dir, "suppress.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pass, err := CheckFile(path)
	if err != nil {
		t.Fatal(err)
	}
	diags := RunAnalyzers(pass, []*Analyzer{AnalyzerFloatCmp})
	if len(diags) != 1 {
		t.Fatalf("expected exactly 1 surviving diagnostic (wrong-rule ignore), got %d: %v", len(diags), diags)
	}
	if diags[0].Pos.Line != 13 {
		t.Fatalf("surviving diagnostic on line %d, want 13", diags[0].Pos.Line)
	}
}

// TestByName covers rule-subset resolution.
func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != 10 {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want 10", len(all), err)
	}
	two, err := ByName("floatcmp, goroutine")
	if err != nil || len(two) != 2 {
		t.Fatalf("ByName subset failed: %v", err)
	}
	if _, err := ByName("nosuchrule"); err == nil {
		t.Fatal("expected error for unknown rule")
	}
}

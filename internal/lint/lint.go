// Package lint implements lrmlint, a repo-specific static-analysis suite
// built on the standard library's go/ast, go/parser, and go/types — no
// module dependencies. The analyzers encode correctness rules that matter
// for an error-bounded compression codebase:
//
//   - floatcmp:   naked float equality (==/!=) between non-constant operands
//   - ignorederr: discarded error results from Write/Encode/Decode-family calls
//   - mutexcopy:  by-value copies of types containing sync.Mutex/WaitGroup
//   - goroutine:  goroutines launched with no completion/escape mechanism
//   - deadassign: `_ = expr` blank assignments masking dead computation
//   - obsspan:    obs.Start/StartChild spans without End() on every return path
//   - hotalloc:   make() allocations inside hot-path kernels (the canonical
//     list in hotalloc.go plus //lrm:hotpath-marked functions) that should
//     draw scratch from the internal/parallel arenas instead
//
// plus three interprocedural analyzers built on module-wide function
// summaries (call-graph construction from go/types, per-function
// taint/error summaries, fixed-point propagation — see program.go):
//
//   - decodetaint: decode-path allocation sizes or index bounds derived
//     from untrusted input without CheckedAlloc/NewCheckedField or a guard
//   - errtaxonomy: decode-path error returns that cannot wrap an
//     ErrTruncated/ErrCorrupt/ErrHeader sentinel
//   - ctxflow:     *Ctx functions dropping their context (Background/TODO
//     below the entry layer, or calling F where FCtx exists)
//
// A diagnostic can be suppressed with a trailing or preceding comment
//
//	//lrmlint:ignore <rule> <reason>
//
// which is itself part of the reviewable record: suppressions are explicit
// per-site waivers, not global config.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Analyzer is one named rule over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Pass)
}

// Pass carries one package's parsed and type-checked state through an
// analyzer run and collects its diagnostics.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Info  *types.Info
	Pkg   *types.Package

	rule       string
	diags      []Diagnostic
	suppressed map[string]map[int]bool // filename -> line -> suppressed rules encoded "line:rule"
	ignores    []ignoreDirective
	prog       *Program
}

// SetProgram attaches a module-wide Program so the interprocedural
// analyzers see summaries for every package of the module. The driver calls
// this once after loading.
func (p *Pass) SetProgram(prog *Program) { p.prog = prog }

// Program returns the attached module-wide Program, lazily building a
// single-package Program over this pass when none was attached (the
// standalone CheckFile path used by golden tests).
func (p *Pass) Program() *Program {
	if p.prog == nil {
		p.prog = NewProgram([]*Pass{p})
	}
	return p.prog
}

type ignoreDirective struct {
	file string
	line int
	rule string
}

// NewPass builds a Pass and indexes //lrmlint:ignore directives.
func NewPass(fset *token.FileSet, files []*ast.File, info *types.Info, pkg *types.Package) *Pass {
	p := &Pass{Fset: fset, Files: files, Info: info, Pkg: pkg}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "lrmlint:ignore") {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, "lrmlint:ignore"))
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, rule := range strings.Split(fields[0], ",") {
					p.ignores = append(p.ignores, ignoreDirective{file: pos.Filename, line: pos.Line, rule: rule})
				}
			}
		}
	}
	return p
}

// Reportf records a diagnostic for the current analyzer unless an ignore
// directive on the same line or the line directly above suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	for _, ig := range p.ignores {
		if ig.file == position.Filename && (ig.line == position.Line || ig.line == position.Line-1) &&
			(ig.rule == p.rule || ig.rule == "all") {
			return
		}
	}
	p.diags = append(p.diags, Diagnostic{Pos: position, Rule: p.rule, Message: fmt.Sprintf(format, args...)})
}

// RunAnalyzers applies each analyzer to the pass and returns the combined
// diagnostics in file/line order.
func RunAnalyzers(p *Pass, analyzers []*Analyzer) []Diagnostic {
	for _, a := range analyzers {
		p.rule = a.Name
		a.Run(p)
	}
	sort.Slice(p.diags, func(i, j int) bool {
		a, b := p.diags[i], p.diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return p.diags
}

// All returns every analyzer in the suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		AnalyzerFloatCmp,
		AnalyzerIgnoredErr,
		AnalyzerMutexCopy,
		AnalyzerGoroutine,
		AnalyzerDeadAssign,
		AnalyzerObsSpan,
		AnalyzerHotAlloc,
		AnalyzerDecodeTaint,
		AnalyzerErrTaxonomy,
		AnalyzerCtxFlow,
	}
}

// ByName resolves a comma-separated rule list ("floatcmp,goroutine") to
// analyzers; an empty spec selects the whole suite.
func ByName(spec string) ([]*Analyzer, error) {
	if strings.TrimSpace(spec) == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(spec, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("lint: unknown rule %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

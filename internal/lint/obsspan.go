package lint

import (
	"go/ast"
	"go/token"
)

// AnalyzerObsSpan flags observability spans that can leak: a span opened by
// `obs.Start(...)` or `<span>.StartChild(...)` whose End() is not guaranteed
// on every return path. A leaked span is silent data loss for the metrics
// registry — the stage's duration, byte, and item attributes are recorded
// only by End, so a missed path under-reports exactly the executions that
// took the unusual exit (usually the error path).
//
// The rule is intentionally lexical rather than flow-sensitive:
//
//   - a dropped result (`obs.Start("x")` as a statement, or assignment to
//     `_`) is always a finding — the span can never be ended;
//   - `defer sp.End()` anywhere in the function covers every exit;
//   - otherwise each return statement (and the fall-off end of the function)
//     after the Start must have an explicit `sp.End()` call lexically
//     between the Start and that exit.
//
// Function literals are analyzed as their own scopes, so a span opened
// inside a parallel.For closure must be ended inside that closure.
var AnalyzerObsSpan = &Analyzer{
	Name: "obsspan",
	Doc:  "obs.Start/StartChild span without End() on every return path",
	Run:  runObsSpan,
}

func runObsSpan(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkSpanScope(p, fn.Body)
				}
			case *ast.FuncLit:
				checkSpanScope(p, fn.Body)
			}
			return true
		})
	}
}

// spanWalk visits the nodes of one function body without descending into
// nested function literals: those are separate scopes with their own check,
// and an End() inside a closure does not end a span of the enclosing
// function at any predictable time.
func spanWalk(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// isSpanStart recognizes the two span constructors syntactically:
// obs.Start(...) — a call through an identifier named obs — and any
// .StartChild(...) call. Type information is deliberately not consulted so
// the rule also fires in packages the loader cannot resolve.
func isSpanStart(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Start":
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		return ok && id.Name == "obs"
	case "StartChild":
		return true
	}
	return false
}

func spanStartName(call *ast.CallExpr) string {
	sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if sel.Sel.Name == "Start" {
		return "obs.Start"
	}
	return "StartChild"
}

// isEndOf reports whether call is `<name>.End()`.
func isEndOf(call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && id.Name == name
}

// checkSpanScope runs the rule over one function body.
func checkSpanScope(p *Pass, body *ast.BlockStmt) {
	type spanVar struct {
		name string
		pos  token.Pos
	}
	var spans []spanVar

	spanWalk(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok && isSpanStart(call) {
				p.Reportf(call.Pos(), "result of %s dropped; the span can never be ended", spanStartName(call))
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
				return
			}
			call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
			if !ok || !isSpanStart(call) {
				return
			}
			id, ok := n.Lhs[0].(*ast.Ident)
			if !ok {
				return
			}
			if id.Name == "_" {
				p.Reportf(call.Pos(), "result of %s assigned to _; the span can never be ended", spanStartName(call))
				return
			}
			spans = append(spans, spanVar{name: id.Name, pos: call.Pos()})
		}
	})

	if len(spans) == 0 {
		return
	}

	for _, s := range spans {
		// defer sp.End() anywhere in the scope covers every exit.
		deferred := false
		var ends []token.Pos
		spanWalk(body, func(n ast.Node) {
			switch n := n.(type) {
			case *ast.DeferStmt:
				if isEndOf(n.Call, s.name) {
					deferred = true
				}
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok && isEndOf(call, s.name) {
					ends = append(ends, call.Pos())
				}
			}
		})
		if deferred {
			continue
		}

		// Exits after the Start: every return statement plus the fall-off
		// end of the body. Each needs an End lexically in between.
		var exits []token.Pos
		spanWalk(body, func(n ast.Node) {
			if r, ok := n.(*ast.ReturnStmt); ok && r.Pos() > s.pos {
				exits = append(exits, r.Pos())
			}
		})
		exits = append(exits, body.Rbrace)

		for _, exit := range exits {
			covered := false
			for _, e := range ends {
				if e > s.pos && e < exit {
					covered = true
					break
				}
			}
			if !covered {
				p.Reportf(s.pos, "span %s may leak: exit at line %d without %s.End() and no defer",
					s.name, p.Fset.Position(exit).Line, s.name)
				break
			}
		}
	}
}

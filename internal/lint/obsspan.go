package lint

import (
	"go/ast"
	"go/token"
)

// AnalyzerObsSpan flags observability spans that can leak: a span opened by
// `obs.Start(...)`, `<span>.StartChild(...)`, or the two-value
// `trace.Start(ctx, ...)` whose End() is not guaranteed on every return
// path. A leaked span is silent data loss for the metrics registry and the
// trace tree — the stage's duration, byte, and item attributes are recorded
// only by End, so a missed path under-reports exactly the executions that
// took the unusual exit (usually the error path).
//
// The rule is intentionally lexical rather than flow-sensitive:
//
//   - a dropped result (`obs.Start("x")` or `trace.Start(ctx, "x")` as a
//     statement, or the span assigned to `_`) is always a finding — the
//     span can never be ended;
//   - `defer sp.End()` anywhere in the function covers every exit;
//   - otherwise each return statement (and the fall-off end of the function)
//     after the Start must have an explicit `sp.End()` call lexically
//     between the Start and that exit.
//
// A third rule catches orphaned traces: `trace.Start(context.Background(),
// ...)` inside a function that is already instrumented — it has a
// context.Context parameter, or an earlier trace.Start in the same scope
// produced a context — detaches the new span from the surrounding trace and
// starts a parentless tree. Root spans in functions with no context in
// reach are fine; that is how a trace legitimately begins.
//
// Function literals are analyzed as their own scopes, so a span opened
// inside a parallel.For closure must be ended inside that closure.
var AnalyzerObsSpan = &Analyzer{
	Name: "obsspan",
	Doc:  "obs/trace span without End() on every return path, or orphaned from its trace",
	Run:  runObsSpan,
}

func runObsSpan(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkSpanScope(p, fn.Type, fn.Body)
				}
			case *ast.FuncLit:
				checkSpanScope(p, fn.Type, fn.Body)
			}
			return true
		})
	}
}

// spanWalk visits the nodes of one function body without descending into
// nested function literals: those are separate scopes with their own check,
// and an End() inside a closure does not end a span of the enclosing
// function at any predictable time.
func spanWalk(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// isSpanStart recognizes the two span constructors syntactically:
// obs.Start(...) — a call through an identifier named obs — and any
// .StartChild(...) call. Type information is deliberately not consulted so
// the rule also fires in packages the loader cannot resolve.
func isSpanStart(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Start":
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		return ok && id.Name == "obs"
	case "StartChild":
		return true
	}
	return false
}

func spanStartName(call *ast.CallExpr) string {
	sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if sel.Sel.Name == "Start" {
		return "obs.Start"
	}
	return "StartChild"
}

// isTraceStart recognizes the two-value span constructor
// `trace.Start(ctx, name)` — a Start call through an identifier named
// trace. Like isSpanStart it is purely syntactic.
func isTraceStart(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Start" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && id.Name == "trace"
}

// isBackgroundCtx reports whether expr is a `context.Background()` call.
func isBackgroundCtx(expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Background" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && id.Name == "context"
}

// hasCtxParam reports whether the function signature takes a
// context.Context anywhere in its parameter list.
func hasCtxParam(ft *ast.FuncType) bool {
	if ft == nil || ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		sel, ok := ast.Unparen(field.Type).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Context" {
			continue
		}
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && id.Name == "context" {
			return true
		}
	}
	return false
}

// isEndOf reports whether call is `<name>.End()`.
func isEndOf(call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && id.Name == name
}

// checkSpanScope runs the rule over one function body.
func checkSpanScope(p *Pass, ft *ast.FuncType, body *ast.BlockStmt) {
	type spanVar struct {
		name string
		pos  token.Pos
	}
	var spans []spanVar

	// Orphan detection state: a trace.Start from context.Background() is a
	// finding when this scope already had a context in reach — either a
	// ctx parameter or an earlier trace.Start that produced one.
	instrumented := hasCtxParam(ft)
	sawTraceStart := token.NoPos

	checkOrphan := func(call *ast.CallExpr) {
		if len(call.Args) > 0 && isBackgroundCtx(call.Args[0]) &&
			(instrumented || (sawTraceStart != token.NoPos && sawTraceStart < call.Pos())) {
			p.Reportf(call.Pos(), "trace.Start from context.Background() orphans the span; pass the surrounding ctx")
		}
		if sawTraceStart == token.NoPos || call.Pos() < sawTraceStart {
			sawTraceStart = call.Pos()
		}
	}

	spanWalk(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.ExprStmt:
			call, ok := ast.Unparen(n.X).(*ast.CallExpr)
			if !ok {
				return
			}
			if isSpanStart(call) {
				p.Reportf(call.Pos(), "result of %s dropped; the span can never be ended", spanStartName(call))
			}
			if isTraceStart(call) {
				checkOrphan(call)
				p.Reportf(call.Pos(), "result of trace.Start dropped; the span can never be ended")
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return
			}
			call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return
			}
			switch {
			case len(n.Lhs) == 1 && isSpanStart(call):
				id, ok := n.Lhs[0].(*ast.Ident)
				if !ok {
					return
				}
				if id.Name == "_" {
					p.Reportf(call.Pos(), "result of %s assigned to _; the span can never be ended", spanStartName(call))
					return
				}
				spans = append(spans, spanVar{name: id.Name, pos: call.Pos()})
			case len(n.Lhs) == 2 && isTraceStart(call):
				checkOrphan(call)
				id, ok := n.Lhs[1].(*ast.Ident)
				if !ok {
					return
				}
				if id.Name == "_" {
					p.Reportf(call.Pos(), "span from trace.Start assigned to _; the span can never be ended")
					return
				}
				spans = append(spans, spanVar{name: id.Name, pos: call.Pos()})
			}
		}
	})

	if len(spans) == 0 {
		return
	}

	for _, s := range spans {
		// defer sp.End() anywhere in the scope covers every exit.
		deferred := false
		var ends []token.Pos
		spanWalk(body, func(n ast.Node) {
			switch n := n.(type) {
			case *ast.DeferStmt:
				if isEndOf(n.Call, s.name) {
					deferred = true
				}
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok && isEndOf(call, s.name) {
					ends = append(ends, call.Pos())
				}
			}
		})
		if deferred {
			continue
		}

		// Exits after the Start: every return statement plus the fall-off
		// end of the body. Each needs an End lexically in between.
		var exits []token.Pos
		spanWalk(body, func(n ast.Node) {
			if r, ok := n.(*ast.ReturnStmt); ok && r.Pos() > s.pos {
				exits = append(exits, r.Pos())
			}
		})
		exits = append(exits, body.Rbrace)

		for _, exit := range exits {
			covered := false
			for _, e := range ends {
				if e > s.pos && e < exit {
					covered = true
					break
				}
			}
			if !covered {
				p.Reportf(s.pos, "span %s may leak: exit at line %d without %s.End() and no defer",
					s.name, p.Fset.Position(exit).Line, s.name)
				break
			}
		}
	}
}

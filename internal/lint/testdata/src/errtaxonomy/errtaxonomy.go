// Fixture for the errtaxonomy analyzer: decode-path error returns must be
// able to wrap a taxonomy sentinel. Self-contained: sentinels and the
// boundary classifier are recognized by name, so local stand-ins exercise
// the same paths as the real compress package.
package errtaxonomy

import (
	"errors"
	"fmt"
	"strconv"
)

var (
	ErrTruncated = errors.New("fixture: truncated input")
	ErrCorrupt   = errors.New("fixture: corrupt input")
)

// Classify mimics compress.Classify; recognized by callee name.
func Classify(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, ErrTruncated) || errors.Is(err, ErrCorrupt) {
		return err
	}
	return fmt.Errorf("%w: %v", ErrCorrupt, err)
}

// Decompress returns bare errors on two paths: the seeded violations.
func Decompress(b []byte) ([]byte, error) {
	if len(b) == 0 {
		return nil, errors.New("empty input") // want "cannot wrap a taxonomy sentinel"
	}
	if b[0] != 1 {
		return nil, fmt.Errorf("bad version %d", b[0]) // want "cannot wrap a taxonomy sentinel"
	}
	return b[1:], nil
}

// DecompressGood wraps sentinels directly and via a classified helper:
// clean.
func DecompressGood(b []byte) ([]byte, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("empty input: %w", ErrTruncated)
	}
	payload, err := decodeBody(b)
	if err != nil {
		return nil, err
	}
	return payload, nil
}

// decodeBody always classifies its failures, so callers may pass its error
// straight through.
func decodeBody(b []byte) ([]byte, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("short body: %w", ErrTruncated)
	}
	return b[2:], nil
}

// readMagic never classifies: flagged here, and its class propagates to the
// pass-through return in DecompressBad below.
func readMagic(b []byte) error {
	if len(b) < 4 {
		return errors.New("no magic") // want "cannot wrap a taxonomy sentinel"
	}
	return nil
}

// DecompressBad forwards a helper error that provably cannot classify.
func DecompressBad(b []byte) ([]byte, error) {
	if err := readMagic(b); err != nil {
		return nil, err // want "cannot wrap a taxonomy sentinel"
	}
	return b[4:], nil
}

// DecompressClassified launders an unknown error through the boundary
// classifier: clean.
func DecompressClassified(b []byte) (int, error) {
	v, err := strconv.Atoi(string(b))
	if err != nil {
		return 0, Classify(err)
	}
	return v, nil
}

// DecompressClosure uses the local-closure decoder idiom; the closure's
// summary classifies, so the pass-through return is clean.
func DecompressClosure(b []byte) (int, error) {
	pos := 0
	next := func() (int, error) {
		if pos >= len(b) {
			return 0, fmt.Errorf("out of data: %w", ErrTruncated)
		}
		v := int(b[pos])
		pos++
		return v, nil
	}
	v, err := next()
	if err != nil {
		return 0, err
	}
	return v, nil
}

// DecodeAt's range check is caller API misuse, not a stream failure: the
// waiver suppresses the finding, so no diagnostic may surface here.
func DecodeAt(b []byte, coord int) (byte, error) {
	if coord < 0 || coord >= len(b) {
		//lrmlint:ignore errtaxonomy caller API misuse, not a decode failure
		return 0, fmt.Errorf("coordinate %d out of range", coord)
	}
	return b[coord], nil
}

// Package hotalloc is the golden fixture for the hotalloc analyzer: slice
// and map makes inside //lrm:hotpath functions are flagged unless they
// refill a sync.Pool (the arena slow path).
package hotalloc

import "sync"

var scratchPool sync.Pool

// encodeRows is a per-block kernel: every make here is a steady-state
// allocation storm.
//
//lrm:hotpath
func encodeRows(out []uint64, n int) int {
	tmp := make([]uint64, n)        // want "hot-path function encodeRows allocates with make"
	seen := make(map[uint64]int, n) // want "hot-path function encodeRows allocates with make"
	for i := range tmp {
		tmp[i] = uint64(i)
		seen[tmp[i]] = i
	}
	return len(out) + len(seen)
}

// refillScratch takes its buffer from the pool; the make inside the New
// callback is the arena's own refill path and must not be flagged.
//
//lrm:hotpath
func refillScratch(n int) []float64 {
	scratchPool.New = func() any {
		return make([]float64, 0, 4096) // arena refill: exempt
	}
	buf := scratchPool.Get().([]float64)
	return buf[:0]
}

// literalPool builds the pool inline; the New field's make is likewise the
// refill path, but the trailing make escapes the literal and is hot.
//
//lrm:hotpath
func literalPool(n int) []int {
	p := sync.Pool{New: func() any { return make([]int, 64) }}
	got := p.Get().([]int)
	extra := make([]int, n) // want "hot-path function literalPool allocates with make"
	return append(got, extra...)
}

// coldSetup is not marked hot: setup-time allocation is fine.
func coldSetup(n int) []float64 {
	return make([]float64, n)
}

// waived shows the per-site suppression escape hatch for a make that is
// genuinely once-per-call, not per-element.
//
//lrm:hotpath
func waived(n int) []byte {
	//lrmlint:ignore hotalloc header buffer is built once per stream
	hdr := make([]byte, 16)
	return hdr[:8:16]
}

// Fixture for the goroutine analyzer: fire-and-forget function literals
// are flagged; goroutines wired to a channel, context, or WaitGroup are
// not, and named calls are out of scope.
package goroutine

import (
	"context"
	"sync"
)

func launches(ctx context.Context) {
	go func() { // want "no completion signal"
		println("fire and forget")
	}()

	go func(n int) { // want "no completion signal"
		println(n)
	}(42)

	done := make(chan struct{})
	go func() { // ok: closes a channel
		close(done)
	}()
	<-done

	results := make(chan int, 1)
	go func() { // ok: sends on a channel
		results <- 1
	}()
	<-results

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // ok: WaitGroup
		defer wg.Done()
	}()
	wg.Wait()

	go func() { // ok: context cancellation
		<-ctx.Done()
	}()

	go func(c <-chan int) { // ok: channel passed as argument
		for range c {
		}
	}(results)

	go named() // ok: named callee not analyzed

	//lrmlint:ignore goroutine fixture exercises the suppression directive
	go func() {
		println("suppressed")
	}()
}

func named() {}

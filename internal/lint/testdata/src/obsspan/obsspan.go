// Package obsspan exercises the obsspan rule: spans opened by obs.Start or
// StartChild must be ended on every return path.
package obsspan

import "errors"

var errFail = errors.New("fail")

// Minimal stand-in for the real lrm/internal/obs API. The rule is
// syntactic — a call through an identifier named obs with selector Start
// triggers it — so the fixture stays stdlib-only.
type span struct{}

func (s *span) End()                         {}
func (s *span) StartChild(name string) *span { return s }
func (s *span) SetBytes(in, out int64)       {}

type registry struct{}

func (registry) Start(name string) *span { return &span{} }

var obs registry

// goodDefer ends its span via defer: every exit is covered.
func goodDefer(fail bool) error {
	sp := obs.Start("good.defer")
	defer sp.End()
	if fail {
		return errFail
	}
	return nil
}

// goodExplicit ends the span lexically before each exit.
func goodExplicit(fail bool) error {
	sp := obs.Start("good.explicit")
	if fail {
		sp.End()
		return errFail
	}
	sp.End()
	return nil
}

// badEarlyReturn leaks the span on the error path.
func badEarlyReturn(fail bool) error {
	sp := obs.Start("bad.early") // want "span sp may leak"
	if fail {
		return errFail
	}
	sp.End()
	return nil
}

// badFallOff leaks the span when control falls off the end of the body.
func badFallOff() {
	sp := obs.Start("bad.falloff") // want "span sp may leak"
	_ = sp
}

// badDropped discards the span result outright.
func badDropped() {
	obs.Start("bad.dropped") // want "result of obs.Start dropped"
}

// badBlank assigns the span to the blank identifier.
func badBlank() {
	_ = obs.Start("bad.blank") // want "assigned to _"
}

// goodChild ends its child before the parent's defer fires.
func goodChild() {
	sp := obs.Start("good.child")
	defer sp.End()
	cs := sp.StartChild("good.child.inner")
	cs.SetBytes(1, 2)
	cs.End()
}

// badChild leaks the child span on the early return; the parent's defer
// does not cover it.
func badChild(fail bool) error {
	sp := obs.Start("bad.child.parent")
	defer sp.End()
	cs := sp.StartChild("bad.child.inner") // want "span cs may leak"
	if fail {
		return errFail
	}
	cs.End()
	return nil
}

// closureScopes: function literals are separate scopes, so a span opened
// inside a closure must be ended inside that closure.
func closureScopes() {
	sp := obs.Start("closure.outer")
	defer sp.End()
	run(func() {
		inner := obs.Start("closure.inner") // want "span inner may leak"
		_ = inner
	})
	run(func() {
		inner := obs.Start("closure.ok")
		defer inner.End()
	})
}

func run(f func()) { f() }

// Package obsspan exercises the obsspan rule: spans opened by obs.Start,
// StartChild, or the two-value trace.Start must be ended on every return
// path, and trace.Start must not detach from a context already in reach.
package obsspan

import (
	"context"
	"errors"
)

var errFail = errors.New("fail")

// Minimal stand-in for the real lrm/internal/obs API. The rule is
// syntactic — a call through an identifier named obs with selector Start
// triggers it — so the fixture stays stdlib-only.
type span struct{}

func (s *span) End()                         {}
func (s *span) StartChild(name string) *span { return s }
func (s *span) SetBytes(in, out int64)       {}

type registry struct{}

func (registry) Start(name string) *span { return &span{} }

var obs registry

// goodDefer ends its span via defer: every exit is covered.
func goodDefer(fail bool) error {
	sp := obs.Start("good.defer")
	defer sp.End()
	if fail {
		return errFail
	}
	return nil
}

// goodExplicit ends the span lexically before each exit.
func goodExplicit(fail bool) error {
	sp := obs.Start("good.explicit")
	if fail {
		sp.End()
		return errFail
	}
	sp.End()
	return nil
}

// badEarlyReturn leaks the span on the error path.
func badEarlyReturn(fail bool) error {
	sp := obs.Start("bad.early") // want "span sp may leak"
	if fail {
		return errFail
	}
	sp.End()
	return nil
}

// badFallOff leaks the span when control falls off the end of the body.
func badFallOff() {
	sp := obs.Start("bad.falloff") // want "span sp may leak"
	_ = sp
}

// badDropped discards the span result outright.
func badDropped() {
	obs.Start("bad.dropped") // want "result of obs.Start dropped"
}

// badBlank assigns the span to the blank identifier.
func badBlank() {
	_ = obs.Start("bad.blank") // want "assigned to _"
}

// goodChild ends its child before the parent's defer fires.
func goodChild() {
	sp := obs.Start("good.child")
	defer sp.End()
	cs := sp.StartChild("good.child.inner")
	cs.SetBytes(1, 2)
	cs.End()
}

// badChild leaks the child span on the early return; the parent's defer
// does not cover it.
func badChild(fail bool) error {
	sp := obs.Start("bad.child.parent")
	defer sp.End()
	cs := sp.StartChild("bad.child.inner") // want "span cs may leak"
	if fail {
		return errFail
	}
	cs.End()
	return nil
}

// closureScopes: function literals are separate scopes, so a span opened
// inside a closure must be ended inside that closure.
func closureScopes() {
	sp := obs.Start("closure.outer")
	defer sp.End()
	run(func() {
		inner := obs.Start("closure.inner") // want "span inner may leak"
		_ = inner
	})
	run(func() {
		inner := obs.Start("closure.ok")
		defer inner.End()
	})
}

func run(f func()) { f() }

// Minimal stand-in for lrm/internal/obs/trace: Start takes a context and
// returns (ctx, span), the two-value shape the trace half of the rule
// matches on.
type tracer struct{}

func (tracer) Start(ctx context.Context, name string) (context.Context, *span) {
	return ctx, &span{}
}

var trace tracer

// goodTraceDefer ends the two-value span via defer.
func goodTraceDefer(ctx context.Context, fail bool) error {
	ctx, sp := trace.Start(ctx, "good.trace")
	defer sp.End()
	_ = ctx
	if fail {
		return errFail
	}
	return nil
}

// badTraceEarly leaks the two-value span on the error path.
func badTraceEarly(ctx context.Context, fail bool) error {
	_, sp := trace.Start(ctx, "bad.trace.early") // want "span sp may leak"
	if fail {
		return errFail
	}
	sp.End()
	return nil
}

// badTraceBlank discards the span half of the pair; it can never be ended.
func badTraceBlank(ctx context.Context) {
	_, _ = trace.Start(ctx, "bad.trace.blank") // want "assigned to _"
}

// badTraceDropped discards both results outright.
func badTraceDropped(ctx context.Context) {
	trace.Start(ctx, "bad.trace.dropped") // want "result of trace.Start dropped"
}

// badOrphanParam has a context parameter in hand but starts the span from
// context.Background(), detaching it from the caller's trace.
func badOrphanParam(ctx context.Context) {
	_, sp := trace.Start(context.Background(), "bad.orphan.param") // want "orphans the span"
	defer sp.End()
	_ = ctx
}

// badOrphanChained has no context parameter, but an earlier trace.Start in
// the same scope already produced one; the second Background start begins
// a parentless tree instead of nesting under the first.
func badOrphanChained() {
	rctx, root := trace.Start(context.Background(), "orphan.root")
	defer root.End()
	_ = rctx
	_, child := trace.Start(context.Background(), "bad.orphan.child") // want "orphans the span"
	defer child.End()
}

// goodTraceRoot legitimately begins a trace: no context is in reach, so
// Background is the only possible parent.
func goodTraceRoot() {
	_, sp := trace.Start(context.Background(), "good.trace.root")
	defer sp.End()
}

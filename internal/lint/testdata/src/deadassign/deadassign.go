// Fixture for the deadassign analyzer: blank assignments of pure
// expressions are flagged; blank assignments with observable effects and
// compile-time conformance declarations are not.
package deadassign

import "io"

type pair struct{ a, b int }

// Conformance checks are declarations, not assignments: never flagged.
var _ io.Writer = (*nullWriter)(nil)

type nullWriter struct{}

func (*nullWriter) Write(p []byte) (int, error) { return len(p), nil }

func f(xs []int, p pair, q *pair) int {
	x := 1
	_ = x       // want "dead blank assignment"
	_ = p.a     // want "dead blank assignment"
	_ = x + p.b // want "dead blank assignment"
	_ = -x      // want "dead blank assignment"

	_ = xs[0]    // ok: keeps the bounds check
	_ = *q       // ok: keeps the nil check
	_ = len(xs)  // ok: call expressions may have effects
	_, y := 0, 2 // ok: multi-assignment
	var z any = x
	_ = z.(int) // ok: type assertion can panic

	//lrmlint:ignore deadassign fixture exercises the suppression directive
	_ = x
	return x + y
}

// Fixture for the floatcmp analyzer: naked float equality between
// non-constant operands is flagged; constant comparisons and suppressed
// lines are not.
package floatcmp

import "math"

const tol = 1e-9

func compare(a, b float64, f32 float32, g32 float32) int {
	hits := 0
	if a == b { // want "float equality"
		hits++
	}
	if a != b { // want "float equality"
		hits++
	}
	if f32 == g32 { // want "float equality"
		hits++
	}
	if math.Abs(a-b) <= tol { // ok: tolerance comparison
		hits++
	}
	if a == 0 { // ok: constant zero sentinel
		hits++
	}
	if b != tol { // ok: named constant
		hits++
	}
	if a == math.MaxFloat64 { // ok: stdlib constant
		hits++
	}
	var i, j int
	if i == j { // ok: integers compare exactly
		hits++
	}
	//lrmlint:ignore floatcmp fixture exercises the suppression directive
	if a == b {
		hits++
	}
	return hits
}

// Fixture for the ignorederr analyzer: discarded error results from the
// Write/Encode/Decode family are flagged; checked calls and infallible
// writers are not.
package ignorederr

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
)

type codec struct{}

func (codec) Encode(v float64) error            { return nil }
func (codec) Decode(b []byte) error             { return nil }
func (codec) Compress(b []byte) ([]byte, error) { return b, nil }
func (codec) Name() string                      { return "fixture" }

func use(w io.Writer, c codec, buf *bytes.Buffer, sb *strings.Builder) error {
	w.Write(nil)                                      // want "error result of"
	c.Encode(3.5)                                     // want "error result of"
	c.Decode(nil)                                     // want "error result of"
	c.Compress(nil)                                   // want "error result of"
	binary.Write(buf, binary.LittleEndian, uint32(1)) // want "error result of"

	buf.Write(nil)                      // ok: bytes.Buffer never fails
	sb.Write(nil)                       // ok: strings.Builder never fails
	c.Name()                            // ok: no error result
	if err := c.Encode(1); err != nil { // ok: checked
		return err
	}
	_, err := w.Write(nil) // ok: captured
	//lrmlint:ignore ignorederr fixture exercises the suppression directive
	c.Decode(nil)
	return err
}

// Fixture for the mutexcopy analyzer: by-value copies of lock-bearing
// types are flagged across parameters, receivers, assignments, and range
// clauses; pointers and fresh composite literals are not.
package mutexcopy

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

type nested struct {
	inner [2]guarded
}

func byValueParam(g guarded) int { return g.n } // want "parameter passes"

func byValueNested(n nested) int { return n.inner[0].n } // want "parameter passes"

func (g guarded) valueReceiver() int { return g.n } // want "receiver passes"

func (g *guarded) pointerReceiver() int { return g.n } // ok

func byPointer(g *guarded, wg *sync.WaitGroup) {} // ok

func copies() int {
	var a guarded
	b := a // want "assignment copies"
	var wg sync.WaitGroup
	wg2 := wg // want "assignment copies"
	wg2.Wait()

	list := make([]guarded, 1)
	total := 0
	for _, g := range list { // want "range clause copies"
		total += g.n
	}
	for i := range list { // ok: index iteration
		total += list[i].n
	}

	p := &a            // ok: pointer
	fresh := guarded{} // ok: composite literal constructs a fresh value
	//lrmlint:ignore mutexcopy fixture exercises the suppression directive
	c := a
	return b.n + p.n + fresh.n + c.n + total
}

// Fixture for the decodetaint analyzer: allocation sizes and index bounds
// derived from decoded input must pass CheckedAlloc/NewCheckedField or a
// relational bounds guard. Self-contained: the sanitizers are recognized by
// name, so local stand-ins exercise the same paths as the real compress
// package.
package decodetaint

import (
	"encoding/binary"
	"errors"
)

var errBad = errors.New("bad stream")

// CheckedAlloc mimics compress.CheckedAlloc; the analyzer recognizes the
// bounds-guard contract by callee name.
func CheckedAlloc(what string, elems, maxElems uint64, elemBytes int) error {
	if elems > maxElems {
		return errBad
	}
	return nil
}

// Decompress allocates straight from a header-claimed length: the seeded
// violation the self-gate must catch.
func Decompress(b []byte) ([]float64, error) {
	n, _ := binary.Uvarint(b)
	out := make([]float64, n) // want "make sized by untrusted decoded value"
	return out, nil
}

// DecompressChecked bounds the claim through CheckedAlloc first: clean.
func DecompressChecked(b []byte) ([]float64, error) {
	n, _ := binary.Uvarint(b)
	if err := CheckedAlloc("fixture: values", n, uint64(len(b))/8, 8); err != nil {
		return nil, err
	}
	out := make([]float64, n)
	return out, nil
}

// DecompressGuarded uses an explicit relational guard instead: clean.
func DecompressGuarded(b []byte) ([]byte, error) {
	n, _ := binary.Uvarint(b)
	if n > uint64(len(b)) {
		return nil, errBad
	}
	return make([]byte, n), nil
}

// DecompressCopy sizes from the data actually in hand, not a claim: clean.
func DecompressCopy(b []byte) []byte {
	cp := make([]byte, len(b))
	copy(cp, b)
	return cp
}

// readLen is a helper whose summary marks its first result as decoded
// (untrusted) data.
func readLen(b []byte) (uint64, []byte) {
	v, n := binary.Uvarint(b)
	return v, b[n:]
}

// DecompressHelper shows taint flowing through a helper's result summary.
func DecompressHelper(b []byte) ([]int, error) {
	v, rest := readLen(b)
	out := make([]int, v) // want "make sized by untrusted decoded value"
	for i := range out {
		if i < len(rest) {
			out[i] = int(rest[i])
		}
	}
	return out, nil
}

// alloc's parameter reaches a make unguarded, so its summary marks the
// parameter size-sensitive; the violation is reported at call sites that
// feed it untrusted values, not here.
func alloc(n uint64) []float64 {
	return make([]float64, n)
}

// DecompressVia passes a decoded claim into a size-sensitive parameter.
func DecompressVia(b []byte) []float64 {
	claimed, _ := binary.Uvarint(b)
	return alloc(claimed) // want "size-determining parameter"
}

// DecodeIndex uses a decoded value as an index with no bounds guard.
func DecodeIndex(b []byte, table []int) int {
	i, _ := binary.Uvarint(b)
	return table[i] // want "index derived from untrusted decoded value"
}

// DecodeIndexGuarded bounds the index first: clean.
func DecodeIndexGuarded(b []byte, table []int) int {
	i, _ := binary.Uvarint(b)
	if i >= uint64(len(table)) {
		return -1
	}
	return table[i]
}

// DecodeSuppressed carries a reviewed waiver: the directive suppresses the
// finding, so no diagnostic may surface here.
func DecodeSuppressed(b []byte) []byte {
	n, _ := binary.Uvarint(b)
	//lrmlint:ignore decodetaint n is bounded by protocol framing upstream
	return make([]byte, n)
}

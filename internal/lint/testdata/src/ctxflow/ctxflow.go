// Fixture for the ctxflow analyzer: a function holding a context must pass
// it down — not replace it with Background/TODO, and not call the plain
// variant of a function whose Ctx variant exists.
package ctxflow

import "context"

func Work(n int) int { return n * 2 }

func WorkCtx(ctx context.Context, n int) int {
	select {
	case <-ctx.Done():
		return 0
	default:
	}
	return n * 2
}

// Run is the entry layer: no ctx parameter, so starting a fresh context is
// legitimate. Clean.
func Run(n int) int {
	return RunCtx(context.Background(), n)
}

// RunCtx holds a context and must thread it.
func RunCtx(ctx context.Context, n int) int {
	a := Work(n)                          // want "call drops the surrounding ctx; use WorkCtx"
	b := WorkCtx(context.Background(), n) // want "context.Background"
	return a + b
}

// Later re-rooted the chain with TODO.
func Later(ctx context.Context, n int) int {
	return WorkCtx(context.TODO(), n) // want "context.TODO"
}

type Store struct{}

func (s *Store) Get(k string) string                         { return k }
func (s *Store) GetCtx(ctx context.Context, k string) string { return k }

// Fetch drops ctx on a method whose receiver declares a Ctx variant.
func Fetch(ctx context.Context, s *Store, k string) string {
	return s.Get(k) // want "use Store.GetCtx"
}

// Spawn's closure captures ctx, so it shares the obligation.
func Spawn(ctx context.Context, n int) int {
	f := func() int {
		return Work(n) // want "call drops the surrounding ctx"
	}
	return f()
}

type Codec interface{ Do(n int) int }

// Use calls through an interface with no Ctx variant in its method set:
// clean — the assert-and-fallback idiom is the sanctioned path there.
func Use(ctx context.Context, c Codec, n int) int {
	return c.Do(n)
}

// Detach deliberately hands work to a fresh context; the reviewed waiver
// suppresses the finding, so no diagnostic may surface here.
func Detach(ctx context.Context, n int) int {
	//lrmlint:ignore ctxflow deliberate detach: cleanup must outlive the request
	go WorkCtx(context.Background(), n)
	return n
}

package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Pass       *Pass
}

// Loader parses and type-checks packages of one module without invoking the
// go tool: local import paths resolve against the module root, everything
// else (the standard library) goes through the stdlib source importer.
type Loader struct {
	Root         string // module root directory (contains go.mod)
	IncludeTests bool   // also parse in-package _test.go files

	fset    *token.FileSet
	modPath string
	std     types.Importer
	pkgs    map[string]*types.Package
	passes  map[string]*Pass
	loading map[string]bool
}

// NewLoader returns a loader rooted at the module directory.
func NewLoader(root string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:    root,
		fset:    fset,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*types.Package{},
		passes:  map[string]*Pass{},
		loading: map[string]bool{},
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Load resolves package patterns ("./...", "./internal/compress/...", a
// plain directory) to type-checked packages in deterministic order.
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	dirSet := map[string]bool{}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
		} else if pat == "..." {
			recursive, pat = true, "."
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(l.Root, base)
		}
		if !recursive {
			dirSet[filepath.Clean(base)] = true
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			dirSet[filepath.Clean(path)] = true
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	dirs := make([]string, 0, len(dirSet))
	for d := range dirSet {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)

	var out []*Package
	for _, dir := range dirs {
		ip, err := l.importPathFor(dir)
		if err != nil {
			return nil, err
		}
		pass, err := l.loadDir(ip, dir)
		if err != nil {
			if _, nogo := err.(*build.NoGoError); nogo {
				continue
			}
			return nil, fmt.Errorf("lint: %s: %w", ip, err)
		}
		if pass == nil {
			continue
		}
		out = append(out, &Package{ImportPath: ip, Dir: dir, Pass: pass})
	}
	return out, nil
}

func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.modPath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: directory %s is outside module %s", dir, l.Root)
	}
	return l.modPath + "/" + filepath.ToSlash(rel), nil
}

// Import implements types.Importer: local paths load from source within the
// module, everything else defers to the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
		if _, err := l.loadDir(path, filepath.Join(l.Root, filepath.FromSlash(rel))); err != nil {
			return nil, err
		}
		return l.pkgs[path], nil
	}
	return l.std.Import(path)
}

// loadDir parses and type-checks the package in dir, memoized by import
// path. It returns nil for directories with no buildable Go files only when
// the caller tolerates that (Load does; Import treats it as an error).
func (l *Loader) loadDir(importPath, dir string) (*Pass, error) {
	if pass, ok := l.passes[importPath]; ok {
		return pass, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	names := append([]string(nil), bp.GoFiles...)
	if l.IncludeTests {
		names = append(names, bp.TestGoFiles...)
	}
	sort.Strings(names)

	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, &build.NoGoError{Dir: dir}
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	l.pkgs[importPath] = pkg
	pass := NewPass(l.fset, files, info, pkg)
	l.passes[importPath] = pass
	return pass, nil
}

// CheckFile type-checks one standalone source file (stdlib imports only) —
// the loading mode the golden tests use for testdata fixtures.
func CheckFile(filename string) (*Pass, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, nil, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(f.Name.Name, fset, []*ast.File{f}, info)
	if err != nil {
		return nil, err
	}
	return NewPass(fset, []*ast.File{f}, info, pkg), nil
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file implements the decode-taint dataflow engine shared by the
// decodetaint analyzer: per-function taint summaries over the module call
// graph, propagated to a fixed point.
//
// The model is deliberately lexical inside a function (statements are
// considered in source order, like the obsspan analyzer) and summary-based
// across functions:
//
//   sources    []byte parameters of decode-scope functions, values read
//              from streams (binary.Uvarint/Varint, binary.XxxEndian.UintN,
//              ReadBit/ReadBits-style methods, NewReader), and results of
//              callees whose summaries mark them tainted;
//   sanitizers a call to CheckedAlloc / NewCheckedField mentioning the
//              value, or a relational comparison (< <= > >=) mentioning it
//              in an if/for/switch condition — the shapes a bounds guard
//              takes in this codebase;
//   sinks      make() lengths and capacities, index/slice bounds, and
//              arguments flowing into a callee parameter that the callee's
//              summary marks size-sensitive.
//
// Taint is tracked per identifier object. Writes through an index
// expression taint the container (contents-taint); range statements
// propagate container taint to the element variable; len() and cap() of a
// tainted value are trusted (the actual input length is ground truth).
// Struct fields are not tracked — a value laundered through a field read
// drops its taint, a documented false-negative trade so the repo-wide gate
// stays quiet.

// taintLabel is the label set of one value: derived from untrusted decoded
// input, and/or derived from specific parameters of the enclosing function
// (the latter feed the size-parameter summaries).
type taintLabel struct {
	untrusted bool
	params    map[int]bool
}

func (l *taintLabel) empty() bool { return l == nil || (!l.untrusted && len(l.params) == 0) }

func (l *taintLabel) merge(o *taintLabel) {
	if o == nil {
		return
	}
	l.untrusted = l.untrusted || o.untrusted
	for i := range o.params {
		if l.params == nil {
			l.params = map[int]bool{}
		}
		l.params[i] = true
	}
}

func (l *taintLabel) clone() *taintLabel {
	c := &taintLabel{}
	c.merge(l)
	return c
}

func (l *taintLabel) equal(o *taintLabel) bool {
	if l.untrusted != o.untrusted || len(l.params) != len(o.params) {
		return false
	}
	for i := range l.params {
		if !o.params[i] {
			return false
		}
	}
	return true
}

// taintSummary is the interprocedural contract of one function: which
// results carry decoded-input taint (or pass specific parameters through),
// and which integer parameters reach an unguarded allocation or index sink
// inside it.
type taintSummary struct {
	results    []taintLabel
	sizeParams map[int]bool
}

func (s *taintSummary) equal(o *taintSummary) bool {
	if len(s.results) != len(o.results) || len(s.sizeParams) != len(o.sizeParams) {
		return false
	}
	for i := range s.results {
		if !s.results[i].equal(&o.results[i]) {
			return false
		}
	}
	for i := range s.sizeParams {
		if !o.sizeParams[i] {
			return false
		}
	}
	return true
}

// taintSummaries computes summaries for every decode-scope function,
// iterating until they stop changing so taint flows through helper chains
// of any depth (bounded at a small pass count as a cycle backstop).
func (prog *Program) taintSummaries() map[*types.Func]*taintSummary {
	if prog.taint != nil {
		return prog.taint
	}
	prog.taint = map[*types.Func]*taintSummary{}
	var fns []*FuncInfo
	for obj := range prog.decodeScope {
		if info := prog.Funcs[obj]; info != nil {
			fns = append(fns, info)
		}
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Obj.FullName() < fns[j].Obj.FullName() })
	for pass := 0; pass < 5; pass++ {
		changed := false
		for _, fn := range fns {
			sum := prog.analyzeTaint(fn, false)
			if old, ok := prog.taint[fn.Obj]; !ok || !old.equal(sum) {
				prog.taint[fn.Obj] = sum
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return prog.taint
}

// taintState is the per-function analysis state.
type taintState struct {
	prog   *Program
	pass   *Pass
	fn     *FuncInfo
	report bool

	paramIndex map[types.Object]int
	labels     map[types.Object]*taintLabel
	sanitized  map[types.Object]bool
	closures   map[types.Object]*taintSummary
	seenLits   map[*ast.FuncLit]bool
	summary    *taintSummary
}

// analyzeTaint runs the dataflow over one function body, returning its
// summary and (when report is set) emitting diagnostics for sinks fed by
// untrusted values.
func (prog *Program) analyzeTaint(fn *FuncInfo, report bool) *taintSummary {
	st := &taintState{
		prog:       prog,
		pass:       fn.Pass,
		fn:         fn,
		report:     report,
		paramIndex: map[types.Object]int{},
		labels:     map[types.Object]*taintLabel{},
		sanitized:  map[types.Object]bool{},
		closures:   map[types.Object]*taintSummary{},
		seenLits:   map[*ast.FuncLit]bool{},
		summary:    &taintSummary{sizeParams: map[int]bool{}},
	}
	sig := fn.Obj.Type().(*types.Signature)
	st.summary.results = make([]taintLabel, sig.Results().Len())

	// Seed parameters. Byte slices and stream readers are untrusted decoded
	// input by definition of the scope; every parameter additionally carries
	// its own param label so pass-through and size-sensitivity propagate to
	// callers.
	idx := 0
	if fn.Decl.Type.Params != nil {
		for _, field := range fn.Decl.Type.Params.List {
			n := len(field.Names)
			if n == 0 {
				idx++ // unnamed parameter still occupies a signature slot
				continue
			}
			for _, name := range field.Names {
				obj := st.pass.localObj(name)
				if obj == nil {
					idx++
					continue
				}
				lbl := &taintLabel{params: map[int]bool{idx: true}}
				if isByteSliceType(obj.Type()) || isStreamReaderType(obj.Type()) {
					lbl.untrusted = true
				}
				st.labels[obj] = lbl
				st.paramIndex[obj] = idx
				idx++
			}
		}
	}

	st.walkBody(fn.Decl.Body, st.summary)
	return st.summary
}

// walkBody runs the lexical walk over one body, attributing return
// statements to collect (the summary of the function or closure being
// analyzed). Nested function literals are analyzed recursively with shared
// state — captured variables keep their labels — but their returns go to
// their own collector.
func (st *taintState) walkBody(body *ast.BlockStmt, collect *taintSummary) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if st.seenLits[n] {
				return false
			}
			st.seenLits[n] = true
			nres := 0
			if n.Type.Results != nil {
				for _, f := range n.Type.Results.List {
					if len(f.Names) == 0 {
						nres++
					} else {
						nres += len(f.Names)
					}
				}
			}
			// An unassigned literal (goroutine body, parallel.ForShard
			// closure) executes in this function's ident space: walk it with
			// shared state; its returns belong to nobody.
			sub := &taintSummary{results: make([]taintLabel, nres), sizeParams: map[int]bool{}}
			st.walkBody(n.Body, sub)
			return false
		case *ast.IfStmt:
			st.sanitizeCond(n.Cond)
		case *ast.ForStmt:
			if n.Cond != nil {
				st.sanitizeCond(n.Cond)
			}
		case *ast.SwitchStmt:
			if n.Tag != nil {
				st.sanitizeCond(n.Tag)
			}
			for _, cl := range n.Body.List {
				if cc, ok := cl.(*ast.CaseClause); ok {
					for _, e := range cc.List {
						st.sanitizeCond(e)
					}
				}
			}
		case *ast.CallExpr:
			st.visitCall(n)
		case *ast.AssignStmt:
			st.visitAssign(n)
		case *ast.GenDecl:
			if n.Tok == token.VAR {
				for _, spec := range n.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						st.visitValueSpec(vs)
					}
				}
			}
		case *ast.RangeStmt:
			st.visitRange(n)
		case *ast.ReturnStmt:
			st.visitReturn(n, collect)
		case *ast.IndexExpr:
			st.checkIndex(n.Index, "index")
		case *ast.SliceExpr:
			for _, b := range []ast.Expr{n.Low, n.High, n.Max} {
				if b != nil {
					st.checkIndex(b, "slice bound")
				}
			}
		}
		return true
	})
}

// sanitizeCond treats a relational comparison mentioning a value as a
// bounds guard for it: after `if n > max { return err }` (or any <, <=, >,
// >= involving n) the value is considered checked. Equality alone does not
// bound a size, so == and != do not sanitize.
func (st *taintState) sanitizeCond(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch b.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ:
			for _, side := range []ast.Expr{b.X, b.Y} {
				ast.Inspect(side, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						if obj := st.pass.localObj(id); obj != nil {
							st.sanitized[obj] = true
						}
					}
					return true
				})
			}
		}
		return true
	})
}

// sanitizeArgs marks every identifier mentioned in the call's arguments as
// checked — the CheckedAlloc / NewCheckedField contract is that the callee
// validates the claim before any allocation happens.
func (st *taintState) sanitizeArgs(call *ast.CallExpr) {
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := st.pass.localObj(id); obj != nil {
					st.sanitized[obj] = true
				}
			}
			return true
		})
	}
}

// visitCall handles the statement-level effects of one call: sanitizer
// recognition, make sinks, and size-sensitive callee parameters.
func (st *taintState) visitCall(call *ast.CallExpr) {
	name := calleeName(call)
	switch name {
	case "CheckedAlloc", "NewCheckedField":
		st.sanitizeArgs(call)
		return
	case "make":
		if len(call.Args) >= 2 {
			for _, size := range call.Args[1:] {
				st.checkSize(size, "make")
			}
		}
		return
	}
	// Size-sensitive parameters of module callees (and local closures).
	sum := st.calleeSummary(call)
	if sum == nil || len(sum.sizeParams) == 0 {
		return
	}
	for i, arg := range call.Args {
		if !sum.sizeParams[i] {
			continue
		}
		lbl := st.labelsOf(arg)
		if lbl.untrusted {
			if st.report {
				st.pass.Reportf(arg.Pos(),
					"untrusted decoded value flows into size-determining parameter %d of %s without CheckedAlloc or a bounds guard",
					i, name)
			}
			// The sink also sanitizes: one report per value, not one per
			// downstream use.
			st.sanitizeExpr(arg)
		}
		for p := range lbl.params {
			st.summary.sizeParams[p] = true
		}
	}
}

// checkSize reports an allocation sized by an untrusted value and records
// parameter-derived sizes in the summary.
func (st *taintState) checkSize(size ast.Expr, what string) {
	lbl := st.labelsOf(size)
	if lbl.untrusted {
		if st.report {
			st.pass.Reportf(size.Pos(),
				"%s sized by untrusted decoded value without CheckedAlloc/NewCheckedField or a bounds guard", what)
		}
		st.sanitizeExpr(size)
	}
	for p := range lbl.params {
		// Only integer parameters are size-sensitive; a []byte parameter
		// mentioned in a size expression (len-free) is already untrusted.
		if obj := st.paramObj(p); obj != nil && isIntegerType(obj.Type()) {
			st.summary.sizeParams[p] = true
		}
	}
}

// checkIndex reports an index or slice bound derived from an untrusted
// value. Parameter-derived indexes also mark the parameter size-sensitive:
// an out-of-range index panics just like an oversized make allocates.
func (st *taintState) checkIndex(e ast.Expr, what string) {
	lbl := st.labelsOf(e)
	if lbl.untrusted {
		if st.report {
			st.pass.Reportf(e.Pos(),
				"%s derived from untrusted decoded value without a bounds guard", what)
		}
		st.sanitizeExpr(e)
	}
	for p := range lbl.params {
		if obj := st.paramObj(p); obj != nil && isIntegerType(obj.Type()) {
			st.summary.sizeParams[p] = true
		}
	}
}

// sanitizeExpr marks the identifiers of a just-reported expression checked,
// collapsing repeated uses of one bad value into a single diagnostic.
func (st *taintState) sanitizeExpr(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := st.pass.localObj(id); obj != nil {
				st.sanitized[obj] = true
			}
		}
		return true
	})
}

func (st *taintState) paramObj(i int) types.Object {
	for obj, idx := range st.paramIndex {
		if idx == i {
			return obj
		}
	}
	return nil
}

// visitAssign propagates labels through an assignment.
func (st *taintState) visitAssign(as *ast.AssignStmt) {
	// Closure definition: `f := func() ... {...}` — analyze the literal now
	// (shared state; captures keep labels) and key its summary by f.
	if len(as.Lhs) == 1 && len(as.Rhs) == 1 {
		if lit, ok := ast.Unparen(as.Rhs[0]).(*ast.FuncLit); ok {
			if id, ok := as.Lhs[0].(*ast.Ident); ok {
				if !st.seenLits[lit] {
					st.seenLits[lit] = true
					nres := 0
					if lit.Type.Results != nil {
						for _, f := range lit.Type.Results.List {
							if len(f.Names) == 0 {
								nres++
							} else {
								nres += len(f.Names)
							}
						}
					}
					sub := &taintSummary{results: make([]taintLabel, nres), sizeParams: map[int]bool{}}
					st.walkBody(lit.Body, sub)
					if obj := st.pass.localObj(id); obj != nil {
						st.closures[obj] = sub
					}
				}
				return
			}
		}
	}

	// Multi-value call: `a, b := g(...)`.
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
			labels := st.callResultLabels(call, len(as.Lhs))
			for i, lhs := range as.Lhs {
				st.assignLabel(lhs, labels[i], as.Tok)
			}
			return
		}
	}

	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i := range as.Lhs {
		st.assignLabel(as.Lhs[i], st.labelsOf(as.Rhs[i]), as.Tok)
	}
}

func (st *taintState) visitValueSpec(vs *ast.ValueSpec) {
	if len(vs.Values) == 1 && len(vs.Names) > 1 {
		if call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr); ok {
			labels := st.callResultLabels(call, len(vs.Names))
			for i, name := range vs.Names {
				st.assignLabel(name, labels[i], token.DEFINE)
			}
			return
		}
	}
	for i, name := range vs.Names {
		if i < len(vs.Values) {
			st.assignLabel(name, st.labelsOf(vs.Values[i]), token.DEFINE)
		}
	}
}

// assignLabel stores a label on the assignment target. Plain identifiers
// take the label (clearing any earlier sanitization — a reassigned variable
// is a new value); writes through an index expression taint the container's
// contents.
func (st *taintState) assignLabel(lhs ast.Expr, lbl *taintLabel, tok token.Token) {
	compound := tok != token.ASSIGN && tok != token.DEFINE // += etc. merge
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return
		}
		obj := st.pass.localObj(lhs)
		if obj == nil {
			return
		}
		if compound {
			cur := st.labels[obj]
			if cur == nil {
				cur = &taintLabel{}
				st.labels[obj] = cur
			}
			cur.merge(lbl)
			if !lbl.empty() {
				delete(st.sanitized, obj)
			}
			return
		}
		st.labels[obj] = lbl.clone()
		if !lbl.empty() {
			delete(st.sanitized, obj)
		}
	case *ast.IndexExpr:
		if base, ok := ast.Unparen(lhs.X).(*ast.Ident); ok && !lbl.empty() {
			if obj := st.pass.localObj(base); obj != nil {
				cur := st.labels[obj]
				if cur == nil {
					cur = &taintLabel{}
					st.labels[obj] = cur
				}
				cur.merge(lbl)
			}
		}
	}
}

func (st *taintState) visitRange(r *ast.RangeStmt) {
	lbl := st.labelsOf(r.X)
	if lbl.empty() {
		return
	}
	// The element variable carries the container's label; the index is a
	// position in the actual data, hence trusted.
	if r.Value != nil {
		st.assignLabel(r.Value, lbl, token.DEFINE)
	}
}

func (st *taintState) visitReturn(ret *ast.ReturnStmt, collect *taintSummary) {
	if collect == nil {
		return
	}
	if len(ret.Results) == 1 && len(collect.results) > 1 {
		if call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr); ok {
			labels := st.callResultLabels(call, len(collect.results))
			for i := range collect.results {
				collect.results[i].merge(labels[i])
			}
			return
		}
	}
	for i, e := range ret.Results {
		if i < len(collect.results) {
			collect.results[i].merge(st.labelsOf(e))
		}
	}
}

// callResultLabels computes the labels of each result of a call, applying
// callee summaries: a result marked untrusted stays untrusted; a result
// marked pass-through of parameter j takes the label of argument j at this
// site. Stream-reading heuristics give the known decoder shapes their
// labels even where no summary exists.
func (st *taintState) callResultLabels(call *ast.CallExpr, n int) []*taintLabel {
	labels := make([]*taintLabel, n)
	for i := range labels {
		labels[i] = &taintLabel{}
	}
	name := calleeName(call)

	// Stream-reader heuristics: in decode scope, anything read off the
	// stream is untrusted regardless of where the reader type lives.
	switch name {
	case "Uvarint", "Varint":
		if len(call.Args) > 0 && !st.labelsOf(call.Args[0]).empty() {
			labels[0].untrusted = true
		}
		return labels
	case "ReadBit", "ReadBits", "ReadUvarint", "ReadVarint", "ReadByte":
		labels[0].untrusted = true
		return labels
	}

	sum := st.calleeSummary(call)
	if sum == nil {
		return labels
	}
	for i := 0; i < n && i < len(sum.results); i++ {
		if sum.results[i].untrusted {
			labels[i].untrusted = true
		}
		for p := range sum.results[i].params {
			if p < len(call.Args) {
				labels[i].merge(st.labelsOf(call.Args[p]))
			}
		}
	}
	return labels
}

// calleeSummary resolves the taint summary for a call target: a local
// closure's recorded summary or a module function's fixed-point summary.
func (st *taintState) calleeSummary(call *ast.CallExpr) *taintSummary {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj := st.pass.localObj(id); obj != nil {
			if sum, ok := st.closures[obj]; ok {
				return sum
			}
		}
	}
	callee := st.pass.calleeFunc(call)
	if callee == nil {
		return nil
	}
	return st.prog.taint[callee]
}

// labelsOf computes the label of an expression: the union over mentioned
// identifiers (ignoring sanitized ones), with len/cap arguments excluded
// (the actual size of data in hand is trusted), fresh allocations clean,
// and call results labeled via callee summaries and reader heuristics.
func (st *taintState) labelsOf(e ast.Expr) *taintLabel {
	out := &taintLabel{}
	st.addLabels(e, out)
	return out
}

func (st *taintState) addLabels(e ast.Expr, out *taintLabel) {
	switch e := ast.Unparen(e).(type) {
	case nil:
	case *ast.Ident:
		obj := st.pass.localObj(e)
		if obj == nil || st.sanitized[obj] {
			return
		}
		out.merge(st.labels[obj])
	case *ast.BasicLit:
	case *ast.BinaryExpr:
		st.addLabels(e.X, out)
		st.addLabels(e.Y, out)
	case *ast.UnaryExpr:
		st.addLabels(e.X, out)
	case *ast.StarExpr:
		st.addLabels(e.X, out)
	case *ast.SelectorExpr:
		// Field read through a tainted base keeps the base's label; a
		// package-qualified name contributes nothing.
		if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			if obj := st.pass.localObj(id); obj != nil {
				if _, isPkg := obj.(*types.PkgName); isPkg {
					return
				}
			}
		}
		st.addLabels(e.X, out)
	case *ast.IndexExpr:
		st.addLabels(e.X, out)
		st.addLabels(e.Index, out)
	case *ast.SliceExpr:
		st.addLabels(e.X, out)
	case *ast.TypeAssertExpr:
		st.addLabels(e.X, out)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				st.addLabels(kv.Value, out)
				continue
			}
			st.addLabels(el, out)
		}
	case *ast.CallExpr:
		switch calleeName(e) {
		case "len", "cap", "make", "new":
			return
		}
		// Conversions keep their operand's label.
		if tv, ok := st.pass.Info.Types[e.Fun]; ok && tv.IsType() {
			for _, a := range e.Args {
				st.addLabels(a, out)
			}
			return
		}
		labels := st.callResultLabels(e, 1)
		out.merge(labels[0])
	case *ast.FuncLit:
		// handled separately; a literal value itself carries no taint
	}
}

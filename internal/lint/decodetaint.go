package lint

// AnalyzerDecodeTaint flags allocation sizes and index bounds derived from
// untrusted decoded input that do not pass through compress.CheckedAlloc /
// compress.NewCheckedField or an explicit relational bounds guard. It is
// the machine check for the PR-3 hardening contract: a hostile archive must
// never choose an allocation size or an index on a decode path.
//
// The analysis is interprocedural over function summaries (see taint.go):
// decode entry points — Decompress*/Decode*-named functions — seed their
// []byte parameters and stream reads as untrusted; helper summaries carry
// taint through results and flag size-sensitive parameters, propagated to a
// fixed point over the module call graph. Reports land where the unguarded
// value meets the sink (a make, an index, or a call passing it into a
// size-sensitive parameter).
var AnalyzerDecodeTaint = &Analyzer{
	Name: "decodetaint",
	Doc:  "decode-path allocation or index bound from untrusted input without CheckedAlloc or a bounds guard",
	Run:  runDecodeTaint,
}

func runDecodeTaint(p *Pass) {
	prog := p.Program()
	prog.taintSummaries()
	for _, fn := range prog.scopeFuncs(p) {
		prog.analyzeTaint(fn, true)
	}
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerGoroutine flags `go func(){...}()` statements whose function
// literal shows no completion or cancellation mechanism: no channel
// operation (send, receive, close, select, range-over-channel), no
// context.Context use, and no sync.WaitGroup interaction. Such a goroutine
// cannot be joined or stopped — in the chunked-compression and MPI-rank
// fan-outs of this repository that means silent data loss when the caller
// returns before the goroutine does.
//
// Calls to named functions (`go worker(ch)`) are not analyzed: the escape
// mechanism usually lives inside the callee, which may be in another
// package.
var AnalyzerGoroutine = &Analyzer{
	Name: "goroutine",
	Doc:  "goroutine launched without done/ctx/WaitGroup escape hatch",
	Run:  runGoroutine,
}

func runGoroutine(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
			if !ok {
				return true
			}
			if goroutineHasEscape(p, lit, gs.Call.Args) {
				return true
			}
			p.Reportf(gs.Go, "goroutine has no completion signal (channel, context, or WaitGroup); the caller cannot join or cancel it")
			return true
		})
	}
}

// goroutineHasEscape scans the literal's body and the call arguments for
// any sign of a join/cancel mechanism.
func goroutineHasEscape(p *Pass, lit *ast.FuncLit, args []ast.Expr) bool {
	found := false
	check := func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
					found = true
				}
			}
		case *ast.RangeStmt:
			if t := p.typeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case ast.Expr:
			if t := p.typeOf(n); t != nil && isEscapeType(t) {
				found = true
			}
		}
		return !found
	}
	ast.Inspect(lit.Body, check)
	for _, a := range args {
		if found {
			break
		}
		ast.Inspect(a, check)
	}
	return found
}

// isEscapeType reports whether a referenced value's type is itself a
// join/cancel mechanism: a channel, a context.Context, or a (pointer to)
// sync.WaitGroup.
func isEscapeType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if _, isChan := t.Underlying().(*types.Chan); isChan {
		return true
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	qual := obj.Pkg().Name() + "." + obj.Name()
	return qual == "context.Context" || qual == "sync.WaitGroup"
}

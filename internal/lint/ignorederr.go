package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerIgnoredErr flags call statements that silently discard an error
// result from the codec I/O surface: Write (io.Writer and friends),
// binary.Write, and the compressor Encode/Decode/Compress/Decompress
// family. A dropped error on these paths turns a truncated or corrupt
// stream into silently wrong science data. *bytes.Buffer and
// *strings.Builder writes are allowlisted — those are documented never to
// fail.
var AnalyzerIgnoredErr = &Analyzer{
	Name: "ignorederr",
	Doc:  "discarded error result from Write/Encode/Decode-family calls",
	Run:  runIgnoredErr,
}

// riskyCallNames is the function-name surface whose errors must be checked.
var riskyCallNames = map[string]bool{
	"Write":      true,
	"Encode":     true,
	"Decode":     true,
	"Compress":   true,
	"Decompress": true,
}

// neverFails lists receiver types whose Write is documented infallible.
var neverFails = map[string]bool{
	"bytes.Buffer":    true,
	"strings.Builder": true,
}

func runIgnoredErr(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p, call)
			if fn == nil || !riskyCallNames[fn.Name()] {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || !returnsError(sig) {
				return true
			}
			if recv := sig.Recv(); recv != nil && neverFails[baseTypeName(recv.Type())] {
				return true
			}
			p.Reportf(call.Lparen, "error result of %s is discarded; check it (stream corruption must not pass silently)", calleeLabel(fn))
			return true
		})
	}
}

// calleeFunc resolves the called function or method object, if statically
// known.
func calleeFunc(p *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	return fn
}

// returnsError reports whether the signature's result tuple contains the
// built-in error type.
func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok &&
			named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
			return true
		}
	}
	return false
}

// baseTypeName returns "pkgpath-less" qualified name of t with pointers
// stripped, e.g. "bytes.Buffer" for *bytes.Buffer.
func baseTypeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Name() + "." + obj.Name()
}

// calleeLabel renders a human-readable callee name like
// "(*bitstream.Writer).Write" or "binary.Write".
func calleeLabel(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if name := baseTypeName(sig.Recv().Type()); name != "" {
			if strings.HasPrefix(sig.Recv().Type().String(), "*") {
				return "(*" + name + ")." + fn.Name()
			}
			return name + "." + fn.Name()
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

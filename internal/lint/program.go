package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Program is the module-wide view the interprocedural analyzers
// (decodetaint, errtaxonomy, ctxflow) share: every loaded package, an index
// from function objects to their declarations, a static call graph built
// from go/types resolution, and the lazily computed per-function summaries
// the analyzers propagate to a fixed point.
//
// The driver (cmd/lrmlint) builds one Program over all loaded packages and
// attaches it to each Pass, so a package's analysis sees summaries for
// functions in every other package of the module. A Pass without an attached
// Program (the golden-test CheckFile path) lazily builds a single-package
// Program over itself — the analyzers then run in degraded, package-local
// mode, which is exactly what the self-contained fixtures exercise.
type Program struct {
	Passes []*Pass

	// Funcs maps every declared function and method in the analyzed
	// packages to its declaration site.
	Funcs map[*types.Func]*FuncInfo

	// decodeScope is the reporting set: functions whose names mark them as
	// decode entry points, plus every module function reachable from one
	// through the call graph that lives in a package containing such an
	// entry point. Encode-side helpers in the same packages stay out unless
	// a decode path actually reaches them.
	decodeScope map[*types.Func]bool

	taint    map[*types.Func]*taintSummary
	errClass map[*types.Func]errClass
}

// FuncInfo is one declared function with the package state needed to
// analyze its body.
type FuncInfo struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pass *Pass
}

// decodeEntryRe matches the names that mark a function as a decode entry
// point handling untrusted input: the exported codec surface (Decompress*,
// Decode*) and the lowercase helpers that follow the same convention.
var decodeEntryRe = regexp.MustCompile(`^(Decompress|Decode|decompress|decode)`)

// NewProgram indexes the passes and builds the call graph and reporting
// sets. Summaries are computed lazily on first analyzer use.
func NewProgram(passes []*Pass) *Program {
	prog := &Program{
		Passes:      passes,
		Funcs:       map[*types.Func]*FuncInfo{},
		decodeScope: map[*types.Func]bool{},
	}
	for _, p := range passes {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				prog.Funcs[obj] = &FuncInfo{Obj: obj, Decl: fd, Pass: p}
			}
		}
	}
	prog.buildDecodeScope()
	return prog
}

// buildDecodeScope seeds the reporting set with decode-named functions and
// grows it along call edges, but only into packages that declare a decode
// entry point of their own: a compress helper reached from Decompress is in
// scope, a grid or parallel utility reached the same way is not — those
// packages make no decode-contract promises.
func (prog *Program) buildDecodeScope() {
	decodePkg := map[*types.Package]bool{}
	var work []*types.Func
	for obj := range prog.Funcs {
		if decodeEntryRe.MatchString(obj.Name()) {
			prog.decodeScope[obj] = true
			decodePkg[obj.Pkg()] = true
			work = append(work, obj)
		}
	}
	sort.Slice(work, func(i, j int) bool { return work[i].FullName() < work[j].FullName() })
	for len(work) > 0 {
		fn := work[0]
		work = work[1:]
		info := prog.Funcs[fn]
		if info == nil {
			continue
		}
		ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := info.Pass.calleeFunc(call)
			if callee == nil || prog.decodeScope[callee] || !decodePkg[callee.Pkg()] {
				return true
			}
			if _, declared := prog.Funcs[callee]; !declared {
				return true
			}
			prog.decodeScope[callee] = true
			work = append(work, callee)
			return true
		})
	}
}

// scopeFuncs returns the decode-scope functions declared in pass p, in
// source order, so analyzer output is deterministic.
func (prog *Program) scopeFuncs(p *Pass) []*FuncInfo {
	var out []*FuncInfo
	for obj := range prog.decodeScope {
		info := prog.Funcs[obj]
		if info != nil && info.Pass == p {
			out = append(out, info)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Decl.Pos() < out[j].Decl.Pos() })
	return out
}

// calleeFunc resolves a call expression to the function object it invokes,
// for both plain calls (ident) and package or method calls (selector).
// Conversions, builtins, and calls through function-typed values resolve to
// nil.
func (p *Pass) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := p.Info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// calleeName returns the bare name a call is spelled with (the final
// selector element or the identifier), or "" for anonymous callees. Used
// for the name-based heuristics (CheckedAlloc, Classify, ReadBits) that
// must also work in fixtures where the real packages are not importable.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// localObj resolves an identifier to its object, following both uses and
// defining occurrences.
func (p *Pass) localObj(id *ast.Ident) types.Object {
	if obj := p.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Info.Defs[id]
}

// isByteSliceType reports whether t is []byte (or []uint8).
func isByteSliceType(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8)
}

// isIntegerType reports whether t is an integer kind (the only types the
// size-parameter summaries track).
func isIntegerType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isStreamReaderType reports whether t is a pointer to a named type called
// Reader — the bitstream.Reader shape. Values read through such a parameter
// are decoded stream content.
func isStreamReaderType(t types.Type) bool {
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && strings.HasSuffix(named.Obj().Name(), "Reader")
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

package lint

import (
	"go/ast"
	"go/token"
)

// AnalyzerDeadAssign flags statements of the form `_ = x` where x is a
// side-effect-free expression (identifiers, field selections, literals, and
// arithmetic over them). Such a statement computes nothing and keeps
// nothing alive at runtime; in practice it is left behind when a value's
// last real use is refactored away, silently masking dead computation
// upstream. Expressions with potential effects — calls, channel receives,
// index expressions (bounds check), dereferences (nil check), type
// assertions — are not flagged, and `var _ Iface = impl` compile-time
// conformance checks are declarations, not assignments, so they never
// trigger.
var AnalyzerDeadAssign = &Analyzer{
	Name: "deadassign",
	Doc:  "blank assignment of a side-effect-free expression",
	Run:  runDeadAssign,
}

func runDeadAssign(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			lhs, ok := as.Lhs[0].(*ast.Ident)
			if !ok || lhs.Name != "_" {
				return true
			}
			if !isPureExpr(as.Rhs[0]) {
				return true
			}
			p.Reportf(as.Pos(), "dead blank assignment: %s has no effect; delete it or use the value", exprString(as.Rhs[0]))
			return true
		})
	}
}

// isPureExpr reports whether evaluating e can have no observable effect.
func isPureExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident, *ast.BasicLit:
		return true
	case *ast.SelectorExpr:
		return isPureExpr(e.X)
	case *ast.ParenExpr:
		return isPureExpr(e.X)
	case *ast.UnaryExpr:
		return e.Op != token.ARROW && isPureExpr(e.X)
	case *ast.BinaryExpr:
		return isPureExpr(e.X) && isPureExpr(e.Y)
	}
	return false
}

// exprString renders small expressions for diagnostics.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return "`_ = " + e.Name + "`"
	case *ast.SelectorExpr:
		if x, ok := e.X.(*ast.Ident); ok {
			return "`_ = " + x.Name + "." + e.Sel.Name + "`"
		}
	}
	return "this blank assignment"
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerFloatCmp flags == and != between floating-point operands when
// neither side is a compile-time constant. In an error-bounded compression
// pipeline, exact equality between two computed floats is almost always a
// latent bug — rounding in the predict/quantize/transform stages makes the
// outcome platform- and optimization-dependent; compare |a-b| against a
// tolerance instead. Comparisons against constants (v == 0 zero-sentinel
// checks, exact bit-pattern sentinels) are allowlisted because the constant
// side is exactly representable by construction.
var AnalyzerFloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "naked float equality between non-constant operands",
	Run:  runFloatCmp,
}

func runFloatCmp(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt, xok := p.Info.Types[be.X]
			yt, yok := p.Info.Types[be.Y]
			if !xok || !yok {
				return true
			}
			if !isFloat(xt.Type) && !isFloat(yt.Type) {
				return true
			}
			// Either side being a typed or untyped constant makes the
			// comparison deliberate and exact.
			if xt.Value != nil || yt.Value != nil {
				return true
			}
			p.Reportf(be.OpPos, "float equality %q between non-constant operands; compare math.Abs(a-b) against a tolerance", be.Op)
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerHotAlloc flags make() allocations inside hot-path kernels. The
// batch kernels behind the BENCH gate — the zfp plane coders and
// transforms, the sz quantize/dequant rows, the huffman pack and decode
// inner loops — run per block or per symbol in steady state, where a
// single make() turns into millions of allocations per field and shows up
// directly in allocs/op. Scratch in those functions must come from the
// internal/parallel arenas (Floats/Int64s/Uint64s/Ints/Bytes) or be
// hoisted into per-worker state by the caller.
//
// A function is hot when it appears in hotPathFuncs (the repo's canonical
// kernel list, keyed by import path) or when its doc comment carries the
// //lrm:hotpath directive. make() calls that refill a sync.Pool — a
// composite literal's New field or an assignment to pool.New — are the
// arena's own slow path and are exempt.
var AnalyzerHotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "make() allocation inside a hot-path kernel",
	Run:  runHotAlloc,
}

// hotPathFuncs is the canonical hot-kernel list: every function here is on
// the per-block or per-symbol path of a codec and must stay allocation
// free in steady state. Methods are listed by bare name.
var hotPathFuncs = map[string]map[string]bool{
	"lrm/internal/compress/zfp": {
		"encodePlane": true, "decodePlane": true,
		"encodePlanes": true, "decodePlanes": true,
		"transpose64": true, "transposeTop": true, "transposeTop16": true,
		"transformForward": true, "transformInverse": true,
		"fwdLift": true, "invLift": true, "lift4": true,
		"gather": true, "scatter": true,
	},
	"lrm/internal/compress/sz": {
		"quantizeAt": true, "quantizeRow1": true, "quantizeRow2": true,
		"quantizeRow3": true, "quantizeRows": true, "quantizePoint": true,
		"dequantRow1": true, "dequantWaveRow2": true, "dequantWaveRow3": true,
		"dequantRows": true, "lorenzoPredict": true, "curveFitPredict": true,
	},
	"lrm/internal/huffman": {
		"pack": true, "decodeOneSlow": true,
	},
}

// hotPathDirective marks a function hot outside the canonical list.
const hotPathDirective = "//lrm:hotpath"

func runHotAlloc(p *Pass) {
	listed := hotPathFuncs[p.Pkg.Path()]
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !hasHotDirective(fd) && !listed[fd.Name.Name] {
				continue
			}
			exempt := poolRefillRanges(p, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "make" {
					return true
				}
				if b, ok := p.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
					return true
				}
				for _, r := range exempt {
					if call.Pos() >= r[0] && call.Pos() < r[1] {
						return true
					}
				}
				p.Reportf(call.Pos(), "hot-path function %s allocates with make; take scratch from an internal/parallel arena (Floats/Int64s/Uint64s/Ints/Bytes) or hoist the allocation into per-worker state", fd.Name.Name)
				return true
			})
		}
	}
}

// hasHotDirective reports whether fd's doc comment carries //lrm:hotpath.
func hasHotDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == hotPathDirective {
			return true
		}
	}
	return false
}

// poolRefillRanges collects the source ranges of function literals that
// serve as a sync.Pool's New callback — either a New field in a sync.Pool
// composite literal or an assignment to pool.New. Allocations inside those
// literals ARE the arena refill path and must not be flagged.
func poolRefillRanges(p *Pass, body *ast.BlockStmt) [][2]token.Pos {
	var ranges [][2]token.Pos
	add := func(fl *ast.FuncLit) {
		ranges = append(ranges, [2]token.Pos{fl.Pos(), fl.End()})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			tv, ok := p.Info.Types[n]
			if !ok || !isSyncPool(tv.Type) {
				return true
			}
			for _, el := range n.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok || key.Name != "New" {
					continue
				}
				if fl, ok := kv.Value.(*ast.FuncLit); ok {
					add(fl)
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "New" || i >= len(n.Rhs) {
					continue
				}
				tv, ok := p.Info.Types[sel.X]
				if !ok || !isSyncPool(tv.Type) {
					continue
				}
				if fl, ok := n.Rhs[i].(*ast.FuncLit); ok {
					add(fl)
				}
			}
		}
		return true
	})
	return ranges
}

// isSyncPool reports whether t (possibly behind a pointer) is sync.Pool.
func isSyncPool(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Pool"
}

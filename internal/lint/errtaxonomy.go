package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AnalyzerErrTaxonomy flags error returns on decode paths that provably
// cannot wrap a taxonomy sentinel (ErrTruncated / ErrCorrupt / ErrHeader).
// The PR-3 contract is that every decoder failure classifies under the
// taxonomy so callers can dispatch with errors.Is; a bare errors.New or a
// fmt.Errorf without %w silently breaks that for exactly one path.
//
// The analysis is summary-based (fixed point over the call graph): each
// decode-scope function is classified by whether its error results always,
// never, or sometimes wrap a sentinel. A return site is reported only when
// its error is *definitely* unclassified — a freshly built sentinel-free
// error, or a pass-through of a callee summarized as never-classifying.
// Unknown sources (stdlib calls, unresolved flow) stay silent: the gate
// reports contract violations, not missing knowledge.
var AnalyzerErrTaxonomy = &Analyzer{
	Name: "errtaxonomy",
	Doc:  "decode-path error return that cannot wrap ErrTruncated/ErrCorrupt/ErrHeader",
	Run:  runErrTaxonomy,
}

// errClass is the summary lattice for one function's error results.
type errClass int

const (
	errUnknown errClass = iota // no information / mixed with unknown
	errAlways                  // every non-nil error path classifies
	errNever                   // at least one path, and none classify
	errMixed                   // some classify, some provably do not
)

// sentinelNames are the taxonomy sentinels recognized by name, so the rule
// works identically against the real compress package and self-contained
// fixtures.
var sentinelNames = map[string]bool{
	"ErrTruncated": true,
	"ErrCorrupt":   true,
	"ErrHeader":    true,
}

func runErrTaxonomy(p *Pass) {
	prog := p.Program()
	prog.errSummaries()
	for _, fn := range prog.scopeFuncs(p) {
		if errorResultIndex(fn.Obj) < 0 {
			continue
		}
		newErrState(fn).analyze(true)
	}
}

// errSummaries computes the error classification of every decode-scope
// function returning an error, iterated to a fixed point so pass-through
// chains (Decompress -> parseHeader -> readLen) classify end to end.
func (prog *Program) errSummaries() map[*types.Func]errClass {
	if prog.errClass != nil {
		return prog.errClass
	}
	prog.errClass = map[*types.Func]errClass{}
	var fns []*FuncInfo
	for obj := range prog.decodeScope {
		info := prog.Funcs[obj]
		if info != nil && errorResultIndex(obj) >= 0 {
			fns = append(fns, info)
		}
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Obj.FullName() < fns[j].Obj.FullName() })
	for pass := 0; pass < 10; pass++ {
		changed := false
		for _, fn := range fns {
			cls := newErrState(fn).analyze(false)
			if prog.errClass[fn.Obj] != cls {
				prog.errClass[fn.Obj] = cls
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return prog.errClass
}

// errorResultIndex returns the index of the trailing error result, or -1.
func errorResultIndex(fn *types.Func) int {
	res := fn.Type().(*types.Signature).Results()
	if res.Len() == 0 {
		return -1
	}
	last := res.Len() - 1
	if !isErrorType(res.At(last).Type()) {
		return -1
	}
	return last
}

// errState analyzes one function body: a lexical record of error-variable
// assignments, closure summaries, and per-return classification.
type errState struct {
	prog *Program
	pass *Pass
	fn   *FuncInfo

	// assigns records every assignment to an error-typed object in source
	// order; classification of `return err` looks up the latest assignment
	// lexically before the return, matching Go's check-and-return idiom.
	assigns  []errAssign
	closures map[types.Object]errClass
	seenLits map[*ast.FuncLit]bool
}

type errAssign struct {
	pos token.Pos
	obj types.Object
	cls errClass
}

func newErrState(fn *FuncInfo) *errState {
	return &errState{
		prog:     fn.Pass.Program(),
		pass:     fn.Pass,
		fn:       fn,
		closures: map[types.Object]errClass{},
		seenLits: map[*ast.FuncLit]bool{},
	}
}

// analyze classifies every return path, reporting definite violations when
// report is set, and returns the function's overall class.
func (st *errState) analyze(report bool) errClass {
	st.collectAssigns(st.fn.Decl.Body)

	nres := st.fn.Obj.Type().(*types.Signature).Results().Len()
	cls := st.classifyReturns(st.fn.Decl.Body, nres, report)
	return cls
}

// collectAssigns walks the whole body (closures included — captured error
// variables are shared) recording assignment classes, and computes closure
// summaries for literals bound to local variables.
func (st *errState) collectAssigns(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// Closure definition: classify its returns under the variable.
			if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
				if lit, ok := ast.Unparen(n.Rhs[0]).(*ast.FuncLit); ok {
					if id, ok := n.Lhs[0].(*ast.Ident); ok {
						st.seenLits[lit] = true
						st.collectAssigns(lit.Body)
						nres := 0
						if lit.Type.Results != nil {
							for _, f := range lit.Type.Results.List {
								if len(f.Names) == 0 {
									nres++
								} else {
									nres += len(f.Names)
								}
							}
						}
						if obj := st.pass.localObj(id); obj != nil && nres > 0 {
							st.closures[obj] = st.classifyReturns(lit.Body, nres, false)
						}
						return false
					}
				}
			}
			st.recordAssign(n)
		case *ast.GenDecl:
			if n.Tok == token.VAR {
				for _, spec := range n.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						st.recordValueSpec(vs)
					}
				}
			}
		}
		return true
	})
}

// recordAssign notes the class of each error-typed LHS.
func (st *errState) recordAssign(as *ast.AssignStmt) {
	// Multi-value call: the error is the last result.
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		last := as.Lhs[len(as.Lhs)-1]
		id, ok := last.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := st.pass.localObj(id)
		if obj == nil || !isErrorType(obj.Type()) {
			return
		}
		st.assigns = append(st.assigns, errAssign{pos: as.Pos(), obj: obj, cls: st.classifyCall(call)})
		return
	}
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := st.pass.localObj(id)
		if obj == nil || !isErrorType(obj.Type()) {
			continue
		}
		st.assigns = append(st.assigns, errAssign{pos: as.Pos(), obj: obj, cls: st.classifyExpr(as.Rhs[i], as.Pos())})
	}
}

func (st *errState) recordValueSpec(vs *ast.ValueSpec) {
	for i, name := range vs.Names {
		if i >= len(vs.Values) {
			return
		}
		obj := st.pass.localObj(name)
		if obj == nil || !isErrorType(obj.Type()) {
			continue
		}
		st.assigns = append(st.assigns, errAssign{pos: vs.Pos(), obj: obj, cls: st.classifyExpr(vs.Values[i], vs.Pos())})
	}
}

// classifyReturns classifies the error expression of every return in body
// (skipping nested literals — they have their own summaries) and folds the
// per-path classes into a function class.
func (st *errState) classifyReturns(body *ast.BlockStmt, nres int, report bool) errClass {
	sawClassified, sawNever, sawUnknown := false, false, false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested literals classify under their own summary
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		var cls errClass
		isNil := false
		switch {
		case len(ret.Results) == 0:
			// Naked return with named results: no flow info.
			cls = errUnknown
		case len(ret.Results) == nres:
			e := ret.Results[len(ret.Results)-1]
			if id, ok := ast.Unparen(e).(*ast.Ident); ok && id.Name == "nil" {
				isNil = true
			} else {
				cls = st.classifyExpr(e, ret.Pos())
			}
		case len(ret.Results) == 1:
			// `return g(...)` forwarding all results: class of the call.
			if call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr); ok {
				cls = st.classifyCall(call)
			} else {
				cls = errUnknown
			}
		default:
			cls = errUnknown
		}
		if isNil {
			return true
		}
		switch cls {
		case errAlways:
			sawClassified = true
		case errNever:
			sawNever = true
			if report {
				st.pass.Reportf(ret.Pos(),
					"returned error cannot wrap a taxonomy sentinel (ErrTruncated/ErrCorrupt/ErrHeader); wrap with %%w or compress.Classify")
			}
		default:
			sawUnknown = true
		}
		return true
	})
	switch {
	case sawNever && sawClassified:
		return errMixed
	case sawNever:
		return errNever
	case sawClassified && !sawUnknown:
		return errAlways
	default:
		return errUnknown
	}
}

// classifyExpr classifies one error-valued expression at a program point.
func (st *errState) classifyExpr(e ast.Expr, at token.Pos) errClass {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if e.Name == "nil" {
			return errAlways // a nil error constrains nothing
		}
		if isSentinelRef(e) {
			return errAlways
		}
		obj := st.pass.localObj(e)
		if obj == nil || !isErrorType(obj.Type()) {
			return errUnknown
		}
		// Latest assignment lexically before the use — the
		// check-and-return idiom assigns immediately above each return.
		best := errUnknown
		bestPos := token.NoPos
		for _, a := range st.assigns {
			if a.obj == obj && a.pos < at && (bestPos == token.NoPos || a.pos > bestPos) {
				best, bestPos = a.cls, a.pos
			}
		}
		return best
	case *ast.SelectorExpr:
		if isSentinelRef(e) {
			return errAlways
		}
		return errUnknown
	case *ast.CallExpr:
		return st.classifyCall(e)
	}
	return errUnknown
}

// classifyCall classifies the error produced by one call.
func (st *errState) classifyCall(call *ast.CallExpr) errClass {
	name := calleeName(call)
	switch name {
	case "Classify":
		return errAlways
	case "New":
		// errors.New: a fresh error that wraps nothing.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && id.Name == "errors" {
				return errNever
			}
		}
		return errUnknown
	case "Errorf":
		return st.classifyErrorf(call)
	}
	// Local closure summary.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj := st.pass.localObj(id); obj != nil {
			if cls, ok := st.closures[obj]; ok {
				return cls
			}
		}
	}
	callee := st.pass.calleeFunc(call)
	if callee == nil {
		return errUnknown
	}
	if cls, ok := st.prog.errClass[callee]; ok {
		return cls
	}
	return errUnknown
}

// classifyErrorf classifies fmt.Errorf: without %w the error wraps nothing
// (Never); with %w it is as good as what it wraps — Always if any wrapped
// argument is a sentinel or an always-classified value, Never if every
// error-typed argument provably never classifies, Unknown otherwise.
func (st *errState) classifyErrorf(call *ast.CallExpr) errClass {
	if len(call.Args) == 0 {
		return errUnknown
	}
	format, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || format.Kind != token.STRING {
		return errUnknown
	}
	if !strings.Contains(format.Value, "%w") {
		return errNever
	}
	cls := errNever
	sawError := false
	for _, arg := range call.Args[1:] {
		argCls := errUnknown
		if isSentinelRef(arg) {
			argCls = errAlways
		} else if tv, ok := st.pass.Info.Types[arg]; ok && isErrorType(tv.Type) {
			argCls = st.classifyExpr(arg, call.Pos())
		} else {
			continue // %d/%s-style argument, irrelevant to wrapping
		}
		sawError = true
		switch argCls {
		case errAlways:
			return errAlways
		case errNever:
			// stays Never unless something better shows up
		default:
			cls = errUnknown
		}
	}
	if !sawError {
		// %w present but nothing error-typed resolved — e.g. wrapping an
		// interface-typed value we cannot see through.
		return errUnknown
	}
	return cls
}

// isSentinelRef reports whether the expression names a taxonomy sentinel,
// bare or package-qualified.
func isSentinelRef(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return sentinelNames[e.Name]
	case *ast.SelectorExpr:
		return sentinelNames[e.Sel.Name]
	}
	return false
}

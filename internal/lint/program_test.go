package lint

import (
	"go/ast"
	"go/types"
	"os"
	"path/filepath"
	"testing"
)

// checkSrc type-checks a source string as a standalone file and returns its
// pass plus a single-package Program over it.
func checkSrc(t *testing.T, name, src string) (*Pass, *Program) {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pass, err := CheckFile(path)
	if err != nil {
		t.Fatalf("source does not type-check: %v", err)
	}
	prog := NewProgram([]*Pass{pass})
	pass.SetProgram(prog)
	return pass, prog
}

// lookupFunc finds a declared function by name in the program index.
func lookupFunc(t *testing.T, prog *Program, name string) *types.Func {
	t.Helper()
	for obj := range prog.Funcs {
		if obj.Name() == name {
			return obj
		}
	}
	t.Fatalf("function %s not indexed", name)
	return nil
}

// TestDecodeScope pins the reporting-set contract: decode-named entries are
// in scope, helpers become in scope only when a decode path reaches them,
// and encode-side functions stay out even in the same package.
func TestDecodeScope(t *testing.T) {
	_, prog := checkSrc(t, "scope.go", `package scope

func Decompress(b []byte) []byte {
	return readBody(b)
}

func readBody(b []byte) []byte { return b }

func Compress(v []byte) []byte {
	return writeBody(v)
}

func writeBody(v []byte) []byte { return v }
`)
	for name, want := range map[string]bool{
		"Decompress": true,
		"readBody":   true,
		"Compress":   false,
		"writeBody":  false,
	} {
		fn := lookupFunc(t, prog, name)
		if prog.decodeScope[fn] != want {
			t.Errorf("decodeScope[%s] = %v, want %v", name, prog.decodeScope[fn], want)
		}
	}
}

// TestDecodeScopeStopsAtPackageBoundary checks the containment rule in the
// single-package approximation: only packages that declare a decode entry
// participate, so a file with no decode-named function contributes nothing.
func TestDecodeScopeStopsAtPackageBoundary(t *testing.T) {
	_, prog := checkSrc(t, "util.go", `package util

func Clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
`)
	if len(prog.decodeScope) != 0 {
		t.Fatalf("package without a decode entry has %d scope functions, want 0", len(prog.decodeScope))
	}
}

// TestTaintSummaryPropagation verifies the fixed point exposes a helper's
// decoded result to its callers: readLen's first result must carry the
// untrusted label, and alloc's parameter must be marked size-sensitive.
func TestTaintSummaryPropagation(t *testing.T) {
	_, prog := checkSrc(t, "taintprop.go", `package taintprop

import "encoding/binary"

func readLen(b []byte) (uint64, []byte) {
	v, n := binary.Uvarint(b)
	return v, b[n:]
}

func alloc(n uint64) []float64 {
	return make([]float64, n)
}

func Decompress(b []byte) []float64 {
	v, _ := readLen(b)
	return alloc(v)
}
`)
	sums := prog.taintSummaries()

	readLen := lookupFunc(t, prog, "readLen")
	sum := sums[readLen]
	if sum == nil || len(sum.results) < 1 || !sum.results[0].untrusted {
		t.Errorf("readLen result 0 not marked untrusted: %+v", sum)
	}

	alloc := lookupFunc(t, prog, "alloc")
	sum = sums[alloc]
	if sum == nil || !sum.sizeParams[0] {
		t.Errorf("alloc param 0 not marked size-sensitive: %+v", sum)
	}
}

// TestErrSummaryClasses verifies the error-class lattice: a helper wrapping
// a sentinel summarizes as always, a bare errors.New as never, and a
// function mixing both as mixed.
func TestErrSummaryClasses(t *testing.T) {
	_, prog := checkSrc(t, "errclasses.go", `package errclasses

import (
	"errors"
	"fmt"
)

var ErrCorrupt = errors.New("corrupt")

func decodeGood(b []byte) error {
	if len(b) == 0 {
		return fmt.Errorf("empty: %w", ErrCorrupt)
	}
	return nil
}

func decodeBare(b []byte) error {
	if len(b) == 0 {
		return errors.New("empty")
	}
	return nil
}

func decodeMixed(b []byte) error {
	if len(b) == 0 {
		return errors.New("empty")
	}
	if b[0] != 1 {
		return fmt.Errorf("version: %w", ErrCorrupt)
	}
	return nil
}
`)
	sums := prog.errSummaries()
	for name, want := range map[string]errClass{
		"decodeGood":  errAlways,
		"decodeBare":  errNever,
		"decodeMixed": errMixed,
	} {
		fn := lookupFunc(t, prog, name)
		if sums[fn] != want {
			t.Errorf("errSummaries[%s] = %v, want %v", name, sums[fn], want)
		}
	}
}

// inspectCalls walks a function body and reports the resolved callee of
// every call expression (nil for calls the resolver cannot see through).
func inspectCalls(info *FuncInfo, fn func(*types.Func)) {
	ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			fn(info.Pass.calleeFunc(call))
		}
		return true
	})
}

// TestCalleeFuncResolution pins call-graph edge resolution for plain and
// method calls, and nil for calls through function values.
func TestCalleeFuncResolution(t *testing.T) {
	pass, prog := checkSrc(t, "callees.go", `package callees

type S struct{}

func (s *S) Decode(b []byte) []byte { return b }

func helper(b []byte) []byte { return b }

func Decompress(s *S, b []byte) []byte {
	f := helper
	_ = f(b)
	return s.Decode(helper(b))
}
`)
	decomp := lookupFunc(t, prog, "Decompress")
	info := prog.Funcs[decomp]
	want := map[string]bool{"Decode": false, "helper": false}
	var viaValue int
	inspectCalls(info, func(callee *types.Func) {
		if callee == nil {
			viaValue++
			return
		}
		if _, ok := want[callee.Name()]; ok {
			want[callee.Name()] = true
		}
	})
	for name, seen := range want {
		if !seen {
			t.Errorf("call edge to %s not resolved", name)
		}
	}
	if viaValue == 0 {
		t.Error("call through a function value should resolve to nil")
	}
	_ = pass
}

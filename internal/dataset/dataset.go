// Package dataset is the registry of the paper's nine evaluation datasets
// (Table I). Each dataset produces a deterministic full-model field and its
// reduced-model counterpart, scaled down exactly the way the paper
// prescribes:
//
//   - the classical PDEs (Heat3d, Laplace, Wave) shrink the problem size
//     (192^3 -> 48^3 in the paper: a factor of 4 per dimension);
//   - the Gromacs runs (Umbrella, Virtual_sites) lower the atom count
//     (1,960 -> 490: a factor of 4);
//   - the remaining applications (Astro, Fish, Sedov_pres, Yf17_temp) use a
//     smaller computational domain observed at a shorter time.
//
// A Size knob scales every generator together so tests stay fast while the
// experiment binaries can run at larger scales.
package dataset

import (
	"fmt"

	"lrm/internal/grid"
	"lrm/internal/sim/astro"
	"lrm/internal/sim/cfd"
	"lrm/internal/sim/heat3d"
	"lrm/internal/sim/laplace"
	"lrm/internal/sim/md"
	"lrm/internal/sim/sedov"
	"lrm/internal/sim/wave"
)

// Size selects the generation scale.
type Size int

// Generation scales. Small keeps unit tests fast; Large approaches the
// paper's byte volumes.
const (
	Small Size = iota
	Medium
	Large
)

func (s Size) String() string {
	switch s {
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Large:
		return "large"
	default:
		return fmt.Sprintf("size(%d)", int(s))
	}
}

// grid3 returns the 3-D grid extent for a size.
func grid3(s Size) int {
	switch s {
	case Small:
		return 24
	case Medium:
		return 40
	default:
		return 64
	}
}

// grid2 returns the 2-D grid extent.
func grid2(s Size) int {
	switch s {
	case Small:
		return 64
	case Medium:
		return 128
	default:
		return 256
	}
}

// grid1 returns the 1-D extent.
func grid1(s Size) int {
	switch s {
	case Small:
		return 2048
	case Medium:
		return 8192
	default:
		return 32768
	}
}

// atoms returns the MD atom count (Large matches the paper's 1,960).
func atoms(s Size) int {
	switch s {
	case Small:
		return 240
	case Medium:
		return 720
	default:
		return 1960
	}
}

// heatSteps returns the full-model step count for Heat3d.
func heatSteps(s Size) int {
	switch s {
	case Small:
		return 80
	case Medium:
		return 250
	default:
		return 700
	}
}

// Pair is one dataset's full and reduced model output.
type Pair struct {
	Name    string
	Full    *grid.Field
	Reduced *grid.Field
}

// Names lists the nine datasets in Table I order.
func Names() []string {
	return []string{
		"Heat3d", "Laplace", "Wave",
		"Umbrella", "Virtual_sites",
		"Astro", "Fish", "Sedov_pres", "Yf17_temp",
	}
}

// pdeReduceFactor is the per-dimension problem-size scale-down for the PDE
// datasets (192 -> 48 in the paper).
const pdeReduceFactor = 4

// Generate produces one dataset's full/reduced pair at the given size.
func Generate(name string, size Size) (*Pair, error) {
	switch name {
	case "Heat3d":
		cfg := heat3d.Default(grid3(size))
		cfg.Steps = heatSteps(size)
		red := cfg
		// Scale the problem size down 4x per dimension like the paper, but
		// keep the reduced grid resolved enough that its boundary layer
		// does not dominate the value distribution (192 -> 48 in the paper
		// is still well resolved; 24 -> 6 would not be).
		red.N = max(16, cfg.N/pdeReduceFactor)
		// The coarser grid's stability limit scales with h^2, so each
		// reduced step covers ((Nf-1)/(Nr-1))^2 times the physical time;
		// match the full model's final time (Table II: far fewer, far
		// larger steps).
		ratio := float64(red.N-1) / float64(cfg.N-1)
		red.Steps = max(1, int(float64(cfg.Steps)*ratio*ratio))
		return &Pair{Name: name, Full: heat3d.Solve(cfg), Reduced: heat3d.Solve(red)}, nil

	case "Laplace":
		cfg := laplace.Default(grid2(size))
		red := laplace.Default(cfg.N / pdeReduceFactor)
		// Jacobi convergence scales with N^2: match the full model's
		// relative convergence so the two value distributions stay
		// comparable (Fig. 1's premise).
		ratio := float64(red.N) / float64(cfg.N)
		red.Iters = max(1, int(float64(cfg.Iters)*ratio*ratio))
		return &Pair{Name: name, Full: laplace.Solve(cfg), Reduced: laplace.Solve(red)}, nil

	case "Wave":
		cfg := wave.Default(grid1(size))
		red := wave.Default(cfg.N / pdeReduceFactor)
		return &Pair{Name: name, Full: wave.Solve(cfg), Reduced: wave.Solve(red)}, nil

	case "Umbrella":
		cfg := md.DefaultUmbrella(atoms(size))
		red := md.DefaultUmbrella(atoms(size) / 4)
		full, err := md.Run(cfg)
		if err != nil {
			return nil, err
		}
		reduced, err := md.Run(red)
		if err != nil {
			return nil, err
		}
		return &Pair{Name: name, Full: full, Reduced: reduced}, nil

	case "Virtual_sites":
		cfg := md.DefaultVirtualSites(atoms(size))
		red := md.DefaultVirtualSites(atoms(size) / 4)
		full, err := md.Run(cfg)
		if err != nil {
			return nil, err
		}
		reduced, err := md.Run(red)
		if err != nil {
			return nil, err
		}
		return &Pair{Name: name, Full: full, Reduced: reduced}, nil

	// The remaining four applications reduce by shrinking the computational
	// domain (half the grid points per dimension) and observing at shorter
	// times, as Section III-A prescribes for them.
	case "Astro":
		cfg := astro.Default(grid3(size))
		red := astro.Reduced(cfg)
		red.N = cfg.N / 2
		return &Pair{Name: name, Full: astro.Generate(cfg), Reduced: astro.Generate(red)}, nil

	case "Fish":
		cfg := cfd.DefaultFish(grid3(size))
		red := cfd.ReducedFish(cfg)
		red.N = cfg.N / 2
		return &Pair{Name: name, Full: cfd.GenerateFish(cfg), Reduced: cfd.GenerateFish(red)}, nil

	case "Sedov_pres":
		cfg := sedov.Default(grid3(size))
		red := sedov.Reduced(cfg)
		red.N = cfg.N / 2
		return &Pair{Name: name, Full: sedov.Generate(cfg), Reduced: sedov.Generate(red)}, nil

	case "Yf17_temp":
		cfg := cfd.DefaultYf17(grid3(size))
		red := cfd.ReducedYf17(cfg)
		red.N = cfg.N / 2
		return &Pair{Name: name, Full: cfd.GenerateYf17(cfg), Reduced: cfd.GenerateYf17(red)}, nil
	}
	return nil, fmt.Errorf("dataset: unknown dataset %q (known: %v)", name, Names())
}

// GenerateAll produces every dataset at the given size, in Table I order.
func GenerateAll(size Size) ([]*Pair, error) {
	var out []*Pair
	for _, name := range Names() {
		p, err := Generate(name, size)
		if err != nil {
			return nil, fmt.Errorf("dataset %s: %w", name, err)
		}
		out = append(out, p)
	}
	return out, nil
}

// CoarseSnapshots returns time-aligned outputs of an *independently run*
// coarse-resolution simulation — DuoModel's S'. Unlike a resample of the
// full output, the coarse run carries its own discretisation and
// time-stepping errors, which is what makes DuoModel's deltas less smooth
// than one-base's in Fig. 3. Supported for the PDE datasets Fig. 3 uses.
func CoarseSnapshots(name string, size Size, count int) ([]*grid.Field, error) {
	switch name {
	case "Heat3d":
		cfg := heat3d.Default(grid3(size))
		cfg.Steps = heatSteps(size)
		red := cfg
		// DuoModel uses the paper's full 4x reduction: the whole point is
		// that the cheap model carries real discretisation error.
		red.N = max(6, cfg.N/pdeReduceFactor)
		ratio := float64(red.N-1) / float64(cfg.N-1)
		red.Steps = max(count, int(float64(cfg.Steps)*ratio*ratio))
		return heat3d.Snapshots(red, count), nil
	case "Laplace":
		cfg := laplace.Default(grid2(size))
		red := laplace.Default(max(12, cfg.N/pdeReduceFactor))
		ratio := float64(red.N) / float64(cfg.N)
		red.Iters = max(count, int(float64(cfg.Iters)*ratio*ratio))
		return laplace.Snapshots(red, count), nil
	}
	return nil, fmt.Errorf("dataset: no coarse-simulation protocol for %q", name)
}

// Snapshots returns `count` full-model time-series outputs of one dataset
// (the "20 outputs of each application" protocol behind Figs. 3 and 4).
func Snapshots(name string, size Size, count int) ([]*grid.Field, error) {
	switch name {
	case "Heat3d":
		cfg := heat3d.Default(grid3(size))
		cfg.Steps = heatSteps(size)
		return heat3d.Snapshots(cfg, count), nil
	case "Laplace":
		return laplace.Snapshots(laplace.Default(grid2(size)), count), nil
	case "Wave":
		return wave.Snapshots(wave.Default(grid1(size)), count), nil
	case "Umbrella":
		return md.Snapshots(md.DefaultUmbrella(atoms(size)), count)
	case "Virtual_sites":
		return md.Snapshots(md.DefaultVirtualSites(atoms(size)), count)
	case "Astro":
		return astro.Snapshots(astro.Default(grid3(size)), count), nil
	case "Fish":
		return cfd.FishSnapshots(cfd.DefaultFish(grid3(size)), count), nil
	case "Sedov_pres":
		return sedov.Snapshots(sedov.Default(grid3(size)), count), nil
	case "Yf17_temp":
		return cfd.Yf17Snapshots(cfd.DefaultYf17(grid3(size)), count), nil
	}
	return nil, fmt.Errorf("dataset: unknown dataset %q (known: %v)", name, Names())
}

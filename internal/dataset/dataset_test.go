package dataset

import (
	"math"
	"testing"

	"lrm/internal/stats"
)

func TestNamesCount(t *testing.T) {
	if len(Names()) != 9 {
		t.Fatalf("Table I lists 9 datasets, got %d", len(Names()))
	}
}

func TestUnknownName(t *testing.T) {
	if _, err := Generate("Nope", Small); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
	if _, err := Snapshots("Nope", Small, 3); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestGenerateAllSmall(t *testing.T) {
	pairs, err := GenerateAll(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 9 {
		t.Fatalf("got %d pairs", len(pairs))
	}
	for _, p := range pairs {
		if p.Full == nil || p.Reduced == nil {
			t.Fatalf("%s: missing field", p.Name)
		}
		if p.Reduced.Len() >= p.Full.Len() {
			t.Fatalf("%s: reduced (%d) not smaller than full (%d)",
				p.Name, p.Reduced.Len(), p.Full.Len())
		}
		for i, v := range p.Full.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: bad value at %d", p.Name, i)
			}
		}
	}
}

func TestFullReducedSimilarity(t *testing.T) {
	// The paper's Fig. 1 claim: full and reduced models share data
	// characteristics. Verify the KS distance between value distributions
	// is small for the PDE datasets (where the claim is strongest).
	for _, name := range []string{"Heat3d", "Laplace", "Sedov_pres", "Yf17_temp"} {
		p, err := Generate(name, Small)
		if err != nil {
			t.Fatal(err)
		}
		// Normalise both to [0,1] before comparing shapes: the reduced
		// model may sit at a slightly different amplitude.
		norm := func(d []float64) []float64 {
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, v := range d {
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
			out := make([]float64, len(d))
			if hi > lo {
				for i, v := range d {
					out[i] = (v - lo) / (hi - lo)
				}
			}
			return out
		}
		d := stats.CDFDistance(norm(p.Full.Data), norm(p.Reduced.Data))
		if d > 0.35 {
			t.Errorf("%s: full/reduced KS distance %v too large", name, d)
		}
	}
}

func TestDeterministic(t *testing.T) {
	a, err := Generate("Astro", Small)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate("Astro", Small)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Full.Data {
		if a.Full.Data[i] != b.Full.Data[i] {
			t.Fatal("dataset generation not deterministic")
		}
	}
}

func TestSnapshotsAllDatasets(t *testing.T) {
	for _, name := range Names() {
		snaps, err := Snapshots(name, Small, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(snaps) != 3 {
			t.Fatalf("%s: %d snapshots", name, len(snaps))
		}
	}
}

func TestSizeOrdering(t *testing.T) {
	small, err := Generate("Yf17_temp", Small)
	if err != nil {
		t.Fatal(err)
	}
	med, err := Generate("Yf17_temp", Medium)
	if err != nil {
		t.Fatal(err)
	}
	if med.Full.Len() <= small.Full.Len() {
		t.Fatalf("medium (%d) not larger than small (%d)", med.Full.Len(), small.Full.Len())
	}
	if Small.String() != "small" || Medium.String() != "medium" || Large.String() != "large" {
		t.Fatal("Size.String broken")
	}
}

func TestFishKeepsZeros(t *testing.T) {
	p, err := Generate("Fish", Small)
	if err != nil {
		t.Fatal(err)
	}
	zeros := 0
	for _, v := range p.Full.Data {
		if v == 0 {
			zeros++
		}
	}
	if float64(zeros)/float64(p.Full.Len()) < 0.5 {
		t.Fatalf("Fish lost its zeros: %d/%d", zeros, p.Full.Len())
	}
}

func TestLargeSizeBranches(t *testing.T) {
	if testing.Short() {
		t.Skip("large datasets")
	}
	// Exercise the Large-scale extents on the cheap generators.
	wave, err := Generate("Wave", Large)
	if err != nil {
		t.Fatal(err)
	}
	if wave.Full.Len() != 32768 {
		t.Fatalf("large Wave = %d points", wave.Full.Len())
	}
	lap, err := Generate("Laplace", Large)
	if err != nil {
		t.Fatal(err)
	}
	if lap.Full.Dims[0] != 256 {
		t.Fatalf("large Laplace dims = %v", lap.Full.Dims)
	}
	if lap.Reduced.Dims[0] != 64 {
		t.Fatalf("large Laplace reduced dims = %v", lap.Reduced.Dims)
	}
}

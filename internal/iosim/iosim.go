// Package iosim models the parallel-file-system and data-staging costs of
// the paper's Table IV end-to-end experiment: 64 ranks each compressing a
// local subdomain and writing N-to-N to a Lustre-like store, optionally
// shipping data to a staging node that compresses and writes asynchronously
// (the burst-buffer paradigm of Cori/Summit).
//
// Times come from a calibrated analytic model fed with *measured*
// compression throughputs and ratios, not wall-clock storage runs: the
// experiment's point is the ordering and crossover between "compression
// cost" and "I/O savings", which the model reproduces for any parameter
// choice.
package iosim

import (
	"fmt"
	"time"

	"lrm/internal/core"
	"lrm/internal/grid"
)

// Config describes the platform.
type Config struct {
	// Ranks is the number of writers (the paper uses 64).
	Ranks int
	// BytesPerRank is each rank's raw output size.
	BytesPerRank float64
	// PerRankBandwidth is one writer's uncontended bandwidth (B/s).
	PerRankBandwidth float64
	// AggregateBandwidth is the file system's total bandwidth (B/s);
	// N-to-N writers share it.
	AggregateBandwidth float64
	// StagingBandwidth is the application-to-staging-node link bandwidth
	// per rank (B/s); staging-side compression and I/O are asynchronous
	// and do not block the application.
	StagingBandwidth float64
}

// TitanLike returns parameters shaped after the paper's Titan/Lustre setup,
// scaled so the baseline lands in tens of seconds like Table IV.
func TitanLike() Config {
	return Config{
		Ranks:              64,
		BytesPerRank:       16.7e9 / 64, // the paper's 16.7 GB split over ranks
		PerRankBandwidth:   300e6,
		AggregateBandwidth: 2e9, // contended Lustre: ~31 MB/s per writer
		StagingBandwidth:   1.5e9,
	}
}

// Method is one Table IV row: a compression strategy with its measured
// performance.
type Method struct {
	// Name labels the row ("Baseline", "ZFP+I/O", "Staging+PCA+I/O", ...).
	Name string
	// Throughput is the measured compression speed in bytes/s of raw
	// input; 0 means no compression (the baseline).
	Throughput float64
	// Ratio is the measured compression ratio (1 for no compression).
	Ratio float64
	// Staged routes data through the staging node: the application only
	// pays the transfer, everything downstream is asynchronous.
	Staged bool
}

// Entry is one computed row of Table IV.
type Entry struct {
	Method       string
	CompressTime float64 // seconds, 0 when not applicable
	IOTime       float64 // seconds
	TotalTime    float64 // seconds
}

// effectiveBandwidth is each N-to-N writer's share of the file system.
func (c Config) effectiveBandwidth() float64 {
	per := c.PerRankBandwidth
	if share := c.AggregateBandwidth / float64(c.Ranks); share < per {
		per = share
	}
	return per
}

// EndToEnd computes Table IV for a set of methods.
func EndToEnd(cfg Config, methods []Method) ([]Entry, error) {
	if cfg.Ranks < 1 || cfg.BytesPerRank <= 0 ||
		cfg.PerRankBandwidth <= 0 || cfg.AggregateBandwidth <= 0 {
		return nil, fmt.Errorf("iosim: invalid config %+v", cfg)
	}
	bw := cfg.effectiveBandwidth()
	var out []Entry
	for _, m := range methods {
		e := Entry{Method: m.Name}
		switch {
		case m.Staged:
			if cfg.StagingBandwidth <= 0 {
				return nil, fmt.Errorf("iosim: method %q needs StagingBandwidth", m.Name)
			}
			// The application only pays for shipping raw bytes to the
			// staging node; compression and storage proceed off-path.
			e.IOTime = cfg.BytesPerRank / cfg.StagingBandwidth
			e.TotalTime = e.IOTime

		case m.Throughput <= 0: // baseline, no compression
			e.IOTime = cfg.BytesPerRank / bw
			e.TotalTime = e.IOTime

		default:
			if m.Ratio <= 0 {
				return nil, fmt.Errorf("iosim: method %q has ratio %v", m.Name, m.Ratio)
			}
			e.CompressTime = cfg.BytesPerRank / m.Throughput
			e.IOTime = cfg.BytesPerRank / m.Ratio / bw
			e.TotalTime = e.CompressTime + e.IOTime
		}
		out = append(out, e)
	}
	return out, nil
}

// MeasureMethod times core.Compress on a sample field and returns the
// resulting Method (throughput in raw bytes/s and achieved ratio). The
// sample should be representative of the per-rank subdomain.
func MeasureMethod(name string, f *grid.Field, opts core.Options, staged bool) (Method, error) {
	start := time.Now()
	res, err := core.Compress(f, opts)
	if err != nil {
		return Method{}, fmt.Errorf("iosim: measuring %q: %w", name, err)
	}
	elapsed := time.Since(start).Seconds()
	if elapsed <= 0 {
		elapsed = 1e-9
	}
	return Method{
		Name:       name,
		Throughput: float64(res.OriginalBytes) / elapsed,
		Ratio:      res.Ratio(),
		Staged:     staged,
	}, nil
}

// Baseline returns the no-compression method row.
func Baseline() Method { return Method{Name: "Baseline (I/O with no compression)", Ratio: 1} }

// StagedMethod wraps a name into a staging row (measured throughput is
// irrelevant on the application's critical path).
func StagedMethod(name string) Method { return Method{Name: name, Staged: true, Ratio: 1} }

package iosim

import (
	"math"
	"testing"

	"lrm/internal/compress/zfp"
	"lrm/internal/core"
	"lrm/internal/grid"
	"lrm/internal/reduce"
	"lrm/internal/sim/heat3d"
)

func TestEffectiveBandwidthContention(t *testing.T) {
	cfg := Config{Ranks: 100, BytesPerRank: 1, PerRankBandwidth: 1e9, AggregateBandwidth: 10e9}
	// 100 ranks sharing 10 GB/s -> 100 MB/s each, below the 1 GB/s link.
	if bw := cfg.effectiveBandwidth(); bw != 1e8 {
		t.Fatalf("effective bw = %v, want 1e8", bw)
	}
	cfg.Ranks = 2
	// 2 ranks sharing 10 GB/s -> 5 GB/s each, capped by the 1 GB/s link.
	if bw := cfg.effectiveBandwidth(); bw != 1e9 {
		t.Fatalf("effective bw = %v, want 1e9", bw)
	}
}

func TestEndToEndArithmetic(t *testing.T) {
	cfg := Config{
		Ranks: 10, BytesPerRank: 1e9,
		PerRankBandwidth: 1e8, AggregateBandwidth: 1e12, StagingBandwidth: 5e8,
	}
	methods := []Method{
		Baseline(),
		{Name: "fast codec", Throughput: 1e9, Ratio: 4},
		StagedMethod("staged"),
	}
	entries, err := EndToEnd(cfg, methods)
	if err != nil {
		t.Fatal(err)
	}
	// Baseline: 1e9 / 1e8 = 10 s of I/O, no compression.
	if entries[0].CompressTime != 0 || math.Abs(entries[0].IOTime-10) > 1e-9 {
		t.Fatalf("baseline = %+v", entries[0])
	}
	// Codec: 1 s compress + 10/4 s I/O = 3.5 s.
	if math.Abs(entries[1].CompressTime-1) > 1e-9 || math.Abs(entries[1].IOTime-2.5) > 1e-9 ||
		math.Abs(entries[1].TotalTime-3.5) > 1e-9 {
		t.Fatalf("codec = %+v", entries[1])
	}
	// Staged: 1e9 / 5e8 = 2 s, nothing else on the critical path.
	if math.Abs(entries[2].TotalTime-2) > 1e-9 || entries[2].CompressTime != 0 {
		t.Fatalf("staged = %+v", entries[2])
	}
}

func TestCompressionPaysWhenRatioHighEnough(t *testing.T) {
	cfg := TitanLike()
	fast := Method{Name: "fast", Throughput: 2e9, Ratio: 10}
	slow := Method{Name: "slow", Throughput: 2e7, Ratio: 10}
	entries, err := EndToEnd(cfg, []Method{Baseline(), fast, slow})
	if err != nil {
		t.Fatal(err)
	}
	base, fastE, slowE := entries[0], entries[1], entries[2]
	if fastE.TotalTime >= base.TotalTime {
		t.Fatalf("fast codec (%v) should beat baseline (%v)", fastE.TotalTime, base.TotalTime)
	}
	// The Table IV crossover: an expensive preconditioner can lose to the
	// baseline even at the same ratio.
	if slowE.TotalTime <= base.TotalTime {
		t.Fatalf("slow codec (%v) should lose to baseline (%v) — the paper's crossover", slowE.TotalTime, base.TotalTime)
	}
	// And staging must rescue it.
	staged, err := EndToEnd(cfg, []Method{StagedMethod("staging")})
	if err != nil {
		t.Fatal(err)
	}
	if staged[0].TotalTime >= base.TotalTime {
		t.Fatalf("staging (%v) should beat baseline (%v)", staged[0].TotalTime, base.TotalTime)
	}
}

func TestValidation(t *testing.T) {
	if _, err := EndToEnd(Config{}, []Method{Baseline()}); err == nil {
		t.Fatal("expected invalid-config error")
	}
	cfg := TitanLike()
	if _, err := EndToEnd(cfg, []Method{{Name: "bad", Throughput: 1, Ratio: 0}}); err == nil {
		t.Fatal("expected invalid-ratio error")
	}
	cfg.StagingBandwidth = 0
	if _, err := EndToEnd(cfg, []Method{StagedMethod("s")}); err == nil {
		t.Fatal("expected staging-bandwidth error")
	}
}

func TestMeasureMethodProducesSaneNumbers(t *testing.T) {
	hc := heat3d.Default(16)
	hc.Steps = 30
	f := heat3d.Solve(hc)
	m, err := MeasureMethod("PCA(ZFP)", f, core.Options{
		Model: reduce.PCA{}, DataCodec: zfp.MustNew(16), DeltaCodec: zfp.MustNew(8),
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	if m.Throughput <= 0 || m.Ratio <= 0 || m.Staged {
		t.Fatalf("method = %+v", m)
	}
	// Feed it through the model.
	entries, err := EndToEnd(TitanLike(), []Method{Baseline(), m})
	if err != nil {
		t.Fatal(err)
	}
	if entries[1].CompressTime <= 0 || entries[1].IOTime <= 0 {
		t.Fatalf("entry = %+v", entries[1])
	}
	// Compressed I/O must be cheaper than baseline I/O.
	if entries[1].IOTime >= entries[0].IOTime {
		t.Fatal("compression did not reduce I/O time")
	}
}

func TestMeasureMethodError(t *testing.T) {
	f := grid.New(4)
	if _, err := MeasureMethod("x", f, core.Options{}, false); err == nil {
		t.Fatal("expected error from missing codec")
	}
}

package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestConfigResolve(t *testing.T) {
	if got := (Config{}).Resolve(); got != DefaultWorkers() {
		t.Fatalf("zero config resolved to %d, want DefaultWorkers()=%d", got, DefaultWorkers())
	}
	if got := (Config{Workers: -3}).Resolve(); got != 1 {
		t.Fatalf("negative workers resolved to %d, want 1", got)
	}
	for _, w := range []int{1, 2, 7, 64} {
		if got := (Config{Workers: w}).Resolve(); got != w {
			t.Fatalf("Workers=%d resolved to %d", w, got)
		}
	}
}

func TestDefaultWorkers(t *testing.T) {
	if got := DefaultWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("DefaultWorkers() = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
}

// TestForEveryIndexOnce checks that For visits each index exactly once at
// every worker count, including degenerate ones.
func TestForEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 2, 7, 64, 1000} {
			visits := make([]atomic.Int32, max(n, 1))
			For(workers, n, func(i int) {
				if i < 0 || i >= n {
					t.Errorf("workers=%d n=%d: index %d out of range", workers, n, i)
					return
				}
				visits[i].Add(1)
			})
			for i := 0; i < n; i++ {
				if got := visits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, got)
				}
			}
		}
	}
}

// TestForSerialIsInline checks the documented Workers<=1 contract: the loop
// runs on the calling goroutine in index order.
func TestForSerialIsInline(t *testing.T) {
	var order []int
	For(1, 10, func(i int) { order = append(order, i) }) // no sync: must be inline
	for i, v := range order {
		if v != i {
			t.Fatalf("serial For out of order at %d: got %v", i, order)
		}
	}
	if len(order) != 10 {
		t.Fatalf("serial For visited %d of 10 indices", len(order))
	}
}

func TestShardBoundsPartition(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16, 97, 1024} {
		for _, workers := range []int{1, 2, 3, 7, 16, 200} {
			s := Shards(workers, n)
			if s < 1 || s > n || s > max(workers, 1) {
				t.Fatalf("Shards(%d,%d) = %d out of range", workers, n, s)
			}
			prev := 0
			for i := 0; i < s; i++ {
				lo, hi := ShardBounds(n, s, i)
				if lo != prev {
					t.Fatalf("n=%d shards=%d: shard %d starts at %d, want %d", n, s, i, lo, prev)
				}
				if hi < lo {
					t.Fatalf("n=%d shards=%d: shard %d empty-negative [%d,%d)", n, s, i, lo, hi)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("n=%d shards=%d: shards cover %d of %d", n, s, prev, n)
			}
		}
	}
	if got := Shards(8, 0); got != 0 {
		t.Fatalf("Shards(8,0) = %d, want 0", got)
	}
}

// TestForShardCoverage checks that the shard callbacks jointly cover [0, n)
// exactly once and that shard indices are dense.
func TestForShardCoverage(t *testing.T) {
	for _, workers := range []int{1, 2, 5, 16} {
		for _, n := range []int{1, 3, 16, 1000} {
			covered := make([]atomic.Int32, n)
			var shardsSeen atomic.Int32
			ForShard(workers, n, func(shard, lo, hi int) {
				shardsSeen.Add(1)
				if shard < 0 || shard >= Shards(workers, n) {
					t.Errorf("shard index %d out of range", shard)
				}
				for i := lo; i < hi; i++ {
					covered[i].Add(1)
				}
			})
			if int(shardsSeen.Load()) != Shards(workers, n) {
				t.Fatalf("workers=%d n=%d: %d shard calls, want %d", workers, n, shardsSeen.Load(), Shards(workers, n))
			}
			for i := 0; i < n; i++ {
				if got := covered[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d covered %d times", workers, n, i, got)
				}
			}
		}
	}
}

// TestArenas checks the length contract and that recycled buffers keep
// capacity. Contents after get are unspecified, so only shape is asserted.
func TestArenas(t *testing.T) {
	f := Floats(100)
	if len(f) != 100 {
		t.Fatalf("Floats(100) len %d", len(f))
	}
	PutFloats(f)
	f2 := Floats(50)
	if len(f2) != 50 {
		t.Fatalf("Floats(50) len %d", len(f2))
	}
	PutFloats(f2)

	i64 := Int64s(17)
	if len(i64) != 17 {
		t.Fatalf("Int64s(17) len %d", len(i64))
	}
	PutInt64s(i64)
	u64 := Uint64s(9)
	if len(u64) != 9 {
		t.Fatalf("Uint64s(9) len %d", len(u64))
	}
	PutUint64s(u64)
	is := Ints(3)
	if len(is) != 3 {
		t.Fatalf("Ints(3) len %d", len(is))
	}
	PutInts(is)

	// Zero-length slices round-trip without panicking.
	PutFloats(Floats(0))
	PutInts(nil)
}

// TestPoolStress hammers For/ForShard and the arenas from many goroutines at
// once. Its real assertion is the -race detector (the verify gate runs this
// package under -race): any unsynchronised access in the pool internals or
// arena recycling shows up here.
func TestPoolStress(t *testing.T) {
	const rounds = 50
	var total atomic.Int64
	For(8, rounds, func(r int) {
		n := 64 + r
		buf := Floats(n)
		for i := range buf {
			buf[i] = float64(i)
		}
		sums := make([]float64, Shards(4, n))
		ForShard(4, n, func(shard, lo, hi int) {
			scratch := Int64s(hi - lo)
			s := 0.0
			for i := lo; i < hi; i++ {
				scratch[i-lo] = int64(buf[i])
				s += buf[i]
			}
			PutInt64s(scratch)
			sums[shard] = s
		})
		got := 0.0
		for _, s := range sums {
			got += s
		}
		want := float64(n*(n-1)) / 2
		if got != want {
			t.Errorf("round %d: shard sum %v, want %v", r, got, want)
		}
		PutFloats(buf)
		total.Add(int64(n))
	})
	if total.Load() == 0 {
		t.Fatal("stress loop did not run")
	}
}

func TestWorkersForCutover(t *testing.T) {
	cases := []struct {
		name  string
		cfg   Config
		bytes int64
		want  int
	}{
		// Tiny inputs never fork, whatever the worker budget says.
		{"small-input-serial", Config{Workers: 4}, 256 << 10, 1},
		{"below-threshold", Config{Workers: 8}, DefaultMinShardBytes - 1, 1},
		// At exactly one shard's worth, one worker.
		{"one-shard", Config{Workers: 8}, DefaultMinShardBytes, 1},
		// Medium inputs clamp to totalBytes / DefaultMinShardBytes shards.
		{"clamped", Config{Workers: 8}, 2 << 20, 4},
		{"unclamped", Config{Workers: 2}, 64 << 20, 2},
		// Workers == 1 stays serial regardless of size.
		{"serial", Config{Workers: 1}, 1 << 30, 1},
		// A custom threshold moves the cutover.
		{"custom-threshold", Config{Workers: 8, MinShardBytes: 1 << 10}, 16 << 10, 8},
		{"custom-threshold-clamp", Config{Workers: 8, MinShardBytes: 1 << 20}, 2 << 20, 2},
		// Negative disables the cutover entirely.
		{"disabled", Config{Workers: 8, MinShardBytes: -1}, 1, 8},
		{"disabled-zero-bytes", Config{Workers: 3, MinShardBytes: -1}, 0, 3},
	}
	for _, tc := range cases {
		if got := tc.cfg.WorkersFor(tc.bytes); got != tc.want {
			t.Errorf("%s: WorkersFor(%d) = %d, want %d", tc.name, tc.bytes, got, tc.want)
		}
	}
}

func TestWorkersForNeverExceedsResolve(t *testing.T) {
	for workers := 1; workers <= 16; workers++ {
		for _, bytes := range []int64{0, 1, 4 << 10, 512 << 10, 1 << 20, 1 << 30} {
			cfg := Config{Workers: workers}
			got := cfg.WorkersFor(bytes)
			if got < 1 || got > cfg.Resolve() {
				t.Fatalf("WorkersFor(%d) with %d workers = %d, out of [1,%d]",
					bytes, workers, got, cfg.Resolve())
			}
		}
	}
}

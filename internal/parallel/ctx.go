package parallel

import (
	"context"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"lrm/internal/obs"
)

// ForCtx is For with context propagation into the pool workers: every
// worker goroutine runs with ctx's runtime/pprof labels installed (so CPU
// profiles attribute pool work to the submitting stage) and fn receives
// ctx, whose trace span — when the caller started one — parents any spans
// fn opens. ctx is carried, not consulted: like For, the batch always runs
// to completion; cancellation semantics belong to the caller's fn. Callers
// that want early abort check ctx.Err() at the top of fn and skip the
// unit's work — the chunked container (internal/core) does exactly that at
// chunk boundaries, so a canceled request drains in at most one in-flight
// unit per worker rather than running the whole batch.
//
// With workers <= 1 or n <= 1 the loop runs inline on the calling
// goroutine, which already holds ctx and its labels — the serial path stays
// a plain loop.
func ForCtx(ctx context.Context, workers, n int, fn func(ctx context.Context, i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	rec := obs.Enabled()
	if rec {
		obsTasks.Add(int64(n))
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(ctx, i)
		}
		return
	}
	if rec {
		obsQueueDepth.SetMax(int64(n))
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			// pprof.Do installs the submitter's label set on this worker for
			// the duration of the batch and restores the previous labels on
			// return. Empty label addition keeps ctx's labels as-is.
			pprof.Do(ctx, pprof.Labels(), func(ctx context.Context) {
				var busyNs, done int64
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						break
					}
					if rec {
						t0 := time.Now()
						fn(ctx, i)
						ns := time.Since(t0).Nanoseconds()
						busyNs += ns
						done++
						obsTaskNs.Observe(ns)
					} else {
						fn(ctx, i)
					}
				}
				if rec && done > 0 {
					obs.StageAdd("parallel.worker_busy", busyNs, done)
				}
			})
		}()
	}
	wg.Wait()
}

// ForShardCtx is ForShard with the same context propagation as ForCtx: the
// deterministic (workers, n) partition is unchanged, and fn additionally
// receives the submitting goroutine's ctx in every worker.
func ForShardCtx(ctx context.Context, workers, n int, fn func(ctx context.Context, shard, lo, hi int)) {
	s := Shards(workers, n)
	if s == 0 {
		return
	}
	if s == 1 {
		fn(ctx, 0, 0, n)
		return
	}
	ForCtx(ctx, workers, s, func(ctx context.Context, i int) {
		lo, hi := ShardBounds(n, s, i)
		fn(ctx, i, lo, hi)
	})
}

package parallel

import "sync"

// The arenas below are sync.Pool-backed scratch allocators for the codec
// hot loops. A kernel that needs a per-shard (or per-call) buffer takes it
// from the arena and returns it when done; steady-state compression then
// allocates nothing per block/symbol, which is where the allocs/op budget
// of the BENCH gate comes from.
//
// Returned slices have the requested length but UNSPECIFIED contents — the
// caller must fully initialise what it reads. Pools store pointers to
// slices so Put does not itself allocate a header.

type slicePool[T any] struct {
	pool sync.Pool
}

func (p *slicePool[T]) get(n int) []T {
	if v, ok := p.pool.Get().(*[]T); ok && cap(*v) >= n {
		return (*v)[:n]
	}
	return make([]T, n)
}

func (p *slicePool[T]) put(s []T) {
	if cap(s) == 0 {
		return
	}
	s = s[:0]
	p.pool.Put(&s)
}

var (
	floatArena  slicePool[float64]
	int64Arena  slicePool[int64]
	uint64Arena slicePool[uint64]
	intArena    slicePool[int]
	byteArena   slicePool[byte]
)

// Floats returns a float64 scratch slice of length n from the arena.
func Floats(n int) []float64 { return floatArena.get(n) }

// PutFloats returns a slice obtained from Floats to the arena. The caller
// must not use s afterwards.
func PutFloats(s []float64) { floatArena.put(s) }

// Int64s returns an int64 scratch slice of length n from the arena.
func Int64s(n int) []int64 { return int64Arena.get(n) }

// PutInt64s returns a slice obtained from Int64s to the arena.
func PutInt64s(s []int64) { int64Arena.put(s) }

// Uint64s returns a uint64 scratch slice of length n from the arena.
func Uint64s(n int) []uint64 { return uint64Arena.get(n) }

// PutUint64s returns a slice obtained from Uint64s to the arena.
func PutUint64s(s []uint64) { uint64Arena.put(s) }

// Ints returns an int scratch slice of length n from the arena.
func Ints(n int) []int { return intArena.get(n) }

// PutInts returns a slice obtained from Ints to the arena.
func PutInts(s []int) { intArena.put(s) }

// Bytes returns a byte scratch slice of length n from the arena.
func Bytes(n int) []byte { return byteArena.get(n) }

// PutBytes returns a slice obtained from Bytes to the arena.
func PutBytes(s []byte) { byteArena.put(s) }

// Package parallel provides the bounded fork/join worker pool and scratch
// buffer arenas behind the codec kernels and the chunked container.
//
// Two properties shape the API:
//
//   - Workers == 1 (or a degenerate range) runs the loop inline on the
//     calling goroutine, with no pool, no channels and no extra
//     allocation: it IS the serial execution, not an emulation of it.
//   - Work is partitioned deterministically. ForShard always cuts [0, n)
//     into the same contiguous ranges for a given (workers, n), so
//     encoders that write one private bitstream per shard and concatenate
//     them in shard order produce byte-identical output to a single
//     serial pass, regardless of how the goroutines interleave.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"lrm/internal/obs"
)

// Hoisted pool metrics (see internal/obs). parallel.queue_depth is the
// high-water mark of tasks submitted to one fork/join batch;
// stage.parallel.worker_busy accumulates per-worker busy nanoseconds (flushed
// once per worker at join); parallel.task.ns is the per-task latency
// histogram, recorded only on the pooled path so the inline serial loop
// stays timing-free.
var (
	obsTasks      = obs.GetCounter("parallel.tasks")
	obsQueueDepth = obs.GetGauge("parallel.queue_depth")
	obsTaskNs     = obs.GetHistogram("parallel.task.ns", nil)
)

// Config selects the degree of parallelism for a compression run. The zero
// value means "use DefaultWorkers()"; Workers == 1 forces fully serial
// execution on the calling goroutine.
type Config struct {
	// Workers is the maximum number of concurrently running worker
	// goroutines. 0 defaults to DefaultWorkers(); negative values are
	// treated as 1.
	Workers int
	// MinShardBytes is the smallest per-shard input (in bytes of the data
	// being cut) worth forking the pool for: WorkersFor reduces the
	// effective worker count until every shard carries at least this much,
	// so tiny inputs never pay fork/join and stream-concatenation overhead
	// they cannot amortize. 0 defaults to DefaultMinShardBytes; negative
	// disables the cutover (every resolved worker count is used as-is).
	MinShardBytes int64
}

// DefaultMinShardBytes is the per-shard input size below which the pool
// costs more than it saves, measured on the BENCH harness: the zfp small
// cell (256 KiB) regressed under workers=4 while the medium cell (2 MiB,
// 512 KiB/shard) did not, so the default cutover sits at 512 KiB.
const DefaultMinShardBytes = 512 << 10

// Resolve returns the effective worker count for the config.
func (c Config) Resolve() int {
	if c.Workers == 0 {
		return DefaultWorkers()
	}
	if c.Workers < 1 {
		return 1
	}
	return c.Workers
}

// minShardBytes resolves the cutover threshold.
func (c Config) minShardBytes() int64 {
	if c.MinShardBytes == 0 {
		return DefaultMinShardBytes
	}
	if c.MinShardBytes < 0 {
		return 0
	}
	return c.MinShardBytes
}

// WorkersFor returns the worker count to use for an input of totalBytes:
// Resolve(), clamped so every shard gets at least MinShardBytes of input.
// The clamp only ever lowers the count (never below 1), so a codec that
// shards its input across WorkersFor(n) workers still produces the
// byte-identical stream of any other worker count — the cutover trades
// pool overhead, never format.
func (c Config) WorkersFor(totalBytes int64) int {
	w := c.Resolve()
	if w <= 1 {
		return w
	}
	min := c.minShardBytes()
	if min <= 0 {
		return w
	}
	if totalBytes < min {
		return 1
	}
	if per := totalBytes / min; int64(w) > per {
		w = int(per)
	}
	return w
}

// DefaultWorkers is the pool size used when no explicit worker count is
// configured: one worker per schedulable CPU.
func DefaultWorkers() int {
	return runtime.GOMAXPROCS(0)
}

// For runs fn(i) for every i in [0, n), using at most `workers` concurrent
// goroutines, and returns only after every call has completed (fork/join).
// With workers <= 1 or n <= 1 the loop runs inline in index order. Indices
// are handed out through a shared cursor, so call order across workers is
// nondeterministic: fn must only touch state owned by index i (or state
// protected by the caller).
func For(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	rec := obs.Enabled()
	if rec {
		obsTasks.Add(int64(n))
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if rec {
		obsQueueDepth.SetMax(int64(n))
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			var busyNs, done int64
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					break
				}
				if rec {
					t0 := time.Now()
					fn(i)
					ns := time.Since(t0).Nanoseconds()
					busyNs += ns
					done++
					obsTaskNs.Observe(ns)
				} else {
					fn(i)
				}
			}
			if rec && done > 0 {
				obs.StageAdd("parallel.worker_busy", busyNs, done)
			}
		}()
	}
	wg.Wait()
}

// Shards reports how many contiguous ranges ForShard will use for n items
// at the given worker count: min(workers, n), at least 1 for n > 0.
func Shards(workers, n int) int {
	if n <= 0 {
		return 0
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		return n
	}
	return workers
}

// ShardBounds returns the half-open range [lo, hi) of shard s when n items
// are cut into `shards` near-equal contiguous pieces. The partition is a
// pure function of (n, shards): it never depends on scheduling.
func ShardBounds(n, shards, s int) (lo, hi int) {
	return s * n / shards, (s + 1) * n / shards
}

// ForShard cuts [0, n) into Shards(workers, n) contiguous ranges and runs
// fn(shard, lo, hi) for each, with at most `workers` goroutines. The shard
// index is dense in [0, Shards(workers, n)), so callers can give every
// shard a private output slot and merge the slots in shard order after the
// join.
func ForShard(workers, n int, fn func(shard, lo, hi int)) {
	s := Shards(workers, n)
	if s == 0 {
		return
	}
	if s == 1 {
		fn(0, 0, n)
		return
	}
	For(workers, s, func(i int) {
		lo, hi := ShardBounds(n, s, i)
		fn(i, lo, hi)
	})
}

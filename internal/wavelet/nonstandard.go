package wavelet

import "fmt"

// Forward2DNonstandard applies the nonstandard (pyramid) Haar
// decomposition: rows and columns are transformed ONE level at a time,
// alternating, and the recursion descends only into the low-low quadrant —
// the scheme of Mulcahy's image-compression exposition (the paper's
// reference [24]) and of most image codecs. Compared to the standard
// decomposition (full row transform, then full column transform) it
// concentrates energy into a true multiresolution pyramid, which often
// thresholds to a sparser matrix on data with isotropic features.
func Forward2DNonstandard(data []float64, rows, cols int) error {
	if rows*cols != len(data) {
		return fmt.Errorf("wavelet: %d values do not fit %dx%d", len(data), rows, cols)
	}
	tmp := make([]float64, max(rows, cols))
	r, c := rows, cols
	for r >= 2 || c >= 2 {
		if c >= 2 {
			for j := 0; j < r; j++ {
				row := data[j*cols : j*cols+c]
				forwardStep(row, tmp)
			}
			c = (c + 1) / 2
		}
		if r >= 2 {
			col := tmp[:r]
			for i := 0; i < c; i++ {
				for j := 0; j < r; j++ {
					col[j] = data[j*cols+i]
				}
				forwardStep(col, make([]float64, r))
				for j := 0; j < r; j++ {
					data[j*cols+i] = col[j]
				}
			}
			r = (r + 1) / 2
		}
	}
	return nil
}

// Inverse2DNonstandard undoes Forward2DNonstandard.
func Inverse2DNonstandard(data []float64, rows, cols int) error {
	if rows*cols != len(data) {
		return fmt.Errorf("wavelet: %d values do not fit %dx%d", len(data), rows, cols)
	}
	// Reproduce the forward ladder of (r, c) band sizes, then unwind it.
	type level struct {
		r, c   int
		didRow bool
		didCol bool
	}
	var ladder []level
	r, c := rows, cols
	for r >= 2 || c >= 2 {
		lv := level{r: r, c: c}
		if c >= 2 {
			lv.didRow = true
			c = (c + 1) / 2
		}
		if r >= 2 {
			lv.didCol = true
			r = (r + 1) / 2
		}
		ladder = append(ladder, lv)
	}
	tmp := make([]float64, max(rows, cols))
	for i := len(ladder) - 1; i >= 0; i-- {
		lv := ladder[i]
		rr, cc := lv.r, lv.c
		// The forward pass at this level saw (rr, cc); its row step worked
		// on width cc, its column step on height rr but only the first
		// ceil(cc/2) columns.
		lowC := cc
		if lv.didRow {
			lowC = (cc + 1) / 2
		}
		if lv.didCol {
			col := tmp[:rr]
			for x := 0; x < lowC; x++ {
				for j := 0; j < rr; j++ {
					col[j] = data[j*cols+x]
				}
				inverseStep(col, make([]float64, rr))
				for j := 0; j < rr; j++ {
					data[j*cols+x] = col[j]
				}
			}
		}
		if lv.didRow {
			for j := 0; j < rr; j++ {
				row := data[j*cols : j*cols+cc]
				inverseStep(row, tmp)
			}
		}
	}
	return nil
}

// Package wavelet implements the multilevel orthonormal Haar transform and
// the thresholded sparse representation used by the paper's Wavelet reduced
// model (Section V-A.3): transform rows, then columns, zero the near-zero
// coefficients, and store the surviving ones sparsely.
package wavelet

import (
	"encoding/binary"
	"fmt"
	"math"

	"lrm/internal/compress"
)

// invSqrt2 scales the Haar sum/difference pairs so the transform is
// orthonormal (energy preserving), which makes thresholds comparable across
// levels.
var invSqrt2 = 1 / math.Sqrt2

// forwardStep transforms one level in place: pair sums go to the front half
// of v, pair differences to the back half. For odd lengths the trailing
// element is carried into the low band unchanged. It returns the size of the
// low band.
func forwardStep(v []float64, tmp []float64) int {
	n := len(v)
	pairs := n / 2
	low := (n + 1) / 2
	for i := 0; i < pairs; i++ {
		a, b := v[2*i], v[2*i+1]
		tmp[i] = (a + b) * invSqrt2
		tmp[low+i] = (a - b) * invSqrt2
	}
	if n%2 == 1 {
		tmp[pairs] = v[n-1]
	}
	copy(v, tmp[:n])
	return low
}

// inverseStep undoes forwardStep for a band of size n with low band `low`.
func inverseStep(v []float64, tmp []float64) {
	n := len(v)
	pairs := n / 2
	low := (n + 1) / 2
	for i := 0; i < pairs; i++ {
		s, d := v[i], v[low+i]
		tmp[2*i] = (s + d) * invSqrt2
		tmp[2*i+1] = (s - d) * invSqrt2
	}
	if n%2 == 1 {
		tmp[n-1] = v[pairs]
	}
	copy(v, tmp[:n])
}

// Forward1D applies the full multilevel Haar transform to v in place,
// recursing on the low band until a single coefficient remains.
func Forward1D(v []float64) {
	tmp := make([]float64, len(v))
	n := len(v)
	for n >= 2 {
		n = forwardStep(v[:n], tmp)
	}
}

// Inverse1D undoes Forward1D in place.
func Inverse1D(v []float64) {
	tmp := make([]float64, len(v))
	// Reproduce the band-size ladder, then unwind it.
	var sizes []int
	n := len(v)
	for n >= 2 {
		sizes = append(sizes, n)
		n = (n + 1) / 2
	}
	for i := len(sizes) - 1; i >= 0; i-- {
		inverseStep(v[:sizes[i]], tmp)
	}
}

// Forward2D applies the standard (separable) decomposition to a row-major
// rows×cols matrix in place: the full 1-D transform to every row, then to
// every column. This matches the paper's Step 1 / Step 2 description.
func Forward2D(data []float64, rows, cols int) error {
	if rows*cols != len(data) {
		return fmt.Errorf("wavelet: %d values do not fit %dx%d", len(data), rows, cols)
	}
	for r := 0; r < rows; r++ {
		Forward1D(data[r*cols : (r+1)*cols])
	}
	col := make([]float64, rows)
	for c := 0; c < cols; c++ {
		for r := 0; r < rows; r++ {
			col[r] = data[r*cols+c]
		}
		Forward1D(col)
		for r := 0; r < rows; r++ {
			data[r*cols+c] = col[r]
		}
	}
	return nil
}

// Inverse2D undoes Forward2D.
func Inverse2D(data []float64, rows, cols int) error {
	if rows*cols != len(data) {
		return fmt.Errorf("wavelet: %d values do not fit %dx%d", len(data), rows, cols)
	}
	col := make([]float64, rows)
	for c := 0; c < cols; c++ {
		for r := 0; r < rows; r++ {
			col[r] = data[r*cols+c]
		}
		Inverse1D(col)
		for r := 0; r < rows; r++ {
			data[r*cols+c] = col[r]
		}
	}
	for r := 0; r < rows; r++ {
		Inverse1D(data[r*cols : (r+1)*cols])
	}
	return nil
}

// Threshold zeroes every element with |v| < theta and returns how many
// survive. theta <= 0 keeps everything.
func Threshold(data []float64, theta float64) (kept int) {
	if theta <= 0 {
		return len(data)
	}
	for i, v := range data {
		if math.Abs(v) < theta {
			data[i] = 0
		} else {
			kept++
		}
	}
	return kept
}

// Sparse is a coordinate-list sparse view of a dense rows×cols matrix.
type Sparse struct {
	Rows, Cols int
	Index      []int // flat indices, strictly increasing
	Value      []float64
}

// ToSparse collects the nonzero entries of data.
func ToSparse(data []float64, rows, cols int) (*Sparse, error) {
	if rows*cols != len(data) {
		return nil, fmt.Errorf("wavelet: %d values do not fit %dx%d", len(data), rows, cols)
	}
	s := &Sparse{Rows: rows, Cols: cols}
	for i, v := range data {
		if v != 0 {
			s.Index = append(s.Index, i)
			s.Value = append(s.Value, v)
		}
	}
	return s, nil
}

// Dense expands the sparse matrix back to a dense row-major slice.
func (s *Sparse) Dense() []float64 {
	out := make([]float64, s.Rows*s.Cols)
	for i, idx := range s.Index {
		out[idx] = s.Value[i]
	}
	return out
}

// NNZ returns the number of stored nonzeros.
func (s *Sparse) NNZ() int { return len(s.Index) }

// Encode serialises the sparse matrix: dims, count, delta-varint indices,
// then raw little-endian float64 values. Delta coding keeps the index
// overhead near one byte per nonzero for clustered coefficients.
func (s *Sparse) Encode() []byte {
	var b []byte
	b = binary.AppendUvarint(b, uint64(s.Rows))
	b = binary.AppendUvarint(b, uint64(s.Cols))
	b = binary.AppendUvarint(b, uint64(len(s.Index)))
	prev := 0
	for _, idx := range s.Index {
		b = binary.AppendUvarint(b, uint64(idx-prev))
		prev = idx
	}
	for _, v := range s.Value {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	return b
}

// DecodeSparse reverses Encode.
func DecodeSparse(b []byte) (*Sparse, error) {
	pos := 0
	next := func() (uint64, error) {
		v, n := binary.Uvarint(b[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("wavelet: truncated sparse header: %w", compress.ErrTruncated)
		}
		pos += n
		return v, nil
	}
	rows, err := next()
	if err != nil {
		return nil, err
	}
	cols, err := next()
	if err != nil {
		return nil, err
	}
	count, err := next()
	if err != nil {
		return nil, err
	}
	if rows == 0 || cols == 0 {
		return nil, fmt.Errorf("wavelet: zero dimension: %w", compress.ErrHeader)
	}
	if count > rows*cols {
		return nil, fmt.Errorf("wavelet: nnz %d exceeds matrix size: %w", count, compress.ErrCorrupt)
	}
	s := &Sparse{Rows: int(rows), Cols: int(cols)}
	s.Index = make([]int, count)
	s.Value = make([]float64, count)
	prev := uint64(0)
	for i := range s.Index {
		d, err := next()
		if err != nil {
			return nil, err
		}
		prev += d
		if prev >= rows*cols {
			return nil, fmt.Errorf("wavelet: sparse index out of range: %w", compress.ErrCorrupt)
		}
		s.Index[i] = int(prev)
	}
	if len(b)-pos < 8*int(count) {
		return nil, fmt.Errorf("wavelet: truncated sparse values: %w", compress.ErrTruncated)
	}
	for i := range s.Value {
		s.Value[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[pos:]))
		pos += 8
	}
	return s, nil
}

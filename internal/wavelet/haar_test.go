package wavelet

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestForwardInverse1DPowerOfTwo(t *testing.T) {
	v := []float64{4, 6, 10, 12, 8, 6, 5, 5}
	orig := append([]float64(nil), v...)
	Forward1D(v)
	Inverse1D(v)
	for i := range v {
		if math.Abs(v[i]-orig[i]) > 1e-12 {
			t.Fatalf("1-D round trip [%d]=%v, want %v", i, v[i], orig[i])
		}
	}
}

func TestForwardInverse1DOddLengths(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 7, 9, 13, 100, 101} {
		rng := rand.New(rand.NewSource(int64(n)))
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64() * 10
		}
		orig := append([]float64(nil), v...)
		Forward1D(v)
		Inverse1D(v)
		for i := range v {
			if math.Abs(v[i]-orig[i]) > 1e-10 {
				t.Fatalf("n=%d: round trip [%d]=%v, want %v", n, i, v[i], orig[i])
			}
		}
	}
}

func TestOrthonormalEnergyPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	v := make([]float64, 64)
	energy := 0.0
	for i := range v {
		v[i] = rng.NormFloat64()
		energy += v[i] * v[i]
	}
	Forward1D(v)
	after := 0.0
	for _, x := range v {
		after += x * x
	}
	if math.Abs(energy-after) > 1e-10*energy {
		t.Fatalf("energy not preserved: %v -> %v", energy, after)
	}
}

func TestConstantSignalConcentrates(t *testing.T) {
	// A constant signal must transform to a single nonzero coefficient.
	v := make([]float64, 32)
	for i := range v {
		v[i] = 3
	}
	Forward1D(v)
	nonzero := 0
	for _, x := range v {
		if math.Abs(x) > 1e-12 {
			nonzero++
		}
	}
	if nonzero != 1 {
		t.Fatalf("constant signal has %d nonzero coefficients, want 1", nonzero)
	}
	// And that coefficient carries all the energy: sqrt(32)*3.
	if math.Abs(v[0]-3*math.Sqrt(32)) > 1e-10 {
		t.Fatalf("DC coefficient = %v, want %v", v[0], 3*math.Sqrt(32))
	}
}

func TestForwardInverse2D(t *testing.T) {
	for _, shape := range [][2]int{{4, 4}, {8, 8}, {5, 7}, {1, 9}, {16, 3}} {
		rows, cols := shape[0], shape[1]
		rng := rand.New(rand.NewSource(int64(rows*100 + cols)))
		data := make([]float64, rows*cols)
		for i := range data {
			data[i] = rng.NormFloat64()
		}
		orig := append([]float64(nil), data...)
		if err := Forward2D(data, rows, cols); err != nil {
			t.Fatal(err)
		}
		if err := Inverse2D(data, rows, cols); err != nil {
			t.Fatal(err)
		}
		for i := range data {
			if math.Abs(data[i]-orig[i]) > 1e-10 {
				t.Fatalf("%dx%d: 2-D round trip [%d]=%v, want %v", rows, cols, i, data[i], orig[i])
			}
		}
	}
}

func TestForward2DShapeError(t *testing.T) {
	if err := Forward2D(make([]float64, 5), 2, 3); err == nil {
		t.Fatal("expected shape error")
	}
	if err := Inverse2D(make([]float64, 5), 2, 3); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestSmoothFieldIsSparseAfterThreshold(t *testing.T) {
	// Smooth data concentrates energy in few coefficients: after a 5%-of-max
	// threshold (the paper's theta), most entries should vanish.
	n := 64
	data := make([]float64, n*n)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			data[r*n+c] = math.Sin(float64(r)/9) * math.Cos(float64(c)/11)
		}
	}
	if err := Forward2D(data, n, n); err != nil {
		t.Fatal(err)
	}
	maxAbs := 0.0
	for _, v := range data {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	kept := Threshold(data, 0.05*maxAbs)
	if kept > len(data)/10 {
		t.Fatalf("smooth field kept %d/%d coefficients; expected sparse", kept, len(data))
	}
}

func TestThresholdKeepsEverythingForNonPositiveTheta(t *testing.T) {
	data := []float64{0.1, -0.2, 0}
	if kept := Threshold(data, 0); kept != 3 {
		t.Fatalf("kept=%d, want 3", kept)
	}
	if kept := Threshold(data, 0.15); kept != 1 {
		t.Fatalf("kept=%d, want 1", kept)
	}
	if data[0] != 0 || data[1] != -0.2 {
		t.Fatalf("threshold result = %v", data)
	}
}

func TestSparseRoundTrip(t *testing.T) {
	data := []float64{0, 1.5, 0, 0, -2.25, 0, 0, 0, 3}
	s, err := ToSparse(data, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.NNZ() != 3 {
		t.Fatalf("nnz = %d, want 3", s.NNZ())
	}
	if !reflect.DeepEqual(s.Dense(), data) {
		t.Fatalf("dense = %v, want %v", s.Dense(), data)
	}
	dec, err := DecodeSparse(s.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec.Dense(), data) {
		t.Fatalf("decoded dense = %v, want %v", dec.Dense(), data)
	}
}

func TestSparseEncodeQuick(t *testing.T) {
	check := func(raw []float64, rowsByte uint8) bool {
		rows := int(rowsByte%8) + 1
		cols := 4
		data := make([]float64, rows*cols)
		for i := 0; i < len(data) && i < len(raw); i++ {
			if !math.IsNaN(raw[i]) && !math.IsInf(raw[i], 0) {
				data[i] = raw[i]
			}
		}
		s, err := ToSparse(data, rows, cols)
		if err != nil {
			return false
		}
		dec, err := DecodeSparse(s.Encode())
		if err != nil {
			return false
		}
		return reflect.DeepEqual(dec.Dense(), data)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeSparseGarbage(t *testing.T) {
	cases := [][]byte{
		{},
		{3},
		{3, 3},
		{3, 3, 200}, // nnz way beyond size
		{0, 4, 0},   // zero rows
	}
	for i, c := range cases {
		if _, err := DecodeSparse(c); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
	// Index escaping the matrix must be caught.
	s := &Sparse{Rows: 2, Cols: 2, Index: []int{5}, Value: []float64{1}}
	if _, err := DecodeSparse(s.Encode()); err == nil {
		t.Fatal("expected out-of-range index error")
	}
}

func TestToSparseShapeError(t *testing.T) {
	if _, err := ToSparse(make([]float64, 5), 2, 3); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestNonstandardRoundTrip(t *testing.T) {
	for _, shape := range [][2]int{{4, 4}, {8, 8}, {5, 7}, {1, 9}, {16, 3}, {13, 13}} {
		rows, cols := shape[0], shape[1]
		rng := rand.New(rand.NewSource(int64(rows*1000 + cols)))
		data := make([]float64, rows*cols)
		for i := range data {
			data[i] = rng.NormFloat64() * 5
		}
		orig := append([]float64(nil), data...)
		if err := Forward2DNonstandard(data, rows, cols); err != nil {
			t.Fatal(err)
		}
		if err := Inverse2DNonstandard(data, rows, cols); err != nil {
			t.Fatal(err)
		}
		for i := range data {
			if math.Abs(data[i]-orig[i]) > 1e-10 {
				t.Fatalf("%dx%d: nonstandard round trip [%d]=%v, want %v",
					rows, cols, i, data[i], orig[i])
			}
		}
	}
}

func TestNonstandardEnergyPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const n = 16
	data := make([]float64, n*n)
	e0 := 0.0
	for i := range data {
		data[i] = rng.NormFloat64()
		e0 += data[i] * data[i]
	}
	if err := Forward2DNonstandard(data, n, n); err != nil {
		t.Fatal(err)
	}
	e1 := 0.0
	for _, v := range data {
		e1 += v * v
	}
	if math.Abs(e0-e1) > 1e-9*e0 {
		t.Fatalf("nonstandard transform not orthonormal: %v -> %v", e0, e1)
	}
}

func TestNonstandardConstantConcentrates(t *testing.T) {
	const n = 16
	data := make([]float64, n*n)
	for i := range data {
		data[i] = 2
	}
	if err := Forward2DNonstandard(data, n, n); err != nil {
		t.Fatal(err)
	}
	nonzero := 0
	for _, v := range data {
		if math.Abs(v) > 1e-10 {
			nonzero++
		}
	}
	if nonzero != 1 || math.Abs(data[0]-2*16) > 1e-10 {
		t.Fatalf("constant field: %d nonzeros, DC=%v (want 1, 32)", nonzero, data[0])
	}
}

func TestNonstandardShapeErrors(t *testing.T) {
	if err := Forward2DNonstandard(make([]float64, 5), 2, 3); err == nil {
		t.Fatal("expected shape error")
	}
	if err := Inverse2DNonstandard(make([]float64, 5), 2, 3); err == nil {
		t.Fatal("expected shape error")
	}
}

package reduce

import (
	"encoding/binary"
	"fmt"

	"lrm/internal/grid"
	"lrm/internal/linalg"
	"lrm/internal/obs"
	"lrm/internal/parallel"
)

// obsPCARank reports the rank retained by the most recent PCA fit (per
// column block for the partitioned variant).
var obsPCARank = obs.GetGauge("reduce.pca.rank")

// PCA is the principal-component-analysis reduced model (Section V-A.1):
// the data is matricized, the covariance of its columns eigendecomposed,
// and the k leading eigenvectors plus the projected scores retained as the
// reduced representation. k is the smallest count capturing Energy of the
// variance (the paper's 95% rule).
type PCA struct {
	// Energy is the variance fraction to capture; 0 defaults to 0.95.
	Energy float64
	// MaxK caps the component count; 0 means no cap.
	MaxK int
	// BlockCols > 0 enables the partitioned-matrix variant (the paper's
	// first future-work direction): columns are processed in independent
	// blocks of this width, shrinking the covariance solve from O(n^3) to
	// O(n * BlockCols^2) at a small representation-quality cost.
	BlockCols int
}

// Name implements Model.
func (p PCA) Name() string {
	if p.BlockCols > 0 {
		return fmt.Sprintf("pca(e=%.2f,bc=%d)", p.energy(), p.BlockCols)
	}
	return fmt.Sprintf("pca(e=%.2f)", p.energy())
}

func (p PCA) energy() float64 {
	if p.Energy <= 0 || p.Energy > 1 {
		return 0.95
	}
	return p.Energy
}

func init() { register("pca", reconstructPCA) }

// Reduce implements Model.
func (p PCA) Reduce(f *grid.Field) (*Rep, error) {
	sp := obs.Start("reduce.pca.fit")
	defer sp.End()
	sp.AddItems(int64(f.Len()))
	if err := checkFinite(f); err != nil {
		return nil, err
	}
	m, n := matShape(f)
	if p.BlockCols > 0 && p.BlockCols < n {
		return p.reduceBlocked(f, m, n)
	}
	mat, err := linalg.MatrixFromData(append([]float64(nil), f.Data...), m, n)
	if err != nil {
		return nil, err
	}
	means, vecs, k, scores, err := pcaFactor(mat, p.energy(), p.MaxK)
	if err != nil {
		return nil, err
	}

	var meta []byte
	meta = binary.AppendUvarint(meta, uint64(m))
	meta = binary.AppendUvarint(meta, uint64(n))
	meta = binary.AppendUvarint(meta, 1) // one block
	meta = binary.AppendUvarint(meta, uint64(n))
	meta = binary.AppendUvarint(meta, uint64(k))

	vals := make([]float64, 0, n+n*k+m*k)
	vals = append(vals, means...)
	vals = append(vals, vecs...)
	vals = append(vals, scores...)
	return &Rep{Model: p.Name(), Dims: append([]int(nil), f.Dims...), Meta: meta, Values: vals}, nil
}

// pcaFactor runs the covariance eigen-solve on one column block and returns
// (means, flattened n x k eigenvectors, k, flattened m x k scores).
func pcaFactor(mat *linalg.Matrix, energy float64, maxK int) ([]float64, []float64, int, []float64, error) {
	m, n := mat.Rows, mat.Cols
	means := linalg.ColumnMeans(mat)
	linalg.CenterColumns(mat, means)
	cov := linalg.Covariance(mat) // already centered; means now ~0
	eigvals, eigvecs, err := linalg.EigenSym(cov)
	if err != nil {
		return nil, nil, 0, nil, err
	}
	k := linalg.RankForEnergy(eigvals, energy)
	if maxK > 0 && k > maxK {
		k = maxK
	}
	if obs.Enabled() {
		obsPCARank.Set(int64(k))
	}
	// Retain the top-k eigenvectors (columns of eigvecs).
	vecs := make([]float64, n*k)
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			vecs[i*k+j] = eigvecs.At(i, j)
		}
	}
	// Scores: centered data projected onto the components (m x k). Rows
	// project independently (each with the serial accumulation order), so
	// the shards produce bitwise-identical scores at any worker count.
	scores := make([]float64, m*k)
	parallel.ForShard(parallel.DefaultWorkers(), m, func(_, lo, hi int) {
		for r := lo; r < hi; r++ {
			row := mat.Data[r*n : (r+1)*n]
			for j := 0; j < k; j++ {
				s := 0.0
				for i := 0; i < n; i++ {
					s += row[i] * vecs[i*k+j]
				}
				scores[r*k+j] = s
			}
		}
	})
	return means, vecs, k, scores, nil
}

// reduceBlocked is the partitioned-matrix PCA: independent column blocks.
func (p PCA) reduceBlocked(f *grid.Field, m, n int) (*Rep, error) {
	bc := p.BlockCols
	nBlocks := (n + bc - 1) / bc

	var meta []byte
	meta = binary.AppendUvarint(meta, uint64(m))
	meta = binary.AppendUvarint(meta, uint64(n))
	meta = binary.AppendUvarint(meta, uint64(nBlocks))

	var vals []float64
	for b := 0; b < nBlocks; b++ {
		lo := b * bc
		hi := min(lo+bc, n)
		w := hi - lo
		block := linalg.NewMatrix(m, w)
		for r := 0; r < m; r++ {
			copy(block.Data[r*w:(r+1)*w], f.Data[r*n+lo:r*n+hi])
		}
		means, vecs, k, scores, err := pcaFactor(block, p.energy(), p.MaxK)
		if err != nil {
			return nil, err
		}
		meta = binary.AppendUvarint(meta, uint64(w))
		meta = binary.AppendUvarint(meta, uint64(k))
		vals = append(vals, means...)
		vals = append(vals, vecs...)
		vals = append(vals, scores...)
	}
	return &Rep{Model: p.Name(), Dims: append([]int(nil), f.Dims...), Meta: meta, Values: vals}, nil
}

func reconstructPCA(rep *Rep) (*grid.Field, error) {
	pos := 0
	next := func() (int, error) {
		v, n := binary.Uvarint(rep.Meta[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("pca: corrupt meta")
		}
		pos += n
		return int(v), nil
	}
	m, err := next()
	if err != nil {
		return nil, err
	}
	n, err := next()
	if err != nil {
		return nil, err
	}
	nBlocks, err := next()
	if err != nil {
		return nil, err
	}
	total := 1
	for _, d := range rep.Dims {
		total *= d
	}
	if m <= 0 || n <= 0 || m*n != total || nBlocks <= 0 || nBlocks > n {
		return nil, fmt.Errorf("pca: implausible shape m=%d n=%d blocks=%d for dims %v", m, n, nBlocks, rep.Dims)
	}

	out := make([]float64, m*n)
	vpos := 0
	col := 0
	for b := 0; b < nBlocks; b++ {
		w, err := next()
		if err != nil {
			return nil, err
		}
		k, err := next()
		if err != nil {
			return nil, err
		}
		if w <= 0 || k <= 0 || k > w || col+w > n {
			return nil, fmt.Errorf("pca: implausible block w=%d k=%d", w, k)
		}
		need := w + w*k + m*k
		if vpos+need > len(rep.Values) {
			return nil, fmt.Errorf("pca: payload exhausted")
		}
		means := rep.Values[vpos : vpos+w]
		vecs := rep.Values[vpos+w : vpos+w+w*k]
		scores := rep.Values[vpos+w+w*k : vpos+need]
		vpos += need

		// X_hat = scores * vecs^T + means, written into columns [col, col+w).
		// Rows reconstruct independently; shards write disjoint output rows.
		parallel.ForShard(parallel.DefaultWorkers(), m, func(_, lo, hi int) {
			for r := lo; r < hi; r++ {
				for i := 0; i < w; i++ {
					s := means[i]
					for j := 0; j < k; j++ {
						s += scores[r*k+j] * vecs[i*k+j]
					}
					out[r*n+col+i] = s
				}
			}
		})
		col += w
	}
	if col != n {
		return nil, fmt.Errorf("pca: blocks cover %d of %d columns", col, n)
	}
	if vpos != len(rep.Values) {
		return nil, fmt.Errorf("pca: %d unread payload values", len(rep.Values)-vpos)
	}
	return grid.FromData(out, rep.Dims...)
}

// PCASpectrum returns the proportion-of-variance series of the leading
// principal components of f (Fig. 7). At most maxComponents are returned.
func PCASpectrum(f *grid.Field, maxComponents int) ([]float64, error) {
	m, n := matShape(f)
	mat, err := linalg.MatrixFromData(append([]float64(nil), f.Data...), m, n)
	if err != nil {
		return nil, err
	}
	means := linalg.ColumnMeans(mat)
	linalg.CenterColumns(mat, means)
	cov := linalg.Covariance(mat)
	eigvals, _, err := linalg.EigenSym(cov)
	if err != nil {
		return nil, err
	}
	total := 0.0
	for _, v := range eigvals {
		if v > 0 {
			total += v
		}
	}
	if total == 0 {
		return []float64{1}, nil
	}
	k := min(maxComponents, len(eigvals))
	out := make([]float64, k)
	for i := 0; i < k; i++ {
		v := eigvals[i]
		if v < 0 {
			v = 0
		}
		out[i] = v / total
	}
	return out, nil
}

package reduce

import (
	"encoding/binary"
	"fmt"
	"math"

	"lrm/internal/grid"
	"lrm/internal/wavelet"
)

// Wavelet is the thresholded-Haar reduced model (Section V-A.3): the
// matricized data is Haar-transformed along rows then columns, coefficients
// below Theta times the max coefficient magnitude are zeroed, and the
// surviving sparse matrix is the reduced representation.
type Wavelet struct {
	// Theta is the threshold as a fraction of the max |coefficient|;
	// 0 defaults to the paper's 5%.
	Theta float64
	// Nonstandard switches to the pyramid (nonstandard) decomposition of
	// the paper's reference [24] — rows and columns alternate one level at
	// a time, recursing into the low-low quadrant — which often thresholds
	// sparser on isotropic features.
	Nonstandard bool
}

// Name implements Model.
func (w Wavelet) Name() string {
	if w.Nonstandard {
		return fmt.Sprintf("wavelet(t=%.2f,ns)", w.theta())
	}
	return fmt.Sprintf("wavelet(t=%.2f)", w.theta())
}

func (w Wavelet) theta() float64 {
	if w.Theta <= 0 || w.Theta >= 1 {
		return 0.05
	}
	return w.Theta
}

func init() { register("wavelet", reconstructWavelet) }

// Reduce implements Model.
func (w Wavelet) Reduce(f *grid.Field) (*Rep, error) {
	if err := checkFinite(f); err != nil {
		return nil, err
	}
	m, n := matShape(f)
	coeff := append([]float64(nil), f.Data...)
	var err error
	if w.Nonstandard {
		err = wavelet.Forward2DNonstandard(coeff, m, n)
	} else {
		err = wavelet.Forward2D(coeff, m, n)
	}
	if err != nil {
		return nil, err
	}
	maxAbs := 0.0
	for _, v := range coeff {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	wavelet.Threshold(coeff, w.theta()*maxAbs)
	sp, err := wavelet.ToSparse(coeff, m, n)
	if err != nil {
		return nil, err
	}

	// Indices (delta-varint) go in Meta — they must survive exactly;
	// coefficient values go in Values so the pipeline may quantise them.
	var meta []byte
	kind := uint64(0)
	if w.Nonstandard {
		kind = 1
	}
	meta = binary.AppendUvarint(meta, kind)
	meta = binary.AppendUvarint(meta, uint64(m))
	meta = binary.AppendUvarint(meta, uint64(n))
	meta = binary.AppendUvarint(meta, uint64(sp.NNZ()))
	prev := 0
	for _, idx := range sp.Index {
		meta = binary.AppendUvarint(meta, uint64(idx-prev))
		prev = idx
	}
	return &Rep{
		Model:  w.Name(),
		Dims:   append([]int(nil), f.Dims...),
		Meta:   meta,
		Values: sp.Value,
	}, nil
}

func reconstructWavelet(rep *Rep) (*grid.Field, error) {
	pos := 0
	next := func() (int, error) {
		v, n := binary.Uvarint(rep.Meta[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("wavelet: corrupt meta")
		}
		pos += n
		return int(v), nil
	}
	kind, err := next()
	if err != nil {
		return nil, err
	}
	if kind > 1 {
		return nil, fmt.Errorf("wavelet: unknown transform kind %d", kind)
	}
	m, err := next()
	if err != nil {
		return nil, err
	}
	n, err := next()
	if err != nil {
		return nil, err
	}
	nnz, err := next()
	if err != nil {
		return nil, err
	}
	total := 1
	for _, d := range rep.Dims {
		total *= d
	}
	if m <= 0 || n <= 0 || m*n != total || nnz < 0 || nnz > total {
		return nil, fmt.Errorf("wavelet: implausible shape m=%d n=%d nnz=%d", m, n, nnz)
	}
	if len(rep.Values) != nnz {
		return nil, fmt.Errorf("wavelet: payload %d != nnz %d", len(rep.Values), nnz)
	}
	coeff := make([]float64, total)
	idx := 0
	for i := 0; i < nnz; i++ {
		d, err := next()
		if err != nil {
			return nil, err
		}
		idx += d
		if idx >= total || (i > 0 && d == 0) {
			return nil, fmt.Errorf("wavelet: index stream corrupt")
		}
		coeff[idx] = rep.Values[i]
	}
	if kind == 1 {
		err = wavelet.Inverse2DNonstandard(coeff, m, n)
	} else {
		err = wavelet.Inverse2D(coeff, m, n)
	}
	if err != nil {
		return nil, err
	}
	return grid.FromData(coeff, rep.Dims...)
}

package reduce

import (
	"encoding/binary"
	"fmt"

	"lrm/internal/grid"
)

// DuoModelSim is the faithful DuoModel variant: the reduced model is the
// output of an independently run coarse-resolution simulation (the paper's
// S'), not a resample of the analysis data. Because the coarse run has its
// own discretisation and time-stepping errors, its interpolated
// reconstruction deviates from the full model in structured ways, giving
// the larger-variation deltas the paper reports for DuoModel in Fig. 3.
//
// The representation and reconstruction path are identical to DuoModel
// (coarse field + linear upsample), so the stored archive is
// indistinguishable; only where the coarse field comes from differs.
type DuoModelSim struct {
	// Coarse is the coarse simulation's output. Its rank must match the
	// data being reduced.
	Coarse *grid.Field
}

// Name implements Model.
func (d DuoModelSim) Name() string { return "duomodel(sim)" }

// Reduce implements Model: store the provided coarse-run output.
func (d DuoModelSim) Reduce(f *grid.Field) (*Rep, error) {
	if d.Coarse == nil {
		return nil, fmt.Errorf("duomodel(sim): no coarse model output provided")
	}
	if d.Coarse.Rank() != f.Rank() {
		return nil, fmt.Errorf("duomodel(sim): coarse rank %d != data rank %d", d.Coarse.Rank(), f.Rank())
	}
	if err := checkFinite(f); err != nil {
		return nil, err
	}
	if err := checkFinite(d.Coarse); err != nil {
		return nil, err
	}
	var meta []byte
	meta = binary.AppendUvarint(meta, uint64(len(d.Coarse.Dims)))
	for _, ext := range d.Coarse.Dims {
		meta = binary.AppendUvarint(meta, uint64(ext))
	}
	return &Rep{
		Model:  d.Name(), // baseName "duomodel": shares the upsampling reconstructor
		Dims:   append([]int(nil), f.Dims...),
		Meta:   meta,
		Values: append([]float64(nil), d.Coarse.Data...),
	}, nil
}

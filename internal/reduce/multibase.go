package reduce

import (
	"encoding/binary"
	"fmt"

	"lrm/internal/grid"
	"lrm/internal/mpi"
)

// MultiBase is the paper's multi-base projection model (Fig. 2b): the
// leading dimension is split into Blocks sub-domains (one per MPI rank in
// the original setting) and each sub-domain uses its own local mid-plane as
// the base, avoiding the one-base broadcast at the cost of storing more
// planes.
type MultiBase struct {
	// Blocks is the number of sub-domains along the leading dimension.
	Blocks int
}

// Name implements Model.
func (m MultiBase) Name() string { return fmt.Sprintf("multi-base(b=%d)", m.Blocks) }

func init() { register("multi-base", reconstructMultiBase) }

// Reduce implements Model: one mid-slab per sub-domain.
func (m MultiBase) Reduce(f *grid.Field) (*Rep, error) {
	if err := checkFinite(f); err != nil {
		return nil, err
	}
	b := m.Blocks
	if b < 1 {
		b = 1
	}
	if b > f.Dims[0] {
		b = f.Dims[0]
	}
	sl := slabLen(f.Dims)
	vals := make([]float64, 0, b*sl)
	for blk := 0; blk < b; blk++ {
		lo, hi := mpi.Slab1D(f.Dims[0], b, blk)
		mid := (lo + hi) / 2
		vals = append(vals, f.Data[mid*sl:(mid+1)*sl]...)
	}
	meta := binary.AppendUvarint(nil, uint64(b))
	return &Rep{Model: m.Name(), Dims: append([]int(nil), f.Dims...), Meta: meta, Values: vals}, nil
}

func reconstructMultiBase(rep *Rep) (*grid.Field, error) {
	b64, n := binary.Uvarint(rep.Meta)
	if n <= 0 || b64 == 0 {
		return nil, fmt.Errorf("reduce: multi-base meta corrupt")
	}
	b := int(b64)
	sl := slabLen(rep.Dims)
	if len(rep.Values) != b*sl {
		return nil, fmt.Errorf("reduce: multi-base payload %d != %d blocks x slab %d", len(rep.Values), b, sl)
	}
	if b > rep.Dims[0] {
		return nil, fmt.Errorf("reduce: multi-base has more blocks (%d) than slabs (%d)", b, rep.Dims[0])
	}
	f := grid.New(rep.Dims...)
	for blk := 0; blk < b; blk++ {
		lo, hi := mpi.Slab1D(rep.Dims[0], b, blk)
		base := rep.Values[blk*sl : (blk+1)*sl]
		for k := lo; k < hi; k++ {
			copy(f.Data[k*sl:(k+1)*sl], base)
		}
	}
	return f, nil
}

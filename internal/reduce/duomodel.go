package reduce

import (
	"encoding/binary"
	"fmt"

	"lrm/internal/grid"
)

// DuoModel is the paper's prior-work baseline (Fig. 2c): the reduced model
// is a lower-resolution version of the data, and reconstruction linearly
// interpolates it back to full resolution. In the original system the
// coarse model came from re-running the simulation at enlarged grid
// spacing; synthesising it by resampling the analysis output reproduces the
// same delta structure without the extra compute partition.
type DuoModel struct {
	// Factor is the per-dimension coarsening factor (the paper's 192->48
	// corresponds to 4).
	Factor int
}

// Name implements Model.
func (d DuoModel) Name() string { return fmt.Sprintf("duomodel(f=%d)", d.factor()) }

func (d DuoModel) factor() int {
	if d.Factor < 2 {
		return 4
	}
	return d.Factor
}

func init() { register("duomodel", reconstructDuoModel) }

// Reduce implements Model: block-average downsample.
func (d DuoModel) Reduce(f *grid.Field) (*Rep, error) {
	if err := checkFinite(f); err != nil {
		return nil, err
	}
	factor := d.factor()
	// Find the largest factor <= requested that divides every extent.
	for factor > 1 {
		ok := true
		for _, ext := range f.Dims {
			if ext%factor != 0 || ext/factor < 2 {
				ok = false
				break
			}
		}
		if ok {
			break
		}
		factor--
	}
	if factor < 2 {
		return nil, fmt.Errorf("duomodel: dims %v cannot be coarsened", f.Dims)
	}
	coarse, err := f.Downsample(factor)
	if err != nil {
		return nil, err
	}
	var meta []byte
	meta = binary.AppendUvarint(meta, uint64(len(coarse.Dims)))
	for _, ext := range coarse.Dims {
		meta = binary.AppendUvarint(meta, uint64(ext))
	}
	return &Rep{
		Model:  d.Name(),
		Dims:   append([]int(nil), f.Dims...),
		Meta:   meta,
		Values: coarse.Data,
	}, nil
}

func reconstructDuoModel(rep *Rep) (*grid.Field, error) {
	pos := 0
	rank64, n := binary.Uvarint(rep.Meta)
	if n <= 0 || rank64 == 0 || rank64 > 3 {
		return nil, fmt.Errorf("duomodel: corrupt meta")
	}
	pos += n
	dims := make([]int, rank64)
	total := 1
	for i := range dims {
		v, n := binary.Uvarint(rep.Meta[pos:])
		if n <= 0 || v == 0 {
			return nil, fmt.Errorf("duomodel: corrupt coarse dims")
		}
		pos += n
		dims[i] = int(v)
		total *= dims[i]
	}
	if total != len(rep.Values) {
		return nil, fmt.Errorf("duomodel: payload %d != coarse size %d", len(rep.Values), total)
	}
	coarse, err := grid.FromData(rep.Values, dims...)
	if err != nil {
		return nil, err
	}
	return coarse.Upsample(rep.Dims...)
}

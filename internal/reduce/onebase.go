package reduce

import (
	"fmt"

	"lrm/internal/grid"
	"lrm/internal/invariant"
)

// OneBase is the paper's one-base projection model (Fig. 2a, Algorithm 1):
// the middle slab along the leading dimension — the symmetry plane of the
// solution space — serves as the reduced model, and every other slab stores
// only its delta against it.
type OneBase struct{}

// Name implements Model.
func (OneBase) Name() string { return "one-base" }

func init() { register("one-base", reconstructOneBase) }

// slabLen returns the element count of one leading-dimension slab.
func slabLen(dims []int) int {
	n := 1
	for _, d := range dims[1:] {
		n *= d
	}
	if len(dims) == 1 {
		return 1
	}
	return n
}

// Reduce implements Model: extract the middle slab.
func (OneBase) Reduce(f *grid.Field) (*Rep, error) {
	if err := checkFinite(f); err != nil {
		return nil, err
	}
	sl := slabLen(f.Dims)
	mid := f.Dims[0] / 2
	if invariant.Enabled {
		// Mid-plane selection invariant (Algorithm 1): the base slab index
		// and extent must stay inside the field.
		invariant.InRange(mid, 0, f.Dims[0], "reduce: one-base mid slab")
		invariant.Assert((mid+1)*sl <= f.Len(), "reduce: one-base slab [%d,%d) overruns field of %d", mid*sl, (mid+1)*sl, f.Len())
	}
	vals := make([]float64, sl)
	copy(vals, f.Data[mid*sl:(mid+1)*sl])
	return &Rep{Model: "one-base", Dims: append([]int(nil), f.Dims...), Values: vals}, nil
}

func reconstructOneBase(rep *Rep) (*grid.Field, error) {
	sl := slabLen(rep.Dims)
	if len(rep.Values) != sl {
		return nil, fmt.Errorf("reduce: one-base payload %d != slab %d", len(rep.Values), sl)
	}
	f := grid.New(rep.Dims...)
	for k := 0; k < rep.Dims[0]; k++ {
		copy(f.Data[k*sl:(k+1)*sl], rep.Values)
	}
	return f, nil
}

package reduce

import (
	"encoding/binary"
	"fmt"

	"lrm/internal/grid"
	"lrm/internal/linalg"
	"lrm/internal/obs"
	"lrm/internal/parallel"
)

// obsSVDRank reports the rank retained by the most recent SVD fit.
var obsSVDRank = obs.GetGauge("reduce.svd.rank")

// SVD is the singular-value-decomposition reduced model (Section V-A.2):
// the matricized data is factored A = U S V^T and the k leading triples
// retained, with k chosen by the 95% singular-value energy rule. Unlike
// PCA, which works on the column covariance, SVD captures column and row
// structure together — at a higher factorisation cost (Table III).
type SVD struct {
	// Energy is the singular-value mass fraction to capture; 0 -> 0.95.
	Energy float64
	// MaxK caps the retained rank; 0 means no cap.
	MaxK int
	// Randomized switches to the randomized range-finder factorisation
	// (Halko et al.) at rank MaxK (required > 0) — O(mn·k) instead of the
	// exact solver's O(mn^2), the speed lever the paper's future work
	// asks for. Seed keeps archives reproducible.
	Randomized bool
	Seed       int64
}

// Name implements Model.
func (s SVD) Name() string {
	if s.Randomized {
		return fmt.Sprintf("svd(e=%.2f,rand%d)", s.energy(), s.MaxK)
	}
	return fmt.Sprintf("svd(e=%.2f)", s.energy())
}

func (s SVD) energy() float64 {
	if s.Energy <= 0 || s.Energy > 1 {
		return 0.95
	}
	return s.Energy
}

func init() { register("svd", reconstructSVD) }

// Reduce implements Model.
func (s SVD) Reduce(f *grid.Field) (*Rep, error) {
	sp := obs.Start("reduce.svd.fit")
	defer sp.End()
	sp.AddItems(int64(f.Len()))
	if err := checkFinite(f); err != nil {
		return nil, err
	}
	m, n := matShape(f)
	mat, err := linalg.MatrixFromData(append([]float64(nil), f.Data...), m, n)
	if err != nil {
		return nil, err
	}
	var res *linalg.SVDResult
	if s.Randomized {
		if s.MaxK < 1 {
			return nil, fmt.Errorf("svd: Randomized requires MaxK >= 1")
		}
		res, err = linalg.RandSVD(mat, s.MaxK, 8, 2, s.Seed)
	} else {
		res, err = linalg.SVD(mat)
	}
	if err != nil {
		return nil, err
	}
	k := linalg.RankForEnergy(res.S, s.energy())
	if s.MaxK > 0 && k > s.MaxK {
		k = s.MaxK
	}
	if obs.Enabled() {
		obsSVDRank.Set(int64(k))
	}
	uk, sk, vk := res.Truncate(k)

	var meta []byte
	meta = binary.AppendUvarint(meta, uint64(m))
	meta = binary.AppendUvarint(meta, uint64(n))
	meta = binary.AppendUvarint(meta, uint64(k))

	vals := make([]float64, 0, k+m*k+n*k)
	vals = append(vals, sk...)
	vals = append(vals, uk.Data...)
	vals = append(vals, vk.Data...)
	return &Rep{Model: s.Name(), Dims: append([]int(nil), f.Dims...), Meta: meta, Values: vals}, nil
}

func reconstructSVD(rep *Rep) (*grid.Field, error) {
	pos := 0
	next := func() (int, error) {
		v, n := binary.Uvarint(rep.Meta[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("svd: corrupt meta")
		}
		pos += n
		return int(v), nil
	}
	m, err := next()
	if err != nil {
		return nil, err
	}
	n, err := next()
	if err != nil {
		return nil, err
	}
	k, err := next()
	if err != nil {
		return nil, err
	}
	total := 1
	for _, d := range rep.Dims {
		total *= d
	}
	if m <= 0 || n <= 0 || k <= 0 || m*n != total || k > n || k > m {
		return nil, fmt.Errorf("svd: implausible shape m=%d n=%d k=%d for dims %v", m, n, k, rep.Dims)
	}
	if len(rep.Values) != k+m*k+n*k {
		return nil, fmt.Errorf("svd: payload %d != %d", len(rep.Values), k+m*k+n*k)
	}
	sk := rep.Values[:k]
	uk := rep.Values[k : k+m*k]
	vk := rep.Values[k+m*k:]

	// Rows of U·S·V^T reconstruct independently with the serial per-row
	// accumulation order, so sharding is bitwise-exact.
	out := make([]float64, m*n)
	parallel.ForShard(parallel.DefaultWorkers(), m, func(_, lo, hi int) {
		for r := lo; r < hi; r++ {
			for j := 0; j < k; j++ {
				f := uk[r*k+j] * sk[j]
				if f == 0 {
					continue
				}
				row := out[r*n : (r+1)*n]
				for i := 0; i < n; i++ {
					row[i] += f * vk[i*k+j]
				}
			}
		}
	})
	return grid.FromData(out, rep.Dims...)
}

// SVDSpectrum returns the proportion series of the leading singular values
// of f (Fig. 8). At most maxValues entries are returned.
func SVDSpectrum(f *grid.Field, maxValues int) ([]float64, error) {
	m, n := matShape(f)
	mat, err := linalg.MatrixFromData(append([]float64(nil), f.Data...), m, n)
	if err != nil {
		return nil, err
	}
	res, err := linalg.SVD(mat)
	if err != nil {
		return nil, err
	}
	total := 0.0
	for _, v := range res.S {
		total += v
	}
	if total == 0 {
		return []float64{1}, nil
	}
	k := min(maxValues, len(res.S))
	out := make([]float64, k)
	for i := 0; i < k; i++ {
		out[i] = res.S[i] / total
	}
	return out, nil
}

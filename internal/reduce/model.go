// Package reduce implements the paper's reduced models — the latent
// representations used to precondition lossy compression.
//
// Two families are provided, mirroring Sections IV and V:
//
//   - projection-based models whose representation is a subset of the full
//     data: OneBase (the mid-plane, Algorithm 1), MultiBase (per-sub-domain
//     mid-planes), and DuoModel (a coarse resampled model, the prior work);
//   - dimension-reduction models whose representation is a transform of the
//     data: PCA, SVD, and Wavelet (thresholded Haar).
//
// Every model turns a field into a Rep — a small structural header plus a
// numeric payload — and can rebuild an approximation from the Rep alone.
// The preconditioning pipeline in internal/core stores the Rep together
// with the compressed delta (original minus reconstruction); because the
// reconstruction captures the data's latent structure, the delta is far
// smoother than the original and compresses much better.
package reduce

import (
	"fmt"
	"math"

	"lrm/internal/grid"
	"lrm/internal/invariant"
)

// Rep is a serialisable reduced representation.
type Rep struct {
	// Model is the producing model's name (used to dispatch Reconstruct).
	Model string
	// Dims are the dims of the original full field.
	Dims []int
	// Meta is the model's structural header: counts, indices, shapes.
	// It must be preserved exactly.
	Meta []byte
	// Values is the model's numeric payload. The pipeline may compress it
	// lossily (the paper does), so reconstruction must tolerate small
	// perturbations here.
	Values []float64
}

// SizeBytes returns the representation's storage footprint, the quantity
// plotted in Fig. 9.
func (r *Rep) SizeBytes() int { return len(r.Meta) + 8*len(r.Values) }

// Model reduces fields to representations.
type Model interface {
	// Name identifies the model and its configuration.
	Name() string
	// Reduce builds the reduced representation of f.
	Reduce(f *grid.Field) (*Rep, error)
}

// reconstructor rebuilds an approximation of the original field from a Rep.
type reconstructor func(rep *Rep) (*grid.Field, error)

// reconstructors dispatches by the model base name (the part of Rep.Model
// before any '(').
var reconstructors = map[string]reconstructor{}

func register(baseName string, fn reconstructor) {
	if _, dup := reconstructors[baseName]; dup {
		panic(fmt.Sprintf("reduce: duplicate reconstructor %q", baseName))
	}
	reconstructors[baseName] = fn
}

// baseName strips a parameterisation suffix: "duomodel(f=4)" -> "duomodel".
func baseName(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '(' {
			return name[:i]
		}
	}
	return name
}

// Reconstruct rebuilds the approximation a Rep describes. It is the inverse
// transformation box of Fig. 5 and is used both when computing the delta at
// compression time and when rebuilding the original at decompression time.
func Reconstruct(rep *Rep) (*grid.Field, error) {
	fn, ok := reconstructors[baseName(rep.Model)]
	if !ok {
		return nil, fmt.Errorf("reduce: no reconstructor for model %q", rep.Model)
	}
	if len(rep.Dims) == 0 {
		return nil, fmt.Errorf("reduce: rep has no dims")
	}
	f, err := fn(rep)
	if invariant.Enabled && err == nil {
		// Shape invariant at the inverse-transform boundary: every model's
		// reconstruction must land exactly on the original grid, or the
		// delta in the next stage silently misaligns.
		invariant.SameLen(f.Dims, rep.Dims, "reduce: reconstruct rank")
		for i := range f.Dims {
			invariant.Assert(f.Dims[i] == rep.Dims[i],
				"reduce: %s reconstruction dim %d is %d, rep says %d", rep.Model, i, f.Dims[i], rep.Dims[i])
		}
		invariant.Assert(f.Len() == len(f.Data),
			"reduce: %s reconstruction length %d != dims product %d", rep.Model, len(f.Data), f.Len())
	}
	return f, err
}

// matShape chooses the canonical 2-D matricization of a field for the
// dimension-reduction models: rank >= 2 flattens leading dims into rows
// (cols = last extent); rank 1 folds into the most square factorisation so
// column structure exists to exploit.
func matShape(f *grid.Field) (m, n int) {
	if f.Rank() >= 2 {
		return f.Matricize()
	}
	total := f.Len()
	// Find the divisor of total closest to sqrt(total) from below.
	best := 1
	for d := 1; d*d <= total; d++ {
		if total%d == 0 {
			best = d
		}
	}
	n = best
	m = total / best
	if n > m {
		m, n = n, m
	}
	return m, n
}

// checkFinite rejects NaN/Inf inputs, which no model here supports.
func checkFinite(f *grid.Field) error {
	for i, v := range f.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("reduce: non-finite value at index %d", i)
		}
	}
	return nil
}

// Delta returns f minus the reconstruction of rep — the quantity that gets
// lossily compressed.
func Delta(f *grid.Field, rep *Rep) (*grid.Field, error) {
	recon, err := Reconstruct(rep)
	if err != nil {
		return nil, err
	}
	invariant.SameLen(f.Data, recon.Data, "reduce: delta alignment")
	return f.Sub(recon)
}

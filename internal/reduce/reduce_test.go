package reduce

import (
	"math"
	"math/rand"
	"testing"

	"lrm/internal/grid"
	"lrm/internal/stats"
)

// zSymmetric3D builds a field whose planes are scaled copies of a common
// pattern — the structure one-base exploits.
func zSymmetric3D(n int) *grid.Field {
	f := grid.New(n, n, n)
	for k := 0; k < n; k++ {
		z := float64(k)/float64(n-1) - 0.5
		amp := math.Exp(-z * z * 8)
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				f.Set3(amp*(10+math.Sin(float64(j)/3)*math.Cos(float64(i)/4)), k, j, i)
			}
		}
	}
	return f
}

func lowRank2D(m, n, rank int, seed int64) *grid.Field {
	rng := rand.New(rand.NewSource(seed))
	f := grid.New(m, n)
	for r := 0; r < rank; r++ {
		u := make([]float64, m)
		v := make([]float64, n)
		for i := range u {
			u[i] = rng.NormFloat64()
		}
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				f.Data[i*n+j] += u[i] * v[j]
			}
		}
	}
	return f
}

func allModels() []Model {
	return []Model{
		OneBase{},
		MultiBase{Blocks: 4},
		DuoModel{Factor: 4},
		PCA{},
		SVD{},
		Wavelet{},
	}
}

func TestRoundTripDeltaIsExactForAllModels(t *testing.T) {
	// The fundamental pipeline invariant: reconstruct(rep) + delta == f
	// exactly (when neither is quantised).
	fields := map[string]*grid.Field{
		"3d": zSymmetric3D(16),
		"2d": lowRank2D(32, 24, 3, 1),
	}
	for fname, f := range fields {
		for _, m := range allModels() {
			rep, err := m.Reduce(f)
			if err != nil {
				t.Fatalf("%s/%s: %v", m.Name(), fname, err)
			}
			delta, err := Delta(f, rep)
			if err != nil {
				t.Fatalf("%s/%s: %v", m.Name(), fname, err)
			}
			recon, err := Reconstruct(rep)
			if err != nil {
				t.Fatalf("%s/%s: %v", m.Name(), fname, err)
			}
			if err := recon.AddInPlace(delta); err != nil {
				t.Fatal(err)
			}
			for i := range f.Data {
				if math.Abs(recon.Data[i]-f.Data[i]) > 1e-9*(1+math.Abs(f.Data[i])) {
					t.Fatalf("%s/%s: recon+delta != f at %d: %v vs %v",
						m.Name(), fname, i, recon.Data[i], f.Data[i])
				}
			}
		}
	}
}

func TestOneBaseDeltaSmootherThanOriginal(t *testing.T) {
	// The paper's central claim for Heat3d-like data: the delta's byte
	// entropy is lower (more compressible) than the original's.
	f := zSymmetric3D(24)
	rep, err := OneBase{}.Reduce(f)
	if err != nil {
		t.Fatal(err)
	}
	delta, err := Delta(f, rep)
	if err != nil {
		t.Fatal(err)
	}
	// Variation within each plane: deltas should be near-proportional
	// copies, so per-plane spread shrinks.
	planeSpread := func(g *grid.Field) float64 {
		n := g.Dims[0]
		s := 0.0
		for k := 0; k < n; k++ {
			p := g.Plane(k)
			lo, hi := p.MinMax()
			s += hi - lo
		}
		return s
	}
	if planeSpread(delta) >= planeSpread(f) {
		t.Fatalf("one-base delta spread %v not below original %v",
			planeSpread(delta), planeSpread(f))
	}
}

func TestOneBaseRepIsMidPlane(t *testing.T) {
	f := zSymmetric3D(9)
	rep, _ := OneBase{}.Reduce(f)
	mid := f.Plane(4)
	for i := range mid.Data {
		if rep.Values[i] != mid.Data[i] {
			t.Fatal("one-base rep is not the mid-plane")
		}
	}
	if rep.SizeBytes() != 8*9*9 {
		t.Fatalf("rep size = %d", rep.SizeBytes())
	}
}

func TestMultiBaseUsesMoreStorageButLocalBases(t *testing.T) {
	f := zSymmetric3D(16)
	one, _ := OneBase{}.Reduce(f)
	multi, _ := MultiBase{Blocks: 4}.Reduce(f)
	if multi.SizeBytes() <= one.SizeBytes() {
		t.Fatalf("multi-base (%d B) should store more than one-base (%d B)",
			multi.SizeBytes(), one.SizeBytes())
	}
	// Multi-base deltas are locally smaller: sum |delta|.
	d1, _ := Delta(f, one)
	dm, _ := Delta(f, multi)
	sumAbs := func(g *grid.Field) float64 {
		s := 0.0
		for _, v := range g.Data {
			s += math.Abs(v)
		}
		return s
	}
	if sumAbs(dm) >= sumAbs(d1) {
		t.Fatalf("multi-base |delta| %v not below one-base %v", sumAbs(dm), sumAbs(d1))
	}
}

func TestMultiBaseBlockClamping(t *testing.T) {
	f := zSymmetric3D(4)
	rep, err := MultiBase{Blocks: 99}.Reduce(f) // more blocks than slabs
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Reconstruct(rep); err != nil {
		t.Fatal(err)
	}
}

func TestDuoModelCoarseFactorFallback(t *testing.T) {
	// 18 is not divisible by 4; the factor must fall back to 3 (or 2).
	f := grid.New(18, 18)
	for i := range f.Data {
		f.Data[i] = float64(i % 17)
	}
	rep, err := DuoModel{Factor: 4}.Reduce(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Values) >= f.Len() {
		t.Fatal("duomodel rep not smaller than data")
	}
	if _, err := Reconstruct(rep); err != nil {
		t.Fatal(err)
	}
}

func TestDuoModelRejectsTinyFields(t *testing.T) {
	f := grid.New(3)
	if _, err := (DuoModel{Factor: 4}).Reduce(f); err == nil {
		t.Fatal("expected error for uncoarsenable field")
	}
}

func TestPCALowRankRecovery(t *testing.T) {
	// Rank-3 data: PCA at 95% energy must capture it almost exactly with
	// k <= 4 components.
	f := lowRank2D(64, 20, 3, 2)
	rep, err := PCA{}.Reduce(f)
	if err != nil {
		t.Fatal(err)
	}
	recon, err := Reconstruct(rep)
	if err != nil {
		t.Fatal(err)
	}
	rmse := stats.RMSE(f.Data, recon.Data)
	_, hi := f.MinMax()
	if rmse > 0.1*math.Abs(hi) {
		t.Fatalf("PCA rank-3 reconstruction RMSE %v too high", rmse)
	}
	// Representation must be much smaller than the data.
	if rep.SizeBytes() >= 8*f.Len() {
		t.Fatalf("PCA rep (%d B) not smaller than data (%d B)", rep.SizeBytes(), 8*f.Len())
	}
}

func TestPCAEnergyKnobChangesK(t *testing.T) {
	f := lowRank2D(48, 24, 10, 3)
	low, _ := PCA{Energy: 0.5}.Reduce(f)
	high, _ := PCA{Energy: 0.999}.Reduce(f)
	if low.SizeBytes() >= high.SizeBytes() {
		t.Fatalf("lower energy should give smaller rep: %d vs %d",
			low.SizeBytes(), high.SizeBytes())
	}
}

func TestPCABlockedMatchesShape(t *testing.T) {
	f := lowRank2D(40, 30, 4, 4)
	rep, err := PCA{BlockCols: 8}.Reduce(f)
	if err != nil {
		t.Fatal(err)
	}
	recon, err := Reconstruct(rep)
	if err != nil {
		t.Fatal(err)
	}
	// Blocked PCA still reconstructs decently on low-rank data.
	if stats.NRMSE(f.Data, recon.Data) > 0.2 {
		t.Fatalf("blocked PCA NRMSE %v", stats.NRMSE(f.Data, recon.Data))
	}
	if baseName(rep.Model) != "pca" {
		t.Fatalf("blocked model base name = %q", baseName(rep.Model))
	}
}

func TestSVDLowRankRecovery(t *testing.T) {
	f := lowRank2D(64, 20, 2, 5)
	rep, err := SVD{}.Reduce(f)
	if err != nil {
		t.Fatal(err)
	}
	recon, err := Reconstruct(rep)
	if err != nil {
		t.Fatal(err)
	}
	if stats.NRMSE(f.Data, recon.Data) > 0.1 {
		t.Fatalf("SVD NRMSE %v", stats.NRMSE(f.Data, recon.Data))
	}
}

func TestSVDRank1Data(t *testing.T) {
	f := lowRank2D(32, 16, 1, 6)
	rep, err := SVD{}.Reduce(f)
	if err != nil {
		t.Fatal(err)
	}
	recon, _ := Reconstruct(rep)
	if stats.NRMSE(f.Data, recon.Data) > 1e-6 {
		t.Fatalf("rank-1 SVD should be near exact, NRMSE %v", stats.NRMSE(f.Data, recon.Data))
	}
	// k must be 1: sizes ~ 1 + m + n floats.
	if len(rep.Values) > 1+32+16+8 {
		t.Fatalf("rank-1 rep has %d values", len(rep.Values))
	}
}

func TestWaveletSmoothDataSparseRep(t *testing.T) {
	n := 64
	f := grid.New(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			f.Set2(math.Sin(float64(j)/11)+math.Cos(float64(i)/13), j, i)
		}
	}
	rep, err := Wavelet{}.Reduce(f)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SizeBytes() > 8*f.Len()/4 {
		t.Fatalf("wavelet rep %d B not sparse for smooth data (%d B raw)",
			rep.SizeBytes(), 8*f.Len())
	}
	recon, err := Reconstruct(rep)
	if err != nil {
		t.Fatal(err)
	}
	if stats.NRMSE(f.Data, recon.Data) > 0.1 {
		t.Fatalf("wavelet NRMSE %v", stats.NRMSE(f.Data, recon.Data))
	}
}

func TestWaveletThetaTradeoff(t *testing.T) {
	f := lowRank2D(32, 32, 5, 7)
	tight, _ := Wavelet{Theta: 0.01}.Reduce(f)
	loose, _ := Wavelet{Theta: 0.2}.Reduce(f)
	if loose.SizeBytes() >= tight.SizeBytes() {
		t.Fatalf("larger theta should shrink rep: %d vs %d",
			loose.SizeBytes(), tight.SizeBytes())
	}
	rt, _ := Reconstruct(tight)
	rl, _ := Reconstruct(loose)
	if stats.RMSE(f.Data, rt.Data) > stats.RMSE(f.Data, rl.Data) {
		t.Fatal("smaller theta should reconstruct better")
	}
}

func TestRank1FieldsSupported(t *testing.T) {
	// 1-D data exercises the near-square matricization.
	f := grid.New(120)
	for i := range f.Data {
		f.Data[i] = math.Sin(float64(i) / 7)
	}
	for _, m := range []Model{PCA{}, SVD{}, Wavelet{}, OneBase{}, DuoModel{Factor: 2}} {
		rep, err := m.Reduce(f)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		recon, err := Reconstruct(rep)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if recon.Len() != f.Len() {
			t.Fatalf("%s: wrong recon length", m.Name())
		}
	}
}

func TestMatShape(t *testing.T) {
	f3 := grid.New(4, 5, 6)
	m, n := matShape(f3)
	if m != 20 || n != 6 {
		t.Fatalf("3-D matShape = %dx%d", m, n)
	}
	f1 := grid.New(36)
	m, n = matShape(f1)
	if m*n != 36 || n > m || n != 6 {
		t.Fatalf("1-D matShape = %dx%d", m, n)
	}
	prime := grid.New(37)
	m, n = matShape(prime)
	if m != 37 || n != 1 {
		t.Fatalf("prime matShape = %dx%d", m, n)
	}
}

func TestRejectNaN(t *testing.T) {
	f := grid.New(8, 8)
	f.Data[5] = math.NaN()
	for _, m := range allModels() {
		if _, err := m.Reduce(f); err == nil {
			t.Fatalf("%s accepted NaN", m.Name())
		}
	}
}

func TestReconstructUnknownModel(t *testing.T) {
	if _, err := Reconstruct(&Rep{Model: "martian", Dims: []int{4}}); err == nil {
		t.Fatal("expected unknown-model error")
	}
	if _, err := Reconstruct(&Rep{Model: "pca(e=0.95)"}); err == nil {
		t.Fatal("expected no-dims error")
	}
}

func TestReconstructCorruptMeta(t *testing.T) {
	f := lowRank2D(16, 12, 2, 8)
	for _, m := range []Model{PCA{}, SVD{}, Wavelet{}, MultiBase{Blocks: 2}, DuoModel{Factor: 2}} {
		rep, err := m.Reduce(f)
		if err != nil {
			t.Fatal(err)
		}
		// Truncate meta: must error, not panic.
		bad := *rep
		if len(rep.Meta) > 0 {
			bad.Meta = rep.Meta[:len(rep.Meta)/2]
			if _, err := Reconstruct(&bad); err == nil {
				t.Fatalf("%s: accepted truncated meta", m.Name())
			}
		}
		// Truncate values: must error, not panic.
		bad2 := *rep
		bad2.Values = rep.Values[:len(rep.Values)/2]
		if _, err := Reconstruct(&bad2); err == nil {
			t.Fatalf("%s: accepted truncated values", m.Name())
		}
	}
}

func TestModelNames(t *testing.T) {
	cases := map[string]string{
		OneBase{}.Name():            "one-base",
		MultiBase{Blocks: 8}.Name(): "multi-base",
		DuoModel{}.Name():           "duomodel",
		PCA{}.Name():                "pca",
		SVD{}.Name():                "svd",
		Wavelet{}.Name():            "wavelet",
		PCA{BlockCols: 16}.Name():   "pca",
	}
	for full, base := range cases {
		if baseName(full) != base {
			t.Fatalf("baseName(%q) = %q, want %q", full, baseName(full), base)
		}
	}
}

func TestSpectra(t *testing.T) {
	f := lowRank2D(48, 24, 2, 9)
	pc, err := PCASpectrum(f, 10)
	if err != nil {
		t.Fatal(err)
	}
	sv, err := SVDSpectrum(f, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range [][]float64{pc, sv} {
		sum := 0.0
		for i, v := range spec {
			if v < -1e-12 || v > 1+1e-12 {
				t.Fatalf("spectrum value %v out of range", v)
			}
			if i > 0 && spec[i] > spec[i-1]+1e-12 {
				t.Fatal("spectrum not descending")
			}
			sum += v
		}
		if sum > 1+1e-9 {
			t.Fatalf("spectrum sums to %v > 1", sum)
		}
	}
	// Rank-2 data: the first two PCs carry nearly everything.
	if pc[0]+pc[1] < 0.95 {
		t.Fatalf("rank-2 data: PC1+PC2 = %v", pc[0]+pc[1])
	}
}

func TestSVDRandomizedVariant(t *testing.T) {
	f := lowRank2D(48, 20, 3, 12)
	exact, err := SVD{MaxK: 3}.Reduce(f)
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := SVD{MaxK: 3, Randomized: true, Seed: 4}.Reduce(f)
	if err != nil {
		t.Fatal(err)
	}
	// Same representation layout, reconstructable by the shared path.
	if baseName(rnd.Model) != "svd" {
		t.Fatalf("base name = %q", baseName(rnd.Model))
	}
	re, err := Reconstruct(exact)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Reconstruct(rnd)
	if err != nil {
		t.Fatal(err)
	}
	// On exactly rank-3 data both reconstruct near-perfectly.
	if stats.NRMSE(f.Data, re.Data) > 1e-8 || stats.NRMSE(f.Data, rr.Data) > 1e-6 {
		t.Fatalf("NRMSE exact=%v rand=%v", stats.NRMSE(f.Data, re.Data), stats.NRMSE(f.Data, rr.Data))
	}
	// Determinism by seed.
	rnd2, err := SVD{MaxK: 3, Randomized: true, Seed: 4}.Reduce(f)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rnd.Values {
		if rnd.Values[i] != rnd2.Values[i] {
			t.Fatal("randomized SVD rep not deterministic for fixed seed")
		}
	}
	// MaxK is mandatory for the randomized path.
	if _, err := (SVD{Randomized: true}).Reduce(f); err == nil {
		t.Fatal("expected MaxK-required error")
	}
}

func TestWaveletNonstandardVariant(t *testing.T) {
	n := 48
	f := grid.New(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			dx, dy := float64(i-n/2), float64(j-n/2)
			f.Set2(math.Exp(-(dx*dx+dy*dy)/64), j, i) // isotropic bump
		}
	}
	std, err := Wavelet{}.Reduce(f)
	if err != nil {
		t.Fatal(err)
	}
	ns, err := Wavelet{Nonstandard: true}.Reduce(f)
	if err != nil {
		t.Fatal(err)
	}
	if baseName(ns.Model) != "wavelet" {
		t.Fatalf("base name = %q", baseName(ns.Model))
	}
	// Both variants must reconstruct through the shared dispatcher.
	for _, rep := range []*Rep{std, ns} {
		recon, err := Reconstruct(rep)
		if err != nil {
			t.Fatal(err)
		}
		if stats.NRMSE(f.Data, recon.Data) > 0.2 {
			t.Fatalf("%s: NRMSE %v", rep.Model, stats.NRMSE(f.Data, recon.Data))
		}
	}
	// Corrupting the transform-kind field must be rejected, not crash.
	bad := *ns
	bad.Meta = append([]byte{9}, ns.Meta[1:]...)
	if _, err := Reconstruct(&bad); err == nil {
		t.Fatal("expected unknown-kind rejection")
	}
}

package serve_test

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"lrm/internal/obs"
	"lrm/internal/obs/quality"
	"lrm/internal/obs/slo"
	"lrm/internal/obs/tsdb"
	"lrm/internal/serve"
)

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp, b
}

// TestTelemetryHistoryAndSLO is the PR's acceptance test: after one
// compress/decompress round-trip against lrmserve, /debug/history must
// return non-empty series for serve.requests and the quality.ratio
// histogram, the SLO burn rates must be visible in /healthz?verbose=1, and
// /debug/dash and /debug/quality must render.
func TestTelemetryHistoryAndSLO(t *testing.T) {
	prevEnabled := obs.SetEnabled(true)
	prevSample := quality.SetSampleEvery(1)
	obs.Reset()
	quality.ResetLog()
	t.Cleanup(func() {
		obs.SetEnabled(prevEnabled)
		quality.SetSampleEvery(prevSample)
		obs.Reset()
		quality.ResetLog()
	})

	// Mount the history store before serve.New: the server's mux snapshots
	// the obs debug handlers at construction time.
	hist := tsdb.New(tsdb.Config{Interval: 10 * time.Millisecond})
	hist.Mount()
	hist.Start()
	defer hist.Stop()

	_, ts := newServer(t, serve.Config{
		SLO: slo.Objectives{Availability: 0.999, LatencyP99: 5 * time.Second},
	})

	// One round-trip: compress a field, decompress the archive.
	_, raw := testField(12)
	resp, archive := post(t, ts.URL, "/v1/compress?dims=12,12,12&codec=sz&mode=abs&bound=1e-4&chunks=2", raw, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress: status %d: %s", resp.StatusCode, archive)
	}
	resp, back := post(t, ts.URL, "/v1/decompress", archive, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decompress: status %d: %s", resp.StatusCode, back)
	}
	if len(back) != len(raw) {
		t.Fatalf("round-trip size mismatch: %d -> %d", len(raw), len(back))
	}

	// A deterministic sampling pass after the traffic, so the history holds
	// the post-round-trip counter values regardless of ticker timing.
	hist.SampleOnce(time.Now())

	// /debug/history: non-empty series for the aggregate request counter
	// and the quality.ratio histogram's derived count series.
	resp, body := get(t, ts.URL+"/debug/history?name=serve.requests&name=quality.ratio.count")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/history: status %d: %s", resp.StatusCode, body)
	}
	var doc struct {
		Series []struct {
			Name   string       `json:"name"`
			Points [][2]float64 `json:"points"`
		} `json:"series"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("/debug/history: invalid JSON: %v", err)
	}
	last := map[string]float64{}
	for _, sn := range doc.Series {
		if len(sn.Points) == 0 {
			t.Errorf("/debug/history: series %s is empty", sn.Name)
			continue
		}
		last[sn.Name] = sn.Points[len(sn.Points)-1][1]
	}
	if last["serve.requests"] < 2 {
		t.Errorf("serve.requests history = %v, want >= 2 after a round-trip", last["serve.requests"])
	}
	if last["quality.ratio.count"] < 1 {
		t.Errorf("quality.ratio.count history = %v, want >= 1 after a compress", last["quality.ratio.count"])
	}

	// /healthz?verbose=1: the SLO report with burn rates.
	resp, body = get(t, ts.URL+"/healthz?verbose=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz?verbose=1: status %d: %s", resp.StatusCode, body)
	}
	var health struct {
		Status string     `json:"status"`
		SLO    slo.Report `json:"slo"`
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatalf("/healthz?verbose=1: invalid JSON: %v", err)
	}
	if health.Status != "ok" {
		t.Errorf("health status = %q, want ok", health.Status)
	}
	if !strings.Contains(string(body), "availability_burn") {
		t.Error("/healthz?verbose=1 does not expose burn rates")
	}
	if len(health.SLO.Windows) != 2 {
		t.Fatalf("SLO report windows = %+v, want 5m and 1h", health.SLO.Windows)
	}
	for _, w := range health.SLO.Windows {
		if w.Requests < 2 {
			t.Errorf("%s window saw %d requests, want the round-trip", w.Window, w.Requests)
		}
		if w.AvailabilityBurn != 0 {
			t.Errorf("%s availability burn = %v, want 0 (no 5xx)", w.Window, w.AvailabilityBurn)
		}
	}

	// /debug/dash renders the self-contained dashboard.
	resp, body = get(t, ts.URL+"/debug/dash")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "<svg") {
		t.Errorf("/debug/dash: status %d, svg present %v", resp.StatusCode, strings.Contains(string(body), "<svg"))
	}

	// /debug/quality has the decision log for the round-trip.
	resp, body = get(t, ts.URL+"/debug/quality")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/quality: status %d", resp.StatusCode)
	}
	var qdoc struct {
		Events  int64             `json:"events"`
		Records []json.RawMessage `json:"records"`
	}
	if err := json.Unmarshal(body, &qdoc); err != nil {
		t.Fatalf("/debug/quality: invalid JSON: %v", err)
	}
	if qdoc.Events < 1 || len(qdoc.Records) < 1 {
		t.Errorf("/debug/quality: events=%d records=%d, want >= 1", qdoc.Events, len(qdoc.Records))
	}
}

// TestSLORecordsRejections proves the SLO tracker sees what clients saw:
// guard rejections (405 here) count as requests in the report.
func TestSLORecordsRejections(t *testing.T) {
	prev := obs.SetEnabled(true)
	obs.Reset()
	t.Cleanup(func() { obs.SetEnabled(prev); obs.Reset() })

	_, ts := newServer(t, serve.Config{})
	resp, _ := get(t, ts.URL+"/v1/compress") // GET on a POST endpoint
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/compress: status %d, want 405", resp.StatusCode)
	}

	resp, body := get(t, ts.URL+"/healthz?verbose=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz?verbose=1: status %d", resp.StatusCode)
	}
	var health struct {
		SLO slo.Report `json:"slo"`
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	for _, w := range health.SLO.Windows {
		if w.Requests < 1 {
			t.Errorf("%s window ignored the rejected request: %+v", w.Window, w)
		}
	}
}

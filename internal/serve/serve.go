// Package serve implements lrmserve's HTTP surface: compress/decompress as
// a long-running API over the chunked container pipeline, with the
// production lifecycle the library alone does not provide —
//
//   - admission control: a fixed-capacity semaphore in front of the
//     pipeline endpoints; when every slot is busy the server answers
//     429 + Retry-After instead of queueing unboundedly on top of the
//     already-bounded internal/parallel pool;
//   - per-tenant quotas: a token bucket per API key (quota.go), refilled
//     at a configured rate, so one chatty client cannot starve the rest;
//   - response caching: decompressed fields are cached in a bounded LRU
//     keyed by the container's index-seeded chunk CRCs (core.ChunkCRCs) —
//     a content address that costs a framing scan, not a decode;
//   - graceful drain: Shutdown flips the server into draining (healthz
//     and the API answer 503), stops accepting, lets in-flight requests
//     finish, then closes;
//   - cancellation: every request's context threads into
//     CompressChunkedCtx / DecompressChunkedPartialWithOptsCtx, so a
//     client disconnect or deadline stops chunk processing at the next
//     chunk boundary instead of burning CPU on an abandoned request.
//
// The obs debug mux (/metrics, /debug/vars, /debug/pprof, /debug/traces)
// is mounted on the same server, and every endpoint carries request
// counters, in-flight gauges, and latency histograms in the obs registry,
// so the service is observable from its first request. Only the standard
// library is used.
package serve

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"lrm/internal/obs"
	"lrm/internal/obs/slo"
)

// Config tunes the server. The zero value serves with production defaults.
type Config struct {
	// Workers is the internal/parallel budget each request's pipeline runs
	// with. 0 means GOMAXPROCS — note that budget is per admitted request;
	// MaxInFlight bounds how many such pipelines run at once.
	Workers int
	// MaxBodyBytes caps request bodies (compress input and archives alike).
	// Oversized bodies are refused with 413. 0 means 256 MiB.
	MaxBodyBytes int64
	// MaxInFlight is the admission-control capacity: the number of
	// compress/decompress requests allowed past the semaphore at once.
	// Requests beyond it get 429 + Retry-After. 0 means 4 x GOMAXPROCS.
	MaxInFlight int
	// RequestTimeout bounds each admitted request's pipeline work; the
	// deadline propagates into the chunk loops, which abort at the next
	// chunk boundary. 0 means 60s; negative disables the deadline.
	RequestTimeout time.Duration
	// QuotaRPS is the per-tenant sustained request rate (tenant = API key,
	// see tenantKey). 0 disables quotas.
	QuotaRPS float64
	// QuotaBurst is the token-bucket capacity. 0 derives max(1, 2*QuotaRPS).
	QuotaBurst int
	// CacheBytes bounds the decompressed-response cache. 0 means 64 MiB;
	// negative disables caching.
	CacheBytes int64
	// DefaultChunks is the container chunk count used when a compress
	// request does not pass ?chunks=. 0 means 8 (clamped to the leading
	// extent).
	DefaultChunks int
	// SLO sets the service-level objectives the built-in tracker evaluates
	// (availability + p99 latency, multi-window burn rates). Zero-value
	// fields take slo.DefaultObjectives.
	SLO slo.Objectives
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 256 << 20
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4 * runtime.GOMAXPROCS(0)
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.QuotaBurst <= 0 {
		c.QuotaBurst = max(1, int(2*c.QuotaRPS))
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	}
	if c.DefaultChunks <= 0 {
		c.DefaultChunks = 8
	}
	return c
}

// Endpoint metric bundles, hoisted per the obs contract. Names follow the
// serve.<endpoint>.<field> scheme so /metrics groups them.
type epMetrics struct {
	requests *obs.Counter   // every request that reached the endpoint
	inflight *obs.Gauge     // admitted requests currently executing
	latency  *obs.Histogram // admitted-request wall time, ns
	s4xx     *obs.Counter   // responses with a 4xx status
	s5xx     *obs.Counter   // responses with a 5xx status
	canceled *obs.Counter   // requests abandoned by the client mid-flight
	bytesIn  *obs.Counter   // request body bytes accepted
	bytesOut *obs.Counter   // response body bytes written
}

func newEpMetrics(name string) *epMetrics {
	p := "serve." + name
	return &epMetrics{
		requests: obs.GetCounter(p + ".requests"),
		inflight: obs.GetGauge(p + ".inflight"),
		latency:  obs.GetHistogram(p+".ns", nil),
		s4xx:     obs.GetCounter(p + ".status_4xx"),
		s5xx:     obs.GetCounter(p + ".status_5xx"),
		canceled: obs.GetCounter(p + ".canceled"),
		bytesIn:  obs.GetCounter(p + ".bytes_in"),
		bytesOut: obs.GetCounter(p + ".bytes_out"),
	}
}

// Shared rejection counters: one per refusal reason, so saturation,
// throttling, and drain are distinguishable on /metrics. serve.requests is
// the cross-endpoint aggregate the SLO tracker and telemetry history key
// on.
var (
	obsRequests     = obs.GetCounter("serve.requests")
	obsRejAdmission = obs.GetCounter("serve.rejected.admission")
	obsRejQuota     = obs.GetCounter("serve.rejected.quota")
	obsRejDraining  = obs.GetCounter("serve.rejected.draining")
)

func init() {
	obs.Describe("serve.requests", "API requests across all endpoints, admitted or not.")
	obs.Describe("serve.rejected.admission", "Requests refused by the in-flight semaphore (429).")
	obs.Describe("serve.rejected.quota", "Requests refused by the per-tenant token bucket (429).")
	obs.Describe("serve.rejected.draining", "Requests refused during graceful drain (503).")
}

// Server is the lrmserve HTTP service. Create with New, run with Serve (or
// mount Handler under a test server), stop with Shutdown.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	http     *http.Server
	sem      chan struct{}
	quota    *quotas
	cache    *respCache
	draining atomic.Bool
	slo      *slo.Tracker

	epCompress   *epMetrics
	epDecompress *epMetrics
}

// New builds a Server from cfg (zero-value fields take defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:          cfg,
		mux:          http.NewServeMux(),
		sem:          make(chan struct{}, cfg.MaxInFlight),
		slo:          slo.New(cfg.SLO),
		epCompress:   newEpMetrics("compress"),
		epDecompress: newEpMetrics("decompress"),
	}
	if cfg.QuotaRPS > 0 {
		s.quota = newQuotas(cfg.QuotaRPS, float64(cfg.QuotaBurst))
	}
	if cfg.CacheBytes > 0 {
		s.cache = newRespCache(cfg.CacheBytes)
	}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/v1/codecs", handleCodecs)
	s.mux.Handle("/v1/compress", s.guard(s.epCompress, s.handleCompress))
	s.mux.Handle("/v1/decompress", s.guard(s.epDecompress, s.handleDecompress))
	// Everything else — /metrics, /debug/vars, /debug/pprof, /debug/traces,
	// and the 404 for unknown paths — is the obs debug mux, mounted on the
	// same server so the service is observable on day one.
	s.mux.Handle("/", obs.Handler())
	s.http = &http.Server{
		Handler: s.mux,
		// Bodies stream under MaxBytesReader and the request deadline, so
		// only the header read, response write, and idle keep-alives carry
		// absolute timeouts here; ReadTimeout is a wide backstop against a
		// client trickling a body forever.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       5 * time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}
	return s
}

// Handler exposes the full route table (API + debug) for tests and
// embedders.
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts on ln until Shutdown. It returns http.ErrServerClosed
// after a clean drain, any other error on accept failure.
func (s *Server) Serve(ln net.Listener) error { return s.http.Serve(ln) }

// Shutdown drains the server gracefully, in order: (1) flip into draining
// so every new API request — including ones arriving on kept-alive
// connections the listener close cannot refuse — answers 503; (2)
// http.Server.Shutdown closes the listener and waits for in-flight
// requests to finish; (3) when ctx expires first, remaining connections
// are closed hard and ctx.Err() is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	return s.http.Shutdown(ctx)
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// handleHealthz is the load-balancer probe: 200 while serving, 503 once
// draining so traffic shifts away before the listener closes. With
// ?verbose=1 the body is JSON carrying the SLO report — availability and
// latency burn rates over the 5m and 1h windows — so a human (or a probe
// that alerts on burn) reads service health and error-budget spend from
// one endpoint.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, state := http.StatusOK, "ok"
	if s.draining.Load() {
		status, state = http.StatusServiceUnavailable, "draining"
		w.Header().Set("Retry-After", "1")
	}
	if !boolParam(r, "verbose") {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(status)
		_, _ = w.Write([]byte(state + "\n"))
		return
	}
	doc := struct {
		Status string     `json:"status"`
		SLO    slo.Report `json:"slo"`
	}{Status: state, SLO: s.slo.Report(time.Now())}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(doc)
}

// guard wraps an API endpoint with the full admission path, in rejection
// order: drain check, per-tenant quota, then the in-flight semaphore. Each
// rejection is cheap, counted, and carries Retry-After; only admitted
// requests pay for body reads and pipeline work. The wrapper also records
// the endpoint's request counter, in-flight gauge, latency histogram, and
// status-class counters, plus the cross-endpoint aggregate and the SLO
// tracker — every outcome, rejections included, routes through the
// statusWriter so the SLO windows see exactly what clients saw.
func (s *Server) guard(ep *epMetrics, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ep.requests.Inc()
		obsRequests.Inc()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		t0 := time.Now()
		defer func() { s.slo.Record(sw.status, time.Since(t0)) }()
		if r.Method != http.MethodPost {
			ep.s4xx.Inc()
			sw.Header().Set("Allow", http.MethodPost)
			http.Error(sw, "POST only", http.StatusMethodNotAllowed)
			return
		}
		if s.draining.Load() {
			obsRejDraining.Inc()
			ep.s5xx.Inc()
			sw.Header().Set("Retry-After", "1")
			http.Error(sw, "draining", http.StatusServiceUnavailable)
			return
		}
		if s.quota != nil {
			if ok, retry := s.quota.allow(tenantKey(r), time.Now()); !ok {
				obsRejQuota.Inc()
				ep.s4xx.Inc()
				sw.Header().Set("Retry-After", retryAfterSeconds(retry))
				http.Error(sw, "tenant quota exceeded", http.StatusTooManyRequests)
				return
			}
		}
		select {
		case s.sem <- struct{}{}:
		default:
			obsRejAdmission.Inc()
			ep.s4xx.Inc()
			sw.Header().Set("Retry-After", "1")
			http.Error(sw, "server saturated", http.StatusTooManyRequests)
			return
		}
		defer func() { <-s.sem }()

		ep.inflight.Add(1)
		defer ep.inflight.Add(-1)
		h(sw, r)
		ep.latency.Observe(time.Since(t0).Nanoseconds())
		ep.bytesOut.Add(sw.written)
		switch {
		case sw.status >= 500:
			ep.s5xx.Inc()
		case sw.status >= 400:
			ep.s4xx.Inc()
		}
	})
}

// tenantKey identifies the quota bucket for a request: the X-API-Key
// header, else a Bearer token, else the shared anonymous bucket.
func tenantKey(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return k
	}
	if auth := r.Header.Get("Authorization"); len(auth) > 7 && auth[:7] == "Bearer " {
		return auth[7:]
	}
	return "anonymous"
}

// retryAfterSeconds renders a Retry-After value, rounding up so a client
// that honors it lands after the bucket refills, never just before.
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// statusWriter records the response status and body size for the endpoint
// metrics, passing Flush through so handlers can stream.
type statusWriter struct {
	http.ResponseWriter
	status  int
	written int64
	wrote   bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.status = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	n, err := w.ResponseWriter.Write(b)
	w.written += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

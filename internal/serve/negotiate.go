package serve

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"lrm/internal/compress"
	"lrm/internal/compress/fpc"
	"lrm/internal/compress/sz"
	"lrm/internal/compress/zfp"
)

// httpError is a handler failure that already knows its status code. Every
// negotiation or decode failure maps to one, so handlers never improvise a
// status and malformed input can never surface as a 5xx.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) *httpError {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// param reads a negotiation parameter from the query string, falling back
// to the X-Lrm-<Name> header — query wins so a curl one-liner can override
// client-default headers.
func param(r *http.Request, name string) string {
	if v := r.URL.Query().Get(name); v != "" {
		return v
	}
	return r.Header.Get("X-Lrm-" + http.CanonicalHeaderKey(name))
}

func intParam(r *http.Request, name string, def int) (int, *httpError) {
	v := param(r, name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, badRequest("parameter %s: %q is not an integer", name, v)
	}
	return n, nil
}

func floatParam(r *http.Request, name string, def float64) (float64, *httpError) {
	v := param(r, name)
	if v == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, badRequest("parameter %s: %q is not a number", name, v)
	}
	return f, nil
}

// negotiateCodec builds the codec a compress request asked for. The family
// comes from ?codec= (default zfp); each family exposes its error-bound or
// level knob:
//
//	zfp:   precision=P (default 16)  | accuracy=TOL | rate=BITS
//	sz:    mode=abs|rel|pwrel (default abs), bound=EB (default 1e-5)
//	fpc:   level=L (default 12; lossless)
//	flate: level=L (default 6; lossless baseline)
//
// Constructor validation is surfaced verbatim as a 400 — the codec
// packages already own the legal parameter ranges.
func negotiateCodec(r *http.Request) (compress.Codec, *httpError) {
	family := param(r, "codec")
	if family == "" {
		family = "zfp"
	}
	switch family {
	case "zfp":
		if param(r, "accuracy") != "" {
			tol, herr := floatParam(r, "accuracy", 0)
			if herr != nil {
				return nil, herr
			}
			c, err := zfp.NewAccuracy(tol)
			if err != nil {
				return nil, badRequest("%v", err)
			}
			return c, nil
		}
		if param(r, "rate") != "" {
			rate, herr := intParam(r, "rate", 0)
			if herr != nil {
				return nil, herr
			}
			c, err := zfp.NewRate(rate)
			if err != nil {
				return nil, badRequest("%v", err)
			}
			return c, nil
		}
		p, herr := intParam(r, "precision", 16)
		if herr != nil {
			return nil, herr
		}
		c, err := zfp.New(p)
		if err != nil {
			return nil, badRequest("%v", err)
		}
		return c, nil
	case "sz":
		var mode sz.Mode
		switch m := param(r, "mode"); m {
		case "", "abs":
			mode = sz.Abs
		case "rel":
			mode = sz.ValueRangeRel
		case "pwrel":
			mode = sz.PointwiseRel
		default:
			return nil, badRequest("sz mode %q (want abs, rel, or pwrel)", m)
		}
		bound, herr := floatParam(r, "bound", 1e-5)
		if herr != nil {
			return nil, herr
		}
		c, err := sz.New(mode, bound)
		if err != nil {
			return nil, badRequest("%v", err)
		}
		return c, nil
	case "fpc":
		level, herr := intParam(r, "level", 12)
		if herr != nil {
			return nil, herr
		}
		c, err := fpc.New(level)
		if err != nil {
			return nil, badRequest("%v", err)
		}
		return c, nil
	case "flate":
		level, herr := intParam(r, "level", 6)
		if herr != nil {
			return nil, herr
		}
		if level < 1 || level > 9 {
			return nil, badRequest("flate level %d out of range [1,9]", level)
		}
		return compress.NewFlate(level), nil
	}
	return nil, badRequest("unknown codec family %q (want zfp, sz, fpc, or flate)", family)
}

// negotiateDims parses the field shape from ?dims= or X-Lrm-Dims
// ("64,64,64", outermost first). The body length is validated against the
// product later by grid.FromBytes.
func negotiateDims(r *http.Request) ([]int, *httpError) {
	v := param(r, "dims")
	if v == "" {
		return nil, badRequest("missing dims (query ?dims=… or header X-Lrm-Dims, e.g. 64,64,64)")
	}
	parts := strings.Split(v, ",")
	if len(parts) < 1 || len(parts) > 3 {
		return nil, badRequest("dims %q: rank must be 1..3", v)
	}
	dims := make([]int, len(parts))
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 1 {
			return nil, badRequest("dims %q: extent %q is not a positive integer", v, p)
		}
		dims[i] = n
	}
	return dims, nil
}

// boolParam interprets a flag-style parameter: present and not one of
// ""/"0"/"false" means on.
func boolParam(r *http.Request, name string) bool {
	switch param(r, name) {
	case "", "0", "false":
		return false
	}
	return true
}

package serve_test

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lrm/internal/grid"
	"lrm/internal/obs"
	"lrm/internal/serve"
	"lrm/internal/sim/heat3d"
)

// testField returns a smooth physical field (heat3d steady state) plus its
// wire bytes — realistic input for every codec family.
func testField(n int) (*grid.Field, []byte) {
	f := heat3d.Solve(heat3d.Default(n))
	return f, f.Bytes()
}

func newServer(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	s := serve.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends body to path and returns the response with its body drained.
func post(t *testing.T, url, path string, body []byte, hdrs map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+path, bytes.NewReader(body))
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	for k, v := range hdrs {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: read body: %v", path, err)
	}
	return resp, b
}

func TestRoundTripCodecs(t *testing.T) {
	f, raw := testField(12)
	_, ts := newServer(t, serve.Config{})
	dims := "12,12,12"

	cases := []struct {
		name     string
		query    string
		lossless bool
		tol      float64
	}{
		{"flate", "codec=flate&level=6", true, 0},
		{"fpc", "codec=fpc&level=12", true, 0},
		{"zfp-precision", "codec=zfp&precision=24", false, 1e-3},
		{"zfp-accuracy", "codec=zfp&accuracy=1e-6", false, 1e-3},
		{"sz-abs", "codec=sz&mode=abs&bound=1e-6", false, 1e-3},
		{"default", "", false, 1e-1}, // zfp precision 16: coarse bound
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, archive := post(t, ts.URL, "/v1/compress?dims="+dims+"&"+tc.query, raw, nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("compress: status %d: %s", resp.StatusCode, archive)
			}
			if resp.Header.Get("X-Lrm-Codec") == "" || resp.Header.Get("X-Lrm-Ratio") == "" {
				t.Errorf("compress: missing X-Lrm-Codec/X-Lrm-Ratio headers")
			}

			resp, field := post(t, ts.URL, "/v1/decompress", archive, nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("decompress: status %d: %s", resp.StatusCode, field)
			}
			if got := resp.Header.Get("X-Lrm-Dims"); got != dims {
				t.Errorf("X-Lrm-Dims = %q, want %q", got, dims)
			}
			if len(field) != len(raw) {
				t.Fatalf("payload length %d, want %d", len(field), len(raw))
			}
			if tc.lossless && !bytes.Equal(field, raw) {
				t.Error("lossless round trip is not byte-identical")
			}
			if !tc.lossless {
				g, err := grid.FromBytes(field, f.Dims...)
				if err != nil {
					t.Fatalf("FromBytes: %v", err)
				}
				for i := range g.Data {
					if d := g.Data[i] - f.Data[i]; d > tc.tol || d < -tc.tol {
						t.Fatalf("point %d off by %g (tol %g)", i, d, tc.tol)
					}
				}
			}
		})
	}
}

func TestRequestValidation(t *testing.T) {
	_, raw := testField(8)
	_, ts := newServer(t, serve.Config{})

	cases := []struct {
		name   string
		path   string
		body   []byte
		status int
	}{
		{"missing dims", "/v1/compress", raw, 400},
		{"bad dims rank", "/v1/compress?dims=1,2,3,4", raw, 400},
		{"bad dims value", "/v1/compress?dims=8,nope,8", raw, 400},
		{"body mismatch", "/v1/compress?dims=9,9,9", raw, 400},
		{"unknown codec", "/v1/compress?dims=8,8,8&codec=lz4", raw, 400},
		{"bad precision", "/v1/compress?dims=8,8,8&codec=zfp&precision=0", raw, 400},
		{"bad flate level", "/v1/compress?dims=8,8,8&codec=flate&level=12", raw, 400},
		{"bad sz mode", "/v1/compress?dims=8,8,8&codec=sz&mode=ultra", raw, 400},
		{"bad chunks", "/v1/compress?dims=8,8,8&chunks=-2", raw, 400},
		{"empty archive", "/v1/decompress", nil, 422},
		{"garbage archive", "/v1/decompress", []byte("not an archive at all"), 422},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := post(t, ts.URL, tc.path, tc.body, nil)
			if resp.StatusCode != tc.status {
				t.Errorf("status %d, want %d (%s)", resp.StatusCode, tc.status, body)
			}
		})
	}

	t.Run("method not allowed", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/compress?dims=8,8,8")
		if err != nil {
			t.Fatalf("GET: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET status %d, want 405", resp.StatusCode)
		}
		if resp.Header.Get("Allow") != http.MethodPost {
			t.Errorf("Allow = %q", resp.Header.Get("Allow"))
		}
	})

	t.Run("header negotiation", func(t *testing.T) {
		resp, body := post(t, ts.URL, "/v1/compress", raw,
			map[string]string{"X-Lrm-Dims": "8,8,8", "X-Lrm-Codec": "flate"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		if got := resp.Header.Get("X-Lrm-Codec"); !strings.HasPrefix(got, "flate") {
			t.Errorf("X-Lrm-Codec = %q, want flate*", got)
		}
	})
}

func TestOversizedBody(t *testing.T) {
	_, ts := newServer(t, serve.Config{MaxBodyBytes: 1024})
	resp, body := post(t, ts.URL, "/v1/compress?dims=8,8,8", make([]byte, 4096), nil)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413 (%s)", resp.StatusCode, body)
	}
}

func TestQuotaRejection(t *testing.T) {
	_, raw := testField(8)
	// Burst of 2 with negligible refill: two requests pass, the third hits
	// the empty bucket.
	_, ts := newServer(t, serve.Config{QuotaRPS: 1e-6, QuotaBurst: 2})

	for i := 0; i < 2; i++ {
		resp, body := post(t, ts.URL, "/v1/compress?dims=8,8,8&codec=flate", raw,
			map[string]string{"X-API-Key": "tenant-a"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d (%s)", i, resp.StatusCode, body)
		}
	}
	resp, _ := post(t, ts.URL, "/v1/compress?dims=8,8,8&codec=flate", raw,
		map[string]string{"X-API-Key": "tenant-a"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("throttled request: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	// Quotas are per tenant: a different key has its own full bucket.
	resp, body := post(t, ts.URL, "/v1/compress?dims=8,8,8&codec=flate", raw,
		map[string]string{"X-API-Key": "tenant-b"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("other tenant: status %d (%s)", resp.StatusCode, body)
	}
}

// waitCounter polls an obs counter until it reaches want or the deadline
// passes; metric recording trails response writes by a goroutine schedule.
func waitCounter(t *testing.T, c *obs.Counter, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.Value() < want {
		if time.Now().After(deadline) {
			t.Fatalf("counter %s = %d, want >= %d", c.Name(), c.Value(), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestAdmissionControl(t *testing.T) {
	_, raw := testField(8)
	_, ts := newServer(t, serve.Config{MaxInFlight: 1})
	inflight := obs.GetGauge("serve.compress.inflight")

	// Occupy the only slot: a request whose body never finishes keeps its
	// handler parked in the body read, holding the semaphore.
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/compress?dims=8,8,8&codec=flate", pr)
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, derr := http.DefaultClient.Do(req)
		if derr == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for inflight.Value() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("blocking request never admitted")
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, body := post(t, ts.URL, "/v1/compress?dims=8,8,8&codec=flate", raw, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated: status %d, want 429 (%s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("saturated 429 without Retry-After")
	}

	// Release the slot; the parked request finishes (400: short body) and
	// the next request is admitted again.
	pw.Close()
	<-done
	resp, body = post(t, ts.URL, "/v1/compress?dims=8,8,8&codec=flate", raw, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after release: status %d (%s)", resp.StatusCode, body)
	}
}

func TestClientDisconnectCancels(t *testing.T) {
	_, ts := newServer(t, serve.Config{})
	canceled := obs.GetCounter("serve.compress.canceled")
	before := canceled.Value()

	// Park the handler in the body read, then vanish: the server must
	// observe the disconnect, count it, and answer nobody.
	pr, pw := io.Pipe()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/v1/compress?dims=8,8,8&codec=flate", pr)
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, derr := http.DefaultClient.Do(req)
		if derr == nil {
			resp.Body.Close()
		}
	}()
	if _, err := pw.Write(make([]byte, 64)); err != nil {
		t.Fatalf("priming write: %v", err)
	}
	cancel()
	pw.CloseWithError(context.Canceled)
	<-done

	waitCounter(t, canceled, before+1)
}

func TestDeadlineAbortsPipeline(t *testing.T) {
	_, raw := testField(8)
	// A deadline that has already passed when the pipeline starts: the
	// chunk loop must abort at its first boundary and surface 503, not 5xx
	// chaos or a full compression on a dead budget.
	_, ts := newServer(t, serve.Config{RequestTimeout: time.Nanosecond})
	resp, body := post(t, ts.URL, "/v1/compress?dims=8,8,8&codec=flate", raw, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 (%s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "deadline") {
		t.Errorf("503 body %q does not mention the deadline", body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("deadline 503 without Retry-After")
	}
}

func TestDrain(t *testing.T) {
	_, raw := testField(8)
	s, ts := newServer(t, serve.Config{})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before drain: status %d", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if !s.Draining() {
		t.Fatal("Draining() false after Shutdown")
	}

	// The handler (still mounted under httptest's own listener) must turn
	// traffic away: probes and API requests alike get 503 + Retry-After.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: status %d, want 503", resp.StatusCode)
	}
	resp2, body := post(t, ts.URL, "/v1/compress?dims=8,8,8&codec=flate", raw, nil)
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("compress during drain: status %d, want 503 (%s)", resp2.StatusCode, body)
	}
	if resp2.Header.Get("Retry-After") == "" {
		t.Error("drain 503 without Retry-After")
	}
}

func TestCacheHitAndCorruptMiss(t *testing.T) {
	_, raw := testField(10)
	_, ts := newServer(t, serve.Config{})

	resp, archive := post(t, ts.URL, "/v1/compress?dims=10,10,10&codec=flate&chunks=4", raw, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress: status %d", resp.StatusCode)
	}

	resp, first := post(t, ts.URL, "/v1/decompress", archive, nil)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Lrm-Cache") != "miss" {
		t.Fatalf("first decompress: status %d cache %q", resp.StatusCode, resp.Header.Get("X-Lrm-Cache"))
	}
	resp, second := post(t, ts.URL, "/v1/decompress", archive, nil)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Lrm-Cache") != "hit" {
		t.Fatalf("second decompress: status %d cache %q", resp.StatusCode, resp.Header.Get("X-Lrm-Cache"))
	}
	if !bytes.Equal(first, second) {
		t.Fatal("cache hit returned different bytes")
	}
	if got := resp.Header.Get("X-Lrm-Dims"); got != "10,10,10" {
		t.Errorf("cached X-Lrm-Dims = %q", got)
	}

	// A payload flip must NOT hit the clean archive's cache entry — the key
	// is recomputed over payload bytes, so the corrupt variant misses and
	// then fails decode instead of silently serving the cached clean field.
	mut := append([]byte(nil), archive...)
	mut[len(mut)-3] ^= 0xFF
	resp, body := post(t, ts.URL, "/v1/decompress", mut, nil)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("corrupt decompress: status %d, want 422 (%s)", resp.StatusCode, body)
	}
}

func TestCacheEviction(t *testing.T) {
	_, rawA := testField(10)
	fB := heat3d.Solve(heat3d.Default(11))
	rawB := fB.Bytes()
	// Budget fits one decompressed field (10^3 or 11^3 doubles), never two.
	_, ts := newServer(t, serve.Config{CacheBytes: 12 << 10})
	evictions := obs.GetCounter("serve.cache.evictions")
	before := evictions.Value()

	compress := func(dims string, raw []byte) []byte {
		resp, archive := post(t, ts.URL, "/v1/compress?dims="+dims+"&codec=flate&chunks=2", raw, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("compress %s: status %d", dims, resp.StatusCode)
		}
		return archive
	}
	decompress := func(archive []byte) string {
		resp, _ := post(t, ts.URL, "/v1/decompress", archive, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("decompress: status %d", resp.StatusCode)
		}
		return resp.Header.Get("X-Lrm-Cache")
	}

	archA, archB := compress("10,10,10", rawA), compress("11,11,11", rawB)
	if got := decompress(archA); got != "miss" {
		t.Fatalf("A first: cache %q", got)
	}
	if got := decompress(archB); got != "miss" { // evicts A
		t.Fatalf("B first: cache %q", got)
	}
	if got := decompress(archA); got != "miss" { // A was evicted
		t.Fatalf("A second: cache %q, want miss after eviction", got)
	}
	waitCounter(t, evictions, before+1)
}

func TestPartialDecode(t *testing.T) {
	_, raw := testField(10)
	_, ts := newServer(t, serve.Config{CacheBytes: -1})

	resp, archive := post(t, ts.URL, "/v1/compress?dims=10,10,10&codec=flate&chunks=5", raw, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress: status %d", resp.StatusCode)
	}
	mut := append([]byte(nil), archive...)
	mut[len(mut)-3] ^= 0xFF

	resp, body := post(t, ts.URL, "/v1/decompress", mut, nil)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("strict: status %d, want 422 (%s)", resp.StatusCode, body)
	}

	resp, body = post(t, ts.URL, "/v1/decompress?partial=1", mut, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partial: status %d (%s)", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Lrm-Chunk-Errors"); got != "1" {
		t.Errorf("X-Lrm-Chunk-Errors = %q, want 1", got)
	}
	if got := resp.Header.Get("X-Lrm-Failed-Chunks"); got == "" {
		t.Error("partial response missing X-Lrm-Failed-Chunks")
	}
	if got := resp.Header.Get("X-Lrm-Chunks"); got != "5" {
		t.Errorf("X-Lrm-Chunks = %q, want 5", got)
	}
	if len(body) != len(raw) {
		t.Fatalf("partial payload length %d, want %d", len(body), len(raw))
	}
	// Intact chunks survive: the payload agrees with the original outside
	// the failed slab, and the failed slab is zeroed, so the two differ.
	if bytes.Equal(body, raw) {
		t.Error("partial decode of a corrupted archive is byte-identical to the original")
	}
}

// TestMalformedArchivesNever5xx sweeps mutations of every corpus archive
// through both decompress modes: whatever the damage, the server must
// answer with a complete non-5xx response — malformed input is always the
// client's fault and never crashes a worker.
func TestMalformedArchivesNever5xx(t *testing.T) {
	corpus := filepath.Join("..", "faultinject", "testdata", "corpus")
	entries, err := os.ReadDir(corpus)
	if err != nil {
		t.Fatalf("reading corpus: %v", err)
	}
	_, ts := newServer(t, serve.Config{})

	check := func(t *testing.T, path string, body []byte) {
		t.Helper()
		resp, respBody := post(t, ts.URL, path, body, nil)
		if resp.StatusCode >= 500 {
			t.Errorf("POST %s (%d bytes): status %d: %s", path, len(body), resp.StatusCode, respBody)
		}
	}

	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".bin") {
			continue
		}
		seed, err := os.ReadFile(filepath.Join(corpus, e.Name()))
		if err != nil {
			t.Fatalf("reading %s: %v", e.Name(), err)
		}
		t.Run(e.Name(), func(t *testing.T) {
			var mutants [][]byte
			// Truncations at evenly spaced offsets, including the empty body.
			for i := 0; i <= 8; i++ {
				mutants = append(mutants, seed[:len(seed)*i/9])
			}
			// Byte corruption at evenly spaced offsets.
			for i := 0; i < 16; i++ {
				m := append([]byte(nil), seed...)
				m[len(m)*i/16] ^= 0xFF
				mutants = append(mutants, m)
			}
			// Varint bomb right after the magic: maximal continuation bytes.
			bomb := append([]byte(nil), seed...)
			for i := 4; i < len(bomb) && i < 14; i++ {
				bomb[i] = 0xFF
			}
			mutants = append(mutants, bomb)
			// Magic splice: claim to be the other container format.
			for _, magic := range []string{"LRMC", "LRM1", "ZZZZ"} {
				m := append([]byte(nil), seed...)
				copy(m, magic)
				mutants = append(mutants, m)
			}
			for _, m := range mutants {
				for _, mode := range []string{"", "?partial=1"} {
					check(t, "/v1/decompress"+mode, m)
				}
			}
		})
	}
}

func TestCodecsAndDebugEndpoints(t *testing.T) {
	_, ts := newServer(t, serve.Config{})
	for _, path := range []string{"/v1/codecs", "/healthz", "/metrics", "/debug/vars"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if len(body) == 0 {
			t.Errorf("GET %s: empty body", path)
		}
	}
}

func TestEndpointMetricsRecorded(t *testing.T) {
	_, raw := testField(8)
	requests := obs.GetCounter("serve.compress.requests")
	s4xx := obs.GetCounter("serve.compress.status_4xx")
	reqBefore, s4Before := requests.Value(), s4xx.Value()

	_, ts := newServer(t, serve.Config{})
	if resp, _ := post(t, ts.URL, "/v1/compress?dims=8,8,8&codec=flate", raw, nil); resp.StatusCode != 200 {
		t.Fatalf("compress: status %d", resp.StatusCode)
	}
	if resp, _ := post(t, ts.URL, "/v1/compress", raw, nil); resp.StatusCode != 400 {
		t.Fatalf("bad compress: status %d", resp.StatusCode)
	}
	waitCounter(t, requests, reqBefore+2)
	waitCounter(t, s4xx, s4Before+1)

	if lat := obs.GetHistogram("serve.compress.ns", nil); lat.Snapshot().Count == 0 {
		t.Error("latency histogram never observed")
	}
}

package serve

import (
	"sync"
	"time"
)

// quotas is a per-tenant token-bucket table. Each tenant (API key) owns a
// bucket of capacity burst that refills at rps tokens per second; a request
// spends one token. Buckets are created on first sight and swept once the
// table grows past sweepThreshold, dropping any bucket that has been idle
// long enough to be full again — a full bucket is indistinguishable from a
// fresh one, so eviction never costs a tenant tokens.
type quotas struct {
	mu      sync.Mutex
	rps     float64
	burst   float64
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// sweepThreshold bounds the bucket table. Quota keys come from request
// headers — attacker-controlled — so the table must not grow without limit.
const sweepThreshold = 4096

func newQuotas(rps, burst float64) *quotas {
	return &quotas{rps: rps, burst: burst, buckets: make(map[string]*bucket)}
}

// allow spends one token from key's bucket. When the bucket is empty it
// returns false and how long until one token has refilled, for Retry-After.
func (q *quotas) allow(key string, now time.Time) (bool, time.Duration) {
	q.mu.Lock()
	defer q.mu.Unlock()

	b, ok := q.buckets[key]
	if !ok {
		if len(q.buckets) >= sweepThreshold {
			q.sweepLocked(now)
		}
		b = &bucket{tokens: q.burst, last: now}
		q.buckets[key] = b
	} else {
		b.tokens = min(q.burst, b.tokens+q.rps*now.Sub(b.last).Seconds())
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / q.rps * float64(time.Second))
}

// sweepLocked drops buckets idle long enough to have refilled completely.
// If every tenant is genuinely active the table may stay above the
// threshold — correctness over memory in that (already unusual) regime.
func (q *quotas) sweepLocked(now time.Time) {
	idle := time.Duration(q.burst / q.rps * float64(time.Second))
	for k, b := range q.buckets {
		if now.Sub(b.last) >= idle {
			delete(q.buckets, k)
		}
	}
}

package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"

	"lrm/internal/compress"
	"lrm/internal/core"
	"lrm/internal/grid"
	"lrm/internal/obs/quality"
	"lrm/internal/obs/trace"
	"lrm/internal/parallel"
)

// streamChunkBytes is the flush granularity for response bodies: large
// archives and fields go out in segments so a reader sees bytes as soon as
// the first segment is ready, not after the last.
const streamChunkBytes = 256 << 10

// requestCtx derives the pipeline context for an admitted request: the
// request's own context (canceled on client disconnect) plus the
// configured processing deadline.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.RequestTimeout > 0 {
		return context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	}
	return context.WithCancel(r.Context())
}

// readBody drains the request body under the configured cap. The returned
// httpError distinguishes the cap (413) from a mid-upload disconnect
// (reported as canceled=true; there is nobody left to answer).
func (s *Server) readBody(w http.ResponseWriter, r *http.Request, ep *epMetrics) ([]byte, *httpError) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return nil, &httpError{status: http.StatusRequestEntityTooLarge,
				msg: fmt.Sprintf("body exceeds %d bytes", tooBig.Limit)}
		}
		if r.Context().Err() != nil {
			ep.canceled.Inc()
			return nil, &httpError{status: 499, msg: "client went away"}
		}
		return nil, badRequest("reading body: %v", err)
	}
	ep.bytesIn.Add(int64(len(body)))
	return body, nil
}

// fail writes an httpError. Status 499 (client disconnected, nginx's
// convention) writes nothing: the peer is gone and net/http would just
// discard it.
func fail(w http.ResponseWriter, herr *httpError) {
	if herr.status == 499 {
		return
	}
	if herr.status == http.StatusServiceUnavailable || herr.status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	http.Error(w, herr.msg, herr.status)
}

// pipelineError maps a core pipeline failure onto the response contract:
//
//	canceled ctx        -> 499 when the client vanished, 503 on deadline
//	taxonomy (corrupt,
//	truncated, header)  -> 422: the archive is undecodable, a client fault
//	anything else       -> 400: bad parameters (chunks vs dims, codec
//	                       constraints); the pipeline has no server-fault
//	                       failure mode on validated input
//
// Malformed input therefore can never produce a 5xx.
func pipelineError(r *http.Request, ep *epMetrics, err error) *httpError {
	switch {
	case errors.Is(err, compress.ErrCanceled), errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		if r.Context().Err() != nil {
			ep.canceled.Inc()
			return &httpError{status: 499, msg: "client went away"}
		}
		return &httpError{status: http.StatusServiceUnavailable,
			msg: fmt.Sprintf("processing deadline exceeded: %v", err)}
	case errors.Is(err, compress.ErrCorrupt), errors.Is(err, compress.ErrTruncated):
		return &httpError{status: http.StatusUnprocessableEntity, msg: err.Error()}
	}
	return badRequest("%v", err)
}

// writeStream writes b progressively in streamChunkBytes segments,
// flushing between them, so a large response streams instead of sitting in
// server buffers until complete.
func writeStream(w http.ResponseWriter, b []byte) {
	w.Header().Set("Content-Length", strconv.Itoa(len(b)))
	for len(b) > 0 {
		n := min(len(b), streamChunkBytes)
		if _, err := w.Write(b[:n]); err != nil {
			return
		}
		b = b[n:]
		if f, ok := w.(http.Flusher); ok && len(b) > 0 {
			f.Flush()
		}
	}
}

// handleCompress is POST /v1/compress: raw little-endian float64 field in,
// LRMC archive out. Shape comes from dims; codec and error bound from the
// negotiation parameters; ?chunks= selects the container split (default
// Config.DefaultChunks, clamped to the leading extent).
func (s *Server) handleCompress(w http.ResponseWriter, r *http.Request) {
	ctx, sp := trace.Start(r.Context(), "serve.compress")
	defer sp.End()
	ctx, cancel := s.requestCtx(r.WithContext(ctx))
	defer cancel()

	codec, herr := negotiateCodec(r)
	if herr == nil {
		var dims []int
		if dims, herr = negotiateDims(r); herr == nil {
			var chunks int
			if chunks, herr = intParam(r, "chunks", 0); herr == nil {
				herr = s.compress(ctx, w, r, codec, dims, chunks)
			}
		}
	}
	if herr != nil {
		sp.SetError(herr)
		fail(w, herr)
	}
}

func (s *Server) compress(ctx context.Context, w http.ResponseWriter, r *http.Request,
	codec compress.Codec, dims []int, chunks int) *httpError {
	body, herr := s.readBody(w, r, s.epCompress)
	if herr != nil {
		return herr
	}
	f, err := grid.FromBytes(body, dims...)
	if err != nil {
		return badRequest("%v", err)
	}
	if chunks == 0 {
		chunks = min(s.cfg.DefaultChunks, f.Dims[0])
	}
	opts := core.Options{
		DataCodec: codec,
		Parallel:  parallel.Config{Workers: s.cfg.Workers},
	}
	res, err := core.CompressChunkedCtx(ctx, f, opts, chunks)
	if err != nil {
		return pipelineError(r, s.epCompress, err)
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Lrm-Codec", codec.Name())
	w.Header().Set("X-Lrm-Chunks", strconv.Itoa(chunks))
	w.Header().Set("X-Lrm-Original-Bytes", strconv.Itoa(res.OriginalBytes))
	w.Header().Set("X-Lrm-Ratio", strconv.FormatFloat(res.Ratio(), 'g', 6, 64))
	writeStream(w, res.Archive)
	quality.Observe(quality.Event{
		Source:          "serve.compress",
		Codec:           codec.Name(),
		Chunk:           -1,
		Dims:            f.Dims,
		OriginalBytes:   res.OriginalBytes,
		CompressedBytes: len(res.Archive),
		Bound:           absBound(codec, f),
		Raw:             func() []byte { return body },
		Original:        f.Data,
		Reconstruct: func() ([]float64, error) {
			g, err := core.DecompressWithOptsCtx(ctx, res.Archive,
				core.DecompressOpts{Parallel: parallel.Config{Workers: s.cfg.Workers}})
			if err != nil {
				return nil, err
			}
			return g.Data, nil
		},
	})
	return nil
}

// absBound extracts the codec's requested absolute error bound for f, or
// NaN when the codec's guarantee is not expressible as one.
func absBound(codec compress.Codec, f *grid.Field) float64 {
	if eb, ok := codec.(compress.ErrorBounded); ok {
		if b, ok := eb.AbsErrorBound(f); ok {
			return b
		}
	}
	return math.NaN()
}

// handleDecompress is POST /v1/decompress: archive in (LRMC or LRM1), raw
// little-endian float64 field out, shape in the X-Lrm-Dims response
// header. ?partial=1 selects degraded-mode decode for chunked containers:
// failed chunks zero their region and are reported in X-Lrm-Chunk-Errors /
// X-Lrm-Failed-Chunks instead of failing the request.
//
// Complete decodes of chunked containers are cached: the key is the
// container's index-seeded chunk CRCs recomputed over the payload bytes (a
// framing scan plus a CRC pass, no decode), so re-serving a hot archive
// costs a checksum and a map hit instead of a pipeline run.
func (s *Server) handleDecompress(w http.ResponseWriter, r *http.Request) {
	ctx, sp := trace.Start(r.Context(), "serve.decompress")
	defer sp.End()
	ctx, cancel := s.requestCtx(r.WithContext(ctx))
	defer cancel()

	if herr := s.decompress(ctx, w, r); herr != nil {
		sp.SetError(herr)
		fail(w, herr)
	}
}

func (s *Server) decompress(ctx context.Context, w http.ResponseWriter, r *http.Request) *httpError {
	partial := boolParam(r, "partial")
	archive, herr := s.readBody(w, r, s.epDecompress)
	if herr != nil {
		return herr
	}

	key, cacheable := cacheKey(archive)
	if cacheable && s.cache != nil {
		if e, ok := s.cache.get(key); ok {
			writeField(w, e.dims, e.payload, "hit", partial, nil, 0)
			return nil
		}
	}

	opts := core.DecompressOpts{Parallel: parallel.Config{Workers: s.cfg.Workers}}
	var field *grid.Field
	var chunkErrs []core.ChunkError
	var chunks int
	if partial {
		p, err := core.DecompressChunkedPartialWithOptsCtx(ctx, archive, opts)
		if err != nil {
			return pipelineError(r, s.epDecompress, err)
		}
		field, chunkErrs, chunks = p.Field, p.Errors, p.Chunks
		if !p.Complete() {
			cacheable = false
		}
	} else {
		f, err := core.DecompressWithOptsCtx(ctx, archive, opts)
		if err != nil {
			return pipelineError(r, s.epDecompress, err)
		}
		field = f
	}

	payload := field.Bytes()
	if cacheable && s.cache != nil {
		s.cache.put(key, field.Dims, payload)
	}
	writeField(w, field.Dims, payload, "miss", partial, chunkErrs, chunks)
	// Decompression has no reference data to grade against; the event
	// still carries the expansion ratio and (when sampled) the byte
	// features of the reconstructed field.
	quality.Observe(quality.Event{
		Source:          "serve.decompress",
		Chunk:           -1,
		Dims:            field.Dims,
		OriginalBytes:   len(payload),
		CompressedBytes: len(archive),
		Bound:           math.NaN(),
		Raw:             func() []byte { return payload },
	})
	return nil
}

// writeField writes a decompressed field response: shape and cache
// disposition in headers, raw bytes streamed in the body.
func writeField(w http.ResponseWriter, dims []int, payload []byte, cache string,
	partial bool, chunkErrs []core.ChunkError, chunks int) {
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Lrm-Dims", dimsString(dims))
	w.Header().Set("X-Lrm-Cache", cache)
	if partial {
		w.Header().Set("X-Lrm-Chunks", strconv.Itoa(chunks))
		w.Header().Set("X-Lrm-Chunk-Errors", strconv.Itoa(len(chunkErrs)))
		if len(chunkErrs) > 0 {
			failed := make([]string, len(chunkErrs))
			for i, ce := range chunkErrs {
				failed[i] = strconv.Itoa(ce.Chunk)
			}
			w.Header().Set("X-Lrm-Failed-Chunks", strings.Join(failed, ","))
		}
	}
	writeStream(w, payload)
}

func dimsString(dims []int) string {
	parts := make([]string, len(dims))
	for i, d := range dims {
		parts[i] = strconv.Itoa(d)
	}
	return strings.Join(parts, ",")
}

// handleCodecs is GET /v1/codecs: a plain-text capability listing so a
// client can discover the negotiation surface without reading the docs.
func handleCodecs(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = io.WriteString(w, ""+
		"zfp    precision=P (default 16) | accuracy=TOL | rate=BITS\n"+
		"sz     mode=abs|rel|pwrel (default abs), bound=EB (default 1e-5)\n"+
		"fpc    level=L in [1,24] (default 12; lossless)\n"+
		"flate  level=L in [1,9] (default 6; lossless)\n")
}

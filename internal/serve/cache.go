package serve

import (
	"container/list"
	"strconv"
	"sync"

	"lrm/internal/core"
	"lrm/internal/obs"
)

// Cache metrics, hoisted once per the obs contract.
var (
	obsCacheHits      = obs.GetCounter("serve.cache.hits")
	obsCacheMisses    = obs.GetCounter("serve.cache.misses")
	obsCacheEvictions = obs.GetCounter("serve.cache.evictions")
	obsCacheBytes     = obs.GetGauge("serve.cache.bytes")
)

// cacheKey derives a content address for an archive without decoding it.
// Chunked containers are keyed by their dims plus index-seeded per-chunk
// CRCs recomputed over the payload bytes (core.ChunkCRCs), so any payload
// corruption, chunk reorder, or splice changes the key — the stored CRC
// fields are deliberately not trusted, or a payload flip would collide
// with the clean archive's key and serve its cached field. Single-shot
// LRM1 archives fall back to hashing the whole archive.
func cacheKey(archive []byte) (string, bool) {
	if dims, crcs, ok := core.ChunkCRCs(archive); ok {
		h := fnvOffset64
		for _, d := range dims {
			h = fnvMixUint32(h, uint32(d))
		}
		for _, c := range crcs {
			h = fnvMixUint32(h, c)
		}
		return "c|" + strconv.FormatUint(h, 16), true
	}
	if len(archive) == 0 {
		return "", false
	}
	h := fnvOffset64
	for _, b := range archive {
		h = (h ^ uint64(b)) * fnvPrime64
	}
	return "s|" + strconv.FormatUint(h, 16), true
}

// FNV-1a, inlined: the key derivation only needs a stable 64-bit mix, and
// the closed-form loop avoids hash.Hash's io.Writer error surface.
const (
	fnvOffset64 = uint64(14695981039346656037)
	fnvPrime64  = uint64(1099511628211)
)

func fnvMixUint32(h uint64, v uint32) uint64 {
	for shift := 0; shift < 32; shift += 8 {
		h = (h ^ uint64(byte(v>>shift))) * fnvPrime64
	}
	return h
}

// respCache is a byte-bounded LRU of decompressed fields. Values are the
// raw little-endian response payloads (grid.Field.Bytes output) plus their
// dims, stored by content-address key; eviction walks from the cold end
// until the new entry fits.
type respCache struct {
	mu       sync.Mutex
	maxBytes int64
	curBytes int64
	order    *list.List // front = hottest; values are *cacheEntry
	entries  map[string]*list.Element
}

type cacheEntry struct {
	key     string
	dims    []int
	payload []byte
}

func newRespCache(maxBytes int64) *respCache {
	return &respCache{
		maxBytes: maxBytes,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
	}
}

// get returns the cached entry for key, promoting it to hottest. The
// payload is shared, not copied — callers only ever write it to responses.
func (c *respCache) get(key string) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		obsCacheMisses.Inc()
		return nil, false
	}
	obsCacheHits.Inc()
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry), true
}

// put inserts payload under key, evicting cold entries until it fits.
// Entries larger than the whole budget are skipped rather than flushing
// everything for a value that cannot stay resident anyway.
func (c *respCache) put(key string, dims []int, payload []byte) {
	size := int64(len(payload))
	if size > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// Same content address, same payload: just refresh recency.
		c.order.MoveToFront(el)
		return
	}
	for c.curBytes+size > c.maxBytes {
		cold := c.order.Back()
		if cold == nil {
			break
		}
		e := cold.Value.(*cacheEntry)
		c.order.Remove(cold)
		delete(c.entries, e.key)
		c.curBytes -= int64(len(e.payload))
		obsCacheEvictions.Inc()
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, dims: dims, payload: payload})
	c.curBytes += size
	obsCacheBytes.Set(c.curBytes)
}

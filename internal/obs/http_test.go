package obs

import (
	"context"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestStartDebugServesAndStops covers the lifecycle seam end to end: the
// server binds synchronously, serves /metrics and /debug/vars, and the stop
// function drains it so the port is immediately reusable — the leak the old
// bare http.ListenAndServe made impossible to avoid.
func TestStartDebugServesAndStops(t *testing.T) {
	addr, stop, err := StartDebug("127.0.0.1:0")
	if err != nil {
		t.Fatalf("StartDebug: %v", err)
	}

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return string(body)
	}

	// The registry always carries at least the process-wide metrics once
	// anything registered; the exposition content-type is the contract here.
	if body := get("/metrics"); body == "" {
		t.Error("/metrics returned an empty exposition")
	}
	if body := get("/debug/vars"); !strings.Contains(body, "{") {
		t.Errorf("/debug/vars is not JSON: %q", body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := stop(ctx); err != nil {
		t.Fatalf("stop: %v", err)
	}

	// The listener must actually be released: re-binding the exact address
	// succeeds only when stop closed it.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("address %s still bound after stop: %v", addr, err)
	}
	ln.Close()
}

// TestStartDebugBadAddrFailsFast pins the synchronous-bind contract: an
// unusable address errors from StartDebug itself, not on a background
// goroutine after the caller has moved on.
func TestStartDebugBadAddrFailsFast(t *testing.T) {
	if _, _, err := StartDebug("256.256.256.256:99999"); err == nil {
		t.Fatal("StartDebug on a bogus address returned no error")
	}
}

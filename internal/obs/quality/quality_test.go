package quality_test

import (
	"encoding/json"
	"errors"
	"math"
	"net/http/httptest"
	"testing"

	"lrm/internal/obs"
	"lrm/internal/obs/quality"
)

// withQuality enables the registry and isolates the sampling stride and
// decision log for one test.
func withQuality(t *testing.T, sampleEvery int) {
	t.Helper()
	prevEnabled := obs.SetEnabled(true)
	prevSample := quality.SetSampleEvery(sampleEvery)
	obs.Reset()
	quality.ResetLog()
	t.Cleanup(func() {
		obs.SetEnabled(prevEnabled)
		quality.SetSampleEvery(prevSample)
		obs.Reset()
		quality.ResetLog()
	})
}

// event builds a request-level event whose reconstruction misses the
// original by exactly maxErr in one place.
func event(bound, maxErr float64) quality.Event {
	orig := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	recon := append([]float64(nil), orig...)
	recon[3] += maxErr
	return quality.Event{
		Source:          "qualitytest",
		Codec:           "sz",
		Chunk:           -1,
		Dims:            []int{2, 2, 2},
		OriginalBytes:   800,
		CompressedBytes: 100,
		Bound:           bound,
		Raw:             func() []byte { return []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11} },
		Original:        orig,
		Reconstruct:     func() ([]float64, error) { return recon, nil },
	}
}

func TestObserveSampledCheck(t *testing.T) {
	withQuality(t, 1)

	quality.Observe(event(1e-3, 5e-4)) // bound holds with 2x headroom

	recs := quality.Records()
	if len(recs) != 1 {
		t.Fatalf("decision log has %d records, want 1", len(recs))
	}
	r := recs[0]
	if !r.Sampled || !r.Checked {
		t.Fatalf("record not sampled+checked: %+v", r)
	}
	if r.Ratio != 8 {
		t.Errorf("ratio = %v, want 8 (800/100)", r.Ratio)
	}
	if math.Abs(r.MaxAbsErr-5e-4) > 1e-12 {
		t.Errorf("max abs err = %v, want 5e-4", r.MaxAbsErr)
	}
	if math.Abs(r.Headroom-2) > 1e-9 {
		t.Errorf("headroom = %v, want 2.0", r.Headroom)
	}
	if r.ByteEntropy <= 0 {
		t.Errorf("byte entropy = %v, want > 0", r.ByteEntropy)
	}
	if r.PSNRdB <= 0 || math.IsInf(r.PSNRdB, 0) {
		t.Errorf("psnr = %v, want finite positive", r.PSNRdB)
	}

	snap := obs.Snapshot()
	if got := snap.Counters["quality.events"]; got != 1 {
		t.Errorf("quality.events = %d, want 1", got)
	}
	if got := snap.Counters["quality.sampled"]; got != 1 {
		t.Errorf("quality.sampled = %d, want 1", got)
	}
	if got := snap.Counters["quality.bound_violations"]; got != 0 {
		t.Errorf("quality.bound_violations = %d, want 0", got)
	}
	if got := snap.Histograms["quality.ratio"].Count; got != 1 {
		t.Errorf("quality.ratio count = %d, want 1", got)
	}
	if got := snap.Histograms["quality.headroom"].Count; got != 1 {
		t.Errorf("quality.headroom count = %d, want 1", got)
	}
}

func TestObserveBoundViolation(t *testing.T) {
	withQuality(t, 1)

	quality.Observe(event(1e-3, 2e-3)) // achieved error double the bound

	if got := obs.GetCounter("quality.bound_violations").Value(); got != 1 {
		t.Fatalf("quality.bound_violations = %d, want 1", got)
	}
	r := quality.Records()[0]
	if r.Headroom >= 1 {
		t.Errorf("headroom = %v, want < 1 on a violation", r.Headroom)
	}
}

func TestObserveChunkEventAndLossless(t *testing.T) {
	withQuality(t, 1)

	// A chunk event lands in the chunk histogram; a zero (lossless) bound
	// and an exact reconstruction produce infinite headroom but no
	// histogram observation and no violation.
	ev := event(0, 0)
	ev.Chunk = 3
	quality.Observe(ev)

	snap := obs.Snapshot()
	if got := snap.Histograms["quality.chunk.ratio"].Count; got != 1 {
		t.Errorf("quality.chunk.ratio count = %d, want 1", got)
	}
	if got := snap.Histograms["quality.ratio"].Count; got != 0 {
		t.Errorf("quality.ratio count = %d, want 0 for a chunk event", got)
	}
	if got := snap.Histograms["quality.headroom"].Count; got != 0 {
		t.Errorf("quality.headroom count = %d, want 0 for a lossless bound", got)
	}
	if got := obs.GetCounter("quality.bound_violations").Value(); got != 0 {
		t.Errorf("quality.bound_violations = %d, want 0", got)
	}
}

func TestObserveCheckError(t *testing.T) {
	withQuality(t, 1)

	ev := event(1e-3, 0)
	ev.Reconstruct = func() ([]float64, error) { return nil, errors.New("decode exploded") }
	quality.Observe(ev)

	if got := obs.GetCounter("quality.check_errors").Value(); got != 1 {
		t.Fatalf("quality.check_errors = %d, want 1", got)
	}
	r := quality.Records()[0]
	if r.Checked || r.CheckError == "" {
		t.Errorf("record = %+v, want unchecked with a check_error", r)
	}
}

func TestObserveDisabledIsNoop(t *testing.T) {
	prev := obs.SetEnabled(false)
	t.Cleanup(func() { obs.SetEnabled(prev) })
	quality.ResetLog()
	before := obs.GetCounter("quality.events").Value()

	quality.Observe(event(1e-3, 5e-4))

	if got := obs.GetCounter("quality.events").Value(); got != before {
		t.Fatalf("disabled Observe incremented quality.events: %d -> %d", before, got)
	}
	if got := quality.Records(); len(got) != 0 {
		t.Fatalf("disabled Observe appended %d log records", len(got))
	}
}

func TestLogRingBoundedNewestFirst(t *testing.T) {
	withQuality(t, 0) // sampling off: cheap path only
	prevCap := quality.SetLogCapacity(4)
	t.Cleanup(func() { quality.SetLogCapacity(prevCap) })

	for i := 0; i < 10; i++ {
		ev := event(math.NaN(), 0)
		ev.OriginalBytes = i
		quality.Observe(ev)
	}
	recs := quality.Records()
	if len(recs) != 4 {
		t.Fatalf("log retained %d records, want capacity 4", len(recs))
	}
	for i, want := range []int{9, 8, 7, 6} {
		if recs[i].OriginalBytes != want {
			t.Fatalf("records not newest-first: %+v", recs)
		}
	}
	if recs[0].Sampled {
		t.Error("sampling stride 0 still sampled an event")
	}
}

func TestHandlerServesJSON(t *testing.T) {
	withQuality(t, 1)
	quality.Observe(event(1e-3, 5e-4))

	rr := httptest.NewRecorder()
	quality.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/quality", nil))
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	var doc struct {
		SampleEvery int               `json:"sample_every"`
		Events      int64             `json:"events"`
		Histograms  map[string]any    `json:"histograms"`
		Records     []json.RawMessage `json:"records"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.Events != 1 || len(doc.Records) != 1 {
		t.Fatalf("doc = %+v, want 1 event and 1 record", doc)
	}
	if _, ok := doc.Histograms["quality.ratio"]; !ok {
		t.Fatal("response missing the quality.ratio histogram")
	}
}

// Package quality records per-request and per-chunk compression-quality
// telemetry — the feature stream the ROADMAP's online adaptive
// codec/model selector (Tao et al.; Underwood et al., PAPERS.md) will
// consume, measured continuously instead of in offline experiments:
//
//   - achieved compression ratio, always (one histogram observe per event);
//   - on sampled events (1 in SampleEvery), the Fig. 1 byte
//     characteristics of the data (entropy, serial correlation, via
//     internal/stats) and a reconstruction check: decode the archive just
//     produced, measure max abs error / NRMSE / PSNR against the original,
//     and report the requested-vs-achieved error-bound headroom
//     (bound / achieved max error — above 1 means the bound held, with
//     that much slack).
//
// Every event also lands in a bounded in-memory decision log (a ring of
// LogCapacity records) served as JSON at /debug/quality, so "what did the
// codec actually deliver on recent traffic" is answerable without a
// metrics pipeline.
//
// All entry points are gated on obs.Enabled(): with observability off an
// Observe call costs one atomic load, preserving the disabled-overhead
// guarantee of the instrumented pipelines (pinned by the obs overhead
// guard test).
package quality

import (
	"encoding/json"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"lrm/internal/obs"
	"lrm/internal/stats"
)

// Ratio and headroom histograms store fixed-point thousandths (obs
// histograms are integer); PSNR stores whole dB.
var (
	// ratioBounds span 1x..128x in thousandths.
	ratioBounds = []int64{1000, 1500, 2000, 3000, 4000, 6000, 8000, 12000, 16000, 24000, 32000, 64000, 128000}
	// headroomBounds bracket 1.0 tightly: below 1000 the requested bound
	// was violated, just above it held with little slack.
	headroomBounds = []int64{100, 500, 900, 1000, 1500, 2000, 4000, 8000, 16000, 64000, 256000}
	psnrBounds     = []int64{20, 40, 60, 80, 100, 120, 140, 160, 180}

	hRatio      = obs.GetHistogram("quality.ratio", ratioBounds)
	hChunkRatio = obs.GetHistogram("quality.chunk.ratio", ratioBounds)
	hHeadroom   = obs.GetHistogram("quality.headroom", headroomBounds)
	hPSNR       = obs.GetHistogram("quality.psnr_db", psnrBounds)

	cEvents     = obs.GetCounter("quality.events")
	cSampled    = obs.GetCounter("quality.sampled")
	cViolations = obs.GetCounter("quality.bound_violations")
	cCheckErrs  = obs.GetCounter("quality.check_errors")
)

func init() {
	obs.Describe("quality.ratio", "Achieved request-level compression ratio, fixed-point thousandths.")
	obs.Describe("quality.chunk.ratio", "Achieved per-chunk compression ratio, fixed-point thousandths.")
	obs.Describe("quality.headroom", "Requested error bound / achieved max abs error, thousandths; under 1000 means the bound was violated.")
	obs.Describe("quality.psnr_db", "Sampled reconstruction PSNR against the original field, dB.")
	obs.Describe("quality.events", "Quality telemetry events recorded (requests + chunks).")
	obs.Describe("quality.sampled", "Events that paid for the full feature + reconstruction check.")
	obs.Describe("quality.bound_violations", "Sampled reconstructions whose max abs error exceeded the requested bound.")
	obs.Describe("quality.check_errors", "Sampled reconstruction checks that failed to decode.")
	obs.RegisterDebugHandler("/debug/quality", Handler())
}

// sampleEvery is the sampling stride: one event in every sampleEvery pays
// for features + reconstruction. The counter-based gate keeps the stream
// deterministic under serial load and statistically fair under
// concurrency.
var (
	sampleEvery atomic.Int64
	sampleTick  atomic.Int64
)

func init() { sampleEvery.Store(16) }

// SetSampleEvery sets the sampling stride (1 = every event, the test
// setting) and returns the previous value. n < 1 disables sampling
// entirely — ratios and the decision log still record.
func SetSampleEvery(n int) (prev int) {
	prev = int(sampleEvery.Load())
	sampleEvery.Store(int64(n))
	return prev
}

// Event describes one compression outcome to Observe. The function fields
// keep this package free of core/compress imports (and so importable from
// core): the caller supplies closures that are only invoked on sampled
// events.
type Event struct {
	// Source labels the call site: "serve.compress", "serve.decompress",
	// "core.chunk_compress".
	Source string
	// Codec is the codec's Name().
	Codec string
	// Chunk is the chunk index, or -1 for request-level events.
	Chunk int
	// Dims is the field shape.
	Dims []int
	// OriginalBytes and CompressedBytes size the two sides of the codec.
	OriginalBytes, CompressedBytes int
	// Bound is the requested absolute error bound; NaN when the codec's
	// guarantee is not expressible as one (fixed-precision zfp,
	// pointwise-relative sz) and 0 for lossless codecs.
	Bound float64
	// Raw returns the field's wire bytes for the Fig. 1 byte features.
	// Nil skips features. Called only on sampled events.
	Raw func() []byte
	// Original is the reference data for the reconstruction check
	// (read-only). Nil skips the check.
	Original []float64
	// Reconstruct decodes the just-produced archive. Nil skips the
	// check. Called only on sampled events.
	Reconstruct func() ([]float64, error)
}

// Record is one decision-log entry — the structured trace of what a codec
// delivered for one request or chunk.
type Record struct {
	TimeMs          int64   `json:"time_ms"`
	Source          string  `json:"source"`
	Codec           string  `json:"codec"`
	Chunk           int     `json:"chunk"`
	Dims            []int   `json:"dims,omitempty"`
	OriginalBytes   int     `json:"original_bytes"`
	CompressedBytes int     `json:"compressed_bytes"`
	Ratio           float64 `json:"ratio"`
	Bound           float64 `json:"bound,omitempty"`
	Sampled         bool    `json:"sampled"`
	// Byte features (Fig. 1), present when Sampled and Raw was supplied.
	ByteEntropy float64 `json:"byte_entropy,omitempty"`
	SerialCorr  float64 `json:"serial_corr,omitempty"`
	// Reconstruction check, present when Sampled and Reconstruct ran.
	Checked    bool    `json:"checked"`
	MaxAbsErr  float64 `json:"max_abs_err,omitempty"`
	NRMSE      float64 `json:"nrmse,omitempty"`
	PSNRdB     float64 `json:"psnr_db,omitempty"`
	Headroom   float64 `json:"headroom,omitempty"`
	CheckError string  `json:"check_error,omitempty"`
}

// logRing is the bounded decision log.
var logRing = struct {
	sync.Mutex
	recs []Record
	head int
	n    int
	cap  int
}{cap: 256}

// SetLogCapacity resizes the decision log (dropping current contents) and
// returns the previous capacity. Minimum 1.
func SetLogCapacity(n int) (prev int) {
	if n < 1 {
		n = 1
	}
	logRing.Lock()
	defer logRing.Unlock()
	prev = logRing.cap
	logRing.cap, logRing.recs, logRing.head, logRing.n = n, nil, 0, 0
	return prev
}

// ResetLog clears the decision log (the histograms live in the obs
// registry and clear with obs.Reset).
func ResetLog() {
	logRing.Lock()
	defer logRing.Unlock()
	logRing.recs, logRing.head, logRing.n = nil, 0, 0
}

func appendRecord(r Record) {
	logRing.Lock()
	defer logRing.Unlock()
	if logRing.recs == nil {
		logRing.recs = make([]Record, logRing.cap)
	}
	logRing.recs[logRing.head] = r
	logRing.head = (logRing.head + 1) % logRing.cap
	if logRing.n < logRing.cap {
		logRing.n++
	}
}

// Records returns the decision log newest-first.
func Records() []Record {
	logRing.Lock()
	defer logRing.Unlock()
	out := make([]Record, 0, logRing.n)
	for i := 1; i <= logRing.n; i++ {
		out = append(out, logRing.recs[(logRing.head-i+logRing.cap)%logRing.cap])
	}
	return out
}

// Observe records one compression outcome. With observability disabled it
// returns after one atomic load. The cheap path (ratio histogram + log
// record) runs on every enabled call; the sampled path additionally
// computes byte features and runs the reconstruction check.
func Observe(ev Event) {
	if !obs.Enabled() {
		return
	}
	cEvents.Inc()

	rec := Record{
		TimeMs:          time.Now().UnixMilli(),
		Source:          ev.Source,
		Codec:           ev.Codec,
		Chunk:           ev.Chunk,
		Dims:            ev.Dims,
		OriginalBytes:   ev.OriginalBytes,
		CompressedBytes: ev.CompressedBytes,
	}
	if ev.CompressedBytes > 0 {
		rec.Ratio = float64(ev.OriginalBytes) / float64(ev.CompressedBytes)
	}
	if !math.IsNaN(ev.Bound) {
		rec.Bound = ev.Bound
	}
	h := hRatio
	if ev.Chunk >= 0 {
		h = hChunkRatio
	}
	h.Observe(int64(rec.Ratio * 1000))

	if n := sampleEvery.Load(); n >= 1 && sampleTick.Add(1)%n == 0 {
		rec.Sampled = true
		cSampled.Inc()
		if ev.Raw != nil {
			if raw := ev.Raw(); len(raw) > 0 {
				ch := stats.Characterize(raw)
				rec.ByteEntropy = ch.ByteEntropy
				rec.SerialCorr = ch.SerialCorrelation
			}
		}
		check(&rec, ev)
	}
	appendRecord(rec)
}

// check runs the sampled reconstruction: decode, compare, grade against
// the requested bound.
func check(rec *Record, ev Event) {
	if ev.Reconstruct == nil || len(ev.Original) == 0 {
		return
	}
	got, err := ev.Reconstruct()
	if err != nil {
		cCheckErrs.Inc()
		rec.CheckError = err.Error()
		return
	}
	if len(got) != len(ev.Original) {
		cCheckErrs.Inc()
		rec.CheckError = "reconstruction length mismatch"
		return
	}
	rec.Checked = true
	rec.MaxAbsErr = stats.MaxAbsError(ev.Original, got)
	rec.NRMSE = stats.NRMSE(ev.Original, got)
	rec.PSNRdB = stats.PSNR(ev.Original, got)
	if !math.IsInf(rec.PSNRdB, 0) {
		hPSNR.Observe(int64(rec.PSNRdB))
	}
	// Headroom only makes sense for a positive requested bound: lossless
	// codecs (bound 0) and inexpressible guarantees (NaN) have none.
	if ev.Bound > 0 && !math.IsNaN(ev.Bound) {
		if rec.MaxAbsErr > 0 {
			rec.Headroom = ev.Bound / rec.MaxAbsErr
		} else {
			rec.Headroom = math.Inf(1)
		}
		if rec.MaxAbsErr > ev.Bound {
			cViolations.Inc()
		}
		if !math.IsInf(rec.Headroom, 0) {
			// Clamp: a near-zero achieved error makes headroom*1000 overflow
			// int64, and float-to-int overflow is undefined.
			hv := rec.Headroom * 1000
			if max := float64(headroomBounds[len(headroomBounds)-1] + 1); hv > max {
				hv = max
			}
			hHeadroom.Observe(int64(hv))
		}
	}
}

// doc is the /debug/quality response shape.
type doc struct {
	SampleEvery int                         `json:"sample_every"`
	Events      int64                       `json:"events"`
	Sampled     int64                       `json:"sampled"`
	Violations  int64                       `json:"bound_violations"`
	CheckErrors int64                       `json:"check_errors"`
	Histograms  map[string]obs.HistSnapshot `json:"histograms"`
	Records     []Record                    `json:"records"`
}

// Handler serves the decision log and quality histograms as JSON.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		d := doc{
			SampleEvery: int(sampleEvery.Load()),
			Events:      cEvents.Value(),
			Sampled:     cSampled.Value(),
			Violations:  cViolations.Value(),
			CheckErrors: cCheckErrs.Value(),
			Histograms: map[string]obs.HistSnapshot{
				"quality.ratio":       hRatio.Snapshot(),
				"quality.chunk.ratio": hChunkRatio.Snapshot(),
				"quality.headroom":    hHeadroom.Snapshot(),
				"quality.psnr_db":     hPSNR.Snapshot(),
			},
			Records: Records(),
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(d)
	})
}

// Overhead guard: the package promise is that disabled-mode instrumentation
// costs one atomic load per guard, so instrumenting the compression hot
// paths must be effectively free when nobody is looking. This test pins
// that promise as a ratio — the modeled disabled-mode cost of every obs
// call site a Compress executes must stay below 2% of the measured stage
// time — so it holds under -race and on slow machines, where both sides of
// the ratio inflate together.
package obs_test

import (
	"math"
	"testing"
	"time"

	"lrm/internal/compress/sz"
	"lrm/internal/compress/zfp"
	"lrm/internal/grid"
	"lrm/internal/obs"
	"lrm/internal/obs/quality"
)

// sink defeats dead-code elimination of the measured loops.
var sink *obs.Span

// overheadField is large enough that a serial compress takes well over the
// timer granularity but small enough to keep the test fast.
func overheadField() *grid.Field {
	f := grid.New(128, 128)
	for i := range f.Data {
		f.Data[i] = 100 + 10*math.Sin(float64(i)/9)
	}
	return f
}

// disabledLifecycleNs measures one full disabled span lifecycle — the exact
// call shape the sz stage spans use: root Start, a child with byte and item
// attribution, both ended — plus an Enabled() guard.
func disabledLifecycleNs() float64 {
	const iters = 200_000
	start := time.Now()
	for i := 0; i < iters; i++ {
		sp := obs.Start("overhead.probe")
		cs := sp.StartChild("overhead.probe.child")
		cs.SetBytes(1, 2)
		cs.AddItems(3)
		cs.End()
		if obs.Enabled() {
			sp.AddItems(1)
		}
		sp.End()
		sink = sp
	}
	return float64(time.Since(start).Nanoseconds()) / iters
}

// disabledQualityNs measures the disabled cost of one quality-telemetry
// probe in the exact guard shape core.CompressChunkedCtx uses: an
// Enabled() check in front of quality.Observe, so a disabled probe is one
// atomic load and the Event literal is never built.
func disabledQualityNs() float64 {
	const iters = 200_000
	start := time.Now()
	for i := 0; i < iters; i++ {
		if obs.Enabled() {
			quality.Observe(quality.Event{Source: "overhead.probe"})
		}
	}
	return float64(time.Since(start).Nanoseconds()) / iters
}

// stageNs measures the average serial wall time of fn over a few runs.
func stageNs(runs int, fn func()) float64 {
	start := time.Now()
	for i := 0; i < runs; i++ {
		fn()
	}
	return float64(time.Since(start).Nanoseconds()) / float64(runs)
}

func TestDisabledOverheadBelowTwoPercent(t *testing.T) {
	prev := obs.SetEnabled(false)
	defer obs.SetEnabled(prev)

	lifecycleNs := disabledLifecycleNs()
	qualityNs := disabledQualityNs()
	f := overheadField()

	// Per-Compress disabled call-site budgets, counted generously from the
	// instrumentation: sz runs a root span, three stage children, and two
	// counter guards (≈5 lifecycles — budget 8); zfp runs a root span plus
	// one Enabled() snapshot per encodeBlocks shard (budget 8 covers many
	// shards). Each budget unit is a FULL root+child lifecycle, so the model
	// overstates the real cost. The quality probes add one guarded
	// quality.Observe per chunk plus one per request (budget 8 covers a
	// generous chunk count). The history sampler has no per-Compress call
	// sites at all — it is a background goroutine over the registry — so it
	// contributes nothing to this model by construction.
	const lifecyclesPerCompress = 8
	const qualityProbesPerCompress = 8

	cases := []struct {
		name string
		fn   func()
	}{
		{"sz.compress", func() {
			c := sz.MustNew(sz.Abs, 1e-4).WithWorkers(1)
			if _, err := c.Compress(f); err != nil {
				t.Fatal(err)
			}
		}},
		{"zfp.compress", func() {
			c := zfp.MustNew(16).WithWorkers(1)
			if _, err := c.Compress(f); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		tc.fn() // warm up before timing
		stage := stageNs(5, tc.fn)
		overhead := lifecyclesPerCompress*lifecycleNs + qualityProbesPerCompress*qualityNs
		ratio := overhead / stage
		t.Logf("%s: stage %.0f ns, disabled obs cost %.1f ns (%.4f%%)",
			tc.name, stage, overhead, 100*ratio)
		if ratio >= 0.02 {
			t.Errorf("%s: disabled instrumentation overhead %.2f%% exceeds the 2%% budget (lifecycle %.1f ns, quality probe %.1f ns, stage %.0f ns)",
				tc.name, 100*ratio, lifecycleNs, qualityNs, stage)
		}
	}
}

// BenchmarkDisabledSpanLifecycle reports the raw disabled lifecycle cost —
// the number the package doc's "one atomic load" claim cashes out to.
func BenchmarkDisabledSpanLifecycle(b *testing.B) {
	prev := obs.SetEnabled(false)
	defer obs.SetEnabled(prev)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := obs.Start("overhead.bench")
		cs := sp.StartChild("overhead.bench.child")
		cs.SetBytes(1, 2)
		cs.End()
		sp.End()
		sink = sp
	}
}

// BenchmarkEnabledSpanLifecycle is the enabled-mode counterpart, for
// judging the cost of turning -stats on.
func BenchmarkEnabledSpanLifecycle(b *testing.B) {
	prev := obs.SetEnabled(true)
	defer func() {
		obs.SetEnabled(prev)
		obs.Reset()
	}()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := obs.Start("overhead.bench")
		cs := sp.StartChild("overhead.bench.child")
		cs.SetBytes(1, 2)
		cs.End()
		sp.End()
		sink = sp
	}
}

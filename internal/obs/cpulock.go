package obs

import (
	"fmt"
	"sync"
)

// The Go runtime supports exactly one active CPU profile per process:
// runtime/pprof.StartCPUProfile fails while another profile is running,
// and the net/http/pprof handler returns 500 under the same contention.
// With PR 10's continuous profiler running windows in the background,
// that contention is routine rather than exotic, so ownership is
// arbitrated here: every in-process CPU-profile producer acquires the
// profiler before starting and the conflict error names the holder,
// turning a silent empty profile into an actionable message.
var (
	cpuProfMu    sync.Mutex
	cpuProfOwner string
)

// AcquireCPUProfiler claims the process-wide CPU profiler for owner (a
// human-readable tag like `-cpuprofile cpu.pprof` or "continuous
// profiler"). On success the returned release function must be called
// after runtime/pprof.StopCPUProfile; on contention the error names the
// current holder and release is nil.
func AcquireCPUProfiler(owner string) (release func(), err error) {
	cpuProfMu.Lock()
	defer cpuProfMu.Unlock()
	if cpuProfOwner != "" {
		return nil, fmt.Errorf("obs: CPU profiler busy: held by %s (the runtime allows one CPU profile at a time)", cpuProfOwner)
	}
	cpuProfOwner = owner
	return func() {
		cpuProfMu.Lock()
		cpuProfOwner = ""
		cpuProfMu.Unlock()
	}, nil
}

// CPUProfilerOwner reports the tag of the current CPU-profiler holder, or
// "" when the profiler is free. Diagnostic only — checking then acquiring
// is inherently racy; call AcquireCPUProfiler and handle its error.
func CPUProfilerOwner() string {
	cpuProfMu.Lock()
	defer cpuProfMu.Unlock()
	return cpuProfOwner
}

package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestAcquireCPUProfiler pins the arbitration contract: second acquire
// fails naming the holder, release frees the slot for the next owner.
func TestAcquireCPUProfiler(t *testing.T) {
	rel, err := AcquireCPUProfiler("test-owner-a")
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if got := CPUProfilerOwner(); got != "test-owner-a" {
		t.Fatalf("owner %q, want test-owner-a", got)
	}
	if _, err := AcquireCPUProfiler("test-owner-b"); err == nil {
		t.Fatal("second acquire succeeded while held")
	} else if !strings.Contains(err.Error(), "test-owner-a") {
		t.Fatalf("conflict error does not name the holder: %v", err)
	}
	rel()
	if got := CPUProfilerOwner(); got != "" {
		t.Fatalf("owner after release %q, want empty", got)
	}
	rel2, err := AcquireCPUProfiler("test-owner-b")
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	rel2()
}

// TestStartCPUProfileArbitrated: StartCPUProfile refuses to start while
// the profiler is held, with an error naming the holder, and releases its
// claim on stop.
func TestStartCPUProfileArbitrated(t *testing.T) {
	rel, err := AcquireCPUProfiler("continuous profiler")
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	path := filepath.Join(t.TempDir(), "cpu.pprof")
	if _, err := StartCPUProfile(path); err == nil {
		t.Fatal("StartCPUProfile succeeded while profiler held")
	} else if !strings.Contains(err.Error(), "continuous profiler") {
		t.Fatalf("error does not name the holder: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("refused profile still created file: %v", err)
	}
	rel()

	stop, err := StartCPUProfile(path)
	if err != nil {
		t.Fatalf("StartCPUProfile after release: %v", err)
	}
	if got := CPUProfilerOwner(); !strings.Contains(got, "cpu.pprof") {
		t.Fatalf("owner while profiling %q, want path tag", got)
	}
	stop()
	if got := CPUProfilerOwner(); got != "" {
		t.Fatalf("owner after stop %q, want empty", got)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("profile file missing or empty: %v %v", fi, err)
	}
}

package tsdb

import (
	"math"
	"runtime/metrics"
)

// The runtime/metrics bridge: the four signal groups the ISSUE's serving
// SLOs care about — heap size, GC pauses, scheduler latency, goroutine
// count — read through the sampling-safe runtime/metrics API (no
// stop-the-world, unlike runtime.ReadMemStats).
const (
	rmGoroutines   = "/sched/goroutines:goroutines"
	rmHeapBytes    = "/memory/classes/heap/objects:bytes"
	rmTotalAlloc   = "/gc/heap/allocs:bytes"
	rmGCCycles     = "/gc/cycles/total:gc-cycles"
	rmGCPauses     = "/gc/pauses:seconds"
	rmSchedLatency = "/sched/latencies:seconds"
)

// runtimeSeries is one bridged sample ready for Store.record.
type runtimeSeries struct {
	name  string
	kind  Kind
	value float64
}

// runtimeSampler owns the reusable metrics.Sample slice and the previous
// histogram states needed for windowed pause/latency percentiles.
type runtimeSampler struct {
	samples   []metrics.Sample
	prevPause *metrics.Float64Histogram
	prevSched *metrics.Float64Histogram
}

func newRuntimeSampler() *runtimeSampler {
	names := []string{rmGoroutines, rmHeapBytes, rmTotalAlloc, rmGCCycles, rmGCPauses, rmSchedLatency}
	rs := &runtimeSampler{samples: make([]metrics.Sample, len(names))}
	for i, n := range names {
		rs.samples[i].Name = n
	}
	return rs
}

// sample reads the runtime metrics and maps them onto store series:
//
//	runtime.goroutines           gauge    live goroutine count
//	runtime.heap_bytes           gauge    bytes of live heap objects
//	runtime.total_alloc_bytes    counter  cumulative heap allocation
//	runtime.gc_cycles            counter  completed GC cycles
//	runtime.gc_pause_p99_ns      gauge    p99 GC pause over the window
//	runtime.sched_latency_p99_ns gauge    p99 goroutine scheduling latency
//	                                      over the window
//
// The two p99 series are windowed: they reflect only the pauses/latencies
// recorded since the previous sampling pass, so a startup spike ages out
// of the dashboard instead of pinning the percentile forever.
func (rs *runtimeSampler) sample() []runtimeSeries {
	metrics.Read(rs.samples)
	out := make([]runtimeSeries, 0, 6)
	for i := range rs.samples {
		sm := &rs.samples[i]
		switch sm.Name {
		case rmGoroutines:
			out = append(out, runtimeSeries{"runtime.goroutines", KindGauge, sampleFloat(sm)})
		case rmHeapBytes:
			out = append(out, runtimeSeries{"runtime.heap_bytes", KindGauge, sampleFloat(sm)})
		case rmTotalAlloc:
			out = append(out, runtimeSeries{"runtime.total_alloc_bytes", KindCounter, sampleFloat(sm)})
		case rmGCCycles:
			out = append(out, runtimeSeries{"runtime.gc_cycles", KindCounter, sampleFloat(sm)})
		case rmGCPauses:
			if sm.Value.Kind() != metrics.KindFloat64Histogram {
				continue
			}
			cur := sm.Value.Float64Histogram()
			if p99, ok := windowedHistP99(rs.prevPause, cur); ok {
				out = append(out, runtimeSeries{"runtime.gc_pause_p99_ns", KindGauge, p99 * 1e9})
			}
			rs.prevPause = cloneHist(cur)
		case rmSchedLatency:
			if sm.Value.Kind() != metrics.KindFloat64Histogram {
				continue
			}
			cur := sm.Value.Float64Histogram()
			if p99, ok := windowedHistP99(rs.prevSched, cur); ok {
				out = append(out, runtimeSeries{"runtime.sched_latency_p99_ns", KindGauge, p99 * 1e9})
			}
			rs.prevSched = cloneHist(cur)
		}
	}
	return out
}

func sampleFloat(sm *metrics.Sample) float64 {
	switch sm.Value.Kind() {
	case metrics.KindUint64:
		return float64(sm.Value.Uint64())
	case metrics.KindFloat64:
		return sm.Value.Float64()
	}
	return 0
}

// windowedHistP99 computes the 99th-percentile bucket bound of the
// observations cur gained over prev (nil prev means "since process
// start"). ok is false when the window holds no observations.
func windowedHistP99(prev, cur *metrics.Float64Histogram) (float64, bool) {
	if cur == nil || len(cur.Counts) == 0 {
		return 0, false
	}
	deltas := make([]uint64, len(cur.Counts))
	var total uint64
	for i, c := range cur.Counts {
		d := c
		if prev != nil && len(prev.Counts) == len(cur.Counts) && prev.Counts[i] <= c {
			d = c - prev.Counts[i]
		}
		deltas[i] = d
		total += d
	}
	if total == 0 {
		return 0, false
	}
	rank := uint64(0.99 * float64(total))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, d := range deltas {
		cum += d
		if cum >= rank {
			// Bucket i spans Buckets[i]..Buckets[i+1]; report the upper
			// edge, clamping the +Inf tail to the last finite boundary.
			hi := cur.Buckets[i+1]
			if math.IsInf(hi, 1) {
				hi = cur.Buckets[i]
			}
			return hi, true
		}
	}
	return cur.Buckets[len(cur.Buckets)-1], true
}

func cloneHist(h *metrics.Float64Histogram) *metrics.Float64Histogram {
	if h == nil {
		return nil
	}
	return &metrics.Float64Histogram{
		Counts:  append([]uint64(nil), h.Counts...),
		Buckets: append([]float64(nil), h.Buckets...),
	}
}

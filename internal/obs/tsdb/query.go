package tsdb

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Query selects series and a time range from a Store. The zero value
// selects every series over the full retained history at raw values.
type Query struct {
	// Names selects series by exact name (repeatable ?name=).
	Names []string
	// Match selects series whose name contains the substring (?match=);
	// combined with Names, a series passes if either selects it.
	Match string
	// Since restricts points to the trailing window (?since=5m). Ignored
	// when From/To are set.
	Since time.Duration
	// From/To restrict points to [From, To] in unix milliseconds
	// (?from=, ?to=; 0 means unbounded on that side).
	From, To int64
	// Rate converts counter series to per-second rates (?rate=1).
	Rate bool
	// MaxPoints downsamples each series to at most this many points by
	// striding (?n=). 0 means no limit.
	MaxPoints int
}

// ParseHistoryQuery parses a raw URL query string (the part after '?')
// into a Query. Errors name the offending parameter; unknown parameters
// are rejected so typos fail loudly instead of silently selecting
// everything.
func ParseHistoryQuery(raw string) (Query, error) {
	var q Query
	vals, err := url.ParseQuery(raw)
	if err != nil {
		return q, fmt.Errorf("tsdb: malformed query: %v", err)
	}
	for key, vs := range vals {
		v := ""
		if len(vs) > 0 {
			v = vs[len(vs)-1]
		}
		switch key {
		case "name":
			for _, n := range vs {
				if n != "" {
					q.Names = append(q.Names, n)
				}
			}
		case "match":
			q.Match = v
		case "since":
			d, err := time.ParseDuration(v)
			if err != nil || d < 0 {
				return q, fmt.Errorf("tsdb: since=%q is not a non-negative duration", v)
			}
			q.Since = d
		case "from", "to":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n < 0 {
				return q, fmt.Errorf("tsdb: %s=%q is not a non-negative unix-millisecond timestamp", key, v)
			}
			if key == "from" {
				q.From = n
			} else {
				q.To = n
			}
		case "rate":
			switch v {
			case "", "0", "false":
				q.Rate = false
			case "1", "true":
				q.Rate = true
			default:
				return q, fmt.Errorf("tsdb: rate=%q (want 0 or 1)", v)
			}
		case "n":
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return q, fmt.Errorf("tsdb: n=%q is not a positive integer", v)
			}
			q.MaxPoints = n
		default:
			return q, fmt.Errorf("tsdb: unknown parameter %q", key)
		}
	}
	if q.From != 0 && q.To != 0 && q.From > q.To {
		return q, fmt.Errorf("tsdb: from=%d is after to=%d", q.From, q.To)
	}
	return q, nil
}

// selects reports whether the query's name filters admit name.
func (q *Query) selects(name string) bool {
	if len(q.Names) == 0 && q.Match == "" {
		return true
	}
	for _, n := range q.Names {
		if n == name {
			return true
		}
	}
	return q.Match != "" && strings.Contains(name, q.Match)
}

// historyDoc is the /debug/history response shape.
type historyDoc struct {
	NowMs         int64        `json:"now_ms"`
	IntervalMs    int64        `json:"interval_ms"`
	Samples       int64        `json:"samples"`
	DroppedSeries int64        `json:"dropped_series"`
	Series        []SeriesSnap `json:"series"`
}

// Eval runs the query against the store and returns the matching series
// with range filtering, counter-rate derivation, and downsampling applied.
func (s *Store) Eval(q Query, now time.Time) []SeriesSnap {
	nowMs := now.UnixMilli()
	from, to := q.From, q.To
	if from == 0 && to == 0 && q.Since > 0 {
		from = nowMs - q.Since.Milliseconds()
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SeriesSnap, 0, 16)
	for _, name := range s.order {
		if !q.selects(name) {
			continue
		}
		sr := s.series[name]
		pts := sr.points(nil)
		if q.Rate && sr.kind == KindCounter {
			pts = derivedRates(pts)
		}
		pts = clipRange(pts, from, to)
		pts = downsample(pts, q.MaxPoints)
		if len(pts) == 0 {
			continue
		}
		out = append(out, SeriesSnap{Name: name, Kind: sr.kind.String(), Points: pts})
	}
	return out
}

// WriteJSON evaluates q and writes the historyDoc JSON — the shared body
// of the /debug/history handler and the -history file dump.
func (s *Store) WriteJSON(w io.Writer, q Query) error {
	now := time.Now()
	doc := historyDoc{
		NowMs:         now.UnixMilli(),
		IntervalMs:    s.cfg.Interval.Milliseconds(),
		Samples:       s.Samples(),
		DroppedSeries: s.DroppedSeries(),
		Series:        s.Eval(q, now),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// HistoryHandler serves JSON range queries over the retained history:
//
//	/debug/history                               everything retained
//	/debug/history?name=serve.compress.requests  one series, raw values
//	/debug/history?match=slo.&since=5m           prefix + trailing window
//	/debug/history?rate=1&n=100                  counter rates, downsampled
func (s *Store) HistoryHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q, err := ParseHistoryQuery(r.URL.RawQuery)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = s.WriteJSON(w, q)
	})
}

// derivedRates converts cumulative counter points to per-second rates over
// each inter-sample gap. A value drop (obs.Reset, process restart in a
// future persisted form) is treated as a counter reset: the new value is
// the whole delta. The first point has no predecessor and is dropped.
func derivedRates(pts [][2]float64) [][2]float64 {
	if len(pts) < 2 {
		return nil
	}
	out := make([][2]float64, 0, len(pts)-1)
	for i := 1; i < len(pts); i++ {
		dtMs := pts[i][0] - pts[i-1][0]
		if dtMs <= 0 {
			continue
		}
		delta := pts[i][1] - pts[i-1][1]
		if delta < 0 {
			delta = pts[i][1]
		}
		out = append(out, [2]float64{pts[i][0], delta / (dtMs / 1000)})
	}
	return out
}

func clipRange(pts [][2]float64, from, to int64) [][2]float64 {
	if from == 0 && to == 0 {
		return pts
	}
	out := pts[:0]
	for _, p := range pts {
		if from != 0 && int64(p[0]) < from {
			continue
		}
		if to != 0 && int64(p[0]) > to {
			continue
		}
		out = append(out, p)
	}
	return out
}

// downsample keeps at most n points by striding from the tail backwards,
// so the most recent sample always survives.
func downsample(pts [][2]float64, n int) [][2]float64 {
	if n <= 0 || len(pts) <= n {
		return pts
	}
	stride := (len(pts) + n - 1) / n
	out := make([][2]float64, 0, n)
	for i := len(pts) - 1; i >= 0; i -= stride {
		out = append(out, pts[i])
	}
	// Reverse back into chronological order.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

package tsdb_test

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lrm/internal/obs"
	"lrm/internal/obs/tsdb"
)

// evalOne runs a single-name query and returns its points (nil when the
// series does not exist or has no points).
func evalOne(s *tsdb.Store, name string, rate bool, now time.Time) [][2]float64 {
	for _, sn := range s.Eval(tsdb.Query{Names: []string{name}, Rate: rate}, now) {
		if sn.Name == name {
			return sn.Points
		}
	}
	return nil
}

func TestSampleRecordsCountersGaugesFloats(t *testing.T) {
	c := obs.GetCounter("tsdbtest.sample.ctr")
	g := obs.GetGauge("tsdbtest.sample.gauge")
	fg := obs.GetFloatGauge("tsdbtest.sample.float")
	t.Cleanup(obs.Reset)

	s := tsdb.New(tsdb.Config{})
	t0 := time.UnixMilli(1_000_000)
	c.Add(5)
	g.Set(7)
	fg.Set(2.5)
	s.SampleOnce(t0)
	c.Add(5)
	g.Set(3)
	s.SampleOnce(t0.Add(2 * time.Second))

	now := t0.Add(3 * time.Second)
	pts := evalOne(s, "tsdbtest.sample.ctr", false, now)
	if len(pts) != 2 || pts[0][1] != 5 || pts[1][1] != 10 {
		t.Fatalf("counter points = %v, want raw values [5 10]", pts)
	}
	if pts[0][0] >= pts[1][0] {
		t.Fatalf("points not chronological: %v", pts)
	}
	if got := evalOne(s, "tsdbtest.sample.gauge", false, now); len(got) != 2 || got[1][1] != 3 {
		t.Fatalf("gauge points = %v, want last 3", got)
	}
	if got := evalOne(s, "tsdbtest.sample.float", false, now); len(got) != 2 || got[1][1] != 2.5 {
		t.Fatalf("float gauge points = %v, want 2.5", got)
	}
	if s.Samples() != 2 {
		t.Fatalf("Samples() = %d, want 2", s.Samples())
	}
}

func TestCounterRateDerivation(t *testing.T) {
	c := obs.GetCounter("tsdbtest.rate.ctr")
	t.Cleanup(obs.Reset)

	s := tsdb.New(tsdb.Config{})
	t0 := time.UnixMilli(2_000_000)
	c.Add(10)
	s.SampleOnce(t0)
	c.Add(6)
	s.SampleOnce(t0.Add(2 * time.Second))

	pts := evalOne(s, "tsdbtest.rate.ctr", true, t0.Add(3*time.Second))
	// The first raw point has no predecessor: one rate point remains.
	if len(pts) != 1 {
		t.Fatalf("rate points = %v, want exactly 1", pts)
	}
	if got := pts[0][1]; math.Abs(got-3) > 1e-9 { // 6 over 2s
		t.Fatalf("rate = %v, want 3/s", got)
	}
}

func TestCounterResetClampsRate(t *testing.T) {
	c := obs.GetCounter("tsdbtest.reset.ctr")
	t.Cleanup(obs.Reset)

	s := tsdb.New(tsdb.Config{})
	t0 := time.UnixMilli(3_000_000)
	c.Add(100)
	s.SampleOnce(t0)
	obs.Reset() // counter rewinds to 0
	c.Add(4)
	s.SampleOnce(t0.Add(time.Second))

	pts := evalOne(s, "tsdbtest.reset.ctr", true, t0.Add(2*time.Second))
	if len(pts) != 1 {
		t.Fatalf("rate points = %v, want 1", pts)
	}
	// The rewind must clamp to "new value is the whole delta", never negative.
	if got := pts[0][1]; got < 0 || math.Abs(got-4) > 1e-9 {
		t.Fatalf("post-reset rate = %v, want 4/s", got)
	}
}

func TestHistogramDerivedSeries(t *testing.T) {
	h := obs.GetHistogram("tsdbtest.hist", []int64{10, 100, 1000})
	t.Cleanup(obs.Reset)

	s := tsdb.New(tsdb.Config{})
	t0 := time.UnixMilli(4_000_000)
	s.SampleOnce(t0) // establishes the window baseline; no p99 point (count 0)
	for i := 0; i < 99; i++ {
		h.Observe(5)
	}
	h.Observe(500)
	s.SampleOnce(t0.Add(time.Second))

	now := t0.Add(2 * time.Second)
	cnt := evalOne(s, "tsdbtest.hist.count", false, now)
	if len(cnt) != 2 || cnt[1][1] != 100 {
		t.Fatalf("count points = %v, want last 100", cnt)
	}
	p99 := evalOne(s, "tsdbtest.hist.p99", false, now)
	if len(p99) != 1 {
		t.Fatalf("p99 points = %v, want exactly 1 (no observations before first pass)", p99)
	}
	// rank = 0.99*100 = 99 -> the 99th observation is a 5, bucket bound 10.
	if p99[0][1] != 10 {
		t.Fatalf("windowed p99 = %v, want bucket bound 10", p99[0][1])
	}

	// A pass with no new observations adds no p99 point.
	s.SampleOnce(t0.Add(2 * time.Second))
	if got := evalOne(s, "tsdbtest.hist.p99", false, t0.Add(3*time.Second)); len(got) != 1 {
		t.Fatalf("idle pass added p99 points: %v", got)
	}
}

func TestRingCapacityWrap(t *testing.T) {
	c := obs.GetCounter("tsdbtest.wrap.ctr")
	t.Cleanup(obs.Reset)

	s := tsdb.New(tsdb.Config{Capacity: 4})
	t0 := time.UnixMilli(5_000_000)
	for i := 0; i < 10; i++ {
		c.Inc()
		s.SampleOnce(t0.Add(time.Duration(i) * time.Second))
	}
	pts := evalOne(s, "tsdbtest.wrap.ctr", false, t0.Add(time.Hour))
	if len(pts) != 4 {
		t.Fatalf("retained %d points, want capacity 4", len(pts))
	}
	if pts[len(pts)-1][1] != 10 {
		t.Fatalf("newest point = %v, want the final value 10", pts[len(pts)-1])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i][0] <= pts[i-1][0] {
			t.Fatalf("points not chronological after wrap: %v", pts)
		}
	}
}

func TestMaxSeriesCapCountsDropped(t *testing.T) {
	obs.GetCounter("tsdbtest.cap.a")
	obs.GetCounter("tsdbtest.cap.b")
	obs.GetCounter("tsdbtest.cap.c")
	t.Cleanup(obs.Reset)

	s := tsdb.New(tsdb.Config{MaxSeries: 2})
	s.SampleOnce(time.UnixMilli(6_000_000))
	if s.DroppedSeries() == 0 {
		t.Fatal("MaxSeries cap never counted a dropped series")
	}
	if got := len(s.Eval(tsdb.Query{}, time.Now())); got > 2 {
		t.Fatalf("store retained %d series, cap is 2", got)
	}
}

func TestRuntimeBridgeSeries(t *testing.T) {
	s := tsdb.New(tsdb.Config{})
	s.SampleOnce(time.Now())
	series := s.Eval(tsdb.Query{Match: "runtime."}, time.Now())
	names := map[string]bool{}
	for _, sn := range series {
		names[sn.Name] = true
	}
	for _, want := range []string{"runtime.goroutines", "runtime.heap_bytes", "runtime.total_alloc_bytes", "runtime.gc_cycles"} {
		if !names[want] {
			t.Errorf("runtime bridge missing series %q (have %v)", want, names)
		}
	}
	for _, sn := range series {
		if sn.Name == "runtime.goroutines" && sn.Points[len(sn.Points)-1][1] < 1 {
			t.Errorf("runtime.goroutines = %v, want >= 1", sn.Points)
		}
	}
}

func TestEvalClipAndDownsample(t *testing.T) {
	g := obs.GetGauge("tsdbtest.clip.gauge")
	t.Cleanup(obs.Reset)

	s := tsdb.New(tsdb.Config{})
	t0 := time.UnixMilli(7_000_000)
	for i := 0; i < 20; i++ {
		g.Set(int64(i))
		s.SampleOnce(t0.Add(time.Duration(i) * time.Second))
	}
	now := t0.Add(time.Hour)

	// Clip to the middle ten seconds.
	from, to := t0.Add(5*time.Second).UnixMilli(), t0.Add(14*time.Second).UnixMilli()
	series := s.Eval(tsdb.Query{Names: []string{"tsdbtest.clip.gauge"}, From: from, To: to}, now)
	if len(series) != 1 || len(series[0].Points) != 10 {
		t.Fatalf("clipped eval = %+v, want 10 points", series)
	}
	for _, p := range series[0].Points {
		if int64(p[0]) < from || int64(p[0]) > to {
			t.Fatalf("point %v outside [%d,%d]", p, from, to)
		}
	}

	// Downsample to 5: newest point must survive.
	series = s.Eval(tsdb.Query{Names: []string{"tsdbtest.clip.gauge"}, MaxPoints: 5}, now)
	pts := series[0].Points
	if len(pts) > 5 {
		t.Fatalf("downsample kept %d points, want <= 5", len(pts))
	}
	if pts[len(pts)-1][1] != 19 {
		t.Fatalf("downsample dropped the newest point: %v", pts)
	}

	// Since selects the trailing window relative to now.
	series = s.Eval(tsdb.Query{Names: []string{"tsdbtest.clip.gauge"}, Since: now.Sub(t0.Add(15 * time.Second))}, now)
	if len(series) != 1 || len(series[0].Points) != 5 {
		t.Fatalf("since eval = %+v, want the last 5 points", series)
	}
}

func TestStartStopLifecycle(t *testing.T) {
	s := tsdb.New(tsdb.Config{Interval: 5 * time.Millisecond})
	s.Start()
	s.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for s.Samples() < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if s.Samples() < 3 {
		t.Fatal("background sampler never accumulated 3 passes")
	}
	s.Stop()
	after := s.Samples()
	s.Stop() // idempotent
	time.Sleep(20 * time.Millisecond)
	if got := s.Samples(); got != after {
		t.Fatalf("samples advanced after Stop: %d -> %d", after, got)
	}
}

func TestDumpFiles(t *testing.T) {
	c := obs.GetCounter("tsdbtest.dump.ctr")
	t.Cleanup(obs.Reset)
	c.Add(3)

	s := tsdb.New(tsdb.Config{})
	// Two passes: the dash renders counters as rates, which need a
	// predecessor sample to exist.
	s.SampleOnce(time.Now().Add(-time.Second))
	c.Add(2)
	s.SampleOnce(time.Now())

	dir := t.TempDir()
	hp, dp := filepath.Join(dir, "hist.json"), filepath.Join(dir, "dash.html")
	if err := s.DumpFiles(hp, dp); err != nil {
		t.Fatalf("DumpFiles: %v", err)
	}
	hist, err := os.ReadFile(hp)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Samples int64             `json:"samples"`
		Series  []json.RawMessage `json:"series"`
	}
	if err := json.Unmarshal(hist, &doc); err != nil {
		t.Fatalf("history dump is not valid JSON: %v", err)
	}
	if doc.Samples != 2 || len(doc.Series) == 0 {
		t.Fatalf("history dump: samples=%d series=%d, want 2 and >0", doc.Samples, len(doc.Series))
	}
	dash, err := os.ReadFile(dp)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<!DOCTYPE html>", "<svg", "tsdbtest.dump.ctr"} {
		if !bytes.Contains(dash, []byte(want)) {
			t.Errorf("dash dump missing %q", want)
		}
	}
	if bytes.Contains(dash, []byte("<script")) {
		t.Error("dash must be self-contained: no scripts")
	}
	if i := strings.Index(string(dash), "src="); i >= 0 {
		t.Error("dash must be self-contained: no external assets")
	}
}

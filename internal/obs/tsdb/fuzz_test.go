package tsdb_test

import (
	"io"
	"testing"
	"time"

	"lrm/internal/obs"
	"lrm/internal/obs/tsdb"
)

// FuzzHistoryQuery feeds arbitrary query strings through the /debug/history
// parser and, when they parse, through a small store's Eval and WriteJSON —
// no input may panic, and parsed queries must satisfy their documented
// invariants.
func FuzzHistoryQuery(f *testing.F) {
	for _, seed := range []string{
		"",
		"name=a",
		"name=a&name=b&rate=1",
		"match=serve.&since=5m",
		"from=1&to=2&n=3",
		"rate=true",
		"since=-5m",
		"n=-1",
		"from=2&to=1",
		"%zz",
		"name=&match=",
		"rate=yes",
		"since=1h30m&n=100000",
	} {
		f.Add(seed)
	}

	obs.GetCounter("tsdbtest.fuzz.ctr").Add(7)
	obs.GetGauge("tsdbtest.fuzz.gauge").Set(3)
	store := tsdb.New(tsdb.Config{Capacity: 8})
	t0 := time.UnixMilli(1_000_000)
	for i := 0; i < 3; i++ {
		store.SampleOnce(t0.Add(time.Duration(i) * time.Second))
	}

	f.Fuzz(func(t *testing.T, raw string) {
		q, err := tsdb.ParseHistoryQuery(raw)
		if err != nil {
			return
		}
		if q.Since < 0 {
			t.Fatalf("parsed Since is negative: %v", q.Since)
		}
		if q.From < 0 || q.To < 0 {
			t.Fatalf("parsed From/To negative: %d/%d", q.From, q.To)
		}
		if q.From != 0 && q.To != 0 && q.From > q.To {
			t.Fatalf("parser admitted inverted range %d > %d", q.From, q.To)
		}
		if q.MaxPoints < 0 {
			t.Fatalf("parsed MaxPoints negative: %d", q.MaxPoints)
		}
		for _, n := range q.Names {
			if n == "" {
				t.Fatal("parser admitted an empty series name")
			}
		}
		series := store.Eval(q, t0.Add(time.Minute))
		for _, sn := range series {
			if q.MaxPoints > 0 && len(sn.Points) > q.MaxPoints {
				t.Fatalf("series %s has %d points, n=%d", sn.Name, len(sn.Points), q.MaxPoints)
			}
			for i := 1; i < len(sn.Points); i++ {
				if sn.Points[i][0] < sn.Points[i-1][0] {
					t.Fatalf("series %s points out of order", sn.Name)
				}
			}
		}
		if err := store.WriteJSON(io.Discard, q); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
	})
}

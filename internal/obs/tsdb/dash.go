package tsdb

import (
	"fmt"
	"html/template"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"time"
)

// The dashboard is deliberately self-contained: server-rendered HTML with
// inline SVG sparklines and inline CSS, no JavaScript, no external assets
// — it must render inside an air-gapped cluster and survive being saved as
// a CI artifact. Counter series are drawn as per-second rates (the raw
// cumulative line is a ramp that says nothing); gauges draw as stored.

// dashSeries is one rendered row.
type dashSeries struct {
	Name    string
	Kind    string
	Last    string
	Min     string
	Max     string
	Spark   template.HTML
	Samples int
}

// dashGroup is one collapsible section of related series.
type dashGroup struct {
	Name   string
	Open   bool
	Series []dashSeries
}

type dashDoc struct {
	GeneratedAt   string
	IntervalMs    int64
	Samples       int64
	SeriesCount   int
	DroppedSeries int64
	Groups        []dashGroup
}

// openGroups are the sections expanded by default: the serving-path view
// the SLO work targets. Everything else (per-stage kernels, internals)
// stays one click away.
var openGroups = map[string]bool{
	"serve": true, "slo": true, "quality": true, "runtime": true, "profile": true,
}

const sparkW, sparkH = 240, 28

var dashTmpl = template.Must(template.New("dash").Parse(`<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<meta http-equiv="refresh" content="5">
<title>lrm telemetry</title>
<style>
body{font:13px/1.5 system-ui,sans-serif;margin:1.5em;background:#fafafa;color:#222}
h1{font-size:1.2em} summary{cursor:pointer;font-weight:600;padding:.3em 0}
table{border-collapse:collapse;width:100%;max-width:72em}
td,th{padding:2px 10px;text-align:left;white-space:nowrap;border-bottom:1px solid #eee}
td.num{text-align:right;font-variant-numeric:tabular-nums}
svg{vertical-align:middle} .meta{color:#777}
code{background:#f0f0f0;padding:0 3px;border-radius:3px}
</style></head><body>
<h1>lrm telemetry history</h1>
<p class="meta">generated {{.GeneratedAt}} · interval {{.IntervalMs}} ms ·
{{.Samples}} sampling passes · {{.SeriesCount}} series{{if .DroppedSeries}} ·
<strong>{{.DroppedSeries}} series dropped by the MaxSeries cap</strong>{{end}} ·
raw data at <code>/debug/history</code></p>
{{range .Groups}}<details{{if .Open}} open{{end}}><summary>{{.Name}} ({{len .Series}})</summary>
<table><tr><th>series</th><th>kind</th><th></th><th>last</th><th>min</th><th>max</th><th>samples</th></tr>
{{range .Series}}<tr><td>{{.Name}}</td><td>{{.Kind}}</td><td>{{.Spark}}</td>
<td class="num">{{.Last}}</td><td class="num">{{.Min}}</td><td class="num">{{.Max}}</td>
<td class="num">{{.Samples}}</td></tr>
{{end}}</table></details>
{{end}}</body></html>
`))

// WriteDash renders the dashboard HTML — the shared body of the
// /debug/dash handler and the -dash file dump.
func (s *Store) WriteDash(w io.Writer) error {
	series := s.Eval(Query{Rate: true, MaxPoints: sparkW / 2}, time.Now())

	groups := map[string]*dashGroup{}
	var order []string
	for _, sn := range series {
		g := sn.Name
		if i := strings.IndexByte(g, '.'); i > 0 {
			g = g[:i]
		}
		dg := groups[g]
		if dg == nil {
			dg = &dashGroup{Name: g, Open: openGroups[g]}
			groups[g] = dg
			order = append(order, g)
		}
		dg.Series = append(dg.Series, renderSeries(sn))
	}
	sort.Slice(order, func(i, j int) bool {
		// Open groups first, then alphabetical.
		oi, oj := openGroups[order[i]], openGroups[order[j]]
		if oi != oj {
			return oi
		}
		return order[i] < order[j]
	})

	doc := dashDoc{
		GeneratedAt:   time.Now().UTC().Format(time.RFC3339),
		IntervalMs:    s.cfg.Interval.Milliseconds(),
		Samples:       s.Samples(),
		SeriesCount:   len(series),
		DroppedSeries: s.DroppedSeries(),
	}
	for _, g := range order {
		doc.Groups = append(doc.Groups, *groups[g])
	}
	return dashTmpl.Execute(w, doc)
}

// DashHandler serves the self-contained HTML dashboard.
func (s *Store) DashHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_ = s.WriteDash(w)
	})
}

func renderSeries(sn SeriesSnap) dashSeries {
	ds := dashSeries{Name: sn.Name, Kind: sn.Kind, Samples: len(sn.Points)}
	if sn.Kind == KindCounter.String() {
		ds.Kind = "rate/s"
	}
	if len(sn.Points) == 0 {
		ds.Last, ds.Min, ds.Max = "–", "–", "–"
		return ds
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range sn.Points {
		lo = math.Min(lo, p[1])
		hi = math.Max(hi, p[1])
	}
	ds.Last = formatVal(sn.Points[len(sn.Points)-1][1])
	ds.Min = formatVal(lo)
	ds.Max = formatVal(hi)
	ds.Spark = sparkline(sn.Points, lo, hi)
	return ds
}

// sparkline renders the points as an inline SVG polyline, x spread evenly
// (the sampler's cadence is regular enough that time-proportional x adds
// nothing but float noise) and y normalised to [lo, hi].
func sparkline(pts [][2]float64, lo, hi float64) template.HTML {
	var b strings.Builder
	fmt.Fprintf(&b, `<svg width="%d" height="%d" viewBox="0 0 %d %d">`, sparkW, sparkH, sparkW, sparkH)
	span := hi - lo
	if span <= 0 || math.IsNaN(span) || math.IsInf(span, 0) {
		span = 1
	}
	b.WriteString(`<polyline fill="none" stroke="#3366cc" stroke-width="1.2" points="`)
	n := len(pts)
	for i, p := range pts {
		x := float64(sparkW-2)*float64(i)/float64(max(n-1, 1)) + 1
		y := float64(sparkH-3)*(1-(p[1]-lo)/span) + 1.5
		if math.IsNaN(y) || math.IsInf(y, 0) {
			y = float64(sparkH) / 2
		}
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%.1f,%.1f", x, y)
	}
	b.WriteString(`"/></svg>`)
	return template.HTML(b.String())
}

// formatVal prints a value compactly with SI-ish thousands suffixes, the
// only formatting a sparkline label row needs.
func formatVal(v float64) string {
	av := math.Abs(v)
	switch {
	case math.IsNaN(v) || math.IsInf(v, 0):
		return "–"
	case av >= 1e12:
		return fmt.Sprintf("%.2fT", v/1e12)
	case av >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case av >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case av >= 1e4:
		return fmt.Sprintf("%.1fk", v/1e3)
	//lrmlint:ignore floatcmp exact integralness check picks the label format, not a numeric decision
	case av == math.Trunc(av):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

package tsdb_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lrm/internal/obs"
	"lrm/internal/obs/tsdb"
)

// TestHandlersUnderConcurrentSampling hammers /debug/history and
// /debug/dash while the background sampler runs and other goroutines
// mutate and Reset the registry — the race-detector proof that queries,
// sampling passes, and obs.Reset can overlap freely.
func TestHandlersUnderConcurrentSampling(t *testing.T) {
	c := obs.GetCounter("tsdbtest.race.ctr")
	h := obs.GetHistogram("tsdbtest.race.hist", nil)
	t.Cleanup(obs.Reset)

	s := tsdb.New(tsdb.Config{Interval: time.Millisecond, Capacity: 32})
	s.Start()
	defer s.Stop()

	mux := http.NewServeMux()
	mux.Handle("/debug/history", s.HistoryHandler())
	mux.Handle("/debug/dash", s.DashHandler())
	ts := httptest.NewServer(mux)
	defer ts.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // writer: counters + histogram observations
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.Inc()
			h.Observe(int64(i%1000 + 1))
		}
	}()
	go func() { // resetter: the documented Reset race
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			obs.Reset()
			time.Sleep(2 * time.Millisecond)
		}
	}()

	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		for _, path := range []string{
			"/debug/history",
			"/debug/history?match=tsdbtest.race.&rate=1&n=10",
			"/debug/dash",
		} {
			resp, err := http.Get(ts.URL + path)
			if err != nil {
				t.Fatalf("GET %s: %v", path, err)
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatalf("GET %s: read: %v", path, err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
			}
			if strings.HasPrefix(path, "/debug/history") {
				var doc map[string]any
				if err := json.Unmarshal(body, &doc); err != nil {
					t.Fatalf("GET %s: invalid JSON under concurrent sampling: %v", path, err)
				}
			} else if !strings.Contains(string(body), "<svg") {
				t.Fatalf("GET %s: dash lost its sparklines under load", path)
			}
		}
	}
	close(stop)
	wg.Wait()

	if s.Samples() < 2 {
		t.Fatalf("background sampler recorded %d passes during the run", s.Samples())
	}
}

func TestHistoryHandlerRejectsBadQuery(t *testing.T) {
	s := tsdb.New(tsdb.Config{})
	ts := httptest.NewServer(s.HistoryHandler())
	defer ts.Close()

	for _, raw := range []string{"bogus=1", "since=never", "rate=2", "n=0", "from=9&to=3"} {
		resp, err := http.Get(ts.URL + "/?" + raw)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("query %q: status %d, want 400", raw, resp.StatusCode)
		}
	}
}

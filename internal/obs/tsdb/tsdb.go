// Package tsdb is the telemetry-history layer on top of internal/obs: a
// fixed-memory ring-buffer time-series store that samples the obs registry
// (plus a runtime/metrics bridge — heap, GC pauses, scheduler latency,
// goroutine count) at a configurable interval and serves the history back
// as JSON range queries (/debug/history, query.go) and a self-contained
// HTML dashboard with inline sparklines (/debug/dash, dash.go).
//
// # Memory model
//
// Every series is a fixed-capacity ring of (timestamp, value) pairs; the
// store never grows past Config.MaxSeries rings of Config.Capacity samples,
// so the resident cost is bounded at construction time no matter how long
// the process runs or how many metrics register. Series beyond the cap are
// counted (DroppedSeries) and surfaced in query responses rather than
// silently ignored.
//
// # What gets sampled
//
// Counters and gauges record their raw values; rates for counters are
// derived at query time from consecutive samples (resets — obs.Reset or a
// counter rewind — clamp to a fresh start instead of a negative rate).
// Histograms contribute two derived series: <name>.count (cumulative
// observation count, counter kind) and <name>.p99 (the 99th-percentile
// bucket bound of the observations that arrived since the previous sample,
// gauge kind — a windowed quantile, not a since-birth one). The runtime
// bridge (runtime.go) adds the Go runtime series under the "runtime."
// prefix.
//
// The sampler is a background goroutine owned by whoever built the store
// (lrmserve's startup/drain, lrmbench/lrmexp's -history flag); nothing in
// this package touches the compression hot paths, so the disabled-overhead
// contract of internal/obs is unaffected by linking it.
package tsdb

import (
	"os"
	"sort"
	"sync"
	"time"

	"lrm/internal/obs"
)

// Kind classifies a series for query-time derivation: counter series can
// be converted to per-second rates, gauge series are reported as stored.
type Kind uint8

const (
	// KindGauge samples are instantaneous values.
	KindGauge Kind = iota
	// KindCounter samples are cumulative totals; rates derive from deltas.
	KindCounter
)

func (k Kind) String() string {
	if k == KindCounter {
		return "counter"
	}
	return "gauge"
}

// Config tunes a Store. The zero value is production-usable.
type Config struct {
	// Interval is the sampling period of Start's background goroutine.
	// 0 means 1s.
	Interval time.Duration
	// Capacity is the number of samples each series ring retains.
	// 0 means 512 (~8.5 min of history at the default interval).
	Capacity int
	// MaxSeries bounds how many distinct series the store will track;
	// later registrations are counted as dropped. 0 means 1024.
	MaxSeries int
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Capacity <= 0 {
		c.Capacity = 512
	}
	if c.MaxSeries <= 0 {
		c.MaxSeries = 1024
	}
	return c
}

// series is one fixed-capacity ring of samples.
type series struct {
	kind Kind
	t    []int64   // unix milliseconds, len == cap
	v    []float64 // len == cap
	head int       // next write position
	n    int       // filled samples, <= cap
}

func (s *series) push(tms int64, v float64) {
	s.t[s.head] = tms
	s.v[s.head] = v
	s.head = (s.head + 1) % len(s.t)
	if s.n < len(s.t) {
		s.n++
	}
}

// points appends the ring's samples in chronological order to dst.
func (s *series) points(dst [][2]float64) [][2]float64 {
	start := (s.head - s.n + len(s.t)) % len(s.t)
	for i := 0; i < s.n; i++ {
		j := (start + i) % len(s.t)
		dst = append(dst, [2]float64{float64(s.t[j]), s.v[j]})
	}
	return dst
}

// Store is the fixed-memory time-series store. Build with New, feed with
// Start (background sampler) or SampleOnce (manual, for tests and
// deterministic dumps), query with WriteJSON/WriteDash or the HTTP
// handlers, and stop with Stop.
type Store struct {
	cfg Config

	mu       sync.Mutex
	series   map[string]*series
	order    []string                    // insertion order, for stable exposition
	dropped  int64                       // series refused by the MaxSeries cap
	samples  int64                       // completed sampling passes
	prevHist map[string]obs.HistSnapshot // last bucket counts, for windowed p99

	rt *runtimeSampler

	lifecycle sync.Mutex
	stopc     chan struct{}
	done      chan struct{}
}

// New builds a Store. It performs no sampling until Start or SampleOnce.
func New(cfg Config) *Store {
	return &Store{
		cfg:      cfg.withDefaults(),
		series:   make(map[string]*series),
		prevHist: make(map[string]obs.HistSnapshot),
		rt:       newRuntimeSampler(),
	}
}

// Interval returns the configured sampling period.
func (s *Store) Interval() time.Duration { return s.cfg.Interval }

// Start launches the background sampler goroutine. Calling Start on an
// already-started store is a no-op; pair with Stop.
func (s *Store) Start() {
	s.lifecycle.Lock()
	defer s.lifecycle.Unlock()
	if s.stopc != nil {
		return
	}
	s.stopc = make(chan struct{})
	s.done = make(chan struct{})
	go func(stopc, done chan struct{}) {
		defer close(done)
		tick := time.NewTicker(s.cfg.Interval)
		defer tick.Stop()
		// One immediate pass so short-lived processes still record history.
		s.SampleOnce(time.Now())
		for {
			select {
			case <-stopc:
				return
			case now := <-tick.C:
				s.SampleOnce(now)
			}
		}
	}(s.stopc, s.done)
}

// Stop halts the background sampler and takes one final sample so the
// history includes the state at shutdown (e.g. the tail of a drain).
// Safe to call without Start, and idempotent.
func (s *Store) Stop() {
	s.lifecycle.Lock()
	defer s.lifecycle.Unlock()
	if s.stopc == nil {
		return
	}
	close(s.stopc)
	<-s.done
	s.stopc, s.done = nil, nil
	s.SampleOnce(time.Now())
}

// SampleOnce performs one sampling pass at the given timestamp: the full
// obs registry snapshot plus the runtime bridge. It is safe to call
// concurrently with queries, with the background sampler, and with
// obs.Reset (a reset simply records the zeroed values; rate derivation
// treats the rewind as a counter reset).
func (s *Store) SampleOnce(now time.Time) {
	snap := obs.Snapshot()
	tms := now.UnixMilli()

	s.mu.Lock()
	defer s.mu.Unlock()
	for _, name := range sortedNames(snap.Counters) {
		s.record(name, KindCounter, tms, float64(snap.Counters[name]))
	}
	for _, name := range sortedNames(snap.Gauges) {
		s.record(name, KindGauge, tms, float64(snap.Gauges[name]))
	}
	for _, name := range sortedNames(snap.Floats) {
		s.record(name, KindGauge, tms, snap.Floats[name])
	}
	for _, name := range sortedNames(snap.Histograms) {
		h := snap.Histograms[name]
		s.record(name+".count", KindCounter, tms, float64(h.Count))
		if p99, ok := s.windowP99(name, h); ok {
			s.record(name+".p99", KindGauge, tms, p99)
		}
	}
	for _, rs := range s.rt.sample() {
		s.record(rs.name, rs.kind, tms, rs.value)
	}
	s.samples++
}

// windowP99 estimates the 99th percentile of the observations a histogram
// received since the previous sampling pass, as the upper bound of the
// bucket containing the quantile. Returns ok == false when the window saw
// no observations (or the histogram shape changed under a Reset race).
// Caller holds s.mu.
func (s *Store) windowP99(name string, h obs.HistSnapshot) (float64, bool) {
	prev, had := s.prevHist[name]
	s.prevHist[name] = h
	if !had || len(prev.Counts) != len(h.Counts) {
		prev = obs.HistSnapshot{Counts: make([]int64, len(h.Counts))}
	}
	var total int64
	deltas := make([]int64, len(h.Counts))
	for i := range h.Counts {
		d := h.Counts[i] - prev.Counts[i]
		if d < 0 { // obs.Reset between passes: the window restarts at zero
			d = h.Counts[i]
		}
		deltas[i] = d
		total += d
	}
	if total == 0 {
		return 0, false
	}
	return bucketQuantile(h.Bounds, deltas, total, 0.99), true
}

// bucketQuantile returns the bucket upper bound at quantile q of counts
// over ascending bounds (the last bucket is +Inf and reports the last
// finite bound — the conventional conservative clamp).
func bucketQuantile(bounds []int64, counts []int64, total int64, q float64) float64 {
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			if i < len(bounds) {
				return float64(bounds[i])
			}
			break
		}
	}
	if len(bounds) == 0 {
		return 0
	}
	return float64(bounds[len(bounds)-1])
}

// record appends one sample, creating the series if the cap allows.
// Caller holds s.mu.
func (s *Store) record(name string, kind Kind, tms int64, v float64) {
	sr := s.series[name]
	if sr == nil {
		if len(s.series) >= s.cfg.MaxSeries {
			s.dropped++
			return
		}
		sr = &series{
			kind: kind,
			t:    make([]int64, s.cfg.Capacity),
			v:    make([]float64, s.cfg.Capacity),
		}
		s.series[name] = sr
		s.order = append(s.order, name)
	}
	sr.push(tms, v)
}

// DroppedSeries reports how many series registrations the MaxSeries cap
// refused.
func (s *Store) DroppedSeries() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Samples reports how many sampling passes have completed.
func (s *Store) Samples() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.samples
}

// SeriesSnap is one series' data in a query response.
type SeriesSnap struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	// Points are [unix_ms, value] pairs in chronological order. For
	// counter series queried with rate=1 the value is a per-second rate
	// over the preceding inter-sample gap.
	Points [][2]float64 `json:"points"`
}

// Mount registers the store's HTTP handlers on the obs debug mux:
// /debug/history (JSON range queries) and /debug/dash (HTML dashboard).
// Call before building muxes via obs.Handler (e.g. before serve.New).
func (s *Store) Mount() {
	obs.RegisterDebugHandler("/debug/history", s.HistoryHandler())
	obs.RegisterDebugHandler("/debug/dash", s.DashHandler())
}

// DumpFiles writes the retained history as JSON to historyPath and the
// rendered dashboard as HTML to dashPath — the -history/-dash file dumps
// of lrmbench and lrmexp. Empty paths are skipped.
func (s *Store) DumpFiles(historyPath, dashPath string) error {
	if historyPath != "" {
		f, err := os.Create(historyPath)
		if err != nil {
			return err
		}
		err = s.WriteJSON(f, Query{})
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	if dashPath != "" {
		f, err := os.Create(dashPath)
		if err != nil {
			return err
		}
		err = s.WriteDash(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

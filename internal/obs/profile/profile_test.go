package profile

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"encoding/xml"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"testing"
	"time"

	"lrm/internal/obs"
)

// --- synthetic profile builder -----------------------------------------
//
// A tiny protobuf writer mirroring the one in pprofparse's tests, but
// generalized: any sample types, stacks, values, and string labels. Tests
// here need deterministic profile bytes, not the runtime's.

type pbe struct{ buf []byte }

func (e *pbe) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

func (e *pbe) varintField(num int, v uint64) {
	e.uvarint(uint64(num)<<3 | 0)
	e.uvarint(v)
}

func (e *pbe) bytesField(num int, b []byte) {
	e.uvarint(uint64(num)<<3 | 2)
	e.uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

func (e *pbe) msgField(num int, fn func(*pbe)) {
	var inner pbe
	fn(&inner)
	e.bytesField(num, inner.buf)
}

func (e *pbe) packedField(num int, vs ...uint64) {
	var inner pbe
	for _, v := range vs {
		inner.uvarint(v)
	}
	e.bytesField(num, inner.buf)
}

type tsample struct {
	stack  []string // leaf-first function names
	values []int64
	labels map[string]string
}

func buildProfile(types [][2]string, samples []tsample) []byte {
	strIdx := map[string]uint64{"": 0}
	strs := []string{""}
	intern := func(s string) uint64 {
		if i, ok := strIdx[s]; ok {
			return i
		}
		i := uint64(len(strs))
		strs = append(strs, s)
		strIdx[s] = i
		return i
	}
	funcIdx := map[string]uint64{}
	funcOrder := []string{}
	fn := func(name string) uint64 {
		if i, ok := funcIdx[name]; ok {
			return i
		}
		i := uint64(len(funcIdx) + 1)
		funcIdx[name] = i
		funcOrder = append(funcOrder, name)
		intern(name)
		return i
	}

	var e pbe
	for _, t := range types {
		ti, ui := intern(t[0]), intern(t[1])
		e.msgField(1, func(m *pbe) { m.varintField(1, ti); m.varintField(2, ui) })
	}
	for _, s := range samples {
		locs := make([]uint64, 0, len(s.stack))
		for _, f := range s.stack {
			locs = append(locs, fn(f))
		}
		vals := make([]uint64, 0, len(s.values))
		for _, v := range s.values {
			vals = append(vals, uint64(v))
		}
		lkeys := make([]string, 0, len(s.labels))
		for k := range s.labels {
			lkeys = append(lkeys, k)
		}
		e.msgField(2, func(m *pbe) {
			m.packedField(1, locs...)
			m.packedField(2, vals...)
			for _, k := range lkeys {
				ki, vi := intern(k), intern(s.labels[k])
				m.msgField(3, func(l *pbe) { l.varintField(1, ki); l.varintField(2, vi) })
			}
		})
	}
	for _, name := range funcOrder {
		id := funcIdx[name]
		e.msgField(4, func(m *pbe) {
			m.varintField(1, id)
			m.msgField(4, func(l *pbe) { l.varintField(1, id) })
		})
		ni := strIdx[name]
		e.msgField(5, func(m *pbe) { m.varintField(1, id); m.varintField(2, ni) })
	}
	for _, s := range strs {
		e.bytesField(6, []byte(s))
	}
	return e.buf
}

var cpuTypes = [][2]string{{"samples", "count"}, {"cpu", "nanoseconds"}}

// cpuWindow is the canonical synthetic CPU window used across the tests:
//
//	main<-encode  400ns  stage=chunk_compress codec=sz
//	main<-decode  200ns  stage=chunk_decode
//	main          400ns  unlabeled
func cpuWindow() []byte {
	return buildProfile(cpuTypes, []tsample{
		{stack: []string{"encode", "main"}, values: []int64{4, 400},
			labels: map[string]string{"stage": "chunk_compress", "codec": "sz"}},
		{stack: []string{"decode", "main"}, values: []int64{2, 200},
			labels: map[string]string{"stage": "chunk_decode"}},
		{stack: []string{"main"}, values: []int64{4, 400}},
	})
}

func heapWindow(inuse, alloc int64) []byte {
	return buildProfile(
		[][2]string{{"alloc_objects", "count"}, {"alloc_space", "bytes"},
			{"inuse_objects", "count"}, {"inuse_space", "bytes"}},
		[]tsample{{stack: []string{"alloca", "main"}, values: []int64{1, alloc, 1, inuse}}},
	)
}

func resetObs(t *testing.T) {
	t.Helper()
	prev := obs.SetEnabled(true)
	t.Cleanup(func() {
		obs.SetEnabled(prev)
		obs.Reset()
	})
	obs.Reset()
}

// TestIngestAggregates pins the core rollup: flat self/cum crediting,
// per-stage and per-codec fractions, CPU utilization, window ring, and
// the gauges exported into the obs registry.
func TestIngestAggregates(t *testing.T) {
	resetObs(t)
	p := New(Config{})
	start := time.Now()
	if err := p.ingest(cpuWindow(), heapWindow(1<<20, 1<<22), start, time.Microsecond); err != nil {
		t.Fatal(err)
	}

	top := p.TopFrames(10, "cum")
	if len(top) != 3 {
		t.Fatalf("flat frames %+v, want 3", top)
	}
	if top[0].Func != "main" || top[0].CumNs != 1000 || top[0].SelfNs != 400 {
		t.Fatalf("main row %+v", top[0])
	}
	if top[1].Func != "encode" || top[1].CumNs != 400 || top[1].SelfNs != 400 {
		t.Fatalf("encode row %+v", top[1])
	}
	if top[0].CumPct != 100 {
		t.Fatalf("main cum pct %v", top[0].CumPct)
	}
	bySelf := p.TopFrames(1, "self")
	if len(bySelf) != 1 || bySelf[0].SelfNs != 400 {
		t.Fatalf("top self %+v", bySelf)
	}

	stages, codecs, _ := p.LabelNs()
	if stages["chunk_compress"] != 400 || stages["chunk_decode"] != 200 {
		t.Fatalf("stage ns %v", stages)
	}
	if codecs["sz"] != 400 {
		t.Fatalf("codec ns %v", codecs)
	}

	wins := p.Windows(0, 0)
	if len(wins) != 1 {
		t.Fatalf("ring %+v", wins)
	}
	w := wins[0]
	if w.Samples != 3 || w.TotalNs != 1000 {
		t.Fatalf("window %+v", w)
	}
	if w.Stages["chunk_compress"] != 0.4 || w.Codecs["sz"] != 0.4 {
		t.Fatalf("window fractions %+v", w)
	}
	if w.CPUUtil != 1000.0/1000.0 { //lrmlint:ignore floatcmp exact by construction: 1000ns sampled over 1us wall
		t.Fatalf("cpu util %v", w.CPUUtil)
	}
	if w.HeapInuseBytes != 1<<20 {
		t.Fatalf("heap inuse %d", w.HeapInuseBytes)
	}
	if w.HeapAllocBytes != 0 { // first window has no alloc predecessor
		t.Fatalf("first-window alloc delta %d", w.HeapAllocBytes)
	}

	if g := obs.GetFloatGauge("profile.stage.chunk_compress.cpu_fraction").Value(); g != 0.4 { //lrmlint:ignore floatcmp 400/1000 is exact in binary
		t.Fatalf("stage gauge %v", g)
	}
	if c := obs.GetCounter("profile.windows").Value(); c != 1 {
		t.Fatalf("windows counter %d", c)
	}

	// Second window: alloc delta appears, absent stages decay to 0.
	only := buildProfile(cpuTypes, []tsample{
		{stack: []string{"decode", "main"}, values: []int64{1, 100},
			labels: map[string]string{"stage": "chunk_decode"}},
	})
	if err := p.ingest(only, heapWindow(1<<20, 1<<22+512), start.Add(time.Second), time.Microsecond); err != nil {
		t.Fatal(err)
	}
	wins = p.Windows(0, 0)
	if len(wins) != 2 || wins[1].HeapAllocBytes != 512 {
		t.Fatalf("second window %+v", wins)
	}
	if g := obs.GetFloatGauge("profile.stage.chunk_compress.cpu_fraction").Value(); g != 0 {
		t.Fatalf("absent stage gauge not decayed: %v", g)
	}
	if g := obs.GetFloatGauge("profile.stage.chunk_decode.cpu_fraction").Value(); g != 1.0 {
		t.Fatalf("decode stage gauge %v", g)
	}

	// Range query on the ring.
	if got := p.Windows(start.Add(time.Second).UnixMilli(), 0); len(got) != 1 {
		t.Fatalf("from filter %+v", got)
	}
	if got := p.Windows(0, start.UnixMilli()); len(got) != 1 {
		t.Fatalf("to filter %+v", got)
	}
}

// TestTablesBounded: frame table and trie spill into "(other)" instead of
// growing without bound under adversarial symbol cardinality.
func TestTablesBounded(t *testing.T) {
	resetObs(t)
	p := New(Config{MaxFrames: 4, MaxNodes: 8})
	samples := make([]tsample, 0, 64)
	for i := 0; i < 64; i++ {
		samples = append(samples, tsample{
			stack:  []string{"fn" + strings.Repeat("x", i%8) + string(rune('a'+i%26)) + string(rune('a'+i/26))},
			values: []int64{1, 100},
		})
	}
	if err := p.ingest(buildProfile(cpuTypes, samples), nil, time.Now(), time.Millisecond); err != nil {
		t.Fatal(err)
	}
	p.mu.Lock()
	flatN, nodeN := len(p.flat), p.nodeCount
	_, hasOther := p.flat[overflowFrame]
	p.mu.Unlock()
	if flatN > 5 || !hasOther {
		t.Fatalf("flat table %d rows (other=%v), want spill at 4", flatN, hasOther)
	}
	if nodeN > 9 {
		t.Fatalf("trie %d nodes, want spill at 8", nodeN)
	}
	var total int64
	for _, f := range p.TopFrames(10, "cum") {
		total += f.CumNs
	}
	if total != 6400 {
		t.Fatalf("spilled table lost time: cum total %d, want 6400", total)
	}
}

// TestRingWraps: the window ring retains the most recent Ring windows.
func TestRingWraps(t *testing.T) {
	resetObs(t)
	p := New(Config{Ring: 3})
	base := time.Now()
	for i := 0; i < 5; i++ {
		if err := p.ingest(cpuWindow(), nil, base.Add(time.Duration(i)*time.Second), time.Microsecond); err != nil {
			t.Fatal(err)
		}
	}
	wins := p.Windows(0, 0)
	if len(wins) != 3 {
		t.Fatalf("ring kept %d windows, want 3", len(wins))
	}
	if wins[0].UnixMs != base.Add(2*time.Second).UnixMilli() {
		t.Fatalf("oldest retained window %+v", wins[0])
	}
}

// TestProfileHandler pins the /debug/profile JSON contract and its query
// validation.
func TestProfileHandler(t *testing.T) {
	resetObs(t)
	p := New(Config{})
	if err := p.ingest(cpuWindow(), nil, time.Now(), time.Microsecond); err != nil {
		t.Fatal(err)
	}
	h := p.ProfileHandler()

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/profile?n=2", nil))
	if rr.Code != 200 {
		t.Fatalf("status %d: %s", rr.Code, rr.Body)
	}
	var doc struct {
		Schema  string `json:"schema"`
		Windows int    `json:"windows"`
		TopCum  []struct {
			Func  string `json:"func"`
			CumNs int64  `json:"cum_ns"`
		} `json:"top_cum"`
		Stages []struct {
			Value string  `json:"value"`
			Frac  float64 `json:"frac"`
		} `json:"stages"`
		Ring []WindowSnap `json:"ring"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rr.Body)
	}
	if doc.Schema != profileSchema || doc.Windows != 1 || len(doc.Ring) != 1 {
		t.Fatalf("doc %+v", doc)
	}
	if len(doc.TopCum) != 2 || doc.TopCum[0].Func != "main" {
		t.Fatalf("top_cum %+v", doc.TopCum)
	}
	if len(doc.Stages) != 2 || doc.Stages[0].Value != "chunk_compress" {
		t.Fatalf("stages %+v", doc.Stages)
	}

	for _, bad := range []string{"?bogus=1", "?n=0", "?since=-5m", "?from=9&to=3", "?format=xml"} {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/profile"+bad, nil))
		if rr.Code != 400 {
			t.Errorf("%s: status %d, want 400", bad, rr.Code)
		}
	}

	// format=baseline emits the diff-reference document.
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/profile?format=baseline", nil))
	var base baselineDoc
	if err := json.Unmarshal(rr.Body.Bytes(), &base); err != nil || base.Schema != BaselineSchema {
		t.Fatalf("baseline doc: %v %+v", err, base)
	}
	if base.Frames["main"] != 1.0 {
		t.Fatalf("baseline frames %v", base.Frames)
	}
}

// TestBaselineRoundTrip: WriteBaseline output loads back; wrong schema is
// refused.
func TestBaselineRoundTrip(t *testing.T) {
	resetObs(t)
	p := New(Config{})
	if err := p.ingest(cpuWindow(), nil, time.Now(), time.Microsecond); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.WriteBaseline(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	q := New(Config{})
	if err := q.LoadBaseline(path); err != nil {
		t.Fatal(err)
	}
	q.mu.Lock()
	frac := q.baseline["encode"]
	q.mu.Unlock()
	if frac != 0.4 { //lrmlint:ignore floatcmp 400/1000 is exact in binary
		t.Fatalf("round-tripped encode fraction %v", frac)
	}

	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"nope","frames":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := q.LoadBaseline(bad); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("schema mismatch not refused: %v", err)
	}
}

// wellFormedXML runs the bytes through an XML token scan — the "SVG is
// well-formed" acceptance check without a DOM dependency.
func wellFormedXML(t *testing.T, raw []byte) {
	t.Helper()
	dec := xml.NewDecoder(bytes.NewReader(raw))
	for {
		_, err := dec.Token()
		if err == io.EOF {
			return
		}
		if err != nil {
			t.Fatalf("SVG not well-formed: %v", err)
		}
	}
}

// TestFlameSVG: the rendered graph is well-formed XML, carries the stage
// pseudo-frames above the stacks, and escapes hostile frame names.
func TestFlameSVG(t *testing.T) {
	resetObs(t)
	p := New(Config{})
	hostile := buildProfile(cpuTypes, []tsample{
		{stack: []string{`evil<script>&"frame`, "main"}, values: []int64{10, 1000},
			labels: map[string]string{"stage": "chunk_compress"}},
	})
	if err := p.ingest(hostile, nil, time.Now(), time.Microsecond); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.WriteFlameSVG(&buf, false); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>") {
		t.Fatalf("not an <svg> document: %.80s", svg)
	}
	if !strings.Contains(svg, "stage.chunk_compress") {
		t.Fatal("stage pseudo-frame missing from flame")
	}
	if strings.Contains(svg, "<script>") {
		t.Fatal("frame name not escaped")
	}
	wellFormedXML(t, buf.Bytes())
}

// TestFlameDiff: diff mode against a baseline colors grown frames red and
// shrunk frames blue, and the handler 404s without a baseline.
func TestFlameDiff(t *testing.T) {
	resetObs(t)
	p := New(Config{})
	if err := p.ingest(cpuWindow(), nil, time.Now(), time.Microsecond); err != nil {
		t.Fatal(err)
	}

	h := p.FlameHandler()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/flame?diff=1", nil))
	if rr.Code != 404 {
		t.Fatalf("diff without baseline: status %d", rr.Code)
	}
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/flame?diff=2", nil))
	if rr.Code != 400 {
		t.Fatalf("diff=2: status %d", rr.Code)
	}

	// encode grew vs baseline (0.4 now, 0.1 then); decode shrank.
	p.SetBaseline(map[string]float64{"encode": 0.1, "decode": 0.9, "main": 1.0})
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/flame?diff=1", nil))
	if rr.Code != 200 {
		t.Fatalf("diff: status %d", rr.Code)
	}
	svg := rr.Body.String()
	if !strings.Contains(svg, "diff vs baseline") {
		t.Fatal("diff header missing")
	}
	if !strings.Contains(svg, `fill="rgb(235,`) {
		t.Fatal("no red (grown) frame in diff")
	}
	if !strings.Contains(svg, `,235)"`) {
		t.Fatal("no blue (shrunk) frame in diff")
	}
	wellFormedXML(t, rr.Body.Bytes())
}

// TestDumpFiles writes both offline artifacts.
func TestDumpFiles(t *testing.T) {
	resetObs(t)
	p := New(Config{})
	if err := p.ingest(cpuWindow(), nil, time.Now(), time.Microsecond); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	jp, sp := filepath.Join(dir, "prof.json"), filepath.Join(dir, "flame.svg")
	if err := p.DumpFiles(jp, sp); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(jp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte(profileSchema)) {
		t.Fatalf("json dump missing schema: %.120s", raw)
	}
	svg, err := os.ReadFile(sp)
	if err != nil {
		t.Fatal(err)
	}
	wellFormedXML(t, svg)

	// nil profiler: both dumps are no-ops, not panics.
	var nilp *Profiler
	if err := nilp.DumpFiles(jp, sp); err != nil {
		t.Fatal(err)
	}
	nilp.Start()
	nilp.Stop()
	nilp.Mount()
}

// TestWindowCaptureEndToEnd runs the real capture loop at a fast cadence
// over labeled CPU-bound work and checks samples land with their stage
// attribution — the in-process version of the serve-smoke scrape.
func TestWindowCaptureEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("captures real CPU windows")
	}
	resetObs(t)
	p := New(Config{Interval: 300 * time.Millisecond, Window: 150 * time.Millisecond})
	p.Start()
	defer p.Stop()

	stop := make(chan struct{})
	defer close(stop)
	for g := 0; g < 2; g++ {
		go func(stop chan struct{}) {
			pprof.Do(context.Background(), pprof.Labels("stage", "spin_stage"), func(context.Context) {
				sink := 0.0
				for {
					select {
					case <-stop:
						return
					default:
						for i := 0; i < 1_000_000; i++ {
							sink += float64(i&15) * 0.5
						}
					}
				}
			})
		}(stop)
	}

	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		stages, _, _ := p.LabelNs()
		if stages["spin_stage"] > 0 {
			if c := obs.GetCounter("profile.windows").Value(); c < 1 {
				t.Fatalf("windows counter %d after attributed samples", c)
			}
			if g := obs.GetFloatGauge("profile.stage.spin_stage.cpu_fraction").Value(); g <= 0 {
				t.Fatalf("stage gauge %v after attributed samples", g)
			}
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("no spin_stage samples after 20s: windows=%d errors=%d",
		obs.GetCounter("profile.windows").Value(), obs.GetCounter("profile.window_errors").Value())
}

// TestStopFlushesInflightWindow: stopping mid-window cuts the capture
// short and still flushes it into the ring — the drain contract.
func TestStopFlushesInflightWindow(t *testing.T) {
	if testing.Short() {
		t.Skip("captures a real CPU window")
	}
	resetObs(t)
	p := New(Config{Interval: time.Minute, Window: 20 * time.Second})
	p.Start()
	time.Sleep(200 * time.Millisecond) // first window is now in flight
	p.Stop()
	wins := p.Windows(0, 0)
	if len(wins) != 1 {
		t.Fatalf("ring after stop %+v, want the flushed in-flight window", wins)
	}
	if wins[0].Err != "" {
		t.Fatalf("flushed window errored: %s", wins[0].Err)
	}
	if wins[0].DurMs >= 20_000 {
		t.Fatalf("window ran full %dms despite stop", wins[0].DurMs)
	}
}

// TestWindowRefusedWhileCPUProfileHeld: when -cpuprofile (or anything
// else) holds the runtime profiler, the window fails visibly — counted,
// and the ring entry names the holder.
func TestWindowRefusedWhileCPUProfileHeld(t *testing.T) {
	resetObs(t)
	release, err := obs.AcquireCPUProfiler("-cpuprofile cpu.pprof")
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	p := New(Config{Interval: time.Minute, Window: 50 * time.Millisecond})
	p.captureWindow(make(chan struct{}))
	if c := obs.GetCounter("profile.window_errors").Value(); c != 1 {
		t.Fatalf("window_errors %d", c)
	}
	wins := p.Windows(0, 0)
	if len(wins) != 1 || !strings.Contains(wins[0].Err, "-cpuprofile cpu.pprof") {
		t.Fatalf("ring after refused window %+v", wins)
	}
}

func TestSanitizeLabel(t *testing.T) {
	cases := map[string]string{
		"chunk_compress": "chunk_compress",
		"SZ(abs=1e-3)":   "sz_abs_1e-3_",
		"a b/c":          "a_b_c",
	}
	for in, want := range cases {
		if got := sanitizeLabel(in); got != want {
			t.Errorf("sanitizeLabel(%q) = %q, want %q", in, got, want)
		}
	}
}

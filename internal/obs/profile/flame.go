package profile

import (
	"encoding/json"
	"fmt"
	"html"
	"io"
	"os"
	"sort"
	"strings"

	"lrm/internal/compress"
)

// BaselineSchema identifies the checked-in flame baseline format: a flat
// map from function name to its cumulative fraction of sampled CPU
// (0..1) in the baseline run. Fractions rather than nanoseconds so a
// baseline captured at one cadence diffs cleanly against any other.
const BaselineSchema = "lrm-flame-baseline/1"

// maxBaselineBytes bounds baseline file reads; a real baseline is a few
// KiB of function names.
const maxBaselineBytes = 8 << 20

type baselineDoc struct {
	Schema string             `json:"schema"`
	Frames map[string]float64 `json:"frames"`
}

// SetBaseline installs the reference profile /debug/flame?diff=1 colors
// against: function name → cumulative CPU fraction (0..1).
func (p *Profiler) SetBaseline(frames map[string]float64) {
	p.mu.Lock()
	p.baseline = frames
	p.mu.Unlock()
}

// LoadBaseline reads a BaselineSchema JSON file and installs it.
func (p *Profiler) LoadBaseline(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := compress.CheckedAlloc("profile.baseline", uint64(len(raw)), maxBaselineBytes, 1); err != nil {
		return err
	}
	var doc baselineDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("profile: baseline %s: %w", path, err)
	}
	if doc.Schema != BaselineSchema {
		return fmt.Errorf("profile: baseline %s: schema %q, want %q", path, doc.Schema, BaselineSchema)
	}
	p.SetBaseline(doc.Frames)
	return nil
}

// WriteBaseline emits the current aggregate as a BaselineSchema document,
// the artifact to check in for future ?diff=1 comparisons.
func (p *Profiler) WriteBaseline(w io.Writer) error {
	p.mu.Lock()
	doc := baselineDoc{Schema: BaselineSchema, Frames: make(map[string]float64, len(p.flat))}
	if p.totalNs > 0 {
		for name, f := range p.flat {
			doc.Frames[name] = float64(f.cumNs) / float64(p.totalNs)
		}
	}
	p.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// --- SVG flame graph ----------------------------------------------------

const (
	flameWidth  = 1200.0
	rowHeight   = 16.0
	flameMargin = 4.0
	// minFrac hides slivers narrower than 0.1% of the root — below one
	// pixel they are unreadable and only bloat the SVG.
	minFrac = 0.001
	// maxFlameDepth bounds the rendered (not aggregated) stack depth.
	maxFlameDepth = 48
)

// flameRow is one laid-out rectangle of the flame graph.
type flameRow struct {
	name  string
	depth int
	x, w  float64 // fractions of total width
	frac  float64 // fraction of root cum
	delta float64 // vs baseline cum fraction (diff mode)
}

// WriteFlameSVG renders the aggregate stack trie as a self-contained
// inline-SVG icicle graph (root on top, no JavaScript, hover titles via
// native <title> elements). With diff set and a baseline installed,
// frames are colored by their cumulative-fraction delta against the
// baseline — red grew, blue shrank, gray unchanged — instead of by name
// hash.
func (p *Profiler) WriteFlameSVG(w io.Writer, diff bool) error {
	p.mu.Lock()
	useDiff := diff && p.baseline != nil
	var cumFrac map[string]float64
	if useDiff {
		cumFrac = make(map[string]float64, len(p.flat))
		if p.totalNs > 0 {
			for name, f := range p.flat {
				cumFrac[name] = float64(f.cumNs) / float64(p.totalNs)
			}
		}
	}
	rows := []flameRow{}
	maxDepth := 0
	var walk func(n *node, depth int, x float64)
	walk = func(n *node, depth int, x float64) {
		if depth > maxFlameDepth {
			return
		}
		frac := 0.0
		if p.root.cum > 0 {
			frac = float64(n.cum) / float64(p.root.cum)
		}
		if frac < minFrac && depth > 0 {
			return
		}
		row := flameRow{name: n.name, depth: depth, x: x, w: frac, frac: frac}
		if useDiff {
			row.delta = cumFrac[n.name] - p.baseline[n.name]
		}
		rows = append(rows, row)
		if depth > maxDepth {
			maxDepth = depth
		}
		names := make([]string, 0, len(n.kids))
		for name := range n.kids {
			names = append(names, name)
		}
		sort.Strings(names)
		cx := x
		for _, name := range names {
			k := n.kids[name]
			kw := 0.0
			if p.root.cum > 0 {
				kw = float64(k.cum) / float64(p.root.cum)
			}
			walk(k, depth+1, cx)
			cx += kw
		}
	}
	walk(p.root, 0, 0)
	windows := p.ringN
	p.mu.Unlock()

	height := float64(maxDepth+1)*rowHeight + 2*flameMargin + 20
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f" font-family="monospace" font-size="11">`,
		flameWidth, height, flameWidth, height)
	b.WriteString(`<rect width="100%" height="100%" fill="#fdfdfd"/>`)
	mode := "flame"
	if useDiff {
		mode = "flame diff vs baseline (red grew, blue shrank)"
	}
	fmt.Fprintf(&b, `<text x="%.0f" y="14" fill="#555">lrm continuous profiler — %s, %d windows</text>`,
		flameMargin, html.EscapeString(mode), windows)
	for _, r := range rows {
		x := flameMargin + r.x*(flameWidth-2*flameMargin)
		w := r.w * (flameWidth - 2*flameMargin)
		if w < 1 {
			w = 1
		}
		y := 20 + flameMargin + float64(r.depth)*rowHeight
		fill := flameColor(r.name)
		if useDiff {
			fill = diffColor(r.delta)
		}
		title := fmt.Sprintf("%s — %.2f%% of sampled CPU", r.name, 100*r.frac)
		if useDiff {
			title += fmt.Sprintf(" (%+.2f pp vs baseline)", 100*r.delta)
		}
		fmt.Fprintf(&b, `<g><rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="#fff" stroke-width="0.5"><title>%s</title></rect>`,
			x, y, w, rowHeight-1, fill, html.EscapeString(title))
		if w > 40 {
			label := r.name
			if maxChars := int(w / 7); len(label) > maxChars {
				if maxChars < 3 {
					maxChars = 3
				}
				label = label[:maxChars-2] + ".."
			}
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" fill="#222">%s</text>`,
				x+3, y+rowHeight-5, html.EscapeString(label))
		}
		b.WriteString(`</g>`)
	}
	b.WriteString(`</svg>`)
	_, err := io.WriteString(w, b.String())
	return err
}

// flameColor picks a stable warm color from the frame name, so the same
// function keeps its color across renders. Label pseudo-frames get a
// distinct cool tint so the stage layer reads at a glance.
func flameColor(name string) string {
	if strings.HasPrefix(name, "stage.") || name == "(unlabeled)" || name == "root" {
		return "#9ec5e8"
	}
	var h uint32 = 2166136261
	for i := 0; i < len(name); i++ {
		h = (h ^ uint32(name[i])) * 16777619
	}
	r := 205 + int(h%50)
	g := 90 + int((h>>8)%110)
	return fmt.Sprintf("rgb(%d,%d,60)", r, g)
}

// diffColor maps a cumulative-fraction delta to red (grew) / blue
// (shrank) with intensity saturating at ±20 percentage points.
func diffColor(delta float64) string {
	mag := delta
	if mag < 0 {
		mag = -mag
	}
	t := mag / 0.20
	if t > 1 {
		t = 1
	}
	fade := 235 - int(t*150)
	if delta > 0 {
		return fmt.Sprintf("rgb(235,%d,%d)", fade, fade)
	}
	if delta < 0 {
		return fmt.Sprintf("rgb(%d,%d,235)", fade, fade)
	}
	return "rgb(224,224,224)"
}

package profile

import (
	"io"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"lrm/internal/obs"
)

// TestConcurrentWindowsAndScrapes rotates real profiling windows at a
// fast cadence while /debug/profile and /debug/flame are scraped and the
// obs registry is Reset concurrently — the -race stress for the whole
// serving surface. Assertions are minimal: no panic, no race, every
// scrape answers.
func TestConcurrentWindowsAndScrapes(t *testing.T) {
	if testing.Short() {
		t.Skip("rotates real CPU windows")
	}
	prev := obs.SetEnabled(true)
	defer func() {
		obs.SetEnabled(prev)
		obs.Reset()
	}()

	p := New(Config{Interval: 100 * time.Millisecond, Window: 40 * time.Millisecond, Ring: 4})
	p.SetBaseline(map[string]float64{"main": 0.5})
	p.Start()
	defer p.Stop()

	profSrv := httptest.NewServer(p.ProfileHandler())
	defer profSrv.Close()
	flameSrv := httptest.NewServer(p.FlameHandler())
	defer flameSrv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	scrape := func(url string) {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := profSrv.Client().Get(url)
			if err != nil {
				t.Errorf("scrape %s: %v", url, err)
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
		}
	}
	wg.Add(4)
	go scrape(profSrv.URL + "/debug/profile")
	go scrape(profSrv.URL + "/debug/profile?since=1m&n=3")
	go scrape(flameSrv.URL + "/debug/flame")
	go scrape(flameSrv.URL + "/debug/flame?diff=1")
	wg.Add(1)
	go func(stop chan struct{}) {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				obs.Reset()
				_, _, _ = p.LabelNs()
				_ = p.TopFrames(5, "self")
				time.Sleep(5 * time.Millisecond)
			}
		}
	}(stop)

	time.Sleep(1200 * time.Millisecond)
	close(stop)
	wg.Wait()
}

package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"time"

	"lrm/internal/obs"
)

// profileDoc is the /debug/profile response shape.
type profileDoc struct {
	Schema     string       `json:"schema"`
	NowMs      int64        `json:"now_ms"`
	IntervalMs int64        `json:"interval_ms"`
	WindowMs   int64        `json:"window_ms"`
	Windows    int          `json:"windows"`
	TotalNs    int64        `json:"total_ns"`
	WallNs     int64        `json:"wall_ns"`
	TopCum     []FrameStat  `json:"top_cum"`
	TopSelf    []FrameStat  `json:"top_self"`
	Stages     []labelNs    `json:"stages,omitempty"`
	Codecs     []labelNs    `json:"codecs,omitempty"`
	ChunkCard  int          `json:"chunk_labels_seen"`
	Ring       []WindowSnap `json:"ring"`
}

// labelNs is one row of the label breakdown: the aggregate sampled time
// carrying that label value and its fraction of the sampled total.
type labelNs struct {
	Value string  `json:"value"`
	Ns    int64   `json:"ns"`
	Frac  float64 `json:"frac"`
}

const profileSchema = "lrm-profile/1"

// profileQuery is the parsed /debug/profile parameter set; the range
// semantics mirror /debug/history (since, from/to in unix milliseconds)
// and unknown parameters are rejected so typos fail loudly.
type profileQuery struct {
	n        int
	since    time.Duration
	from, to int64
	baseline bool
}

func parseProfileQuery(raw string) (profileQuery, error) {
	var q profileQuery
	vals, err := url.ParseQuery(raw)
	if err != nil {
		return q, fmt.Errorf("profile: malformed query: %v", err)
	}
	for key, vs := range vals {
		v := ""
		if len(vs) > 0 {
			v = vs[len(vs)-1]
		}
		switch key {
		case "n":
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return q, fmt.Errorf("profile: n=%q is not a positive integer", v)
			}
			q.n = n
		case "since":
			d, err := time.ParseDuration(v)
			if err != nil || d < 0 {
				return q, fmt.Errorf("profile: since=%q is not a non-negative duration", v)
			}
			q.since = d
		case "from", "to":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n < 0 {
				return q, fmt.Errorf("profile: %s=%q is not a non-negative unix-millisecond timestamp", key, v)
			}
			if key == "from" {
				q.from = n
			} else {
				q.to = n
			}
		case "format":
			switch v {
			case "json":
			case "baseline":
				q.baseline = true
			default:
				return q, fmt.Errorf("profile: format=%q (want json or baseline)", v)
			}
		default:
			return q, fmt.Errorf("profile: unknown parameter %q", key)
		}
	}
	if q.from != 0 && q.to != 0 && q.from > q.to {
		return q, fmt.Errorf("profile: from=%d is after to=%d", q.from, q.to)
	}
	return q, nil
}

// WriteJSON writes the profileDoc for the given range — the shared body
// of the /debug/profile handler and the -profile-json file dump.
func (p *Profiler) WriteJSON(w io.Writer, q profileQuery) error {
	now := time.Now()
	from, to := q.from, q.to
	if from == 0 && to == 0 && q.since > 0 {
		from = now.UnixMilli() - q.since.Milliseconds()
	}
	n := q.n
	if n <= 0 {
		n = p.cfg.TopN
	}
	stages, codecs, chunks := p.LabelNs()
	p.mu.Lock()
	totalNs, wallNs, windows := p.totalNs, p.wallNs, p.ringN
	p.mu.Unlock()
	doc := profileDoc{
		Schema:     profileSchema,
		NowMs:      now.UnixMilli(),
		IntervalMs: p.cfg.Interval.Milliseconds(),
		WindowMs:   p.cfg.Window.Milliseconds(),
		Windows:    windows,
		TotalNs:    totalNs,
		WallNs:     wallNs,
		TopCum:     p.TopFrames(n, "cum"),
		TopSelf:    p.TopFrames(n, "self"),
		Stages:     labelRows(stages, totalNs),
		Codecs:     labelRows(codecs, totalNs),
		ChunkCard:  chunks,
		Ring:       p.Windows(from, to),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

func labelRows(m map[string]int64, total int64) []labelNs {
	out := make([]labelNs, 0, len(m))
	for v, ns := range m {
		row := labelNs{Value: v, Ns: ns}
		if total > 0 {
			row.Frac = float64(ns) / float64(total)
		}
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Ns != out[j].Ns {
			return out[i].Ns > out[j].Ns
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// ProfileHandler serves the aggregate as JSON:
//
//	/debug/profile                  top-N frames, labels, full window ring
//	/debug/profile?n=25             wider top tables
//	/debug/profile?since=15m        ring restricted to a trailing window
//	/debug/profile?from=&to=        ring restricted to [from, to] unix ms
//	/debug/profile?format=baseline  BaselineSchema doc to check in for ?diff=1
func (p *Profiler) ProfileHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q, err := parseProfileQuery(r.URL.RawQuery)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if q.baseline {
			_ = p.WriteBaseline(w)
			return
		}
		_ = p.WriteJSON(w, q)
	})
}

// FlameHandler serves the no-JS inline-SVG flame graph:
//
//	/debug/flame         aggregate icicle graph, stage pseudo-frames on top
//	/debug/flame?diff=1  colored by delta vs the installed baseline
func (p *Profiler) FlameHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		diff := false
		switch v := r.URL.Query().Get("diff"); v {
		case "", "0", "false":
		case "1", "true":
			diff = true
		default:
			http.Error(w, fmt.Sprintf("profile: diff=%q (want 0 or 1)", v), http.StatusBadRequest)
			return
		}
		if diff {
			p.mu.Lock()
			ok := p.baseline != nil
			p.mu.Unlock()
			if !ok {
				http.Error(w, "profile: no baseline installed (start with -flame-baseline or POST one)", http.StatusNotFound)
				return
			}
		}
		w.Header().Set("Content-Type", "image/svg+xml; charset=utf-8")
		_ = p.WriteFlameSVG(w, diff)
	})
}

// Mount registers /debug/profile and /debug/flame on every mux
// obs.Handler builds from now on. Call before the debug server starts,
// mirroring the TSDB store's Mount.
func (p *Profiler) Mount() {
	if p == nil {
		return
	}
	obs.RegisterDebugHandler("/debug/profile", p.ProfileHandler())
	obs.RegisterDebugHandler("/debug/flame", p.FlameHandler())
}

// DumpFiles writes the offline artifacts: the aggregate JSON (full ring)
// to jsonPath and the flame SVG to svgPath. Empty paths are skipped.
func (p *Profiler) DumpFiles(jsonPath, svgPath string) error {
	if p == nil {
		return nil
	}
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		werr := p.WriteJSON(f, profileQuery{})
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("profile: dump %s: %w", jsonPath, werr)
		}
	}
	if svgPath != "" {
		f, err := os.Create(svgPath)
		if err != nil {
			return err
		}
		werr := p.WriteFlameSVG(f, false)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("profile: dump %s: %w", svgPath, werr)
		}
	}
	return nil
}

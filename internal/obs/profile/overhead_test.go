package profile

import (
	"bytes"
	"context"
	"runtime/pprof"
	"testing"
	"time"

	"lrm/internal/obs"
)

// TestIngestOverheadBudget pins the profiler's added cost at the default
// cadence under the repository's <2% overhead guard, in the modeled style
// the other guards use (a raw A/B wall-clock comparison is hopelessly
// flaky under -race and CI contention).
//
// The profiler's overhead has two parts:
//
//  1. The runtime's own sampling cost while a window is open. At 100 Hz
//     that is well under 1% of the profiled process; the default duty
//     cycle (10s window per 60s interval) scales it by 1/6. This part is
//     the runtime's documented behavior, not ours to measure here.
//  2. Our in-process work per window: parse the profile bytes and fold
//     them into the tables. This part is what this test bounds — measured
//     on a real captured window, it must amortize to <2% of the default
//     interval (in practice it is ~four orders of magnitude under).
func TestIngestOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("captures a real CPU window")
	}
	prev := obs.SetEnabled(true)
	defer func() {
		obs.SetEnabled(prev)
		obs.Reset()
	}()

	// Capture a realistic window: labeled CPU-bound work sampled for a
	// full default window duration compressed to 300ms of spin.
	var buf bytes.Buffer
	release, err := obs.AcquireCPUProfiler("overhead test")
	if err != nil {
		t.Fatal(err)
	}
	if err := pprof.StartCPUProfile(&buf); err != nil {
		release()
		t.Fatal(err)
	}
	pprof.Do(context.Background(), pprof.Labels("stage", "chunk_compress", "codec", "sz"), func(context.Context) {
		sink := 0.0
		until := time.Now().Add(300 * time.Millisecond)
		for time.Now().Before(until) {
			for i := 0; i < 100_000; i++ {
				sink += float64(i&31) * 0.25
			}
		}
		_ = sink
	})
	pprof.StopCPUProfile()
	release()
	raw := buf.Bytes()
	if len(raw) == 0 {
		t.Fatal("captured window is empty")
	}

	cfg := Config{}.withDefaults()
	if cfg.Interval != time.Minute || cfg.Window != 10*time.Second {
		t.Fatalf("default cadence changed (%v/%v): revisit the overhead model", cfg.Interval, cfg.Window)
	}

	p := New(Config{})
	const rounds = 8
	start := time.Now()
	for i := 0; i < rounds; i++ {
		if err := p.ingest(raw, nil, time.Now(), cfg.Window); err != nil {
			t.Fatal(err)
		}
	}
	perWindow := time.Since(start) / rounds

	budget := time.Duration(float64(cfg.Interval) * 0.02)
	if perWindow >= budget {
		t.Fatalf("per-window ingest %v exceeds 2%% of the %v interval (%v)", perWindow, cfg.Interval, budget)
	}
	t.Logf("per-window ingest %v against budget %v (%d bytes of profile)", perWindow, budget, len(raw))
}

// Package profile is the continuous in-process profiler: a background
// loop captures short sampled CPU-profile windows plus heap snapshots,
// parses them in-process with internal/obs/pprofparse, and aggregates the
// results into a fixed-memory frame table keyed by function and by the
// pprof labels the serving path installs on pool workers (stage, codec,
// chunk). The aggregate is served as JSON (/debug/profile), as a no-JS
// inline-SVG flame graph (/debug/flame), and as per-stage CPU-fraction
// gauges in the obs registry — which the TSDB sampler then turns into
// /debug/history series and /debug/dash sparklines for free.
//
// # Cost model
//
// At the default cadence (a 10s window each minute) the profiler's own
// work is one runtime CPU profile at 100 Hz for a sixth of the time
// (~0.2% amortized runtime overhead) plus one in-process parse+aggregate
// pass per window, which is microseconds-to-milliseconds against a 60s
// interval — comfortably inside the repository's <2% overhead guard,
// pinned by TestIngestOverheadBudget. When the profiler is not running it
// costs nothing at all; the label plumbing it attributes by is the
// existing trace.WithLabels path, which is ~one atomic load when
// observability is disabled.
//
// # Lifecycle
//
// New → Mount (register /debug handlers before the mux is built) → Start
// (after listen) → Stop (during drain; an in-flight window is cut short
// and still flushed, so the shutdown tail is profiled) → DumpFiles
// (offline artifacts). All methods are nil-receiver safe so callers can
// thread an optional profiler without guards.
package profile

import (
	"bytes"
	"fmt"
	"runtime/pprof"
	"sort"
	"sync"
	"time"

	"lrm/internal/obs"
	"lrm/internal/obs/pprofparse"
)

// Config sets the profiler's cadence and memory bounds. The zero value is
// usable: withDefaults fills in the production cadence.
type Config struct {
	// Interval is the time between window starts (default 60s).
	Interval time.Duration
	// Window is the length of each sampled CPU capture (default 10s,
	// clamped to at most half the interval so windows never overlap).
	Window time.Duration
	// TopN is the default frame count for /debug/profile JSON (default 10).
	TopN int
	// MaxFrames bounds the flat self/cum frame table; overflow is credited
	// to a single "(other)" row (default 512).
	MaxFrames int
	// MaxNodes bounds the flame-graph stack trie the same way (default 8192).
	MaxNodes int
	// Ring is the number of retained per-window snapshots (default 120 —
	// two hours at the default cadence).
	Ring int
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = time.Minute
	}
	if c.Window <= 0 {
		c.Window = 10 * time.Second
	}
	if c.Window > c.Interval/2 {
		c.Window = c.Interval / 2
	}
	if c.TopN <= 0 {
		c.TopN = 10
	}
	if c.MaxFrames <= 0 {
		c.MaxFrames = 512
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = 8192
	}
	if c.Ring <= 0 {
		c.Ring = 120
	}
	return c
}

// overflowFrame absorbs frames past the MaxFrames/MaxNodes budgets so the
// tables stay fixed-memory under adversarial symbol cardinality.
const overflowFrame = "(other)"

// maxStackDepth truncates pathological stacks before they enter the trie.
const maxStackDepth = 64

// maxStageGauges bounds the number of distinct per-stage gauges exported
// into the obs registry; stages beyond it still appear in the JSON label
// breakdown but get no metric series.
const maxStageGauges = 32

// frameStat is one row of the flat table.
type frameStat struct {
	selfNs int64
	cumNs  int64
}

// node is one frame of the flame-graph stack trie, rooted at the label
// pseudo-frames ("stage.chunk_compress", "(unlabeled)") so the rendered
// flame attributes width to stages before functions.
type node struct {
	name string
	cum  int64
	kids map[string]*node
}

// WindowSnap is the retained summary of one profiling window — the
// /debug/profile analogue of a /debug/history sample.
type WindowSnap struct {
	UnixMs  int64 `json:"unix_ms"`
	DurMs   int64 `json:"dur_ms"`
	Samples int   `json:"samples"`
	TotalNs int64 `json:"total_ns"`
	// CPUUtil is average cores busy during the window (sampled ns / wall ns).
	CPUUtil float64 `json:"cpu_util"`
	// Stages/Codecs are per-label-value fractions of the window's sampled
	// CPU time, from the pprof labels installed by trace.WithLabels.
	Stages map[string]float64 `json:"stages,omitempty"`
	Codecs map[string]float64 `json:"codecs,omitempty"`
	// HeapInuseBytes is total inuse_space at window end; HeapAllocBytes is
	// alloc_space growth since the previous window (0 on the first).
	HeapInuseBytes int64  `json:"heap_inuse_bytes"`
	HeapAllocBytes int64  `json:"heap_alloc_window_bytes"`
	Err            string `json:"err,omitempty"`
}

// FrameStat is one row of the /debug/profile top table.
type FrameStat struct {
	Func    string  `json:"func"`
	SelfNs  int64   `json:"self_ns"`
	CumNs   int64   `json:"cum_ns"`
	SelfPct float64 `json:"self_pct"`
	CumPct  float64 `json:"cum_pct"`
}

// Profiler aggregates profiling windows. Construct with New; the zero
// value is not usable.
type Profiler struct {
	cfg Config

	lifecycle sync.Mutex
	stopc     chan struct{}
	done      chan struct{}

	mu        sync.Mutex
	flat      map[string]*frameStat
	root      *node
	nodeCount int
	totalNs   int64 // sampled ns across all windows
	wallNs    int64 // wall ns across all windows
	stageNs   map[string]int64
	codecNs   map[string]int64
	chunksHot map[string]struct{} // distinct chunk labels seen (cardinality only)
	ring      []WindowSnap
	ringN     int // windows ever recorded
	lastAlloc int64
	haveAlloc bool
	baseline  map[string]float64
	scratch   []string
}

// New builds a Profiler; no goroutine runs until Start.
func New(cfg Config) *Profiler {
	obs.Describe("profile.windows", "Profiling windows completed by the continuous profiler.")
	obs.Describe("profile.window_errors", "Profiling windows that failed to capture or parse.")
	obs.Describe("profile.samples", "CPU-profile stack samples aggregated across all windows.")
	obs.Describe("profile.cpu.utilization", "Average cores busy during the latest profiling window.")
	obs.Describe("profile.heap.inuse_bytes", "Heap inuse_space at the end of the latest profiling window.")
	obs.Describe("profile.heap.alloc_window_bytes", "Heap alloc_space growth across the latest profiling window.")
	return &Profiler{
		cfg:       cfg.withDefaults(),
		flat:      make(map[string]*frameStat),
		root:      &node{name: "root"},
		stageNs:   make(map[string]int64),
		codecNs:   make(map[string]int64),
		chunksHot: make(map[string]struct{}),
	}
}

// Interval returns the configured window cadence.
func (p *Profiler) Interval() time.Duration { return p.cfg.Interval }

// Start launches the background window loop: one immediate window (so
// short-lived processes still profile), then one per interval. Calling
// Start on a running profiler is a no-op; pair with Stop.
func (p *Profiler) Start() {
	if p == nil {
		return
	}
	p.lifecycle.Lock()
	defer p.lifecycle.Unlock()
	if p.stopc != nil {
		return
	}
	p.stopc = make(chan struct{})
	p.done = make(chan struct{})
	go func(stopc, done chan struct{}) {
		defer close(done)
		tick := time.NewTicker(p.cfg.Interval)
		defer tick.Stop()
		p.captureWindow(stopc)
		for {
			select {
			case <-stopc:
				return
			case <-tick.C:
				p.captureWindow(stopc)
			}
		}
	}(p.stopc, p.done)
}

// Stop halts the window loop. An in-flight window is cut short at the
// stop signal and still parsed and flushed, so the aggregate includes the
// tail of a drain. Safe to call without Start, and idempotent.
func (p *Profiler) Stop() {
	if p == nil {
		return
	}
	p.lifecycle.Lock()
	defer p.lifecycle.Unlock()
	if p.stopc == nil {
		return
	}
	close(p.stopc)
	<-p.done
	p.stopc, p.done = nil, nil
}

// captureWindow runs one profiling window: claim the process-wide CPU
// profiler, sample for the window (or until stop), then parse and ingest.
// Failures are counted and retained in the ring rather than logged — the
// profiler must never kill or spam the process it observes.
func (p *Profiler) captureWindow(stopc <-chan struct{}) {
	start := time.Now()
	release, err := obs.AcquireCPUProfiler("continuous profiler")
	if err != nil {
		p.recordError(start, err)
		return
	}
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		release()
		p.recordError(start, err)
		return
	}
	timer := time.NewTimer(p.cfg.Window)
	select {
	case <-stopc:
		timer.Stop()
	case <-timer.C:
	}
	pprof.StopCPUProfile()
	release()
	elapsed := time.Since(start)

	var heapBuf bytes.Buffer
	if hp := pprof.Lookup("heap"); hp != nil {
		_ = hp.WriteTo(&heapBuf, 0)
	}
	if err := p.ingest(buf.Bytes(), heapBuf.Bytes(), start, elapsed); err != nil {
		p.recordError(start, err)
	}
}

// recordError counts a failed window and retains the reason in the ring.
func (p *Profiler) recordError(start time.Time, err error) {
	obs.GetCounter("profile.window_errors").Inc()
	p.mu.Lock()
	p.push(WindowSnap{UnixMs: start.UnixMilli(), Err: err.Error()})
	p.mu.Unlock()
}

// push appends a window snapshot to the ring. Caller holds p.mu.
func (p *Profiler) push(w WindowSnap) {
	if p.ring == nil {
		p.ring = make([]WindowSnap, p.cfg.Ring)
	}
	p.ring[p.ringN%len(p.ring)] = w
	p.ringN++
}

// ingest parses one window's CPU and heap profile bytes and folds them
// into the aggregate tables, gauges, and window ring.
func (p *Profiler) ingest(cpuRaw, heapRaw []byte, start time.Time, elapsed time.Duration) error {
	prof, err := pprofparse.Parse(cpuRaw)
	if err != nil {
		return fmt.Errorf("profile: cpu window: %w", err)
	}
	snap := WindowSnap{UnixMs: start.UnixMilli(), DurMs: elapsed.Milliseconds()}

	p.mu.Lock()
	defer p.mu.Unlock()

	winStage := make(map[string]int64)
	winCodec := make(map[string]int64)
	var total int64
	if vi := prof.ValueIndex("nanoseconds"); vi >= 0 {
		seen := make(map[string]bool, 64)
		for _, s := range prof.Samples {
			if vi >= len(s.Values) {
				continue
			}
			v := s.Values[vi]
			if v <= 0 {
				continue
			}
			p.scratch = prof.StackFuncs(s, p.scratch[:0])
			if len(p.scratch) == 0 {
				continue
			}
			total += v
			snap.Samples++
			p.creditFlat(p.scratch, v, seen)
			stage := s.Labels["stage"]
			p.creditTrie(stage, p.scratch, v)
			if stage != "" {
				winStage[stage] += v
			}
			if c := s.Labels["codec"]; c != "" {
				winCodec[c] += v
			}
			if ch := s.Labels["chunk"]; ch != "" {
				p.chunksHot[ch] = struct{}{}
			}
		}
	}
	snap.TotalNs = total
	if elapsed > 0 {
		snap.CPUUtil = float64(total) / float64(elapsed.Nanoseconds())
	}
	p.totalNs += total
	p.wallNs += elapsed.Nanoseconds()
	if total > 0 {
		snap.Stages = make(map[string]float64, len(winStage))
		for s, ns := range winStage {
			p.stageNs[s] += ns
			snap.Stages[s] = float64(ns) / float64(total)
		}
		snap.Codecs = make(map[string]float64, len(winCodec))
		for c, ns := range winCodec {
			p.codecNs[c] += ns
			snap.Codecs[c] = float64(ns) / float64(total)
		}
	}

	// Heap: a parse failure here degrades the window to CPU-only rather
	// than discarding it.
	if inuse, allocTotal, ok := heapTotals(heapRaw); ok {
		snap.HeapInuseBytes = inuse
		if p.haveAlloc && allocTotal >= p.lastAlloc {
			snap.HeapAllocBytes = allocTotal - p.lastAlloc
		}
		p.lastAlloc, p.haveAlloc = allocTotal, true
		obs.GetGauge("profile.heap.inuse_bytes").Set(inuse)
		obs.GetGauge("profile.heap.alloc_window_bytes").Set(snap.HeapAllocBytes)
	}

	p.push(snap)
	p.exportGauges(snap, winStage, total)
	obs.GetCounter("profile.windows").Inc()
	obs.GetCounter("profile.samples").Add(int64(snap.Samples))
	return nil
}

// exportGauges publishes the window's per-stage CPU fractions and overall
// utilization into the obs registry. A stage known from earlier windows
// but absent from this one is written as 0 so its history series decays
// instead of freezing at the last busy value. Caller holds p.mu.
func (p *Profiler) exportGauges(snap WindowSnap, winStage map[string]int64, total int64) {
	obs.GetFloatGauge("profile.cpu.utilization").Set(snap.CPUUtil)
	n := 0
	for _, s := range sortedKeysNs(p.stageNs) {
		if n++; n > maxStageGauges {
			break
		}
		frac := 0.0
		if total > 0 {
			frac = float64(winStage[s]) / float64(total)
		}
		name := "profile.stage." + sanitizeLabel(s) + ".cpu_fraction"
		obs.Describe(name, "Fraction of sampled CPU in the latest window labeled stage="+s+".")
		obs.GetFloatGauge(name).Set(frac)
	}
}

// creditFlat folds one stack (leaf-first) into the flat table: self time
// to the leaf, cumulative time once per function present anywhere in the
// stack (recursion and inlining must not double-count). Caller holds p.mu.
func (p *Profiler) creditFlat(stack []string, v int64, seen map[string]bool) {
	p.frame(stack[0]).selfNs += v
	for k := range seen {
		delete(seen, k)
	}
	for _, name := range stack {
		if !seen[name] {
			seen[name] = true
			p.frame(name).cumNs += v
		}
	}
}

// frame returns the flat-table row for name, spilling to the shared
// overflow row once the table is full. Caller holds p.mu.
func (p *Profiler) frame(name string) *frameStat {
	f := p.flat[name]
	if f != nil {
		return f
	}
	if len(p.flat) >= p.cfg.MaxFrames {
		name = overflowFrame
		if f = p.flat[name]; f != nil {
			return f
		}
	}
	f = &frameStat{}
	p.flat[name] = f
	return f
}

// creditTrie folds one stack into the flame trie under its stage
// pseudo-frame, root-first. Caller holds p.mu.
func (p *Profiler) creditTrie(stage string, stack []string, v int64) {
	p.root.cum += v
	label := "(unlabeled)"
	if stage != "" {
		label = "stage." + stage
	}
	n := p.child(p.root, label)
	n.cum += v
	depth := len(stack)
	if depth > maxStackDepth {
		depth = maxStackDepth
	}
	for i := depth - 1; i >= 0; i-- {
		n = p.child(n, stack[i])
		n.cum += v
	}
}

// child returns (creating if within budget) the named child of n,
// spilling to "(other)" at the node cap. Caller holds p.mu.
func (p *Profiler) child(n *node, name string) *node {
	k := n.kids[name]
	if k != nil {
		return k
	}
	if p.nodeCount >= p.cfg.MaxNodes {
		name = overflowFrame
		if k = n.kids[name]; k != nil {
			return k
		}
	}
	k = &node{name: name}
	if n.kids == nil {
		n.kids = make(map[string]*node)
	}
	n.kids[name] = k
	p.nodeCount++
	return k
}

// heapTotals sums inuse_space and alloc_space across a heap profile.
func heapTotals(raw []byte) (inuse, alloc int64, ok bool) {
	if len(raw) == 0 {
		return 0, 0, false
	}
	hp, err := pprofparse.Parse(raw)
	if err != nil {
		return 0, 0, false
	}
	ii, ai := hp.TypeIndex("inuse_space"), hp.TypeIndex("alloc_space")
	if ii < 0 && ai < 0 {
		return 0, 0, false
	}
	for _, s := range hp.Samples {
		if ii >= 0 && ii < len(s.Values) {
			inuse += s.Values[ii]
		}
		if ai >= 0 && ai < len(s.Values) {
			alloc += s.Values[ai]
		}
	}
	return inuse, alloc, true
}

// Windows returns ring snapshots within [from, to] unix milliseconds
// (0 = unbounded), oldest first.
func (p *Profiler) Windows(from, to int64) []WindowSnap {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ringN == 0 {
		return nil
	}
	n := p.ringN
	if n > len(p.ring) {
		n = len(p.ring)
	}
	out := make([]WindowSnap, 0, n)
	for i := p.ringN - n; i < p.ringN; i++ {
		w := p.ring[i%len(p.ring)]
		if from != 0 && w.UnixMs < from {
			continue
		}
		if to != 0 && w.UnixMs > to {
			continue
		}
		out = append(out, w)
	}
	return out
}

// TopFrames returns the top-n flat frames ordered by the given field
// ("self" or anything else meaning cumulative), with percentages against
// the aggregate sampled total.
func (p *Profiler) TopFrames(n int, by string) []FrameStat {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]FrameStat, 0, len(p.flat))
	for name, f := range p.flat {
		fs := FrameStat{Func: name, SelfNs: f.selfNs, CumNs: f.cumNs}
		if p.totalNs > 0 {
			fs.SelfPct = 100 * float64(f.selfNs) / float64(p.totalNs)
			fs.CumPct = 100 * float64(f.cumNs) / float64(p.totalNs)
		}
		out = append(out, fs)
	}
	bySelf := by == "self"
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].CumNs, out[j].CumNs
		if bySelf {
			a, b = out[i].SelfNs, out[j].SelfNs
		}
		if a != b {
			return a > b
		}
		return out[i].Func < out[j].Func
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// LabelNs returns the aggregate per-stage and per-codec sampled
// nanoseconds plus the count of distinct chunk labels seen (chunk is
// unbounded-cardinality, so only its count is retained).
func (p *Profiler) LabelNs() (stages, codecs map[string]int64, chunks int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	stages = make(map[string]int64, len(p.stageNs))
	for k, v := range p.stageNs {
		stages[k] = v
	}
	codecs = make(map[string]int64, len(p.codecNs))
	for k, v := range p.codecNs {
		codecs[k] = v
	}
	return stages, codecs, len(p.chunksHot)
}

// sanitizeLabel maps a pprof label value into the metric-name alphabet.
func sanitizeLabel(s string) string {
	b := []byte(s)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '_', c == '-':
		case c >= 'A' && c <= 'Z':
			b[i] = c + ('a' - 'A')
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

// sortedKeysNs returns m's keys ordered by descending value then name, so
// the gauge cap keeps the hottest stages.
func sortedKeysNs(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if m[keys[i]] != m[keys[j]] {
			return m[keys[i]] > m[keys[j]]
		}
		return keys[i] < keys[j]
	})
	return keys
}

// Package pprofparse decodes the pprof wire format (gzipped profile.proto)
// with a minimal stdlib-only protobuf walker. It exists so the two
// consumers of profile bytes in this repository — lrmbench's -profile-top
// cell attribution and the continuous profiler in internal/obs/profile —
// share one parser instead of each command growing its own.
//
// Only the subset of profile.proto needed for function-level rollups is
// decoded: sample types, samples (stacks, values, string labels),
// locations, functions, and the string table. Line numbers, mappings, and
// numeric labels are skipped.
//
// # Allocation bounds
//
// Profile bytes are untrusted once they travel through HTTP endpoints or
// files, so parsing follows the decode-hardening contract of
// internal/compress: the gunzip expansion is routed through
// compress.CheckedAlloc (a gzip bomb is refused before its claimed bytes
// are allocated, and tests can tighten the budget with
// compress.SetDecodeAllocCap), and every repeated-field slice is naturally
// bounded by its payload length — each element consumes at least one input
// byte, so a truncated or hostile profile can never make the parser
// allocate past a small multiple of the input size.
package pprofparse

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"lrm/internal/compress"
)

// maxProfileBytes caps the decompressed size of a parsed profile. Real Go
// CPU/heap profiles are a few hundred KiB at most; the cap leaves two
// orders of magnitude of headroom while refusing gzip bombs. The
// process-wide compress.DecodeAllocCap applies on top, so tests can
// tighten the budget further.
const maxProfileBytes = 64 << 20

// Frame is one row of a cumulative rollup: a function's cumulative CPU
// time across every sample whose stack contains it. The JSON shape is the
// lrmbench -profile-top contract and must stay byte-identical.
type Frame struct {
	Func   string  `json:"func"`
	CumNs  int64   `json:"cum_ns"`
	CumPct float64 `json:"cum_pct"` // share of the profile's sampled total
}

// SampleType is one value column of the profile: its type and unit names
// ("cpu"/"nanoseconds", "alloc_space"/"bytes", ...).
type SampleType struct {
	Type string
	Unit string
}

// Sample is one stack sample: location IDs leaf-first, the per-sample-type
// values, and any string labels ("stage", "codec", "chunk", ...) the
// profiled goroutine carried.
type Sample struct {
	Locs   []uint64
	Values []int64
	Labels map[string]string // nil when the sample carries no string labels

	labelRefs [][2]uint64 // string-table (key, str) pairs, resolved post-walk
}

// Profile is the decoded subset of profile.proto.
type Profile struct {
	SampleTypes []SampleType
	Samples     []Sample

	typeRefs  [][2]uint64 // string-table (type, unit) pairs per sample type
	strings   []string
	locFuncs  map[uint64][]uint64 // location id -> function ids, leaf first
	funcNames map[uint64]int64    // function id -> name string index
}

// --- minimal protobuf reader -------------------------------------------

// pbField is one decoded key/value pair. For wire type 2 the payload is
// the raw bytes; for wire type 0 the varint value.
type pbField struct {
	num  int
	wire int
	vi   uint64
	data []byte
}

// pbWalk iterates the fields of one message, calling fn per field. It
// tolerates (skips) 64-bit and 32-bit scalar fields.
func pbWalk(data []byte, fn func(pbField) error) error {
	for len(data) > 0 {
		key, n := binary.Uvarint(data)
		if n <= 0 {
			return fmt.Errorf("pprof: bad field key")
		}
		data = data[n:]
		f := pbField{num: int(key >> 3), wire: int(key & 7)}
		switch f.wire {
		case 0: // varint
			v, n := binary.Uvarint(data)
			if n <= 0 {
				return fmt.Errorf("pprof: bad varint in field %d", f.num)
			}
			f.vi = v
			data = data[n:]
		case 1: // fixed64
			if len(data) < 8 {
				return fmt.Errorf("pprof: short fixed64 in field %d", f.num)
			}
			f.vi = binary.LittleEndian.Uint64(data)
			data = data[8:]
		case 2: // length-delimited
			l, n := binary.Uvarint(data)
			if n <= 0 || uint64(len(data)-n) < l {
				return fmt.Errorf("pprof: bad length in field %d", f.num)
			}
			f.data = data[n : n+int(l)]
			data = data[n+int(l):]
		case 5: // fixed32
			if len(data) < 4 {
				return fmt.Errorf("pprof: short fixed32 in field %d", f.num)
			}
			f.vi = uint64(binary.LittleEndian.Uint32(data))
			data = data[4:]
		default:
			return fmt.Errorf("pprof: unsupported wire type %d", f.wire)
		}
		if err := fn(f); err != nil {
			return err
		}
	}
	return nil
}

// pbPackedUvarints decodes a packed repeated varint payload. A wire-type-0
// single element (protobuf allows unpacked repeats) is handled by the
// callers passing vi directly.
func pbPackedUvarints(data []byte, out []uint64) ([]uint64, error) {
	for len(data) > 0 {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, fmt.Errorf("pprof: bad packed varint")
		}
		out = append(out, v)
		data = data[n:]
	}
	return out, nil
}

// --- profile.proto decoding --------------------------------------------

// gunzip expands gzipped profile bytes under the decode allocation budget:
// the read is hard-limited, and crossing the cap (or the process-wide
// compress.DecodeAllocCap) is a refusal, not an allocation.
func gunzip(raw []byte) ([]byte, error) {
	zr, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	cap64 := uint64(maxProfileBytes)
	if c := uint64(compress.DecodeAllocCap()); c < cap64 {
		cap64 = c
	}
	out, err := io.ReadAll(io.LimitReader(zr, int64(cap64)+1))
	if err != nil {
		return nil, err
	}
	if err := compress.CheckedAlloc("pprofparse.profile", uint64(len(out)), cap64, 1); err != nil {
		return nil, err
	}
	return out, nil
}

// Parse decodes a gzipped (or raw) profile.proto blob. The string table
// legally appears after the messages that reference it, so sample-type and
// label strings are recorded as indices during the walk and resolved once
// the whole blob has been seen.
func Parse(raw []byte) (*Profile, error) {
	if len(raw) >= 2 && raw[0] == 0x1f && raw[1] == 0x8b {
		var err error
		raw, err = gunzip(raw)
		if err != nil {
			return nil, err
		}
	}
	p := &Profile{
		locFuncs:  make(map[uint64][]uint64),
		funcNames: make(map[uint64]int64),
	}
	err := pbWalk(raw, func(f pbField) error {
		switch f.num {
		case 1: // sample_type: ValueType{type=1, unit=2}
			var typ, unit uint64
			if err := pbWalk(f.data, func(g pbField) error {
				switch g.num {
				case 1:
					typ = g.vi
				case 2:
					unit = g.vi
				}
				return nil
			}); err != nil {
				return err
			}
			p.typeRefs = append(p.typeRefs, [2]uint64{typ, unit})
		case 2: // sample: Sample{location_id=1, value=2, label=3}
			var s Sample
			if err := pbWalk(f.data, func(g pbField) error {
				switch g.num {
				case 1:
					if g.wire == 2 {
						var err error
						s.Locs, err = pbPackedUvarints(g.data, s.Locs)
						return err
					}
					s.Locs = append(s.Locs, g.vi)
				case 2:
					if g.wire == 2 {
						vs, err := pbPackedUvarints(g.data, nil)
						if err != nil {
							return err
						}
						for _, v := range vs {
							s.Values = append(s.Values, int64(v))
						}
						return nil
					}
					s.Values = append(s.Values, int64(g.vi))
				case 3: // Label{key=1, str=2, num=3, num_unit=4}
					var key, str uint64
					if err := pbWalk(g.data, func(h pbField) error {
						switch h.num {
						case 1:
							key = h.vi
						case 2:
							str = h.vi
						}
						return nil
					}); err != nil {
						return err
					}
					if str != 0 { // numeric-only labels are skipped
						s.labelRefs = append(s.labelRefs, [2]uint64{key, str})
					}
				}
				return nil
			}); err != nil {
				return err
			}
			p.Samples = append(p.Samples, s)
		case 4: // location: Location{id=1, line=4:Line{function_id=1}}
			var id uint64
			var fns []uint64
			if err := pbWalk(f.data, func(g pbField) error {
				switch g.num {
				case 1:
					id = g.vi
				case 4:
					return pbWalk(g.data, func(h pbField) error {
						if h.num == 1 {
							fns = append(fns, h.vi)
						}
						return nil
					})
				}
				return nil
			}); err != nil {
				return err
			}
			p.locFuncs[id] = fns
		case 5: // function: Function{id=1, name=2}
			var id uint64
			var name int64
			if err := pbWalk(f.data, func(g pbField) error {
				switch g.num {
				case 1:
					id = g.vi
				case 2:
					name = int64(g.vi)
				}
				return nil
			}); err != nil {
				return err
			}
			p.funcNames[id] = name
		case 6: // string_table
			p.strings = append(p.strings, string(f.data))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	p.resolveRefs()
	return p, nil
}

// resolveRefs swaps the recorded string-table indices for their strings
// now that the table is complete.
func (p *Profile) resolveRefs() {
	p.SampleTypes = make([]SampleType, len(p.typeRefs))
	for i, r := range p.typeRefs {
		p.SampleTypes[i] = SampleType{Type: p.str(int64(r[0])), Unit: p.str(int64(r[1]))}
	}
	p.typeRefs = nil
	for i := range p.Samples {
		s := &p.Samples[i]
		if s.labelRefs == nil {
			continue
		}
		s.Labels = make(map[string]string, len(s.labelRefs))
		for _, kv := range s.labelRefs {
			s.Labels[p.str(int64(kv[0]))] = p.str(int64(kv[1]))
		}
		s.labelRefs = nil
	}
}

// str resolves a string-table index, tolerating corrupt indices.
func (p *Profile) str(i int64) string {
	if i < 0 || int(i) >= len(p.strings) {
		return "?"
	}
	return p.strings[i]
}

// ValueIndex returns the index of the sample-type column whose unit
// matches, falling back to the last column; -1 when the profile has no
// sample types at all (an empty profile).
func (p *Profile) ValueIndex(unit string) int {
	for i, st := range p.SampleTypes {
		if st.Unit == unit {
			return i
		}
	}
	return len(p.SampleTypes) - 1
}

// TypeIndex returns the index of the sample-type column whose type name
// matches ("alloc_space", "inuse_space"), or -1 when absent.
func (p *Profile) TypeIndex(typ string) int {
	for i, st := range p.SampleTypes {
		if st.Type == typ {
			return i
		}
	}
	return -1
}

// StackFuncs appends the sample's function names leaf-first to dst,
// expanding inlined frames, and returns the extended slice. Passing a
// reused dst[:0] keeps per-sample work allocation-free once warm.
func (p *Profile) StackFuncs(s Sample, dst []string) []string {
	for _, loc := range s.Locs {
		for _, fid := range p.locFuncs[loc] {
			dst = append(dst, p.str(p.funcNames[fid]))
		}
	}
	return dst
}

// TopCumFrames parses raw and rolls the profile up to its top-n functions
// by cumulative value — the body of lrmbench's -profile-top. A function is
// credited once per sample no matter how many times it appears in the
// stack (recursion must not double-count). The value index prefers the
// sample type whose unit is "nanoseconds" (the CPU time track of a Go CPU
// profile) and falls back to the last column.
func TopCumFrames(raw []byte, n int) ([]Frame, error) {
	p, err := Parse(raw)
	if err != nil {
		return nil, err
	}
	vi := p.ValueIndex("nanoseconds")
	if vi < 0 {
		return nil, nil // no sample types: empty profile
	}
	cum := make(map[string]int64)
	var total int64
	seen := make(map[string]bool)
	for _, s := range p.Samples {
		if vi >= len(s.Values) {
			continue
		}
		v := s.Values[vi]
		total += v
		for k := range seen {
			delete(seen, k)
		}
		for _, loc := range s.Locs {
			for _, fid := range p.locFuncs[loc] {
				name := p.str(p.funcNames[fid])
				if !seen[name] {
					seen[name] = true
					cum[name] += v
				}
			}
		}
	}
	frames := make([]Frame, 0, len(cum))
	for name, v := range cum {
		frames = append(frames, Frame{Func: name, CumNs: v})
	}
	sort.Slice(frames, func(i, j int) bool {
		if frames[i].CumNs != frames[j].CumNs {
			return frames[i].CumNs > frames[j].CumNs
		}
		return frames[i].Func < frames[j].Func
	})
	if len(frames) > n {
		frames = frames[:n]
	}
	if total > 0 {
		for i := range frames {
			frames[i].CumPct = 100 * float64(frames[i].CumNs) / float64(total)
		}
	}
	return frames, nil
}

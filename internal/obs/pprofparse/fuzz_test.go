package pprofparse

import (
	"bytes"
	"compress/gzip"
	"testing"

	"lrm/internal/compress"
)

// FuzzParsePprof drives the parser with mutated profile bytes. The
// contract under hostile input is the decode-hardening one: never panic,
// never allocate past the decode budget (pinned here by running every
// input under a tight compress.SetDecodeAllocCap), and when the input does
// parse, keep the rollup invariants — frames sorted by descending
// cumulative value and percentages within [0, 100] when a positive total
// exists.
func FuzzParsePprof(f *testing.F) {
	full := syntheticProfile()
	f.Add(full)
	f.Add(labeledProfile())
	f.Add(full[:len(full)/2])
	f.Add([]byte{})
	f.Add([]byte{0x1f, 0x8b}) // bare gzip magic
	var zbuf bytes.Buffer
	zw := gzip.NewWriter(&zbuf)
	_, _ = zw.Write(full)
	_ = zw.Close()
	f.Add(zbuf.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		prev := compress.SetDecodeAllocCap(1 << 20)
		defer compress.SetDecodeAllocCap(prev)

		p, err := Parse(data)
		if err != nil {
			return
		}
		// Parsed profiles must hold their structural invariants even when
		// the bytes were adversarial.
		scratch := make([]string, 0, 32)
		for _, s := range p.Samples {
			scratch = p.StackFuncs(s, scratch[:0])
		}
		frames, err := TopCumFrames(data, 10)
		if err != nil {
			return
		}
		if len(frames) > 10 {
			t.Fatalf("top-10 returned %d frames", len(frames))
		}
		for i := 1; i < len(frames); i++ {
			if frames[i].CumNs > frames[i-1].CumNs {
				t.Fatalf("frames not sorted: %+v", frames)
			}
		}
	})
}

package pprofparse

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"testing"

	"lrm/internal/compress"
)

// pbEnc builds protobuf wire bytes for the synthetic-profile tests.
type pbEnc struct{ buf []byte }

func (e *pbEnc) uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

func (e *pbEnc) varintField(num int, v uint64) {
	e.uvarint(uint64(num)<<3 | 0)
	e.uvarint(v)
}

func (e *pbEnc) bytesField(num int, b []byte) {
	e.uvarint(uint64(num)<<3 | 2)
	e.uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

func (e *pbEnc) msgField(num int, fn func(*pbEnc)) {
	var inner pbEnc
	fn(&inner)
	e.bytesField(num, inner.buf)
}

func (e *pbEnc) packedField(num int, vs ...uint64) {
	var inner pbEnc
	for _, v := range vs {
		inner.uvarint(v)
	}
	e.bytesField(num, inner.buf)
}

// syntheticProfile builds a two-column CPU profile:
//
//	strings: ["", "samples", "count", "cpu", "nanoseconds", "fnA", "fnB", "fnC"]
//	functions: 1=fnA 2=fnB 3=fnC; locations: 1->fnA, 2->fnB, 3->{fnC,fnA} (inlined)
//	sample [1,2]   values [3, 300]  → stack fnA<-fnB
//	sample [1,1]   values [1, 100]  → recursive fnA (credited once)
//	sample [3]     values [1, 100]  → fnC with inlined caller fnA
//
// Cumulative ns: fnA=500 (all samples), fnB=300, fnC=100; total=500.
func syntheticProfile() []byte {
	var e pbEnc
	strs := []string{"", "samples", "count", "cpu", "nanoseconds", "fnA", "fnB", "fnC"}
	e.msgField(1, func(m *pbEnc) { m.varintField(1, 1); m.varintField(2, 2) }) // samples/count
	e.msgField(1, func(m *pbEnc) { m.varintField(1, 3); m.varintField(2, 4) }) // cpu/nanoseconds
	e.msgField(2, func(m *pbEnc) { m.packedField(1, 1, 2); m.packedField(2, 3, 300) })
	e.msgField(2, func(m *pbEnc) { m.packedField(1, 1, 1); m.packedField(2, 1, 100) })
	e.msgField(2, func(m *pbEnc) { m.packedField(1, 3); m.packedField(2, 1, 100) })
	e.msgField(4, func(m *pbEnc) {
		m.varintField(1, 1)
		m.msgField(4, func(l *pbEnc) { l.varintField(1, 1) })
	})
	e.msgField(4, func(m *pbEnc) {
		m.varintField(1, 2)
		m.msgField(4, func(l *pbEnc) { l.varintField(1, 2) })
	})
	e.msgField(4, func(m *pbEnc) {
		m.varintField(1, 3)
		m.msgField(4, func(l *pbEnc) { l.varintField(1, 3) })
		m.msgField(4, func(l *pbEnc) { l.varintField(1, 1) })
	})
	e.msgField(5, func(m *pbEnc) { m.varintField(1, 1); m.varintField(2, 5) })
	e.msgField(5, func(m *pbEnc) { m.varintField(1, 2); m.varintField(2, 6) })
	e.msgField(5, func(m *pbEnc) { m.varintField(1, 3); m.varintField(2, 7) })
	for _, s := range strs {
		e.bytesField(6, []byte(s))
	}
	return e.buf
}

// labeledProfile is syntheticProfile with two extra string-table entries
// ("stage", "chunk_compress") and a stage label on the first sample.
func labeledProfile() []byte {
	var e pbEnc
	strs := []string{"", "samples", "count", "cpu", "nanoseconds", "fnA", "fnB", "fnC",
		"stage", "chunk_compress"}
	e.msgField(1, func(m *pbEnc) { m.varintField(1, 1); m.varintField(2, 2) })
	e.msgField(1, func(m *pbEnc) { m.varintField(1, 3); m.varintField(2, 4) })
	e.msgField(2, func(m *pbEnc) {
		m.packedField(1, 1, 2)
		m.packedField(2, 3, 300)
		m.msgField(3, func(l *pbEnc) { l.varintField(1, 8); l.varintField(2, 9) })
	})
	e.msgField(2, func(m *pbEnc) { m.packedField(1, 1, 1); m.packedField(2, 1, 100) })
	e.msgField(4, func(m *pbEnc) {
		m.varintField(1, 1)
		m.msgField(4, func(l *pbEnc) { l.varintField(1, 1) })
	})
	e.msgField(4, func(m *pbEnc) {
		m.varintField(1, 2)
		m.msgField(4, func(l *pbEnc) { l.varintField(1, 2) })
	})
	e.msgField(5, func(m *pbEnc) { m.varintField(1, 1); m.varintField(2, 5) })
	e.msgField(5, func(m *pbEnc) { m.varintField(1, 2); m.varintField(2, 6) })
	for _, s := range strs {
		e.bytesField(6, []byte(s))
	}
	return e.buf
}

// TestTopCumFramesSynthetic pins the rollup semantics: nanosecond column
// selection, once-per-sample crediting through recursion and inlining, and
// descending cum order — the exact behavior lrmbench's -profile-top JSON
// depends on.
func TestTopCumFramesSynthetic(t *testing.T) {
	frames, err := TopCumFrames(syntheticProfile(), 10)
	if err != nil {
		t.Fatal(err)
	}
	want := []Frame{
		{Func: "fnA", CumNs: 500, CumPct: 100},
		{Func: "fnB", CumNs: 300, CumPct: 60},
		{Func: "fnC", CumNs: 100, CumPct: 20},
	}
	if len(frames) != len(want) {
		t.Fatalf("got %d frames %+v, want %d", len(frames), frames, len(want))
	}
	for i, w := range want {
		if frames[i] != w {
			t.Errorf("frame %d: got %+v want %+v", i, frames[i], w)
		}
	}

	// top-n truncation
	top1, err := TopCumFrames(syntheticProfile(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(top1) != 1 || top1[0].Func != "fnA" {
		t.Fatalf("top-1: %+v", top1)
	}
}

// TestTopCumFramesGzip checks the gzip header path (the format the runtime
// actually emits) decodes to the same rollup.
func TestTopCumFramesGzip(t *testing.T) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(syntheticProfile()); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	frames, err := TopCumFrames(buf.Bytes(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 3 || frames[0].Func != "fnA" {
		t.Fatalf("gzip path: %+v", frames)
	}
}

// TestTopCumFramesCorrupt feeds garbage and truncations; the parser must
// error (or return empty) rather than panic.
func TestTopCumFramesCorrupt(t *testing.T) {
	full := syntheticProfile()
	inputs := [][]byte{
		nil,
		{0xff},
		[]byte("not a profile"),
		full[:len(full)/2],
		full[:3],
	}
	for i, in := range inputs {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("input %d: panic %v", i, r)
				}
			}()
			TopCumFrames(in, 10)
		}()
	}
}

// TestParseSampleTypesAndLabels checks the parser surfaces the sample-type
// names and per-sample string labels the continuous profiler attributes
// by, including the deferred string-table resolution (the table arrives
// after the messages that reference it).
func TestParseSampleTypesAndLabels(t *testing.T) {
	p, err := Parse(labeledProfile())
	if err != nil {
		t.Fatal(err)
	}
	wantTypes := []SampleType{{Type: "samples", Unit: "count"}, {Type: "cpu", Unit: "nanoseconds"}}
	if len(p.SampleTypes) != 2 || p.SampleTypes[0] != wantTypes[0] || p.SampleTypes[1] != wantTypes[1] {
		t.Fatalf("sample types %+v, want %+v", p.SampleTypes, wantTypes)
	}
	if got := p.ValueIndex("nanoseconds"); got != 1 {
		t.Fatalf("ValueIndex(nanoseconds) = %d, want 1", got)
	}
	if got := p.TypeIndex("cpu"); got != 1 {
		t.Fatalf("TypeIndex(cpu) = %d, want 1", got)
	}
	if got := p.TypeIndex("alloc_space"); got != -1 {
		t.Fatalf("TypeIndex(alloc_space) = %d, want -1", got)
	}
	if len(p.Samples) != 2 {
		t.Fatalf("samples %d, want 2", len(p.Samples))
	}
	if got := p.Samples[0].Labels["stage"]; got != "chunk_compress" {
		t.Fatalf("sample 0 stage label %q, want chunk_compress", got)
	}
	if p.Samples[1].Labels != nil {
		t.Fatalf("sample 1 unexpectedly labeled: %v", p.Samples[1].Labels)
	}
	stack := p.StackFuncs(p.Samples[0], nil)
	if len(stack) != 2 || stack[0] != "fnA" || stack[1] != "fnB" {
		t.Fatalf("stack %v, want [fnA fnB]", stack)
	}
}

// TestParseEmptyProfile: a profile with no sample types yields no frames
// and no error (the runtime emits such profiles for zero-sample windows).
func TestParseEmptyProfile(t *testing.T) {
	frames, err := TopCumFrames([]byte{}, 10)
	if err != nil || frames != nil {
		t.Fatalf("empty profile: frames %v err %v", frames, err)
	}
}

// TestGunzipBombRefused: a gzip stream claiming more bytes than the decode
// allocation cap is refused with a classified error before the claimed
// bytes are allocated.
func TestGunzipBombRefused(t *testing.T) {
	prev := compress.SetDecodeAllocCap(1 << 16)
	defer compress.SetDecodeAllocCap(prev)

	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zero := make([]byte, 1<<12)
	for i := 0; i < 64; i++ { // 256 KiB of zeros, compresses tiny
		if _, err := zw.Write(zero); err != nil {
			t.Fatal(err)
		}
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	_, err := Parse(buf.Bytes())
	if err == nil {
		t.Fatal("gzip bomb parsed without error")
	}
	if !errors.Is(err, compress.ErrCorrupt) {
		t.Fatalf("bomb refusal not classified as ErrCorrupt: %v", err)
	}
}

package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// WriteJSON writes the full registry snapshot as a single JSON object —
// the document shape expvar consumers see under the "lrm" variable.
func WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Snapshot())
}

// promName maps a registry metric name to a legal Prometheus metric name:
// an "lrm_" prefix plus the name with every character outside
// [a-zA-Z0-9_:] rewritten to '_'.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("lrm_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WriteProm writes every registered metric in the Prometheus text
// exposition format (version 0.0.4): counters and gauges as single
// samples, histograms as cumulative le-labelled buckets with _sum and
// _count series. Output order is deterministic (sorted by metric name).
func WriteProm(w io.Writer) error {
	snap := Snapshot()
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	for _, name := range sortedKeys(snap.Counters) {
		pn := promName(name)
		p("# TYPE %s counter\n%s %d\n", pn, pn, snap.Counters[name])
	}
	for _, name := range sortedKeys(snap.Gauges) {
		pn := promName(name)
		p("# TYPE %s gauge\n%s %d\n", pn, pn, snap.Gauges[name])
	}
	for _, name := range sortedKeys(snap.Floats) {
		pn := promName(name)
		p("# TYPE %s gauge\n%s %g\n", pn, pn, snap.Floats[name])
	}
	for _, name := range sortedKeys(snap.Histograms) {
		h := snap.Histograms[name]
		pn := promName(name)
		p("# TYPE %s histogram\n", pn)
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			p("%s_bucket{le=\"%d\"} %d\n", pn, bound, cum)
		}
		cum += h.Counts[len(h.Bounds)]
		p("%s_bucket{le=\"+Inf\"} %d\n", pn, cum)
		p("%s_sum %d\n", pn, h.Sum)
		p("%s_count %d\n", pn, h.Count)
		// Exemplars ride as comment lines: the classic 0.0.4 text format has
		// no exemplar syntax, and comments are ignored by every parser, so
		// the trace linkage is visible to humans without breaking scrapes.
		for i, e := range h.Exemplars {
			if e == nil {
				continue
			}
			le := "+Inf"
			if i < len(h.Bounds) {
				le = fmt.Sprintf("%d", h.Bounds[i])
			}
			p("# exemplar %s_bucket{le=\"%s\"} trace_id=\"%s\" value=%d\n", pn, le, e.TraceID, e.Value)
		}
	}
	return err
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

var publishOnce sync.Once

// PublishExpvar exposes the registry snapshot as the expvar variable "lrm",
// making it part of the standard /debug/vars JSON document. Safe to call
// more than once; only the first call publishes.
func PublishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("lrm", expvar.Func(func() any { return Snapshot() }))
	})
}

package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// WriteJSON writes the full registry snapshot as a single JSON object —
// the document shape expvar consumers see under the "lrm" variable.
func WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Snapshot())
}

// promName maps a registry metric name to a legal Prometheus metric name:
// an "lrm_" prefix plus the name with every character outside
// [a-zA-Z0-9_:] rewritten to '_'.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("lrm_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promNames maps every registry name in names to a unique Prometheus name.
// Sanitization is lossy ("a.b" and "a-b" both become "lrm_a_b"), and two
// series under one Prometheus name corrupt a scrape; when a sanitized name
// collides, every member of the colliding group gets a "_<fnv32a-hex>"
// suffix derived from its original name. Hashing all members (not just the
// latecomers) keeps the mapping deterministic regardless of registration
// or iteration order.
func promNames(names []string) map[string]string {
	out := make(map[string]string, len(names))
	hits := make(map[string]int, len(names))
	for _, n := range names {
		pn := promName(n)
		out[n] = pn
		hits[pn]++
	}
	for _, n := range names {
		if hits[out[n]] > 1 {
			out[n] = fmt.Sprintf("%s_%08x", out[n], fnv32a(n))
		}
	}
	return out
}

// fnv32a is the FNV-1a hash, inlined to keep the disambiguation suffix
// cheap and dependency-free.
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// descriptions is the metric help-text registry backing # HELP exposition.
var descriptions = struct {
	sync.RWMutex
	m map[string]string
}{m: map[string]string{}}

// Describe registers a one-line help text for the metric with the given
// registry name, emitted as a # HELP line by WriteProm. Describing a
// metric is optional and may happen before or after the metric itself is
// registered; the last description wins.
func Describe(name, help string) {
	descriptions.Lock()
	defer descriptions.Unlock()
	descriptions.m[name] = help
}

// description returns the registered help text for name, or "".
func description(name string) string {
	descriptions.RLock()
	defer descriptions.RUnlock()
	return descriptions.m[name]
}

// promHelpEscaper escapes help text per the 0.0.4 text format: backslash
// and newline are the only characters HELP lines must escape.
var promHelpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// WriteProm writes every registered metric in the Prometheus text
// exposition format (version 0.0.4): counters and gauges as single
// samples, histograms as cumulative le-labelled buckets with _sum and
// _count series. Metrics with a registered description (Describe) get a
// # HELP line; sanitized-name collisions are disambiguated (promNames).
// Output order is deterministic (sorted by metric name).
func WriteProm(w io.Writer) error {
	snap := Snapshot()
	var all []string
	all = append(all, sortedKeys(snap.Counters)...)
	all = append(all, sortedKeys(snap.Gauges)...)
	all = append(all, sortedKeys(snap.Floats)...)
	all = append(all, sortedKeys(snap.Histograms)...)
	pns := promNames(all)
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	help := func(name, pn string) {
		if d := description(name); d != "" {
			p("# HELP %s %s\n", pn, promHelpEscaper.Replace(d))
		}
	}
	for _, name := range sortedKeys(snap.Counters) {
		pn := pns[name]
		help(name, pn)
		p("# TYPE %s counter\n%s %d\n", pn, pn, snap.Counters[name])
	}
	for _, name := range sortedKeys(snap.Gauges) {
		pn := pns[name]
		help(name, pn)
		p("# TYPE %s gauge\n%s %d\n", pn, pn, snap.Gauges[name])
	}
	for _, name := range sortedKeys(snap.Floats) {
		pn := pns[name]
		help(name, pn)
		p("# TYPE %s gauge\n%s %g\n", pn, pn, snap.Floats[name])
	}
	for _, name := range sortedKeys(snap.Histograms) {
		h := snap.Histograms[name]
		pn := pns[name]
		help(name, pn)
		p("# TYPE %s histogram\n", pn)
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			p("%s_bucket{le=\"%d\"} %d\n", pn, bound, cum)
		}
		cum += h.Counts[len(h.Bounds)]
		p("%s_bucket{le=\"+Inf\"} %d\n", pn, cum)
		p("%s_sum %d\n", pn, h.Sum)
		p("%s_count %d\n", pn, h.Count)
		// Exemplars ride as comment lines: the classic 0.0.4 text format has
		// no exemplar syntax, and comments are ignored by every parser, so
		// the trace linkage is visible to humans without breaking scrapes.
		for i, e := range h.Exemplars {
			if e == nil {
				continue
			}
			le := "+Inf"
			if i < len(h.Bounds) {
				le = fmt.Sprintf("%d", h.Bounds[i])
			}
			p("# exemplar %s_bucket{le=\"%s\"} trace_id=\"%s\" value=%d\n", pn, le, e.TraceID, e.Value)
		}
	}
	return err
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

var publishOnce sync.Once

// PublishExpvar exposes the registry snapshot as the expvar variable "lrm",
// making it part of the standard /debug/vars JSON document. Safe to call
// more than once; only the first call publishes.
func PublishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("lrm", expvar.Func(func() any { return Snapshot() }))
	})
}

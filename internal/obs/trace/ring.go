package trace

import (
	"sort"
	"sync"

	"lrm/internal/obs"
)

// Hoisted ring metrics: finished counts every completed trace offered to
// the ring, retained the ones a Snapshot could still see (error slots use
// ring semantics, so retained only ever over-counts by evicted entries).
var (
	obsTracesFinished = obs.GetCounter("trace.finished")
	obsTraceSpans     = obs.GetCounter("trace.spans")
)

// ring implements tail-based retention for completed traces. Two bounded
// pools: the slowest slowCap traces by root duration (min-evict), and a
// circular buffer of the last errCap traces containing an error — a trace
// with a ChunkError or any SetError is always worth keeping, however fast
// it was. Memory is bounded by (slowCap+errCap) * maxSpansPerTrace records.
type ringState struct {
	mu      sync.Mutex
	slowCap int
	errCap  int
	slow    []*Trace // unordered; evict the minimum-duration entry when full
	errs    []*Trace // circular, errNext is the next overwrite slot
	errNext int
}

var ring = &ringState{slowCap: 32, errCap: 32}

// SetRetention resizes the retention pools: keep the slowest `slow` traces
// and the last `errs` errored traces. Values below 1 are clamped to 1.
// Existing retained traces are kept up to the new caps (slowest first).
func SetRetention(slow, errs int) {
	if slow < 1 {
		slow = 1
	}
	if errs < 1 {
		errs = 1
	}
	ring.mu.Lock()
	defer ring.mu.Unlock()
	ring.slowCap, ring.errCap = slow, errs
	if len(ring.slow) > slow {
		sort.Slice(ring.slow, func(i, j int) bool { return ring.slow[i].Dur > ring.slow[j].Dur })
		ring.slow = ring.slow[:slow]
	}
	if len(ring.errs) > errs {
		// Keep the newest errs entries in arrival order.
		start := (ring.errNext - errs + len(ring.errs)) % len(ring.errs)
		kept := make([]*Trace, 0, errs)
		for i := 0; i < errs; i++ {
			kept = append(kept, ring.errs[(start+i)%len(ring.errs)])
		}
		ring.errs, ring.errNext = kept, 0
	}
}

// offer hands a completed trace to the retention ring.
func offer(t *Trace) {
	obsTracesFinished.Inc()
	obsTraceSpans.Add(int64(len(t.Spans)))
	ring.mu.Lock()
	defer ring.mu.Unlock()
	if t.Errs > 0 {
		if len(ring.errs) < ring.errCap {
			ring.errs = append(ring.errs, t)
		} else {
			ring.errs[ring.errNext] = t
			ring.errNext = (ring.errNext + 1) % ring.errCap
		}
	}
	if len(ring.slow) < ring.slowCap {
		ring.slow = append(ring.slow, t)
		return
	}
	fastest := 0
	for i, s := range ring.slow {
		if s.Dur < ring.slow[fastest].Dur {
			fastest = i
		}
	}
	if t.Dur > ring.slow[fastest].Dur {
		ring.slow[fastest] = t
	}
}

// Snapshot returns every retained trace, deduplicated (an errored slow
// trace sits in both pools) and sorted by start time.
func Snapshot() []*Trace {
	ring.mu.Lock()
	seen := make(map[uint64]bool, len(ring.slow)+len(ring.errs))
	out := make([]*Trace, 0, len(ring.slow)+len(ring.errs))
	for _, pool := range [][]*Trace{ring.slow, ring.errs} {
		for _, t := range pool {
			if t != nil && !seen[t.ID] {
				seen[t.ID] = true
				out = append(out, t)
			}
		}
	}
	ring.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Reset discards every retained trace. Retention caps are kept.
func Reset() {
	ring.mu.Lock()
	defer ring.mu.Unlock()
	ring.slow = nil
	ring.errs = nil
	ring.errNext = 0
}

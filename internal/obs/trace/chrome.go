package trace

import (
	"encoding/json"
	"io"
	"sort"
)

// chromeEvent is one Chrome trace_event record. Complete events ("X")
// carry ts/dur in microseconds; metadata events ("M") name the per-trace
// process lanes. Span identity and attribution ride in args so the span
// tree (trace_id/span_id/parent_id) survives the export losslessly.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeDoc is the object form of the Chrome trace file format, loadable
// by Perfetto (ui.perfetto.dev) and chrome://tracing.
type chromeDoc struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// WriteChromeTrace writes traces as Chrome trace_event JSON. Each trace
// becomes its own process (pid) named after its trace ID and root span;
// spans are laid out on thread lanes (tid) such that spans sharing a lane
// strictly nest or are disjoint — the invariant the Chrome/Perfetto
// renderers require of complete events — with starts non-decreasing and
// durations clamped non-negative per lane. A span is preferentially placed
// on its parent's lane so the common sequential case renders as one stack.
func WriteChromeTrace(w io.Writer, traces []*Trace) error {
	doc := chromeDoc{DisplayTimeUnit: "ns", TraceEvents: []chromeEvent{}}

	// One shared time base keeps ts values small and lanes comparable.
	var base int64
	haveBase := false
	for _, t := range traces {
		for _, s := range t.Spans {
			if !haveBase || s.Start < base {
				base, haveBase = s.Start, true
			}
		}
	}

	for ti, t := range traces {
		pid := ti + 1
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "process_name",
			Ph:   "M",
			Pid:  pid,
			Args: map[string]any{"name": "trace " + t.IDString() + " " + t.Root},
		})
		spans := append([]SpanRecord(nil), t.Spans...)
		sort.Slice(spans, func(i, j int) bool {
			if spans[i].Start != spans[j].Start {
				return spans[i].Start < spans[j].Start
			}
			return spans[i].SpanID < spans[j].SpanID
		})

		// Greedy lane assignment in start order. A lane is eligible when its
		// most recent span either fully contains the candidate (ancestor-style
		// nesting) or ended before it starts; the parent's lane is tried
		// first. Anything else opens a new lane.
		type laneSpan struct{ start, end int64 }
		var lanes [][]laneSpan // per-lane stack of open/closed intervals
		laneOf := make(map[uint64]int, len(spans))
		fits := func(lane int, start, end int64) bool {
			stack := lanes[lane]
			for len(stack) > 0 && stack[len(stack)-1].end <= start {
				stack = stack[:len(stack)-1]
			}
			lanes[lane] = stack
			if len(stack) == 0 {
				return true
			}
			top := stack[len(stack)-1]
			return top.start <= start && end <= top.end
		}
		for _, s := range spans {
			dur := s.Dur
			if dur < 0 {
				dur = 0
			}
			start, end := s.Start, s.Start+dur
			lane := -1
			if pl, ok := laneOf[s.ParentID]; ok && fits(pl, start, end) {
				lane = pl
			} else {
				for li := range lanes {
					if fits(li, start, end) {
						lane = li
						break
					}
				}
			}
			if lane < 0 {
				lanes = append(lanes, nil)
				lane = len(lanes) - 1
			}
			lanes[lane] = append(lanes[lane], laneSpan{start, end})
			laneOf[s.SpanID] = lane

			args := map[string]any{
				"trace_id": t.IDString(),
				"span_id":  IDString(s.SpanID),
			}
			if s.ParentID != 0 {
				args["parent_id"] = IDString(s.ParentID)
			}
			if s.BytesIn != 0 || s.BytesOut != 0 {
				args["bytes_in"] = s.BytesIn
				args["bytes_out"] = s.BytesOut
			}
			if s.Items != 0 {
				args["items"] = s.Items
			}
			if s.Err != "" {
				args["error"] = s.Err
			}
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: s.Name,
				Cat:  "lrm",
				Ph:   "X",
				Ts:   float64(start-base) / 1e3,
				Dur:  float64(dur) / 1e3,
				Pid:  pid,
				Tid:  lane + 1,
				Args: args,
			})
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

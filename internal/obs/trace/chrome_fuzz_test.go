package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

// tracesFromFuzz decodes an arbitrary byte string into span trees: four
// bytes per span — (new-trace selector, start, signed dur, parent
// selector). The decoder deliberately produces the degenerate shapes the
// exporter must survive: zero-duration spans, synthetic negative durations
// (a clock step mid-span), spans whose parent is missing (an unfinished
// parent never recorded), empty traces, and deep or wide trees.
func tracesFromFuzz(data []byte) []*Trace {
	var traces []*Trace
	var cur *Trace
	nextSpan := uint64(1)
	for len(data) >= 4 {
		rec := data[:4]
		data = data[4:]
		if cur == nil || rec[0]%5 == 0 {
			cur = &Trace{ID: uint64(len(traces) + 1), Root: "fuzz.root"}
			traces = append(traces, cur)
		}
		start := int64(int8(rec[1])) * 1000
		dur := int64(int8(rec[2])) * 100 // negative and zero durations included
		var parent uint64
		switch {
		case rec[3]&0x80 != 0:
			parent = 1 << 60 // dangling parent: that span was never finished
		case len(cur.Spans) > 0:
			parent = cur.Spans[int(rec[3])%len(cur.Spans)].SpanID
		}
		cur.Spans = append(cur.Spans, SpanRecord{
			Name:     "fuzz.span",
			SpanID:   nextSpan,
			ParentID: parent,
			Start:    start,
			Dur:      dur,
			BytesIn:  int64(rec[0]),
			Items:    int64(rec[3]),
		})
		nextSpan++
	}
	for _, tr := range traces {
		if len(tr.Spans) > 0 {
			tr.Start = tr.Spans[0].Start
			tr.Dur = tr.Spans[0].Dur
		}
	}
	return traces
}

// FuzzWriteChromeTrace pins the exporter's output invariants over arbitrary
// span trees: the document is always valid JSON, and within every (pid,
// tid) lane complete events have non-negative durations and non-decreasing
// timestamps — the properties Perfetto and chrome://tracing require to
// render without dropping events.
func FuzzWriteChromeTrace(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{1, 10, 0, 0, 2, 10, 5, 0, 3, 12, 1, 1})           // nested tree
	f.Add([]byte{1, 5, 0xFF, 0, 6, 7, 0x80, 0x80})                 // negative dur + dangling parent
	f.Add([]byte{0, 1, 2, 3, 5, 4, 3, 2, 10, 9, 8, 7, 0, 1, 1, 1}) // multiple traces
	f.Fuzz(func(t *testing.T, data []byte) {
		traces := tracesFromFuzz(data)
		var buf bytes.Buffer
		if err := WriteChromeTrace(&buf, traces); err != nil {
			t.Fatalf("WriteChromeTrace: %v", err)
		}
		if !json.Valid(buf.Bytes()) {
			t.Fatalf("invalid JSON: %s", buf.Bytes())
		}
		var doc struct {
			TraceEvents []struct {
				Ph  string  `json:"ph"`
				Ts  float64 `json:"ts"`
				Dur float64 `json:"dur"`
				Pid int     `json:"pid"`
				Tid int     `json:"tid"`
			} `json:"traceEvents"`
		}
		if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
			t.Fatalf("decode: %v", err)
		}
		nSpans := 0
		for _, tr := range traces {
			nSpans += len(tr.Spans)
		}
		nX := 0
		lastTs := map[[2]int]float64{}
		for _, e := range doc.TraceEvents {
			if e.Ph != "X" {
				continue
			}
			nX++
			if e.Dur < 0 {
				t.Fatalf("negative dur %v escaped the exporter", e.Dur)
			}
			key := [2]int{e.Pid, e.Tid}
			if last, ok := lastTs[key]; ok && e.Ts < last {
				t.Fatalf("ts went backwards on pid=%d tid=%d: %v after %v", e.Pid, e.Tid, e.Ts, last)
			}
			lastTs[key] = e.Ts
		}
		if nX != nSpans {
			t.Fatalf("exporter emitted %d complete events for %d spans", nX, nSpans)
		}
	})
}

package trace

import (
	"fmt"
	"net/http"
	"sort"
	"time"

	"lrm/internal/obs"
)

func init() {
	obs.RegisterDebugHandler("/debug/traces", http.HandlerFunc(handleTraces))
}

// handleTraces serves the retained trace ring. The default view is a
// human-readable span tree per trace; ?format=chrome downloads the same
// snapshot as Chrome trace_event JSON for Perfetto.
func handleTraces(w http.ResponseWriter, r *http.Request) {
	traces := Snapshot()
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="lrm-trace.json"`)
		if err := WriteChromeTrace(w, traces); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "retained traces: %d (tail-based: slowest + errored; ?format=chrome for Perfetto JSON)\n\n", len(traces))
	for _, t := range traces {
		writeTraceText(w, t)
	}
}

// writeTraceText renders one trace as an indented tree: children sorted by
// start time under their parent, spans with a missing parent (dropped or
// straggling) listed flat at the end.
func writeTraceText(w http.ResponseWriter, t *Trace) {
	fmt.Fprintf(w, "trace %s root=%s start=%s dur=%s spans=%d errs=%d",
		t.IDString(), t.Root, time.Unix(0, t.Start).UTC().Format(time.RFC3339Nano),
		time.Duration(t.Dur), len(t.Spans), t.Errs)
	if t.Dropped > 0 {
		fmt.Fprintf(w, " dropped=%d", t.Dropped)
	}
	fmt.Fprintln(w)

	children := make(map[uint64][]SpanRecord, len(t.Spans))
	byID := make(map[uint64]bool, len(t.Spans))
	for _, s := range t.Spans {
		children[s.ParentID] = append(children[s.ParentID], s)
		byID[s.SpanID] = true
	}
	for _, cs := range children {
		sort.Slice(cs, func(i, j int) bool {
			if cs[i].Start != cs[j].Start {
				return cs[i].Start < cs[j].Start
			}
			return cs[i].SpanID < cs[j].SpanID
		})
	}
	var walk func(parent uint64, depth int)
	walk = func(parent uint64, depth int) {
		for _, s := range children[parent] {
			writeSpanLine(w, s, depth)
			walk(s.SpanID, depth+1)
		}
	}
	walk(0, 1)
	for _, s := range t.Spans {
		if s.ParentID != 0 && !byID[s.ParentID] {
			writeSpanLine(w, s, 1)
			walk(s.SpanID, 2)
		}
	}
	fmt.Fprintln(w)
}

func writeSpanLine(w http.ResponseWriter, s SpanRecord, depth int) {
	for i := 0; i < depth; i++ {
		fmt.Fprint(w, "  ")
	}
	fmt.Fprintf(w, "%s span=%s dur=%s", s.Name, IDString(s.SpanID), time.Duration(s.Dur))
	if s.BytesIn != 0 || s.BytesOut != 0 {
		fmt.Fprintf(w, " bytes=%d->%d", s.BytesIn, s.BytesOut)
	}
	if s.Items != 0 {
		fmt.Fprintf(w, " items=%d", s.Items)
	}
	if s.Err != "" {
		fmt.Fprintf(w, " err=%q", s.Err)
	}
	fmt.Fprintln(w)
}

package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"lrm/internal/obs"
)

// withTracing flips both observability switches on for one test and
// restores the previous state, registry, and ring afterwards.
func withTracing(t *testing.T) {
	t.Helper()
	pm := obs.SetEnabled(true)
	pt := SetEnabled(true)
	obs.Reset()
	Reset()
	t.Cleanup(func() {
		obs.Reset()
		Reset()
		obs.SetEnabled(pm)
		SetEnabled(pt)
	})
}

func TestDisabledStartReturnsNilSpan(t *testing.T) {
	pm := obs.SetEnabled(false)
	pt := SetEnabled(false)
	t.Cleanup(func() {
		obs.SetEnabled(pm)
		SetEnabled(pt)
	})
	ctx := context.Background()
	got, sp := Start(ctx, "disabled.stage")
	if got != ctx {
		t.Error("disabled Start must return the ctx untouched")
	}
	if sp != nil {
		t.Fatalf("disabled Start returned a live span: %+v", sp)
	}
	// Every method must tolerate the nil receiver.
	sp.SetBytes(1, 2)
	sp.AddItems(3)
	sp.SetError(errors.New("ignored"))
	sp.End()
	if sp.Name() != "" || sp.TraceID() != "" || sp.SpanID() != 0 {
		t.Error("nil span accessors must return zero values")
	}
	lctx, restore := WithLabels(ctx, "stage", "x")
	restore()
	if lctx != ctx {
		t.Error("disabled WithLabels must return the ctx untouched")
	}
}

func TestSpanTreeNesting(t *testing.T) {
	withTracing(t)
	ctx, root := Start(context.Background(), "t.root")
	cctx, child := Start(ctx, "t.child")
	_, gc := Start(cctx, "t.grandchild")
	gc.SetBytes(10, 5)
	gc.End()
	child.SetError(errors.New("boom"))
	child.End()
	root.AddItems(2)
	root.End()

	traces := Snapshot()
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.Root != "t.root" {
		t.Errorf("root name %q, want t.root", tr.Root)
	}
	if tr.Errs != 1 {
		t.Errorf("Errs = %d, want 1", tr.Errs)
	}
	if len(tr.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(tr.Spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range tr.Spans {
		byName[s.Name] = s
	}
	if byName["t.root"].ParentID != 0 {
		t.Error("root span must have parent 0")
	}
	if byName["t.child"].ParentID != byName["t.root"].SpanID {
		t.Error("child must parent onto root")
	}
	if byName["t.grandchild"].ParentID != byName["t.child"].SpanID {
		t.Error("grandchild must parent onto child")
	}
	if byName["t.grandchild"].BytesIn != 10 || byName["t.grandchild"].BytesOut != 5 {
		t.Error("grandchild byte attribution lost")
	}
	if byName["t.child"].Err == "" {
		t.Error("child error message lost")
	}
}

func TestStartAfterRootEndOpensFreshTrace(t *testing.T) {
	withTracing(t)
	ctx, root := Start(context.Background(), "fresh.first")
	first := root.TraceID()
	root.End()
	// The stale ctx still carries the finished span; a new Start must open
	// a fresh trace rather than appending to the snapshotted tree.
	_, sp := Start(ctx, "fresh.second")
	if sp.TraceID() == first {
		t.Error("Start on a completed trace's ctx reused its trace ID")
	}
	sp.End()
	if n := len(Snapshot()); n != 2 {
		t.Errorf("got %d retained traces, want 2", n)
	}
}

func TestStragglerChildIsDropped(t *testing.T) {
	withTracing(t)
	ctx, root := Start(context.Background(), "strag.root")
	_, late := Start(ctx, "strag.late")
	root.End()
	late.End() // outlives its root: must not corrupt the snapshotted trace
	traces := Snapshot()
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	if len(traces[0].Spans) != 1 || traces[0].Spans[0].Name != "strag.root" {
		t.Errorf("straggler leaked into the trace: %+v", traces[0].Spans)
	}
}

func TestSpanCapCountsDropped(t *testing.T) {
	withTracing(t)
	ctx, root := Start(context.Background(), "cap.root")
	for i := 0; i < maxSpansPerTrace+8; i++ {
		_, sp := Start(ctx, "cap.child")
		sp.End()
	}
	root.End()
	traces := Snapshot()
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if len(tr.Spans) != maxSpansPerTrace {
		t.Errorf("got %d spans, want the %d cap", len(tr.Spans), maxSpansPerTrace)
	}
	if tr.Dropped < 8 {
		t.Errorf("Dropped = %d, want >= 8", tr.Dropped)
	}
}

func TestRingRetention(t *testing.T) {
	withTracing(t)
	SetRetention(2, 2)
	t.Cleanup(func() { SetRetention(32, 32) })

	offer(&Trace{ID: 1, Root: "r", Start: 1, Dur: 100})
	offer(&Trace{ID: 2, Root: "r", Start: 2, Dur: 300})
	offer(&Trace{ID: 3, Root: "r", Start: 3, Dur: 200}) // evicts ID 1 (fastest)
	ids := map[uint64]bool{}
	for _, tr := range Snapshot() {
		ids[tr.ID] = true
	}
	if ids[1] || !ids[2] || !ids[3] {
		t.Errorf("slow pool retained %v, want {2,3}", ids)
	}

	// A fast errored trace is always retained via the error ring.
	offer(&Trace{ID: 4, Root: "r", Start: 4, Dur: 1, Errs: 1})
	found := false
	for _, tr := range Snapshot() {
		if tr.ID == 4 {
			found = true
		}
	}
	if !found {
		t.Error("fast errored trace was not retained")
	}

	// A slow errored trace sits in both pools but snapshots once.
	offer(&Trace{ID: 5, Root: "r", Start: 5, Dur: 5000, Errs: 1})
	n := 0
	for _, tr := range Snapshot() {
		if tr.ID == 5 {
			n++
		}
	}
	if n != 1 {
		t.Errorf("trace 5 appeared %d times in Snapshot, want 1 (dedup)", n)
	}

	Reset()
	if len(Snapshot()) != 0 {
		t.Error("Snapshot non-empty after Reset")
	}
}

func TestSnapshotSortedByStart(t *testing.T) {
	withTracing(t)
	offer(&Trace{ID: 10, Root: "r", Start: 300, Dur: 1})
	offer(&Trace{ID: 11, Root: "r", Start: 100, Dur: 2})
	offer(&Trace{ID: 12, Root: "r", Start: 200, Dur: 3})
	snap := Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Start > snap[i].Start {
			t.Fatalf("Snapshot out of order at %d: %d > %d", i, snap[i-1].Start, snap[i].Start)
		}
	}
}

func TestLogHandlerStampsTraceIDs(t *testing.T) {
	withTracing(t)
	var buf bytes.Buffer
	logger := slog.New(NewLogHandler(slog.NewJSONHandler(&buf, nil)))

	ctx, sp := Start(context.Background(), "log.stage")
	logger.InfoContext(ctx, "inside span")
	line := buf.String()
	if !strings.Contains(line, `"trace_id":"`+sp.TraceID()+`"`) {
		t.Errorf("record missing trace_id %s: %s", sp.TraceID(), line)
	}
	if !strings.Contains(line, `"span_id":"`+IDString(sp.SpanID())+`"`) {
		t.Errorf("record missing span_id: %s", line)
	}
	sp.End()

	buf.Reset()
	logger.Info("outside any span")
	if strings.Contains(buf.String(), "trace_id") {
		t.Errorf("untraced record gained a trace_id: %s", buf.String())
	}
}

func TestChromeExportRoundTrip(t *testing.T) {
	withTracing(t)
	ctx, root := Start(context.Background(), "chrome.root")
	_, child := Start(ctx, "chrome.child")
	child.SetBytes(100, 50)
	child.End()
	root.End()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("export is not valid JSON")
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var sawMeta, sawRoot, sawChild bool
	for _, e := range doc.TraceEvents {
		switch {
		case e.Ph == "M":
			sawMeta = true
		case e.Name == "chrome.root":
			sawRoot = true
		case e.Name == "chrome.child":
			sawChild = true
			if e.Args["parent_id"] == nil || e.Args["bytes_in"] == nil {
				t.Errorf("child args missing parent/bytes: %v", e.Args)
			}
		}
	}
	if !sawMeta || !sawRoot || !sawChild {
		t.Errorf("export missing events: meta=%v root=%v child=%v", sawMeta, sawRoot, sawChild)
	}
}

func TestDebugTracesEndpointAndNoGoroutineLeak(t *testing.T) {
	withTracing(t)
	ctx, sp := Start(context.Background(), "http.probe")
	_ = ctx
	sp.End()

	before := runtime.NumGoroutine()
	srv := httptest.NewServer(obs.Handler())
	var chromeBody []byte
	for _, path := range []string{"/metrics", "/debug/traces", "/debug/traces?format=chrome"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		switch path {
		case "/debug/traces":
			if !strings.Contains(string(body), "http.probe") {
				t.Errorf("text view missing the recorded span: %s", body)
			}
		case "/debug/traces?format=chrome":
			chromeBody = body
		}
	}
	if !json.Valid(chromeBody) {
		t.Error("chrome format endpoint returned invalid JSON")
	}
	srv.Close()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines did not settle after server close: before=%d now=%d",
		before, runtime.NumGoroutine())
}

func TestTraceCountersAdvance(t *testing.T) {
	withTracing(t)
	snapBefore := obs.Snapshot().Counters["trace.finished"]
	_, sp := Start(context.Background(), "ctr.root")
	sp.End()
	if got := obs.Snapshot().Counters["trace.finished"]; got != snapBefore+1 {
		t.Errorf("trace.finished = %d, want %d", got, snapBefore+1)
	}
}

// Disabled-overhead guard for the trace layer, the PR-4 promise extended:
// with both observability switches off a trace.Start costs one atomic load
// and returns (ctx, nil), so instrumenting the hot paths with spans and
// pprof labels must stay under 2% of real stage time. Modeled the same way
// as internal/obs's guard so it holds under -race and on slow machines.
package trace_test

import (
	"context"
	"math"
	"testing"
	"time"

	"lrm/internal/compress/zfp"
	"lrm/internal/grid"
	"lrm/internal/obs"
	"lrm/internal/obs/trace"
)

// sink defeats dead-code elimination of the measured loop.
var sink *trace.Span

// disabledLifecycleNs measures one full disabled trace call shape — the
// exact sequence a chunk worker executes: WithLabels, Start, byte and item
// attribution, End — averaged over many iterations.
func disabledLifecycleNs() float64 {
	const iters = 200_000
	ctx := context.Background()
	start := time.Now()
	for i := 0; i < iters; i++ {
		lctx, restore := trace.WithLabels(ctx, "stage", "probe")
		sctx, sp := trace.Start(lctx, "overhead.probe")
		_ = sctx
		sp.SetBytes(1, 2)
		sp.AddItems(3)
		sp.SetError(nil)
		sp.End()
		restore()
		sink = sp
	}
	return float64(time.Since(start).Nanoseconds()) / iters
}

func overheadField() *grid.Field {
	f := grid.New(128, 128)
	for i := range f.Data {
		f.Data[i] = 100 + 10*math.Sin(float64(i)/9)
	}
	return f
}

func TestTraceDisabledOverheadBelowTwoPercent(t *testing.T) {
	pm := obs.SetEnabled(false)
	pt := trace.SetEnabled(false)
	t.Cleanup(func() {
		obs.SetEnabled(pm)
		trace.SetEnabled(pt)
	})

	lifecycleNs := disabledLifecycleNs()
	f := overheadField()
	codec := zfp.MustNew(16).WithWorkers(1)
	compress := func() {
		if _, err := codec.Compress(f); err != nil {
			t.Fatal(err)
		}
	}
	compress() // warm up before timing

	const runs = 5
	start := time.Now()
	for i := 0; i < runs; i++ {
		compress()
	}
	stageNs := float64(time.Since(start).Nanoseconds()) / runs

	// One zfp.compress executes the root span plus a shard span per block
	// row; 16 full lifecycles (each including a WithLabels pair the codec
	// path doesn't even perform) over-counts the real call sites.
	const lifecyclesPerCompress = 16
	overhead := lifecyclesPerCompress * lifecycleNs
	ratio := overhead / stageNs
	t.Logf("zfp.compress: stage %.0f ns, disabled trace cost %.1f ns (%.4f%%)",
		stageNs, overhead, 100*ratio)
	if ratio >= 0.02 {
		t.Errorf("disabled trace overhead %.2f%% exceeds the 2%% budget (lifecycle %.1f ns, stage %.0f ns)",
			100*ratio, lifecycleNs, stageNs)
	}
}

// BenchmarkDisabledTraceLifecycle reports the raw disabled cost — the
// number the "one atomic load" claim cashes out to for the trace layer.
func BenchmarkDisabledTraceLifecycle(b *testing.B) {
	pm := obs.SetEnabled(false)
	pt := trace.SetEnabled(false)
	b.Cleanup(func() {
		obs.SetEnabled(pm)
		trace.SetEnabled(pt)
	})
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := trace.Start(ctx, "overhead.bench")
		sp.SetBytes(1, 2)
		sp.End()
		sink = sp
	}
}

// BenchmarkEnabledTraceLifecycle is the tracing-on counterpart, for judging
// the cost of flipping -trace on.
func BenchmarkEnabledTraceLifecycle(b *testing.B) {
	pm := obs.SetEnabled(true)
	pt := trace.SetEnabled(true)
	b.Cleanup(func() {
		obs.SetEnabled(pm)
		trace.SetEnabled(pt)
		obs.Reset()
		trace.Reset()
	})
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := trace.Start(ctx, "overhead.bench")
		sp.SetBytes(1, 2)
		sp.End()
		sink = sp
	}
}

// Package trace layers hierarchical, context-propagated tracing on the obs
// metrics core. A trace is a tree of spans sharing one trace ID: Start
// parents the new span onto the span carried by ctx (or opens a new trace
// when ctx carries none), and finished traces land in a bounded ring with
// tail-based retention — the slowest N plus every trace containing an
// error — exportable as Chrome trace_event JSON (WriteChromeTrace,
// Perfetto-loadable) or browsable at /debug/traces next to /metrics.
//
// # Relationship to plain obs spans
//
// A trace span is a superset of an obs.Span: End feeds the same
// stage.<name>.{ns,ns_total,calls,bytes_in,bytes_out,items} metric bundle
// whenever metrics are enabled, and additionally stamps the latency
// histogram's bucket with the span's trace ID as an exemplar, so a fat
// bucket in /metrics links to a concrete retained trace. Instrumented code
// migrates from
//
//	sp := obs.Start("core.compress")   // metrics only
//
// to
//
//	ctx, sp := trace.Start(ctx, "core.compress") // metrics + causal tree
//	defer sp.End()
//
// and child stages started from ctx attach under the parent automatically,
// including across the worker pool (parallel.ForCtx hands the submitting
// goroutine's ctx to every task, so chunk shards nest under their chunk
// span rather than orphaning).
//
// # The disabled fast path
//
// Both switches off (the default) costs exactly one atomic load per Start:
// obs.State() packs the metrics and tracing bits into one word, and Start
// returns (ctx, nil) untouched. All Span methods are nil-receiver-safe.
//
// # Correlating logs and profiles
//
// NewLogHandler wraps any slog.Handler so every record logged with a
// traced ctx carries trace_id/span_id attributes, and WithLabels installs
// runtime/pprof labels (stage, codec, chunk) so CPU profiles slice by
// pipeline stage. All three pillars — metrics exemplars, log records, and
// profile samples — share the same trace IDs.
package trace

import (
	"context"
	"fmt"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"lrm/internal/obs"
)

// Enabled reports whether trace recording is on.
func Enabled() bool { return obs.TracingEnabled() }

// SetEnabled turns trace recording on or off and returns the previous
// state. Traces retained while enabled persist until Reset.
func SetEnabled(on bool) (prev bool) { return obs.SetTracingEnabled(on) }

// maxSpansPerTrace bounds one trace's span list: a runaway loop starting
// spans under a single root cannot grow memory without bound. Excess spans
// are counted in Trace.Dropped rather than recorded.
const maxSpansPerTrace = 4096

// ID counters. Plain process-wide counters (no randomness) keep IDs unique,
// cheap, and stable for tests; trace IDs render as 16 hex digits.
var (
	traceIDs atomic.Uint64
	spanIDs  atomic.Uint64
)

// IDString renders a trace or span ID the way every exporter does: 16
// lower-case hex digits.
func IDString(id uint64) string { return fmt.Sprintf("%016x", id) }

// SpanRecord is one finished span as it appears in a retained trace.
type SpanRecord struct {
	Name     string `json:"name"`
	SpanID   uint64 `json:"span_id"`
	ParentID uint64 `json:"parent_id"` // 0 for the root span
	Start    int64  `json:"start"`     // wall clock, Unix nanoseconds
	Dur      int64  `json:"dur"`       // nanoseconds
	BytesIn  int64  `json:"bytes_in,omitempty"`
	BytesOut int64  `json:"bytes_out,omitempty"`
	Items    int64  `json:"items,omitempty"`
	Err      string `json:"err,omitempty"`
}

// Trace is one completed span tree, snapshotted when its root span ended.
type Trace struct {
	ID      uint64       `json:"id"`
	Root    string       `json:"root"`  // root span name
	Start   int64        `json:"start"` // root start, Unix nanoseconds
	Dur     int64        `json:"dur"`   // root duration, nanoseconds
	Errs    int          `json:"errs"`  // spans that recorded an error
	Dropped int          `json:"dropped,omitempty"`
	Spans   []SpanRecord `json:"spans"`
}

// IDString returns the trace ID as 16 hex digits.
func (t *Trace) IDString() string { return IDString(t.ID) }

// traceData accumulates a trace's finished spans while it is in flight.
// Children may End concurrently on pool workers, so appends are locked.
type traceData struct {
	id   uint64
	done atomic.Bool // root ended; stragglers and new children are dropped

	mu      sync.Mutex
	spans   []SpanRecord
	errs    int
	dropped int
}

// Span is one in-flight traced stage execution. The zero of usefulness is
// nil: every method tolerates a nil receiver, which is what Start returns
// when both observability switches are off.
type Span struct {
	name     string
	start    time.Time
	td       *traceData // nil when tracing is off (metrics-only span)
	spanID   uint64
	parentID uint64
	metrics  bool

	bytesIn  int64
	bytesOut int64
	items    int64
	errMsg   string
}

// ctxKey keys the current span in a context.Context.
type ctxKey struct{}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// NewContext returns ctx carrying sp. Start does this automatically;
// NewContext is for handing an existing span across an API boundary that
// only passes contexts.
func NewContext(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// Start opens a span for the named stage. When tracing is enabled the span
// parents onto the span in ctx (a fresh trace is opened when there is
// none) and the returned context carries the new span, so nested stages —
// including tasks submitted to the worker pool with the returned ctx —
// attach under it. When only metrics are enabled the span records the
// stage bundle exactly like obs.Start. When both switches are off Start is
// one atomic load and returns (ctx, nil) untouched.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	st := obs.State()
	if st == 0 {
		return ctx, nil
	}
	sp := &Span{name: name, start: time.Now(), metrics: st&obs.StateMetrics != 0}
	if st&obs.StateTracing != 0 {
		// A ctx whose trace already completed (its root ended) starts a
		// fresh trace rather than appending to a snapshotted tree.
		if parent := FromContext(ctx); parent != nil && parent.td != nil && !parent.td.done.Load() {
			sp.td = parent.td
			sp.parentID = parent.spanID
		} else {
			sp.td = &traceData{id: traceIDs.Add(1)}
		}
		sp.spanID = spanIDs.Add(1)
		ctx = context.WithValue(ctx, ctxKey{}, sp)
	}
	return ctx, sp
}

// Name returns the span's stage name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// TraceID returns the span's trace ID as 16 hex digits, or "" when the
// span is nil or metrics-only.
func (s *Span) TraceID() string {
	if s == nil || s.td == nil {
		return ""
	}
	return IDString(s.td.id)
}

// SpanID returns the span's ID (0 when nil or metrics-only).
func (s *Span) SpanID() uint64 {
	if s == nil {
		return 0
	}
	return s.spanID
}

// SetBytes records the stage's input and output byte volumes.
func (s *Span) SetBytes(in, out int64) {
	if s == nil {
		return
	}
	s.bytesIn, s.bytesOut = in, out
}

// AddItems accumulates a stage-defined item count (points, blocks, chunks).
func (s *Span) AddItems(n int64) {
	if s == nil {
		return
	}
	s.items += n
}

// SetError marks the span (and therefore its whole trace) as errored.
// Errored traces are always retained by the ring, regardless of latency.
// A nil err is a no-op.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.errMsg = err.Error()
}

// End finalizes the span: the stage metric bundle is fed when metrics are
// enabled (with the trace ID as the latency histogram's exemplar), and the
// span record is appended to its trace. Ending the root span completes the
// trace and offers it to the retention ring. Safe on a nil receiver; End
// must be called at most once.
func (s *Span) End() {
	if s == nil {
		return
	}
	ns := time.Since(s.start).Nanoseconds()
	if s.metrics {
		exemplar := ""
		if s.td != nil {
			exemplar = IDString(s.td.id)
		}
		obs.StageObserve(s.name, ns, s.bytesIn, s.bytesOut, s.items, exemplar)
	}
	td := s.td
	if td == nil {
		return
	}
	rec := SpanRecord{
		Name:     s.name,
		SpanID:   s.spanID,
		ParentID: s.parentID,
		Start:    s.start.UnixNano(),
		Dur:      ns,
		BytesIn:  s.bytesIn,
		BytesOut: s.bytesOut,
		Items:    s.items,
		Err:      s.errMsg,
	}
	var finished *Trace
	td.mu.Lock()
	if !td.done.Load() {
		if len(td.spans) < maxSpansPerTrace {
			td.spans = append(td.spans, rec)
		} else {
			td.dropped++
		}
		if s.errMsg != "" {
			td.errs++
		}
		if s.parentID == 0 {
			// Root ended: snapshot the trace. Stragglers that End after this
			// (a child outliving its root) are dropped — td is done.
			td.done.Store(true)
			finished = &Trace{
				ID:      td.id,
				Root:    s.name,
				Start:   rec.Start,
				Dur:     rec.Dur,
				Errs:    td.errs,
				Dropped: td.dropped,
				Spans:   td.spans,
			}
			td.spans = nil
		}
	}
	td.mu.Unlock()
	if finished != nil {
		offer(finished)
	}
}

// WithLabels installs runtime/pprof labels (key/value pairs such as
// "stage", "codec", "chunk") on the calling goroutine and returns a ctx
// carrying them plus a restore function to defer. Tasks submitted to the
// worker pool with the returned ctx inherit the labels (parallel.ForCtx
// re-installs them in workers), so CPU profiles slice by pipeline stage.
// Disabled observability makes this a no-op returning ctx unchanged.
func WithLabels(ctx context.Context, kv ...string) (context.Context, func()) {
	if obs.State() == 0 {
		return ctx, func() {}
	}
	labeled := pprof.WithLabels(ctx, pprof.Labels(kv...))
	pprof.SetGoroutineLabels(labeled)
	return labeled, func() { pprof.SetGoroutineLabels(ctx) }
}

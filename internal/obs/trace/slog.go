package trace

import (
	"context"
	"log/slog"
)

// LogHandler decorates an inner slog.Handler so every record logged with a
// traced context carries trace_id and span_id attributes — grep a trace ID
// from a Chrome export or a /metrics exemplar and find the matching log
// lines, and vice versa. Records logged with an untraced context pass
// through unchanged.
type LogHandler struct {
	inner slog.Handler
}

// NewLogHandler wraps inner with trace/span ID stamping.
func NewLogHandler(inner slog.Handler) *LogHandler {
	return &LogHandler{inner: inner}
}

func (h *LogHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h *LogHandler) Handle(ctx context.Context, rec slog.Record) error {
	if sp := FromContext(ctx); sp != nil && sp.td != nil {
		rec = rec.Clone()
		rec.AddAttrs(
			slog.String("trace_id", sp.TraceID()),
			slog.String("span_id", IDString(sp.SpanID())),
		)
	}
	return h.inner.Handle(ctx, rec)
}

func (h *LogHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &LogHandler{inner: h.inner.WithAttrs(attrs)}
}

func (h *LogHandler) WithGroup(name string) slog.Handler {
	return &LogHandler{inner: h.inner.WithGroup(name)}
}

package trace

import (
	"context"
	"errors"
	"io"
	"sync"
	"testing"
)

// TestConcurrentTraceStress hammers every public entry point from many
// goroutines at once — span trees finishing out of order, snapshots and
// exports racing the recorder, retention resizes and resets mid-flight.
// Its value is under `go test -race ./internal/obs/trace` (the verify
// script's trace race-stress step); without -race it still exercises the
// locking for deadlocks.
func TestConcurrentTraceStress(t *testing.T) {
	withTracing(t)
	errStress := errors.New("stress")

	const (
		writers        = 8
		tracesPerW     = 100
		childrenPerRun = 4
	)
	var writerWG sync.WaitGroup
	for g := 0; g < writers; g++ {
		writerWG.Add(1)
		go func(g int) {
			defer writerWG.Done()
			for i := 0; i < tracesPerW; i++ {
				ctx, root := Start(context.Background(), "stress.root")
				var childWG sync.WaitGroup
				for c := 0; c < childrenPerRun; c++ {
					childWG.Add(1)
					go func(i, c int) {
						defer childWG.Done()
						cctx, restore := WithLabels(ctx, "stage", "stress")
						defer restore()
						_, sp := Start(cctx, "stress.child")
						sp.AddItems(1)
						sp.SetBytes(int64(c), int64(i))
						if i%7 == 0 {
							sp.SetError(errStress)
						}
						sp.End()
					}(i, c)
				}
				childWG.Wait()
				root.End()
			}
		}(g)
	}

	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	for r := 0; r < 3; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				snap := Snapshot()
				if err := WriteChromeTrace(io.Discard, snap); err != nil {
					t.Errorf("WriteChromeTrace: %v", err)
					return
				}
				switch i % 8 {
				case 3:
					SetRetention(8, 8)
				case 5:
					SetRetention(32, 32)
				case 7:
					if r == 0 {
						Reset()
					}
				}
			}
		}(r)
	}

	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	SetRetention(32, 32)

	// Sanity after the storm: the recorder still works.
	Reset()
	_, sp := Start(context.Background(), "stress.final")
	sp.End()
	if len(Snapshot()) != 1 {
		t.Error("recorder broken after stress run")
	}
}

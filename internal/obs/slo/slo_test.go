package slo_test

import (
	"math"
	"sync"
	"testing"
	"time"

	"lrm/internal/obs"
	"lrm/internal/obs/slo"
)

// boundMs returns the obs.DefTimeBounds bucket upper bound containing ns,
// in milliseconds — the value windowed p99 estimates report.
func boundMs(ns int64) float64 {
	for _, b := range obs.DefTimeBounds {
		if ns <= b {
			return float64(b) / 1e6
		}
	}
	return float64(obs.DefTimeBounds[len(obs.DefTimeBounds)-1]) / 1e6
}

func window(t *testing.T, rep slo.Report, name string) slo.WindowStats {
	t.Helper()
	for _, w := range rep.Windows {
		if w.Window == name {
			return w
		}
	}
	t.Fatalf("report has no %q window: %+v", name, rep)
	return slo.WindowStats{}
}

func TestNewDefaultsInvalidObjectives(t *testing.T) {
	def := slo.DefaultObjectives()
	for _, obj := range []slo.Objectives{
		{},
		{Availability: -1, LatencyP99: -time.Second},
		{Availability: 1.5},
	} {
		got := slo.New(obj).Objectives()
		if got.Availability != def.Availability && obj.Availability != got.Availability {
			t.Errorf("New(%+v).Availability = %v", obj, got.Availability)
		}
		if got.Availability <= 0 || got.Availability >= 1 || got.LatencyP99 <= 0 {
			t.Errorf("New(%+v) left invalid objectives: %+v", obj, got)
		}
	}
	// Valid objectives pass through untouched.
	obj := slo.Objectives{Availability: 0.99, LatencyP99: 42 * time.Millisecond}
	if got := slo.New(obj).Objectives(); got != obj {
		t.Errorf("New(%+v).Objectives() = %+v", obj, got)
	}
}

func TestAvailabilityBurn(t *testing.T) {
	tr := slo.New(slo.Objectives{Availability: 0.999, LatencyP99: 100 * time.Millisecond})
	now := time.Unix(10_000, 0)
	for i := 0; i < 100; i++ {
		tr.RecordAt(now, 200, time.Millisecond)
	}
	tr.RecordAt(now, 500, time.Millisecond)

	w := window(t, tr.Report(now), "5m")
	if w.Requests != 101 || w.Errors != 1 {
		t.Fatalf("window = %+v, want 101 requests / 1 error", w)
	}
	wantAvail := 100.0 / 101.0
	if math.Abs(w.Availability-wantAvail) > 1e-12 {
		t.Errorf("availability = %v, want %v", w.Availability, wantAvail)
	}
	wantBurn := (1.0 / 101.0) / (1 - 0.999)
	if math.Abs(w.AvailabilityBurn-wantBurn) > 1e-9 {
		t.Errorf("availability burn = %v, want %v", w.AvailabilityBurn, wantBurn)
	}
	if w.LatencyBurn != 0 {
		t.Errorf("latency burn = %v, want 0 (nothing was slow)", w.LatencyBurn)
	}
}

func TestLatencyBurnAndP99(t *testing.T) {
	tr := slo.New(slo.Objectives{Availability: 0.999, LatencyP99: 100 * time.Millisecond})
	now := time.Unix(20_000, 0)
	for i := 0; i < 99; i++ {
		tr.RecordAt(now, 200, time.Millisecond)
	}
	tr.RecordAt(now, 200, 200*time.Millisecond) // over the objective

	w := window(t, tr.Report(now), "5m")
	if w.Slow != 1 {
		t.Fatalf("slow = %d, want 1", w.Slow)
	}
	// 1% of requests slow against a 1% budget: burning at exactly 1x.
	if math.Abs(w.LatencyBurn-1) > 1e-12 {
		t.Errorf("latency burn = %v, want 1.0", w.LatencyBurn)
	}
	if w.AvailabilityBurn != 0 {
		t.Errorf("availability burn = %v, want 0 (no 5xx)", w.AvailabilityBurn)
	}
	// rank 99 of 100 lands on the last fast request: the 1ms bucket bound.
	if want := boundMs(time.Millisecond.Nanoseconds()); w.P99Ms != want {
		t.Errorf("p99 = %vms, want bucket bound %vms", w.P99Ms, want)
	}
}

func TestMultiWindowSeparation(t *testing.T) {
	tr := slo.New(slo.Objectives{})
	now := time.Unix(30_000, 0)
	tr.RecordAt(now.Add(-10*time.Minute), 500, time.Millisecond) // outside 5m, inside 1h
	tr.RecordAt(now, 200, time.Millisecond)

	rep := tr.Report(now)
	w5, w1h := window(t, rep, "5m"), window(t, rep, "1h")
	if w5.Requests != 1 || w5.Errors != 0 {
		t.Errorf("5m window = %+v, want only the fresh OK", w5)
	}
	if w1h.Requests != 2 || w1h.Errors != 1 {
		t.Errorf("1h window = %+v, want both requests and the old error", w1h)
	}
	if w5.AvailabilityBurn != 0 || w1h.AvailabilityBurn == 0 {
		t.Errorf("burns: 5m=%v 1h=%v, want 0 and >0", w5.AvailabilityBurn, w1h.AvailabilityBurn)
	}
}

func TestBucketRotationEvictsOldData(t *testing.T) {
	tr := slo.New(slo.Objectives{})
	old := time.Unix(40_000, 0)
	tr.RecordAt(old, 500, time.Millisecond)
	// One ring revolution later the same slot is reused; stale outcomes
	// must not leak into the new hour.
	now := old.Add(3600 * time.Second)
	tr.RecordAt(now, 200, time.Millisecond)

	w := window(t, tr.Report(now), "1h")
	if w.Requests != 1 || w.Errors != 0 {
		t.Fatalf("1h window after rotation = %+v, want the fresh request only", w)
	}
}

func TestGaugesPublished(t *testing.T) {
	prev := obs.SetEnabled(true)
	t.Cleanup(func() { obs.SetEnabled(prev); obs.Reset() })
	obs.Reset()

	tr := slo.New(slo.Objectives{Availability: 0.999, LatencyP99: 100 * time.Millisecond})
	now := time.Unix(50_000, 0)
	tr.RecordAt(now, 500, 200*time.Millisecond)

	snap := obs.Snapshot()
	if got := snap.Floats["slo.availability.burn_5m"]; got <= 0 {
		t.Errorf("slo.availability.burn_5m = %v, want > 0 after a 5xx", got)
	}
	if got := snap.Floats["slo.latency.burn_5m"]; got <= 0 {
		t.Errorf("slo.latency.burn_5m = %v, want > 0 after a slow request", got)
	}
	if got := snap.Counters["slo.requests"]; got != 1 {
		t.Errorf("slo.requests = %d, want 1", got)
	}
	if got := snap.Counters["slo.errors"]; got != 1 {
		t.Errorf("slo.errors = %d, want 1", got)
	}
	if got := snap.Counters["slo.slow"]; got != 1 {
		t.Errorf("slo.slow = %d, want 1", got)
	}
}

func TestConcurrentRecord(t *testing.T) {
	tr := slo.New(slo.Objectives{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				status := 200
				if i%100 == g {
					status = 500
				}
				tr.Record(status, time.Duration(i)*time.Microsecond)
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			tr.Report(time.Now())
		}
	}()
	wg.Wait()
	<-done

	w := window(t, tr.Report(time.Now()), "1h")
	if w.Requests != 8*500 {
		t.Fatalf("recorded %d requests, want %d", w.Requests, 8*500)
	}
}

// Package slo implements rolling-window RED/SLO tracking for the serving
// path: every request outcome (status class + latency) lands in a
// fixed-memory ring of one-second buckets, and availability and p99-latency
// objectives are evaluated over multiple windows (5m and 1h) as error-budget
// burn rates — the multi-window construction from the SRE workbook, where a
// fast window catches a sharp regression minutes in and the slow window
// catches a slow leak before the monthly budget is gone.
//
// Burn rate is (bad fraction over the window) / (1 - objective): 1.0 means
// the service is spending its error budget exactly as fast as the objective
// allows; above ~14 on the 5m window is the classic page-now threshold.
//
// The tracker publishes its state three ways, all fed from the same ring:
//
//   - obs registry gauges (slo.availability.burn_5m, slo.latency.burn_1h,
//     ...) refreshed at most once per second on the Record path, so
//     /metrics and the tsdb history sample them like any other metric;
//   - cumulative counters (slo.requests, slo.errors, slo.slow) for plain
//     rate arithmetic in external systems;
//   - Report, the structured JSON form lrmserve's /healthz?verbose=1
//     returns for humans and probes.
package slo

import (
	"sync"
	"time"

	"lrm/internal/obs"
)

// windowSeconds is the ring extent: one hour of one-second buckets, enough
// for the longest reported window.
const windowSeconds = 3600

// Objectives are the service-level objectives a Tracker evaluates.
type Objectives struct {
	// Availability is the target fraction of non-5xx responses, e.g.
	// 0.999. Must be in (0, 1).
	Availability float64
	// LatencyP99 is the latency objective: at most 1% of requests may
	// take longer than this.
	LatencyP99 time.Duration
}

// DefaultObjectives matches the serving smoke gate: three nines of
// availability and a p99 under 500ms on the loopback path.
func DefaultObjectives() Objectives {
	return Objectives{Availability: 0.999, LatencyP99: 500 * time.Millisecond}
}

// bucket is one second of outcomes. lat counts latencies against
// obs.DefTimeBounds so windowed percentiles are recoverable.
type bucket struct {
	sec   int64 // unix second this bucket currently holds; 0 = empty
	total int64
	errs  int64 // 5xx responses
	slow  int64 // responses over the latency objective (any status)
	lat   []int64
}

// Tracker is the rolling-window SLO evaluator. Create with New; Record is
// safe for concurrent use.
type Tracker struct {
	obj    Objectives
	bounds []int64 // latency histogram bounds (ns), obs.DefTimeBounds

	mu      sync.Mutex
	buckets []bucket
	lastPub int64 // unix second of the last gauge publish

	// Cumulative counters, hoisted per the obs contract.
	cRequests *obs.Counter
	cErrors   *obs.Counter
	cSlow     *obs.Counter
	// Published burn-rate gauges, one per (dimension, window).
	gAvailBurn5m  *obs.FloatGauge
	gAvailBurn1h  *obs.FloatGauge
	gLatBurn5m    *obs.FloatGauge
	gLatBurn1h    *obs.FloatGauge
	gLatP99Ms5m   *obs.FloatGauge
	gAvailability *obs.FloatGauge
}

// New builds a Tracker for the given objectives (zero-value fields take
// DefaultObjectives') and registers its metrics so they appear on /metrics
// from process start, not first failure.
func New(obj Objectives) *Tracker {
	def := DefaultObjectives()
	if obj.Availability <= 0 || obj.Availability >= 1 {
		obj.Availability = def.Availability
	}
	if obj.LatencyP99 <= 0 {
		obj.LatencyP99 = def.LatencyP99
	}
	t := &Tracker{
		obj:           obj,
		bounds:        obs.DefTimeBounds,
		buckets:       make([]bucket, windowSeconds),
		cRequests:     obs.GetCounter("slo.requests"),
		cErrors:       obs.GetCounter("slo.errors"),
		cSlow:         obs.GetCounter("slo.slow"),
		gAvailBurn5m:  obs.GetFloatGauge("slo.availability.burn_5m"),
		gAvailBurn1h:  obs.GetFloatGauge("slo.availability.burn_1h"),
		gLatBurn5m:    obs.GetFloatGauge("slo.latency.burn_5m"),
		gLatBurn1h:    obs.GetFloatGauge("slo.latency.burn_1h"),
		gLatP99Ms5m:   obs.GetFloatGauge("slo.latency.p99_5m_ms"),
		gAvailability: obs.GetFloatGauge("slo.availability.ratio_5m"),
	}
	for i := range t.buckets {
		t.buckets[i].lat = make([]int64, len(t.bounds)+1)
	}
	return t
}

// Objectives returns the tracker's (defaulted) objectives.
func (t *Tracker) Objectives() Objectives { return t.obj }

// Record logs one request outcome. status is the HTTP status sent; latency
// is the wall time the caller measured. Gauges republish at most once per
// second, so the per-request cost beyond the ring update is two window
// scans per second of traffic, not per request.
func (t *Tracker) Record(status int, latency time.Duration) {
	t.RecordAt(time.Now(), status, latency)
}

// RecordAt is Record with an injectable clock for tests.
func (t *Tracker) RecordAt(now time.Time, status int, latency time.Duration) {
	isErr := status >= 500
	isSlow := latency > t.obj.LatencyP99

	t.cRequests.Inc()
	if isErr {
		t.cErrors.Inc()
	}
	if isSlow {
		t.cSlow.Inc()
	}

	sec := now.Unix()
	ns := latency.Nanoseconds()
	t.mu.Lock()
	b := &t.buckets[sec%windowSeconds]
	if b.sec != sec {
		b.sec, b.total, b.errs, b.slow = sec, 0, 0, 0
		for i := range b.lat {
			b.lat[i] = 0
		}
	}
	b.total++
	if isErr {
		b.errs++
	}
	if isSlow {
		b.slow++
	}
	b.lat[latBucket(t.bounds, ns)]++
	publish := sec != t.lastPub
	if publish {
		t.lastPub = sec
	}
	var rep Report
	if publish {
		rep = t.reportLocked(now)
	}
	t.mu.Unlock()

	if publish {
		t.publish(rep)
	}
}

func latBucket(bounds []int64, ns int64) int {
	for i, b := range bounds {
		if ns <= b {
			return i
		}
	}
	return len(bounds)
}

// WindowStats is one window's evaluation in a Report.
type WindowStats struct {
	Window           string  `json:"window"`
	Requests         int64   `json:"requests"`
	Errors           int64   `json:"errors"`
	Slow             int64   `json:"slow"`
	Availability     float64 `json:"availability"`
	AvailabilityBurn float64 `json:"availability_burn"`
	LatencyBurn      float64 `json:"latency_burn"`
	P99Ms            float64 `json:"p99_ms"`
}

// Report is the structured SLO state /healthz?verbose=1 returns.
type Report struct {
	AvailabilityObjective float64       `json:"availability_objective"`
	LatencyObjectiveMs    float64       `json:"latency_objective_ms"`
	Windows               []WindowStats `json:"windows"`
}

// Report evaluates the 5m and 1h windows at now.
func (t *Tracker) Report(now time.Time) Report {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reportLocked(now)
}

func (t *Tracker) reportLocked(now time.Time) Report {
	rep := Report{
		AvailabilityObjective: t.obj.Availability,
		LatencyObjectiveMs:    float64(t.obj.LatencyP99) / float64(time.Millisecond),
	}
	for _, w := range []struct {
		name string
		dur  time.Duration
	}{{"5m", 5 * time.Minute}, {"1h", time.Hour}} {
		rep.Windows = append(rep.Windows, t.windowLocked(now, w.name, w.dur))
	}
	return rep
}

func (t *Tracker) windowLocked(now time.Time, name string, dur time.Duration) WindowStats {
	lo := now.Unix() - int64(dur/time.Second) + 1
	ws := WindowStats{Window: name, Availability: 1, P99Ms: 0}
	lat := make([]int64, len(t.bounds)+1)
	for i := range t.buckets {
		b := &t.buckets[i]
		if b.sec < lo || b.sec == 0 || b.sec > now.Unix() {
			continue
		}
		ws.Requests += b.total
		ws.Errors += b.errs
		ws.Slow += b.slow
		for j, c := range b.lat {
			lat[j] += c
		}
	}
	if ws.Requests == 0 {
		return ws
	}
	errFrac := float64(ws.Errors) / float64(ws.Requests)
	slowFrac := float64(ws.Slow) / float64(ws.Requests)
	ws.Availability = 1 - errFrac
	ws.AvailabilityBurn = errFrac / (1 - t.obj.Availability)
	// The latency objective budgets 1% of requests over the threshold.
	ws.LatencyBurn = slowFrac / 0.01
	ws.P99Ms = windowP99Ms(t.bounds, lat, ws.Requests)
	return ws
}

// windowP99Ms returns the p99 latency estimate (bucket upper bound) in
// milliseconds for the windowed latency histogram.
func windowP99Ms(bounds []int64, lat []int64, total int64) float64 {
	rank := int64(0.99 * float64(total))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range lat {
		cum += c
		if cum >= rank {
			if i < len(bounds) {
				return float64(bounds[i]) / 1e6
			}
			break
		}
	}
	return float64(bounds[len(bounds)-1]) / 1e6
}

// publish pushes the report's burn rates into the obs gauges.
func (t *Tracker) publish(rep Report) {
	for _, w := range rep.Windows {
		switch w.Window {
		case "5m":
			t.gAvailBurn5m.Set(w.AvailabilityBurn)
			t.gLatBurn5m.Set(w.LatencyBurn)
			t.gLatP99Ms5m.Set(w.P99Ms)
			t.gAvailability.Set(w.Availability)
		case "1h":
			t.gAvailBurn1h.Set(w.AvailabilityBurn)
			t.gLatBurn1h.Set(w.LatencyBurn)
		}
	}
}

package obs

import (
	"expvar"
	"net/http"
	"net/http/pprof"
	"os"
	runtimepprof "runtime/pprof"
	"sync"
)

// extraHandlers are debug endpoints registered by other packages (the
// obs/trace subpackage mounts /debug/traces here from its init). Handler
// cannot import those packages — they import obs — so registration is the
// seam that keeps the dependency edge pointing one way.
var (
	extraMu       sync.Mutex
	extraHandlers = map[string]http.Handler{}
)

// RegisterDebugHandler mounts h at pattern on every mux Handler returns
// from now on. Registering the same pattern twice keeps the latest handler.
func RegisterDebugHandler(pattern string, h http.Handler) {
	extraMu.Lock()
	defer extraMu.Unlock()
	extraHandlers[pattern] = h
}

// Handler returns the debug endpoint mux the commands mount behind their
// -debug-addr flag:
//
//	/metrics       Prometheus text exposition (WriteProm)
//	/debug/vars    expvar JSON (includes the "lrm" registry snapshot)
//	/debug/pprof   net/http/pprof profile index (cpu, heap, goroutine, ...)
//	/debug/traces  retained trace ring (when the obs/trace package is linked)
//
// The pprof handlers are mounted explicitly rather than via the package's
// DefaultServeMux side effect, so embedders control exactly what is served.
func Handler() http.Handler {
	PublishExpvar()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WriteProm(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	extraMu.Lock()
	for pattern, h := range extraHandlers {
		mux.Handle(pattern, h)
	}
	extraMu.Unlock()
	return mux
}

// ServeDebug blocks serving Handler on addr — commands run it on its own
// goroutine (`go obs.ServeDebug(addr)`); errors surface on stderr rather
// than killing the measurement run.
func ServeDebug(addr string) {
	if err := http.ListenAndServe(addr, Handler()); err != nil {
		os.Stderr.WriteString("obs: debug server: " + err.Error() + "\n")
	}
}

// StartCPUProfile begins a CPU profile into path. It returns a stop
// function to defer; a creation failure is reported via the returned error
// with a no-op stop.
func StartCPUProfile(path string) (stop func(), err error) {
	f, err := os.Create(path)
	if err != nil {
		return func() {}, err
	}
	if err := runtimepprof.StartCPUProfile(f); err != nil {
		f.Close()
		return func() {}, err
	}
	return func() {
		runtimepprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeapProfile writes the current heap profile to path.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return runtimepprof.WriteHeapProfile(f)
}

package obs

import (
	"context"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	runtimepprof "runtime/pprof"
	"sync"
	"time"
)

// extraHandlers are debug endpoints registered by other packages (the
// obs/trace subpackage mounts /debug/traces here from its init). Handler
// cannot import those packages — they import obs — so registration is the
// seam that keeps the dependency edge pointing one way.
var (
	extraMu       sync.Mutex
	extraHandlers = map[string]http.Handler{}
)

// RegisterDebugHandler mounts h at pattern on every mux Handler returns
// from now on. Registering the same pattern twice keeps the latest handler.
func RegisterDebugHandler(pattern string, h http.Handler) {
	extraMu.Lock()
	defer extraMu.Unlock()
	extraHandlers[pattern] = h
}

// Handler returns the debug endpoint mux the commands mount behind their
// -debug-addr flag:
//
//	/metrics       Prometheus text exposition (WriteProm)
//	/debug/vars    expvar JSON (includes the "lrm" registry snapshot)
//	/debug/pprof   net/http/pprof profile index (cpu, heap, goroutine, ...)
//	/debug/traces  retained trace ring (when the obs/trace package is linked)
//
// The pprof handlers are mounted explicitly rather than via the package's
// DefaultServeMux side effect, so embedders control exactly what is served.
func Handler() http.Handler {
	PublishExpvar()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WriteProm(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	extraMu.Lock()
	for pattern, h := range extraHandlers {
		mux.Handle(pattern, h)
	}
	extraMu.Unlock()
	return mux
}

// StartDebug serves Handler on addr from a background goroutine and
// returns a stop function that drains and closes the server. Unlike the
// bare http.ListenAndServe it replaces, the server carries full lifecycle
// protection — a slow or stalled client cannot pin a connection (and with
// it a test's listener) forever:
//
//	ReadHeaderTimeout  5s     slowloris guard on every connection
//	ReadTimeout        1m     bounded request read (debug requests are tiny)
//	WriteTimeout       2m     bounded response write; generous because
//	                          /debug/pprof/profile streams for its full
//	                          ?seconds= window (30s default) before writing
//	IdleTimeout        2m     keep-alive connections are reaped
//	MaxHeaderBytes     1MiB   bounded header allocation
//
// The listener is bound synchronously, so a bad addr fails here rather
// than on a background goroutine, and addr ":0" works for tests (read the
// bound address back via the returned Addr). stop performs a graceful
// drain bounded by its ctx: in-flight requests finish, then the listener
// and idle connections close. Serve errors after a clean start surface on
// stderr — the debug plane must never kill the measurement run it
// observes.
func StartDebug(addr string) (boundAddr string, stop func(ctx context.Context) error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{
		Handler:           Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if serr := srv.Serve(ln); serr != nil && serr != http.ErrServerClosed {
			os.Stderr.WriteString("obs: debug server: " + serr.Error() + "\n")
		}
	}()
	stop = func(ctx context.Context) error {
		err := srv.Shutdown(ctx)
		// Join the serve goroutine: when stop returns, the listener is
		// closed AND the accept loop has actually exited.
		<-done
		return err
	}
	return ln.Addr().String(), stop, nil
}

// StartCPUProfile begins a CPU profile into path. It returns a stop
// function to defer; a creation failure is reported via the returned error
// with a no-op stop. The process-wide profiler is claimed via
// AcquireCPUProfiler first, so starting while the continuous profiler (or
// another -cpuprofile) holds it fails with an error naming the holder
// instead of producing a silent empty profile.
func StartCPUProfile(path string) (stop func(), err error) {
	release, err := AcquireCPUProfiler("-cpuprofile " + path)
	if err != nil {
		return func() {}, err
	}
	f, err := os.Create(path)
	if err != nil {
		release()
		return func() {}, err
	}
	if err := runtimepprof.StartCPUProfile(f); err != nil {
		f.Close()
		release()
		return func() {}, err
	}
	return func() {
		runtimepprof.StopCPUProfile()
		f.Close()
		release()
	}, nil
}

// WriteHeapProfile writes the current heap profile to path.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return runtimepprof.WriteHeapProfile(f)
}

package obs

import (
	"sync"
	"time"
)

// Span measures one pipeline stage execution. A span is created by Start
// (or StartChild for a stage nested under another) and finalized by End,
// which records the stage's duration, byte, and item attributes under the
// stage metric bundle for the span's name:
//
//	stage.<name>.ns        duration histogram (DefTimeBounds buckets)
//	stage.<name>.ns_total  accumulated wall time
//	stage.<name>.calls     completed span count
//	stage.<name>.bytes_in  accumulated input bytes (SetBytes)
//	stage.<name>.bytes_out accumulated output bytes (SetBytes)
//	stage.<name>.items     accumulated item count (AddItems)
//
// All Span methods are nil-receiver-safe: when observability is disabled,
// Start returns nil and the entire span lifecycle costs one atomic load.
type Span struct {
	name     string
	start    time.Time
	bytesIn  int64
	bytesOut int64
	items    int64
	parent   *Span
}

// Start opens a root span for the named stage. When observability is
// disabled it returns nil (all Span methods tolerate a nil receiver), so
// the disabled cost is a single atomic load.
func Start(name string) *Span {
	if state.Load()&StateMetrics == 0 {
		return nil
	}
	return &Span{name: name, start: time.Now()}
}

// StartChild opens a span nested under s. A child of a nil span is nil, so
// a disabled root propagates the no-op through the whole stage tree without
// further atomic loads.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{name: name, start: time.Now(), parent: s}
}

// Parent returns the span this one was started under (nil for roots).
func (s *Span) Parent() *Span {
	if s == nil {
		return nil
	}
	return s.parent
}

// SetBytes records the stage's input and output byte volumes, reported via
// the stage.<name>.bytes_in / .bytes_out counters at End.
func (s *Span) SetBytes(in, out int64) {
	if s == nil {
		return
	}
	s.bytesIn, s.bytesOut = in, out
}

// AddItems accumulates a stage-defined item count (points, blocks, chunks),
// reported via the stage.<name>.items counter at End.
func (s *Span) AddItems(n int64) {
	if s == nil {
		return
	}
	s.items += n
}

// End finalizes the span and records its metrics. Safe on a nil receiver.
func (s *Span) End() {
	if s == nil {
		return
	}
	st := stageFor(s.name)
	ns := time.Since(s.start).Nanoseconds()
	st.ns.Observe(ns)
	st.nsTotal.Add(ns)
	st.calls.Inc()
	if s.bytesIn != 0 || s.bytesOut != 0 {
		st.bytesIn.Add(s.bytesIn)
		st.bytesOut.Add(s.bytesOut)
	}
	if s.items != 0 {
		st.items.Add(s.items)
	}
}

// stageMetrics is the bundle End writes into, cached per stage name so one
// End costs one sync.Map hit instead of six registry lookups.
type stageMetrics struct {
	ns       *Histogram
	nsTotal  *Counter
	calls    *Counter
	bytesIn  *Counter
	bytesOut *Counter
	items    *Counter
}

var stageCache sync.Map // name -> *stageMetrics

func stageFor(name string) *stageMetrics {
	if v, ok := stageCache.Load(name); ok {
		return v.(*stageMetrics)
	}
	st := &stageMetrics{
		ns:       GetHistogram("stage."+name+".ns", nil),
		nsTotal:  GetCounter("stage." + name + ".ns_total"),
		calls:    GetCounter("stage." + name + ".calls"),
		bytesIn:  GetCounter("stage." + name + ".bytes_in"),
		bytesOut: GetCounter("stage." + name + ".bytes_out"),
		items:    GetCounter("stage." + name + ".items"),
	}
	v, _ := stageCache.LoadOrStore(name, st)
	return v.(*stageMetrics)
}

// StageObserve records one externally managed stage execution with full
// attribution — the hook the trace subpackage's spans use so traced runs
// feed the same stage.<name>.* bundles as plain obs spans. A non-empty
// exemplar attaches a trace ID to the latency-histogram bucket the
// observation lands in.
func StageObserve(name string, ns, bytesIn, bytesOut, items int64, exemplar string) {
	st := stageFor(name)
	st.ns.ObserveExemplar(ns, exemplar)
	st.nsTotal.Add(ns)
	st.calls.Inc()
	if bytesIn != 0 || bytesOut != 0 {
		st.bytesIn.Add(bytesIn)
		st.bytesOut.Add(bytesOut)
	}
	if items != 0 {
		st.items.Add(items)
	}
}

// StageAdd records an externally timed slice of work against a stage — the
// accumulate-then-flush pattern for kernels too hot for a span per unit
// (e.g. ZFP's per-block align/transform/plane phases, which accumulate
// plain local nanosecond counters per shard and flush once at shard end).
// Unlike Span.End it does not observe the latency histogram: accumulated
// slices are not call latencies.
func StageAdd(name string, ns, items int64) {
	st := stageFor(name)
	st.nsTotal.Add(ns)
	st.calls.Inc()
	if items != 0 {
		st.items.Add(items)
	}
}

package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestPromNamesCollision pins the sanitized-name collision fix: "a.b" and
// "a-b" sanitize to the same Prometheus name, and both members of the
// colliding group must be disambiguated deterministically.
func TestPromNamesCollision(t *testing.T) {
	names := []string{"colltest.a.b", "colltest.a-b", "colltest.plain"}
	pns := promNames(names)

	if got := pns["colltest.plain"]; got != "lrm_colltest_plain" {
		t.Errorf("non-colliding name mangled: %q", got)
	}
	ab, dash := pns["colltest.a.b"], pns["colltest.a-b"]
	if ab == dash {
		t.Fatalf("collision not resolved: both map to %q", ab)
	}
	for n, pn := range pns {
		if !strings.HasPrefix(pn, "lrm_colltest_") {
			t.Errorf("promNames(%q) = %q, lost the sanitized stem", n, pn)
		}
		for _, r := range pn {
			ok := r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '_' || r == ':'
			if !ok {
				t.Errorf("promNames(%q) = %q contains illegal rune %q", n, pn, r)
			}
		}
	}

	// Deterministic regardless of input order.
	rev := promNames([]string{"colltest.plain", "colltest.a-b", "colltest.a.b"})
	for n, pn := range pns {
		if rev[n] != pn {
			t.Errorf("promNames order-dependent: %q -> %q vs %q", n, pn, rev[n])
		}
	}
}

// TestWritePromCollisionRegression drives the collision through the full
// exposition: two registry metrics with the same sanitized name must emit
// two distinct, correctly-valued sample lines.
func TestWritePromCollisionRegression(t *testing.T) {
	withObs(t)
	GetCounter("collide.x.y").Add(1)
	GetCounter("collide.x-y").Add(2)

	var buf bytes.Buffer
	if err := WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	sampled := map[string]string{} // prom name -> value
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "lrm_collide_x_y") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed sample line %q", line)
		}
		if prev, dup := sampled[fields[0]]; dup {
			t.Fatalf("duplicate series %s (values %s and %s) corrupts the scrape", fields[0], prev, fields[1])
		}
		sampled[fields[0]] = fields[1]
	}
	if len(sampled) != 2 {
		t.Fatalf("expected 2 disambiguated series, got %v", sampled)
	}
	values := map[string]bool{}
	for _, v := range sampled {
		values[v] = true
	}
	if !values["1"] || !values["2"] {
		t.Fatalf("disambiguated series lost their values: %v", sampled)
	}
}

func TestWritePromHelpLines(t *testing.T) {
	withObs(t)
	GetCounter("helptest.described").Inc()
	GetCounter("helptest.bare").Inc()
	Describe("helptest.described", "Counts things.\nWith a \\ in it.")

	var buf bytes.Buffer
	if err := WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	want := `# HELP lrm_helptest_described Counts things.\nWith a \\ in it.` + "\n"
	if !strings.Contains(out, want) {
		t.Errorf("missing escaped HELP line %q in:\n%s", want, out)
	}
	if strings.Contains(out, "# HELP lrm_helptest_bare") {
		t.Error("undescribed metric grew a HELP line")
	}
	// HELP must precede TYPE for the same metric (canonical 0.0.4 layout).
	hi := strings.Index(out, "# HELP lrm_helptest_described")
	ti := strings.Index(out, "# TYPE lrm_helptest_described")
	if hi == -1 || ti == -1 || hi > ti {
		t.Errorf("HELP/TYPE ordering wrong: help at %d, type at %d", hi, ti)
	}
}

package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// withObs enables recording for one test and restores the previous state
// (and a clean registry) afterwards.
func withObs(t *testing.T) {
	t.Helper()
	prev := SetEnabled(true)
	Reset()
	t.Cleanup(func() {
		SetEnabled(prev)
		Reset()
	})
}

func TestCounterGaugeBasics(t *testing.T) {
	withObs(t)
	c := GetCounter("test.counter")
	if GetCounter("test.counter") != c {
		t.Fatal("GetCounter is not idempotent")
	}
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}

	g := GetGauge("test.gauge")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	g.SetMax(5)
	if got := g.Value(); got != 7 {
		t.Fatalf("SetMax lowered the gauge to %d", got)
	}
	g.SetMax(99)
	if got := g.Value(); got != 99 {
		t.Fatalf("SetMax = %d, want 99", got)
	}

	fg := GetFloatGauge("test.float")
	fg.Set(0.625)
	if got := fg.Value(); got != 0.625 {
		t.Fatalf("float gauge = %v, want 0.625", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	withObs(t)
	h := GetHistogram("test.hist", []int64{10, 100, 1000})
	for _, v := range []int64{5, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []int64{2, 2, 0, 1} // <=10: {5,10}; <=100: {11,100}; <=1000: none; +Inf: {5000}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%+v)", i, s.Counts[i], w, s)
		}
	}
	if s.Count != 5 || s.Sum != 5+10+11+100+5000 {
		t.Fatalf("count/sum = %d/%d", s.Count, s.Sum)
	}
}

func TestResetKeepsRegistrations(t *testing.T) {
	withObs(t)
	c := GetCounter("test.reset")
	c.Add(42)
	h := GetHistogram("test.reset.hist", nil)
	h.Observe(123456)
	Reset()
	if c.Value() != 0 {
		t.Fatal("Reset did not zero the counter")
	}
	if s := h.Snapshot(); s.Count != 0 || s.Sum != 0 {
		t.Fatal("Reset did not zero the histogram")
	}
	// The hoisted pointer must still record after Reset.
	c.Inc()
	if GetCounter("test.reset").Value() != 1 {
		t.Fatal("hoisted counter pointer invalidated by Reset")
	}
}

func TestSpanDisabledIsNil(t *testing.T) {
	prev := SetEnabled(false)
	t.Cleanup(func() { SetEnabled(prev) })
	sp := Start("test.disabled")
	if sp != nil {
		t.Fatal("Start must return nil when disabled")
	}
	// The whole lifecycle must be nil-safe.
	child := sp.StartChild("test.disabled.child")
	child.SetBytes(1, 2)
	child.AddItems(3)
	child.End()
	sp.SetBytes(4, 5)
	sp.End()
	if sp.Parent() != nil || child.Parent() != nil {
		t.Fatal("nil spans must have nil parents")
	}
}

func TestSpanRecordsStageMetrics(t *testing.T) {
	withObs(t)
	sp := Start("test.stage")
	if sp == nil {
		t.Fatal("Start returned nil while enabled")
	}
	child := sp.StartChild("test.stage.child")
	if child.Parent() != sp {
		t.Fatal("child does not point at parent")
	}
	child.AddItems(7)
	child.End()
	sp.SetBytes(100, 40)
	sp.End()

	snap := Snapshot()
	if got := snap.Counters["stage.test.stage.calls"]; got != 1 {
		t.Fatalf("calls = %d, want 1", got)
	}
	if got := snap.Counters["stage.test.stage.bytes_in"]; got != 100 {
		t.Fatalf("bytes_in = %d, want 100", got)
	}
	if got := snap.Counters["stage.test.stage.bytes_out"]; got != 40 {
		t.Fatalf("bytes_out = %d, want 40", got)
	}
	if got := snap.Counters["stage.test.stage.child.items"]; got != 7 {
		t.Fatalf("child items = %d, want 7", got)
	}
	if snap.Counters["stage.test.stage.ns_total"] < 0 {
		t.Fatal("negative span duration")
	}
	h, ok := snap.Histograms["stage.test.stage.ns"]
	if !ok || h.Count != 1 {
		t.Fatalf("duration histogram missing or count != 1: %+v", h)
	}
}

func TestStageAdd(t *testing.T) {
	withObs(t)
	StageAdd("test.accum", 1000, 4)
	StageAdd("test.accum", 500, 2)
	snap := Snapshot()
	if got := snap.Counters["stage.test.accum.ns_total"]; got != 1500 {
		t.Fatalf("ns_total = %d, want 1500", got)
	}
	if got := snap.Counters["stage.test.accum.calls"]; got != 2 {
		t.Fatalf("calls = %d, want 2", got)
	}
	if got := snap.Counters["stage.test.accum.items"]; got != 6 {
		t.Fatalf("items = %d, want 6", got)
	}
}

// promLine matches every legal sample or comment line of the text
// exposition format we emit.
var promLine = regexp.MustCompile(
	`^(# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)|` +
		`# HELP [a-zA-Z_:][a-zA-Z0-9_:]* [^\n]*|` +
		`# exemplar [^\n]*|` +
		`[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="([0-9]+|\+Inf)"\})? -?[0-9]+(\.[0-9]+)?([eE][-+]?[0-9]+)?)$`)

func TestWritePromParses(t *testing.T) {
	withObs(t)
	GetCounter("test.prom/counter-a").Add(3)
	GetGauge("test.prom.gauge").Set(-5)
	GetFloatGauge("test.prom.float").Set(1.5)
	h := GetHistogram("test.prom.hist", []int64{10, 100})
	h.Observe(7)
	h.Observe(70)
	h.Observe(700)

	var buf bytes.Buffer
	if err := WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasSuffix(out, "\n") {
		t.Fatal("exposition must end with a newline")
	}
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if !promLine.MatchString(line) {
			t.Fatalf("invalid exposition line: %q", line)
		}
	}
	// Sanitized name, cumulative buckets, +Inf == count.
	if !strings.Contains(out, "lrm_test_prom_counter_a 3") {
		t.Fatalf("sanitized counter missing:\n%s", out)
	}
	for _, want := range []string{
		`lrm_test_prom_hist_bucket{le="10"} 1`,
		`lrm_test_prom_hist_bucket{le="100"} 2`,
		`lrm_test_prom_hist_bucket{le="+Inf"} 3`,
		`lrm_test_prom_hist_count 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	withObs(t)
	GetCounter("test.json.counter").Add(9)
	var buf bytes.Buffer
	if err := WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snap
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("WriteJSON output is not valid JSON: %v", err)
	}
	if snap.Counters["test.json.counter"] != 9 {
		t.Fatalf("round-tripped counter = %d, want 9", snap.Counters["test.json.counter"])
	}
}

func TestHandlerEndpoints(t *testing.T) {
	withObs(t)
	GetCounter("test.http.counter").Inc()
	h := Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "lrm_test_http_counter 1") {
		t.Fatalf("/metrics: code %d body %q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/vars: code %d", rec.Code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := vars["lrm"]; !ok {
		t.Fatal("/debug/vars does not publish the lrm registry snapshot")
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/pprof/: code %d", rec.Code)
	}
}

// TestConcurrentRecording exercises every metric type from many goroutines;
// run with -race this is the data-race gate for the registry.
func TestConcurrentRecording(t *testing.T) {
	withObs(t)
	const workers, iters = 8, 500
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			c := GetCounter("test.conc.counter")
			g := GetGauge("test.conc.gauge")
			h := GetHistogram("test.conc.hist", nil)
			for i := 0; i < iters; i++ {
				c.Inc()
				g.SetMax(int64(i))
				h.Observe(int64(i))
				sp := Start("test.conc.span")
				sp.AddItems(1)
				sp.End()
			}
		}()
	}
	wg.Wait()
	snap := Snapshot()
	if got := snap.Counters["test.conc.counter"]; got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	if got := snap.Counters["stage.test.conc.span.items"]; got != workers*iters {
		t.Fatalf("span items = %d, want %d", got, workers*iters)
	}
	if got := snap.Gauges["test.conc.gauge"]; got != iters-1 {
		t.Fatalf("gauge high-water = %d, want %d", got, iters-1)
	}
}

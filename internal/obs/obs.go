// Package obs is the repository's zero-dependency observability core: a
// metrics registry (atomic counters, gauges, and fixed-bucket histograms
// with Snapshot/Reset), lightweight span tracing for pipeline stages
// (span.go), and text exposition in Prometheus and expvar-compatible JSON
// formats (expo.go, http.go). Only the standard library is used.
//
// # The no-op fast path
//
// Observability is off by default. Every instrumentation entry point is
// gated on a single atomic load:
//
//	sp := obs.Start("sz.quantize") // one atomic load, returns nil when off
//	defer sp.End()                 // nil receiver: no-op
//
// Span methods are nil-receiver-safe, so instrumented code pays exactly one
// atomic bool load per Start call (and per obs.Enabled() guard) when
// observability is disabled — no allocation, no time.Now, no registry
// traffic. Hot loops must hoist the guard: instrument at stage granularity
// (one span around a kernel), or snapshot Enabled() into a local once per
// shard and accumulate into plain locals, flushing to counters at the end.
// The overhead guard test (overhead_test.go) pins the disabled cost of the
// instrumented compression paths below 2% of stage runtime.
//
// # Registry model
//
// Metrics are registered lazily by name and live for the process lifetime:
// GetCounter("sz.bin_hits") returns the same *Counter on every call, so
// packages hoist metric pointers into package-level vars and never pay a
// map lookup on the hot path. Reset zeroes every value in place without
// invalidating those pointers. Snapshot returns a consistent-enough copy
// for reporting (values are read atomically; cross-metric skew is
// acceptable for monitoring).
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// State bits of the process-wide observability switch. Metrics recording
// (StateMetrics) and trace recording (StateTracing, driven by the obs/trace
// subpackage) share one atomic word so a fully instrumented call site —
// stage metrics plus hierarchical tracing — still pays exactly one atomic
// load when both are off.
const (
	StateMetrics uint32 = 1 << iota
	StateTracing
)

// state is the packed observability switch. Disabled instrumented code
// performs exactly one atomic load per guard.
var state atomic.Uint32

// State returns the packed enable bits (StateMetrics | StateTracing) in one
// atomic load — the fast-path guard shared with the trace subpackage.
func State() uint32 { return state.Load() }

// Enabled reports whether metric recording is on.
func Enabled() bool { return state.Load()&StateMetrics != 0 }

// SetEnabled turns metric recording on or off and returns the previous
// state. Metrics recorded while enabled persist until Reset.
func SetEnabled(on bool) (prev bool) { return setStateBit(StateMetrics, on) }

// TracingEnabled reports whether trace recording is on.
func TracingEnabled() bool { return state.Load()&StateTracing != 0 }

// SetTracingEnabled turns trace recording on or off and returns the
// previous state. The obs/trace subpackage wraps this; it lives here so the
// two switches share one atomic word.
func SetTracingEnabled(on bool) (prev bool) { return setStateBit(StateTracing, on) }

func setStateBit(bit uint32, on bool) (prev bool) {
	for {
		cur := state.Load()
		next := cur &^ bit
		if on {
			next = cur | bit
		}
		if state.CompareAndSwap(cur, next) {
			return cur&bit != 0
		}
	}
}

// Counter is a monotonically increasing (or at least additive) int64 metric.
type Counter struct {
	name string
	v    atomic.Int64
}

// Name returns the registered metric name.
func (c *Counter) Name() string { return c.name }

// Add adds n to the counter.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc adds 1 to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a set-or-adjust int64 metric (queue depth, rank, high-water).
type Gauge struct {
	name string
	v    atomic.Int64
}

// Name returns the registered metric name.
func (g *Gauge) Name() string { return g.name }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// SetMax raises the gauge to n if n exceeds the current value — the
// high-water-mark operation (e.g. the largest decode allocation granted).
func (g *Gauge) SetMax(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is a float64 gauge (delta energy, captured variance). The
// value is stored as IEEE bits in a uint64 so reads and writes stay atomic.
type FloatGauge struct {
	name string
	bits atomic.Uint64
}

// Name returns the registered metric name.
func (g *FloatGauge) Name() string { return g.name }

// Set stores v.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram: Bounds holds ascending inclusive
// upper bounds; observations above the last bound land in an implicit +Inf
// bucket. Counts, sum, and count are all atomic, so Observe is safe from
// any goroutine. Each bucket additionally keeps the most recent exemplar
// (a trace ID plus the observed value) when one is supplied, so a fat
// latency bucket links to a concrete trace in the ring buffer.
type Histogram struct {
	name      string
	bounds    []int64
	counts    []atomic.Int64             // len(bounds)+1; last is +Inf
	exemplars []atomic.Pointer[Exemplar] // len(bounds)+1; last-write-wins
	sum       atomic.Int64
	count     atomic.Int64
}

// Exemplar links one histogram bucket to a concrete trace: the trace ID of
// a span whose observation landed in the bucket, and the observed value.
type Exemplar struct {
	TraceID string `json:"trace_id"`
	Value   int64  `json:"value"`
}

// Name returns the registered metric name.
func (h *Histogram) Name() string { return h.name }

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveExemplar records one value and attaches traceID as the bucket's
// exemplar (last write wins). An empty traceID degrades to Observe.
func (h *Histogram) ObserveExemplar(v int64, traceID string) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
	if traceID != "" {
		h.exemplars[i].Store(&Exemplar{TraceID: traceID, Value: v})
	}
}

// HistSnapshot is a point-in-time copy of a histogram.
type HistSnapshot struct {
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"` // per-bucket (NOT cumulative); last is +Inf
	Sum    int64   `json:"sum"`
	Count  int64   `json:"count"`
	// Exemplars holds one entry per bucket (aligned with Counts); buckets
	// that never saw an exemplar are nil.
	Exemplars []*Exemplar `json:"exemplars,omitempty"`
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{Bounds: h.bounds, Counts: make([]int64, len(h.counts))}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	for i := range h.exemplars {
		if e := h.exemplars[i].Load(); e != nil {
			if s.Exemplars == nil {
				s.Exemplars = make([]*Exemplar, len(h.exemplars))
			}
			s.Exemplars[i] = e
		}
	}
	s.Sum = h.sum.Load()
	s.Count = h.count.Load()
	return s
}

func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	for i := range h.exemplars {
		h.exemplars[i].Store(nil)
	}
	h.sum.Store(0)
	h.count.Store(0)
}

// DefTimeBounds are the default duration-histogram bucket bounds in
// nanoseconds: powers of four from 1 µs to ~4.4 min, a range wide enough
// for a single plane-coder call and a full large-field chunked compress.
var DefTimeBounds = timeBounds()

func timeBounds() []int64 {
	b := make([]int64, 13)
	v := int64(1000) // 1 µs
	for i := range b {
		b[i] = v
		v *= 4
	}
	return b
}

// registry is the process-wide metric store. Lookups are lock-protected;
// hot paths hoist metric pointers, so the lock is never on a kernel path.
type registry struct {
	mu     sync.RWMutex
	order  []string // registration order of all names, for stable exposition
	counts map[string]*Counter
	gauges map[string]*Gauge
	floats map[string]*FloatGauge
	hists  map[string]*Histogram
}

var reg = &registry{
	counts: map[string]*Counter{},
	gauges: map[string]*Gauge{},
	floats: map[string]*FloatGauge{},
	hists:  map[string]*Histogram{},
}

// GetCounter returns the counter registered under name, creating it on
// first use. The returned pointer is stable for the process lifetime.
func GetCounter(name string) *Counter {
	reg.mu.RLock()
	c := reg.counts[name]
	reg.mu.RUnlock()
	if c != nil {
		return c
	}
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if c = reg.counts[name]; c == nil {
		c = &Counter{name: name}
		reg.counts[name] = c
		reg.order = append(reg.order, name)
	}
	return c
}

// GetGauge returns the gauge registered under name, creating it on first
// use.
func GetGauge(name string) *Gauge {
	reg.mu.RLock()
	g := reg.gauges[name]
	reg.mu.RUnlock()
	if g != nil {
		return g
	}
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if g = reg.gauges[name]; g == nil {
		g = &Gauge{name: name}
		reg.gauges[name] = g
		reg.order = append(reg.order, name)
	}
	return g
}

// GetFloatGauge returns the float gauge registered under name, creating it
// on first use.
func GetFloatGauge(name string) *FloatGauge {
	reg.mu.RLock()
	g := reg.floats[name]
	reg.mu.RUnlock()
	if g != nil {
		return g
	}
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if g = reg.floats[name]; g == nil {
		g = &FloatGauge{name: name}
		reg.floats[name] = g
		reg.order = append(reg.order, name)
	}
	return g
}

// GetHistogram returns the histogram registered under name, creating it
// with the given ascending bucket bounds on first use (later calls ignore
// bounds). A nil bounds slice uses DefTimeBounds.
func GetHistogram(name string, bounds []int64) *Histogram {
	reg.mu.RLock()
	h := reg.hists[name]
	reg.mu.RUnlock()
	if h != nil {
		return h
	}
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if h = reg.hists[name]; h == nil {
		if bounds == nil {
			bounds = DefTimeBounds
		}
		h = &Histogram{
			name:      name,
			bounds:    bounds,
			counts:    make([]atomic.Int64, len(bounds)+1),
			exemplars: make([]atomic.Pointer[Exemplar], len(bounds)+1),
		}
		reg.hists[name] = h
		reg.order = append(reg.order, name)
	}
	return h
}

// Snap is a point-in-time copy of every registered metric.
type Snap struct {
	Enabled    bool                    `json:"enabled"`
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]int64        `json:"gauges"`
	Floats     map[string]float64      `json:"floats,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Snapshot copies the registry. Each value is read atomically; the snapshot
// as a whole is not transactionally consistent across metrics, which is the
// usual monitoring contract.
func Snapshot() *Snap {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	s := &Snap{
		Enabled:    Enabled(),
		Counters:   make(map[string]int64, len(reg.counts)),
		Gauges:     make(map[string]int64, len(reg.gauges)),
		Floats:     make(map[string]float64, len(reg.floats)),
		Histograms: make(map[string]HistSnapshot, len(reg.hists)),
	}
	for n, c := range reg.counts {
		s.Counters[n] = c.Value()
	}
	for n, g := range reg.gauges {
		s.Gauges[n] = g.Value()
	}
	for n, g := range reg.floats {
		s.Floats[n] = g.Value()
	}
	for n, h := range reg.hists {
		s.Histograms[n] = h.Snapshot()
	}
	return s
}

// Reset zeroes every registered metric in place. Registrations (and any
// hoisted metric pointers) remain valid.
func Reset() {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	for _, c := range reg.counts {
		c.v.Store(0)
	}
	for _, g := range reg.gauges {
		g.v.Store(0)
	}
	for _, g := range reg.floats {
		g.bits.Store(0)
	}
	for _, h := range reg.hists {
		h.reset()
	}
}

// names returns every registered metric name in registration order.
func names() []string {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	return append([]string(nil), reg.order...)
}

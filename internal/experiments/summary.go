package experiments

import (
	"fmt"
	"strings"

	"lrm/internal/dataset"
)

// Claim is one machine-checked reproduction verdict.
type Claim struct {
	Artifact  string
	Statement string
	Holds     bool
	Detail    string
}

// SummaryResult runs the whole evaluation once and checks every shape claim
// from EXPERIMENTS.md programmatically — the one-page paper-vs-measured
// verdict. Claims marked with (divergence) are the documented scale
// effects; they are reported but expected to be false at small grids.
type SummaryResult struct {
	Claims []Claim
}

func init() {
	registerExperiment("summary",
		"One-page machine-checked verdict on every paper shape claim",
		func(cfg Config) (Renderer, error) { return RunSummary(cfg) })
}

// RunSummary executes the summary.
func RunSummary(cfg Config) (*SummaryResult, error) {
	cfg = cfg.withDefaults()
	out := &SummaryResult{}
	add := func(artifact, statement string, holds bool, detail string) {
		out.Claims = append(out.Claims, Claim{Artifact: artifact, Statement: statement, Holds: holds, Detail: detail})
	}

	// Table II.
	t2, err := RunTable2(cfg)
	if err != nil {
		return nil, err
	}
	add("Table II", "reduced model takes fewer, larger steps",
		t2.ReducedSteps < t2.FullSteps && t2.ReducedDt > t2.FullDt,
		fmt.Sprintf("steps %d vs %d, dt %.2e vs %.2e", t2.FullSteps, t2.ReducedSteps, t2.FullDt, t2.ReducedDt))
	add("Table II", "full/reduced byte statistics nearly the same",
		abs(t2.Full.ByteEntropy-t2.Reduced.ByteEntropy) < 1.0,
		fmt.Sprintf("entropy %.2f vs %.2f", t2.Full.ByteEntropy, t2.Reduced.ByteEntropy))

	// Fig. 1.
	f1, err := RunFig1(cfg)
	if err != nil {
		return nil, err
	}
	worstKS := 0.0
	for _, row := range f1.Rows {
		if row.CDFDistance > worstKS {
			worstKS = row.CDFDistance
		}
	}
	add("Fig. 1", "full and reduced value distributions similar on all 9 datasets",
		worstKS < 0.4, fmt.Sprintf("worst KS distance %.2f", worstKS))

	// Fig. 3.
	f3, err := RunFig3(cfg)
	if err != nil {
		return nil, err
	}
	oneBeatsOrig := true
	for _, ds := range []string{"Heat3d", "Laplace"} {
		for _, comp := range []string{"zfp", "sz"} {
			orig, _ := f3.Ratio(ds, comp, "original")
			one, _ := f3.Ratio(ds, comp, "one-base")
			if one <= orig {
				oneBeatsOrig = false
			}
		}
	}
	add("Fig. 3", "one-base beats direct compression (lossy codecs, both PDEs)", oneBeatsOrig, "")
	lapOne, _ := f3.Ratio("Laplace", "zfp", "one-base")
	lapDuo, _ := f3.Ratio("Laplace", "zfp", "duomodel")
	add("Fig. 3", "one-base beats DuoModel (2-D Laplace)", lapOne > lapDuo,
		fmt.Sprintf("%.1fx vs %.1fx", lapOne, lapDuo))
	heatOne, _ := f3.Ratio("Heat3d", "zfp", "one-base")
	heatDuo, _ := f3.Ratio("Heat3d", "zfp", "duomodel")
	add("Fig. 3", "(divergence 1) one-base beats DuoModel on 3-D Heat3d — needs N > 64",
		heatOne > heatDuo, fmt.Sprintf("%.1fx vs %.1fx", heatOne, heatDuo))

	// Fig. 4.
	f4, err := RunFig4(cfg)
	if err != nil {
		return nil, err
	}
	allImprove := true
	for _, p := range f4.Points {
		if p.Improvement < 1.5 {
			allImprove = false
		}
	}
	add("Fig. 4", "one-base improves every PDE snapshot substantially", allImprove, "")
	add("Fig. 4", "(divergence 4) improvement grows with compressibility within a trajectory",
		f4.Correlation() > 0, fmt.Sprintf("correlation %.2f", f4.Correlation()))

	// Figs. 6-10, 12 share the sweep.
	sweep, err := runDimredSweep(cfg)
	if err != nil {
		return nil, err
	}
	improved := 0
	for _, ds := range []string{"Heat3d", "Laplace", "Wave", "Astro", "Sedov_pres"} {
		orig, _ := sweep.Cell(ds, "original", "zfp")
		pca, _ := sweep.Cell(ds, "pca", "zfp")
		if pca.Ratio > orig.Ratio*1.1 {
			improved++
		}
	}
	add("Fig. 6", "PCA improves the structured datasets (ZFP)",
		improved >= 4, fmt.Sprintf("%d/5 improved", improved))
	uo, _ := sweep.Cell("Umbrella", "original", "zfp")
	up, _ := sweep.Cell("Umbrella", "pca", "zfp")
	add("Fig. 6", "MD data does not benefit from PCA", up.Ratio < uo.Ratio*1.3,
		fmt.Sprintf("%.1fx vs %.1fx", up.Ratio, uo.Ratio))

	f7, err := RunFig7(cfg)
	if err != nil {
		return nil, err
	}
	pc1 := map[string]float64{}
	for _, row := range f7.Rows {
		pc1[row.Dataset] = row.Proportions[0]
	}
	add("Fig. 7", "PC1 dominant exactly where preconditioning wins",
		pc1["Laplace"] > 0.9 && pc1["Umbrella"] < 0.6,
		fmt.Sprintf("Laplace PC1 %.2f, Umbrella PC1 %.2f", pc1["Laplace"], pc1["Umbrella"]))

	higherRMSE, totalRMSE := 0, 0
	for _, ds := range dataset.Names() {
		orig, ok := sweep.Cell(ds, "original", "zfp")
		if !ok {
			continue
		}
		for _, m := range []string{"pca", "svd", "wavelet"} {
			if c, ok := sweep.Cell(ds, m, "zfp"); ok {
				totalRMSE++
				if c.RMSE >= orig.RMSE {
					higherRMSE++
				}
			}
		}
	}
	add("Fig. 10", "preconditioning raises RMSE at nominal bounds",
		higherRMSE*3 >= totalRMSE*2, fmt.Sprintf("%d/%d combinations", higherRMSE, totalRMSE))

	f11, err := RunFig11(cfg)
	if err != nil {
		return nil, err
	}
	wins := 0
	for _, ds := range []string{"Heat3d", "Laplace", "Wave", "Astro", "Sedov_pres"} {
		if f11.BeatsDirectAtMatchedRMSE(ds, "pca") || f11.BeatsDirectAtMatchedRMSE(ds, "svd") {
			wins++
		}
	}
	add("Fig. 11", "PCA/SVD beat direct ZFP at matched RMSE on some datasets",
		wins >= 1, fmt.Sprintf("%d/5 structured datasets", wins))

	f12 := &Fig12Result{Sweep: sweep}
	baseC, _ := f12.MeanTimes("original", "zfp")
	svdC, _ := f12.MeanTimes("svd", "zfp")
	pcaC, _ := f12.MeanTimes("pca", "zfp")
	add("Fig. 12", "compression overhead ordering SVD > PCA > direct",
		svdC > pcaC && pcaC > baseC,
		fmt.Sprintf("x%.1f / x%.1f / x1.0", svdC/baseC, pcaC/baseC))

	// Table IV.
	t4, err := RunTable4(cfg)
	if err != nil {
		return nil, err
	}
	base, _ := t4.Entry("Baseline")
	zfpE, _ := t4.Entry("ZFP")
	staging, _ := t4.Entry("Staging")
	add("Table IV", "direct lossy compression beats raw I/O; staging fastest",
		zfpE.TotalTime < base.TotalTime && staging.TotalTime < zfpE.TotalTime,
		fmt.Sprintf("%.1fs vs %.1fs vs %.1fs", base.TotalTime, zfpE.TotalTime, staging.TotalTime))

	return out, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Render implements Renderer.
func (r *SummaryResult) Render() string {
	var b strings.Builder
	b.WriteString("Reproduction summary: machine-checked paper claims\n")
	b.WriteString("((divergence N) rows are the scale effects documented in EXPERIMENTS.md;\n")
	b.WriteString(" they are expected to fail at small grids and flip at the paper's scale)\n\n")
	var rows [][]string
	holds, total := 0, 0
	for _, c := range r.Claims {
		mark := "FAIL"
		if c.Holds {
			mark = "ok"
		}
		expected := !strings.Contains(c.Statement, "(divergence")
		if expected {
			total++
			if c.Holds {
				holds++
			}
		}
		rows = append(rows, []string{c.Artifact, c.Statement, mark, c.Detail})
	}
	b.WriteString(table([]string{"artifact", "claim", "verdict", "measured"}, rows))
	fmt.Fprintf(&b, "\n%d/%d non-divergence claims hold\n", holds, total)
	return b.String()
}

// CSV implements CSVer.
func (r *SummaryResult) CSV() string {
	var rows [][]string
	for _, c := range r.Claims {
		rows = append(rows, []string{
			c.Artifact, strings.ReplaceAll(c.Statement, ",", ";"),
			fmt.Sprint(c.Holds), strings.ReplaceAll(c.Detail, ",", ";"),
		})
	}
	return csvRows([]string{"artifact", "claim", "holds", "measured"}, rows)
}

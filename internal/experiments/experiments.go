// Package experiments reproduces every table and figure of the paper's
// evaluation. Each experiment has a typed result and a Render method that
// prints the same rows/series the paper reports, so `cmd/lrmexp <id>`
// regenerates the artifact and EXPERIMENTS.md records paper-vs-measured.
//
// Experiment ids: table2, fig1, fig3, fig4, fig6, fig7, fig8, fig9, fig10,
// fig11, fig12, table4.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"lrm/internal/dataset"
)

// Config scales the experiments. Zero value = Small datasets, 5 snapshots
// (fast enough for CI); the paper protocol uses 20 snapshots and larger
// grids.
type Config struct {
	// Size selects the dataset generation scale.
	Size dataset.Size
	// Snapshots is the per-application output count (the paper uses 20).
	Snapshots int
}

func (c Config) withDefaults() Config {
	if c.Snapshots <= 0 {
		c.Snapshots = 5
	}
	return c
}

// PaperConfig runs at the paper's protocol scale.
func PaperConfig() Config { return Config{Size: dataset.Medium, Snapshots: 20} }

// Renderer is implemented by every experiment result.
type Renderer interface {
	Render() string
}

// Runner executes one experiment.
type Runner func(cfg Config) (Renderer, error)

// registry maps experiment ids to runners.
var registry = map[string]Runner{}

// descriptions maps ids to one-line descriptions for listings.
var descriptions = map[string]string{}

func registerExperiment(id, desc string, run Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = run
	descriptions[id] = desc
}

// IDs lists the registered experiment ids in sorted order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Describe returns the one-line description of an experiment id.
func Describe(id string) string { return descriptions[id] }

// Run executes the experiment with the given id.
func Run(id string, cfg Config) (Renderer, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (known: %s)", id, strings.Join(IDs(), ", "))
	}
	return r(cfg.withDefaults())
}

// --- text-table rendering helpers ---

// table renders rows of cells with aligned columns.
func table(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func e2(v float64) string { return fmt.Sprintf("%.2e", v) }
